package buddy

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"buddy/internal/gen"
)

func TestPublicAPIFlow(t *testing.T) {
	// End-to-end through the facade: profile -> annotate -> load -> verify.
	bench, err := WorkloadByName("352.ep")
	if err != nil {
		t.Fatal(err)
	}
	snaps := GenerateRun(bench, 16384)
	prof := Profile(snaps, NewBPC(), FinalDesign())
	if prof.CompressionRatio < 1.5 {
		t.Errorf("352.ep should compress well, got %.2fx", prof.CompressionRatio)
	}

	data := snaps[0]
	dev := New(WithDeviceBytes(int64(data.TotalBytes())))
	allocs, err := LoadSnapshot(dev, data, prof.Targets())
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != len(data.Allocations) {
		t.Fatalf("want %d allocations, got %d", len(data.Allocations), len(allocs))
	}
	got := make([]byte, EntryBytes)
	for ai, a := range allocs {
		src := data.Allocations[ai]
		for i := 0; i < a.EntryCount; i += 37 {
			if err := a.ReadEntry(i, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, src.Entry(i)) {
				t.Fatalf("%s entry %d mismatch", a.Name, i)
			}
		}
	}
}

func TestCodecsRegistry(t *testing.T) {
	cs := Codecs()
	if len(cs) != 6 {
		t.Fatalf("want 6 codecs, got %d", len(cs))
	}
	names := map[string]bool{}
	for _, c := range cs {
		names[c.Name()] = true
	}
	for _, want := range []string{"bpc", "bdi", "fpc", "fvc", "cpack", "zero"} {
		if !names[want] {
			t.Errorf("missing codec %q", want)
		}
		c, err := CodecByName(want)
		if err != nil || c.Name() != want {
			t.Errorf("CodecByName(%q) = %v, %v", want, c, err)
		}
	}
	if _, err := CodecByName("no-such"); err == nil {
		t.Error("CodecByName should reject unknown names")
	}
	// The deprecated alias stays callable for one release.
	if len(Compressors()) != 6 {
		t.Error("Compressors alias broken")
	}
}

func TestRunExperimentQuick(t *testing.T) {
	// Every fast experiment renders without error through the public
	// runner; the heavier ones are covered by their own tests/benches.
	sc := QuickScale()
	for _, name := range []string{"tab1", "tab2", "fig8", "fig13a", "fig13b", "fig13c"} {
		var sb strings.Builder
		if err := RunExperiment(&sb, name, sc); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if sb.Len() == 0 {
			t.Errorf("%s: empty output", name)
		}
	}
	if err := RunExperiment(&strings.Builder{}, "no-such", sc); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestExperimentsListMatchesRunner(t *testing.T) {
	if len(Experiments()) != 20 {
		t.Errorf("want 20 experiments, got %d", len(Experiments()))
	}
}

func TestLifecycleFacade(t *testing.T) {
	// The long-running-serving flow through the public surface: load under
	// profiled targets, drift, plan, gate on the horizon, apply live, free.
	bench, err := WorkloadByName("355.seismic")
	if err != nil {
		t.Fatal(err)
	}
	snaps := GenerateRun(bench, 16384)
	first, last := snaps[0], snaps[len(snaps)-1]
	prof := Profile([]*Snapshot{first}, NewBPC(), FinalDesign())
	targets := prof.Targets()

	dev := New(
		WithDeviceBytes(2*int64(first.TotalBytes())),
		WithReprofileHorizon(1<<30),
	)
	allocs, err := LoadSnapshot(dev, first, targets)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range allocs {
		src := last.Find(a.Name)
		if src == nil {
			t.Fatalf("allocation %s missing from the late snapshot", a.Name)
		}
		if _, err := a.WriteAt(src.Data, 0); err != nil {
			t.Fatal(err)
		}
	}
	plan := PlanReprofile(targets, []*Snapshot{last}, NewBPC(), FinalDesign())
	if len(plan.Decisions) == 0 {
		t.Fatal("drifting workload should produce reprofile decisions")
	}
	st, err := dev.ApplyReprofile(plan)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != len(plan.Decisions) {
		t.Errorf("applied %d of %d decisions (%d skipped)", st.Applied, len(plan.Decisions), st.Skipped)
	}
	// Contents survive the live migration; Free returns every byte.
	for _, a := range allocs {
		got := make([]byte, a.Size())
		if _, err := a.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, last.Find(a.Name).Data) {
			t.Fatalf("%s: contents corrupted by ApplyReprofile", a.Name)
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if du, bu := dev.DeviceUsed(), dev.BuddyUsed(); du != 0 || bu != 0 {
		t.Errorf("free-all left device=%d buddy=%d reserved", du, bu)
	}
	if _, err := allocs[0].ReadAt(make([]byte, 8), 0); !errors.Is(err, ErrFreed) {
		t.Errorf("I/O after Close = %v, want ErrFreed", err)
	}
}

func TestCapacityStory(t *testing.T) {
	// The paper's pitch: 24 GB of data on a 12 GB GPU at 2x. Shrunk: 2 MiB
	// of data on a 1 MiB device.
	dev := New(WithDeviceBytes(1 << 20))
	a, err := dev.Malloc("big", 2<<20, Target2x)
	if err != nil {
		t.Fatalf("2x annotation should double capacity: %v", err)
	}
	entry := make([]byte, EntryBytes)
	gen.Noisy64{NoiseBits: 8, HiStep: 1}.Fill(entry, gen.NewRNG(3, 1))
	if err := a.WriteEntry(a.EntryCount-1, entry); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, EntryBytes)
	if err := a.ReadEntry(a.EntryCount-1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(entry, got) {
		t.Error("round-trip mismatch at the far end of the oversubscribed allocation")
	}
}
