// Oversubscription comparison (§4.3): run a workload whose footprint
// exceeds device memory under (a) Unified Memory demand paging, (b) all
// data pinned in host memory, and (c) Buddy Compression — reproducing the
// paper's argument that Buddy Compression is the better oversubscription
// mechanism.
package main

import (
	"fmt"
	"log"

	"buddy"
	"buddy/internal/core"
	"buddy/internal/exp"
	"buddy/internal/gpusim"
	"buddy/internal/um"
)

func main() {
	bench, err := buddy.WorkloadByName("356.sp")
	if err != nil {
		log.Fatal(err)
	}
	const oversub = 0.33 // the GPU is 33% too small for the working set
	footprint := uint64(bench.Footprint / 64)

	// (a) Unified Memory demand paging at the forced oversubscription.
	umRes := um.RunOversubscription(bench.Trace, footprint, oversub, um.DefaultConfig())

	// (b) Everything pinned in host memory.
	pinned := um.RunPinned(bench.Trace, footprint, um.DefaultConfig())

	// (c) Buddy Compression: the profiled 356.sp compresses well beyond
	//     1.5x, so a 33% shortfall fits entirely; runtime comes from the
	//     timing simulator against the ideal large-memory GPU.
	cfg := exp.ScaledSimConfig(0.2)
	dm := gpusim.BuildDataModel(bench, footprint, 8192, core.FinalDesign())
	ideal := gpusim.Run(bench.Trace, gpusim.UncompressedModel(footprint), gpusim.ModeIdeal, cfg)
	buddyRun := gpusim.Run(bench.Trace, dm, gpusim.ModeBuddy, cfg)

	fmt.Printf("%s with a GPU %d%% too small for its working set:\n\n", bench.Name, int(oversub*100))
	fmt.Printf("  Unified Memory paging:   %6.1fx runtime (%d faults, %.1f MiB migrated)\n",
		umRes.RelativeRuntime, umRes.Faults, float64(umRes.MigratedBytes)/(1<<20))
	fmt.Printf("  pinned in host memory:   %6.1fx runtime\n", pinned.RelativeRuntime)
	fmt.Printf("  Buddy Compression:       %6.2fx runtime (buddy accesses %.2f%% of memory ops)\n",
		ideal.Cycles/buddyRun.Cycles, float64(buddyRun.BuddyAccesses)/float64(buddyRun.MemAccesses)*100)
	fmt.Println("\n(paper §4.3: Buddy Compression suffers at most 1.67x at 50% oversubscription,")
	fmt.Println(" while UM oversubscription routinely costs an order of magnitude)")

	// (d) No buddy memory attached at all: the overflow tier falls back to
	//     host unified memory behind a demand pager. The same data still
	//     fits and round-trips; the tier's fault counters expose the cost.
	snaps := buddy.GenerateRun(bench, 8192)
	data := snaps[len(snaps)-1]
	// Annotate everything 4x — deliberately too aggressive, so entries that
	// don't compress 4x spill to the host tier and exercise the pager.
	targets := make(map[string]buddy.TargetRatio)
	for _, a := range data.Allocations {
		targets[a.Name] = buddy.Target4x
	}
	host := buddy.New(
		buddy.WithDeviceBytes(int64(data.TotalBytes())*2/3),
		buddy.WithHostFallback(0, int64(data.TotalBytes())/8),
	)
	if _, err := buddy.LoadSnapshot(host, data, targets); err != nil {
		log.Fatal(err)
	}
	_, overflow := host.Tiers()
	ot := overflow.Traffic()
	fmt.Printf("\nhost-fallback tier (%s): %d overflow stores, %d page faults, %.1f MiB migrated\n",
		overflow.Name(), ot.Stores, ot.Faults, float64(ot.MigratedBytes)/(1<<20))
}
