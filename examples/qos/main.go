// QoS: carve one buddy-compressed pool into named tenants and watch the
// serving contracts hold — a capacity quota refuses an over-budget
// Malloc with a typed error, a high-priority tenant's small bursts cut
// ahead of a deep batch backlog in modeled latency, and deficit
// round-robin serves the weight-3 trainer's backlog three bytes to one,
// which lands in the table as roughly halved completion latency.
package main

import (
	"errors"
	"fmt"
	"log"

	"buddy"
	"buddy/internal/gen"
)

const (
	shards = 2
	region = int64(1 << 20) // per-tenant bytes per shard
	chunk  = int64(64 << 10)
	laps   = 4 // each batch tenant pre-submits laps x region per shard
)

func main() {
	p, err := buddy.NewPool(
		buddy.WithShards(shards),
		buddy.WithDeviceBytes(3*region),
		buddy.WithPlacement(buddy.PlaceRoundRobin()),
		// Rings deep enough to hold the whole pre-submitted backlog.
		buddy.WithQueueDepth(laps*int(region/chunk)),
		buddy.WithTenants(map[string]buddy.TenantConfig{
			"train-heavy": {Weight: 3},
			"train":       {Weight: 1},
			// The inference tenant outranks the trainers and is capped at
			// exactly its working set: one region per shard at 2x.
			"infer": {Priority: 1, CapacityBytes: shards * (region / buddy.EntryBytes) * int64(buddy.Target2x.DeviceBytes())},
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	data := make([]byte, region)
	(gen.SparseFP16{ZeroFrac: 0.9}).Fill(data, gen.NewRNG(7, 0))

	// Each batch tenant claims one region per shard and floods the pool:
	// the whole demand is submitted up front, so the scheduler arbitrates
	// a standing backlog.
	var futs []*buddy.Future
	for _, name := range []string{"train-heavy", "train"} {
		door, err := p.Tenant(name)
		if err != nil {
			log.Fatal(err)
		}
		for s := 0; s < shards; s++ {
			h, err := door.Malloc(fmt.Sprintf("%s/r%d", name, s), region, buddy.Target2x)
			if err != nil {
				log.Fatal(err)
			}
			for off := int64(0); off < laps*region; off += chunk {
				o := off % region
				futs = append(futs, p.SubmitWrite(h, data[o:o+chunk], o))
			}
		}
	}

	// The inference tenant fills its quota, then shows admission control:
	// one more region must be refused with the typed error.
	infer, err := p.Tenant("infer")
	if err != nil {
		log.Fatal(err)
	}
	var bursts []*buddy.Handle
	for s := 0; s < shards; s++ {
		h, err := infer.Malloc(fmt.Sprintf("infer/r%d", s), region, buddy.Target2x)
		if err != nil {
			log.Fatal(err)
		}
		bursts = append(bursts, h)
	}
	if over, probe := infer.Malloc("infer/over", region, buddy.Target2x); probe != nil {
		fmt.Printf("over-quota Malloc: %v (typed: %v)\n\n", probe, errors.Is(probe, buddy.ErrQuotaExceeded))
	} else {
		over.Close()
		log.Fatal("over-quota Malloc unexpectedly succeeded")
	}

	// Closed-loop inference bursts ride their priority class past the
	// batch backlog: each 16 KiB burst waits before the next goes out.
	for i := 0; i < 64; i++ {
		h := bursts[i%shards]
		if _, err := p.SubmitWrite(h, data[:16<<10], 0).Wait(); err != nil {
			log.Fatal(err)
		}
	}
	for _, f := range futs {
		if _, err := f.Wait(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("%-12s %4s %6s %10s %9s %9s\n", "tenant", "prio", "weight", "served MiB", "p50 cyc", "p99 cyc")
	for _, ts := range p.Stats().Tenants {
		if ts.Submitted == 0 {
			continue
		}
		fmt.Printf("%-12s %4d %6d %10.1f %9.0f %9.0f\n", ts.Name, ts.Priority, ts.Weight,
			float64(ts.ServedBytes)/(1<<20), ts.Latency.P50, ts.Latency.P99)
	}
}
