// Live target-ratio migration (§3.4 extension): a long-running process
// loads a drifting workload, watches its profiled targets go stale, and at
// each checkpoint plans a re-profile, gates it on the amortization horizon,
// and applies it to the running device with ApplyReprofile — then frees
// everything, returning every reserved byte. This is the
// allocate/serve/re-tune/free loop a production serving system runs, which
// the paper's allocate-once model leaves to "future work ... combined with
// checkpointing".
package main

import (
	"fmt"
	"log"

	"buddy"
)

func main() {
	bench, err := buddy.WorkloadByName("355.seismic")
	if err != nil {
		log.Fatal(err)
	}
	const scale = 4096
	snaps := buddy.GenerateRun(bench, scale)

	// Profile the first snapshot and load it under the chosen targets.
	prof := buddy.Profile(snaps[:1], buddy.NewBPC(), buddy.FinalDesign())
	targets := prof.Targets()
	dev := buddy.New(
		buddy.WithDeviceBytes(2*int64(snaps[0].TotalBytes())),
		buddy.WithReprofileHorizon(1<<30),
	)
	allocs, err := buddy.LoadSnapshot(dev, snaps[0], targets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s at %.2fx with %d allocations\n",
		bench.Name, dev.CompressionRatio(), len(allocs))

	// The serving loop: the wavefields fill in over time, so the mostly-zero
	// targets chosen at startup overflow more and more accesses to buddy
	// memory. Each checkpoint measures, plans, and migrates only when the
	// plan amortizes within the configured horizon.
	for t := 1; t < len(snaps); t++ {
		for _, a := range allocs {
			if src := snaps[t].Find(a.Name); src != nil {
				if _, err := a.WriteAt(src.Data, 0); err != nil {
					log.Fatal(err)
				}
			}
		}
		// Re-plan from the device's own target map: it is the ground truth
		// even when an earlier plan was only partially applied.
		plan := buddy.PlanReprofile(dev.Targets(), snaps[t:t+1], buddy.NewBPC(), buddy.FinalDesign())
		if len(plan.Decisions) == 0 || !dev.ReprofileWorthwhile(plan) {
			fmt.Printf("checkpoint %d: targets still good (predicted buddy %.1f%%)\n",
				t, plan.BuddyFracBefore*100)
			continue
		}
		st, err := dev.ApplyReprofile(plan)
		if err != nil {
			log.Fatal(err)
		}
		for _, dec := range plan.Decisions {
			fmt.Printf("checkpoint %d: %-12s %s -> %s\n", t, dec.Name, dec.Old, dec.New)
		}
		fmt.Printf("checkpoint %d: migrated %d KiB live, buddy accesses %.1f%% -> %.1f%%, ratio %.2fx\n",
			t, st.MigratedBytes>>10, plan.BuddyFracBefore*100, plan.BuddyFracAfter*100,
			dev.CompressionRatio())
	}
	fmt.Printf("total migration traffic: %d KiB\n", dev.Traffic().MigrationBytes>>10)

	// Lifecycle end: every allocation closes, every reserved byte returns.
	for _, a := range allocs {
		if err := a.Close(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("after free-all: device %d B, buddy %d B reserved\n",
		dev.DeviceUsed(), dev.BuddyUsed())
}
