// HPC workflow: profile an HPC application on a small dataset, derive
// per-allocation target compression ratios under the Buddy Threshold, then
// fit a footprint into a GPU that is too small for it — the §3.4 user story
// ("the data can be allocated with a target of 2x compression").
package main

import (
	"fmt"
	"log"

	"buddy"
)

func main() {
	bench, err := buddy.WorkloadByName("355.seismic")
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: profiling pass on a small representative dataset (the paper
	// uses SpecAccel's train inputs; we synthesize at a reduced scale).
	snaps := buddy.GenerateRun(bench, 8192)
	prof := buddy.Profile(snaps, buddy.NewBPC(), buddy.FinalDesign())
	fmt.Printf("profiled %s: %d allocations, overall %.2fx, expected buddy accesses %.2f%%\n",
		bench.Name, len(prof.Allocations), prof.CompressionRatio, prof.BuddyAccessFraction*100)
	for _, p := range prof.Allocations {
		fmt.Printf("  %-16s -> target %-6s (overflow %.1f%%)\n", p.Name, p.Target, p.OverflowFrac*100)
	}

	// Step 2: the reference dataset is bigger than the GPU. Annotate the
	// allocations with the profiled targets and load it anyway.
	data := snaps[len(snaps)-1] // last dump: the least compressible point
	footprint := int64(data.TotalBytes())
	gpu := buddy.New(buddy.WithDeviceBytes(footprint * 2 / 3)) // GPU 33% too small

	allocs, err := buddy.LoadSnapshot(gpu, data, prof.Targets())
	if err != nil {
		log.Fatalf("loading with compression failed: %v", err)
	}
	fmt.Printf("\nfit %.1f MiB of data into a %.1f MiB GPU (%d allocations)\n",
		float64(footprint)/(1<<20), float64(gpu.DeviceUsed())/(1<<20), len(allocs))

	tr := gpu.Traffic()
	fmt.Printf("write traffic: device %.1f MiB, buddy %.1f MiB (%.2f%% of accesses touched buddy)\n",
		float64(tr.DeviceWriteBytes)/(1<<20), float64(tr.BuddyWriteBytes)/(1<<20),
		tr.BuddyAccessFraction()*100)

	// Without compression the same data cannot fit.
	plain := buddy.New(buddy.WithDeviceBytes(footprint * 2 / 3))
	if _, err := buddy.LoadSnapshot(plain, data, nil); err == nil {
		log.Fatal("uncompressed load unexpectedly fit")
	} else {
		fmt.Printf("uncompressed load fails as expected: %v\n", err)
	}
}
