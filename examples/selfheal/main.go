// Selfheal: the pool as a self-healing fleet. A failure injector kills
// one shard's device tier mid-serve; in-flight operations on that shard
// fail with a typed error while the auto-recovery supervisor rebuilds the
// lost device state from the buddy carve-out (which behaves as a
// write-through mirror, so nothing acknowledged is lost). Afterwards the
// example drains a shard for "maintenance" — live-migrating its residents
// to the shard with the most headroom — and reopens it.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"time"

	"buddy"
	"buddy/internal/gen"
)

func main() {
	const (
		shards   = 4
		clients  = 8
		workset  = 64 << 10
		perShard = int64(clients) * workset * 2 / shards
	)
	fi := buddy.NewFailureInjector()
	recovered := make(chan buddy.RecoveryStats, 1)
	p, err := buddy.NewPool(
		buddy.WithShards(shards),
		buddy.WithDeviceBytes(perShard),
		buddy.WithFailureInjector(fi),
		buddy.WithAutoRecover(func(rs buddy.RecoveryStats) { recovered <- rs }),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	fmt.Printf("pool: %d shards x %d KiB, auto-recovery on\n", shards, perShard>>10)

	// Resident working sets, one per client.
	handles := make([]*buddy.Handle, clients)
	data := make([][]byte, clients)
	for c := range handles {
		data[c] = make([]byte, workset)
		gen.Noisy64{NoiseBits: 8, HiStep: 1}.Fill(data[c], gen.NewRNG(uint64(c), 1))
		h, err := p.Malloc(fmt.Sprintf("client-%d", c), workset, buddy.Target2x)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := h.WriteAt(data[c], 0); err != nil {
			log.Fatal(err)
		}
		handles[c] = h
	}

	// Kill shard 0 mid-serve: operations routed there fail with a typed
	// error until the supervisor rebuilds it from buddy memory.
	if err := fi.Kill(0); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, workset)
	failedOps := 0
	for _, h := range handles {
		if _, err := h.ReadAt(buf, 0); errors.Is(err, buddy.ErrDeviceFailed) {
			failedOps++
		}
	}
	rs := <-recovered
	fmt.Printf("shard %d killed: %d reads hit the dead tier; rebuilt %d entries (%d KiB over the buddy link) in %s\n",
		rs.Shard, failedOps, rs.Entries, rs.RebuiltBytes>>10, rs.Elapsed.Round(time.Microsecond))

	// Everything survives: the carve-out mirror held every entry.
	for c, h := range handles {
		if _, err := h.ReadAt(buf, 0); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(buf, data[c]) {
			log.Fatalf("client %d lost data across the failure", c)
		}
	}
	fmt.Println("all resident data verified after recovery: zero lost bytes")

	// Maintenance: drain shard 1 — its residents live-migrate to the
	// emptiest shards, handles keep routing — then reopen it.
	if err := p.Drain(1); err != nil {
		log.Fatal(err)
	}
	moved := 0
	for c, h := range handles {
		if _, err := h.ReadAt(buf, 0); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(buf, data[c]) {
			log.Fatalf("client %d lost data across the drain", c)
		}
		moved++
	}
	if err := p.Reopen(1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shard 1 drained and reopened: %d handles still serving through live migration\n", moved)

	st := p.Stats()
	for _, s := range st.Shards {
		fmt.Printf("  shard %d: %2d allocs, %4d KiB device, draining=%v failed=%v\n",
			s.Shard, s.Allocs, s.DeviceUsed>>10, s.Draining, s.Failed)
	}
}
