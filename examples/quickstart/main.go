// Quickstart: allocate a compressed region on a Buddy Compression device,
// write data of varying compressibility through the real BPC pipeline, read
// it back, and inspect where the bytes went (device vs. buddy memory).
package main

import (
	"bytes"
	"fmt"
	"log"

	"buddy"
	"buddy/internal/gen"
)

func main() {
	// A small GPU with 1 MiB of device memory and the paper's defaults
	// (BPC compression, 3x buddy carve-out, sliced metadata cache).
	dev := buddy.NewDevice(buddy.Config{DeviceBytes: 1 << 20})

	// Annotate the allocation with a 2x target ratio: 2 MiB of data will
	// reserve only 1 MiB of device memory; each 128 B entry gets two 32 B
	// device sectors and a fixed two-sector slot in the buddy carve-out.
	alloc, err := dev.Malloc("tensor", 512<<10, buddy.Target2x)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated %d entries at target %s: device %d KiB, carve-out %d KiB\n",
		alloc.EntryCount, alloc.Target, dev.DeviceUsed()>>10, dev.BuddyUsed()>>10)

	// Write three kinds of data: highly compressible, half-compressible,
	// and incompressible. Only the last overflows to buddy memory.
	entry := make([]byte, buddy.EntryBytes)
	r := gen.NewRNG(42, 1)
	kinds := []struct {
		name string
		g    gen.Generator
	}{
		{"smooth ramp (fits easily)", gen.Ramp{Step: 4}},
		{"fp64 field (exactly 2x)", gen.Noisy64{NoiseBits: 8, HiStep: 1}},
		{"random bytes (overflows)", gen.Random{}},
	}
	for i, k := range kinds {
		k.g.Fill(entry, r)
		before := dev.Traffic()
		if err := alloc.WriteEntry(i, entry); err != nil {
			log.Fatal(err)
		}
		after := dev.Traffic()
		fmt.Printf("  write %-28s -> %d sectors, device %3d B, buddy %3d B\n",
			k.name, alloc.SectorCount(i),
			after.DeviceWriteBytes-before.DeviceWriteBytes,
			after.BuddyWriteBytes-before.BuddyWriteBytes)
	}

	// Read back and verify: compression is bit-exact end to end.
	got := make([]byte, buddy.EntryBytes)
	want := make([]byte, buddy.EntryBytes)
	r2 := gen.NewRNG(42, 1)
	for i, k := range kinds {
		k.g.Fill(want, r2)
		if err := alloc.ReadEntry(i, got); err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			log.Fatalf("entry %d: round-trip mismatch", i)
		}
	}
	tr := dev.Traffic()
	fmt.Printf("verified %d reads: buddy-access fraction %.1f%%, metadata cache hit rate %.0f%%\n",
		tr.Reads, tr.BuddyAccessFraction()*100, dev.MetadataCacheHitRate()*100)

	// The headline design property (§3.3): rewriting an entry with data of
	// different compressibility never moves it.
	devAddr, budAddr := alloc.DeviceAddress(1), alloc.BuddyAddress(1)
	gen.Random{}.Fill(entry, r)
	if err := alloc.WriteEntry(1, entry); err != nil {
		log.Fatal(err)
	}
	if alloc.DeviceAddress(1) != devAddr || alloc.BuddyAddress(1) != budAddr {
		log.Fatal("addresses moved!")
	}
	fmt.Println("compressibility changed from 2 to 4 sectors: addresses unchanged, no data movement")
}
