// Quickstart: build a Buddy Compression device with functional options,
// write byte-addressed data through the real BPC pipeline (no 128 B entry
// bookkeeping), read it back, Memcpy between allocations, and inspect where
// the bytes went (device slab vs. overflow tier).
package main

import (
	"bytes"
	"fmt"
	"log"

	"buddy"
	"buddy/internal/gen"
)

func main() {
	// A small GPU with 1 MiB of device memory and the paper's defaults
	// (BPC compression, 3x buddy carve-out, sliced metadata cache).
	dev := buddy.New(buddy.WithDeviceBytes(1 << 20))

	// Annotate the allocation with a 2x target ratio: 512 KiB of data
	// reserves only 256 KiB of device memory; each 128 B entry gets two
	// 32 B device sectors and a fixed two-sector slot in the carve-out.
	alloc, err := dev.Malloc("tensor", 512<<10, buddy.Target2x)
	if err != nil {
		log.Fatal(err)
	}
	defer alloc.Close()
	fmt.Printf("allocated %d bytes at target %s: device %d KiB, carve-out %d KiB\n",
		alloc.Size(), alloc.Target(), dev.DeviceUsed()>>10, dev.BuddyUsed()>>10)

	// Write three kinds of data: highly compressible, half-compressible,
	// and incompressible. Only the last overflows to buddy memory. The
	// writes are plain byte-addressed I/O — io.WriterAt.
	chunk := make([]byte, 128)
	r := gen.NewRNG(42, 1)
	kinds := []struct {
		name string
		g    gen.Generator
	}{
		{"smooth ramp (fits easily)", gen.Ramp{Step: 4}},
		{"fp64 field (exactly 2x)", gen.Noisy64{NoiseBits: 8, HiStep: 1}},
		{"random bytes (overflows)", gen.Random{}},
	}
	for i, k := range kinds {
		k.g.Fill(chunk, r)
		before := dev.Traffic()
		if _, err := alloc.WriteAt(chunk, int64(i)*128); err != nil {
			log.Fatal(err)
		}
		after := dev.Traffic()
		fmt.Printf("  write %-28s -> device %3d B, buddy %3d B\n",
			k.name,
			after.DeviceWriteBytes-before.DeviceWriteBytes,
			after.BuddyWriteBytes-before.BuddyWriteBytes)
	}

	// Read back and verify: compression is bit-exact end to end, even for
	// an unaligned window straddling all three regions.
	want := make([]byte, 3*128)
	r2 := gen.NewRNG(42, 1)
	for i, k := range kinds {
		k.g.Fill(want[i*128:(i+1)*128], r2)
	}
	got := make([]byte, 200)
	if _, err := alloc.ReadAt(got, 100); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, want[100:300]) {
		log.Fatal("unaligned read-back mismatch")
	}
	fmt.Println("unaligned 200 B window at offset 100 read back bit-exact")

	// Memcpy clones the region through both pipelines, like cudaMemcpy.
	clone, err := dev.Malloc("clone", alloc.Size(), buddy.Target2x)
	if err != nil {
		log.Fatal(err)
	}
	defer clone.Close()
	if _, err := buddy.Memcpy(clone, alloc, alloc.Size()); err != nil {
		log.Fatal(err)
	}
	if _, err := clone.ReadAt(got, 100); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, want[100:300]) {
		log.Fatal("Memcpy clone mismatch")
	}
	fmt.Println("Memcpy clone verified")

	// The headline design property (§3.3): rewriting data with different
	// compressibility never moves it.
	devAddr, budAddr := alloc.DeviceAddress(1), alloc.BuddyAddress(1)
	gen.Random{}.Fill(chunk, r)
	if _, err := alloc.WriteAt(chunk, 128); err != nil {
		log.Fatal(err)
	}
	if alloc.DeviceAddress(1) != devAddr || alloc.BuddyAddress(1) != budAddr {
		log.Fatal("addresses moved!")
	}
	fmt.Println("compressibility changed from 2 to 4 sectors: addresses unchanged, no data movement")

	// The device is two composed storage tiers; each reports its own
	// capacity and traffic.
	primary, overflow := dev.Tiers()
	pt, ot := primary.Traffic(), overflow.Traffic()
	fmt.Printf("tier %-14s: %6d B written, %6d B read\n", primary.Name(), pt.WrittenBytes, pt.ReadBytes)
	fmt.Printf("tier %-14s: %6d B written, %6d B read\n", overflow.Name(), ot.WrittenBytes, ot.ReadBytes)
}
