// DL training case study (§4.4): for each network of Tab. 1, find the
// largest mini-batch a 12 GB GPU supports, apply the Buddy Compression
// ratio from the profiling pass, and project the training speedup from the
// larger feasible batch — the end-to-end Fig. 13 flow.
package main

import (
	"fmt"
	"log"
	"os"

	"buddy"
	"buddy/internal/dltrain"
)

func main() {
	cfg := dltrain.DefaultModelConfig()
	fmt.Println("DL training with Buddy Compression on a 12 GB GPU")
	fmt.Println()

	for _, n := range dltrain.Networks() {
		base := dltrain.MaxBatch(n, dltrain.DeviceMemoryBytes, cfg)
		fmt.Printf("%-14s %6.1fM params, %5.1f MB activations/sample\n",
			n.Name, float64(n.TotalParams())/1e6,
			float64(n.TotalActivationsPerSample())*cfg.ActivationCopies*4/(1<<20))
		fmt.Printf("  footprint: batch 16 = %.1f GB, batch 64 = %.1f GB, batch 128 = %.1f GB\n",
			gb(dltrain.Footprint(n, 16, cfg)), gb(dltrain.Footprint(n, 64, cfg)),
			gb(dltrain.Footprint(n, 128, cfg)))
		fmt.Printf("  max batch on 12 GB: %d -> throughput %.0f samples/s\n",
			base, dltrain.Throughput(n, base, cfg))
	}

	fmt.Println("\nBuddy Compression batch scaling (Fig. 13c):")
	for _, r := range dltrain.Fig13c(cfg) {
		fmt.Printf("  %-14s batch %4d -> %4d with %.2fx compression: %.0f%% faster training\n",
			r.Name, r.BaseBatch, r.CompressedBatch, ratioOf(r.Name), (r.Speedup-1)*100)
	}

	// The full Fig. 13 family is in the experiment registry; render the
	// training-speedup figure through the same path cmd/buddysim uses.
	e, ok := buddy.LookupExperiment("fig13b")
	if !ok {
		log.Fatal("fig13b missing from the experiment registry")
	}
	fmt.Printf("\nregistry experiment %s — %s:\n", e.Name, e.Description)
	if err := e.Run(os.Stdout, buddy.QuickScale()); err != nil {
		log.Fatal(err)
	}
}

func gb(b int64) float64 { return float64(b) / (1 << 30) }

func ratioOf(name string) float64 {
	n, ok := dltrain.ByName(name)
	if !ok {
		return 1
	}
	return n.CompressionRatio
}
