// Serve: put a sharded pool in front of a fleet of Buddy Compression
// devices and drive it like a serving system — concurrent clients placing
// allocations (least-used with transparent spill-over), streaming I/O
// through the asynchronous per-shard submission queues, and one aggregate
// stats view across the fleet.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"sync"

	"buddy"
	"buddy/internal/gen"
)

func main() {
	shards := flag.Int("shards", 4, "devices behind the pool")
	clients := flag.Int("clients", 8, "concurrent client goroutines")
	kb := flag.Int("kb", 256, "working-set KiB per client")
	flag.Parse()

	// Per-shard capacity is sized so the whole fleet fits, but no single
	// shard could hold every client: placement has to spread the load.
	perShard := int64(*clients) * int64(*kb<<10) * 2 / int64(*shards)
	p, err := buddy.NewPool(
		buddy.WithShards(*shards),
		buddy.WithDeviceBytes(perShard),
		buddy.WithPlacement(buddy.PlaceLeastUsed()),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	fmt.Printf("pool: %d shards x %d KiB device memory, placement %s\n",
		p.Shards(), perShard>>10, p.Placement().Name())

	// Every client allocates its working set, streams it in through the
	// async queues, reads it back, and verifies — all concurrently.
	var wg sync.WaitGroup
	placed := make([]int, *clients)
	handles := make([]*buddy.Handle, *clients)
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			data := make([]byte, *kb<<10)
			// Alternate fp64-like fields (compress to exactly 2x) with
			// incompressible ones (overflow to the buddy carve-out), so the
			// fleet view below shows both tiers working.
			var g gen.Generator = gen.Noisy64{NoiseBits: 8, HiStep: 1}
			if c%2 == 1 {
				g = gen.Random{}
			}
			g.Fill(data, gen.NewRNG(uint64(c), 1))
			h, err := p.Malloc(fmt.Sprintf("client-%d", c), int64(len(data)), buddy.Target2x)
			if err != nil {
				log.Fatal(err)
			}
			placed[c] = h.Shard()
			handles[c] = h
			if _, err := p.SubmitWrite(h, data, 0).Wait(); err != nil {
				log.Fatal(err)
			}
			got := make([]byte, len(data))
			if _, err := p.SubmitRead(h, got, 0).Wait(); err != nil {
				log.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				log.Fatalf("client %d: read-back mismatch", c)
			}
		}(c)
	}
	wg.Wait()

	perShardCount := make([]int, *shards)
	for _, s := range placed {
		perShardCount[s]++
	}
	fmt.Printf("placement spread %d clients across shards as %v\n", *clients, perShardCount)

	// The aggregate view: summed traffic, fleet occupancy, per-shard link
	// busy cycles (idle gaps excluded — true occupancy, not queue horizon).
	st := p.Stats()
	fmt.Printf("fleet: %d allocations, %d KiB device used of %d KiB, meta-cache hit %.3f\n",
		st.Allocs, st.DeviceUsed>>10, st.DeviceCapacity>>10, st.MetadataCacheHitRate)
	for _, s := range st.Shards {
		fmt.Printf("  shard %d: %4d KiB used, %6.1f KiB buddy traffic, link busy r/w %.0f/%.0f cycles\n",
			s.Shard, s.DeviceUsed>>10,
			float64(s.Traffic.BuddyReadBytes+s.Traffic.BuddyWriteBytes)/1024,
			s.LinkReadBusyCycles, s.LinkWriteBusyCycles)
	}

	// The fleet view has been taken; release the working sets so their
	// device and carve-out reservations go back to the shards.
	for _, h := range handles {
		if err := h.Close(); err != nil {
			log.Fatal(err)
		}
	}

	// Spill-over: a burst pinned to shard 0 overflows onto the rest of the
	// fleet instead of failing.
	burst, err := buddy.NewPool(
		buddy.WithShards(2),
		buddy.WithDeviceBytes(64<<10),
		buddy.WithPlacement(buddy.PlaceShard(0)),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer burst.Close()
	for i := 0; i < 3; i++ {
		h, err := burst.Malloc(fmt.Sprintf("burst-%d", i), 24<<10, buddy.Target1x)
		if err != nil {
			log.Fatal(err)
		}
		// Hold every burst allocation until exit — releasing one early
		// would hand its capacity back and hide the spill-over.
		defer h.Close()
		fmt.Printf("burst alloc %d -> shard %d\n", i, h.Shard())
	}
}
