module buddy

go 1.24

// buddylint is the module's own lint gate (make lint). The analyzer
// framework it builds on is vendored as internal/lint/analysis — an
// API-compatible, stdlib-only mirror of golang.org/x/tools/go/analysis —
// so the tool pins with the module itself instead of an external
// x/tools version; swapping the import back to x/tools is a one-line
// change per analyzer if a dependency on it ever lands.
tool buddy/cmd/buddylint
