module buddy

go 1.24
