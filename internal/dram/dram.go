// Package dram models the GPU's HBM2 device memory as a set of
// bandwidth-limited channels (Tab. 2: 32 channels at 875 MHz, 900 GB/s
// aggregate). Each channel is a FIFO service queue: requests occupy the
// channel for bytes/bandwidth cycles and complete after an additional fixed
// access latency. Timestamps are in GPU core cycles.
package dram

// Config describes an HBM2 stack.
type Config struct {
	// Channels is the number of independent DRAM channels.
	Channels int
	// BandwidthGBs is the aggregate bandwidth across channels in GB/s.
	BandwidthGBs float64
	// CoreClockGHz converts wall time into core cycles.
	CoreClockGHz float64
	// LatencyCycles is the fixed access latency in core cycles (row
	// activation + CAS + interconnect), excluding queueing.
	LatencyCycles float64
}

// DefaultConfig returns Tab. 2's memory system: 32 HBM2 channels, 900 GB/s,
// against a 1.3 GHz core clock.
func DefaultConfig() Config {
	return Config{Channels: 32, BandwidthGBs: 900, CoreClockGHz: 1.3, LatencyCycles: 350}
}

// HBM2 is the channel-queue model. It is not safe for concurrent use; the
// simulator is single-threaded by design (deterministic).
type HBM2 struct {
	cfg           Config
	bytesPerCycle float64 // per channel
	busyUntil     []float64
	busyCycles    []float64
	// TotalBytes accumulates data transferred (for bandwidth accounting).
	TotalBytes uint64
}

// New constructs the channel model. Like nvlink.New, zero fields default
// individually to the Tab. 2 point, so a partially specified config (e.g.
// only the bandwidth of a sweep) keeps its explicit values instead of being
// replaced wholesale. An explicit zero LatencyCycles is honored when any
// other field is set; the all-zero Config selects DefaultConfig entirely.
func New(cfg Config) *HBM2 {
	def := DefaultConfig()
	if cfg == (Config{}) {
		cfg = def
	}
	if cfg.Channels <= 0 {
		cfg.Channels = def.Channels
	}
	if cfg.BandwidthGBs <= 0 {
		cfg.BandwidthGBs = def.BandwidthGBs
	}
	if cfg.CoreClockGHz <= 0 {
		cfg.CoreClockGHz = def.CoreClockGHz
	}
	perChan := cfg.BandwidthGBs / cfg.CoreClockGHz / float64(cfg.Channels)
	return &HBM2{
		cfg:           cfg,
		bytesPerCycle: perChan,
		busyUntil:     make([]float64, cfg.Channels),
		busyCycles:    make([]float64, cfg.Channels),
	}
}

// Channel maps a byte address onto a channel; consecutive 256 B blocks
// interleave across channels, the usual GPU address hash.
func (h *HBM2) Channel(addr uint64) int {
	return int((addr >> 8) % uint64(len(h.busyUntil)))
}

// Request enqueues a transfer of the given bytes on addr's channel at time
// now and returns the completion time. Queueing delay emerges from channel
// occupancy.
func (h *HBM2) Request(now float64, addr uint64, bytes int) float64 {
	ch := h.Channel(addr)
	start := now
	if h.busyUntil[ch] > start {
		start = h.busyUntil[ch]
	}
	xfer := float64(bytes) / h.bytesPerCycle
	h.busyUntil[ch] = start + xfer
	h.busyCycles[ch] += xfer
	h.TotalBytes += uint64(bytes)
	return start + xfer + h.cfg.LatencyCycles
}

// Drain enqueues bandwidth consumption without a latency-critical consumer
// (write-backs): it occupies the channel but the caller does not wait.
func (h *HBM2) Drain(now float64, addr uint64, bytes int) {
	ch := h.Channel(addr)
	start := now
	if h.busyUntil[ch] > start {
		start = h.busyUntil[ch]
	}
	xfer := float64(bytes) / h.bytesPerCycle
	h.busyUntil[ch] = start + xfer
	h.busyCycles[ch] += xfer
	h.TotalBytes += uint64(bytes)
}

// BusyCycles returns the total cycles spent transferring across all
// channels since the last Reset — accumulated service time, excluding idle
// gaps between requests.
func (h *HBM2) BusyCycles() float64 {
	var sum float64
	for _, b := range h.busyCycles {
		sum += b
	}
	return sum
}

// Utilization reports mean channel busy fraction up to horizon cycles: the
// cycles each channel actually spent transferring over the horizon. Idle
// gaps between requests count as idle (busy [0,2], idle [2,8], busy [8,9]
// is 0.3 of a 10-cycle horizon, not 0.9).
func (h *HBM2) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	var sum float64
	for _, b := range h.busyCycles {
		u := b / horizon
		if u > 1 {
			u = 1
		}
		sum += u
	}
	return sum / float64(len(h.busyCycles))
}

// Reset clears queue state and counters.
func (h *HBM2) Reset() {
	for i := range h.busyUntil {
		h.busyUntil[i] = 0
		h.busyCycles[i] = 0
	}
	h.TotalBytes = 0
}
