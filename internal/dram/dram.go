// Package dram models the GPU's HBM2 device memory as a set of
// bandwidth-limited channels (Tab. 2: 32 channels at 875 MHz, 900 GB/s
// aggregate). Each channel is a FIFO service queue: requests occupy the
// channel for bytes/bandwidth cycles and complete after an additional fixed
// access latency. Timestamps are in GPU core cycles.
package dram

// Config describes an HBM2 stack.
type Config struct {
	// Channels is the number of independent DRAM channels.
	Channels int
	// BandwidthGBs is the aggregate bandwidth across channels in GB/s.
	BandwidthGBs float64
	// CoreClockGHz converts wall time into core cycles.
	CoreClockGHz float64
	// LatencyCycles is the fixed access latency in core cycles (row
	// activation + CAS + interconnect), excluding queueing.
	LatencyCycles float64
}

// DefaultConfig returns Tab. 2's memory system: 32 HBM2 channels, 900 GB/s,
// against a 1.3 GHz core clock.
func DefaultConfig() Config {
	return Config{Channels: 32, BandwidthGBs: 900, CoreClockGHz: 1.3, LatencyCycles: 350}
}

// HBM2 is the channel-queue model. It is not safe for concurrent use; the
// simulator is single-threaded by design (deterministic).
type HBM2 struct {
	cfg           Config
	bytesPerCycle float64 // per channel
	busyUntil     []float64
	// TotalBytes accumulates data transferred (for bandwidth accounting).
	TotalBytes uint64
}

// New constructs the channel model.
func New(cfg Config) *HBM2 {
	if cfg.Channels <= 0 {
		cfg = DefaultConfig()
	}
	perChan := cfg.BandwidthGBs / cfg.CoreClockGHz / float64(cfg.Channels)
	return &HBM2{
		cfg:           cfg,
		bytesPerCycle: perChan,
		busyUntil:     make([]float64, cfg.Channels),
	}
}

// Channel maps a byte address onto a channel; consecutive 256 B blocks
// interleave across channels, the usual GPU address hash.
func (h *HBM2) Channel(addr uint64) int {
	return int((addr >> 8) % uint64(len(h.busyUntil)))
}

// Request enqueues a transfer of the given bytes on addr's channel at time
// now and returns the completion time. Queueing delay emerges from channel
// occupancy.
func (h *HBM2) Request(now float64, addr uint64, bytes int) float64 {
	ch := h.Channel(addr)
	start := now
	if h.busyUntil[ch] > start {
		start = h.busyUntil[ch]
	}
	xfer := float64(bytes) / h.bytesPerCycle
	h.busyUntil[ch] = start + xfer
	h.TotalBytes += uint64(bytes)
	return start + xfer + h.cfg.LatencyCycles
}

// Drain enqueues bandwidth consumption without a latency-critical consumer
// (write-backs): it occupies the channel but the caller does not wait.
func (h *HBM2) Drain(now float64, addr uint64, bytes int) {
	ch := h.Channel(addr)
	start := now
	if h.busyUntil[ch] > start {
		start = h.busyUntil[ch]
	}
	h.busyUntil[ch] = start + float64(bytes)/h.bytesPerCycle
	h.TotalBytes += uint64(bytes)
}

// Utilization reports mean channel busy time up to horizon cycles.
func (h *HBM2) Utilization(horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	var sum float64
	for _, b := range h.busyUntil {
		u := b / horizon
		if u > 1 {
			u = 1
		}
		sum += u
	}
	return sum / float64(len(h.busyUntil))
}

// Reset clears queue state and counters.
func (h *HBM2) Reset() {
	for i := range h.busyUntil {
		h.busyUntil[i] = 0
	}
	h.TotalBytes = 0
}
