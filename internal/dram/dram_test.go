package dram

import "testing"

func TestBandwidthServiceTime(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg)
	perChan := cfg.BandwidthGBs / cfg.CoreClockGHz / float64(cfg.Channels)
	done := h.Request(0, 0, 128)
	want := 128/perChan + cfg.LatencyCycles
	if done < want*0.999 || done > want*1.001 {
		t.Errorf("service time %.2f, want %.2f", done, want)
	}
}

func TestQueueingDelay(t *testing.T) {
	h := New(DefaultConfig())
	first := h.Request(0, 0, 4096)
	second := h.Request(0, 0, 4096) // same channel: must queue
	if second <= first {
		t.Errorf("second request (%.1f) should finish after first (%.1f)", second, first)
	}
	// A different channel is independent.
	other := h.Request(0, 256, 4096)
	if other != first {
		t.Errorf("independent channel should match first request's time: %.1f vs %.1f", other, first)
	}
}

func TestChannelHash(t *testing.T) {
	h := New(DefaultConfig())
	if h.Channel(0) == h.Channel(256) {
		t.Error("adjacent 256 B blocks should interleave to different channels")
	}
	if h.Channel(0) != h.Channel(255) {
		t.Error("same 256 B block must map to one channel")
	}
}

func TestDrainAndUtilization(t *testing.T) {
	h := New(DefaultConfig())
	h.Drain(0, 0, 1<<20)
	if h.TotalBytes != 1<<20 {
		t.Errorf("TotalBytes = %d, want %d", h.TotalBytes, 1<<20)
	}
	if u := h.Utilization(1000); u <= 0 {
		t.Error("utilization should be positive after traffic")
	}
	h.Reset()
	if h.TotalBytes != 0 || h.Utilization(1000) != 0 {
		t.Error("Reset should clear state")
	}
}

func TestInvalidConfigFallsBack(t *testing.T) {
	h := New(Config{})
	if h.Request(0, 0, 128) <= 0 {
		t.Error("zero config should fall back to defaults")
	}
}
