package dram

import (
	"math"
	"testing"
)

func TestBandwidthServiceTime(t *testing.T) {
	cfg := DefaultConfig()
	h := New(cfg)
	perChan := cfg.BandwidthGBs / cfg.CoreClockGHz / float64(cfg.Channels)
	done := h.Request(0, 0, 128)
	want := 128/perChan + cfg.LatencyCycles
	if done < want*0.999 || done > want*1.001 {
		t.Errorf("service time %.2f, want %.2f", done, want)
	}
}

func TestQueueingDelay(t *testing.T) {
	h := New(DefaultConfig())
	first := h.Request(0, 0, 4096)
	second := h.Request(0, 0, 4096) // same channel: must queue
	if second <= first {
		t.Errorf("second request (%.1f) should finish after first (%.1f)", second, first)
	}
	// A different channel is independent.
	other := h.Request(0, 256, 4096)
	if other != first {
		t.Errorf("independent channel should match first request's time: %.1f vs %.1f", other, first)
	}
}

func TestChannelHash(t *testing.T) {
	h := New(DefaultConfig())
	if h.Channel(0) == h.Channel(256) {
		t.Error("adjacent 256 B blocks should interleave to different channels")
	}
	if h.Channel(0) != h.Channel(255) {
		t.Error("same 256 B block must map to one channel")
	}
}

func TestDrainAndUtilization(t *testing.T) {
	h := New(DefaultConfig())
	h.Drain(0, 0, 1<<20)
	if h.TotalBytes != 1<<20 {
		t.Errorf("TotalBytes = %d, want %d", h.TotalBytes, 1<<20)
	}
	if u := h.Utilization(1000); u <= 0 {
		t.Error("utilization should be positive after traffic")
	}
	h.Reset()
	if h.TotalBytes != 0 || h.Utilization(1000) != 0 {
		t.Error("Reset should clear state")
	}
}

func TestInvalidConfigFallsBack(t *testing.T) {
	h := New(Config{})
	if h.Request(0, 0, 128) <= 0 {
		t.Error("zero config should fall back to defaults")
	}
}

func TestPartialConfigKeepsExplicitFields(t *testing.T) {
	// A Fig. 11-style sweep passes only the bandwidth; the old New replaced
	// the whole config with DefaultConfig (silently restoring 900 GB/s).
	h := New(Config{BandwidthGBs: 450})
	if h.cfg.BandwidthGBs != 450 {
		t.Fatalf("explicit bandwidth discarded: got %v GB/s, want 450", h.cfg.BandwidthGBs)
	}
	if h.cfg.Channels != 32 || h.cfg.CoreClockGHz != 1.3 {
		t.Errorf("zero fields should default to Tab. 2: channels=%d clock=%v",
			h.cfg.Channels, h.cfg.CoreClockGHz)
	}
	// Halving the bandwidth must double the per-channel service time.
	full := New(DefaultConfig())
	if got, want := h.Request(0, 0, 4096)-h.cfg.LatencyCycles,
		2*(full.Request(0, 0, 4096)-full.cfg.LatencyCycles); math.Abs(got-want) > 1e-9*want {
		t.Errorf("450 GB/s service time %.2f, want %.2f (2x the 900 GB/s time)", got, want)
	}
}

func TestUtilizationIgnoresIdleGaps(t *testing.T) {
	// One channel at 1 B/cycle: busy [0,2], idle [2,8], busy [8,9]. The old
	// busyUntil/horizon accounting reported 0.9; the true busy fraction of
	// the 10-cycle horizon is 0.3.
	h := New(Config{Channels: 1, BandwidthGBs: 1.3, CoreClockGHz: 1.3})
	h.Request(0, 0, 2)
	h.Drain(8, 0, 1)
	if got, want := h.Utilization(10), 0.3; math.Abs(got-want) > 1e-9 {
		t.Errorf("Utilization with idle gap = %.3f, want %.3f", got, want)
	}
	if got := h.BusyCycles(); math.Abs(got-3) > 1e-9 {
		t.Errorf("BusyCycles = %.3f, want 3", got)
	}
	// Multi-channel: Utilization averages per-channel busy cycles.
	h2 := New(Config{Channels: 2, BandwidthGBs: 2.6, CoreClockGHz: 1.3})
	h2.Request(0, 0, 4)   // channel 0: busy 4 cycles
	h2.Request(6, 256, 2) // channel 1: busy 2 cycles, after an idle gap
	if got, want := h2.Utilization(10), (0.4+0.2)/2; math.Abs(got-want) > 1e-9 {
		t.Errorf("mean channel utilization = %.3f, want %.3f", got, want)
	}
	h2.Reset()
	if h2.BusyCycles() != 0 || h2.Utilization(10) != 0 {
		t.Error("Reset should clear busy-cycle accounting")
	}
}
