package dltrain

// ModelConfig parameterizes the analytical footprint and throughput models.
type ModelConfig struct {
	// BytesPerValue is the training precision (FP32).
	BytesPerValue int
	// OptimizerCopies counts persistent per-parameter tensors: weights,
	// gradients, and momentum (SGD+momentum as in Caffe).
	OptimizerCopies int
	// ActivationCopies scales per-sample activations: forward tensors plus
	// backward gradients.
	ActivationCopies float64
	// WorkspaceBytes is the framework/cuDNN workspace floor.
	WorkspaceBytes int64
	// PeakTFLOPs is the GPU's sustained math throughput (Titan Xp class).
	PeakTFLOPs float64
	// MemBWGBs is the device bandwidth.
	MemBWGBs float64
	// UtilHalfBatch is the mini-batch size at which the GPU reaches half
	// of its peak utilization (the saturation knee of Fig. 13b).
	UtilHalfBatch float64
	// FixedOverheadMs is the per-iteration launch/framework overhead.
	FixedOverheadMs float64
}

// DefaultModelConfig returns the Titan Xp-class setup of the case study
// (12 GB device memory, §4.4).
func DefaultModelConfig() ModelConfig {
	return ModelConfig{
		BytesPerValue:    4,
		OptimizerCopies:  3,
		ActivationCopies: 2,
		WorkspaceBytes:   512 << 20,
		PeakTFLOPs:       10,
		MemBWGBs:         548,
		UtilHalfBatch:    40,
		FixedOverheadMs:  2,
	}
}

// DeviceMemoryBytes is the case study's GPU capacity (Titan Xp, 12 GB).
const DeviceMemoryBytes = int64(12) << 30

// Footprint returns the training memory footprint at the given mini-batch
// size (Fig. 13a): persistent parameter state plus batch-proportional
// activations plus workspace.
func Footprint(n *Network, batch int, cfg ModelConfig) int64 {
	if cfg.BytesPerValue == 0 {
		cfg = DefaultModelConfig()
	}
	params := n.TotalParams() * int64(cfg.BytesPerValue) * int64(cfg.OptimizerCopies)
	acts := int64(float64(n.TotalActivationsPerSample()) * cfg.ActivationCopies *
		float64(cfg.BytesPerValue) * float64(batch))
	return params + acts + cfg.WorkspaceBytes
}

// MaxBatch returns the largest mini-batch whose footprint fits capacity.
func MaxBatch(n *Network, capacity int64, cfg ModelConfig) int {
	lo, hi := 0, 1<<20
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if Footprint(n, mid, cfg) <= capacity {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// IterationSeconds estimates one training iteration's duration at the given
// batch: compute time under a batch-dependent utilization curve (small
// batches underutilize the GPU), memory time for parameter+activation
// traffic, and fixed overhead — the Paleo/DeLTA-style model of §4.4.
func IterationSeconds(n *Network, batch int, cfg ModelConfig) float64 {
	if cfg.BytesPerValue == 0 {
		cfg = DefaultModelConfig()
	}
	flops := float64(n.TotalFLOPsPerSample()) * 3 * float64(batch) // fwd + 2x bwd
	util := float64(batch) / (float64(batch) + cfg.UtilHalfBatch)
	compute := flops / (cfg.PeakTFLOPs * 1e12 * util)

	bytes := float64(n.TotalParams())*float64(cfg.BytesPerValue)*3 + // read W, write G, momentum
		float64(n.TotalActivationsPerSample())*cfg.ActivationCopies*
			float64(cfg.BytesPerValue)*float64(batch)*2
	mem := bytes / (cfg.MemBWGBs * 1e9)

	t := compute
	if mem > t {
		t = mem
	}
	return t + cfg.FixedOverheadMs/1e3
}

// Throughput returns training throughput in samples per second.
func Throughput(n *Network, batch int, cfg ModelConfig) float64 {
	return float64(batch) / IterationSeconds(n, batch, cfg)
}

// Fig13aPoint is one (batch, footprint) sample.
type Fig13aPoint struct {
	Batch     int
	Footprint int64
}

// Fig13a sweeps mini-batch sizes for one network up to the last size that
// fits the 12 GB device (Fig. 13a stops at the Titan Xp limit).
func Fig13a(n *Network, batches []int, cfg ModelConfig) []Fig13aPoint {
	if len(batches) == 0 {
		batches = []int{1, 2, 4, 8, 16, 32, 64, 96, 128, 192, 256}
	}
	var out []Fig13aPoint
	for _, b := range batches {
		out = append(out, Fig13aPoint{Batch: b, Footprint: Footprint(n, b, cfg)})
	}
	return out
}

// Fig13bPoint is one (batch, speedup) sample, normalized to batch=16 as the
// paper normalizes to a small baseline batch.
type Fig13bPoint struct {
	Batch   int
	Speedup float64
}

// Fig13b projects throughput speedup versus mini-batch size.
func Fig13b(n *Network, batches []int, cfg ModelConfig) []Fig13bPoint {
	if len(batches) == 0 {
		batches = []int{16, 32, 64, 128, 256}
	}
	base := Throughput(n, batches[0], cfg)
	var out []Fig13bPoint
	for _, b := range batches {
		out = append(out, Fig13bPoint{Batch: b, Speedup: Throughput(n, b, cfg) / base})
	}
	return out
}

// Fig13cRow is the Buddy-Compression batch-scaling projection for one
// network: the largest batch on a 12 GB GPU, the largest batch with the
// network's Buddy compression ratio, and the throughput speedup.
type Fig13cRow struct {
	Name            string
	BaseBatch       int
	CompressedBatch int
	Speedup         float64
}

// Fig13c computes the paper's headline case-study result: Buddy Compression
// enables larger mini-batches worth an average ~14% throughput, with VGG16
// and BigLSTM around 30% and 28%.
func Fig13c(cfg ModelConfig) []Fig13cRow {
	var rows []Fig13cRow
	for _, n := range Networks() {
		base := MaxBatch(n, DeviceMemoryBytes, cfg)
		comp := MaxBatch(n, int64(float64(DeviceMemoryBytes)*n.CompressionRatio), cfg)
		base = clampBatch(base)
		comp = clampBatch(comp)
		sp := Throughput(n, comp, cfg) / Throughput(n, base, cfg)
		rows = append(rows, Fig13cRow{Name: n.Name, BaseBatch: base, CompressedBatch: comp, Speedup: sp})
	}
	return rows
}

// clampBatch rounds a batch down to the usual power-of-two-ish training
// sizes (frameworks run fixed batch shapes).
func clampBatch(b int) int {
	sizes := []int{1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512}
	out := sizes[0]
	for _, s := range sizes {
		if s <= b {
			out = s
		}
	}
	return out
}
