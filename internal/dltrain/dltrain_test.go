package dltrain

import "testing"

func TestFootprintMonotone(t *testing.T) {
	cfg := DefaultModelConfig()
	for _, n := range Networks() {
		prev := int64(0)
		for _, b := range []int{1, 2, 8, 32, 128} {
			f := Footprint(n, b, cfg)
			if f <= prev {
				t.Errorf("%s: footprint not monotone at batch %d", n.Name, b)
			}
			prev = f
		}
	}
}

func TestMaxBatchInverseOfFootprint(t *testing.T) {
	cfg := DefaultModelConfig()
	for _, n := range Networks() {
		b := MaxBatch(n, DeviceMemoryBytes, cfg)
		if b < 1 {
			t.Fatalf("%s: no batch fits 12 GB", n.Name)
		}
		if Footprint(n, b, cfg) > DeviceMemoryBytes {
			t.Errorf("%s: MaxBatch %d does not fit", n.Name, b)
		}
		if Footprint(n, b+1, cfg) <= DeviceMemoryBytes {
			t.Errorf("%s: MaxBatch %d not maximal", n.Name, b)
		}
	}
}

func TestThroughputKnee(t *testing.T) {
	cfg := DefaultModelConfig()
	n, _ := ByName("ResNet50")
	t8 := Throughput(n, 8, cfg)
	t64 := Throughput(n, 64, cfg)
	t512 := Throughput(n, 512, cfg)
	if t64 <= t8 {
		t.Error("throughput should grow 8 -> 64")
	}
	// Past the knee, gains flatten: 64->512 gain smaller than 8->64 gain.
	if t512/t64 >= t64/t8 {
		t.Errorf("plateau missing: %.2f vs %.2f", t512/t64, t64/t8)
	}
}

func TestBigLSTMVGGAreCapacityLimited(t *testing.T) {
	// §4.4: "both of these are unable to fit the mini-batch size of 64,
	// which [is] needed for good resource utilization" — in our model VGG16
	// caps at 64 and BigLSTM under 128 on 12 GB.
	cfg := DefaultModelConfig()
	vgg, _ := ByName("VGG16")
	lstm, _ := ByName("BigLSTM")
	if b := MaxBatch(vgg, DeviceMemoryBytes, cfg); b > 96 {
		t.Errorf("VGG16 max batch %d, want capacity-limited (<= 96)", b)
	}
	if b := MaxBatch(lstm, DeviceMemoryBytes, cfg); b > 128 {
		t.Errorf("BigLSTM max batch %d, want capacity-limited (<= 128)", b)
	}
}

func TestClampBatch(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 5: 4, 100: 96, 513: 512, 1 << 20: 512}
	for in, want := range cases {
		if got := clampBatch(in); got != want {
			t.Errorf("clampBatch(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("VGG16"); !ok {
		t.Error("VGG16 missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown network should not resolve")
	}
}

func TestIterationSecondsPositive(t *testing.T) {
	cfg := DefaultModelConfig()
	for _, n := range Networks() {
		if s := IterationSeconds(n, 32, cfg); s <= 0 {
			t.Errorf("%s: non-positive iteration time", n.Name)
		}
	}
}

func TestZeroConfigDefaults(t *testing.T) {
	n, _ := ByName("AlexNet")
	if Footprint(n, 32, ModelConfig{}) <= 0 {
		t.Error("zero config should default, not break")
	}
	if IterationSeconds(n, 32, ModelConfig{}) <= 0 {
		t.Error("zero config should default, not break")
	}
}
