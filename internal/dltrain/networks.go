// Package dltrain implements the paper's DL training case study (§4.4):
// layer-graph definitions of the six networks in Tab. 1, an analytical
// memory-footprint model (Fig. 13a), a Paleo/DeLTA-style throughput model
// (Fig. 13b), and the Buddy-Compression batch-scaling projection (Fig. 13c).
// The paper itself uses an analytical model for these projections because
// trace-driven simulation cannot hold footprints beyond real GPU capacity;
// we implement the same class of model from the published layer shapes.
package dltrain

// LayerKind classifies layers for the footprint and timing models.
type LayerKind int

// Layer kinds.
const (
	Conv LayerKind = iota
	FC
	Pool
	LSTM
	Embed
)

// Layer is one network layer with the shapes the models need.
type Layer struct {
	// Kind selects the cost model.
	Kind LayerKind
	// Name for reporting.
	Name string
	// For Conv: input channels, output channels, kernel size, output
	// spatial size (H=W assumed square), stride already applied to OutHW.
	InC, OutC, Kernel, OutHW int
	// For FC/Embed: input and output dimensions.
	InDim, OutDim int
	// For LSTM: hidden and projection sizes.
	Hidden, Proj int
	// SeqLen for recurrent layers (time steps per sample).
	SeqLen int
}

// Params returns the layer's parameter count.
func (l Layer) Params() int64 {
	switch l.Kind {
	case Conv:
		return int64(l.InC)*int64(l.OutC)*int64(l.Kernel)*int64(l.Kernel) + int64(l.OutC)
	case FC:
		return int64(l.InDim)*int64(l.OutDim) + int64(l.OutDim)
	case Embed:
		return int64(l.InDim) * int64(l.OutDim)
	case LSTM:
		// 4 gates x (input + recurrent) x hidden, with a projection.
		in := int64(l.Proj)
		return 4*(in+int64(l.Proj))*int64(l.Hidden) + int64(l.Hidden)*int64(l.Proj)
	default:
		return 0
	}
}

// ActivationsPerSample returns the number of activation values one sample
// produces at this layer (forward tensor; backward roughly doubles it).
func (l Layer) ActivationsPerSample() int64 {
	switch l.Kind {
	case Conv, Pool:
		return int64(l.OutC) * int64(l.OutHW) * int64(l.OutHW)
	case FC:
		seq := int64(1)
		if l.SeqLen > 1 {
			seq = int64(l.SeqLen)
		}
		return int64(l.OutDim) * seq
	case Embed:
		return int64(l.OutDim) * int64(l.SeqLen)
	case LSTM:
		// Hidden and projected states plus the four gate activations kept
		// for backpropagation through time.
		return (5*int64(l.Hidden) + int64(l.Proj)) * int64(l.SeqLen)
	default:
		return 0
	}
}

// FLOPsPerSample returns the forward multiply-accumulate count for one
// sample (backward costs ~2x forward; the throughput model applies that).
func (l Layer) FLOPsPerSample() int64 {
	switch l.Kind {
	case Conv:
		return 2 * int64(l.InC) * int64(l.OutC) * int64(l.Kernel) * int64(l.Kernel) *
			int64(l.OutHW) * int64(l.OutHW)
	case FC:
		return 2 * int64(l.InDim) * int64(l.OutDim)
	case Embed:
		return 2 * int64(l.OutDim) * int64(l.SeqLen)
	case LSTM:
		return 2 * 4 * (int64(l.Proj) + int64(l.Proj)) * int64(l.Hidden) * int64(l.SeqLen)
	case Pool:
		return int64(l.OutC) * int64(l.OutHW) * int64(l.OutHW) * 4
	default:
		return 0
	}
}

// Network is a named stack of layers.
type Network struct {
	// Name as used in Tab. 1.
	Name string
	// Layers in forward order.
	Layers []Layer
	// CompressionRatio is the Buddy Compression ratio the profiling pass
	// achieves for this network (Fig. 7 final design); it scales the
	// effective memory in the Fig. 13c projection.
	CompressionRatio float64
}

func conv(name string, inC, outC, k, outHW int) Layer {
	return Layer{Kind: Conv, Name: name, InC: inC, OutC: outC, Kernel: k, OutHW: outHW}
}

func pool(name string, c, outHW int) Layer {
	return Layer{Kind: Pool, Name: name, OutC: c, OutHW: outHW}
}

func fc(name string, in, out int) Layer {
	return Layer{Kind: FC, Name: name, InDim: in, OutDim: out}
}

// AlexNet: 5 convolutions and 3 very large fully-connected layers; the FC
// parameters dominate, which is why its footprint transition point comes
// late (batch 96, Fig. 13a).
func AlexNet() *Network {
	return &Network{
		Name:             "AlexNet",
		CompressionRatio: 1.43,
		Layers: []Layer{
			conv("conv1", 3, 96, 11, 55), pool("pool1", 96, 27),
			conv("conv2", 96, 256, 5, 27), pool("pool2", 256, 13),
			conv("conv3", 256, 384, 3, 13),
			conv("conv4", 384, 384, 3, 13),
			conv("conv5", 384, 256, 3, 13), pool("pool5", 256, 6),
			fc("fc6", 256*6*6, 4096),
			fc("fc7", 4096, 4096),
			fc("fc8", 4096, 1000),
		},
	}
}

// VGG16: 13 convolutions + 3 FCs; both parameters and activations are huge.
func VGG16() *Network {
	return &Network{
		Name:             "VGG16",
		CompressionRatio: 1.86,
		Layers: []Layer{
			conv("conv1_1", 3, 64, 3, 224), conv("conv1_2", 64, 64, 3, 224), pool("pool1", 64, 112),
			conv("conv2_1", 64, 128, 3, 112), conv("conv2_2", 128, 128, 3, 112), pool("pool2", 128, 56),
			conv("conv3_1", 128, 256, 3, 56), conv("conv3_2", 256, 256, 3, 56),
			conv("conv3_3", 256, 256, 3, 56), pool("pool3", 256, 28),
			conv("conv4_1", 256, 512, 3, 28), conv("conv4_2", 512, 512, 3, 28),
			conv("conv4_3", 512, 512, 3, 28), pool("pool4", 512, 14),
			conv("conv5_1", 512, 512, 3, 14), conv("conv5_2", 512, 512, 3, 14),
			conv("conv5_3", 512, 512, 3, 14), pool("pool5", 512, 7),
			fc("fc6", 512*7*7, 4096), fc("fc7", 4096, 4096), fc("fc8", 4096, 1000),
		},
	}
}

// ResNet50 approximated by its bottleneck stages (the 3-layer blocks are
// expanded to aggregate shapes; the footprint/throughput models only need
// totals).
func ResNet50() *Network {
	n := &Network{Name: "ResNet50", CompressionRatio: 1.51}
	n.Layers = append(n.Layers, conv("conv1", 3, 64, 7, 112), pool("pool1", 64, 56))
	stage := func(name string, blocks, inC, midC, outC, hw int) {
		for b := 0; b < blocks; b++ {
			in := inC
			if b > 0 {
				in = outC
			}
			n.Layers = append(n.Layers,
				conv(name+"_a", in, midC, 1, hw),
				conv(name+"_b", midC, midC, 3, hw),
				conv(name+"_c", midC, outC, 1, hw),
			)
		}
	}
	stage("res2", 3, 64, 64, 256, 56)
	stage("res3", 4, 256, 128, 512, 28)
	stage("res4", 6, 512, 256, 1024, 14)
	stage("res5", 3, 1024, 512, 2048, 7)
	n.Layers = append(n.Layers, fc("fc", 2048, 1000))
	return n
}

// InceptionV2 approximated by aggregate mixed blocks.
func InceptionV2() *Network {
	return &Network{
		Name:             "Inception_V2",
		CompressionRatio: 1.51,
		Layers: []Layer{
			conv("conv1", 3, 64, 7, 112), pool("pool1", 64, 56),
			conv("conv2", 64, 192, 3, 56), pool("pool2", 192, 28),
			conv("mixed3a", 192, 256, 3, 28),
			conv("mixed3b", 256, 320, 3, 28), pool("pool3", 320, 14),
			conv("mixed4a", 320, 576, 3, 14),
			conv("mixed4b", 576, 576, 3, 14),
			conv("mixed4c", 576, 608, 3, 14), pool("pool4", 608, 7),
			conv("mixed5a", 608, 1024, 3, 7),
			conv("mixed5b", 1024, 1024, 3, 7),
			fc("fc", 1024, 1000),
		},
	}
}

// SqueezeNet v1.1: fire modules keep parameters tiny; activations dominate.
func SqueezeNet() *Network {
	n := &Network{Name: "SqueezeNet", CompressionRatio: 1.48}
	n.Layers = append(n.Layers, conv("conv1", 3, 64, 3, 111), pool("pool1", 64, 55))
	fire := func(name string, in, squeeze, expand, hw int) {
		n.Layers = append(n.Layers,
			conv(name+"_s", in, squeeze, 1, hw),
			conv(name+"_e1", squeeze, expand, 1, hw),
			conv(name+"_e3", squeeze, expand, 3, hw),
		)
	}
	fire("fire2", 64, 16, 64, 55)
	fire("fire3", 128, 16, 64, 55)
	n.Layers = append(n.Layers, pool("pool3", 128, 27))
	fire("fire4", 128, 32, 128, 27)
	fire("fire5", 256, 32, 128, 27)
	n.Layers = append(n.Layers, pool("pool5", 256, 13))
	fire("fire6", 256, 48, 192, 13)
	fire("fire7", 384, 48, 192, 13)
	fire("fire8", 384, 64, 256, 13)
	fire("fire9", 512, 64, 256, 13)
	n.Layers = append(n.Layers, conv("conv10", 512, 1000, 1, 13))
	return n
}

// BigLSTM: 2-layer LSTM with 8192-wide recurrent state and 1024-d
// projections over the English language model (§4.1); the embedding and
// softmax layers dominate parameters.
func BigLSTM() *Network {
	const vocab = 150000 // scaled-down LM vocabulary (true model: 800k)
	const seq = 35       // BPTT unroll length
	return &Network{
		Name:             "BigLSTM",
		CompressionRatio: 1.54,
		Layers: []Layer{
			{Kind: Embed, Name: "embedding", InDim: vocab, OutDim: 1024, SeqLen: seq},
			{Kind: LSTM, Name: "lstm1", Hidden: 8192, Proj: 1024, SeqLen: seq},
			{Kind: LSTM, Name: "lstm2", Hidden: 8192, Proj: 1024, SeqLen: seq},
			{Kind: FC, Name: "softmax", InDim: 1024, OutDim: vocab, SeqLen: seq},
		},
	}
}

// Networks returns the six DL training workloads of Tab. 1.
func Networks() []*Network {
	return []*Network{
		BigLSTM(), AlexNet(), InceptionV2(), SqueezeNet(), VGG16(), ResNet50(),
	}
}

// ByName looks a network up.
func ByName(name string) (*Network, bool) {
	for _, n := range Networks() {
		if n.Name == name {
			return n, true
		}
	}
	return nil, false
}

// TotalParams sums the network's parameters.
func (n *Network) TotalParams() int64 {
	var p int64
	for _, l := range n.Layers {
		p += l.Params()
	}
	return p
}

// TotalActivationsPerSample sums per-sample activation values.
func (n *Network) TotalActivationsPerSample() int64 {
	var a int64
	for _, l := range n.Layers {
		a += l.ActivationsPerSample()
	}
	return a
}

// TotalFLOPsPerSample sums per-sample forward FLOPs.
func (n *Network) TotalFLOPsPerSample() int64 {
	var f int64
	for _, l := range n.Layers {
		f += l.FLOPsPerSample()
	}
	return f
}
