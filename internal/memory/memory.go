// Package memory models the GPU memory objects the paper reasons about:
// 128 B memory-entries (the compression granularity), 32 B sectors (the
// DRAM access granularity), 8 KB pages (the unit of the Fig. 6 heat-maps and
// of the page-table metadata), cudaMalloc-style allocations (the granularity
// of target-compression-ratio annotation, §3.4), and whole-memory snapshots
// (the paper's periodic memory dumps, §3.1). Compressibility statistics over
// these objects (ratios, sector histograms) live in internal/analysis,
// which indexes a snapshot with exactly one encode per entry.
package memory

import (
	"fmt"

	"buddy/internal/compress"
)

// Layout constants from the paper.
const (
	EntryBytes     = compress.EntryBytes // 128 B memory-entry
	SectorBytes    = compress.SectorBytes
	PageBytes      = 8 << 10                // 8 KB pages (Fig. 6)
	EntriesPerPage = PageBytes / EntryBytes // 64
)

// An Allocation is one cudaMalloc-style region, the granularity at which the
// paper assigns per-allocation target compression ratios. Data holds the
// (possibly scaled-down) synthesized contents.
type Allocation struct {
	// Name identifies the allocation within its benchmark (e.g. "grid",
	// "weights_conv3").
	Name string
	// Data is the current contents; its length is a multiple of EntryBytes.
	Data []byte
}

// Entries returns the number of 128 B memory-entries in the allocation.
func (a *Allocation) Entries() int { return len(a.Data) / EntryBytes }

// Entry returns the i-th 128 B memory-entry.
func (a *Allocation) Entry(i int) []byte {
	return a.Data[i*EntryBytes : (i+1)*EntryBytes]
}

// Pages returns the number of 8 KB pages (rounded up).
func (a *Allocation) Pages() int {
	return (len(a.Data) + PageBytes - 1) / PageBytes
}

// A Snapshot is one memory dump: the set of live allocations at a point in
// the workload's execution. The paper takes ten snapshots per benchmark at
// kernel boundaries (§3.1).
type Snapshot struct {
	// Index is the snapshot's position in the run (0..9 for the paper's
	// ten equally distributed dumps).
	Index int
	// Allocations lists the live regions in device-address order.
	Allocations []*Allocation
}

// TotalBytes returns the footprint of the snapshot.
func (s *Snapshot) TotalBytes() int {
	var n int
	for _, a := range s.Allocations {
		n += len(a.Data)
	}
	return n
}

// TotalEntries returns the number of memory-entries across allocations.
func (s *Snapshot) TotalEntries() int { return s.TotalBytes() / EntryBytes }

// Find returns the allocation with the given name, or nil.
func (s *Snapshot) Find(name string) *Allocation {
	for _, a := range s.Allocations {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// NewAllocation creates an allocation of size bytes (rounded up to a whole
// number of entries) with zeroed contents.
func NewAllocation(name string, size int) *Allocation {
	if size <= 0 {
		size = EntryBytes
	}
	entries := (size + EntryBytes - 1) / EntryBytes
	return &Allocation{Name: name, Data: make([]byte, entries*EntryBytes)}
}

// Validate checks structural invariants and returns a descriptive error for
// the first violation: allocation data must be entry-aligned and names
// unique within a snapshot.
func (s *Snapshot) Validate() error {
	seen := make(map[string]bool, len(s.Allocations))
	for _, a := range s.Allocations {
		if len(a.Data)%EntryBytes != 0 {
			return fmt.Errorf("memory: allocation %q size %d not entry-aligned", a.Name, len(a.Data))
		}
		if seen[a.Name] {
			return fmt.Errorf("memory: duplicate allocation name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}
