package memory

import (
	"testing"

	"buddy/internal/compress"
	"buddy/internal/gen"
)

func TestNewAllocationAlignment(t *testing.T) {
	a := NewAllocation("x", 100) // rounds up to one entry
	if len(a.Data) != EntryBytes {
		t.Errorf("size %d, want %d", len(a.Data), EntryBytes)
	}
	if a.Entries() != 1 || a.Pages() != 1 {
		t.Errorf("entries=%d pages=%d", a.Entries(), a.Pages())
	}
	b := NewAllocation("y", PageBytes+1)
	if b.Pages() != 2 {
		t.Errorf("pages=%d, want 2", b.Pages())
	}
}

func TestSnapshotValidate(t *testing.T) {
	s := &Snapshot{Allocations: []*Allocation{
		NewAllocation("a", 256), NewAllocation("b", 256),
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.Allocations = append(s.Allocations, NewAllocation("a", 128))
	if err := s.Validate(); err == nil {
		t.Error("duplicate names should fail validation")
	}
	bad := &Snapshot{Allocations: []*Allocation{{Name: "z", Data: make([]byte, 100)}}}
	if err := bad.Validate(); err == nil {
		t.Error("unaligned allocation should fail validation")
	}
}

func TestFindAndTotals(t *testing.T) {
	s := &Snapshot{Allocations: []*Allocation{
		NewAllocation("a", 1024), NewAllocation("b", 2048),
	}}
	if s.Find("b") == nil || s.Find("c") != nil {
		t.Error("Find broken")
	}
	if s.TotalBytes() != 3072 || s.TotalEntries() != 24 {
		t.Errorf("totals: %d bytes, %d entries", s.TotalBytes(), s.TotalEntries())
	}
}

func TestCompressionRatioBounds(t *testing.T) {
	bpc := compress.NewBPC()
	zero := &Snapshot{Allocations: []*Allocation{NewAllocation("z", 8192)}}
	if r := CompressionRatio(zero, bpc, compress.OptimisticSizes); r < 16 {
		t.Errorf("all-zero snapshot ratio %.1f, want very high", r)
	}
	rnd := &Snapshot{Allocations: []*Allocation{NewAllocation("r", 8192)}}
	gen.Random{}.Fill(rnd.Allocations[0].Data, gen.NewRNG(1, 1))
	if r := CompressionRatio(rnd, bpc, compress.OptimisticSizes); r < 0.99 || r > 1.01 {
		t.Errorf("random snapshot ratio %.3f, want 1.0", r)
	}
}

func TestSectorHistogram(t *testing.T) {
	a := NewAllocation("m", 128*4)
	gen.Random{}.Fill(a.Data[:256], gen.NewRNG(2, 1)) // entries 0-1 raw, 2-3 zero
	h := SectorHistogram(a, compress.NewBPC())
	if h[4] != 2 || h[0] != 2 {
		t.Errorf("histogram %v, want 2 raw + 2 zero-page", h)
	}
}
