package memory

import (
	"testing"
)

func TestNewAllocationAlignment(t *testing.T) {
	a := NewAllocation("x", 100) // rounds up to one entry
	if len(a.Data) != EntryBytes {
		t.Errorf("size %d, want %d", len(a.Data), EntryBytes)
	}
	if a.Entries() != 1 || a.Pages() != 1 {
		t.Errorf("entries=%d pages=%d", a.Entries(), a.Pages())
	}
	b := NewAllocation("y", PageBytes+1)
	if b.Pages() != 2 {
		t.Errorf("pages=%d, want 2", b.Pages())
	}
}

func TestSnapshotValidate(t *testing.T) {
	s := &Snapshot{Allocations: []*Allocation{
		NewAllocation("a", 256), NewAllocation("b", 256),
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.Allocations = append(s.Allocations, NewAllocation("a", 128))
	if err := s.Validate(); err == nil {
		t.Error("duplicate names should fail validation")
	}
	bad := &Snapshot{Allocations: []*Allocation{{Name: "z", Data: make([]byte, 100)}}}
	if err := bad.Validate(); err == nil {
		t.Error("unaligned allocation should fail validation")
	}
}

func TestFindAndTotals(t *testing.T) {
	s := &Snapshot{Allocations: []*Allocation{
		NewAllocation("a", 1024), NewAllocation("b", 2048),
	}}
	if s.Find("b") == nil || s.Find("c") != nil {
		t.Error("Find broken")
	}
	if s.TotalBytes() != 3072 || s.TotalEntries() != 24 {
		t.Errorf("totals: %d bytes, %d entries", s.TotalBytes(), s.TotalEntries())
	}
}
