// Package nvlink models the GPU's high-bandwidth interconnect to the buddy
// memory (NVLink2 in the paper: six bricks, 150 GB/s per direction,
// full-duplex; §2.3). Each direction is an independent bandwidth queue, so
// reads from buddy memory and write-backs to it do not contend — the
// full-duplex property Fig. 11's sweeps rely on.
package nvlink

// Direction selects a link direction.
type Direction int

// Link directions: reads flow from buddy memory to the GPU, writes the
// other way.
const (
	Read Direction = iota
	Write
)

// Config describes the interconnect.
type Config struct {
	// BandwidthGBs is the per-direction (full-duplex) bandwidth. The paper
	// sweeps 50-200 GB/s; NVLink2 is 150.
	BandwidthGBs float64
	// CoreClockGHz converts to core cycles.
	CoreClockGHz float64
	// LatencyCycles is the one-way access latency in core cycles; remote
	// memory over NVLink sits in the ~500 ns range.
	LatencyCycles float64
}

// DefaultConfig returns the NVLink2 point: 150 GB/s full-duplex.
func DefaultConfig() Config {
	return Config{BandwidthGBs: 150, CoreClockGHz: 1.3, LatencyCycles: 700}
}

// Link is the two-direction queue model.
type Link struct {
	cfg           Config
	bytesPerCycle float64
	busyUntil     [2]float64
	busyCycles    [2]float64
	// TotalBytes per direction.
	TotalBytes [2]uint64
}

// New constructs a link. The rate fields default individually to the
// NVLink2 point when zero, so a partially specified config (e.g. only the
// bandwidth of a Fig. 11 sweep) still yields a finite-rate link. A zero
// LatencyCycles is honored: zero latency is a meaningful model point.
func New(cfg Config) *Link {
	def := DefaultConfig()
	if cfg.BandwidthGBs <= 0 {
		cfg.BandwidthGBs = def.BandwidthGBs
	}
	if cfg.CoreClockGHz <= 0 {
		cfg.CoreClockGHz = def.CoreClockGHz
	}
	return &Link{cfg: cfg, bytesPerCycle: cfg.BandwidthGBs / cfg.CoreClockGHz}
}

// Request enqueues a transfer and returns its completion time.
func (l *Link) Request(now float64, dir Direction, bytes int) float64 {
	start := now
	if l.busyUntil[dir] > start {
		start = l.busyUntil[dir]
	}
	xfer := float64(bytes) / l.bytesPerCycle
	l.busyUntil[dir] = start + xfer
	l.busyCycles[dir] += xfer
	l.TotalBytes[dir] += uint64(bytes)
	return start + xfer + l.cfg.LatencyCycles
}

// Drain consumes bandwidth without a waiting consumer (asynchronous
// write-backs to buddy memory).
func (l *Link) Drain(now float64, dir Direction, bytes int) {
	start := now
	if l.busyUntil[dir] > start {
		start = l.busyUntil[dir]
	}
	xfer := float64(bytes) / l.bytesPerCycle
	l.busyUntil[dir] = start + xfer
	l.busyCycles[dir] += xfer
	l.TotalBytes[dir] += uint64(bytes)
}

// BusyCycles returns the cycles a direction has spent transferring since
// the last Reset — accumulated service time, not the end of the queue, so
// idle gaps between requests are not counted.
func (l *Link) BusyCycles(dir Direction) float64 { return l.busyCycles[dir] }

// Utilization reports the busy fraction of a direction up to horizon: the
// cycles actually spent transferring over the horizon. Idle gaps between
// requests count as idle (busy [0,2], idle [2,8], busy [8,9] is 0.3 of a
// 10-cycle horizon, not 0.9).
func (l *Link) Utilization(dir Direction, horizon float64) float64 {
	if horizon <= 0 {
		return 0
	}
	u := l.busyCycles[dir] / horizon
	if u > 1 {
		u = 1
	}
	return u
}

// Totals returns the per-direction transferred byte counts.
func (l *Link) Totals() (read, written uint64) {
	return l.TotalBytes[Read], l.TotalBytes[Write]
}

// Reset clears queues and counters.
func (l *Link) Reset() {
	l.busyUntil = [2]float64{}
	l.busyCycles = [2]float64{}
	l.TotalBytes = [2]uint64{}
}
