package nvlink

import (
	"math"
	"testing"
)

func TestFullDuplexIndependence(t *testing.T) {
	l := New(DefaultConfig())
	r1 := l.Request(0, Read, 1<<16)
	w1 := l.Request(0, Write, 1<<16)
	if r1 != w1 {
		t.Errorf("read (%.1f) and write (%.1f) directions must not contend", r1, w1)
	}
	r2 := l.Request(0, Read, 1<<16)
	if r2 <= r1 {
		t.Error("same-direction requests must queue")
	}
}

func TestBandwidthScaling(t *testing.T) {
	slow := New(Config{BandwidthGBs: 50, CoreClockGHz: 1.3, LatencyCycles: 0})
	fast := New(Config{BandwidthGBs: 200, CoreClockGHz: 1.3, LatencyCycles: 0})
	ts := slow.Request(0, Read, 1<<20)
	tf := fast.Request(0, Read, 1<<20)
	ratio := ts / tf
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("4x bandwidth should be ~4x faster, got %.2fx", ratio)
	}
}

func TestUtilizationAndReset(t *testing.T) {
	l := New(DefaultConfig())
	l.Drain(0, Write, 1<<20)
	if l.TotalBytes[Write] != 1<<20 {
		t.Errorf("write bytes = %d", l.TotalBytes[Write])
	}
	if l.Utilization(Write, 100) <= 0 {
		t.Error("write direction should show utilization")
	}
	if l.Utilization(Read, 100) != 0 {
		t.Error("read direction should be idle")
	}
	l.Reset()
	if l.TotalBytes[Write] != 0 {
		t.Error("Reset should clear counters")
	}
}

func TestUtilizationIgnoresIdleGaps(t *testing.T) {
	// 1 B/cycle link: busy [0,2], idle [2,8], busy [8,9]. The old
	// busyUntil/horizon accounting reported 0.9; the true busy fraction of
	// the 10-cycle horizon is 0.3.
	l := New(Config{BandwidthGBs: 1.3, CoreClockGHz: 1.3, LatencyCycles: 0})
	l.Request(0, Read, 2)
	l.Request(8, Read, 1)
	if got, want := l.Utilization(Read, 10), 0.3; math.Abs(got-want) > 1e-9 {
		t.Errorf("Utilization with idle gap = %.3f, want %.3f", got, want)
	}
	if got := l.BusyCycles(Read); math.Abs(got-3) > 1e-9 {
		t.Errorf("BusyCycles = %.3f, want 3", got)
	}
	// Queued (back-to-back) requests still count their full service time.
	l.Reset()
	l.Request(0, Write, 2)
	l.Drain(0, Write, 3) // queues behind the first: busy [0,5]
	if got, want := l.Utilization(Write, 10), 0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("Utilization of queued requests = %.3f, want %.3f", got, want)
	}
	l.Reset()
	if l.BusyCycles(Write) != 0 || l.Utilization(Write, 10) != 0 {
		t.Error("Reset should clear busy-cycle accounting")
	}
}

func TestStorageConfigs(t *testing.T) {
	for _, k := range StorageKinds() {
		cfg := StorageConfig(k, 150)
		if cfg.BandwidthGBs != 150 {
			t.Errorf("%s: bandwidth not applied", k)
		}
		if cfg.LatencyCycles <= 0 {
			t.Errorf("%s: missing latency", k)
		}
	}
	peer := StorageConfig(PeerGPU, 150).LatencyCycles
	host := StorageConfig(HostCPU, 150).LatencyCycles
	dis := StorageConfig(Disaggregated, 150).LatencyCycles
	if !(peer < host && host < dis) {
		t.Errorf("latency ordering peer(%v) < host(%v) < disaggregated(%v) violated", peer, host, dis)
	}
	if HostCPU.String() == "" || PeerGPU.String() == "" || Disaggregated.String() == "" {
		t.Error("StorageKind String broken")
	}
}

func TestPartialConfigDefaultsRateFields(t *testing.T) {
	// Only the bandwidth given (the Fig. 11 sweep style): the clock must
	// default so the link has a finite rate, and zero latency is honored.
	l := New(Config{BandwidthGBs: 50})
	done := l.Request(0, Read, 1<<20)
	if math.IsInf(done, 0) || math.IsNaN(done) || done <= 0 {
		t.Fatalf("partial config produced a degenerate link: done=%f", done)
	}
	full := New(Config{BandwidthGBs: 50, CoreClockGHz: 1.3})
	if got := full.Request(0, Read, 1<<20); got != done {
		t.Errorf("partial config = %f cycles, fully specified rates = %f", done, got)
	}
}
