package nvlink

// The paper's Fig. 2 lists three buddy-storage alternatives reachable over
// the interconnect: host-CPU memory (e.g. a Power9's system DRAM), unused
// peer-GPU memory behind the NVSwitch, and a future disaggregated memory
// appliance. "As long as the remote memory sources operate at the full
// NVLink2 bandwidth, Buddy Compression applies equally well" (§2.3) — the
// alternatives differ only in access latency and attainable bandwidth,
// which these presets encode for the simulator's sweeps.

// StorageKind identifies a buddy-storage backend.
type StorageKind int

// Buddy-storage alternatives from Fig. 2.
const (
	// HostCPU is NVLink-attached host memory (Power9-class; the paper's
	// default target system).
	HostCPU StorageKind = iota
	// PeerGPU is unused memory of a peer GPU behind the NVSwitch: the
	// same 150 GB/s bricks with one extra switch hop, and the peer's HBM2
	// serves requests with GPU-local latency.
	PeerGPU
	// Disaggregated is a memory appliance on the switch fabric: full link
	// bandwidth but the longest path.
	Disaggregated
)

// String implements fmt.Stringer.
func (k StorageKind) String() string {
	switch k {
	case HostCPU:
		return "host-cpu"
	case PeerGPU:
		return "peer-gpu"
	default:
		return "disaggregated"
	}
}

// StorageConfig returns the link configuration for a buddy-storage backend
// at the given per-direction bandwidth in GB/s (the Fig. 11 sweep variable).
func StorageConfig(kind StorageKind, bandwidthGBs float64) Config {
	cfg := DefaultConfig()
	cfg.BandwidthGBs = bandwidthGBs
	switch kind {
	case PeerGPU:
		// One NVSwitch hop plus the peer's HBM2 access: lower latency than
		// a CPU memory controller round trip.
		cfg.LatencyCycles = 550
	case Disaggregated:
		// Switch fabric plus appliance controller: the longest path.
		cfg.LatencyCycles = 900
	default:
		cfg.LatencyCycles = 700
	}
	return cfg
}

// StorageKinds lists the Fig. 2 alternatives.
func StorageKinds() []StorageKind { return []StorageKind{HostCPU, PeerGPU, Disaggregated} }
