// Package analysistest runs one analyzer over fixture packages under
// internal/lint/testdata/src and checks its diagnostics against `// want`
// comments in the fixture sources, mirroring the x/tools analysistest
// convention on the vendored analysis framework.
//
// A fixture line asserts the diagnostics it expects as quoted regular
// expressions:
//
//	h, err := d.Malloc("x", 1) // want `never reaches Close or Free`
//
// Every diagnostic must be matched by a want on its line, and every want
// must match a diagnostic; either mismatch fails the test. Fixture
// packages may import each other by directory name ("compress" resolves
// to testdata/src/compress); imports of real module or standard-library
// packages resolve through the module's compiled export data.
package analysistest

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"buddy/internal/lint/analysis"
	"buddy/internal/lint/loader"
)

// exports is the module's export-data map, built once per test process;
// fixture imports of std or module packages resolve through it.
var (
	exportsOnce sync.Once
	exports     map[string]string
	exportsErr  error
)

func moduleExports() (map[string]string, error) {
	exportsOnce.Do(func() {
		dir, err := os.Getwd()
		if err != nil {
			exportsErr = err
			return
		}
		exports, exportsErr = loader.ExportData(dir, "buddy/...")
	})
	return exports, exportsErr
}

// runner loads fixture packages on demand so fixtures can import one
// another (the importer's fallback calls back into load).
type runner struct {
	t        *testing.T
	fset     *token.FileSet
	imp      types.Importer
	testdata string
	pkgs     map[string]*loader.Package
}

func (r *runner) load(path string) (*loader.Package, error) {
	if p, ok := r.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(r.testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysistest: fixture package %q: %w", path, err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	pkg, err := loader.Check(r.fset, path, dir, files, r.imp, true)
	if err != nil {
		return nil, err
	}
	r.pkgs[path] = pkg
	return pkg, nil
}

// expectation is one parsed `// want "regexp"` assertion.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// parseWants extracts the expectations from one fixture file.
func parseWants(t *testing.T, fset *token.FileSet, pkg *loader.Package) []*expectation {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Errorf("%s: malformed want comment %q", pos, c.Text)
						break
					}
					rest = rest[len(q):]
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: malformed want pattern %s", pos, q)
						continue
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: want pattern does not compile: %v", pos, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
				}
			}
		}
	}
	return wants
}

// Run applies a to each fixture package named by paths (directories under
// internal/lint/testdata/src) and compares diagnostics with the fixtures'
// want comments.
func Run(t *testing.T, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	exp, err := moduleExports()
	if err != nil {
		t.Fatalf("building module export data: %v", err)
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	r := &runner{
		t:        t,
		fset:     token.NewFileSet(),
		testdata: filepath.Join(wd, "testdata"),
		pkgs:     map[string]*loader.Package{},
	}
	r.imp = loader.NewImporter(r.fset, exp, func(path string) (*types.Package, error) {
		p, err := r.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	})
	for _, path := range paths {
		pkg, err := r.load(path)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", path, err)
		}
		// Fixtures are expected to type-check; an error here usually means
		// a fixture edit broke compilation, which silently disables the
		// type-driven half of most analyzers.
		for _, te := range pkg.TypeErrors {
			t.Errorf("fixture %s: type error: %v", path, te)
		}
		wants := parseWants(t, r.fset, pkg)
		pass := pkg.Pass(a, r.fset, func(d analysis.Diagnostic) {
			pos := r.fset.Position(d.Pos)
			for _, w := range wants {
				if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
					w.matched = true
					return
				}
			}
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		})
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("analyzer %s on fixture %q: %v", a.Name, path, err)
		}
		for _, w := range wants {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
			}
		}
	}
}
