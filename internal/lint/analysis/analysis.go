// Package analysis is a hermetic, stdlib-only mirror of the
// golang.org/x/tools/go/analysis API surface buddylint needs: an Analyzer
// with a Run function over a type-checked Pass, reporting Diagnostics.
//
// The real module cannot be a dependency here — the build environment is
// offline and the module proxy unreachable — so the subset is vendored as
// this package instead of pinned in go.mod. The field and method names
// match x/tools exactly; if the dependency ever becomes available, each
// analyzer ports by swapping this import path for
// golang.org/x/tools/go/analysis and deleting the in-tree loader.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis function: a named invariant checked
// over a single type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //nolint:buddy/<name> suppression comments. It must be a valid Go
	// identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, a blank
	// line, then the invariant it enforces and what a violation looks
	// like.
	Doc string

	// Run applies the analyzer to a package. It returns an
	// analyzer-specific result (unused by buddylint's analyzers, kept
	// for API fidelity) or an error that aborts the whole run.
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer with the parsed, type-checked view of one
// package plus the Report sink for its diagnostics.
type Pass struct {
	// Analyzer is the analyzer being applied.
	Analyzer *Analyzer

	// Fset maps token positions to file locations for every file of the
	// package and its source-loaded dependencies.
	Fset *token.FileSet

	// Files are the package's syntax trees, parsed with comments.
	Files []*ast.File

	// Pkg is the package's type information.
	Pkg *types.Package

	// TypesInfo holds the type, object and selection facts for the
	// package's syntax.
	TypesInfo *types.Info

	// TypeErrors holds the package's type errors when the loader ran in
	// error-tolerant mode (fixture loading); empty for the real tree,
	// where type errors abort the run before analyzers execute.
	TypeErrors []types.Error

	// Report delivers one diagnostic. The driver installs the sink.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

func (p *Pass) String() string {
	return fmt.Sprintf("%s@%s", p.Analyzer.Name, p.Pkg.Path())
}

// A Diagnostic is one reported finding, tied to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
