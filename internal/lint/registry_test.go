package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// suiteSize pins the analyzer count: growing the suite is deliberate —
// update this constant together with the new analyzer's fixtures.
const suiteSize = 5

func TestRegistryPinned(t *testing.T) {
	as := Analyzers()
	if len(as) != suiteSize {
		t.Fatalf("Analyzers() returned %d analyzers, want %d; update suiteSize alongside the suite", len(as), suiteSize)
	}
	seen := make(map[string]bool)
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing a name, doc or run function", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

// Every analyzer must ship analysistest fixtures: a directory of the
// analyzer's name under testdata/src with at least one fixture file.
func TestEveryAnalyzerHasFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		dir := filepath.Join("testdata", "src", a.Name)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("analyzer %s has no fixture directory %s: %v", a.Name, dir, err)
			continue
		}
		goFiles := 0
		for _, e := range entries {
			if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
				goFiles++
			}
		}
		if goFiles == 0 {
			t.Errorf("fixture directory %s has no Go files", dir)
		}
	}
}
