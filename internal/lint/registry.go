package lint

import "buddy/internal/lint/analysis"

// Analyzers returns the buddylint suite in reporting order. The registry
// test pins this count against the fixture directories: a new analyzer
// cannot ship without analysistest fixtures.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NoLegacy,
		LockOrder,
		HotPathAlloc,
		SentinelErr,
		MustClose,
	}
}
