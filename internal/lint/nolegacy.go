// Package lint is buddylint's analyzer suite: the repo's correctness
// invariants — retired API surface, the Device lock hierarchy, the
// allocation-free hot path, sentinel-error discipline and allocation
// lifecycle — expressed as go/analysis-style analyzers instead of grep
// rules and review convention. cmd/buddylint runs every analyzer in
// Analyzers over the module; see DESIGN.md "Invariants as analyzers".
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"buddy/internal/lint/analysis"
)

// legacyMethods is the retired allocate-per-call Compressor surface: the
// methods deleted when the single-pass Codec replaced it.
var legacyMethods = map[string]bool{
	"CompressedBits": true,
	"Compress":       true,
	"Decompress":     true,
}

// NoLegacy bans the retired compress.Compressor surface, type-aware where
// the old grep gate was textual: renamed imports of the compress package
// cannot dodge the Compressor-reference check, and re-declaring the
// legacy method set inside the compress package is flagged at the
// declaration.
var NoLegacy = &analysis.Analyzer{
	Name: "nolegacy",
	Doc: `ban the retired Compressor surface of internal/compress

The allocate-per-call Compressor interface (CompressedBits/Compress/
Decompress) was deleted in favor of the single-pass, allocation-free
Codec (AppendCompressed/DecompressInto); WithCompressor survives only as
a deprecated alias next to its declaration. nolegacy flags any reference
to Compressor through an import of the compress package (however the
import is renamed), any re-declaration of the legacy method set or a
Compressor interface inside the compress package, and any use of a
WithCompressor function outside its declaring file (test files may cover
the alias).`,
	Run: runNoLegacy,
}

// isCompressPackage reports whether path names the compression package the
// analyzer guards: the real one, or a fixture package mimicking it.
func isCompressPackage(path string) bool {
	return path == "compress" || strings.HasSuffix(path, "/compress")
}

func runNoLegacy(pass *analysis.Pass) (interface{}, error) {
	inCompress := isCompressPackage(pass.Pkg.Path())
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				// compress.Compressor through any import name. The object
				// behind the selector no longer exists, so resolve the
				// qualifier instead: a PkgName for the compress package.
				if n.Sel.Name != "Compressor" {
					return true
				}
				id, ok := n.X.(*ast.Ident)
				if !ok {
					return true
				}
				if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && isCompressPackage(pn.Imported().Path()) {
					pass.Reportf(n.Pos(), "reference to the retired %s.Compressor interface (use %s.Codec: AppendCompressed/DecompressInto)",
						pn.Imported().Name(), pn.Imported().Name())
				}
			case *ast.FuncDecl:
				// Re-declaring the legacy method set inside the compress
				// package grows the deleted surface back.
				if inCompress && n.Recv != nil && legacyMethods[n.Name.Name] {
					pass.Reportf(n.Pos(), "method %s re-declares the deleted legacy Compressor surface (use Codec: AppendCompressed/DecompressInto)", n.Name.Name)
				}
			case *ast.TypeSpec:
				if inCompress && n.Name.Name == "Compressor" {
					if _, ok := n.Type.(*ast.InterfaceType); ok {
						pass.Reportf(n.Pos(), "the retired Compressor interface reappeared (use Codec)")
					}
				}
			case *ast.Ident:
				// WithCompressor used anywhere but its declaring file;
				// tests may cover the deprecated alias.
				if n.Name != "WithCompressor" {
					return true
				}
				obj := pass.TypesInfo.Uses[n]
				if obj == nil {
					return true
				}
				pos := pass.Fset.Position(n.Pos())
				if inTestFile(pos.Filename) {
					return true
				}
				if declFile := pass.Fset.Position(obj.Pos()).Filename; declFile == pos.Filename {
					return true
				}
				pass.Reportf(n.Pos(), "WithCompressor used outside its deprecated alias declaration (use WithCodec)")
			}
			return true
		})
	}
	return nil, nil
}

// inTestFile reports whether filename is a Go test file.
func inTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}

// posFile returns the file name of pos under pass's FileSet.
func posFile(pass *analysis.Pass, pos token.Pos) string {
	return pass.Fset.Position(pos).Filename
}
