package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"buddy/internal/lint/analysis"
)

// hotpathMarker is the comment that opts a function (or function literal)
// into the allocation ban: the single-pass data path the AllocsPerRun==0
// benchmarks pin.
const hotpathMarker = "//buddy:hotpath"

// HotPathAlloc flags heap-allocating constructs inside functions marked
// //buddy:hotpath: the codec AppendCompressed/DecompressInto
// implementations, the entry read/write path and the parallelSpan worker
// bodies. The steady state of these functions must not allocate; blocks
// that end in return or panic are treated as cold (error/fallback) paths
// and exempted, matching what the allocation benchmarks exercise.
var HotPathAlloc = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: `ban heap allocation in //buddy:hotpath functions

Flags make/new calls, slice and map composite literals, &T{...}
literals, fmt.*/errors.* calls, string<->[]byte conversions, capturing
closures and go statements inside functions or function literals marked
with a //buddy:hotpath comment. Statements inside a block whose control
flow ends in return or panic are exempt: those are the cold error paths
the zero-allocation benchmarks never take.`,
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		// Lines on which a //buddy:hotpath marker comment ends; a marker
		// on the line before (or the line of) a function literal marks it.
		markerLines := make(map[int]bool)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.TrimSpace(c.Text) == hotpathMarker {
					markerLines[pass.Fset.Position(c.End()).Line] = true
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil && funcDocHasMarker(n.Doc) {
					checkHotBody(pass, n.Name.Name, n.Type, n.Body)
				}
			case *ast.FuncLit:
				line := pass.Fset.Position(n.Pos()).Line
				if markerLines[line-1] || markerLines[line] {
					checkHotBody(pass, "function literal", n.Type, n.Body)
				}
			}
			return true
		})
	}
	return nil, nil
}

func funcDocHasMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == hotpathMarker {
			return true
		}
	}
	return false
}

// checkHotBody walks one marked function body, skipping cold blocks.
func checkHotBody(pass *analysis.Pass, name string, ftype *ast.FuncType, body *ast.BlockStmt) {
	// The frame spans the signature too, so parameters count as
	// function-local for the closure-capture check.
	w := &hotWalker{pass: pass, name: name, lo: ftype.Pos(), hi: body.End()}
	w.stmts(body.List)
}

type hotWalker struct {
	pass   *analysis.Pass
	name   string
	lo, hi token.Pos // the marked function's source range, for capture checks
}

// blockIsCold reports whether a block unconditionally leaves the function:
// its last statement is a return or a panic. Such blocks are the guarded
// error/fallback exits the steady state never takes.
func blockIsCold(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (w *hotWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *hotWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		if !blockIsCold(s.Body) {
			w.stmts(s.Body.List)
		}
		if s.Else != nil {
			if eb, ok := s.Else.(*ast.BlockStmt); ok && blockIsCold(eb) {
				return
			}
			w.stmt(s.Else)
		}
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		if s.Post != nil {
			w.stmt(s.Post)
		}
		w.stmts(s.Body.List)
	case *ast.RangeStmt:
		w.expr(s.X)
		w.stmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body)
			}
		}
	case *ast.GoStmt:
		w.pass.Reportf(s.Pos(), "%s is //buddy:hotpath but spawns a goroutine", w.name)
	case *ast.DeferStmt:
		// defer itself is open-coded and allocation-free; check its call.
		w.expr(s.Call)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.BranchStmt, *ast.EmptyStmt:
		// var declarations of value types, ++/--, sends and branches do
		// not allocate; composite initializers inside a DeclStmt still
		// get checked below.
		if ds, ok := s.(*ast.DeclStmt); ok {
			w.expr0(ds.Decl)
		}
	}
}

// expr0 inspects any node's expressions for allocating constructs.
func (w *hotWalker) expr0(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool { return w.visitExpr(n) })
}

func (w *hotWalker) expr(e ast.Expr) {
	if e != nil {
		w.expr0(e)
	}
}

// visitExpr flags one allocating expression; returns false to stop
// descending (function literals are their own frame).
func (w *hotWalker) visitExpr(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		if captured := w.captures(n); captured != "" {
			w.pass.Reportf(n.Pos(), "%s is //buddy:hotpath but builds a closure capturing %s (allocates per call)", w.name, captured)
		}
		return false
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := n.X.(*ast.CompositeLit); ok {
				w.pass.Reportf(n.Pos(), "%s is //buddy:hotpath but heap-allocates &%s literal", w.name, typeLabel(w.pass, n.X))
			}
		}
	case *ast.CompositeLit:
		tv, ok := w.pass.TypesInfo.Types[n]
		if !ok || tv.Type == nil {
			return true
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Map:
			w.pass.Reportf(n.Pos(), "%s is //buddy:hotpath but allocates a %s literal", w.name, typeLabel(w.pass, n))
		}
	case *ast.CallExpr:
		w.visitCall(n)
	}
	return true
}

func (w *hotWalker) visitCall(call *ast.CallExpr) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := w.pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "make", "new":
				w.pass.Reportf(call.Pos(), "%s is //buddy:hotpath but calls %s (heap-allocates)", w.name, obj.Name())
			}
		}
	case *ast.SelectorExpr:
		obj := w.pass.TypesInfo.Uses[fun.Sel]
		if obj == nil || obj.Pkg() == nil {
			break
		}
		if p := obj.Pkg().Path(); p == "fmt" || p == "errors" {
			w.pass.Reportf(call.Pos(), "%s is //buddy:hotpath but calls %s.%s (allocates)", w.name, p, fun.Sel.Name)
		}
	}
	// string <-> []byte conversions copy into fresh storage.
	if tv, ok := w.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		if av, ok := w.pass.TypesInfo.Types[call.Args[0]]; ok && av.Type != nil {
			src := av.Type.Underlying()
			if (isString(dst) && isByteSlice(src)) || (isByteSlice(dst) && isString(src)) {
				w.pass.Reportf(call.Pos(), "%s is //buddy:hotpath but converts between string and []byte (copies)", w.name)
			}
		}
	}
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// typeLabel renders the composite literal's type for the message.
func typeLabel(pass *analysis.Pass, e ast.Expr) string {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return "composite"
}

// captures returns the name of one variable a function literal captures
// from its enclosing function, or "" when the literal is capture-free
// (and therefore a static, non-allocating closure).
func (w *hotWalker) captures(lit *ast.FuncLit) string {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := w.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() || obj.Pkg() == nil {
			return true
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return true // package-level variable, not a capture
		}
		// Declared inside the marked function but outside the literal.
		if obj.Pos() >= w.lo && obj.Pos() < w.hi &&
			(obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()) {
			name = obj.Name()
		}
		return true
	})
	return name
}
