package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"buddy/internal/lint/analysis"
)

// SentinelErr enforces the sentinel-error discipline the exported
// sentinels (core.ErrFreed, core.ErrOutOfMemory, compress.ErrCorrupt,
// pool.ErrClosed, ...) are documented with: every layer wraps them with
// %w and every caller matches them with errors.Is. Identity comparison
// breaks as soon as one intermediate layer adds context, and a %v/%s
// wrap severs the chain errors.Is walks.
var SentinelErr = &analysis.Analyzer{
	Name: "sentinelerr",
	Doc: `require errors.Is and %w for sentinel errors

Flags == and != comparisons (and switch cases) against package-level
Err* sentinel variables — wrapped sentinels never compare equal; use
errors.Is — and fmt.Errorf calls that format an error value with a verb
other than %w, which severs the Unwrap chain the sentinels are matched
through. Test files are exempt from the comparison rule.`,
	Run: runSentinelErr,
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// sentinelObj returns the package-level Err* error variable behind e, nil
// if e is anything else.
func sentinelObj(info *types.Info, e ast.Expr) types.Object {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj, ok := info.Uses[id].(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
		return nil
	}
	if !strings.HasPrefix(obj.Name(), "Err") || !types.Implements(obj.Type(), errorType) {
		return nil
	}
	return obj
}

func runSentinelErr(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		testFile := inTestFile(posFile(pass, file.Pos()))
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if testFile || (n.Op != token.EQL && n.Op != token.NEQ) {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if obj := sentinelObj(pass.TypesInfo, side); obj != nil {
						pass.Reportf(n.Pos(), "sentinel %s compared with %s; wrapped errors never compare equal, use errors.Is", obj.Name(), n.Op)
					}
				}
			case *ast.SwitchStmt:
				if testFile || n.Tag == nil {
					return true
				}
				for _, c := range n.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if obj := sentinelObj(pass.TypesInfo, e); obj != nil {
							pass.Reportf(e.Pos(), "sentinel %s matched by switch case identity; use errors.Is", obj.Name())
						}
					}
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkErrorfWrap flags fmt.Errorf calls that format an error-typed
// argument with a verb other than %w.
func checkErrorfWrap(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return // indexed or otherwise exotic format; out of scope
	}
	args := call.Args[1:]
	for i, verb := range verbs {
		if i >= len(args) || verb == 'w' {
			continue
		}
		tv, ok := pass.TypesInfo.Types[args[i]]
		if !ok || tv.Type == nil || !types.Implements(tv.Type, errorType) {
			continue
		}
		pass.Reportf(args[i].Pos(), "error formatted with %%%c severs the sentinel chain; wrap with %%w (or call .Error() if severing is intended)", verb)
	}
}

// formatVerbs returns the verb letter consuming each successive argument
// of a fmt format string, or ok=false when the string uses explicit
// argument indexes or stars this simple scanner does not model.
func formatVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	flagloop:
		for ; i < len(format); i++ {
			switch c := format[i]; {
			case c == '%':
				break flagloop // literal %%, consumes no argument
			case c == '[' || c == '*':
				return nil, false
			case c >= '0' && c <= '9' || strings.ContainsRune("+-# .", rune(c)):
				continue
			default:
				verbs = append(verbs, c)
				break flagloop
			}
		}
	}
	return verbs, true
}
