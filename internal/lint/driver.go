package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"

	"buddy/internal/lint/analysis"
	"buddy/internal/lint/loader"
)

// A Finding is one diagnostic attributed to its analyzer, resolved to a
// file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// suppression is one parsed //nolint:buddy/<name> directive.
type suppression struct {
	names  map[string]bool // analyzer names it silences
	reason string
	pos    token.Position
	used   bool
}

// parseSuppressions extracts the buddy suppression directives from a
// file. A directive silences matching diagnostics on its own line and the
// line below it (so it can trail the flagged statement or sit above it).
// The format is:
//
//	//nolint:buddy/<name>[,buddy/<name>...] -- reason
//
// The reason is mandatory; a directive without one is itself a finding,
// so every suppression in the tree carries its justification.
func parseSuppressions(fset *token.FileSet, file *ast.File) []*suppression {
	var sups []*suppression
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, "//nolint:") {
				continue
			}
			body := strings.TrimPrefix(text, "//nolint:")
			spec, reason, _ := strings.Cut(body, "--")
			names := make(map[string]bool)
			ours := false
			for _, n := range strings.Split(strings.TrimSpace(spec), ",") {
				n = strings.TrimSpace(n)
				if rest, ok := strings.CutPrefix(n, "buddy/"); ok {
					names[rest] = true
					ours = true
				}
			}
			if !ours {
				continue // some other tool's nolint; not buddylint's business
			}
			sups = append(sups, &suppression{
				names:  names,
				reason: strings.TrimSpace(reason),
				pos:    fset.Position(c.Pos()),
			})
		}
	}
	return sups
}

// Run loads the packages matching patterns from the module rooted at dir,
// applies every registered analyzer, and writes surviving findings to out.
// It returns the number of findings written (suppression faults included).
func Run(dir string, patterns []string, out io.Writer) (int, error) {
	fset, pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return 0, err
	}
	analyzers := Analyzers()
	var findings []Finding
	var sups []*suppression
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			sups = append(sups, parseSuppressions(fset, f)...)
		}
		for _, a := range analyzers {
			pass := pkg.Pass(a, fset, func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			})
			if _, err := a.Run(pass); err != nil {
				return 0, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	findings = applySuppressions(findings, sups)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	return len(findings), nil
}

// applySuppressions drops findings matched by a well-formed suppression
// and adds findings for malformed (reason-less) or unused directives.
func applySuppressions(findings []Finding, sups []*suppression) []Finding {
	kept := findings[:0]
	for _, f := range findings {
		suppressed := false
		for _, s := range sups {
			if !s.names[f.Analyzer] || s.pos.Filename != f.Pos.Filename {
				continue
			}
			if f.Pos.Line == s.pos.Line || f.Pos.Line == s.pos.Line+1 {
				s.used = true
				if s.reason != "" {
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for _, s := range sups {
		switch {
		case s.reason == "":
			kept = append(kept, Finding{
				Analyzer: "nolint",
				Pos:      s.pos,
				Message:  "suppression without a reason; write //nolint:buddy/<name> -- <why this violation is safe>",
			})
		case !s.used:
			kept = append(kept, Finding{
				Analyzer: "nolint",
				Pos:      s.pos,
				Message:  "suppression matches no diagnostic; delete it",
			})
		}
	}
	return kept
}
