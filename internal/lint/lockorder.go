package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"buddy/internal/lint/analysis"
)

// LockOrder enforces the Device lock hierarchy documented on core.Device —
// control plane migMu, then the allocation-table mu, then the 64
// entry-shard mutexes — and a release discipline for every sync.Mutex /
// sync.RWMutex: a lock acquired in a function must be deferred-unlocked or
// released on every return path of that function.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: `enforce the migMu -> mu -> entry-shard lock order and release discipline

Flags acquiring a Device lock while already holding one that ranks after
it in the documented hierarchy (migMu before mu before the entry-shard
locks), re-acquiring a lock already held (self-deadlock), mismatched
RLock/Unlock pairs, and any sync mutex Lock whose Unlock is neither
deferred nor present on every return path. The walk is path-sensitive
across if/else, switch and loops; function literals are independent
frames.`,
	Run: runLockOrder,
}

// Device lock ranks; unranked locks participate only in the release and
// double-acquire checks.
const (
	rankMigMu = iota
	rankMu
	rankShard
	rankNone = -1
)

var rankNames = [...]string{"migMu", "mu", "entry-shard"}

type heldLock struct {
	rank     int
	rlock    bool // acquired with RLock
	deferred bool // a matching deferred unlock is in place
	pos      token.Pos
}

type lockState map[string]*heldLock

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		cv := *v
		c[k] = &cv
	}
	return c
}

// merge folds a non-terminated branch state into s: a lock held on any
// incoming path is held (for violation detection), and it only counts as
// deferred if every path deferred it.
func (s lockState) merge(b lockState) {
	for k, v := range b {
		if cur, ok := s[k]; ok {
			cur.deferred = cur.deferred && v.deferred
		} else {
			cv := *v
			s[k] = &cv
		}
	}
}

func runLockOrder(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					walkLockFrame(pass, n.Body)
				}
			case *ast.FuncLit:
				// Each literal is its own frame; statement walking never
				// descends into nested literals, so visiting every literal
				// here covers them all exactly once.
				walkLockFrame(pass, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

// walkLockFrame analyzes one function body as an independent lock frame:
// falling off the end of the body is an exit path like any return.
func walkLockFrame(pass *analysis.Pass, body *ast.BlockStmt) {
	w := &lockWalker{pass: pass, shardVars: map[types.Object]bool{}}
	held := lockState{}
	if !w.block(body.List, held) {
		w.checkExit(held, body.End(), "fall-through")
	}
}

type lockWalker struct {
	pass *analysis.Pass
	// shardVars are locals assigned from Allocation.shard(i): rank-2 keys.
	shardVars map[types.Object]bool
}

// lockMethod returns the receiver expression and method name of a
// sync.Mutex/sync.RWMutex method call (including promoted embedded
// mutexes), or ok=false.
func (w *lockWalker) lockMethod(call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	obj := w.pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// rankOf places a lock receiver in the Device hierarchy: fields migMu, mu
// and shards of a type named Device, plus locals returned by a shard()
// method. Everything else is unranked.
func (w *lockWalker) rankOf(recv ast.Expr) int {
	switch recv := recv.(type) {
	case *ast.IndexExpr:
		if sel, ok := recv.X.(*ast.SelectorExpr); ok && w.deviceField(sel) == "shards" {
			return rankShard
		}
	case *ast.SelectorExpr:
		switch w.deviceField(recv) {
		case "migMu":
			return rankMigMu
		case "mu":
			return rankMu
		}
	case *ast.Ident:
		if w.shardVars[w.pass.TypesInfo.Uses[recv]] {
			return rankShard
		}
	}
	return rankNone
}

// deviceField returns sel's field name when sel selects a field of a type
// named Device, "" otherwise.
func (w *lockWalker) deviceField(sel *ast.SelectorExpr) string {
	s := w.pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return ""
	}
	t := s.Recv()
	for {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Device" {
		return ""
	}
	return s.Obj().Name()
}

// keyOf renders the lock receiver as a stable textual key.
func keyOf(recv ast.Expr) string { return types.ExprString(recv) }

// acquire records taking a lock, checking hierarchy order and
// double-acquisition.
func (w *lockWalker) acquire(recv ast.Expr, name string, held lockState, pos token.Pos) {
	key := keyOf(recv)
	rank := w.rankOf(recv)
	if prev, ok := held[key]; ok {
		w.pass.Reportf(pos, "%s is already held (acquired at %s); re-acquiring deadlocks", key, w.pass.Fset.Position(prev.pos))
		return
	}
	if rank != rankNone {
		for k, h := range held {
			if h.rank != rankNone && h.rank > rank {
				w.pass.Reportf(pos, "acquiring %s (%s) while holding %s (%s) violates the lock order migMu -> mu -> entry shards",
					key, rankNames[rank], k, rankNames[h.rank])
			}
		}
	}
	held[key] = &heldLock{rank: rank, rlock: name == "RLock", pos: pos}
}

// release records an unlock, checking RLock/Unlock pairing. Unlocks of
// locks not held in this frame are ignored: the lock may be held by a
// caller.
func (w *lockWalker) release(recv ast.Expr, name string, held lockState, pos token.Pos) {
	key := keyOf(recv)
	h, ok := held[key]
	if !ok {
		return
	}
	if h.rlock != (name == "RUnlock") {
		want := "Unlock"
		if h.rlock {
			want = "RUnlock"
		}
		w.pass.Reportf(pos, "%s releases %s acquired with %s; use %s", name, key,
			map[bool]string{true: "RLock", false: "Lock"}[h.rlock], want)
	}
	delete(held, key)
}

// block walks a statement list, mutating held; it reports whether control
// cannot flow past the list (return/panic/branch).
func (w *lockWalker) block(list []ast.Stmt, held lockState) bool {
	for _, s := range list {
		if w.stmt(s, held) {
			return true
		}
	}
	return false
}

// stmt walks one statement; the boolean result reports termination.
func (w *lockWalker) stmt(s ast.Stmt, held lockState) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if recv, name, ok := w.lockMethod(call); ok {
				switch name {
				case "Lock", "RLock":
					w.acquire(recv, name, held, call.Pos())
				default:
					w.release(recv, name, held, call.Pos())
				}
				return false
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.DeferStmt:
		w.deferCall(s.Call, held)
	case *ast.AssignStmt:
		// Track sh := a.shard(i): the result is an entry-shard lock.
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "shard" {
					if id, ok := s.Lhs[0].(*ast.Ident); ok {
						if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
							w.shardVars[obj] = true
						} else if obj := w.pass.TypesInfo.Uses[id]; obj != nil {
							w.shardVars[obj] = true
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		w.checkExit(held, s.Pos(), "return")
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto: state does not flow past
	case *ast.BlockStmt:
		return w.block(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		bodyHeld := held.clone()
		bodyTerm := w.block(s.Body.List, bodyHeld)
		elseHeld := held.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else, elseHeld)
		}
		for k := range held {
			delete(held, k)
		}
		if !bodyTerm {
			held.merge(bodyHeld)
		}
		if !elseTerm {
			held.merge(elseHeld)
		}
		return bodyTerm && elseTerm && s.Else != nil
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.loopBody(s.Body, held)
	case *ast.RangeStmt:
		w.loopBody(s.Body, held)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var body *ast.BlockStmt
		switch s := s.(type) {
		case *ast.SwitchStmt:
			body = s.Body
		case *ast.TypeSwitchStmt:
			body = s.Body
		case *ast.SelectStmt:
			body = s.Body
		}
		for _, c := range body.List {
			var stmts []ast.Stmt
			switch c := c.(type) {
			case *ast.CaseClause:
				stmts = c.Body
			case *ast.CommClause:
				stmts = c.Body
			}
			caseHeld := held.clone()
			if !w.block(stmts, caseHeld) {
				held.merge(caseHeld)
			}
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	}
	return false
}

// deferCall handles defer statements: a deferred Unlock (directly or
// inside a deferred function literal) marks the lock as safely released
// at function exit.
func (w *lockWalker) deferCall(call *ast.CallExpr, held lockState) {
	if recv, name, ok := w.lockMethod(call); ok && (name == "Unlock" || name == "RUnlock") {
		if h, ok := held[keyOf(recv)]; ok {
			h.deferred = true
		}
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if recv, name, ok := w.lockMethod(inner); ok && (name == "Unlock" || name == "RUnlock") {
					if h, ok := held[keyOf(recv)]; ok {
						h.deferred = true
					}
				}
			}
			return true
		})
	}
}

// loopBody walks a loop body in an isolated state: a lock acquired inside
// an iteration must be released (or deferred) by the iteration's end, or
// the next iteration self-deadlocks.
func (w *lockWalker) loopBody(body *ast.BlockStmt, held lockState) {
	inner := held.clone()
	preKeys := make(map[string]bool, len(inner))
	for k := range inner {
		preKeys[k] = true
	}
	if w.block(body.List, inner) {
		return
	}
	for k, h := range inner {
		if !preKeys[k] && !h.deferred {
			w.pass.Reportf(h.pos, "%s locked in a loop body is not released by the end of the iteration", k)
		}
	}
}

// checkExit reports locks still held, and not deferred-released, at a
// function exit point.
func (w *lockWalker) checkExit(held lockState, pos token.Pos, kind string) {
	for k, h := range held {
		if !h.deferred {
			w.pass.Reportf(pos, "%s (locked at %s) is not released on this %s path and has no deferred unlock",
				k, w.pass.Fset.Position(h.pos), kind)
		}
	}
}
