// Package sentinelerr is the fixture for the sentinel-error discipline:
// errors.Is instead of identity, %w instead of %v.
package sentinelerr

import (
	"errors"
	"fmt"
)

var ErrFrozen = errors.New("frozen")

// Not Err-prefixed: outside the sentinel convention, identity comparison
// is not flagged.
var errLocal = errors.New("local")

func compareEq(err error) bool {
	return err == ErrFrozen // want `sentinel ErrFrozen compared with ==`
}

func compareNeq(err error) bool {
	return err != ErrFrozen // want `sentinel ErrFrozen compared with !=`
}

func compareSwitch(err error) string {
	switch err {
	case ErrFrozen: // want `sentinel ErrFrozen matched by switch case identity`
		return "frozen"
	}
	return ""
}

func wrapSevered(err error) error {
	return fmt.Errorf("load: %v", err) // want `error formatted with %v severs the sentinel chain`
}

func wrapString(err error) error {
	return fmt.Errorf("load: %s", err) // want `error formatted with %s severs the sentinel chain`
}

// The blessed forms: errors.Is matching and %w wrapping.
func matchClean(err error) error {
	if errors.Is(err, ErrFrozen) {
		return fmt.Errorf("load: %w", err)
	}
	return err
}

// Non-sentinel comparison and non-error formatting stay clean.
func otherClean(err error, n int) (bool, error) {
	return err == errLocal, fmt.Errorf("load %d: %s", n, err.Error())
}
