package sentinelerr

// Test files are exempt from the comparison rule: clean.
func testCompare(err error) bool {
	return err == ErrFrozen
}
