// Package hotpathalloc is the fixture for the //buddy:hotpath allocation
// ban.
package hotpathalloc

import "fmt"

type header struct {
	n int
}

// process stands in for a codec inner loop: the steady state must not
// allocate; the guarded error return is a cold path and exempt.
//
//buddy:hotpath
func process(dst, src []byte) ([]byte, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("empty input") // cold path: exempt
	}
	buf := make([]byte, 4) // want `hotpath but calls make`
	tmp := []byte{1, 2, 3} // want `allocates a \[\]byte literal`
	h := &header{n: 1}     // want `heap-allocates &`
	fmt.Println("hot")     // want `calls fmt\.Println`
	s := string(src)       // want `converts between string and \[\]byte`
	n := 0
	f := func() { n++ } // want `closure capturing n`
	f()
	go f() // want `spawns a goroutine`
	_, _, _ = tmp, h, s
	return append(dst, buf...), nil
}

// unmarked allocates freely: clean.
func unmarked() []byte {
	return make([]byte, 4)
}

// wordKernel stands in for the word-view codec kernels: the [16]uint64
// scratch lives on the stack and the stream buffer is caller-provided, so
// a make inside the kernel is a lost fast path, not a style issue.
//
//buddy:hotpath
func wordKernel(dst []byte, w *[16]uint64) []byte {
	var acc uint64
	for _, x := range w {
		acc |= x
	}
	if acc == 0 {
		return append(dst, 0)
	}
	spill := make([]byte, 128) // want `hotpath but calls make`
	return append(dst, spill...)
}

// drrDequeue stands in for the tenant scheduler's weighted-fair dequeue:
// the run window is a caller-provided fixed array and the rings are
// preallocated, so a make for a per-grant scratch slice is a lost
// zero-alloc serving path, not a style issue.
//
//buddy:hotpath
func drrDequeue(rings [][]int, run *[8]int) int {
	n := 0
	for i := range rings {
		if len(rings[i]) == 0 {
			continue
		}
		grant := make([]int, 0, 8) // want `hotpath but calls make`
		grant = append(grant, rings[i][0])
		run[n] = grant[0]
		n++
		if n == len(run) {
			break
		}
	}
	return n
}

// worker shows the parallelSpan shape: the marker on the line above a
// function literal marks the literal.
func worker(run func(func(lo, hi int))) {
	//buddy:hotpath
	run(func(lo, hi int) {
		p := new(int) // want `hotpath but calls new`
		_ = p
		for i := lo; i < hi; i++ {
			if i < 0 {
				panic("bad span") // cold path: exempt
			}
		}
	})
}
