// Package lockorder is the fixture for the Device lock hierarchy and the
// release discipline.
package lockorder

import "sync"

// Device mirrors core.Device's lock fields: control-plane migMu, then the
// allocation-table mu, then the entry-shard locks.
type Device struct {
	migMu  sync.Mutex
	mu     sync.RWMutex
	shards [8]sync.Mutex
}

func (d *Device) shard(i int) *sync.Mutex { return &d.shards[i%len(d.shards)] }

// The documented order with deferred unlocks: clean.
func (d *Device) ordered(i int) {
	d.migMu.Lock()
	defer d.migMu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	sh := d.shard(i)
	sh.Lock()
	defer sh.Unlock()
}

// Taking mu while holding an entry-shard lock inverts the hierarchy.
func (d *Device) shardThenMu(i int) {
	sh := d.shard(i)
	sh.Lock()
	defer sh.Unlock()
	d.mu.Lock() // want `violates the lock order migMu -> mu -> entry shards`
	defer d.mu.Unlock()
}

// Taking migMu under mu inverts it one level up.
func (d *Device) muThenMig() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.migMu.Lock() // want `violates the lock order migMu -> mu -> entry shards`
	defer d.migMu.Unlock()
}

// Re-acquiring a held lock self-deadlocks.
func (d *Device) reacquire() {
	d.mu.Lock()
	d.mu.Lock() // want `re-acquiring deadlocks`
	d.mu.Unlock()
}

// A read lock must be released with RUnlock.
func (d *Device) mismatched() {
	d.mu.RLock()
	d.mu.Unlock() // want `use RUnlock`
}

// Releasing on every return path without defer: clean.
func (d *Device) everyPath(cond bool) int {
	d.mu.Lock()
	if cond {
		d.mu.Unlock()
		return 1
	}
	d.mu.Unlock()
	return 0
}

// One early return forgets the unlock.
func (d *Device) leakyReturn(cond bool) int {
	d.mu.Lock()
	if cond {
		return 1 // want `not released on this return path`
	}
	d.mu.Unlock()
	return 0
}

// A lock taken in a loop iteration must be released before the next one.
func (d *Device) loopLocked(n int) {
	for i := 0; i < n; i++ {
		d.migMu.Lock() // want `locked in a loop body is not released`
	}
}

// Falling off the end of the function still holding the lock.
func (d *Device) fallThrough() {
	d.mu.Lock()
} // want `not released on this fall-through path`
