// Package compress is a nolegacy fixture mimicking internal/compress:
// declarations that grow the retired surface back are flagged, the Codec
// surface is not.
package compress

// Codec is the supported single-pass surface; declaring and using it is
// clean.
type Codec interface {
	AppendCompressed(dst, src []byte) []byte
	DecompressInto(dst, src []byte) error
}

type Compressor interface { // want `the retired Compressor interface reappeared`
	Compress(b []byte) []byte
}

type codec struct{}

// The Codec methods are the supported surface: clean.

func (codec) AppendCompressed(dst, src []byte) []byte { return append(dst, src...) }

func (codec) DecompressInto(dst, src []byte) error { return nil }

// The deleted allocate-per-call method set must stay deleted.

func (codec) Compress(b []byte) []byte { return b } // want `method Compress re-declares the deleted legacy Compressor surface`

func (codec) Decompress(b []byte) ([]byte, error) { return b, nil } // want `method Decompress re-declares the deleted legacy Compressor surface`

func (codec) CompressedBits(b []byte) int { return 0 } // want `method CompressedBits re-declares the deleted legacy Compressor surface`

// A free function with a legacy name is fine: only methods re-grow the
// interface surface.
func Compress(b []byte) []byte { return b }
