package nolegacy

// Test files may cover the deprecated alias: clean.
var testUse = WithCompressor
