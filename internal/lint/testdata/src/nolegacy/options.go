package nolegacy

// WithCompressor stands in for the deprecated alias in the real
// options.go; references inside its declaring file are allowed.
func WithCompressor() int { return 0 }

var sameFileUse = WithCompressor
