// Package nolegacy is the fixture for references to the retired surface
// from outside the compress package.
package nolegacy

import (
	renamed "compress"
)

// Renaming the import does not dodge the type-aware check.
var _ renamed.Compressor // want `reference to the retired compress\.Compressor interface`

// The supported surface through the same renamed import is clean.
var _ renamed.Codec

// Using the deprecated alias away from its declaration (options.go) is
// flagged.
var legacyOpt = WithCompressor // want `WithCompressor used outside its deprecated alias declaration`
