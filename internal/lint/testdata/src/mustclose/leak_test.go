package mustclose

// Test files are exempt: a helper may lean on process exit.
func testLeak(d *Device) {
	h, _ := d.Malloc("x", 1)
	_ = h
}
