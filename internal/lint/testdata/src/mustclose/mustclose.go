// Package mustclose is the fixture for the allocation-lifecycle check:
// Malloc/NewPool results must reach Close or Free, or visibly escape.
package mustclose

type Handle struct{ open bool }

func (h *Handle) Close() error { return nil }

type Device struct{}

func (d *Device) Malloc(name string, n int64) (*Handle, error) {
	return &Handle{open: true}, nil
}

func (d *Device) Free(h *Handle) {}

type Pool struct{}

func (p *Pool) Close() error { return nil }

func NewPool() (*Pool, error) { return &Pool{}, nil }

// Leaked outright: never closed, never escapes.
func leak(d *Device) {
	h, err := d.Malloc("x", 1) // want `h obtained from Malloc never reaches Close or Free`
	if err != nil {
		return
	}
	_ = h.open
}

// Discarding the handle can never release it.
func discard(d *Device) {
	_, _ = d.Malloc("x", 1) // want `result of Malloc discarded`
}

// A pool is a resource too.
func poolLeak() {
	p, err := NewPool() // want `p obtained from NewPool never reaches Close or Free`
	if err != nil {
		return
	}
	_ = p
}

// Deferred close: clean.
func closed(d *Device) error {
	h, err := d.Malloc("x", 1)
	if err != nil {
		return err
	}
	defer h.Close()
	return nil
}

// Released through Device.Free with the handle as the argument: clean.
func freed(d *Device) {
	h, _ := d.Malloc("x", 1)
	d.Free(h)
}

// Returning the handle hands ownership to the caller: clean.
func handedOff(d *Device) (*Handle, error) {
	h, err := d.Malloc("x", 1)
	return h, err
}

// Storing into a structure the caller sees escapes: clean.
func stored(d *Device, dst *[]*Handle) error {
	h, err := d.Malloc("x", 1)
	if err != nil {
		return err
	}
	*dst = append(*dst, h)
	return nil
}

// Closed from a deferred literal (nested literals are scanned): clean.
func closedInDefer(d *Device) {
	h, _ := d.Malloc("x", 1)
	defer func() {
		_ = h.Close()
	}()
}
