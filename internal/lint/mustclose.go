package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"buddy/internal/lint/analysis"
)

// MustClose is a lostcancel-style lifecycle check: the handle returned by
// Malloc (Device.Malloc, Pool.Malloc) or a pool constructor (NewPool,
// pool.New) reserves device and carve-out capacity that only Close/Free
// returns. In non-test code the result must reach a Close/Free call on
// some path, or visibly escape the function (returned, stored, passed
// on) so a caller can release it.
var MustClose = &analysis.Analyzer{
	Name: "mustclose",
	Doc: `require Malloc/NewPool results to reach Close or Free

Flags non-test functions that obtain an allocation handle from a method
named Malloc, or a pool from NewPool/pool.New, and neither release it
(x.Close(), Free(x), directly or deferred, anywhere in the function
including nested literals) nor let it escape (returned, stored into a
structure, sent on a channel, appended, or passed to another call).
Discarding such a result with _ is always flagged. Leaked handles pin
device-slab and buddy carve-out reservations for the process lifetime.`,
	Run: runMustClose,
}

// closeableResult reports whether call yields a resource the analyzer
// tracks, returning a label for diagnostics.
func closeableResult(info *types.Info, call *ast.CallExpr) (string, bool) {
	name := ""
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name, obj = fun.Name, info.Uses[fun]
	case *ast.SelectorExpr:
		name, obj = fun.Sel.Name, info.Uses[fun.Sel]
	default:
		return "", false
	}
	switch name {
	case "Malloc", "NewPool":
	case "New":
		// pool.New — the package-qualified constructor behind NewPool.
		if obj == nil || obj.Pkg() == nil || !(obj.Pkg().Path() == "pool" || strings.HasSuffix(obj.Pkg().Path(), "/pool")) {
			return "", false
		}
	default:
		return "", false
	}
	// The first result must actually be closeable; this keeps unrelated
	// Malloc-named functions (no Close in their method set) out of scope.
	sig, ok := resultSignature(info, call)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	if !hasCloseMethod(sig.Results().At(0).Type()) {
		return "", false
	}
	return name, true
}

func resultSignature(info *types.Info, call *ast.CallExpr) (*types.Signature, bool) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil, false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	return sig, ok
}

func hasCloseMethod(t types.Type) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Close")
	f, ok := obj.(*types.Func)
	return ok && f != nil
}

func runMustClose(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		if inTestFile(posFile(pass, file.Pos())) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMustClose(pass, fd)
		}
	}
	return nil, nil
}

func checkMustClose(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		label, ok := closeableResult(info, call)
		if !ok {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		if id.Name == "_" {
			pass.Reportf(as.Pos(), "result of %s discarded; the handle must reach Close or Free to release its reservations", label)
			return true
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return true
		}
		if !releasedOrEscapes(info, fd, obj) {
			pass.Reportf(as.Pos(), "%s obtained from %s never reaches Close or Free and does not escape %s; its device and carve-out reservations leak",
				id.Name, label, fd.Name.Name)
		}
		return true
	})
}

// releasedOrEscapes scans the whole function (nested literals included,
// so deferred closures and goroutines count) for a release of obj or an
// escape that hands ownership elsewhere.
func releasedOrEscapes(info *types.Info, fd *ast.FuncDecl, obj types.Object) bool {
	isObj := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && (info.Uses[id] == obj || info.Defs[id] == obj)
	}
	containsObj := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return found
	}
	ok := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// x.Close() — or Free(x)/d.Free(x)-style transfer of x as an
			// argument to any call, which either releases it or hands it
			// to code that becomes responsible for it.
			if sel, isSel := n.Fun.(*ast.SelectorExpr); isSel {
				if (sel.Sel.Name == "Close" || sel.Sel.Name == "Free") && isObj(sel.X) {
					ok = true
					return false
				}
			}
			// Only the handle itself as an argument transfers ownership;
			// an expression derived from it (h.Shard() in a Printf call)
			// does not.
			for _, arg := range n.Args {
				if isObj(arg) {
					ok = true
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if containsObj(r) {
					ok = true
					return false
				}
			}
		case *ast.AssignStmt:
			// Stored into anything other than a plain local: struct
			// field, slice/map element, dereference or package-level var.
			for i, rhs := range n.Rhs {
				if !containsObj(rhs) {
					continue
				}
				if i < len(n.Lhs) || len(n.Rhs) == 1 {
					for _, lhs := range n.Lhs {
						switch l := lhs.(type) {
						case *ast.Ident:
							if o := info.Uses[l]; o != nil && o.Pkg() != nil && o.Parent() == o.Pkg().Scope() {
								ok = true // package-level variable
							}
						default:
							ok = true
						}
					}
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if containsObj(el) {
					ok = true
					return false
				}
			}
		case *ast.SendStmt:
			if containsObj(n.Value) {
				ok = true
				return false
			}
		}
		return !ok
	})
	return ok
}
