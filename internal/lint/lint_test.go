package lint_test

import (
	"testing"

	"buddy/internal/lint"
	"buddy/internal/lint/analysistest"
)

// Each analyzer runs over its fixture package(s) under testdata/src; the
// fixtures pair flagged lines (`// want`) with clean look-alikes so both
// the positive and the negative behavior are pinned.

func TestNoLegacy(t *testing.T) {
	analysistest.Run(t, lint.NoLegacy, "nolegacy", "compress")
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lint.LockOrder, "lockorder")
}

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, lint.HotPathAlloc, "hotpathalloc")
}

func TestSentinelErr(t *testing.T) {
	analysistest.Run(t, lint.SentinelErr, "sentinelerr")
}

func TestMustClose(t *testing.T) {
	analysistest.Run(t, lint.MustClose, "mustclose")
}
