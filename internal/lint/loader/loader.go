// Package loader loads type-checked packages for buddylint without
// golang.org/x/tools/go/packages: `go list -json` supplies the file lists,
// `go list -export` supplies compiled export data for every dependency, and
// go/types checks the target packages from source against that export data.
// Only the packages under analysis are parsed; all imports — stdlib and
// module-internal alike — resolve through the build cache's export files,
// which the go command rebuilds from current source on every run.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"buddy/internal/lint/analysis"
)

// A Package is one loaded, type-checked package ready for analysis. The
// fields mirror what an analysis.Pass needs.
type Package struct {
	// ImportPath is the package's import path; external test packages get
	// the go convention's "_test" suffix.
	ImportPath string
	Name       string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	TypeErrors []types.Error
}

// Pass builds an analysis.Pass applying a to the package, delivering
// diagnostics to report.
func (p *Package) Pass(a *analysis.Analyzer, fset *token.FileSet, report func(analysis.Diagnostic)) *analysis.Pass {
	return &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      p.Files,
		Pkg:        p.Types,
		TypesInfo:  p.Info,
		TypeErrors: p.TypeErrors,
		Report:     report,
	}
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath   string
	Name         string
	Dir          string
	Export       string
	ForTest      string
	DepOnly      bool
	Standard     bool
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loader: go list %s: %w\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportData compiles the given packages and their dependencies (test
// dependencies included) and returns the import path -> export data file
// map the type-checker imports through. The go command serves the files
// from its build cache, so repeat runs are incremental.
func ExportData(dir string, patterns ...string) (map[string]string, error) {
	args := append([]string{"-e", "-export", "-deps", "-test", "-json=ImportPath,Export,ForTest"}, patterns...)
	pkgs, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		// Test variants ("p [p.test]", ForTest set) and synthesized test
		// mains ("p.test") never serve as plain imports; skip them so the
		// map holds exactly the importable build of each path.
		if p.ForTest != "" || strings.HasSuffix(p.ImportPath, ".test") || p.Export == "" {
			continue
		}
		exports[p.ImportPath] = p.Export
	}
	return exports, nil
}

// exportImporter resolves imports through export data files, with an
// optional fallback for paths outside the map (analysistest fixture
// packages).
type exportImporter struct {
	base     types.ImporterFrom
	exports  map[string]string
	fallback func(path string) (*types.Package, error)
}

// NewImporter returns a types.Importer serving the export map, consulting
// fallback (if non-nil) for paths the map lacks.
func NewImporter(fset *token.FileSet, exports map[string]string, fallback func(string) (*types.Package, error)) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	}
	gc := importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return &exportImporter{base: gc, exports: exports, fallback: fallback}
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := ei.exports[path]; !ok && ei.fallback != nil {
		return ei.fallback(path)
	}
	return ei.base.ImportFrom(path, "", 0)
}

// Check parses the given files and type-checks them as one package. With
// allowErrors set, type errors are collected on the returned Package
// instead of failing the load — fixture packages deliberately reference
// retired API surface that no longer compiles.
func Check(fset *token.FileSet, importPath, dir string, fileNames []string, imp types.Importer, allowErrors bool) (*Package, error) {
	pkg := &Package{ImportPath: importPath, Dir: dir}
	for _, name := range fileNames {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("loader: package %s has no files", importPath)
	}
	pkg.Name = pkg.Files[0].Name.Name
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if te, ok := err.(types.Error); ok {
				pkg.TypeErrors = append(pkg.TypeErrors, te)
			}
		},
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tpkg, err := conf.Check(importPath, fset, pkg.Files, pkg.Info)
	if err != nil && !allowErrors {
		return nil, fmt.Errorf("loader: type-checking %s: %w", importPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// Load loads the module packages matching patterns from the module rooted
// at dir, type-checked with their in-package test files; external test
// packages (package foo_test) load as separate packages. Type errors fail
// the load: buddylint runs after `go vet`, on a tree that must compile.
func Load(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	targets, err := goList(dir, append([]string{"-json=ImportPath,Name,Dir,GoFiles,TestGoFiles,XTestGoFiles"}, patterns...)...)
	if err != nil {
		return nil, nil, err
	}
	exports, err := ExportData(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset, exports, nil)
	var pkgs []*Package
	for _, t := range targets {
		if t.DepOnly || len(t.GoFiles)+len(t.TestGoFiles) == 0 {
			continue
		}
		files := append(append([]string{}, t.GoFiles...), t.TestGoFiles...)
		pkg, err := Check(fset, t.ImportPath, t.Dir, files, imp, false)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
		if len(t.XTestGoFiles) > 0 {
			xpkg, err := Check(fset, t.ImportPath+"_test", t.Dir, t.XTestGoFiles, imp, false)
			if err != nil {
				return nil, nil, err
			}
			pkgs = append(pkgs, xpkg)
		}
	}
	return fset, pkgs, nil
}
