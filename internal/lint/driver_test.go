package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseForSuppressions(t *testing.T, src string) (*token.FileSet, []*suppression) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "sup.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, parseSuppressions(fset, f)
}

func TestParseSuppressions(t *testing.T) {
	_, sups := parseForSuppressions(t, `package p

//nolint:buddy/mustclose -- handle owned by the C side
var a int

//nolint:buddy/mustclose,buddy/lockorder -- FFI boundary
var b int

//nolint:gosec // some other linter's directive
var c int

//nolint:buddy/sentinelerr
var d int
`)
	if len(sups) != 3 {
		t.Fatalf("parsed %d buddy suppressions, want 3", len(sups))
	}
	if !sups[0].names["mustclose"] || sups[0].reason != "handle owned by the C side" {
		t.Errorf("first suppression parsed as %+v", sups[0])
	}
	if !sups[1].names["mustclose"] || !sups[1].names["lockorder"] {
		t.Errorf("multi-analyzer suppression parsed as %+v", sups[1])
	}
	if sups[2].reason != "" {
		t.Errorf("reason-less suppression parsed a reason %q", sups[2].reason)
	}
}

func TestApplySuppressions(t *testing.T) {
	pos := func(line int) token.Position { return token.Position{Filename: "sup.go", Line: line} }
	findings := []Finding{
		{Analyzer: "mustclose", Pos: pos(10), Message: "leak"},
		{Analyzer: "mustclose", Pos: pos(20), Message: "leak"},
		{Analyzer: "lockorder", Pos: pos(10), Message: "order"},
	}
	sups := []*suppression{
		// Justified, on the line above finding 1: suppresses it.
		{names: map[string]bool{"mustclose": true}, reason: "ok", pos: pos(9)},
		// Reason-less directive matching finding 2: finding survives and
		// the directive itself becomes a finding.
		{names: map[string]bool{"mustclose": true}, pos: pos(20)},
		// Justified but matching nothing: unused, becomes a finding.
		{names: map[string]bool{"sentinelerr": true}, reason: "ok", pos: pos(30)},
	}
	got := applySuppressions(findings, sups)
	var kept []string
	for _, f := range got {
		kept = append(kept, f.Analyzer)
	}
	want := []string{"mustclose", "lockorder", "nolint", "nolint"}
	if strings.Join(kept, " ") != strings.Join(want, " ") {
		t.Fatalf("applySuppressions kept %v, want %v", kept, want)
	}
	for _, f := range got {
		if f.Analyzer != "nolint" {
			continue
		}
		if f.Pos.Line != 20 && f.Pos.Line != 30 {
			t.Errorf("unexpected nolint finding at line %d: %s", f.Pos.Line, f.Message)
		}
	}
}
