package exp

import (
	"fmt"

	"buddy/internal/analysis"
	"buddy/internal/compress"
	"buddy/internal/core"
	"buddy/internal/workloads"
)

// ---------------------------------------------------------------------------
// Reprofile: live target-ratio migration on a drifting workload
// ---------------------------------------------------------------------------

// ReprofileBenchmark is the workload the reprofile experiment drives:
// 355.seismic's wavefields start ~92% zero and progressively fill in, so
// the snapshot-0 targets go stale faster than any other Tab. 1 benchmark.
const ReprofileBenchmark = "355.seismic"

// ReprofileStep is one checkpoint of the drifting run.
type ReprofileStep struct {
	// Snapshot indexes the checkpoint (1..9; snapshot 0 set the targets).
	Snapshot int
	// StaleBuddyFrac is the buddy-access fraction a full read pass measures
	// on the live device before the checkpoint acts, i.e. under the targets
	// still in force.
	StaleBuddyFrac float64
	// Applied reports whether the checkpoint's ReprofilePlan was judged
	// worthwhile and executed with ApplyReprofile.
	Applied bool
	// PlannedBytes and MigratedBytes are the plan's migration-cost estimate
	// and the bytes the live migration actually re-packed (0 when not
	// applied).
	PlannedBytes, MigratedBytes int64
	// BuddyFracAfter is the same read-pass measurement after the checkpoint
	// (equal to StaleBuddyFrac when nothing was applied).
	BuddyFracAfter float64
	// Ratio is the device compression ratio after the checkpoint.
	Ratio float64
}

// ReprofileResult aggregates the experiment.
type ReprofileResult struct {
	Benchmark string
	// Horizon is the amortization horizon (accesses) gating each plan.
	Horizon int64
	Steps   []ReprofileStep
}

// Reprofile runs the §3.4 periodic-target-update extension end to end on a
// live Device: profile snapshot 0, load it, then at every later snapshot
// drift the contents in place, measure the buddy-access fraction under the
// stale targets, plan a re-profile from the fresh snapshot's index, and —
// when the plan amortizes within the device's horizon — apply it with
// ApplyReprofile while the device stays live. The before/after fractions
// and migration cost per checkpoint are the experiment's figure.
func Reprofile(scale int) (*ReprofileResult, error) {
	b, err := workloads.ByName(ReprofileBenchmark)
	if err != nil {
		return nil, err
	}
	bpc := compress.NewBPC()
	snap0 := workloads.GenerateSnapshot(b, 0, scale)
	prof := core.ProfileIndexes([]*analysis.Index{snapshotIndex(b, 0, scale, bpc)}, core.FinalDesign())
	targets := prof.Targets()

	// 2x headroom over the raw footprint: a migration holds the old and
	// new layout reserved at once.
	d := core.NewDevice(core.Config{Codec: bpc, DeviceBytes: 2 * int64(snap0.TotalBytes())})
	allocs := make(map[string]*core.Allocation, len(snap0.Allocations))
	for _, ma := range snap0.Allocations {
		target, ok := targets[ma.Name]
		if !ok {
			target = core.Target1x
		}
		a, err := d.Malloc(ma.Name, int64(len(ma.Data)), target)
		if err != nil {
			return nil, fmt.Errorf("exp: reprofile load %s: %w", ma.Name, err)
		}
		if _, err := a.WriteAt(ma.Data, 0); err != nil {
			return nil, err
		}
		allocs[ma.Name] = a
	}

	res := &ReprofileResult{Benchmark: b.Name, Horizon: d.ReprofileHorizon()}
	for t := 1; t < workloads.Snapshots; t++ {
		s := workloads.GenerateSnapshot(b, t, scale)
		for _, ma := range s.Allocations {
			a := allocs[ma.Name]
			if a == nil {
				continue
			}
			if _, err := a.WriteAt(ma.Data, 0); err != nil {
				return nil, err
			}
		}
		step := ReprofileStep{Snapshot: t}
		if step.StaleBuddyFrac, err = readPassBuddyFrac(d); err != nil {
			return nil, err
		}
		plan := core.PlanReprofileIndexes(d.Targets(), []*analysis.Index{snapshotIndex(b, t, scale, bpc)}, core.FinalDesign())
		if len(plan.Decisions) > 0 && d.ReprofileWorthwhile(plan) {
			st, err := d.ApplyReprofile(plan)
			if err != nil {
				return nil, err
			}
			step.Applied = st.Applied > 0
			step.PlannedBytes = plan.TotalMigrationBytes
			step.MigratedBytes = st.MigratedBytes
		}
		if step.BuddyFracAfter, err = readPassBuddyFrac(d); err != nil {
			return nil, err
		}
		step.Ratio = d.CompressionRatio()
		res.Steps = append(res.Steps, step)
	}
	return res, nil
}

// readPassBuddyFrac reads every live allocation end to end and returns the
// buddy-access fraction of that pass — the measured counterpart of the
// profiler's static overflow estimate.
func readPassBuddyFrac(d *core.Device) (float64, error) {
	d.ResetTraffic()
	for _, a := range d.Allocations() {
		buf := make([]byte, a.Size())
		if _, err := a.ReadAt(buf, 0); err != nil {
			return 0, err
		}
	}
	return d.Traffic().BuddyAccessFraction(), nil
}
