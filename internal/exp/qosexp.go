package exp

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"buddy/internal/core"
	"buddy/internal/gen"
	"buddy/internal/pool"
)

// ---------------------------------------------------------------------------
// QoS: tenant-aware serving under a saturating batch mix
// ---------------------------------------------------------------------------
//
// The serve experiment shows what sharding buys a fleet; this one shows
// what the tenant-aware scheduler buys its users. A latency-sensitive
// tenant issues small closed-loop bursts into a pool that a set of batch
// tenants keeps saturated with deep open-loop write streams. Two
// contracts are on trial:
//
//   - Isolation: the latency tenant's modeled p99 completion latency
//     (virtual device+link cycles, queueing included) stays under an SLO
//     bound even though the batch backlog never drains during the run.
//     Priority classes make this happen — in a FIFO pool the burst would
//     queue behind ~QueueDepth 64 KiB batch chunks.
//   - Weighted shares: among the batch tenants (one heavy, weight
//     QoSHeavyWeight; the rest weight 1), deficit round-robin must hand
//     the heavy tenant its configured share of served bytes. Measured
//     over a steady-state window in which every batch tenant stays
//     backlogged, so plain round-robin (share 1/n) fails the pin and
//     only a working DRR (share w/(w+n-1)) passes.
//
// Admission control rides along: the latency tenant runs with a capacity
// quota sized to its working set, and the experiment probes one
// over-quota Malloc to show the typed rejection.

const (
	// QoSBatchTenants is the default batch tenant population; the cmds'
	// -tenants flag overrides it.
	QoSBatchTenants = 2

	// QoSHeavyWeight is the heavy batch tenant's DRR weight (the rest
	// weigh 1).
	QoSHeavyWeight = 3

	// QoSDefaultSLOCycles is the default p99 SLO bound for the latency
	// tenant, in modeled device+link cycles; the cmds' -qos flag
	// overrides it. A latency burst itself costs ~85 cycles at 2x — the
	// bound is dominated by the batch runs the burst may queue behind.
	QoSDefaultSLOCycles = 4000

	// qosBatchChunk is the batch streams' submit granularity and
	// qosLatBurst the latency tenant's closed-loop burst, submitted as
	// qosLatChunks pieces (adjacent, so the worker coalesces them).
	qosBatchChunk = 64 << 10
	qosLatChunks  = 4
	qosLatChunk   = 4 << 10

	// qosWarmBytes is the per-tenant served-byte warmup before the share
	// measurement window opens, skipping the startup transient in which
	// the earliest-scheduled submitters are served without contention.
	qosWarmBytes = uint64(2 << 20)

	// qosLaps is how many times each batch stream rewrites its region.
	// The whole demand is submitted up front, so each tenant's rings hold
	// qosLaps x region of backlog; sized so the warmup plus the
	// measurement window drain well under half of it and no ring runs dry
	// while shares are being measured.
	qosLaps = 4
)

// QoSResult is the qos experiment's outcome.
type QoSResult struct {
	// Shards is the pool width and BatchTenants the batch population.
	Shards       int
	BatchTenants int
	// SLOCycles is the latency tenant's p99 bound in modeled cycles and
	// SLOMet whether its observed p99 stayed under it.
	SLOCycles float64
	SLOMet    bool
	// HeavyShare is the heavy batch tenant's observed fraction of batch
	// served bytes over the steady-state measurement window;
	// EntitledShare its weight-proportional entitlement; ShareMet whether
	// observed >= 0.9 x entitled.
	HeavyShare    float64
	EntitledShare float64
	ShareMet      bool
	// QuotaRejected reports whether the over-quota probe Malloc failed
	// with the typed ErrQuotaExceeded.
	QuotaRejected bool
	// Bursts counts the latency tenant's completed closed-loop bursts.
	Bursts int
	// Tenants is the final per-tenant telemetry, in Pool.Stats order
	// (default tenant first).
	Tenants []pool.TenantStats
	// BatchBytes is the heavy tenant's served-byte demand for the
	// measurement window and WallSeconds the host-side wall time of the
	// run.
	BatchBytes  int64
	WallSeconds float64
}

// qosTenantConfigs builds the experiment's tenant set: nBatch batch
// tenants in class 0 (batch0 heavy) and one latency tenant in class 1
// with a quota covering exactly its regions.
func qosTenantConfigs(nBatch, shards int, latRegion int64) map[string]pool.TenantConfig {
	cfgs := make(map[string]pool.TenantConfig, nBatch+1)
	for i := 0; i < nBatch; i++ {
		w := 1
		if i == 0 {
			w = QoSHeavyWeight
		}
		cfgs[fmt.Sprintf("batch%d", i)] = pool.TenantConfig{Weight: w}
	}
	perRegion := ((latRegion + core.EntryBytes - 1) / core.EntryBytes) * int64(core.Target2x.DeviceBytes())
	cfgs["latency"] = pool.TenantConfig{
		Priority:      1,
		CapacityBytes: int64(shards) * perRegion,
	}
	return cfgs
}

// QoS runs the tenant-aware serving experiment. scale is the footprint
// divisor (larger = smaller batch demand floor), shards the pool width
// (<= 0 selects 4), nBatch the batch tenant count (<= 0 selects
// QoSBatchTenants) and sloCycles the latency p99 bound (<= 0 selects
// QoSDefaultSLOCycles).
func QoS(scale, shards, nBatch int, sloCycles float64) (*QoSResult, error) {
	if shards <= 0 {
		shards = 4
	}
	if nBatch <= 0 {
		nBatch = QoSBatchTenants
	}
	if sloCycles <= 0 {
		sloCycles = QoSDefaultSLOCycles
	}
	if scale <= 0 {
		scale = 1024
	}
	// Each batch tenant streams batchBytes split evenly across the
	// shards; the latency tenant keeps one small region per shard.
	batchBytes := int64(12 << 20)
	if flo := int64(2<<30) / int64(scale); flo > batchBytes {
		batchBytes = flo
	}
	wbShard := batchBytes / int64(shards) / qosBatchChunk * qosBatchChunk
	if wbShard < qosBatchChunk {
		wbShard = qosBatchChunk
	}
	batchBytes = wbShard * int64(shards)
	const latRegion = int64(64 << 10)

	// Per-shard device capacity: every tenant's per-shard reservation at
	// 2x, doubled for slack.
	devPerShard := (wbShard*int64(nBatch)/2 + latRegion) * 2
	devices := make([]*core.Device, shards)
	for i := range devices {
		devices[i] = core.NewDevice(core.Config{DeviceBytes: devPerShard})
	}
	// Rings deep enough to hold each batch stream's entire pre-submitted
	// demand: the contention the scheduler arbitrates is a standing
	// backlog, not a refill race between submitter goroutines and
	// workers (on a small host the latter turns fair shares into
	// lone-ring ping-pong).
	depth := qosLaps * int(wbShard/qosBatchChunk)
	p, err := pool.New(devices, pool.Config{
		Placement:  pool.RoundRobin(),
		QueueDepth: depth,
		Tenants:    qosTenantConfigs(nBatch, shards, latRegion),
	})
	if err != nil {
		return nil, err
	}
	defer p.Close()

	// One region per shard per tenant: shards consecutive round-robin
	// Mallocs land on shards distinct shards.
	rng := gen.NewRNG(11, 1)
	batchData := make([]byte, wbShard)
	(gen.SparseFP16{ZeroFrac: 0.9}).Fill(batchData, rng)
	latData := make([]byte, latRegion)
	(gen.SparseFP16{ZeroFrac: 0.9}).Fill(latData, rng)

	doors := make([]*pool.Tenant, nBatch)
	regions := make([][]*pool.Handle, nBatch)
	for i := 0; i < nBatch; i++ {
		if doors[i], err = p.Tenant(fmt.Sprintf("batch%d", i)); err != nil {
			return nil, err
		}
		regions[i] = make([]*pool.Handle, shards)
		for s := 0; s < shards; s++ {
			if regions[i][s], err = doors[i].Malloc(fmt.Sprintf("b%d/r%d", i, s), wbShard, core.Target2x); err != nil {
				return nil, err
			}
		}
	}
	latDoor, err := p.Tenant("latency")
	if err != nil {
		return nil, err
	}
	latRegions := make([]*pool.Handle, shards)
	for s := 0; s < shards; s++ {
		if latRegions[s], err = latDoor.Malloc(fmt.Sprintf("lat/r%d", s), latRegion, core.Target2x); err != nil {
			return nil, err
		}
	}
	// Admission probe: the latency quota is now exactly full; one more
	// region must be refused with the typed error.
	over, probeErr := latDoor.Malloc("lat/over", latRegion, core.Target2x)
	quotaRejected := errors.Is(probeErr, pool.ErrQuotaExceeded)
	if probeErr == nil {
		over.Close()
		return nil, fmt.Errorf("qos: over-quota probe Malloc succeeded")
	}

	start := time.Now()
	res := &QoSResult{
		Shards:        shards,
		BatchTenants:  nBatch,
		SLOCycles:     sloCycles,
		EntitledShare: float64(QoSHeavyWeight) / float64(QoSHeavyWeight+nBatch-1),
		QuotaRejected: quotaRejected,
		BatchBytes:    batchBytes,
	}

	// Batch streams: one submitter goroutine per tenant per shard, each
	// pre-submitting qosLaps rewrites of its whole region before waiting
	// on anything. Every batch ring then holds a deep standing backlog
	// for the measured window, so the shares observed are the
	// scheduler's, not an artifact of how fast submitters refill.
	var (
		wg     sync.WaitGroup
		errMu  sync.Mutex
		firstE error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstE == nil {
			firstE = err
		}
		errMu.Unlock()
	}
	chunksPerStream := qosLaps * int(wbShard/qosBatchChunk)
	for i := 0; i < nBatch; i++ {
		for s := 0; s < shards; s++ {
			wg.Add(1)
			go func(i, s int) {
				defer wg.Done()
				h := regions[i][s]
				futs := make([]*pool.Future, 0, chunksPerStream)
				var off int64
				for c := 0; c < chunksPerStream; c++ {
					futs = append(futs, p.SubmitWrite(h, batchData[off:off+qosBatchChunk], off))
					off = (off + qosBatchChunk) % wbShard
				}
				for _, f := range futs {
					if _, err := f.Wait(); err != nil {
						fail(fmt.Errorf("batch%d shard %d: %w", i, s, err))
						return
					}
				}
			}(i, s)
		}
	}
	// Latency tenant: closed-loop bursts of qosLatChunks adjacent chunks
	// against a rotating shard, each burst fully awaited before the next,
	// until the batch demand drains.
	stop := make(chan struct{})
	latDone := make(chan int, 1)
	go func() {
		bursts := 0
		var futs [qosLatChunks]*pool.Future
		for {
			select {
			case <-stop:
				latDone <- bursts
				return
			default:
			}
			h := latRegions[bursts%shards]
			for k := range futs {
				futs[k] = p.SubmitWrite(h, latData[:qosLatChunk], int64(k*qosLatChunk))
			}
			for _, f := range futs {
				if _, err := f.Wait(); err != nil {
					fail(fmt.Errorf("latency burst %d: %w", bursts, err))
					latDone <- bursts
					return
				}
			}
			bursts++
		}
	}()
	// The heavy share is measured over a steady-state window. The first
	// ~millisecond of the run is a startup transient: the workers serve
	// whichever rings filled first in lone-ring mode until every
	// tenant's submitters are scheduled, which skews cumulative counts
	// toward the earliest-launched tenant. So: warm up until every batch
	// tenant has served qosWarmBytes, snapshot a per-tenant base, then
	// measure served-byte deltas until the heavy tenant serves its
	// batchBytes demand within the window. Every ring stays backlogged
	// throughout, so plain round-robin (delta share 1/n) fails the pin
	// and only a working DRR (share w/(w+n-1)) passes. batchExit guards
	// the polls: a failed run exits the batch goroutines early.
	batchExit := make(chan struct{})
	go func() { wg.Wait(); close(batchExit) }()
	poll := func(cond func() bool) bool {
		for !cond() {
			select {
			case <-batchExit:
				return false
			default:
				time.Sleep(200 * time.Microsecond)
			}
		}
		return true
	}
	base := make([]uint64, nBatch)
	if poll(func() bool {
		for _, d := range doors {
			if d.Stats().ServedBytes < qosWarmBytes {
				return false
			}
		}
		return true
	}) {
		for k, d := range doors {
			base[k] = d.Stats().ServedBytes
		}
		poll(func() bool { return doors[0].Stats().ServedBytes-base[0] >= uint64(batchBytes) })
	}
	var heavy, sum float64
	for k, d := range doors {
		b := float64(d.Stats().ServedBytes - base[k])
		sum += b
		if k == 0 {
			heavy = b
		}
	}
	if sum > 0 {
		res.HeavyShare = heavy / sum
	}
	wg.Wait()
	close(stop)
	res.Bursts = <-latDone
	res.WallSeconds = time.Since(start).Seconds()
	if firstE != nil {
		return nil, firstE
	}

	st := p.Stats()
	res.Tenants = st.Tenants
	lat := latDoor.Stats()
	res.SLOMet = lat.Latency.P99 <= sloCycles
	res.ShareMet = res.HeavyShare >= 0.9*res.EntitledShare
	return res, nil
}
