package exp

import (
	"testing"

	"buddy/internal/dltrain"
)

func TestFig12Shape(t *testing.T) {
	rows := Fig12()
	if len(rows) != 3 {
		t.Fatalf("Fig. 12 uses three SpecAccel benchmarks, got %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-10s um=%v pinned=%.1f", r.Name, relSeries(r), r.Pinned)
		// Fully resident run is the baseline.
		if r.Points[0].RelativeRuntime > 1.01 {
			t.Errorf("%s: 0%% oversubscription should run at ~1x, got %.2f",
				r.Name, r.Points[0].RelativeRuntime)
		}
		// Runtime grows monotonically and dramatically (paper: log-scale
		// axis up to 64x).
		last := 0.0
		for _, p := range r.Points {
			if p.RelativeRuntime+1e-9 < last {
				t.Errorf("%s: runtime decreased with more oversubscription", r.Name)
			}
			last = p.RelativeRuntime
		}
		if last < 2 {
			t.Errorf("%s: 40%% oversubscription should hurt badly, got %.2fx", r.Name, last)
		}
		if r.Pinned <= 1 {
			t.Errorf("%s: pinned-host mode must be slower than local, got %.2fx", r.Name, r.Pinned)
		}
	}
	// Paper's observation: UM migration often does worse than pinning for
	// irregular benchmarks — 360.ilbdc's UM line must cross its pinned line.
	for _, r := range rows {
		if r.Name != "360.ilbdc" {
			continue
		}
		worst := r.Points[len(r.Points)-1].RelativeRuntime
		if worst <= r.Pinned {
			t.Errorf("360.ilbdc: UM at 40%% (%.1fx) should exceed pinned (%.1fx)", worst, r.Pinned)
		}
	}
}

func relSeries(r Fig12Row) []float64 {
	var out []float64
	for _, p := range r.Points {
		out = append(out, float64(int(p.RelativeRuntime*10))/10)
	}
	return out
}

func TestFig13aShape(t *testing.T) {
	rows := Fig13a()
	byName := map[string]Fig13aRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Footprints grow monotonically with batch and eventually near-linearly.
	for _, r := range rows {
		for i := 1; i < len(r.Points); i++ {
			if r.Points[i].Footprint <= r.Points[i-1].Footprint {
				t.Errorf("%s: footprint must grow with batch", r.Name)
			}
		}
	}
	// AlexNet's parameters dominate: its footprint at batch 1 is a large
	// share of its batch-96 footprint, unlike VGG16 whose activations
	// dominate (the "later transition point", §4.4).
	frac := func(name string) float64 {
		r := byName[name]
		var f1, f96 float64
		for _, p := range r.Points {
			if p.Batch == 1 {
				f1 = float64(p.Footprint)
			}
			if p.Batch == 96 {
				f96 = float64(p.Footprint)
			}
		}
		return f1 / f96
	}
	if frac("AlexNet") <= frac("VGG16") {
		t.Errorf("AlexNet's fixed share (%.2f) should exceed VGG16's (%.2f): later transition point",
			frac("AlexNet"), frac("VGG16"))
	}
}

func TestFig13bShape(t *testing.T) {
	rows := Fig13b()
	for _, r := range rows {
		// Speedup grows with batch then plateaus: final step gain smaller
		// than the first step gain.
		p := r.Points
		if len(p) < 3 {
			t.Fatalf("%s: want >= 3 points", r.Name)
		}
		if p[1].Speedup <= p[0].Speedup {
			t.Errorf("%s: speedup should grow from batch 16 to 32", r.Name)
		}
		firstGain := p[1].Speedup / p[0].Speedup
		lastGain := p[len(p)-1].Speedup / p[len(p)-2].Speedup
		if lastGain >= firstGain {
			t.Errorf("%s: speedup should plateau (first gain %.3f, last gain %.3f)",
				r.Name, firstGain, lastGain)
		}
	}
}

func TestFig13cShape(t *testing.T) {
	res := Fig13c()
	for _, r := range res.Rows {
		t.Logf("%-14s base=%d compressed=%d speedup=%.2f", r.Name, r.BaseBatch, r.CompressedBatch, r.Speedup)
		if r.CompressedBatch < r.BaseBatch {
			t.Errorf("%s: compression must not shrink the feasible batch", r.Name)
		}
		if r.Speedup < 1.0 {
			t.Errorf("%s: larger batch must not slow training, got %.2f", r.Name, r.Speedup)
		}
	}
	t.Logf("mean speedup %.3f (paper ~1.14)", res.Mean)
	if res.Mean < 1.05 || res.Mean > 1.35 {
		t.Errorf("mean case-study speedup %.3f outside band around paper's 1.14", res.Mean)
	}
}

func TestFig13dShape(t *testing.T) {
	if testing.Short() {
		t.Skip("SGD training study")
	}
	skipFidelitySweepUnderRace(t)
	cfg := DefaultFig13dConfig()
	cfg.Epochs = 25
	rows := Fig13d(cfg)
	byBatch := map[int]Fig13dRow{}
	var best float64
	for _, r := range rows {
		byBatch[r.Batch] = r
		t.Logf("batch %3d: final=%.3f jitter=%.4f", r.Batch, r.Final, r.Jitter)
		if r.Final > best {
			best = r.Final
		}
	}
	// Paper: 16/32 do not reach maximum accuracy; 64 does. (Our synthetic
	// task shows the same ordering with a smaller absolute gap; see
	// EXPERIMENTS.md.)
	if byBatch[16].Final >= best-0.002 {
		t.Errorf("batch 16 should under-converge: %.4f vs best %.4f", byBatch[16].Final, best)
	}
	if byBatch[64].Final < best-0.02 {
		t.Errorf("batch 64 should approach best accuracy: %.4f vs %.4f", byBatch[64].Final, best)
	}
	// Paper: jitter is higher with small mini-batches (batch norm).
	if byBatch[16].Jitter <= byBatch[256].Jitter {
		t.Errorf("batch 16 jitter (%.4f) should exceed batch 256's (%.4f)",
			byBatch[16].Jitter, byBatch[256].Jitter)
	}
}

func TestNetworkInventory(t *testing.T) {
	nets := dltrain.Networks()
	if len(nets) != 6 {
		t.Fatalf("want 6 networks, got %d", len(nets))
	}
	params := map[string]int64{}
	for _, n := range nets {
		params[n.Name] = n.TotalParams()
	}
	// Published parameter counts (approximate): AlexNet ~61M, VGG16 ~138M,
	// ResNet50 ~25.5M, SqueezeNet ~1.2M.
	checks := []struct {
		name   string
		lo, hi int64
	}{
		{"AlexNet", 55e6, 68e6},
		{"VGG16", 125e6, 150e6},
		{"ResNet50", 18e6, 32e6},
		{"SqueezeNet", 0.8e6, 1.8e6},
	}
	for _, c := range checks {
		if p := params[c.name]; p < c.lo || p > c.hi {
			t.Errorf("%s params = %d, want within [%d, %d]", c.name, p, c.lo, c.hi)
		}
	}
}
