package exp

import (
	"buddy/internal/dltrain"
	"buddy/internal/nn"
	"buddy/internal/stats"
	"buddy/internal/um"
	"buddy/internal/workloads"
)

// ---------------------------------------------------------------------------
// Fig. 12: Unified Memory oversubscription
// ---------------------------------------------------------------------------

// Fig12Row is one benchmark's UM sweep.
type Fig12Row struct {
	Name string
	// Points pairs each forced-oversubscription level with relative
	// runtime (1.0 = fully resident).
	Points []um.Result
	// Pinned is the all-host-memory mode (dotted lines).
	Pinned float64
}

// Fig12Benchmarks are the three SpecAccel applications the paper measures.
var Fig12Benchmarks = []string{"360.ilbdc", "356.sp", "351.palm"}

// Fig12 reproduces the UM oversubscription study on the Power9-class
// configuration (75 GB/s link).
func Fig12() []Fig12Row {
	cfg := um.DefaultConfig()
	var rows []Fig12Row
	for _, name := range Fig12Benchmarks {
		b, err := workloads.ByName(name)
		if err != nil {
			panic(err) // static list
		}
		footprint := uint64(b.Footprint / 64)
		points, pinned := um.Sweep(b.Trace, footprint, nil, cfg)
		rows = append(rows, Fig12Row{Name: name, Points: points, Pinned: pinned.RelativeRuntime})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Fig. 13: DL training case study
// ---------------------------------------------------------------------------

// Fig13aRow is one network's footprint sweep.
type Fig13aRow struct {
	Name   string
	Points []dltrain.Fig13aPoint
}

// Fig13a computes footprint vs. mini-batch for every network.
func Fig13a() []Fig13aRow {
	cfg := dltrain.DefaultModelConfig()
	var rows []Fig13aRow
	for _, n := range dltrain.Networks() {
		rows = append(rows, Fig13aRow{Name: n.Name, Points: dltrain.Fig13a(n, nil, cfg)})
	}
	return rows
}

// Fig13bRow is one network's throughput-speedup sweep.
type Fig13bRow struct {
	Name   string
	Points []dltrain.Fig13bPoint
}

// Fig13b computes throughput speedup vs. mini-batch.
func Fig13b() []Fig13bRow {
	cfg := dltrain.DefaultModelConfig()
	var rows []Fig13bRow
	for _, n := range dltrain.Networks() {
		rows = append(rows, Fig13bRow{Name: n.Name, Points: dltrain.Fig13b(n, nil, cfg)})
	}
	return rows
}

// Fig13cResult carries the per-network batch-scaling projections and their
// mean speedup (paper: ~14% average; VGG16 ~30%, BigLSTM ~28%).
type Fig13cResult struct {
	Rows []dltrain.Fig13cRow
	Mean float64
}

// Fig13c computes the Buddy-enabled larger-batch speedups.
func Fig13c() *Fig13cResult {
	rows := dltrain.Fig13c(dltrain.DefaultModelConfig())
	var sp []float64
	for _, r := range rows {
		sp = append(sp, r.Speedup)
	}
	return &Fig13cResult{Rows: rows, Mean: stats.Mean(sp)}
}

// Fig13dRow is one batch size's validation-accuracy curve.
type Fig13dRow struct {
	Batch    int
	Accuracy []float64
	// Final is the mean accuracy over the last quarter of training;
	// Jitter is the standard deviation over the same window.
	Final, Jitter float64
}

// Fig13dConfig sizes the convergence study.
type Fig13dConfig struct {
	TrainSamples, ValSamples int
	Dim, Classes             int
	Epochs                   int
	Batches                  []int
	Seed                     uint64
}

// DefaultFig13dConfig keeps the study CPU-friendly while preserving the
// batch-size mechanism (see package nn).
func DefaultFig13dConfig() Fig13dConfig {
	return Fig13dConfig{
		TrainSamples: 4000,
		ValSamples:   1000,
		Dim:          32,
		Classes:      16,
		Epochs:       30,
		Batches:      []int{16, 32, 64, 128, 256},
		Seed:         7,
	}
}

// Fig13d trains the synthetic task at each mini-batch size and reports the
// validation-accuracy curves.
func Fig13d(cfg Fig13dConfig) []Fig13dRow {
	if cfg.TrainSamples == 0 {
		cfg = DefaultFig13dConfig()
	}
	train := nn.SyntheticTaskNoise(cfg.TrainSamples, cfg.Dim, cfg.Classes, cfg.Seed, cfg.Seed+1, 2.2)
	val := nn.SyntheticTaskNoise(cfg.ValSamples, cfg.Dim, cfg.Classes, cfg.Seed, cfg.Seed+2, 2.2)
	const repeats = 3 // average independent runs: SGD is noisy
	var rows []Fig13dRow
	for _, b := range cfg.Batches {
		var finals, jitters []float64
		var curve []float64
		for rep := 0; rep < repeats; rep++ {
			c := nn.ConvergenceCurve(train, val, b, cfg.Epochs, cfg.Seed+99+uint64(rep)*31)
			tail := c[len(c)*3/4:]
			finals = append(finals, stats.Mean(tail))
			jitters = append(jitters, stats.StdDev(tail))
			curve = c
		}
		rows = append(rows, Fig13dRow{
			Batch:    b,
			Accuracy: curve,
			Final:    stats.Mean(finals),
			Jitter:   stats.Mean(jitters),
		})
	}
	return rows
}
