package exp

import "testing"

// TestServeShardedThroughput pins the serving experiment's acceptance
// criterion: 8 concurrent clients on 4 shards achieve at least 2x the
// modeled aggregate throughput of the same clients on 1 shard at equal
// total device capacity. Smoke scale keeps the test in CI budget; the
// modeled metric is scale-free (per-entry traffic over per-entry service
// time), so the ratio holds at reference fidelity too.
func TestServeShardedThroughput(t *testing.T) {
	res, err := Serve(16384, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Points[0].Shards != 1 || res.Points[1].Shards != 4 {
		t.Fatalf("points = %+v, want 1-shard baseline then 4 shards", res.Points)
	}
	if res.Clients != ServeClients || res.PayloadBytes <= 0 {
		t.Fatalf("clients=%d payload=%d", res.Clients, res.PayloadBytes)
	}
	for _, p := range res.Points {
		if p.ServiceCycles <= 0 || p.ThroughputGBs <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
		if len(p.ShardServiceCycles) != p.Shards {
			t.Fatalf("shard cycles %d for width %d", len(p.ShardServiceCycles), p.Shards)
		}
	}
	if res.Speedup < 2 {
		t.Fatalf("4-shard aggregate throughput %.2fx the 1-shard baseline, want >= 2x",
			res.Speedup)
	}
	c := res.Chunked
	if c == nil {
		t.Fatal("no chunked-stream leg in the result")
	}
	if c.ChunkBytes != serveChunkBytes || c.Shards != 4 {
		t.Fatalf("chunked leg ran at %d B on %d shards, want %d B on 4", c.ChunkBytes, c.Shards, serveChunkBytes)
	}
	if c.WallGBs <= 0 || c.Submitted == 0 {
		t.Fatalf("degenerate chunked leg %+v", c)
	}
	if c.CoalescedFrac <= 0 {
		t.Fatalf("chunked leg coalesced %.0f%% of %d tasks; adjacent 4 KiB submits must coalesce",
			100*c.CoalescedFrac, c.Submitted)
	}
}

// TestServeWidthSelection covers the shards<=0 fallback the cmds rely on
// and the explicit width-1 baseline-only run.
func TestServeWidthSelection(t *testing.T) {
	res, err := Serve(16384, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Points[len(res.Points)-1].Shards; got != 4 {
		t.Fatalf("default width = %d, want 4", got)
	}
	one, err := Serve(16384, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Points) != 1 || one.Points[0].Shards != 1 || one.Speedup != 1 {
		t.Fatalf("explicit width 1: points=%+v speedup=%v, want the baseline alone",
			one.Points, one.Speedup)
	}
}
