package exp

import (
	"strings"
	"testing"

	"buddy/internal/gpusim"
	"buddy/internal/workloads"
)

// perfTestConfig keeps the Tab. 2 machine with shortened traces.
func perfTestConfig() gpusim.Config { return ScaledSimConfig(0.2) }

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full performance sweep")
	}
	skipFidelitySweepUnderRace(t)
	res := Fig11(16384, perfTestConfig(), nil)
	byName := map[string]Fig11Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
		t.Logf("%-14s bwonly=%.3f buddy@50=%.3f @150=%.3f share=%.3f",
			r.Name, r.BWOnly, r.Buddy[0], r.Buddy[2], r.BuddyAccessShare)
	}
	t.Logf("gmean bwonly=%.3f buddy=%v hpc150=%.3f dl150=%.3f",
		res.GMeanBWOnly, res.GMeanBuddy, res.GMeanHPC150, res.GMeanDL150)

	// Bandwidth-only compression: overall speedup around the paper's +5.5%.
	if res.GMeanBWOnly < 1.0 || res.GMeanBWOnly > 1.16 {
		t.Errorf("bw-only gmean %.3f outside band around paper's 1.055", res.GMeanBWOnly)
	}
	// Most of the bw-only speedup comes from DL (§4.2).
	var dlBW, hpcBW float64
	var nd, nh int
	for _, r := range res.Rows {
		if r.Suite == workloads.DL {
			dlBW += r.BWOnly
			nd++
		} else {
			hpcBW += r.BWOnly
			nh++
		}
	}
	if dlBW/float64(nd) <= hpcBW/float64(nh) {
		t.Errorf("DL should gain more from bw compression (DL %.3f vs HPC %.3f)",
			dlBW/float64(nd), hpcBW/float64(nh))
	}
	// 354.cg and 360.ilbdc slow down under bw-only compression (random
	// single-sector accesses over-fetch, §4.2); FF_Lulesh gains nothing
	// (decompression latency on its critical path).
	for _, name := range []string{"354.cg", "360.ilbdc"} {
		if bw := byName[name].BWOnly; bw >= 1.0 {
			t.Errorf("%s: bw-only should slow down, got %.3f", name, bw)
		}
	}
	if bw := byName["FF_Lulesh"].BWOnly; bw > 1.02 {
		t.Errorf("FF_Lulesh: bw-only should not speed up (latency-bound), got %.3f", bw)
	}

	// Buddy at the NVLink2 point: close to the ideal GPU (§4.2: HPC within
	// 1%, DL within 2.2%).
	if res.GMeanHPC150 < 0.94 || res.GMeanHPC150 > 1.06 {
		t.Errorf("buddy@150 HPC gmean %.3f outside band around paper's 0.99", res.GMeanHPC150)
	}
	if res.GMeanDL150 < 0.90 || res.GMeanDL150 > 1.08 {
		t.Errorf("buddy@150 DL gmean %.3f outside band around paper's 0.978", res.GMeanDL150)
	}
	// Link-bandwidth sensitivity: 50 GB/s clearly worse than 150/200
	// overall; FF_HPGMG (native host traffic) craters at 50 GB/s.
	if res.GMeanBuddy[0] >= res.GMeanBuddy[2]-0.01 {
		t.Errorf("50 GB/s (%.3f) should underperform 150 GB/s (%.3f)",
			res.GMeanBuddy[0], res.GMeanBuddy[2])
	}
	if res.GMeanBuddy[0] >= res.GMeanBuddy[3] {
		t.Errorf("50 GB/s (%.3f) should underperform 200 GB/s (%.3f)",
			res.GMeanBuddy[0], res.GMeanBuddy[3])
	}
	if hp := byName["FF_HPGMG"].Buddy[0]; hp > 0.85 {
		t.Errorf("FF_HPGMG at 50 GB/s should crater (native host copies), got %.3f", hp)
	}
	// 351.palm and 355.seismic: metadata-miss slowdowns under Buddy (§4.2).
	for _, name := range []string{"351.palm", "355.seismic"} {
		if b := byName[name].Buddy[2]; b >= 1.0 {
			t.Errorf("%s: buddy@150 should dip below ideal (metadata misses), got %.3f", name, b)
		}
	}
	// DL buddy-access shares track the Fig. 7 statistics (a few percent up
	// to ~15%), far above HPC's.
	for _, r := range res.Rows {
		if r.Suite == workloads.DL {
			if r.BuddyAccessShare < 0.02 || r.BuddyAccessShare > 0.25 {
				t.Errorf("%s: buddy access share %.3f outside DL band", r.Name, r.BuddyAccessShare)
			}
		} else if r.Name != "FF_HPGMG" && r.BuddyAccessShare > 0.02 {
			t.Errorf("%s: HPC buddy share should be rare, got %.3f", r.Name, r.BuddyAccessShare)
		}
	}
}

func TestFig10Validation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator validation sweep")
	}
	skipFidelitySweepUnderRace(t)
	cfg := ScaledSimConfig(0.2)
	res := Fig10(16384, cfg)
	t.Logf("correlation(log cycles)=%.3f  fast=%.4fs detailed=%.4fs speedup=%.0fx agreement=%.2f",
		res.CorrelationLog, res.FastWallSeconds, res.DetailedWallSeconds,
		res.SpeedupVsDetailed, res.DetailedAgreement)
	// Paper: r = 0.989 against silicon (our analytic stand-in).
	if res.CorrelationLog < 0.90 {
		t.Errorf("fast-vs-reference correlation %.3f, want >= 0.90", res.CorrelationLog)
	}
	// Paper: two orders of magnitude faster than GPGPU-Sim. Our detailed
	// stand-in models far less than GPGPU-Sim (see EXPERIMENTS.md), so the
	// measured gap is smaller; require a clear multiple on the short run.
	if res.SpeedupVsDetailed < 5 {
		t.Errorf("fast mode only %.1fx faster than detailed, want >= 5x", res.SpeedupVsDetailed)
	}
	// Both modes model the same machine: cycle counts must agree broadly.
	if res.DetailedAgreement < 0.4 || res.DetailedAgreement > 2.5 {
		t.Errorf("fast/detailed cycle agreement %.2f outside [0.4, 2.5]", res.DetailedAgreement)
	}
	if len(res.Points) != 48 {
		t.Errorf("want 16 benchmarks x 3 sizes = 48 points, got %d", len(res.Points))
	}
}

func TestTab2Rendering(t *testing.T) {
	out := Tab2(ScaledSimConfig(1))
	for _, want := range []string{"HBM2", "NVLink", "metadata cache", "L2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Tab. 2 output missing %q:\n%s", want, out)
		}
	}
}
