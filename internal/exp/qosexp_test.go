package exp

import "testing"

// TestQoSIsolationAndShares pins the qos experiment's acceptance
// criteria at smoke scale: under a saturating batch mix the
// latency-sensitive tenant's modeled p99 stays within the SLO bound, the
// heavy batch tenant receives at least 90% of its weighted share of
// batch served bytes (plain round-robin would give it 1/n and fail), and
// the over-quota probe is refused with the typed error.
func TestQoSIsolationAndShares(t *testing.T) {
	res, err := QoS(16384, 4, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 4 || res.BatchTenants != QoSBatchTenants {
		t.Fatalf("ran %d shards, %d batch tenants; want 4, %d", res.Shards, res.BatchTenants, QoSBatchTenants)
	}
	if res.SLOCycles != QoSDefaultSLOCycles {
		t.Fatalf("SLO = %.0f, want default %.0f", res.SLOCycles, float64(QoSDefaultSLOCycles))
	}
	if !res.QuotaRejected {
		t.Error("over-quota probe was not refused with ErrQuotaExceeded")
	}
	if res.Bursts == 0 {
		t.Fatal("latency tenant completed no bursts")
	}
	// The per-tenant telemetry must cover default + batch + latency.
	if want := 1 + res.BatchTenants + 1; len(res.Tenants) != want {
		t.Fatalf("%d tenant stats, want %d", len(res.Tenants), want)
	}
	var lat *struct{ p50, p99 float64 }
	for _, ts := range res.Tenants {
		if ts.Name == "latency" {
			lat = &struct{ p50, p99 float64 }{ts.Latency.P50, ts.Latency.P99}
			if ts.Latency.Count == 0 {
				t.Error("latency tenant has an empty distribution")
			}
			if ts.Rejected != 1 {
				t.Errorf("latency Rejected = %d, want 1 (the probe)", ts.Rejected)
			}
		}
	}
	if lat == nil {
		t.Fatal("no latency tenant in stats")
	}
	if !res.SLOMet {
		t.Errorf("latency p99 = %.0f modeled cycles, want <= %.0f (p50 %.0f)",
			lat.p99, res.SLOCycles, lat.p50)
	}
	if !res.ShareMet {
		t.Errorf("heavy batch share = %.3f, want >= 0.9 x entitled %.3f",
			res.HeavyShare, res.EntitledShare)
	}
	// The steady-window measurement converges, so over-service is as
	// diagnostic as starvation: a heavy share near 1.0 would mean the
	// light tenant's rings drained out of the window.
	if res.HeavyShare > 1.1*res.EntitledShare {
		t.Errorf("heavy batch share = %.3f, want <= 1.1 x entitled %.3f",
			res.HeavyShare, res.EntitledShare)
	}
	if res.EntitledShare != 0.75 {
		t.Errorf("entitled share = %.3f, want 0.75 for weights 3:1", res.EntitledShare)
	}
}
