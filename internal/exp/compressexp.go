// Package exp computes every table and figure of the paper's evaluation as
// structured results. It is the single source of truth shared by the unit
// tests (which assert shape-level agreement with the paper), the top-level
// benchmarks (one per table/figure), and the buddysim CLI (which prints the
// same rows/series the paper reports).
package exp

import (
	"fmt"
	"strings"

	"buddy/internal/analysis"
	"buddy/internal/compress"
	"buddy/internal/core"
	"buddy/internal/gen"
	"buddy/internal/heatmap"
	"buddy/internal/memory"
	"buddy/internal/stats"
	"buddy/internal/trace"
	"buddy/internal/workloads"
)

// DefaultScale is the footprint divisor used by the figure computations;
// per-entry statistics are scale-free (see workloads.DefaultScale).
const DefaultScale = workloads.DefaultScale

// ---------------------------------------------------------------------------
// Tab. 1
// ---------------------------------------------------------------------------

// Table1Row is one row of Tab. 1.
type Table1Row struct {
	Name      string
	Suite     workloads.Suite
	Footprint int64
	Regions   int
}

// Table1 reproduces Tab. 1: the benchmark inventory with footprints.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, b := range workloads.Table1() {
		rows = append(rows, Table1Row{b.Name, b.Suite, b.Footprint, len(b.Regions)})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Fig. 3: optimistic compression ratio over ten snapshots
// ---------------------------------------------------------------------------

// Fig3Row holds one benchmark's series.
type Fig3Row struct {
	Name   string
	Suite  workloads.Suite
	Ratios []float64 // one per snapshot
	Mean   float64
}

// Fig3Result aggregates the figure.
type Fig3Result struct {
	Rows     []Fig3Row
	GMeanHPC float64
	GMeanDL  float64
}

// Fig3 computes the paper's Fig. 3: per-benchmark BPC compression ratio
// under the optimistic eight-size study, for each of the ten snapshots.
// Ratios are read from the shared per-snapshot index (one encode pass per
// snapshot x codec across all figures).
func Fig3(scale int) *Fig3Result {
	bpc := compress.NewBPC()
	res := &Fig3Result{}
	var hpc, dl []float64
	for _, b := range workloads.Table1() {
		row := Fig3Row{Name: b.Name, Suite: b.Suite}
		for t := 0; t < workloads.Snapshots; t++ {
			x := snapshotIndex(b, t, scale, bpc)
			row.Ratios = append(row.Ratios, x.CompressionRatio(compress.OptimisticSizes))
		}
		row.Mean = stats.Mean(row.Ratios)
		res.Rows = append(res.Rows, row)
		if b.Suite == workloads.HPC {
			hpc = append(hpc, row.Mean)
		} else {
			dl = append(dl, row.Mean)
		}
	}
	res.GMeanHPC = stats.GMean(hpc)
	res.GMeanDL = stats.GMean(dl)
	return res
}

// ---------------------------------------------------------------------------
// Sparse-activation sweep: per-codec ratio on cDMA-style activation data
// ---------------------------------------------------------------------------

// SparseZeroFracs are the default activation zero fractions, the 50-90%
// range cDMA (Rhu et al.) reports for post-ReLU DL activation traffic.
var SparseZeroFracs = []float64{0.5, 0.7, 0.9}

// SparseRow holds one codec's compression-ratio series over the sweep's
// zero fractions.
type SparseRow struct {
	Codec  string
	Ratios []float64 // one per zero fraction
}

// SparseResult aggregates the sparse-activation companion study to Fig. 3.
type SparseResult struct {
	ZeroFracs []float64
	Rows      []SparseRow // one per registered codec
}

// SparseSweep measures every registered codec on synthetic fp16 activation
// pools (gen.SparseFP16) at each zero fraction — the Fig. 3-style view of
// the data class the codecs' zero-run fast paths target. One pool is
// synthesized per zero fraction and shared across codecs, so the rows are
// directly comparable; ratios use the same optimistic eight-size rounding
// as Fig. 3.
func SparseSweep(scale int, zeroFracs []float64) *SparseResult {
	if scale <= 0 {
		scale = DefaultScale
	}
	if len(zeroFracs) == 0 {
		zeroFracs = SparseZeroFracs
	}
	res := &SparseResult{ZeroFracs: zeroFracs}
	snaps := make([]*memory.Snapshot, len(zeroFracs))
	for i, zf := range zeroFracs {
		// A 1 GB activation pool before scaling: comparable sample counts
		// to a mid-size Tab. 1 benchmark region.
		size := int(int64(1<<30) / int64(scale))
		if size < 64*memory.PageBytes {
			size = 64 * memory.PageBytes
		}
		a := memory.NewAllocation(fmt.Sprintf("activations_z%d", int(zf*100)), size)
		gen.SparseFP16{ZeroFrac: zf}.Fill(a.Data, gen.NewRNG(0xC0DA+uint64(i), 7))
		snaps[i] = &memory.Snapshot{Allocations: []*memory.Allocation{a}}
	}
	for _, c := range compress.Registry() {
		row := SparseRow{Codec: c.Name()}
		for _, s := range snaps {
			row.Ratios = append(row.Ratios, analysis.CompressionRatio(s, c, compress.OptimisticSizes))
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// ---------------------------------------------------------------------------
// Fig. 5b: metadata cache hit rate vs. cache size
// ---------------------------------------------------------------------------

// Fig5bRow holds one benchmark's hit-rate curve.
type Fig5bRow struct {
	Name     string
	Suite    workloads.Suite
	SizesKB  []int
	HitRates []float64
}

// Fig5bAccesses is the number of simulated memory accesses per point.
const Fig5bAccesses = 400000

// fig5bAddressScale shrinks footprints for the address-stream study. It is
// smaller than the data-synthesis scale because no bytes are generated —
// only addresses — and hit rates depend on the footprint:cache ratio.
const fig5bAddressScale = 16

// Fig5b sweeps the total metadata cache size and measures hit rates using
// each benchmark's synthetic address stream. One 32 B metadata line covers
// 64 entries (8 KB of data), so streaming workloads hit ~63/64 regardless of
// size while scattered ones (351.palm, 355.seismic) need capacity.
func Fig5b(sizesKB []int) []Fig5bRow {
	if len(sizesKB) == 0 {
		sizesKB = []int{8, 16, 32, 64, 128, 256}
	}
	var rows []Fig5bRow
	for _, b := range workloads.Table1() {
		row := Fig5bRow{Name: b.Name, Suite: b.Suite, SizesKB: sizesKB}
		footprint := uint64(b.Footprint / fig5bAddressScale)
		for _, kb := range sizesKB {
			mc := core.NewMetadataCache(kb<<10, 8, 4)
			const warps = 64
			streams := make([]*trace.Stream, warps)
			for w := range streams {
				streams[w] = trace.NewStream(b.Trace, footprint, 42, w)
			}
			for i := 0; i < Fig5bAccesses; i++ {
				a := streams[i%warps].Next()
				mc.Access(int(a.Addr / 128))
			}
			row.HitRates = append(row.HitRates, mc.HitRate())
		}
		rows = append(rows, row)
	}
	return rows
}

// ---------------------------------------------------------------------------
// Fig. 6: spatial compressibility heat-maps
// ---------------------------------------------------------------------------

// Fig6 builds the Fig. 6 heat-map for every benchmark at mid-run
// (snapshot 5), rendered straight from the shared per-snapshot index.
func Fig6(scale int) []*heatmap.Map {
	bpc := compress.NewBPC()
	var maps []*heatmap.Map
	for _, b := range workloads.Table1() {
		maps = append(maps, heatmap.FromIndex(b.Name, snapshotIndex(b, 5, scale, bpc)))
	}
	return maps
}

// ---------------------------------------------------------------------------
// Fig. 7 / Fig. 9: design-option and Buddy-Threshold sensitivity
// ---------------------------------------------------------------------------

// Mode is one (compression ratio, buddy-access fraction) operating point.
type Mode struct {
	Ratio     float64
	BuddyFrac float64
}

// Fig7Row compares the three design points for one benchmark.
type Fig7Row struct {
	Name     string
	Suite    workloads.Suite
	Naive    Mode
	PerAlloc Mode
	Final    Mode
}

// Fig7Result aggregates Fig. 7 with per-suite gmeans/means, matching the
// paper's summary numbers (naive 1.57x/8% HPC and 1.18x/32% DL; final
// 1.9x/0.08% HPC and 1.5x/4% DL).
type Fig7Result struct {
	Rows []Fig7Row
	// GMean ratios per suite and design point.
	NaiveHPC, NaiveDL       Mode
	PerAllocHPC, PerAllocDL Mode
	FinalHPC, FinalDL       Mode
}

func runProfile(b workloads.Benchmark, scale int, opt core.ProfileOptions) Mode {
	res := core.ProfileIndexes(runIndexes(b, scale, compress.NewBPC()), opt)
	return Mode{Ratio: res.CompressionRatio, BuddyFrac: res.BuddyAccessFraction}
}

// Fig7 computes the design-optimization sensitivity study.
func Fig7(scale int) *Fig7Result {
	res := &Fig7Result{}
	type agg struct{ ratios, fracs []float64 }
	sums := map[string]*agg{}
	for _, k := range []string{"nh", "nd", "ph", "pd", "fh", "fd"} {
		sums[k] = &agg{}
	}
	for _, b := range workloads.Table1() {
		row := Fig7Row{Name: b.Name, Suite: b.Suite}
		row.Naive = runProfile(b, scale, core.Naive())
		row.PerAlloc = runProfile(b, scale, core.PerAllocationOnly())
		row.Final = runProfile(b, scale, core.FinalDesign())
		res.Rows = append(res.Rows, row)
		suffix := "h"
		if b.Suite == workloads.DL {
			suffix = "d"
		}
		for prefix, m := range map[string]Mode{"n": row.Naive, "p": row.PerAlloc, "f": row.Final} {
			s := sums[prefix+suffix]
			s.ratios = append(s.ratios, m.Ratio)
			s.fracs = append(s.fracs, m.BuddyFrac)
		}
	}
	mk := func(k string) Mode {
		return Mode{Ratio: stats.GMean(sums[k].ratios), BuddyFrac: stats.Mean(sums[k].fracs)}
	}
	res.NaiveHPC, res.NaiveDL = mk("nh"), mk("nd")
	res.PerAllocHPC, res.PerAllocDL = mk("ph"), mk("pd")
	res.FinalHPC, res.FinalDL = mk("fh"), mk("fd")
	return res
}

// Fig9Row holds one benchmark's Buddy-Threshold sweep plus the
// best-achievable marker.
type Fig9Row struct {
	Name       string
	Suite      workloads.Suite
	Thresholds []float64
	Points     []Mode
	Best       float64
}

// Fig9 sweeps the Buddy Threshold (paper: 10% to 40%) under the final
// design and reports the unconstrained best-achievable ratio.
func Fig9(scale int, thresholds []float64) []Fig9Row {
	if len(thresholds) == 0 {
		thresholds = []float64{0.10, 0.20, 0.30, 0.40}
	}
	var rows []Fig9Row
	for _, b := range workloads.Table1() {
		idx := runIndexes(b, scale, compress.NewBPC())
		row := Fig9Row{Name: b.Name, Suite: b.Suite, Thresholds: thresholds}
		for _, th := range thresholds {
			opt := core.FinalDesign()
			opt.Threshold = th
			r := core.ProfileIndexes(idx, opt)
			row.Points = append(row.Points, Mode{Ratio: r.CompressionRatio, BuddyFrac: r.BuddyAccessFraction})
			row.Best = r.BestAchievable
		}
		rows = append(rows, row)
	}
	return rows
}

// ---------------------------------------------------------------------------
// Fig. 8: buddy accesses over a DL training iteration
// ---------------------------------------------------------------------------

// Fig8Point is one snapshot's measurement under fixed targets.
type Fig8Point struct {
	Snapshot  int
	Ratio     float64
	BuddyFrac float64
}

// Fig8Row is one benchmark's series.
type Fig8Row struct {
	Name   string
	Points []Fig8Point
}

// Fig8 reproduces the over-time study: targets are fixed from the profiling
// pass, then each snapshot of one training iteration is measured. The paper
// observes constant ratios (1.49x SqueezeNet, 1.64x ResNet50) and stable
// buddy-access fractions despite per-entry churn.
func Fig8(scale int) []Fig8Row {
	var rows []Fig8Row
	for _, name := range []string{"SqueezeNet", "ResNet50"} {
		b, err := workloads.ByName(name)
		if err != nil {
			panic(err) // static benchmark list; unreachable
		}
		idx := runIndexes(b, scale, compress.NewBPC())
		prof := core.ProfileIndexes(idx, core.FinalDesign())
		targets := prof.Targets()
		row := Fig8Row{Name: name}
		for t, x := range idx {
			ratio, frac := core.MeasureIndex(x, targets)
			row.Points = append(row.Points, Fig8Point{Snapshot: t, Ratio: ratio, BuddyFrac: frac})
		}
		rows = append(rows, row)
	}
	return rows
}

// ---------------------------------------------------------------------------
// Rendering helpers shared by buddysim
// ---------------------------------------------------------------------------

// FormatTable renders rows of columns with a header, aligned.
func FormatTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
