package exp

import (
	"fmt"
	"math"

	"buddy/internal/compress"
	"buddy/internal/core"
	"buddy/internal/gpusim"
	"buddy/internal/stats"
	"buddy/internal/workloads"
)

// fig11AddressScale shrinks footprints for simulated addressing, like the
// Fig. 5b study; cache-to-footprint ratios stay far beyond L2 capacity.
const fig11AddressScale = 16

// ScaledSimConfig returns Tab. 2's configuration with the simulated trace
// length scaled to frac of the default. The machine geometry, bandwidths
// and cache sizes stay at their Tab. 2 values: trace length is the only
// knob that shortens simulation without disturbing the compute, bandwidth
// and latency-hiding balance (all three floors scale linearly with it).
func ScaledSimConfig(frac float64) gpusim.Config {
	cfg := gpusim.DefaultConfig()
	if frac >= 1 {
		return cfg
	}
	ops := int(float64(cfg.OpsPerWarp) * frac)
	if ops < 24 {
		ops = 24
	}
	cfg.OpsPerWarp = ops
	return cfg
}

// Tab2 renders the simulation parameters (the paper's Tab. 2).
func Tab2(cfg gpusim.Config) string {
	rows := [][]string{
		{"Core", fmt.Sprintf("%.1f GHz; greedy-then-oldest scheduling; %d SMs; %d warps/SM",
			cfg.DRAM.CoreClockGHz, cfg.SMs, cfg.WarpsPerSM)},
		{"L1", fmt.Sprintf("%d KB private per SM, 128 B lines, %d-way", cfg.L1Bytes>>10, cfg.L1Ways)},
		{"L2", fmt.Sprintf("%d MB shared, %d slices, 128 B lines, %d ways, sectored",
			cfg.L2Bytes>>20, cfg.L2Slices, cfg.L2Ways)},
		{"Off-chip", fmt.Sprintf("%d HBM2 channels (%.0f GB/s); NVLink %.0f GB/s full-duplex",
			cfg.DRAM.Channels, cfg.DRAM.BandwidthGBs, cfg.Link.BandwidthGBs)},
		{"Buddy", fmt.Sprintf("%d KB metadata cache per L2 slice, %d-way; +%.0f cycles (de)compression",
			cfg.MetaCacheBytesPerSlice>>10, cfg.MetaCacheWays, cfg.DecompressLatencyCycles)},
	}
	return FormatTable([]string{"Component", "Configuration"}, rows)
}

// ---------------------------------------------------------------------------
// Fig. 11: performance relative to an ideal large-memory GPU
// ---------------------------------------------------------------------------

// Fig11Row is one benchmark's relative-performance results (1.0 = ideal
// large-memory GPU with a 150 GB/s link).
type Fig11Row struct {
	Name   string
	Suite  workloads.Suite
	BWOnly float64
	// Buddy[i] is relative performance with link bandwidth Links[i].
	Buddy []float64
	// BuddyAccessShare is the fraction of memory accesses that touched
	// buddy memory at the NVLink2 point (cross-check against Fig. 7).
	BuddyAccessShare float64
}

// Fig11Result aggregates the sweep.
type Fig11Result struct {
	Links []float64
	Rows  []Fig11Row
	// Geometric means over all benchmarks, as the paper summarizes.
	GMeanBWOnly float64
	GMeanBuddy  []float64
	GMeanHPC150 float64
	GMeanDL150  float64
	idx150      int
}

// Fig11 runs the performance study: bandwidth-only compression and Buddy
// Compression across link bandwidths, each normalized to the uncompressed
// ideal GPU at 150 GB/s.
func Fig11(scale int, cfg gpusim.Config, links []float64) *Fig11Result {
	if len(links) == 0 {
		links = []float64{50, 100, 150, 200}
	}
	res := &Fig11Result{Links: links, idx150: -1}
	for i, l := range links {
		if l == 150 {
			res.idx150 = i
		}
	}
	nominal := gpusim.DefaultConfig().Link.BandwidthGBs // 150
	var allBW []float64
	allBuddy := make([][]float64, len(links))
	var hpc150, dl150 []float64

	for _, b := range workloads.Table1() {
		footprint := uint64(b.Footprint / fig11AddressScale)
		// Profile from the shared snapshot indexes (one encode pass per
		// snapshot x codec across all figures) instead of re-encoding.
		prof := core.ProfileIndexes(runIndexes(b, scale, compress.NewBPC()), core.FinalDesign())
		dm := gpusim.DataModelFromProfile(b, footprint, prof)
		ideal := gpusim.UncompressedModel(footprint)

		base := gpusim.Run(b.Trace, ideal, gpusim.ModeIdeal, cfg)
		bw := gpusim.Run(b.Trace, dm, gpusim.ModeBWOnly, cfg)
		row := Fig11Row{Name: b.Name, Suite: b.Suite, BWOnly: base.Cycles / bw.Cycles}
		for i, link := range links {
			// The config's link bandwidth is pre-scaled for shrunk
			// machines; sweep proportionally to the nominal point.
			c := cfg.WithLinkBandwidth(cfg.Link.BandwidthGBs * link / nominal)
			r := gpusim.Run(b.Trace, dm, gpusim.ModeBuddy, c)
			rel := base.Cycles / r.Cycles
			row.Buddy = append(row.Buddy, rel)
			allBuddy[i] = append(allBuddy[i], rel)
			if link == 150 {
				row.BuddyAccessShare = float64(r.BuddyAccesses) / float64(r.MemAccesses)
				if b.Suite == workloads.HPC {
					hpc150 = append(hpc150, rel)
				} else {
					dl150 = append(dl150, rel)
				}
			}
		}
		allBW = append(allBW, row.BWOnly)
		res.Rows = append(res.Rows, row)
	}
	res.GMeanBWOnly = stats.GMean(allBW)
	for _, v := range allBuddy {
		res.GMeanBuddy = append(res.GMeanBuddy, stats.GMean(v))
	}
	res.GMeanHPC150 = stats.GMean(hpc150)
	res.GMeanDL150 = stats.GMean(dl150)
	return res
}

// ---------------------------------------------------------------------------
// Fig. 10: simulator validation (correlation + speed)
// ---------------------------------------------------------------------------

// Fig10Point pairs the fast simulator's cycles with the silicon stand-in
// (analytical reference) for one benchmark/size combination.
type Fig10Point struct {
	Name       string
	OpsPerWarp int
	SimCycles  float64
	RefCycles  float64
}

// Fig10Result summarizes the validation study.
type Fig10Result struct {
	Points []Fig10Point
	// CorrelationLog is the Pearson correlation of log10(cycles) between
	// the fast simulator and the reference (paper: 0.989 vs silicon).
	CorrelationLog float64
	// FastWallSeconds and DetailedWallSeconds compare simulation speed on
	// an identical workload; SpeedupVsDetailed is their ratio (paper: two
	// orders of magnitude vs GPGPU-Sim).
	FastWallSeconds     float64
	DetailedWallSeconds float64
	SpeedupVsDetailed   float64
	// DetailedAgreement is fast/detailed cycle ratio on that workload
	// (should be near 1: both model the same machine).
	DetailedAgreement float64
}

// Fig10 runs the validation study on the given machine configuration.
func Fig10(scale int, cfg gpusim.Config) *Fig10Result {
	res := &Fig10Result{}
	var logSim, logRef []float64
	for _, b := range workloads.Table1() {
		footprint := uint64(b.Footprint / fig11AddressScale)
		dm := gpusim.UncompressedModel(footprint)
		for _, ops := range []int{cfg.OpsPerWarp / 4, cfg.OpsPerWarp, cfg.OpsPerWarp * 4} {
			c := cfg
			c.OpsPerWarp = ops
			r := gpusim.Run(b.Trace, dm, gpusim.ModeIdeal, c)
			ref := gpusim.Analytic(b.Trace, dm, c)
			res.Points = append(res.Points, Fig10Point{b.Name, ops, r.Cycles, ref})
			logSim = append(logSim, math.Log10(r.Cycles))
			logRef = append(logRef, math.Log10(ref))
		}
	}
	if corr, err := stats.Pearson(logSim, logRef); err == nil {
		res.CorrelationLog = corr
	}

	// Speed comparison on one representative benchmark with a small run.
	b, err := workloads.ByName("356.sp")
	if err != nil {
		panic(err) // static list
	}
	small := cfg
	small.OpsPerWarp = cfg.OpsPerWarp / 4
	dm := gpusim.UncompressedModel(uint64(b.Footprint / fig11AddressScale))
	fast := gpusim.Run(b.Trace, dm, gpusim.ModeIdeal, small)
	det := gpusim.RunDetailed(b.Trace, dm, gpusim.ModeIdeal, small)
	res.FastWallSeconds = fast.WallClockSeconds
	res.DetailedWallSeconds = det.WallClockSeconds
	if fast.WallClockSeconds > 0 {
		res.SpeedupVsDetailed = det.WallClockSeconds / fast.WallClockSeconds
	}
	if det.Cycles > 0 {
		res.DetailedAgreement = fast.Cycles / det.Cycles
	}
	return res
}
