package exp

import (
	"fmt"
	"sync"
	"time"

	"buddy/internal/analysis"
	"buddy/internal/compress"
	"buddy/internal/core"
	"buddy/internal/dram"
	"buddy/internal/pool"
	"buddy/internal/workloads"
)

// ---------------------------------------------------------------------------
// Serve: sharded multi-device serving under concurrent client traffic
// ---------------------------------------------------------------------------
//
// The paper evaluates one GPU with one buddy-memory link; the serving
// experiment asks what a fleet front door buys. A mixed DL+HPC client
// population streams profiled snapshots through a pool — every client
// writes its working set and then reads it back through the asynchronous
// submission queues — once against a single shard holding the whole fleet
// capacity and once against N shards splitting the same capacity. The
// figure of merit is modeled aggregate serving throughput: total payload
// bytes over the fleet's modeled service time. Per shard, service time is
// the device-memory transfer time (Tab. 2 HBM2 aggregate bandwidth)
// plus the overflow link's accumulated busy cycles (full duplex, so the
// busier direction bounds it); shards serve in parallel, so the pool's
// time is the slowest shard's. The link term uses the carve-out's
// accumulated busy-cycle telemetry — idle gaps excluded — which is what
// the interconnect-accounting fix makes trustworthy.

// ServeClients is the concurrent client population of the experiment.
const ServeClients = 8

// serveBenchmarks is the mixed DL+HPC population the clients cycle
// through: four DL and four HPC working sets of distinct compressibility.
var serveBenchmarks = []string{
	"VGG16", "351.palm", "ResNet50", "360.ilbdc",
	"BigLSTM", "355.seismic", "Inception_V2", "352.ep",
}

// ServePoint is one pool configuration's measurement.
type ServePoint struct {
	// Shards is the pool width; total device capacity is the same at
	// every width (per-shard capacity divides by Shards).
	Shards int
	// ServiceCycles is the modeled fleet service time in core cycles: the
	// maximum over shards of device-transfer plus link-busy cycles.
	ServiceCycles float64
	// ThroughputGBs is PayloadBytes over ServiceCycles at the Tab. 2 core
	// clock — the modeled aggregate serving throughput.
	ThroughputGBs float64
	// WallSeconds is the host-side wall time of the run (informational:
	// it measures this machine's codec throughput, not the modeled GPUs).
	WallSeconds float64
	// MetadataHitRate is the access-weighted fleet metadata-cache hit
	// rate.
	MetadataHitRate float64
	// ShardServiceCycles holds each shard's individual service time.
	ShardServiceCycles []float64
}

// ServeChunked is the chunked-stream client shape's measurement: the same
// client population streaming ChunkBytes-sized pieces through the
// submission queues open-loop instead of one whole-region submit per
// allocation. Many small adjacent in-flight tasks is the shape the shard
// workers' run coalescing exists for, so this leg reports the host-side
// wall throughput of the async path itself alongside how much of the
// submitted traffic actually executed inside coalesced spans.
type ServeChunked struct {
	// ChunkBytes is the fixed submit granularity.
	ChunkBytes int
	// Shards is the pool width the chunked leg ran against.
	Shards int
	// WallSeconds and WallGBs are the host-side wall time and payload rate
	// (this machine's codec throughput through the async path, not the
	// modeled GPUs).
	WallSeconds float64
	WallGBs     float64
	// Submitted counts tasks accepted onto the submission queues;
	// CoalescedFrac is the fraction that executed inside a coalesced run.
	Submitted     uint64
	CoalescedFrac float64
}

// ServeResult is the serve experiment's outcome.
type ServeResult struct {
	// Clients and Benchmarks describe the client population.
	Clients    int
	Benchmarks []string
	// PayloadBytes is the total bytes each configuration served (writes
	// plus read-backs, identical across configurations).
	PayloadBytes int64
	// Points holds the single-shard baseline first, then the sharded
	// configuration(s).
	Points []ServePoint
	// Speedup is the last point's modeled throughput over the first's —
	// the aggregate gain of sharding at equal total capacity.
	Speedup float64
	// Chunked is the chunked-stream leg, run at the widest configuration.
	Chunked *ServeChunked
}

// serveClient is one client's working set: its profiled allocations and
// the data to stream through them.
type serveClient struct {
	names   []string
	data    [][]byte
	targets map[string]core.TargetRatio
}

// buildServeClients synthesizes and profiles each client's snapshot once;
// the same working sets drive every pool configuration.
func buildServeClients(clients, scale int, codec compress.Codec) ([]serveClient, int64, error) {
	out := make([]serveClient, clients)
	var raw int64
	for c := 0; c < clients; c++ {
		b, err := workloads.ByName(serveBenchmarks[c%len(serveBenchmarks)])
		if err != nil {
			return nil, 0, err
		}
		snap := workloads.GenerateSnapshot(b, 0, scale)
		prof := core.ProfileIndexes([]*analysis.Index{snapshotIndex(b, 0, scale, codec)}, core.FinalDesign())
		targets := prof.Targets()
		cl := serveClient{targets: make(map[string]core.TargetRatio)}
		for _, ma := range snap.Allocations {
			name := fmt.Sprintf("c%d/%s", c, ma.Name)
			cl.names = append(cl.names, name)
			cl.data = append(cl.data, ma.Data)
			t, ok := targets[ma.Name]
			if !ok {
				t = core.Target1x
			}
			cl.targets[name] = t
			raw += int64(len(ma.Data))
		}
		out[c] = cl
	}
	return out, raw, nil
}

// servePool runs the full client population against one pool: each client
// concurrently allocates its regions, streams every region in through the
// async submission queues, then reads the whole working set back. It
// returns the payload bytes moved.
func servePool(p *pool.Pool, clients []serveClient) (int64, error) {
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstE  error
		payload int64
	)
	fail := func(err error) {
		mu.Lock()
		if firstE == nil {
			firstE = err
		}
		mu.Unlock()
	}
	for c := range clients {
		wg.Add(1)
		go func(cl *serveClient) {
			defer wg.Done()
			handles := make([]*pool.Handle, len(cl.names))
			var futs []*pool.Future
			for i, name := range cl.names {
				h, err := p.Malloc(name, int64(len(cl.data[i])), cl.targets[name])
				if err != nil {
					fail(err)
					return
				}
				handles[i] = h
				futs = append(futs, p.SubmitWrite(h, cl.data[i], 0))
			}
			var moved int64
			for i, f := range futs {
				n, err := f.Wait()
				if err != nil {
					fail(fmt.Errorf("write %s: %w", cl.names[i], err))
					return
				}
				moved += int64(n)
			}
			// Read the working set back through the queues.
			futs = futs[:0]
			bufs := make([][]byte, len(handles))
			for i, h := range handles {
				bufs[i] = make([]byte, h.Size())
				futs = append(futs, p.SubmitRead(h, bufs[i], 0))
			}
			for i, f := range futs {
				n, err := f.Wait()
				if err != nil {
					fail(fmt.Errorf("read %s: %w", cl.names[i], err))
					return
				}
				moved += int64(n)
			}
			mu.Lock()
			payload += moved
			mu.Unlock()
		}(&clients[c])
	}
	wg.Wait()
	return payload, firstE
}

// serveChunkBytes is the chunked leg's submit granularity: 4 KiB, 32
// entries — small enough that coalescing matters, large enough that the
// queues stay saturated.
const serveChunkBytes = 4096

// serveChunkedPool streams the client population through one pool in
// serveChunkBytes pieces: every client submits all of a region's chunk
// writes open-loop before waiting, then does the same for the read-back, so
// the shard queues always hold runs of adjacent tasks for the workers to
// coalesce. Returns the payload bytes moved.
func serveChunkedPool(p *pool.Pool, clients []serveClient) (int64, error) {
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstE  error
		payload int64
	)
	fail := func(err error) {
		mu.Lock()
		if firstE == nil {
			firstE = err
		}
		mu.Unlock()
	}
	for c := range clients {
		wg.Add(1)
		go func(cl *serveClient) {
			defer wg.Done()
			var moved int64
			var futs []*pool.Future
			stream := func(h *pool.Handle, buf []byte, read bool) {
				for off := 0; off < len(buf); off += serveChunkBytes {
					end := min(off+serveChunkBytes, len(buf))
					if read {
						futs = append(futs, p.SubmitRead(h, buf[off:end], int64(off)))
					} else {
						futs = append(futs, p.SubmitWrite(h, buf[off:end], int64(off)))
					}
				}
			}
			drain := func(what string) bool {
				for _, f := range futs {
					n, err := f.Wait()
					if err != nil {
						fail(fmt.Errorf("chunked %s: %w", what, err))
						return false
					}
					moved += int64(n)
				}
				futs = futs[:0]
				return true
			}
			handles := make([]*pool.Handle, len(cl.names))
			for i, name := range cl.names {
				h, err := p.Malloc(name, int64(len(cl.data[i])), cl.targets[name])
				if err != nil {
					fail(err)
					return
				}
				handles[i] = h
				stream(h, cl.data[i], false)
			}
			if !drain("write") {
				return
			}
			for i, h := range handles {
				stream(h, make([]byte, h.Size()), true)
				if !drain("read " + cl.names[i]) {
					return
				}
			}
			mu.Lock()
			payload += moved
			mu.Unlock()
		}(&clients[c])
	}
	wg.Wait()
	return payload, firstE
}

// serviceCycles models one shard's serving time from its telemetry:
// device-memory bytes at the Tab. 2 aggregate HBM2 bandwidth plus the
// overflow link's busier direction (full duplex). Link busy cycles come
// from the accumulated-occupancy counters, so idle gaps between requests
// do not inflate the estimate.
func serviceCycles(s pool.ShardStats) float64 {
	hbm := dram.DefaultConfig()
	devBytesPerCycle := hbm.BandwidthGBs / hbm.CoreClockGHz
	dev := float64(s.Traffic.DeviceReadBytes+s.Traffic.DeviceWriteBytes) / devBytesPerCycle
	link := max(s.LinkReadBusyCycles, s.LinkWriteBusyCycles)
	return dev + link
}

// Serve runs the sharded-serving experiment: ServeClients concurrent
// clients streaming mixed DL+HPC working sets, once against 1 shard and
// once against shards shards, at equal total device capacity. shards <= 0
// selects the default 4; an explicit 1 runs the baseline alone.
func Serve(scale, shards int) (*ServeResult, error) {
	if shards <= 0 {
		shards = 4
	}
	codec := compress.NewBPC()
	clients, raw, err := buildServeClients(ServeClients, scale, codec)
	if err != nil {
		return nil, err
	}
	// Equal total capacity at every width. 2x the raw footprint leaves
	// headroom for placement imbalance across shards; what matters for
	// the comparison is that both configurations hold the same fleet.
	totalDevice := 2 * raw

	res := &ServeResult{
		Clients:    ServeClients,
		Benchmarks: serveBenchmarks,
	}
	widths := []int{1, shards}
	if shards == 1 {
		widths = widths[:1]
	}
	for _, width := range widths {
		devices := make([]*core.Device, width)
		for i := range devices {
			devices[i] = core.NewDevice(core.Config{
				Codec:       codec,
				DeviceBytes: totalDevice / int64(width),
			})
		}
		p, err := pool.New(devices, pool.Config{})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		payload, err := servePool(p, clients)
		wall := time.Since(start)
		if cerr := p.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, fmt.Errorf("exp: serve %d shards: %w", width, err)
		}
		st := p.Stats()
		pt := ServePoint{
			Shards:          width,
			WallSeconds:     wall.Seconds(),
			MetadataHitRate: st.MetadataCacheHitRate,
		}
		for _, s := range st.Shards {
			c := serviceCycles(s)
			pt.ShardServiceCycles = append(pt.ShardServiceCycles, c)
			if c > pt.ServiceCycles {
				pt.ServiceCycles = c
			}
		}
		clockHz := dram.DefaultConfig().CoreClockGHz * 1e9
		if pt.ServiceCycles > 0 {
			pt.ThroughputGBs = float64(payload) / (pt.ServiceCycles / clockHz) / 1e9
		}
		res.PayloadBytes = payload
		res.Points = append(res.Points, pt)
	}
	if first := res.Points[0].ThroughputGBs; first > 0 {
		res.Speedup = res.Points[len(res.Points)-1].ThroughputGBs / first
	}

	// The chunked-stream leg: same fleet capacity at the widest
	// configuration, but the clients submit in 4 KiB pieces. This is the
	// client shape the workers' run coalescing serves; the telemetry reports
	// how much of the submitted traffic it captured.
	width := widths[len(widths)-1]
	devices := make([]*core.Device, width)
	for i := range devices {
		devices[i] = core.NewDevice(core.Config{
			Codec:       codec,
			DeviceBytes: totalDevice / int64(width),
		})
	}
	p, err := pool.New(devices, pool.Config{})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	payload, err := serveChunkedPool(p, clients)
	wall := time.Since(start)
	st := p.Stats()
	if cerr := p.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, fmt.Errorf("exp: serve chunked: %w", err)
	}
	res.Chunked = &ServeChunked{
		ChunkBytes:    serveChunkBytes,
		Shards:        width,
		WallSeconds:   wall.Seconds(),
		WallGBs:       float64(payload) / wall.Seconds() / 1e9,
		Submitted:     st.Async.Submitted,
		CoalescedFrac: st.Async.CoalescedFrac(),
	}
	return res, nil
}
