package exp

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"buddy/internal/compress"
	"buddy/internal/core"
	"buddy/internal/dram"
	"buddy/internal/pool"
)

// ---------------------------------------------------------------------------
// Heal: shard failure and recovery under live serving traffic
// ---------------------------------------------------------------------------
//
// The self-healing experiment asks what a shard failure costs a serving
// fleet and how completely it comes back. The serve experiment's client
// population keeps a resident working set on a pool of shards and streams
// write/read-back rounds through the asynchronous submission queues. Round
// A measures baseline modeled throughput. In round B a failure injector
// kills one shard's device tier mid-round; clients retry operations that
// fail with the device-failed error while the pool's supervisor rebuilds
// the shard from its buddy carve-out (the carve-out behaves as a
// write-through mirror, so no acknowledged byte is lost). Round C repeats
// the baseline after recovery; the figure of merit is C over A. A final
// quiesced leg live-migrates one resident allocation between shards and
// checks the tentpole invariants: codec-matched migration does zero decode
// round-trips and both ends account identical migration bytes.

// healCountingCodec wraps a codec with call counters — the instrument
// behind the zero-decode migration assertion.
type healCountingCodec struct {
	inner   compress.Codec
	encodes atomic.Int64
	decodes atomic.Int64
}

func (c *healCountingCodec) Name() string { return c.inner.Name() }

func (c *healCountingCodec) AppendCompressed(dst, entry []byte) ([]byte, int) {
	c.encodes.Add(1)
	return c.inner.AppendCompressed(dst, entry)
}

func (c *healCountingCodec) DecompressInto(dst, comp []byte) error {
	c.decodes.Add(1)
	return c.inner.DecompressInto(dst, comp)
}

// HealResult is the heal experiment's outcome.
type HealResult struct {
	// Shards is the fleet width; KilledShard is the one that died.
	Shards      int
	KilledShard int
	// Clients is the serving population.
	Clients int
	// BaselineGBs, FailureGBs and RecoveredGBs are the modeled serving
	// throughputs of the three rounds: before, during and after the
	// failure. FailureGBs includes the retries and the rebuild traffic, so
	// it is the dip.
	BaselineGBs  float64
	FailureGBs   float64
	RecoveredGBs float64
	// RecoveryRatio is RecoveredGBs over BaselineGBs — the acceptance
	// criterion (>= 0.9).
	RecoveryRatio float64
	// Retried counts client operations that failed with the device-failed
	// error and were retried during round B.
	Retried int64
	// RebuiltEntries and RebuiltBytes describe the supervisor's rebuild;
	// RecoveryWall is its wall-clock duration.
	RebuiltEntries int64
	RebuiltBytes   int64
	RecoveryWall   time.Duration
	// LostBytes counts resident bytes that differed from the acknowledged
	// contents after recovery. The carve-out mirror makes this zero.
	LostBytes int64
	// MigrateDecodes and MigrateEncodes count codec round-trips during the
	// quiesced codec-matched migration leg (both must be zero);
	// MigrationBytesSrc/Dst are the two ends' migration accounting (equal).
	MigrateDecodes    int64
	MigrateEncodes    int64
	MigrationBytesSrc uint64
	MigrationBytesDst uint64
}

// healThroughput models one round's serving throughput from the per-shard
// telemetry accumulated since the last traffic reset.
func healThroughput(p *pool.Pool, payload int64) float64 {
	var worst float64
	for _, s := range p.Stats().Shards {
		if c := serviceCycles(s); c > worst {
			worst = c
		}
	}
	if worst <= 0 {
		return 0
	}
	clockHz := dram.DefaultConfig().CoreClockGHz * 1e9
	return float64(payload) / (worst / clockHz) / 1e9
}

// healRound streams one write+read-back pass of every client's resident
// set through the submission queues. Operations that fail because the
// device tier is down are retried until the supervisor brings the shard
// back; retried counts them. Returns the payload bytes acknowledged.
func healRound(p *pool.Pool, handles [][]*pool.Handle, data [][][]byte, retried *atomic.Int64, started chan<- struct{}) (int64, error) {
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		firstE  error
		payload int64
		once    sync.Once
	)
	fail := func(err error) {
		mu.Lock()
		if firstE == nil {
			firstE = err
		}
		mu.Unlock()
	}
	for c := range handles {
		wg.Add(1)
		go func(hs []*pool.Handle, bufs [][]byte) {
			defer wg.Done()
			var moved int64
			do := func(h *pool.Handle, buf []byte, read bool) bool {
				for {
					var f *pool.Future
					if read {
						f = p.SubmitRead(h, buf, 0)
					} else {
						f = p.SubmitWrite(h, buf, 0)
					}
					if started != nil {
						once.Do(func() { close(started) })
					}
					n, err := f.Wait()
					switch {
					case err == nil:
						moved += int64(n)
						return true
					case errors.Is(err, core.ErrDeviceFailed):
						// The shard died under us; the supervisor is
						// rebuilding it. Back off and resubmit.
						retried.Add(1)
						time.Sleep(200 * time.Microsecond)
					default:
						fail(err)
						return false
					}
				}
			}
			scratch := make([]byte, 0)
			for i, h := range hs {
				// Rewrite the resident contents (write-back), then read
				// them back: the expected bytes never change, so a kill at
				// any point leaves every region either acknowledged-new or
				// untouched — both equal to bufs[i].
				if !do(h, bufs[i], false) {
					return
				}
				if cap(scratch) < len(bufs[i]) {
					scratch = make([]byte, len(bufs[i]))
				}
				if !do(h, scratch[:len(bufs[i])], true) {
					return
				}
			}
			mu.Lock()
			payload += moved
			mu.Unlock()
		}(handles[c], data[c])
	}
	wg.Wait()
	return payload, firstE
}

// Heal runs the failure-recovery experiment: the serve client population
// against shards shards (<= 1 selects the default 4), one of which is
// killed mid-round. scale is the workload footprint divisor.
func Heal(scale, shards int) (*HealResult, error) {
	if shards <= 1 {
		shards = 4
	}
	codec := &healCountingCodec{inner: compress.NewBPC()}
	clients, raw, err := buildServeClients(ServeClients, scale, codec)
	if err != nil {
		return nil, err
	}
	totalDevice := 2 * raw
	devices := make([]*core.Device, shards)
	for i := range devices {
		devices[i] = core.NewDevice(core.Config{
			Codec:       codec,
			DeviceBytes: totalDevice / int64(shards),
		})
	}
	fi := pool.NewFailureInjector()
	recovered := make(chan pool.RecoveryStats, 1)
	p, err := pool.New(devices, pool.Config{
		Injector:    fi,
		AutoRecover: true,
		OnRecover:   func(rs pool.RecoveryStats) { recovered <- rs },
	})
	if err != nil {
		return nil, err
	}
	defer p.Close()

	// Resident working set: allocated once, contents fixed for the whole
	// experiment (rounds rewrite the same bytes).
	handles := make([][]*pool.Handle, len(clients))
	data := make([][][]byte, len(clients))
	for c, cl := range clients {
		for i, name := range cl.names {
			h, err := p.Malloc(name, int64(len(cl.data[i])), cl.targets[name])
			if err != nil {
				return nil, fmt.Errorf("exp: heal resident set: %w", err)
			}
			if _, err := h.WriteAt(cl.data[i], 0); err != nil {
				return nil, fmt.Errorf("exp: heal resident set: %w", err)
			}
			handles[c] = append(handles[c], h)
			data[c] = append(data[c], cl.data[i])
		}
	}
	res := &HealResult{Shards: shards, Clients: len(clients)}

	// Round A: baseline.
	var retried atomic.Int64
	p.ResetTraffic()
	payload, err := healRound(p, handles, data, &retried, nil)
	if err != nil {
		return nil, fmt.Errorf("exp: heal baseline round: %w", err)
	}
	res.BaselineGBs = healThroughput(p, payload)

	// Round B: kill the busiest shard as soon as the round is in flight.
	kill := 0
	var most int64
	for i, d := range devices {
		if u := d.DeviceUsed(); u > most {
			most, kill = u, i
		}
	}
	res.KilledShard = kill
	p.ResetTraffic()
	started := make(chan struct{})
	type roundOut struct {
		payload int64
		err     error
	}
	outc := make(chan roundOut, 1)
	go func() {
		pl, err := healRound(p, handles, data, &retried, started)
		outc <- roundOut{pl, err}
	}()
	<-started
	if err := fi.Kill(kill); err != nil {
		return nil, fmt.Errorf("exp: heal kill: %w", err)
	}
	out := <-outc
	if out.err != nil {
		return nil, fmt.Errorf("exp: heal failure round: %w", out.err)
	}
	res.FailureGBs = healThroughput(p, out.payload)
	res.Retried = retried.Load()
	select {
	case rs := <-recovered:
		res.RebuiltEntries = int64(rs.Entries)
		res.RebuiltBytes = rs.RebuiltBytes
		res.RecoveryWall = rs.Elapsed
	case <-time.After(30 * time.Second):
		return nil, errors.New("exp: heal: supervisor never recovered the shard")
	}

	// Round C: post-recovery throughput; the acceptance ratio.
	p.ResetTraffic()
	payload, err = healRound(p, handles, data, &retried, nil)
	if err != nil {
		return nil, fmt.Errorf("exp: heal recovered round: %w", err)
	}
	res.RecoveredGBs = healThroughput(p, payload)
	if res.BaselineGBs > 0 {
		res.RecoveryRatio = res.RecoveredGBs / res.BaselineGBs
	}

	// Zero lost bytes: every resident region must hold exactly the bytes
	// the clients acknowledged.
	var scratch []byte
	for c := range handles {
		for i, h := range handles[c] {
			want := data[c][i]
			if cap(scratch) < len(want) {
				scratch = make([]byte, len(want))
			}
			got := scratch[:len(want)]
			if _, err := h.ReadAt(got, 0); err != nil {
				return nil, fmt.Errorf("exp: heal readback: %w", err)
			}
			for o := 0; o < len(want); o++ {
				if got[o] != want[o] {
					res.LostBytes++
				}
			}
		}
	}

	// Quiesced migration leg: move the largest resident allocation off the
	// recovered shard and pin the tentpole invariants — no codec
	// round-trips between codec-matched shards, symmetric migration bytes.
	var pick *pool.Handle
	for c := range handles {
		for _, h := range handles[c] {
			if h.Shard() == kill && (pick == nil || h.Size() > pick.Size()) {
				pick = h
			}
		}
	}
	if pick != nil {
		dst := (kill + 1) % shards
		p.ResetTraffic()
		enc, dec := codec.encodes.Load(), codec.decodes.Load()
		if err := p.MigrateHandle(pick, dst); err != nil {
			return nil, fmt.Errorf("exp: heal migration leg: %w", err)
		}
		res.MigrateEncodes = codec.encodes.Load() - enc
		res.MigrateDecodes = codec.decodes.Load() - dec
		res.MigrationBytesSrc = devices[kill].Traffic().MigrationBytes
		res.MigrationBytesDst = devices[dst].Traffic().MigrationBytes
		// The moved data must still match.
		want := bytesOf(handles, data, pick)
		if want != nil {
			got := make([]byte, len(want))
			if _, err := pick.ReadAt(got, 0); err != nil {
				return nil, fmt.Errorf("exp: heal migration readback: %w", err)
			}
			if !bytes.Equal(got, want) {
				return nil, errors.New("exp: heal: migration corrupted resident data")
			}
		}
	}
	return res, nil
}

// bytesOf returns the resident contents recorded for the given handle.
func bytesOf(handles [][]*pool.Handle, data [][][]byte, h *pool.Handle) []byte {
	for c := range handles {
		for i, hh := range handles[c] {
			if hh == h {
				return data[c][i]
			}
		}
	}
	return nil
}
