package exp

import "testing"

func TestReprofileDriftStory(t *testing.T) {
	res, err := Reprofile(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benchmark != ReprofileBenchmark {
		t.Fatalf("benchmark = %s, want %s", res.Benchmark, ReprofileBenchmark)
	}
	if len(res.Steps) != 9 {
		t.Fatalf("steps = %d, want one per post-profile snapshot (9)", len(res.Steps))
	}
	applied := 0
	for _, s := range res.Steps {
		if s.Ratio <= 1 {
			t.Errorf("snapshot %d: device ratio %.2f, want > 1", s.Snapshot, s.Ratio)
		}
		if !s.Applied {
			// An idle checkpoint must not perturb the measurement.
			if s.BuddyFracAfter != s.StaleBuddyFrac {
				t.Errorf("snapshot %d: idle checkpoint changed buddy frac %.4f -> %.4f",
					s.Snapshot, s.StaleBuddyFrac, s.BuddyFracAfter)
			}
			if s.MigratedBytes != 0 {
				t.Errorf("snapshot %d: idle checkpoint migrated %d bytes", s.Snapshot, s.MigratedBytes)
			}
			continue
		}
		applied++
		if s.MigratedBytes <= 0 {
			t.Errorf("snapshot %d: applied checkpoint migrated nothing", s.Snapshot)
		}
		// Plan estimate and live migration count the same stored bytes.
		diff := float64(s.MigratedBytes - s.PlannedBytes)
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.01*float64(s.PlannedBytes) {
			t.Errorf("snapshot %d: migrated %d bytes vs plan %d", s.Snapshot, s.MigratedBytes, s.PlannedBytes)
		}
		// The point of the checkpoint: stale targets were overflowing, the
		// fresh ones are not.
		if s.BuddyFracAfter >= s.StaleBuddyFrac {
			t.Errorf("snapshot %d: reprofile did not reduce buddy accesses (%.3f -> %.3f)",
				s.Snapshot, s.StaleBuddyFrac, s.BuddyFracAfter)
		}
	}
	if applied == 0 {
		t.Error("355.seismic's fill-in should trigger at least one reprofile")
	}
	// The drift story: buddy accesses climb under stale targets until a
	// checkpoint acts, so the worst stale fraction must exceed the best
	// post-reprofile fraction by a wide margin.
	var worstStale, bestAfter float64 = 0, 1
	for _, s := range res.Steps {
		worstStale = max(worstStale, s.StaleBuddyFrac)
		bestAfter = min(bestAfter, s.BuddyFracAfter)
	}
	if worstStale < 4*bestAfter {
		t.Errorf("drift too mild: worst stale frac %.3f vs best after %.3f", worstStale, bestAfter)
	}
}
