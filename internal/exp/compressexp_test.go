package exp

import (
	"strings"
	"testing"

	"buddy/internal/race"
	"buddy/internal/workloads"
)

// testScale trades sample count for speed in unit tests.
const testScale = 8192

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 16 {
		t.Fatalf("Tab. 1 has 16 benchmarks, got %d", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Spot-check footprints against the paper.
	if got := byName["VGG16"].Footprint; got < 11<<30 || got > 12<<30 {
		t.Errorf("VGG16 footprint = %d, want ~11.08 GB", got)
	}
	if got := byName["370.bt"].Footprint; got > 2<<20 {
		t.Errorf("370.bt footprint = %d, want ~1.21 MB", got)
	}
}

func TestFig7Shape(t *testing.T) {
	skipFidelitySweepUnderRace(t)
	res := Fig7(testScale)
	// Paper's headline: naive 1.57x/8% HPC, 1.18x/32% DL;
	// final 1.9x/0.08% HPC, 1.5x/4% DL. Assert ordering and bands.
	t.Logf("naive    HPC %.2fx/%.1f%%  DL %.2fx/%.1f%%",
		res.NaiveHPC.Ratio, res.NaiveHPC.BuddyFrac*100, res.NaiveDL.Ratio, res.NaiveDL.BuddyFrac*100)
	t.Logf("perAlloc HPC %.2fx/%.1f%%  DL %.2fx/%.1f%%",
		res.PerAllocHPC.Ratio, res.PerAllocHPC.BuddyFrac*100, res.PerAllocDL.Ratio, res.PerAllocDL.BuddyFrac*100)
	t.Logf("final    HPC %.2fx/%.1f%%  DL %.2fx/%.1f%%",
		res.FinalHPC.Ratio, res.FinalHPC.BuddyFrac*100, res.FinalDL.Ratio, res.FinalDL.BuddyFrac*100)

	// Monotone improvement of compression across design points.
	if !(res.NaiveHPC.Ratio <= res.PerAllocHPC.Ratio && res.PerAllocHPC.Ratio <= res.FinalHPC.Ratio) {
		t.Error("HPC ratios should improve naive -> per-alloc -> final")
	}
	if !(res.NaiveDL.Ratio <= res.PerAllocDL.Ratio && res.PerAllocDL.Ratio <= res.FinalDL.Ratio) {
		t.Error("DL ratios should improve naive -> per-alloc -> final")
	}
	// Final bands around the paper's 1.9x HPC / 1.5x DL.
	if res.FinalHPC.Ratio < 1.6 || res.FinalHPC.Ratio > 2.4 {
		t.Errorf("final HPC ratio %.2f outside band around paper's 1.9x", res.FinalHPC.Ratio)
	}
	if res.FinalDL.Ratio < 1.3 || res.FinalDL.Ratio > 1.8 {
		t.Errorf("final DL ratio %.2f outside band around paper's 1.5x", res.FinalDL.Ratio)
	}
	// Buddy accesses: DL well above HPC; final HPC tiny.
	if res.FinalHPC.BuddyFrac > 0.01 {
		t.Errorf("final HPC buddy fraction %.4f, want < 1%%", res.FinalHPC.BuddyFrac)
	}
	if res.FinalDL.BuddyFrac < 0.01 || res.FinalDL.BuddyFrac > 0.15 {
		t.Errorf("final DL buddy fraction %.3f outside band around paper's 4%%", res.FinalDL.BuddyFrac)
	}
	// Per-allocation targets rescue 354.cg and 370.bt from 1x (§3.4).
	for _, row := range res.Rows {
		if row.Name == "354.cg" || row.Name == "370.bt" {
			if row.Naive.Ratio > 1.01 {
				t.Errorf("%s: naive should fail to compress (got %.2fx)", row.Name, row.Naive.Ratio)
			}
			if row.PerAlloc.Ratio < 1.05 {
				t.Errorf("%s: per-allocation should compress ~1.1-1.3x (got %.2fx)", row.Name, row.PerAlloc.Ratio)
			}
		}
		// Zero-page optimization must never reduce compression.
		if row.Final.Ratio+1e-9 < row.PerAlloc.Ratio {
			t.Errorf("%s: zero-page made things worse (%.2f -> %.2f)", row.Name, row.PerAlloc.Ratio, row.Final.Ratio)
		}
	}
}

func TestSparseSweepShape(t *testing.T) {
	res := SparseSweep(testScale, nil)
	if len(res.ZeroFracs) != 3 || res.ZeroFracs[0] != 0.5 || res.ZeroFracs[2] != 0.9 {
		t.Fatalf("default zero fractions = %v, want cDMA's 0.5/0.7/0.9", res.ZeroFracs)
	}
	byCodec := map[string][]float64{}
	for _, r := range res.Rows {
		byCodec[r.Codec] = r.Ratios
		if len(r.Ratios) != len(res.ZeroFracs) {
			t.Fatalf("%s: %d ratios for %d zero fractions", r.Codec, len(r.Ratios), len(res.ZeroFracs))
		}
		// More zeros can only help: every codec's ratio must be monotone
		// nondecreasing in the zero fraction, and a compression ratio is
		// never below 1 (the raw class is the ceiling).
		for i, v := range r.Ratios {
			if v < 1 {
				t.Errorf("%s at %.0f%% zeros: ratio %.2f < 1", r.Codec, res.ZeroFracs[i]*100, v)
			}
			if i > 0 && v < r.Ratios[i-1]-0.01 {
				t.Errorf("%s: ratio fell from %.2f to %.2f as zeros rose", r.Codec, r.Ratios[i-1], v)
			}
		}
	}
	// BPC exploits the zero runs: at 50% zeros the element-level scatter
	// defeats it (every entry still holds ~32 nonzero halfwords, ratio ~1)
	// while at 90% many entries go fully or nearly zero — the sweep must
	// show that cliff, which is exactly what the codecs' sparsity fast
	// paths key on.
	bpc := byCodec["bpc"]
	if bpc == nil {
		t.Fatal("bpc missing from the sweep")
	}
	if bpc[2] < 1.3*bpc[0] || bpc[2] < 1.3 {
		t.Errorf("bpc ratios %v: 90%%-zero point should clearly beat 50%%", bpc)
	}
}

func TestFig9Shape(t *testing.T) {
	skipFidelitySweepUnderRace(t)
	rows := Fig9(testScale, nil)
	for _, row := range rows {
		// Ratio non-decreasing and buddy fraction non-decreasing in the
		// threshold; every point's ratio at most best-achievable-ish.
		for i := 1; i < len(row.Points); i++ {
			if row.Points[i].Ratio+1e-9 < row.Points[i-1].Ratio {
				t.Errorf("%s: ratio decreased with threshold (%.2f -> %.2f)",
					row.Name, row.Points[i-1].Ratio, row.Points[i].Ratio)
			}
			if row.Points[i].BuddyFrac+1e-9 < row.Points[i-1].BuddyFrac {
				t.Errorf("%s: buddy fraction decreased with threshold", row.Name)
			}
		}
		if row.Best <= 0 || row.Best > 4 {
			t.Errorf("%s: best achievable %.2f outside (0,4]", row.Name, row.Best)
		}
	}
	// FF_HPGMG's stripes defeat a 30-40% threshold: achieved ratio must sit
	// far below best achievable (§3.4: needs >80% threshold).
	for _, row := range rows {
		if row.Name != "FF_HPGMG" {
			continue
		}
		last := row.Points[len(row.Points)-1].Ratio
		if last > 0.75*row.Best {
			t.Errorf("FF_HPGMG at 40%% threshold achieves %.2f of best %.2f; paper says it needs >80%%",
				last, row.Best)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rows := Fig8(testScale)
	if len(rows) != 2 {
		t.Fatalf("Fig. 8 covers SqueezeNet and ResNet50, got %d rows", len(rows))
	}
	for _, row := range rows {
		var minR, maxR, minF, maxF = 1e9, 0.0, 1e9, 0.0
		for _, p := range row.Points {
			minR, maxR = min(minR, p.Ratio), max(maxR, p.Ratio)
			minF, maxF = min(minF, p.BuddyFrac), max(maxF, p.BuddyFrac)
		}
		// The compression ratio is constant by construction (fixed targets).
		if maxR-minR > 1e-9 {
			t.Errorf("%s: device ratio should be constant, spread %.4f", row.Name, maxR-minR)
		}
		// Paper: buddy accesses "do not change a lot over time".
		if minF <= 0 {
			t.Errorf("%s: expected nonzero buddy accesses", row.Name)
		}
		if maxF > 2.5*minF {
			t.Errorf("%s: buddy fraction unstable over iteration: %.3f..%.3f", row.Name, minF, maxF)
		}
		// Band check on the constant ratios (paper: 1.49 and 1.64).
		if row.Points[0].Ratio < 1.3 || row.Points[0].Ratio > 1.9 {
			t.Errorf("%s: ratio %.2f outside the paper's 1.49-1.64 neighbourhood", row.Name, row.Points[0].Ratio)
		}
	}
}

func TestFig5bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("address-stream sweep")
	}
	rows := Fig5b([]int{8, 64, 256})
	byName := map[string]Fig5bRow{}
	for _, r := range rows {
		byName[r.Name] = r
		for i := 1; i < len(r.HitRates); i++ {
			if r.HitRates[i]+0.02 < r.HitRates[i-1] {
				t.Errorf("%s: hit rate decreased with larger cache (%.3f -> %.3f)",
					r.Name, r.HitRates[i-1], r.HitRates[i])
			}
		}
	}
	// Streaming benchmarks approach the 63/64 prefetch ceiling even small;
	// 351.palm and 355.seismic stay visibly below it (Fig. 5b outliers).
	if hr := byName["356.sp"].HitRates[0]; hr < 0.90 {
		t.Errorf("356.sp (streaming) hit rate %.3f, want > 0.90 at 8 KB", hr)
	}
	for _, name := range []string{"351.palm", "355.seismic"} {
		small := byName[name].HitRates[0]
		if small > 0.85 {
			t.Errorf("%s hit rate %.3f at 8 KB; paper shows it suffering", name, small)
		}
	}
}

func TestFig6Homogeneity(t *testing.T) {
	maps := Fig6(testScale)
	if len(maps) != 16 {
		t.Fatalf("want 16 heat-maps, got %d", len(maps))
	}
	idx := map[string]float64{}
	for _, m := range maps {
		idx[m.Name] = m.HomogeneityIndex()
		if len(m.Rows) == 0 {
			t.Errorf("%s: empty heat-map", m.Name)
		}
	}
	// Paper: "most HPC benchmarks have large homogeneous regions ... the
	// distribution is more random in DL workloads".
	var hpcSum, dlSum float64
	var nh, nd int
	for _, b := range workloads.Table1() {
		if b.Suite == workloads.HPC {
			hpcSum += idx[b.Name]
			nh++
		} else {
			dlSum += idx[b.Name]
			nd++
		}
	}
	if hpcSum/float64(nh) <= dlSum/float64(nd) {
		t.Errorf("HPC homogeneity (%.3f) should exceed DL (%.3f)",
			hpcSum/float64(nh), dlSum/float64(nd))
	}
	// ASCII/PGM renderers must produce non-trivial output.
	art := maps[0].ASCII(40)
	if !strings.Contains(art, maps[0].Name) || len(strings.Split(art, "\n")) < 10 {
		t.Error("ASCII heat-map rendering looks broken")
	}
	if !strings.HasPrefix(maps[0].PGM(), "P2\n") {
		t.Error("PGM header missing")
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]string{"a", "long-header"}, [][]string{{"xyzzy", "1"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 lines, got %d", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

// skipFidelitySweepUnderRace skips heavy single-threaded fidelity sweeps
// when the race detector is on: they add minutes of wall-clock but no
// concurrency coverage (the concurrent paths are stress-tested in core).
func skipFidelitySweepUnderRace(t *testing.T) {
	t.Helper()
	if race.Enabled {
		t.Skip("single-threaded fidelity sweep; skipped under -race")
	}
}
