package exp

import (
	"testing"
)

// resetIndexCache empties the shared snapshot-index cache so each benchmark
// iteration measures a cold all-workloads sweep, not a cache hit.
func resetIndexCache() {
	indexCache.Lock()
	indexCache.m = make(map[indexKey]*indexEntry)
	indexCache.Unlock()
}

// benchSweepScale keeps the sweep benches CI-friendly (seconds, not
// minutes); per-entry statistics are scale-free.
const benchSweepScale = 16384

// BenchmarkFig3Sweep regenerates the Fig. 3 optimistic-compression study
// over all sixteen workloads from a cold index cache — the end-to-end
// analysis-pipeline throughput (synthesis + one parallel encode pass per
// snapshot + class-rounded ratios) that BENCH_pr.json tracks alongside the
// data-path benchmarks.
func BenchmarkFig3Sweep(b *testing.B) {
	var res *Fig3Result
	for i := 0; i < b.N; i++ {
		resetIndexCache()
		res = Fig3(benchSweepScale)
	}
	b.ReportMetric(res.GMeanHPC, "gmeanHPC")
	b.ReportMetric(res.GMeanDL, "gmeanDL")
}
