package exp

import (
	"sync"

	"buddy/internal/analysis"
	"buddy/internal/compress"
	"buddy/internal/workloads"
)

// The figure computations all reduce to per-entry sector classes over the
// same synthesized snapshots, so the package keeps one sector-class index
// per (benchmark, snapshot, scale, codec) and every figure shares it:
// Fig. 3's ratio series, Fig. 6's heat-maps and Fig. 7/8/9's profiling
// sweeps read the same index instead of re-synthesizing and re-encoding
// the data per figure. Synthesis is deterministic (seeded per
// benchmark/region/snapshot), so a value key is sound. Indexes are compact
// — two bytes per 128 B entry — so a whole DefaultScale sweep caches in a
// few megabytes; the synthesized bytes themselves are discarded after the
// single encode pass.

type indexKey struct {
	bench    string
	snapshot int
	scale    int
	codec    string
}

type indexEntry struct {
	once sync.Once
	idx  *analysis.Index
}

var indexCache = struct {
	sync.Mutex
	m map[indexKey]*indexEntry
}{m: make(map[indexKey]*indexEntry)}

// snapshotIndex returns the shared sector-class index of benchmark b's
// snapshot t at the given scale under codec c, building it on first use.
// Concurrent callers of the same key block on one build (per-key
// sync.Once); distinct keys build independently.
func snapshotIndex(b workloads.Benchmark, t, scale int, c compress.Codec) *analysis.Index {
	key := indexKey{bench: b.Name, snapshot: t, scale: scale, codec: c.Name()}
	indexCache.Lock()
	e := indexCache.m[key]
	if e == nil {
		e = &indexEntry{}
		indexCache.m[key] = e
	}
	indexCache.Unlock()
	e.once.Do(func() {
		e.idx = analysis.Build(workloads.GenerateSnapshot(b, t, scale), c)
	})
	return e.idx
}

// runIndexes returns the indexes of all of benchmark b's profiling
// snapshots at the given scale under codec c.
func runIndexes(b workloads.Benchmark, scale int, c compress.Codec) []*analysis.Index {
	out := make([]*analysis.Index, workloads.Snapshots)
	for t := range out {
		out[t] = snapshotIndex(b, t, scale, c)
	}
	return out
}
