package exp

import "testing"

// TestHealRecovery pins the heal experiment's acceptance criteria: after
// one of four shards is killed mid-serve, the pool recovers to at least
// 90% of its pre-failure modeled throughput with zero lost bytes, and the
// quiesced codec-matched migration leg does zero codec round-trips with
// symmetric migration accounting. Smoke scale keeps the test in CI budget;
// the modeled metric is scale-free.
func TestHealRecovery(t *testing.T) {
	res, err := Heal(16384, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 4 || res.Clients != ServeClients {
		t.Fatalf("ran %d clients on %d shards, want %d on 4", res.Clients, res.Shards, ServeClients)
	}
	if res.BaselineGBs <= 0 || res.FailureGBs <= 0 || res.RecoveredGBs <= 0 {
		t.Fatalf("degenerate round throughputs: %+v", res)
	}
	if res.RecoveryRatio < 0.9 {
		t.Errorf("post-recovery throughput is %.0f%% of baseline, want >= 90%%",
			res.RecoveryRatio*100)
	}
	if res.LostBytes != 0 {
		t.Errorf("recovery lost %d resident bytes, want 0", res.LostBytes)
	}
	if res.RebuiltEntries == 0 || res.RebuiltBytes == 0 {
		t.Errorf("rebuild moved nothing (entries=%d bytes=%d); the killed shard held residents",
			res.RebuiltEntries, res.RebuiltBytes)
	}
	if res.MigrateDecodes != 0 || res.MigrateEncodes != 0 {
		t.Errorf("codec-matched migration did %d decodes / %d encodes, want 0/0",
			res.MigrateDecodes, res.MigrateEncodes)
	}
	if res.MigrationBytesSrc == 0 || res.MigrationBytesSrc != res.MigrationBytesDst {
		t.Errorf("migration bytes src=%d dst=%d, want equal and nonzero",
			res.MigrationBytesSrc, res.MigrationBytesDst)
	}
}
