package exp

import (
	"math"
	"testing"

	"buddy/internal/workloads"
)

// Golden-figure regression: the repository's reference-fidelity numbers for
// the two headline capacity figures, pinned to two decimals. Codec,
// analysis-pipeline and synthesis refactors must keep these bit-stable; a
// deliberate fidelity change must update the constants here in the same
// commit. The deterministic synthesis makes exact pins sound (the indexes
// are cached per (benchmark, snapshot, scale, codec), so this costs one
// encode pass shared with any other reference-fidelity consumer).
const goldenTol = 0.005 // half of the last printed digit

func TestGoldenFig3GMeans(t *testing.T) {
	skipFidelitySweepUnderRace(t)
	res := Fig3(workloads.DefaultScale)
	if math.Abs(res.GMeanHPC-2.31) > goldenTol {
		t.Errorf("Fig. 3 HPC gmean drifted: %.4f, pinned 2.31 (paper 2.51)", res.GMeanHPC)
	}
	if math.Abs(res.GMeanDL-1.78) > goldenTol {
		t.Errorf("Fig. 3 DL gmean drifted: %.4f, pinned 1.78 (paper 1.85)", res.GMeanDL)
	}
}

func TestGoldenFig7Finals(t *testing.T) {
	skipFidelitySweepUnderRace(t)
	res := Fig7(workloads.DefaultScale)
	if math.Abs(res.FinalHPC.Ratio-1.99) > goldenTol {
		t.Errorf("Fig. 7 final HPC ratio drifted: %.4f, pinned 1.99 (paper ~1.9)", res.FinalHPC.Ratio)
	}
	if math.Abs(res.FinalDL.Ratio-1.46) > goldenTol {
		t.Errorf("Fig. 7 final DL ratio drifted: %.4f, pinned 1.46 (paper ~1.5)", res.FinalDL.Ratio)
	}
}
