package heatmap

import (
	"strings"
	"testing"

	"buddy/internal/analysis"
	"buddy/internal/compress"
	"buddy/internal/gen"
	"buddy/internal/memory"
)

func buildSnapshot() *memory.Snapshot {
	s := &memory.Snapshot{}
	a := memory.NewAllocation("zeros", 2*memory.PageBytes)
	b := memory.NewAllocation("random", 2*memory.PageBytes)
	gen.Random{}.Fill(b.Data, gen.NewRNG(1, 1))
	s.Allocations = []*memory.Allocation{a, b}
	return s
}

func TestBuildDimensions(t *testing.T) {
	m := Build("test", buildSnapshot(), compress.NewBPC())
	if len(m.Rows) != 4 {
		t.Fatalf("want 4 page rows, got %d", len(m.Rows))
	}
	for _, r := range m.Rows {
		if len(r) != memory.EntriesPerPage {
			t.Fatalf("row width %d, want %d", len(r), memory.EntriesPerPage)
		}
	}
	// First two pages all zero-page class, last two all raw.
	for i := 0; i < memory.EntriesPerPage; i++ {
		if m.Rows[0][i] != 0 {
			t.Fatal("zero allocation should map to sector count 0")
		}
		if m.Rows[3][i] != 4 {
			t.Fatal("random allocation should map to sector count 4")
		}
	}
}

func TestASCIIDownsampleKeepsHotRows(t *testing.T) {
	m := Build("test", buildSnapshot(), compress.NewBPC())
	art := m.ASCII(2)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("want 3 lines, got %d", len(lines))
	}
	if !strings.Contains(lines[2], "#") {
		t.Error("downsampled hot row lost its incompressible marker")
	}
}

func TestPGMFormat(t *testing.T) {
	m := Build("test", buildSnapshot(), compress.NewBPC())
	pgm := m.PGM()
	if !strings.HasPrefix(pgm, "P2\n64 4\n255\n") {
		t.Errorf("bad PGM header: %q", pgm[:20])
	}
}

func TestHomogeneityIndex(t *testing.T) {
	m := Build("test", buildSnapshot(), compress.NewBPC())
	if h := m.HomogeneityIndex(); h != 1 {
		t.Errorf("uniform rows should be fully homogeneous, got %.3f", h)
	}
	mixed := &Map{Rows: [][]uint8{{0, 4, 0, 4}}}
	if h := mixed.HomogeneityIndex(); h != 0 {
		t.Errorf("alternating row should be fully heterogeneous, got %.3f", h)
	}
}

func TestBuildFromSharedIndex(t *testing.T) {
	// FromIndex over a prebuilt index must equal Build from the snapshot.
	s := buildSnapshot()
	direct := Build("test", s, compress.NewBPC())
	shared := FromIndex("test", analysis.Build(s, compress.NewBPC()))
	if len(direct.Rows) != len(shared.Rows) {
		t.Fatalf("row count %d vs %d", len(direct.Rows), len(shared.Rows))
	}
	for r := range direct.Rows {
		for i := range direct.Rows[r] {
			if direct.Rows[r][i] != shared.Rows[r][i] {
				t.Fatalf("row %d col %d: %d vs %d", r, i, direct.Rows[r][i], shared.Rows[r][i])
			}
		}
	}
}

func TestDegenerateMaps(t *testing.T) {
	// Regression: empty snapshots and degenerate downsample arguments must
	// render instead of dividing by zero.
	empty := Build("empty", &memory.Snapshot{}, compress.NewBPC())
	if len(empty.Rows) != 0 {
		t.Fatalf("empty snapshot produced %d rows", len(empty.Rows))
	}
	for _, maxRows := range []int{0, 1, 48} {
		if out := empty.ASCII(maxRows); !strings.Contains(out, "0 pages") {
			t.Errorf("ASCII(%d) header wrong: %q", maxRows, out)
		}
	}
	if pgm := empty.PGM(); !strings.HasPrefix(pgm, "P2\n64 0\n255\n") {
		t.Errorf("empty PGM header: %q", pgm)
	}
	if h := empty.HomogeneityIndex(); h != 0 {
		t.Errorf("empty homogeneity = %.3f, want 0", h)
	}
	// downsample called directly with degenerate arguments.
	if got := downsample(nil, 4); len(got) != 0 {
		t.Errorf("downsample(nil) produced %d rows", len(got))
	}
	rows := [][]uint8{{1, 2}, {3, 0}}
	if got := downsample(rows, 0); len(got) != 2 {
		t.Errorf("downsample(maxRows=0) should pass rows through, got %d", len(got))
	}
	if got := downsample(rows, 5); len(got) != 2 {
		t.Errorf("downsample beyond row count should pass rows through, got %d", len(got))
	}
	if got := downsample(rows, 1); len(got) != 1 || got[0][0] != 3 || got[0][1] != 2 {
		t.Errorf("downsample to 1 row = %v, want [[3 2]]", got)
	}
}
