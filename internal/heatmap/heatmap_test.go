package heatmap

import (
	"strings"
	"testing"

	"buddy/internal/compress"
	"buddy/internal/gen"
	"buddy/internal/memory"
)

func buildSnapshot() *memory.Snapshot {
	s := &memory.Snapshot{}
	a := memory.NewAllocation("zeros", 2*memory.PageBytes)
	b := memory.NewAllocation("random", 2*memory.PageBytes)
	gen.Random{}.Fill(b.Data, gen.NewRNG(1, 1))
	s.Allocations = []*memory.Allocation{a, b}
	return s
}

func TestBuildDimensions(t *testing.T) {
	m := Build("test", buildSnapshot(), compress.NewBPC())
	if len(m.Rows) != 4 {
		t.Fatalf("want 4 page rows, got %d", len(m.Rows))
	}
	for _, r := range m.Rows {
		if len(r) != memory.EntriesPerPage {
			t.Fatalf("row width %d, want %d", len(r), memory.EntriesPerPage)
		}
	}
	// First two pages all zero-page class, last two all raw.
	for i := 0; i < memory.EntriesPerPage; i++ {
		if m.Rows[0][i] != 0 {
			t.Fatal("zero allocation should map to sector count 0")
		}
		if m.Rows[3][i] != 4 {
			t.Fatal("random allocation should map to sector count 4")
		}
	}
}

func TestASCIIDownsampleKeepsHotRows(t *testing.T) {
	m := Build("test", buildSnapshot(), compress.NewBPC())
	art := m.ASCII(2)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("want 3 lines, got %d", len(lines))
	}
	if !strings.Contains(lines[2], "#") {
		t.Error("downsampled hot row lost its incompressible marker")
	}
}

func TestPGMFormat(t *testing.T) {
	m := Build("test", buildSnapshot(), compress.NewBPC())
	pgm := m.PGM()
	if !strings.HasPrefix(pgm, "P2\n64 4\n255\n") {
		t.Errorf("bad PGM header: %q", pgm[:20])
	}
}

func TestHomogeneityIndex(t *testing.T) {
	m := Build("test", buildSnapshot(), compress.NewBPC())
	if h := m.HomogeneityIndex(); h != 1 {
		t.Errorf("uniform rows should be fully homogeneous, got %.3f", h)
	}
	mixed := &Map{Rows: [][]uint8{{0, 4, 0, 4}}}
	if h := mixed.HomogeneityIndex(); h != 0 {
		t.Errorf("alternating row should be fully heterogeneous, got %.3f", h)
	}
}
