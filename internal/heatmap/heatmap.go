// Package heatmap renders the spatial compressibility plots of Fig. 6: one
// row per 8 KB page (64 memory-entries along x), pages stacked by address,
// colour = per-entry compressed size. Output formats are ASCII art (for
// terminals and tests) and PGM (a stdlib-friendly grayscale image format).
package heatmap

import (
	"fmt"
	"strings"

	"buddy/internal/analysis"
	"buddy/internal/compress"
	"buddy/internal/memory"
)

// Map holds per-entry compressed sector counts arranged by page.
type Map struct {
	// Name labels the map (benchmark name in Fig. 6).
	Name string
	// Rows[page][entryInPage] is the compressed sector count (0..4).
	Rows [][]uint8
}

// Build computes the compressibility map of a snapshot under codec c. It
// indexes the snapshot (one encode per entry, in parallel) and renders from
// the index; callers that already hold an index use FromIndex instead.
func Build(name string, s *memory.Snapshot, c compress.Codec) *Map {
	return FromIndex(name, analysis.Build(s, c))
}

// FromIndex renders the compressibility map from an existing sector-class
// index, concatenating allocations in address order exactly as the paper
// lays the virtual address space vertically.
func FromIndex(name string, x *analysis.Index) *Map {
	m := &Map{Name: name}
	row := make([]uint8, 0, memory.EntriesPerPage)
	for _, a := range x.Allocs {
		n := a.Entries()
		for i := 0; i < n; i++ {
			row = append(row, uint8(a.SectorClass(i)))
			if len(row) == memory.EntriesPerPage {
				m.Rows = append(m.Rows, row)
				row = make([]uint8, 0, memory.EntriesPerPage)
			}
		}
	}
	if len(row) > 0 {
		for len(row) < memory.EntriesPerPage {
			row = append(row, 0)
		}
		m.Rows = append(m.Rows, row)
	}
	return m
}

// glyphs maps sector counts to ASCII intensity: cold (compressible) to hot.
var glyphs = [5]byte{' ', '.', ':', 'x', '#'}

// ASCII renders the map as text, optionally downsampling rows to maxRows
// (0 keeps all rows). Downsampling takes the maximum (hottest) sector count
// in each bucket so incompressible stripes stay visible.
func (m *Map) ASCII(maxRows int) string {
	rows := m.Rows
	if maxRows > 0 && len(rows) > maxRows {
		rows = downsample(rows, maxRows)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%d pages; ' '=zero-page  '.'=1  ':'=2  'x'=3  '#'=4 sectors)\n",
		m.Name, len(m.Rows))
	for _, r := range rows {
		line := make([]byte, len(r))
		for i, v := range r {
			if v > 4 {
				v = 4
			}
			line[i] = glyphs[v]
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// downsample buckets rows into maxRows output rows, each the element-wise
// maximum of its bucket. Degenerate inputs (no rows, or a non-positive
// maxRows that slipped past the caller) return the input unchanged rather
// than dividing by zero.
func downsample(rows [][]uint8, maxRows int) [][]uint8 {
	if len(rows) == 0 || maxRows <= 0 || len(rows) <= maxRows {
		return rows
	}
	out := make([][]uint8, maxRows)
	for o := 0; o < maxRows; o++ {
		lo := o * len(rows) / maxRows
		hi := (o + 1) * len(rows) / maxRows
		if hi <= lo {
			hi = lo + 1
		}
		agg := make([]uint8, len(rows[0]))
		for r := lo; r < hi && r < len(rows); r++ {
			for i, v := range rows[r] {
				if v > agg[i] {
					agg[i] = v
				}
			}
		}
		out[o] = agg
	}
	return out
}

// PGM renders the map as a binary-free plain PGM (P2) grayscale image:
// 0 (black) = incompressible, 255 (white) = zero-page. Viewers render it
// like the paper's heat-map with inverted palette.
func (m *Map) PGM() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P2\n%d %d\n255\n", memory.EntriesPerPage, len(m.Rows))
	for _, r := range m.Rows {
		for i, v := range r {
			if i > 0 {
				b.WriteByte(' ')
			}
			if v > 4 {
				v = 4
			}
			fmt.Fprintf(&b, "%d", 255-int(v)*63)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// HomogeneityIndex quantifies spatial clustering of compressibility: the
// fraction of horizontally adjacent entry pairs with equal sector counts.
// HPC workloads score high (large same-colour regions); DL workloads score
// lower (salt-and-pepper), matching the paper's Fig. 6 observation.
func (m *Map) HomogeneityIndex() float64 {
	var same, total int
	for _, r := range m.Rows {
		for i := 1; i < len(r); i++ {
			total++
			if r[i] == r[i-1] {
				same++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(same) / float64(total)
}
