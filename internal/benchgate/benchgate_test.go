package benchgate

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"buddy/internal/compress"
	"buddy/internal/gen"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: buddy/internal/compress
BenchmarkAppendCompressed/bpc/zeros-8    	 5000000	        41.2 ns/op	3105.43 MB/s	         0 B/op	        43.0 ns/entry
BenchmarkAppendCompressed/bpc/zeros-8    	 5000000	        39.9 ns/op	3105.43 MB/s	         0 B/op	        39.5 ns/entry
BenchmarkAppendCompressed/bpc/dense-8    	 1000000	       480.0 ns/op	 266.61 MB/s	         0 B/op	       481.2 ns/entry
BenchmarkWriteEntry/sparse90-8           	 3000000	       340.1 ns/op	 376.41 MB/s	       341.0 ns/entry
BenchmarkSubmitWrite-8                   	  100000	     24733 ns/op	 165.69 MB/s	       385 B/op	       5 allocs/op	       772.9 ns/entry
BenchmarkSubmitWrite-8                   	  100000	     24901 ns/op	 164.57 MB/s	       385 B/op	       3 allocs/op	       778.2 ns/entry
BenchmarkWriteAtBulk-8                   	     100	    401222 ns/op	1024.00 MB/s
PASS
`

func TestParseBench(t *testing.T) {
	got, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	wantNs := map[string]float64{
		"AppendCompressed/bpc/zeros": 39.5, // min of the two -count runs
		"AppendCompressed/bpc/dense": 481.2,
		"WriteEntry/sparse90":        341.0,
		"SubmitWrite":                772.9,
	}
	if len(got.NsPerEntry) != len(wantNs) {
		t.Fatalf("parsed %d ns/entry results, want %d: %v", len(got.NsPerEntry), len(wantNs), got.NsPerEntry)
	}
	for name, ns := range wantNs {
		if got.NsPerEntry[name] != ns {
			t.Errorf("%s = %v, want %v", name, got.NsPerEntry[name], ns)
		}
	}
	// allocs/op parsed where present, min of the -count runs.
	if len(got.AllocsPerOp) != 1 || got.AllocsPerOp["SubmitWrite"] != 3 {
		t.Errorf("AllocsPerOp = %v, want SubmitWrite: 3", got.AllocsPerOp)
	}
}

func TestCompare(t *testing.T) {
	base := Baseline{
		Tolerance: 1.3,
		NsPerEntry: map[string]float64{
			"AppendCompressed/bpc/zeros": 40,
			"WriteEntry/sparse90":        300,
			"WriteEntry/zeros":           100,
		},
	}
	got := Results{NsPerEntry: map[string]float64{
		"AppendCompressed/bpc/zeros": 51,  // 1.275x: within tolerance
		"WriteEntry/sparse90":        400, // 1.33x: regression
		// WriteEntry/zeros missing entirely
		"AppendCompressed/bpc/new": 10, // unpinned: ignored
	}}
	vs := Compare(base, got)
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(vs), vs)
	}
	if vs[0].Name != "WriteEntry/sparse90" || vs[0].Got != 400 {
		t.Errorf("violation 0 = %v", vs[0])
	}
	if vs[1].Name != "WriteEntry/zeros" || !vs[1].Missing {
		t.Errorf("violation 1 = %v (want missing-benchmark violation)", vs[1])
	}
	if !strings.Contains(vs[1].String(), "missing") {
		t.Errorf("missing-benchmark violation prints %q", vs[1].String())
	}
}

// TestCompareAllocs pins the allocation gate's semantics: a 0 pin admits no
// allocations at all, tolerance applies to non-zero pins, and a pinned
// benchmark that stops reporting allocs is a violation.
func TestCompareAllocs(t *testing.T) {
	base := Baseline{
		Tolerance: 1.3,
		AllocsPerOp: map[string]float64{
			"SubmitWrite":       0,
			"PoolServe/chunked": 40,
			"PoolServe/bulk":    100,
		},
	}
	got := Results{AllocsPerOp: map[string]float64{
		"SubmitWrite":       1,  // any alloc on a 0 pin fails
		"PoolServe/chunked": 50, // 1.25x: within tolerance
		// PoolServe/bulk missing
	}}
	vs := Compare(base, got)
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(vs), vs)
	}
	if vs[0].Name != "PoolServe/bulk" || !vs[0].Missing || vs[0].Metric != "allocs/op" {
		t.Errorf("violation 0 = %v", vs[0])
	}
	if vs[1].Name != "SubmitWrite" || vs[1].Got != 1 {
		t.Errorf("violation 1 = %v", vs[1])
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "base.json")
	in := Baseline{
		Note:        "test",
		Tolerance:   1.3,
		NsPerEntry:  map[string]float64{"A/b": 1.5},
		AllocsPerOp: map[string]float64{"A/b": 0},
	}
	if err := WriteBaseline(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Note != in.Note || out.Tolerance != in.Tolerance || out.NsPerEntry["A/b"] != 1.5 {
		t.Fatalf("round-trip mismatch: %+v", out)
	}
	if v, ok := out.AllocsPerOp["A/b"]; !ok || v != 0 {
		t.Fatalf("allocs pin lost in round trip: %+v", out)
	}
	if _, err := ReadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("reading a missing baseline should fail")
	}
}

// slowBPC wraps the real BPC codec with a deliberate per-entry stall — the
// regression the gate exists to catch (e.g. losing the word-view kernel and
// falling back to per-bit encoding).
type slowBPC struct{ compress.BPC }

func (s slowBPC) AppendCompressed(dst, entry []byte) ([]byte, int) {
	deadline := time.Now().Add(5 * time.Microsecond)
	for time.Now().Before(deadline) {
	}
	return s.BPC.AppendCompressed(dst, entry)
}

// TestGateCatchesSlowedCodec demonstrates the bench-gate end to end: measure
// the real kernel, pin it, deliberately slow the codec down past tolerance,
// re-measure, and require the comparator to fail. This is the in-tree proof
// that `make bench-gate` rejects a real perf regression, without depending
// on the absolute speed of the machine running the tests.
func TestGateCatchesSlowedCodec(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-dependent demonstration")
	}
	entry := make([]byte, compress.EntryBytes)
	gen.SparseFP16{ZeroFrac: 0.9}.Fill(entry, gen.NewRNG(7, 1))

	once := func(c compress.Codec) float64 {
		scratch := make([]byte, 0, compress.MaxStreamBytes)
		const n = 3000
		start := time.Now()
		for i := 0; i < n; i++ {
			stream, _ := c.AppendCompressed(scratch[:0], entry)
			scratch = stream[:0]
		}
		return float64(time.Since(start).Nanoseconds()) / n
	}

	// Two interleaved min-of-5 series of the SAME healthy codec: the pin and
	// the gated run share every machine phase, so the healthy check cannot be
	// failed by load spikes — only a genuine code slowdown separates them.
	var pinned, healthy float64
	once(compress.NewBPC()) // warm-up
	for rep := 0; rep < 5; rep++ {
		if ns := once(compress.NewBPC()); pinned == 0 || ns < pinned {
			pinned = ns
		}
		if ns := once(compress.NewBPC()); healthy == 0 || ns < healthy {
			healthy = ns
		}
	}
	base := Baseline{Tolerance: 1.3, NsPerEntry: map[string]float64{"AppendCompressed/bpc/sparse90": pinned}}

	if vs := Compare(base, Results{NsPerEntry: map[string]float64{"AppendCompressed/bpc/sparse90": healthy}}); len(vs) != 0 {
		t.Fatalf("healthy codec failed its own gate: %v (flaky machine?)", vs)
	}

	// The deliberate ~5 us/entry stall is a >10x regression — far past any
	// machine jitter, the shape of losing a kernel fast path entirely.
	slowed := 0.0
	for rep := 0; rep < 3; rep++ {
		if ns := once(slowBPC{}); slowed == 0 || ns < slowed {
			slowed = ns
		}
	}
	vs := Compare(base, Results{NsPerEntry: map[string]float64{"AppendCompressed/bpc/sparse90": slowed}})
	if len(vs) != 1 {
		t.Fatalf("slowed codec (%.0f ns vs pinned %.0f ns) passed the gate", slowed, pinned)
	}
	t.Logf("gate caught the slowdown: %s", vs[0])
}
