// Package benchgate pins codec and data-path benchmark results so a perf
// regression fails CI instead of landing silently. The gate works on the
// ns/entry metric the compress/core benchmarks report: `make bench-baseline`
// records the current machine's numbers into BENCH_baseline.json, and `make
// bench-gate` re-runs the same benchmarks and fails when any pinned
// benchmark runs slower than baseline x tolerance.
//
// Baselines are machine-relative: the ceilings pin a ratio, not an absolute
// truth, so a new machine (or a deliberate trade-off) re-pins with
// bench-baseline in the same commit that explains why.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// DefaultTolerance is the slowdown ratio the gate allows before failing:
// enough headroom for scheduler and turbo jitter on a quiet machine, far
// below the 2x+ cliffs that losing a fast path causes.
const DefaultTolerance = 1.3

// Baseline is the pinned benchmark state stored in BENCH_baseline.json.
type Baseline struct {
	// Note documents how the baseline was produced (command, machine hint).
	Note string `json:"note,omitempty"`
	// Tolerance is the allowed got/pinned ratio before the gate fails.
	Tolerance float64 `json:"tolerance"`
	// NsPerEntry maps benchmark name (without the "Benchmark" prefix and
	// -GOMAXPROCS suffix) to its pinned ns/entry.
	NsPerEntry map[string]float64 `json:"ns_per_entry"`
}

// ParseBench extracts ns/entry metrics from `go test -bench` output. Lines
// without a ns/entry metric are ignored. Repeated runs of one benchmark
// (-count N) collapse to the minimum — the standard de-noising for a gate
// that asks "can this code still run this fast", not "what is typical".
func ParseBench(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		name, ns, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if prev, seen := out[name]; !seen || ns < prev {
			out[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseLine pulls (name, ns/entry) out of one benchmark result line, e.g.
//
//	BenchmarkWriteEntry/sparse90-8  3822  312.5 ns/op  409 MB/s  312.1 ns/entry
func parseLine(line string) (string, float64, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", 0, false
	}
	for i := 2; i < len(f); i++ {
		if f[i] != "ns/entry" {
			continue
		}
		ns, err := strconv.ParseFloat(f[i-1], 64)
		if err != nil {
			return "", 0, false
		}
		name := strings.TrimPrefix(f[0], "Benchmark")
		if cut := strings.LastIndex(name, "-"); cut >= 0 {
			// The trailing -N is the GOMAXPROCS suffix, not part of the name.
			if _, err := strconv.Atoi(name[cut+1:]); err == nil {
				name = name[:cut]
			}
		}
		return name, ns, true
	}
	return "", 0, false
}

// Violation is one benchmark that failed the gate.
type Violation struct {
	Name      string
	Pinned    float64 // baseline ns/entry
	Got       float64 // measured ns/entry (0 when the benchmark went missing)
	Tolerance float64 // the ratio limit the comparison used
}

func (v Violation) String() string {
	if v.Got == 0 {
		return fmt.Sprintf("%s: pinned at %.1f ns/entry but missing from this run", v.Name, v.Pinned)
	}
	return fmt.Sprintf("%s: %.1f ns/entry exceeds pinned %.1f x tolerance %.2f (limit %.1f)",
		v.Name, v.Got, v.Pinned, v.Tolerance, v.Pinned*v.Tolerance)
}

// Compare checks measured results against the baseline. Every pinned
// benchmark must be present and within tolerance; benchmarks that only
// exist in got (new benchmarks, not yet pinned) pass — they join the
// baseline at the next bench-baseline. Violations come back sorted by name.
func Compare(base Baseline, got map[string]float64) []Violation {
	tol := base.Tolerance
	if tol <= 0 {
		tol = DefaultTolerance
	}
	var out []Violation
	for name, pinned := range base.NsPerEntry {
		ns, ok := got[name]
		if !ok {
			out = append(out, Violation{Name: name, Pinned: pinned, Tolerance: tol})
			continue
		}
		if ns > pinned*tol {
			out = append(out, Violation{Name: name, Pinned: pinned, Got: ns, Tolerance: tol})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if len(b.NsPerEntry) == 0 {
		return b, fmt.Errorf("benchgate: %s pins no benchmarks", path)
	}
	return b, nil
}

// WriteBaseline stores the baseline with stable key order for reviewable
// diffs.
func WriteBaseline(path string, b Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
