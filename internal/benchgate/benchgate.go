// Package benchgate pins codec and data-path benchmark results so a perf
// regression fails CI instead of landing silently. The gate works on two
// metrics: the ns/entry throughput metric the compress/core/pool benchmarks
// report, and the allocs/op counts from -benchmem — pinned at 0 for the
// allocation-free fast paths, so a de-pooled task or future fails the gate
// the same way a lost codec kernel does. `make bench-baseline` records the
// current machine's numbers into BENCH_baseline.json, and `make bench-gate`
// re-runs the same benchmarks and fails when any pinned benchmark runs
// slower (or allocates more) than baseline x tolerance.
//
// Baselines are machine-relative: the ceilings pin a ratio, not an absolute
// truth, so a new machine (or a deliberate trade-off) re-pins with
// bench-baseline in the same commit that explains why.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// DefaultTolerance is the slowdown ratio the gate allows before failing:
// enough headroom for scheduler and turbo jitter on a quiet machine, far
// below the 2x+ cliffs that losing a fast path causes. Allocation pins of 0
// get no headroom from any tolerance: 0 x anything is 0.
const DefaultTolerance = 1.3

// Baseline is the pinned benchmark state stored in BENCH_baseline.json.
type Baseline struct {
	// Note documents how the baseline was produced (command, machine hint).
	Note string `json:"note,omitempty"`
	// Tolerance is the allowed got/pinned ratio before the gate fails.
	Tolerance float64 `json:"tolerance"`
	// NsPerEntry maps benchmark name (without the "Benchmark" prefix and
	// -GOMAXPROCS suffix) to its pinned ns/entry.
	NsPerEntry map[string]float64 `json:"ns_per_entry"`
	// AllocsPerOp pins benchmarks' allocs/op the same way. A pin of 0 means
	// the benchmark must stay allocation-free.
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
}

// Results holds the metrics extracted from one bench run, keyed by benchmark
// name.
type Results struct {
	NsPerEntry  map[string]float64
	AllocsPerOp map[string]float64
}

// ParseBench extracts ns/entry and allocs/op metrics from `go test -bench`
// output. Lines without either metric are ignored. Repeated runs of one
// benchmark (-count N) collapse to the minimum — the standard de-noising for
// a gate that asks "can this code still run this fast", not "what is
// typical".
func ParseBench(r io.Reader) (Results, error) {
	out := Results{
		NsPerEntry:  make(map[string]float64),
		AllocsPerOp: make(map[string]float64),
	}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		name, m, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		if ns, has := m.ns(); has {
			if prev, seen := out.NsPerEntry[name]; !seen || ns < prev {
				out.NsPerEntry[name] = ns
			}
		}
		if al, has := m.allocs(); has {
			if prev, seen := out.AllocsPerOp[name]; !seen || al < prev {
				out.AllocsPerOp[name] = al
			}
		}
	}
	if err := sc.Err(); err != nil {
		return Results{}, err
	}
	return out, nil
}

// lineMetrics is one bench line's parsed metric fields; negative means the
// field was absent.
type lineMetrics struct {
	nsPerEntry  float64
	allocsPerOp float64
}

func (m lineMetrics) ns() (float64, bool)     { return m.nsPerEntry, m.nsPerEntry >= 0 }
func (m lineMetrics) allocs() (float64, bool) { return m.allocsPerOp, m.allocsPerOp >= 0 }

// parseLine pulls the metrics out of one benchmark result line, e.g.
//
//	BenchmarkWriteEntry/sparse90-8  3822  312.5 ns/op  409 MB/s  0 B/op  0 allocs/op  312.1 ns/entry
func parseLine(line string) (string, lineMetrics, bool) {
	m := lineMetrics{nsPerEntry: -1, allocsPerOp: -1}
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return "", m, false
	}
	for i := 2; i < len(f); i++ {
		var dst *float64
		switch f[i] {
		case "ns/entry":
			dst = &m.nsPerEntry
		case "allocs/op":
			dst = &m.allocsPerOp
		default:
			continue
		}
		v, err := strconv.ParseFloat(f[i-1], 64)
		if err != nil {
			return "", m, false
		}
		*dst = v
	}
	if m.nsPerEntry < 0 && m.allocsPerOp < 0 {
		return "", m, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	if cut := strings.LastIndex(name, "-"); cut >= 0 {
		// The trailing -N is the GOMAXPROCS suffix, not part of the name.
		if _, err := strconv.Atoi(name[cut+1:]); err == nil {
			name = name[:cut]
		}
	}
	return name, m, true
}

// Violation is one benchmark metric that failed the gate.
type Violation struct {
	Name      string
	Metric    string  // "ns/entry" or "allocs/op"
	Pinned    float64 // baseline value
	Got       float64 // measured value (0 when the benchmark went missing)
	Missing   bool    // the benchmark disappeared from the run
	Tolerance float64 // the ratio limit the comparison used
}

func (v Violation) String() string {
	if v.Missing {
		return fmt.Sprintf("%s: pinned at %.1f %s but missing from this run", v.Name, v.Pinned, v.Metric)
	}
	return fmt.Sprintf("%s: %.1f %s exceeds pinned %.1f x tolerance %.2f (limit %.1f)",
		v.Name, v.Got, v.Metric, v.Pinned, v.Tolerance, v.Pinned*v.Tolerance)
}

// Compare checks measured results against the baseline. Every pinned metric
// must be present and within tolerance; benchmarks that only exist in got
// (new benchmarks, not yet pinned) pass — they join the baseline at the next
// bench-baseline. A 0 allocs/op pin admits no tolerance: any allocation
// fails. Violations come back sorted by name then metric.
func Compare(base Baseline, got Results) []Violation {
	tol := base.Tolerance
	if tol <= 0 {
		tol = DefaultTolerance
	}
	var out []Violation
	compareMetric := func(metric string, pins, meas map[string]float64) {
		for name, pinned := range pins {
			v, ok := meas[name]
			if !ok {
				out = append(out, Violation{Name: name, Metric: metric, Pinned: pinned, Missing: true, Tolerance: tol})
				continue
			}
			if v > pinned*tol {
				out = append(out, Violation{Name: name, Metric: metric, Pinned: pinned, Got: v, Tolerance: tol})
			}
		}
	}
	compareMetric("ns/entry", base.NsPerEntry, got.NsPerEntry)
	compareMetric("allocs/op", base.AllocsPerOp, got.AllocsPerOp)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// Pins returns the total number of pinned metrics in the baseline.
func (b Baseline) Pins() int { return len(b.NsPerEntry) + len(b.AllocsPerOp) }

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if b.Pins() == 0 {
		return b, fmt.Errorf("benchgate: %s pins no benchmarks", path)
	}
	return b, nil
}

// WriteBaseline stores the baseline with stable key order for reviewable
// diffs.
func WriteBaseline(path string, b Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
