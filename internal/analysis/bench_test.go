package analysis

import (
	"testing"

	"buddy/internal/compress"
	"buddy/internal/gen"
	"buddy/internal/memory"
)

// BenchmarkAnalysisIndex measures the index builder's throughput — the
// floor under every snapshot study — on a GPU-typical mixed snapshot
// (smooth FP64 fields, quantized weights, zero padding) under BPC.
// SetBytes reports data throughput, so ns/op and MB/s track alongside the
// codec and bulk-I/O data-path benchmarks in BENCH_pr.json.
func BenchmarkAnalysisIndex(b *testing.B) {
	s := &memory.Snapshot{}
	shapes := []gen.Generator{
		gen.Noisy64{NoiseBits: 8, HiStep: 1},
		gen.Weights32{Sigma: 0.02, QuantBits: 12},
		gen.Blend{A: gen.Zeros{}, B: gen.Random{}, PA: 0.5},
	}
	const entriesPerAlloc = 16 * EntriesPerPage // 128 KB each
	var total int64
	for gi, g := range shapes {
		a := memory.NewAllocation(g.Name(), entriesPerAlloc*memory.EntryBytes)
		g.Fill(a.Data, gen.NewRNG(uint64(gi)*17+1, 7))
		s.Allocations = append(s.Allocations, a)
		total += int64(len(a.Data))
	}
	bpc := compress.NewBPC()
	b.SetBytes(total)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(s, bpc)
	}
}
