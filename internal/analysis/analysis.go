// Package analysis builds the shared sector-class index every snapshot
// study reduces to. The paper's profiling pass (§3.3-3.4) and all of its
// capacity figures ask the same primitive question — "how many 32 B sectors
// does this 128 B entry compress to?" — so the index answers it exactly
// once per entry: Build compresses a snapshot across a GOMAXPROCS-bounded
// worker pool and records, per entry, the sector class, the exact
// compressed byte size and an all-zero flag. Histograms, zero fractions,
// per-page rollups and class-rounded compression ratios are then cheap
// lookups, and every consumer (compression-ratio studies, sector
// histograms, heat-maps, the profiler, compress-point selection, the
// figure sweeps) shares one index per snapshot x codec instead of
// re-encoding the data.
package analysis

import (
	"runtime"
	"sync"

	"buddy/internal/compress"
	"buddy/internal/memory"
)

// EntryBytes and PageBytes mirror the memory-layout constants.
const (
	EntryBytes     = memory.EntryBytes
	PageBytes      = memory.PageBytes
	EntriesPerPage = memory.EntriesPerPage
)

// zeroFlag marks an all-zero entry in the packed class byte; the low three
// bits hold the sector class (0..4).
const (
	classMask = 0x07
	zeroFlag  = 0x08
)

// AllocIndex is one allocation's per-entry compressibility record.
type AllocIndex struct {
	// Name of the allocation.
	Name string

	// class packs the 32 B sector class (low 3 bits, 0..4) and the
	// all-zero flag per entry.
	class []uint8
	// size is the exact compressed payload size in bytes (0..128), the
	// input to arbitrary size-class rounding (Fig. 3's eight-size study).
	size []uint8

	hist        [5]int  // cached sector-class histogram
	zeroEntries int     // cached count of all-zero entries
	pageMax     []uint8 // cached per-8KB-page max sector class
}

// Entries returns the allocation's entry count.
func (a *AllocIndex) Entries() int { return len(a.class) }

// SectorClass returns entry i's compressed 32 B sector count (0..4); 0 is
// the zero-page class (<= 8 B including framing, §3.4).
func (a *AllocIndex) SectorClass(i int) int { return int(a.class[i] & classMask) }

// Zero reports whether entry i is entirely zero bytes.
func (a *AllocIndex) Zero(i int) bool { return a.class[i]&zeroFlag != 0 }

// Size returns entry i's exact compressed payload size in bytes (0..128).
func (a *AllocIndex) Size(i int) int { return int(a.size[i]) }

// SectorHistogram returns the cached count of entries per sector class;
// index 0 is the zero-page class — the per-allocation histogram the
// profiler consumes (§3.4 "histogram of the static memory snapshots").
func (a *AllocIndex) SectorHistogram() [5]int { return a.hist }

// ZeroPageFrac is the fraction of entries in the zero-page sector class
// (class 0) — the 16x-eligibility statistic of §3.4.
func (a *AllocIndex) ZeroPageFrac() float64 {
	if len(a.class) == 0 {
		return 0
	}
	return float64(a.hist[0]) / float64(len(a.class))
}

// ZeroEntryFrac is the fraction of entries that are entirely zero bytes.
// It is codec-independent, unlike ZeroPageFrac, and neither bounds the
// other: most codecs put all-zero entries in class 0, but e.g. FVC encodes
// one to a full dictionary stream (class 1), while near-zero entries can
// reach class 0 without being all-zero.
func (a *AllocIndex) ZeroEntryFrac() float64 {
	if len(a.class) == 0 {
		return 0
	}
	return float64(a.zeroEntries) / float64(len(a.class))
}

// PageMax returns the cached per-page rollup: the maximum (least
// compressible) sector class within each 8 KB page, in page order. The
// final partial page, if any, rolls up its present entries.
func (a *AllocIndex) PageMax() []uint8 { return a.pageMax }

// Index is one snapshot's sector-class index under one codec.
type Index struct {
	// Codec names the algorithm the index was built with.
	Codec string
	// Allocs holds per-allocation indexes in snapshot order.
	Allocs []*AllocIndex

	hist    [5]int
	entries int
	zeros   int
}

// Entries returns the total entry count across allocations.
func (x *Index) Entries() int { return x.entries }

// SectorHistogram returns the snapshot-wide sector-class histogram.
func (x *Index) SectorHistogram() [5]int { return x.hist }

// ZeroEntries returns the snapshot-wide count of all-zero entries.
func (x *Index) ZeroEntries() int { return x.zeros }

// Find returns the index of the named allocation, or nil.
func (x *Index) Find(name string) *AllocIndex {
	for _, a := range x.Allocs {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// buildGrain is the smallest entry span a worker claims: compressing one
// entry costs microseconds, so a few hundred entries amortize the handoff
// while keeping the tail balanced.
const buildGrain = 512

// buildTask is one contiguous span of one allocation's entries.
type buildTask struct {
	a      *memory.Allocation
	idx    *AllocIndex
	lo, hi int
}

// Build compresses every entry of s exactly once under codec c and returns
// the snapshot's sector-class index. The encode work fans out across a
// GOMAXPROCS-bounded worker pool (each worker owns one compress.Sizer, so
// the codec scratch never crosses goroutines); small snapshots run inline.
// Like the driver's bulk data path, c must be safe for concurrent use —
// all built-in codecs are stateless and qualify.
func Build(s *memory.Snapshot, c compress.Codec) *Index {
	x := &Index{Codec: c.Name()}
	var tasks []buildTask
	for _, a := range s.Allocations {
		n := a.Entries()
		ai := &AllocIndex{
			Name:    a.Name,
			class:   make([]uint8, n),
			size:    make([]uint8, n),
			pageMax: make([]uint8, (n+EntriesPerPage-1)/EntriesPerPage),
		}
		x.Allocs = append(x.Allocs, ai)
		x.entries += n
		for lo := 0; lo < n; lo += buildGrain {
			tasks = append(tasks, buildTask{a: a, idx: ai, lo: lo, hi: min(lo+buildGrain, n)})
		}
	}

	workers := min(runtime.GOMAXPROCS(0), len(tasks))
	if workers <= 1 {
		sz := compress.NewSizer(c)
		for _, t := range tasks {
			classify(t, sz)
		}
	} else {
		var (
			wg   sync.WaitGroup
			next int
			mu   sync.Mutex
		)
		claim := func() (buildTask, bool) {
			mu.Lock()
			defer mu.Unlock()
			if next >= len(tasks) {
				return buildTask{}, false
			}
			t := tasks[next]
			next++
			return t, true
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sz := compress.NewSizer(c)
				for {
					t, ok := claim()
					if !ok {
						return
					}
					classify(t, sz)
				}
			}()
		}
		wg.Wait()
	}

	for _, ai := range x.Allocs {
		ai.summarize()
		for cl, n := range ai.hist {
			x.hist[cl] += n
		}
		x.zeros += ai.zeroEntries
	}
	return x
}

// classify fills one task's span: one encode per entry yields the exact
// bit count, from which the sector class and byte size both derive. The
// all-zero probe runs first and answers both the zero flag and (via the
// Sizer's precomputed zero-entry size) the bit count, so zero-dominated
// snapshots never enter a codec.
func classify(t buildTask, sz *compress.Sizer) {
	for i := t.lo; i < t.hi; i++ {
		e := t.a.Entry(i)
		var bits int
		var cl uint8
		if compress.EntryAllZero(e) {
			bits = sz.ZeroBits()
			cl = uint8(compress.SectorsForBits(bits)) | zeroFlag
		} else {
			bits = sz.Bits(e)
			cl = uint8(compress.SectorsForBits(bits))
		}
		t.idx.class[i] = cl
		t.idx.size[i] = uint8((bits + 7) / 8)
	}
}

// summarize computes the cached histogram, zero count and per-page rollup
// from the filled class array.
func (a *AllocIndex) summarize() {
	for i, c := range a.class {
		cl := c & classMask
		a.hist[cl]++
		if c&zeroFlag != 0 {
			a.zeroEntries++
		}
		if p := i / EntriesPerPage; cl > a.pageMax[p] {
			a.pageMax[p] = cl
		}
	}
}

// BuildRun indexes every snapshot of a run under codec c.
func BuildRun(snaps []*memory.Snapshot, c compress.Codec) []*Index {
	out := make([]*Index, len(snaps))
	for i, s := range snaps {
		out[i] = Build(s, c)
	}
	return out
}

// CompressionRatio measures the snapshot's capacity compression ratio
// under the given size classes, mirroring the paper's Fig. 3 methodology:
// each entry's exact compressed size is rounded up to a class and the
// ratio is original bytes over the sum of class sizes. All-zero entries
// take the 0 B class when it is available. An empty snapshot reports 1
// (nothing stored, nothing saved); a snapshot whose every entry lands in
// the 0 B class is bounded by the total original size.
func (x *Index) CompressionRatio(classes []int) float64 {
	if x.entries == 0 {
		return 1
	}
	// Sizes span 0..128: precompute the class rounding once per call
	// instead of once per entry.
	var round [EntryBytes + 1]int
	for s := range round {
		round[s] = compress.RoundToClass(s, classes)
	}
	zeroClass := len(classes) > 0 && classes[0] == 0
	var comp int
	for _, a := range x.Allocs {
		for i, sz := range a.size {
			if zeroClass && sz <= 1 && a.class[i]&zeroFlag != 0 {
				continue
			}
			comp += round[sz]
		}
	}
	orig := x.entries * EntryBytes
	if comp == 0 {
		return float64(orig)
	}
	return float64(orig) / float64(comp)
}

// CompressionRatio is the one-shot convenience over Build: prefer holding
// the Index when more than one statistic is needed from the same snapshot.
func CompressionRatio(s *memory.Snapshot, c compress.Codec, classes []int) float64 {
	return Build(s, c).CompressionRatio(classes)
}

// SectorHistogram is the one-shot per-allocation histogram convenience.
func SectorHistogram(a *memory.Allocation, c compress.Codec) [5]int {
	s := &memory.Snapshot{Allocations: []*memory.Allocation{a}}
	return Build(s, c).Allocs[0].SectorHistogram()
}
