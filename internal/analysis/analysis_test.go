package analysis

import (
	"runtime"
	"sync"
	"testing"

	"buddy/internal/compress"
	"buddy/internal/gen"
	"buddy/internal/memory"
)

// testGens spans the structural space the codecs care about: zeros, ramps,
// noisy numerics, raw random, sparse and quantized weights, and the striped
// mix that produces partial-page and mixed-class layouts.
func testGens() []gen.Generator {
	return []gen.Generator{
		gen.Zeros{},
		gen.Ramp{Start: -100, Step: 3},
		gen.Noisy32{NoiseBits: 4, SmoothStep: 17},
		gen.Noisy64{NoiseBits: 8, HiStep: 2},
		gen.Random{},
		gen.Sparse32{Density: 0.4, Sigma: 1},
		gen.Weights32{Sigma: 0.02, QuantBits: 12},
		gen.Stripe{A: gen.Zeros{}, B: gen.Random{}, PeriodEntries: 8, AEntries: 4},
	}
}

// testSnapshot synthesizes a multi-allocation snapshot covering every
// generator shape, sized to force the parallel build path.
func testSnapshot(entriesPerAlloc int, seed uint64) *memory.Snapshot {
	s := &memory.Snapshot{}
	for gi, g := range testGens() {
		a := memory.NewAllocation(g.Name(), entriesPerAlloc*memory.EntryBytes)
		g.Fill(a.Data, gen.NewRNG(seed+uint64(gi)*31, 7))
		s.Allocations = append(s.Allocations, a)
	}
	return s
}

// TestIndexMatchesDirectSizing is the cross-check the index's correctness
// rests on: for every registered codec, over random and generator-shaped
// inputs, the indexed sector class, byte size and zero flag must equal what
// compress.Sizer / SectorsForBits report entry for entry.
func TestIndexMatchesDirectSizing(t *testing.T) {
	s := testSnapshot(3*EntriesPerPage+17, 5) // odd count: partial final page
	for _, c := range compress.Registry() {
		x := Build(s, c)
		if x.Codec != c.Name() {
			t.Fatalf("index codec = %q, want %q", x.Codec, c.Name())
		}
		sz := compress.NewSizer(c)
		for ai, a := range s.Allocations {
			idx := x.Allocs[ai]
			if idx.Name != a.Name || idx.Entries() != a.Entries() {
				t.Fatalf("%s: allocation mismatch %q/%d vs %q/%d",
					c.Name(), idx.Name, idx.Entries(), a.Name, a.Entries())
			}
			for i := 0; i < a.Entries(); i++ {
				e := a.Entry(i)
				bits := sz.Bits(e)
				if got, want := idx.SectorClass(i), compress.SectorsForBits(bits); got != want {
					t.Fatalf("%s/%s entry %d: class %d, want %d", c.Name(), a.Name, i, got, want)
				}
				if got, want := idx.Size(i), (bits+7)/8; got != want {
					t.Fatalf("%s/%s entry %d: size %d, want %d", c.Name(), a.Name, i, got, want)
				}
				if got, want := idx.Zero(i), allZero(e); got != want {
					t.Fatalf("%s/%s entry %d: zero flag %v, want %v", c.Name(), a.Name, i, got, want)
				}
			}
		}
	}
}

func allZero(e []byte) bool {
	for _, b := range e {
		if b != 0 {
			return false
		}
	}
	return true
}

// TestIndexCachedAggregates pins the cached histogram, zero count and
// per-page rollup against recomputation from the per-entry classes.
func TestIndexCachedAggregates(t *testing.T) {
	s := testSnapshot(2*EntriesPerPage+9, 11)
	x := Build(s, compress.NewBPC())
	var total [5]int
	var zeros int
	for _, a := range x.Allocs {
		var hist [5]int
		var pageMax []uint8
		for i := 0; i < a.Entries(); i++ {
			cl := a.SectorClass(i)
			hist[cl]++
			if a.Zero(i) {
				zeros++
			}
			if p := i / EntriesPerPage; p == len(pageMax) {
				pageMax = append(pageMax, uint8(cl))
			} else if uint8(cl) > pageMax[p] {
				pageMax[p] = uint8(cl)
			}
		}
		if a.SectorHistogram() != hist {
			t.Errorf("%s: cached histogram %v, recomputed %v", a.Name, a.SectorHistogram(), hist)
		}
		if got := a.PageMax(); len(got) != len(pageMax) {
			t.Errorf("%s: page rollup length %d, want %d", a.Name, len(got), len(pageMax))
		} else {
			for p := range got {
				if got[p] != pageMax[p] {
					t.Errorf("%s: page %d rollup %d, want %d", a.Name, p, got[p], pageMax[p])
				}
			}
		}
		for cl, n := range hist {
			total[cl] += n
		}
	}
	if x.SectorHistogram() != total {
		t.Errorf("snapshot histogram %v, want %v", x.SectorHistogram(), total)
	}
	if x.ZeroEntries() != zeros {
		t.Errorf("snapshot zero entries %d, want %d", x.ZeroEntries(), zeros)
	}
	if x.Find("zeros") == nil || x.Find("no-such") != nil {
		t.Error("Find broken")
	}
	zf := x.Find("zeros")
	if zf.ZeroPageFrac() != 1 || zf.ZeroEntryFrac() != 1 {
		t.Errorf("all-zero allocation fracs = %.2f/%.2f, want 1/1",
			zf.ZeroPageFrac(), zf.ZeroEntryFrac())
	}
}

// ratioReference recomputes CompressionRatio the pre-index way: one Sizer
// pass, per-entry class rounding.
func ratioReference(s *memory.Snapshot, c compress.Codec, classes []int) float64 {
	var orig, comp int
	zeroClass := len(classes) > 0 && classes[0] == 0
	sz := compress.NewSizer(c)
	for _, a := range s.Allocations {
		for i := 0; i < a.Entries(); i++ {
			e := a.Entry(i)
			orig += EntryBytes
			size := sz.Bytes(e)
			if zeroClass && size <= 1 && allZero(e) {
				continue
			}
			comp += compress.RoundToClass(size, classes)
		}
	}
	if orig == 0 {
		return 1
	}
	if comp == 0 {
		return float64(orig)
	}
	return float64(orig) / float64(comp)
}

// TestCompressionRatioMatchesReference checks the index-backed ratio
// against the direct per-entry computation for both class sets and every
// registered codec.
func TestCompressionRatioMatchesReference(t *testing.T) {
	s := testSnapshot(EntriesPerPage+3, 23)
	for _, c := range compress.Registry() {
		x := Build(s, c)
		for _, classes := range [][]int{compress.OptimisticSizes, compress.SectorSizes} {
			got := x.CompressionRatio(classes)
			want := ratioReference(s, c, classes)
			if got != want {
				t.Errorf("%s classes %v: ratio %.6f, want %.6f", c.Name(), classes, got, want)
			}
		}
	}
}

// TestCompressionRatioBounds carries over the pre-refactor sanity bounds:
// all-zero snapshots compress enormously, random data not at all.
func TestCompressionRatioBounds(t *testing.T) {
	bpc := compress.NewBPC()
	zero := &memory.Snapshot{Allocations: []*memory.Allocation{memory.NewAllocation("z", 8192)}}
	if r := CompressionRatio(zero, bpc, compress.OptimisticSizes); r < 16 {
		t.Errorf("all-zero snapshot ratio %.1f, want very high", r)
	}
	rnd := &memory.Snapshot{Allocations: []*memory.Allocation{memory.NewAllocation("r", 8192)}}
	gen.Random{}.Fill(rnd.Allocations[0].Data, gen.NewRNG(1, 1))
	if r := CompressionRatio(rnd, bpc, compress.OptimisticSizes); r < 0.99 || r > 1.01 {
		t.Errorf("random snapshot ratio %.3f, want 1.0", r)
	}
}

// TestDegenerateSnapshots: empty and zero-entry snapshots must index and
// report a neutral ratio instead of dividing by zero (regression for the
// empty-snapshot 0-ratio bug in the pre-index CompressionRatio).
func TestDegenerateSnapshots(t *testing.T) {
	empty := &memory.Snapshot{}
	x := Build(empty, compress.NewBPC())
	if x.Entries() != 0 || len(x.Allocs) != 0 {
		t.Fatalf("empty snapshot index has %d entries", x.Entries())
	}
	if r := x.CompressionRatio(compress.OptimisticSizes); r != 1 {
		t.Errorf("empty snapshot ratio %.2f, want 1", r)
	}
	if h := x.SectorHistogram(); h != [5]int{} {
		t.Errorf("empty snapshot histogram %v", h)
	}
}

// TestSectorHistogramConvenience carries over the pre-refactor histogram
// test against the one-shot helper.
func TestSectorHistogramConvenience(t *testing.T) {
	a := memory.NewAllocation("m", 128*4)
	gen.Random{}.Fill(a.Data[:256], gen.NewRNG(2, 1)) // entries 0-1 raw, 2-3 zero
	h := SectorHistogram(a, compress.NewBPC())
	if h[4] != 2 || h[0] != 2 {
		t.Errorf("histogram %v, want 2 raw + 2 zero-page", h)
	}
}

// TestParallelBuildDeterministic drives the worker-pool path from many
// goroutines at once (meaningful under -race): concurrent builds of the
// same snapshot must agree with a fresh single build bit for bit.
// GOMAXPROCS is raised so the internal pool really spawns workers even on
// single-core CI runners.
func TestParallelBuildDeterministic(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	s := testSnapshot(4*EntriesPerPage, 41) // enough entries for many grains
	want := Build(s, compress.NewBPC())
	const builders = 4
	results := make([]*Index, builders)
	var wg sync.WaitGroup
	for b := 0; b < builders; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			results[b] = Build(s, compress.NewBPC())
		}(b)
	}
	wg.Wait()
	for b, got := range results {
		if got.SectorHistogram() != want.SectorHistogram() {
			t.Fatalf("builder %d: histogram %v, want %v", b, got.SectorHistogram(), want.SectorHistogram())
		}
		for ai, a := range got.Allocs {
			ref := want.Allocs[ai]
			for i := 0; i < a.Entries(); i++ {
				if a.SectorClass(i) != ref.SectorClass(i) || a.Size(i) != ref.Size(i) || a.Zero(i) != ref.Zero(i) {
					t.Fatalf("builder %d: %s entry %d diverges", b, a.Name, i)
				}
			}
		}
	}
}

// TestBuildRun indexes a multi-snapshot run.
func TestBuildRun(t *testing.T) {
	snaps := []*memory.Snapshot{testSnapshot(8, 1), testSnapshot(8, 2)}
	idx := BuildRun(snaps, compress.NewBPC())
	if len(idx) != 2 {
		t.Fatalf("want 2 indexes, got %d", len(idx))
	}
	for i, x := range idx {
		if x.Entries() != snaps[i].TotalEntries() {
			t.Errorf("index %d: %d entries, want %d", i, x.Entries(), snaps[i].TotalEntries())
		}
	}
}
