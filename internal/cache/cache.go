// Package cache provides a generic set-associative cache model with LRU
// replacement. It backs both the compression-metadata cache (Fig. 5,
// 4-way, 4 KB per L2 slice, 32 B lines) and the simulator's L2 slices.
package cache

import "fmt"

// Cache is a set-associative cache indexed by line address. The zero value
// is not usable; construct with New.
type Cache struct {
	sets      int
	ways      int
	lineBytes int
	// tags[set*ways+way] holds the line address; valid bits track fills.
	tags  []uint64
	valid []bool
	// lru[set*ways+way] holds a per-set logical timestamp.
	lru   []uint64
	clock uint64

	hits   uint64
	misses uint64
}

// New constructs a cache of the given total capacity in bytes. capacity must
// be a multiple of ways*lineBytes; sets are derived. It panics on invalid
// geometry, which is a configuration error.
func New(capacityBytes, ways, lineBytes int) *Cache {
	if capacityBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic(fmt.Sprintf("cache: invalid geometry %d/%d/%d", capacityBytes, ways, lineBytes))
	}
	lines := capacityBytes / lineBytes
	if lines == 0 || lines%ways != 0 {
		panic(fmt.Sprintf("cache: capacity %d not divisible into %d-way sets of %d B lines",
			capacityBytes, ways, lineBytes))
	}
	sets := lines / ways
	return &Cache{
		sets:      sets,
		ways:      ways,
		lineBytes: lineBytes,
		tags:      make([]uint64, sets*ways),
		valid:     make([]bool, sets*ways),
		lru:       make([]uint64, sets*ways),
	}
}

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Access looks up the line containing byte address addr, filling it on a
// miss (evicting the LRU way). It reports whether the access hit.
func (c *Cache) Access(addr uint64) bool {
	line := addr / uint64(c.lineBytes)
	set := int(line % uint64(c.sets))
	base := set * c.ways
	c.clock++
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			c.lru[base+w] = c.clock
			c.hits++
			return true
		}
	}
	// Miss: evict LRU (prefer invalid ways).
	victim := base
	for w := 0; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = base + w
			break
		}
		if c.lru[base+w] < c.lru[victim] {
			victim = base + w
		}
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.lru[victim] = c.clock
	c.misses++
	return false
}

// Probe reports whether addr's line is resident without updating any state.
func (c *Cache) Probe(addr uint64) bool {
	line := addr / uint64(c.lineBytes)
	set := int(line % uint64(c.sets))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// Invalidate removes addr's line if resident.
func (c *Cache) Invalidate(addr uint64) {
	line := addr / uint64(c.lineBytes)
	set := int(line % uint64(c.sets))
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == line {
			c.valid[base+w] = false
			return
		}
	}
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.hits, c.misses, c.clock = 0, 0, 0
}

// Hits returns the hit count since the last Reset.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the miss count since the last Reset.
func (c *Cache) Misses() uint64 { return c.misses }

// HitRate returns hits/(hits+misses), or 0 with no accesses.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
