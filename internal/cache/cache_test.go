package cache

import (
	"testing"
	"testing/quick"
)

func TestBasicHitMiss(t *testing.T) {
	c := New(1024, 4, 32) // 8 sets
	if c.Access(0) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0) {
		t.Fatal("second access should hit")
	}
	if !c.Access(31) {
		t.Fatal("same-line access should hit")
	}
	if c.Access(32) {
		t.Fatal("next line should miss")
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/2", c.Hits(), c.Misses())
	}
	if got := c.HitRate(); got != 0.5 {
		t.Fatalf("hit rate %.2f, want 0.5", got)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 1 set of 32 B lines: capacity 64 B.
	c := New(64, 2, 32)
	c.Access(0)  // A
	c.Access(32) // B
	c.Access(0)  // touch A: B is now LRU
	c.Access(64) // C evicts B
	if !c.Access(0) {
		t.Error("A should still be resident")
	}
	if c.Access(32) {
		t.Error("B should have been evicted")
	}
}

func TestProbeAndInvalidate(t *testing.T) {
	c := New(256, 2, 32)
	c.Access(100)
	if !c.Probe(100) {
		t.Error("Probe should find resident line")
	}
	h, m := c.Hits(), c.Misses()
	c.Probe(100)
	if c.Hits() != h || c.Misses() != m {
		t.Error("Probe must not update statistics")
	}
	c.Invalidate(100)
	if c.Probe(100) {
		t.Error("line should be gone after Invalidate")
	}
}

func TestReset(t *testing.T) {
	c := New(256, 2, 32)
	c.Access(0)
	c.Access(0)
	c.Reset()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Error("Reset should clear stats")
	}
	if c.Access(0) {
		t.Error("Reset should clear contents")
	}
}

func TestGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 4, 32) },
		func() { New(100, 3, 32) }, // 100/32=3 lines, not divisible by 3? it is; use truly invalid:
	} {
		func() {
			defer func() { _ = recover() }()
			f()
		}()
	}
	// Explicit invalid: fewer lines than ways.
	defer func() {
		if recover() == nil {
			t.Error("expected panic for capacity < one set")
		}
	}()
	New(32, 4, 32)
}

func TestWorkingSetBehaviour(t *testing.T) {
	// A working set within capacity must converge to ~100% hits; one far
	// beyond capacity must mostly miss under LRU with a cyclic scan.
	c := New(4096, 4, 32) // 128 lines
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 64*32; a += 32 {
			c.Access(a)
		}
	}
	if c.HitRate() < 0.70 {
		t.Errorf("small working set hit rate %.2f, want > 0.70", c.HitRate())
	}
	c.Reset()
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 1024*32; a += 32 {
			c.Access(a)
		}
	}
	if c.HitRate() > 0.10 {
		t.Errorf("thrashing scan hit rate %.2f, want ~0", c.HitRate())
	}
}

func TestQuickHitAfterAccess(t *testing.T) {
	// Property: immediately re-accessing any address hits.
	c := New(8192, 4, 32)
	f := func(addr uint64) bool {
		addr %= 1 << 40
		c.Access(addr)
		return c.Access(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
