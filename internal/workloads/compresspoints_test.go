package workloads

import (
	"math"
	"testing"

	"buddy/internal/compress"
)

func TestCompressPointPicksMeanRatio(t *testing.T) {
	// 355.seismic's ratio decays monotonically over the run, so its
	// CompressPoint must be an interior snapshot, not an endpoint.
	b, err := ByName("355.seismic")
	if err != nil {
		t.Fatal(err)
	}
	snaps := GenerateRun(b, testScale)
	idx, ratios := CompressPoint(snaps, compress.NewBPC())
	if len(ratios) != Snapshots {
		t.Fatalf("want %d ratios, got %d", Snapshots, len(ratios))
	}
	if idx == 0 || idx == Snapshots-1 {
		t.Errorf("decaying-ratio benchmark should pick an interior snapshot, got %d (ratios %v)", idx, ratios)
	}
	// The chosen snapshot is the closest to the mean by construction.
	var mean float64
	for _, r := range ratios {
		mean += r
	}
	mean /= float64(len(ratios))
	for i, r := range ratios {
		if math.Abs(r-mean) < math.Abs(ratios[idx]-mean)-1e-12 {
			t.Errorf("snapshot %d (%.3f) is closer to mean %.3f than chosen %d (%.3f)",
				i, r, mean, idx, ratios[idx])
		}
	}
}

func TestCompressPointStableBenchmark(t *testing.T) {
	// A benchmark with a flat ratio can pick any snapshot; the function
	// must still return a valid index and consistent ratios.
	b, err := ByName("356.sp")
	if err != nil {
		t.Fatal(err)
	}
	snaps := GenerateRun(b, testScale)
	idx, ratios := CompressPoint(snaps, compress.NewBPC())
	if idx < 0 || idx >= len(snaps) {
		t.Fatalf("index %d out of range", idx)
	}
	for _, r := range ratios {
		if math.Abs(r-ratios[0]) > 0.2 {
			t.Errorf("356.sp should be temporally stable, ratios %v", ratios)
		}
	}
}

func TestRepresentativeSnapshot(t *testing.T) {
	b, err := ByName("351.palm")
	if err != nil {
		t.Fatal(err)
	}
	s := RepresentativeSnapshot(b, testScale, compress.NewBPC())
	if s == nil || len(s.Allocations) != len(b.Regions) {
		t.Fatal("representative snapshot malformed")
	}
}

func TestCompressPointEmpty(t *testing.T) {
	idx, ratios := CompressPoint(nil, compress.NewBPC())
	if idx != 0 || ratios != nil {
		t.Error("empty input should return zero values")
	}
}
