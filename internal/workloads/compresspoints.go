package workloads

import (
	"math"

	"buddy/internal/analysis"
	"buddy/internal/compress"
	"buddy/internal/memory"
)

// CompressPoint implements the trace-point selection methodology the paper
// uses for its performance traces (§4.1, citing CompressPoints [48]): each
// benchmark's timing trace is taken "at a point in execution that exhibits
// the average compression ratio for that entire benchmark execution".
// Given a run's snapshots, it returns the index of the snapshot whose
// compression ratio is closest to the run's mean ratio, plus the ratios for
// reporting. Each snapshot is indexed once (see internal/analysis) rather
// than re-encoded per statistic.
func CompressPoint(snaps []*memory.Snapshot, c compress.Codec) (index int, ratios []float64) {
	if len(snaps) == 0 {
		return 0, nil
	}
	var sum float64
	for _, s := range snaps {
		r := analysis.CompressionRatio(s, c, compress.OptimisticSizes)
		ratios = append(ratios, r)
		sum += r
	}
	mean := sum / float64(len(ratios))
	best := math.Inf(1)
	for i, r := range ratios {
		if d := math.Abs(r - mean); d < best {
			best = d
			index = i
		}
	}
	return index, ratios
}

// RepresentativeSnapshot generates benchmark b's run and returns its
// CompressPoint snapshot — the dump the performance studies should build
// their data models from.
func RepresentativeSnapshot(b Benchmark, scale int, c compress.Codec) *memory.Snapshot {
	snaps := GenerateRun(b, scale)
	idx, _ := CompressPoint(snaps, c)
	return snaps[idx]
}
