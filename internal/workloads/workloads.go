// Package workloads defines the sixteen benchmarks of the paper's Tab. 1 —
// eight SpecAccel and two DOE FastForward HPC applications plus six deep
// learning training workloads — as synthetic memory-content models.
//
// The paper intercepts cudaMalloc/free on real runs and takes ten memory
// dumps per benchmark (§3.1). Those dumps are unavailable, so each benchmark
// here is a set of allocations ("regions") with a data-class generator, a
// footprint share, and a temporal-evolution rule. Generators synthesize real
// bytes that are then compressed with the real BPC codec, so compression
// ratios, sector histograms, spatial heat-maps and buddy-overflow statistics
// all emerge from actual data rather than being asserted.
//
// Calibration targets taken from the paper:
//   - Fig. 3 optimistic ratios: GMEAN 2.51 (HPC) / 1.85 (DL); 355.seismic
//     starts mostly-zero and asymptotes to ~2x; 354.cg and 370.bt are
//     nearly incompressible; 352.ep and VGG16 have large zero regions.
//   - Fig. 6 spatial patterns: HPC homogeneous, FF_HPGMG striped (arrays of
//     heterogeneous structs), DL salt-and-pepper mixed.
//   - Fig. 8: DL per-entry compressibility churns while aggregate stays
//     constant (framework memory pools reuse regions for many purposes).
package workloads

import (
	"fmt"

	"buddy/internal/gen"
	"buddy/internal/memory"
	"buddy/internal/trace"
)

// Suite labels a benchmark's suite for per-suite aggregation (GMEAN_HPC vs
// GMEAN_DL in the paper's figures).
type Suite int

// Suite values.
const (
	HPC Suite = iota
	DL
)

// String implements fmt.Stringer.
func (s Suite) String() string {
	if s == DL {
		return "DL"
	}
	return "HPC"
}

// Snapshots is the number of memory dumps per benchmark run (§3.1: "divide
// the entire runtime of the workload into 10 regions").
const Snapshots = 10

// DefaultScale shrinks the Tab. 1 footprints for synthesis: statistics are
// per-entry ratios and scale-free; the scale only controls sample counts.
const DefaultScale = 1024

// Region is one cudaMalloc-style allocation inside a benchmark.
type Region struct {
	// Name of the allocation.
	Name string
	// Frac is the share of the benchmark footprint this region occupies.
	Frac float64
	// Gen returns the data generator for snapshot t (0..Snapshots-1),
	// letting contents evolve over the run (e.g. 355.seismic's fill-in).
	Gen func(t int) gen.Generator
	// Dynamic regions are re-synthesized with a snapshot-dependent seed:
	// per-entry contents churn between snapshots while the distribution
	// stays fixed (DL framework pool reuse, §3.1 "frequent compressibility
	// changes for individual memory entries").
	Dynamic bool
}

// Benchmark is one row of Tab. 1 plus the access-behaviour spec that drives
// the performance simulator.
type Benchmark struct {
	// Name as printed in the paper (e.g. "351.palm").
	Name string
	// Suite is HPC or DL.
	Suite Suite
	// Footprint is the true allocated size from Tab. 1, in bytes.
	Footprint int64
	// Regions describe the allocations; Frac values sum to 1.
	Regions []Region
	// Trace characterizes the benchmark's memory access behaviour.
	Trace trace.Spec
}

func static(g gen.Generator) func(int) gen.Generator {
	return func(int) gen.Generator { return g }
}

const (
	gb = 1 << 30
	mb = 1 << 20
)

// gbytes and mbytes convert the fractional Tab. 1 footprints to bytes.
func gbytes(x float64) int64 { return int64(x * gb) }
func mbytes(x float64) int64 { return int64(x * mb) }

// Table1 returns the sixteen benchmarks of the paper's Tab. 1.
func Table1() []Benchmark {
	return []Benchmark{
		palm(), ep(), cg(), seismic(), sp(), csp(), ilbdc(), bt(),
		hpgmg(), lulesh(),
		biglstm(), alexnet(), inception(), squeezenet(), vgg16(), resnet50(),
	}
}

// HPCBenchmarks returns only the HPC subset.
func HPCBenchmarks() []Benchmark {
	var out []Benchmark
	for _, b := range Table1() {
		if b.Suite == HPC {
			out = append(out, b)
		}
	}
	return out
}

// DLBenchmarks returns only the DL subset.
func DLBenchmarks() []Benchmark {
	var out []Benchmark
	for _, b := range Table1() {
		if b.Suite == DL {
			out = append(out, b)
		}
	}
	return out
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range Table1() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// ---------------------------------------------------------------------------
// HPC: SpecAccel
// ---------------------------------------------------------------------------

// 351.palm: large-eddy simulation (weather). Homogeneous FP64 fields of
// moderate compressibility with some spectral scratch that does not
// compress. Its performance sensitivity comes from poor metadata locality
// (Fig. 5b), captured in the trace spec.
func palm() Benchmark {
	return Benchmark{
		Name: "351.palm", Suite: HPC, Footprint: gbytes(2.89),
		Regions: []Region{
			{Name: "velocity_u", Frac: 0.18, Gen: static(gen.Noisy64{NoiseBits: 8, HiStep: 1})},
			{Name: "velocity_v", Frac: 0.18, Gen: static(gen.Noisy64{NoiseBits: 8, HiStep: 1})},
			{Name: "velocity_w", Frac: 0.18, Gen: static(gen.Noisy64{NoiseBits: 8, HiStep: 1})},
			{Name: "scalars", Frac: 0.16, Gen: static(gen.Noisy32{NoiseBits: 4, SmoothStep: 2})},
			{Name: "topography", Frac: 0.10, Gen: static(gen.Ramp{Start: 64, Step: 8})},
			{Name: "fft_scratch", Frac: 0.08, Gen: static(gen.Random{})},
			{Name: "halo_buffers", Frac: 0.12, Gen: static(gen.Zeros{})},
		},
		Trace: trace.Spec{
			Name: "351.palm", MemRatio: 0.10, SectorsPerAccess: 4, Streaming: false,
			WorkingSetFrac: 0.9, WriteFrac: 0.3, ComputeIntensity: 6, Locality: 0.10, PageRun: 0.25, Occupancy: 0.25,
		},
	}
}

// 352.ep: embarrassingly parallel random-number statistics; most of the
// footprint is result tables that stay near zero — the benchmark class the
// zero-page (16x) optimization targets (§3.4).
func ep() Benchmark {
	return Benchmark{
		Name: "352.ep", Suite: HPC, Footprint: gbytes(2.75),
		Regions: []Region{
			{Name: "result_tables", Frac: 0.50, Gen: static(gen.Zeros{})},
			{Name: "rng_state", Frac: 0.20, Gen: static(gen.Noisy32{NoiseBits: 8, SmoothStep: 1})},
			{Name: "accumulators", Frac: 0.30, Gen: static(gen.Blend{
				A:  gen.Noisy32{NoiseBits: 12, SmoothStep: 1}, // sporadic 2-sector entries
				B:  gen.Noisy32{NoiseBits: 2, SmoothStep: 5},
				PA: 0.03,
			})},
		},
		Trace: trace.Spec{
			Name: "352.ep", MemRatio: 0.105, SectorsPerAccess: 4, Streaming: true,
			WorkingSetFrac: 0.8, WriteFrac: 0.4, ComputeIntensity: 14, Locality: 0.3,
		},
	}
}

// 354.cg: conjugate gradient on sparse matrices; values are effectively
// incompressible and index arrays only mildly compressible. Without
// per-allocation targets the paper could not compress it at all; with them
// it reaches ~1.1x (§3.4). Its scattered single-sector accesses make
// bandwidth-only compression hurt (§4.2).
func cg() Benchmark {
	return Benchmark{
		Name: "354.cg", Suite: HPC, Footprint: gbytes(1.23),
		Regions: []Region{
			{Name: "matrix_values", Frac: 0.55, Gen: static(gen.Random{})},
			{Name: "col_indices", Frac: 0.25, Gen: static(gen.Noisy32{NoiseBits: 19, SmoothStep: 4})},
			{Name: "vectors", Frac: 0.20, Gen: static(gen.Noisy64{NoiseBits: 21, HiStep: 1})},
		},
		Trace: trace.Spec{
			Name: "354.cg", MemRatio: 0.33, SectorsPerAccess: 1, Streaming: false,
			WorkingSetFrac: 0.85, WriteFrac: 0.1, ComputeIntensity: 3, Locality: 0.30, PageRun: 0.85,
		},
	}
}

// 355.seismic: wave propagation. Wavefields start zeroed and progressively
// fill with signal: the paper's extreme example of compressibility change
// over time, asymptoting to ~2x (§3.1).
func seismic() Benchmark {
	wavefield := func(t int) gen.Generator {
		zeroFrac := 0.92 - 0.092*float64(t)*10.0/float64(Snapshots-1)
		if zeroFrac < 0 {
			zeroFrac = 0
		}
		dense := gen.Blend{
			A:  gen.Noisy64{NoiseBits: 16, HiStep: 1}, // occasional 3-sector entries
			B:  gen.Noisy64{NoiseBits: 10, HiStep: 1},
			PA: 0.015,
		}
		return gen.Blend{A: gen.Zeros{}, B: dense, PA: zeroFrac}
	}
	return Benchmark{
		Name: "355.seismic", Suite: HPC, Footprint: gbytes(2.83),
		Regions: []Region{
			{Name: "wavefield_p", Frac: 0.35, Gen: wavefield, Dynamic: true},
			{Name: "wavefield_s", Frac: 0.35, Gen: wavefield, Dynamic: true},
			{Name: "velocity_model", Frac: 0.20, Gen: static(gen.Noisy64{NoiseBits: 9, HiStep: 1})},
			{Name: "source_terms", Frac: 0.10, Gen: static(gen.Noisy32{NoiseBits: 6, SmoothStep: 2})},
		},
		Trace: trace.Spec{
			Name: "355.seismic", MemRatio: 0.105, SectorsPerAccess: 4, Streaming: false,
			WorkingSetFrac: 1.0, WriteFrac: 0.35, ComputeIntensity: 4, Locality: 0.08, PageRun: 0.25, Occupancy: 0.35,
		},
	}
}

// 356.sp: scalar penta-diagonal solver on a structured grid; smooth FP64
// fields, highly homogeneous (Fig. 6).
func sp() Benchmark {
	return Benchmark{
		Name: "356.sp", Suite: HPC, Footprint: gbytes(2.83),
		Regions: []Region{
			{Name: "grid_fields", Frac: 0.60, Gen: static(gen.Noisy32{NoiseBits: 4, SmoothStep: 1})},
			{Name: "rhs", Frac: 0.25, Gen: static(gen.Noisy64{NoiseBits: 10, HiStep: 1})},
			{Name: "coefficients", Frac: 0.15, Gen: static(gen.Noisy32{NoiseBits: 2, SmoothStep: 3})},
		},
		Trace: trace.Spec{
			Name: "356.sp", MemRatio: 0.12, SectorsPerAccess: 4, Streaming: true,
			WorkingSetFrac: 1.0, WriteFrac: 0.3, ComputeIntensity: 5, Locality: 0.2,
		},
	}
}

// 357.csp: like 356.sp with a slightly noisier field mix.
func csp() Benchmark {
	return Benchmark{
		Name: "357.csp", Suite: HPC, Footprint: gbytes(1.44),
		Regions: []Region{
			{Name: "grid_fields", Frac: 0.55, Gen: static(gen.Noisy32{NoiseBits: 4, SmoothStep: 3})},
			{Name: "rhs", Frac: 0.30, Gen: static(gen.Noisy64{NoiseBits: 11, HiStep: 1})},
			{Name: "coefficients", Frac: 0.15, Gen: static(gen.Noisy32{NoiseBits: 4, SmoothStep: 2})},
		},
		Trace: trace.Spec{
			Name: "357.csp", MemRatio: 0.12, SectorsPerAccess: 4, Streaming: true,
			WorkingSetFrac: 1.0, WriteFrac: 0.3, ComputeIntensity: 5, Locality: 0.2,
		},
	}
}

// 360.ilbdc: lattice-Boltzmann flow with indirect addressing; distribution
// functions compress ~2x but the access pattern is random single-sector,
// which makes bandwidth compression counter-productive (§4.2).
func ilbdc() Benchmark {
	return Benchmark{
		Name: "360.ilbdc", Suite: HPC, Footprint: gbytes(1.94),
		Regions: []Region{
			{Name: "pdf_arrays", Frac: 0.80, Gen: static(gen.Noisy64{NoiseBits: 10, HiStep: 1})},
			{Name: "adjacency", Frac: 0.10, Gen: static(gen.Noisy32{NoiseBits: 18, SmoothStep: 8})},
			{Name: "geometry_mask", Frac: 0.10, Gen: static(gen.Zeros{})},
		},
		Trace: trace.Spec{
			Name: "360.ilbdc", MemRatio: 0.25, SectorsPerAccess: 1, Streaming: false,
			WorkingSetFrac: 0.95, WriteFrac: 0.45, ComputeIntensity: 2, Locality: 0.25, PageRun: 0.90,
		},
	}
}

// 370.bt: block-tridiagonal solver; tiny footprint (1.21 MB in Tab. 1) and
// mostly incompressible blocks — compressed only ~1.3x even with
// per-allocation targets (§3.4).
func bt() Benchmark {
	return Benchmark{
		Name: "370.bt", Suite: HPC, Footprint: mbytes(1.21),
		Regions: []Region{
			{Name: "block_matrices", Frac: 0.60, Gen: static(gen.Random{})},
			{Name: "grid", Frac: 0.40, Gen: static(gen.Noisy64{NoiseBits: 8, HiStep: 1})},
		},
		Trace: trace.Spec{
			Name: "370.bt", MemRatio: 0.12, SectorsPerAccess: 4, Streaming: true,
			WorkingSetFrac: 1.0, WriteFrac: 0.3, ComputeIntensity: 6, Locality: 0.4,
		},
	}
}

// ---------------------------------------------------------------------------
// HPC: DOE FastForward
// ---------------------------------------------------------------------------

// FF_HPGMG: geometric multigrid with arrays of heterogeneous structs,
// producing the striped compressibility of Fig. 6. Capturing its best ratio
// needs a Buddy Threshold above 80% (§3.4), so the final design deliberately
// leaves most of it uncompressed. It also natively copies from host memory
// (§4.2), making it link-bandwidth sensitive even without compression.
func hpgmg() Benchmark {
	striped := gen.Stripe{
		A:             gen.Ramp{Start: 1 << 20, Step: 16},
		B:             gen.Random{},
		PeriodEntries: 8,
		AEntries:      4,
	}
	return Benchmark{
		Name: "FF_HPGMG", Suite: HPC, Footprint: gbytes(2.32),
		Regions: []Region{
			{Name: "level_structs", Frac: 0.75, Gen: static(striped)},
			{Name: "boundary", Frac: 0.10, Gen: static(gen.Zeros{})},
			{Name: "restriction_tmp", Frac: 0.15, Gen: static(gen.Noisy64{NoiseBits: 8, HiStep: 1})},
		},
		Trace: trace.Spec{
			Name: "FF_HPGMG", MemRatio: 0.115, SectorsPerAccess: 4, Streaming: true,
			WorkingSetFrac: 0.9, WriteFrac: 0.3, HostFrac: 0.10, ComputeIntensity: 5, Locality: 0.25,
		},
	}
}

// FF_Lulesh: Lagrangian shock hydrodynamics; smooth mesh fields with an
// indirection layer. Latency-sensitive: the decompression latency on the
// critical path visibly hurts it under bandwidth compression (§4.2).
func lulesh() Benchmark {
	return Benchmark{
		Name: "FF_Lulesh", Suite: HPC, Footprint: gbytes(1.59),
		Regions: []Region{
			{Name: "node_coords", Frac: 0.45, Gen: static(gen.Noisy64{NoiseBits: 6, HiStep: 1})},
			{Name: "element_fields", Frac: 0.35, Gen: static(gen.Noisy32{NoiseBits: 4, SmoothStep: 1})},
			{Name: "connectivity", Frac: 0.20, Gen: static(gen.Noisy32{NoiseBits: 16, SmoothStep: 6})},
		},
		Trace: trace.Spec{
			Name: "FF_Lulesh", MemRatio: 0.15, SectorsPerAccess: 4, Streaming: true,
			WorkingSetFrac: 1.0, WriteFrac: 0.3, ComputeIntensity: 3, Locality: 0.55, Occupancy: 0.5,
		},
	}
}

// ---------------------------------------------------------------------------
// DL training workloads (Caffe/ImageNet in the paper)
// ---------------------------------------------------------------------------

// dlActivations models DL activation/feature-map pools as observed at
// 128 B granularity: a zeroFrac share of entries is entirely zero (inactive
// channels, pool padding, framework-pool slack) while the dense remainder
// mixes effectively-half-precision values (16 quantized mantissa bits, two
// sectors compressed) with full-precision values (8 quantized bits, three
// sectors). This yields the salt-and-pepper heat-maps of Fig. 6 and DL's
// characteristic entry-level churn (Fig. 8) when marked Dynamic.
func dlActivations(zeroFrac float64) func(int) gen.Generator {
	dense := gen.Blend{
		A:  gen.Weights32{Sigma: 1, QuantBits: 16},
		B:  gen.Weights32{Sigma: 1},
		PA: 0.5,
	}
	return static(gen.Blend{A: gen.Zeros{}, B: dense, PA: zeroFrac})
}

// BigLSTM: 2-layer, 8192-wide LSTM with 1024-d projections (§4.1).
// Recurrent weight matrices dominate; gradients and Adam state are noisy.
func biglstm() Benchmark {
	return Benchmark{
		Name: "BigLSTM", Suite: DL, Footprint: gbytes(2.71),
		Regions: []Region{
			{Name: "embedding", Frac: 0.30, Gen: static(gen.Weights32{Sigma: 0.05, QuantBits: 16})},
			{Name: "lstm_weights", Frac: 0.30, Gen: static(gen.Weights32{Sigma: 0.05, QuantBits: 8})},
			{Name: "activations", Frac: 0.25, Gen: dlActivations(0.5), Dynamic: true},
			{Name: "optimizer_state", Frac: 0.15, Gen: static(gen.Random{})},
		},
		Trace: trace.Spec{
			Name: "BigLSTM", MemRatio: 0.145, SectorsPerAccess: 4, Streaming: true,
			WorkingSetFrac: 0.9, WriteFrac: 0.35, ComputeIntensity: 4, Locality: 0.3,
		},
	}
}

// AlexNet: three large fully-connected layers dominate the footprint; the
// compressibility mix is scattered (Fig. 6), giving the highest DL
// buddy-access rate (~5.4% of accesses, §4.2).
func alexnet() Benchmark {
	return Benchmark{
		Name: "AlexNet", Suite: DL, Footprint: gbytes(8.85),
		Regions: []Region{
			{Name: "fc_weights", Frac: 0.35, Gen: static(gen.Weights32{Sigma: 0.01, QuantBits: 12})},
			{Name: "conv_weights", Frac: 0.10, Gen: static(gen.Weights32{Sigma: 0.02, QuantBits: 8})},
			{Name: "activations", Frac: 0.30, Gen: dlActivations(0.45), Dynamic: true},
			{Name: "gradients", Frac: 0.15, Gen: static(gen.Weights32{Sigma: 0.001, QuantBits: 8}), Dynamic: true},
			{Name: "workspace", Frac: 0.10, Gen: static(gen.Blend{A: gen.Zeros{}, B: gen.Random{}, PA: 0.5}), Dynamic: true},
		},
		Trace: trace.Spec{
			Name: "AlexNet", MemRatio: 0.145, SectorsPerAccess: 4, Streaming: true,
			WorkingSetFrac: 0.95, WriteFrac: 0.35, ComputeIntensity: 5, Locality: 0.3,
		},
	}
}

// Inception v2: mostly convolutional; batch-norm keeps activations dense
// but small-valued.
func inception() Benchmark {
	return Benchmark{
		Name: "Inception_V2", Suite: DL, Footprint: gbytes(3.21),
		Regions: []Region{
			{Name: "conv_weights", Frac: 0.25, Gen: static(gen.Weights32{Sigma: 0.03, QuantBits: 12})},
			{Name: "activations", Frac: 0.45, Gen: dlActivations(0.5), Dynamic: true},
			{Name: "gradients", Frac: 0.20, Gen: static(gen.Weights32{Sigma: 0.005, QuantBits: 8}), Dynamic: true},
			{Name: "workspace", Frac: 0.10, Gen: static(gen.Blend{A: gen.Zeros{}, B: gen.Random{}, PA: 0.6}), Dynamic: true},
		},
		Trace: trace.Spec{
			Name: "Inception_V2", MemRatio: 0.145, SectorsPerAccess: 4, Streaming: true,
			WorkingSetFrac: 0.95, WriteFrac: 0.35, ComputeIntensity: 5, Locality: 0.3,
		},
	}
}

// SqueezeNet v1.1: activation-dominated; the paper's Fig. 8 uses it to show
// per-entry churn with a constant aggregate ratio (1.49x in their final
// design).
func squeezenet() Benchmark {
	return Benchmark{
		Name: "SqueezeNet", Suite: DL, Footprint: gbytes(2.03),
		Regions: []Region{
			{Name: "weights", Frac: 0.15, Gen: static(gen.Weights32{Sigma: 0.05})},
			{Name: "activations", Frac: 0.55, Gen: dlActivations(0.4), Dynamic: true},
			{Name: "gradients", Frac: 0.20, Gen: static(gen.Weights32{Sigma: 0.01, QuantBits: 8}), Dynamic: true},
			{Name: "pool_scratch", Frac: 0.10, Gen: static(gen.Random{}), Dynamic: true},
		},
		Trace: trace.Spec{
			Name: "SqueezeNet", MemRatio: 0.145, SectorsPerAccess: 4, Streaming: true,
			WorkingSetFrac: 0.9, WriteFrac: 0.35, ComputeIntensity: 5, Locality: 0.3,
		},
	}
}

// VGG16: enormous fully-connected weights plus large zero-padded buffers —
// the DL workload where the zero-page optimization pays off most (§3.4).
func vgg16() Benchmark {
	return Benchmark{
		Name: "VGG16", Suite: DL, Footprint: gbytes(11.08),
		Regions: []Region{
			{Name: "fc_weights", Frac: 0.30, Gen: static(gen.Weights32{Sigma: 0.01, QuantBits: 12})},
			{Name: "conv_weights", Frac: 0.10, Gen: static(gen.Weights32{Sigma: 0.02, QuantBits: 12})},
			{Name: "activations", Frac: 0.30, Gen: dlActivations(0.55), Dynamic: true},
			{Name: "zero_buffers", Frac: 0.20, Gen: static(gen.Zeros{})},
			{Name: "gradients", Frac: 0.10, Gen: static(gen.Weights32{Sigma: 0.002, QuantBits: 12}), Dynamic: true},
		},
		Trace: trace.Spec{
			Name: "VGG16", MemRatio: 0.145, SectorsPerAccess: 4, Streaming: true,
			WorkingSetFrac: 0.95, WriteFrac: 0.35, ComputeIntensity: 6, Locality: 0.3,
		},
	}
}

// ResNet50: mixed compressibility (Fig. 6); Fig. 8's second subject with a
// constant aggregate ratio (1.64x) under heavy per-entry churn.
func resnet50() Benchmark {
	return Benchmark{
		Name: "ResNet50", Suite: DL, Footprint: gbytes(4.50),
		Regions: []Region{
			{Name: "conv_weights", Frac: 0.25, Gen: static(gen.Weights32{Sigma: 0.03, QuantBits: 12})},
			{Name: "activations", Frac: 0.40, Gen: dlActivations(0.5), Dynamic: true},
			{Name: "gradients", Frac: 0.20, Gen: static(gen.Weights32{Sigma: 0.004, QuantBits: 8}), Dynamic: true},
			{Name: "bn_stats", Frac: 0.05, Gen: static(gen.Noisy32{NoiseBits: 8, SmoothStep: 0})},
			{Name: "workspace", Frac: 0.10, Gen: static(gen.Blend{A: gen.Zeros{}, B: gen.Random{}, PA: 0.4}), Dynamic: true},
		},
		Trace: trace.Spec{
			Name: "ResNet50", MemRatio: 0.145, SectorsPerAccess: 4, Streaming: true,
			WorkingSetFrac: 0.95, WriteFrac: 0.35, ComputeIntensity: 5, Locality: 0.3,
		},
	}
}

// ---------------------------------------------------------------------------
// Snapshot synthesis
// ---------------------------------------------------------------------------

// seedFor derives a stable per-benchmark/region seed.
func seedFor(bench, region string) uint64 {
	// FNV-1a.
	h := uint64(14695981039346656037)
	for _, s := range []string{bench, "/", region} {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	return h
}

// GenerateSnapshot synthesizes memory dump t (0..Snapshots-1) of benchmark
// b at 1/scale of its true footprint. Static regions hold identical bytes
// across snapshots (stable weights and grids); Dynamic regions reshuffle
// per snapshot.
func GenerateSnapshot(b Benchmark, t int, scale int) *memory.Snapshot {
	if scale <= 0 {
		scale = DefaultScale
	}
	snap := &memory.Snapshot{Index: t}
	total := b.Footprint / int64(scale)
	if total < 64*memory.PageBytes {
		total = 64 * memory.PageBytes
	}
	for _, r := range b.Regions {
		size := int(float64(total) * r.Frac)
		if size < 2*memory.PageBytes {
			size = 2 * memory.PageBytes
		}
		a := memory.NewAllocation(r.Name, size)
		seed := seedFor(b.Name, r.Name)
		if r.Dynamic {
			seed += uint64(t) * 0x9E3779B97F4A7C15
		}
		r.Gen(t).Fill(a.Data, gen.NewRNG(seed, 7))
		snap.Allocations = append(snap.Allocations, a)
	}
	return snap
}

// GenerateRun synthesizes all ten snapshots of benchmark b.
func GenerateRun(b Benchmark, scale int) []*memory.Snapshot {
	out := make([]*memory.Snapshot, Snapshots)
	for t := 0; t < Snapshots; t++ {
		out[t] = GenerateSnapshot(b, t, scale)
	}
	return out
}
