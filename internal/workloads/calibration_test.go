package workloads

import (
	"testing"

	"buddy/internal/analysis"
	"buddy/internal/compress"
	"buddy/internal/stats"
)

// testScale keeps unit tests fast; benches use DefaultScale.
const testScale = 8192

// fig3Ratio computes the paper's Fig. 3 metric for one benchmark: the mean
// optimistic BPC compression ratio over its ten snapshots.
func fig3Ratio(tb testing.TB, b Benchmark) float64 {
	tb.Helper()
	bpc := compress.NewBPC()
	var ratios []float64
	for t := 0; t < Snapshots; t++ {
		s := GenerateSnapshot(b, t, testScale)
		if err := s.Validate(); err != nil {
			tb.Fatalf("%s snapshot %d: %v", b.Name, t, err)
		}
		ratios = append(ratios, analysis.CompressionRatio(s, bpc, compress.OptimisticSizes))
	}
	return stats.Mean(ratios)
}

// TestFig3Calibration checks the synthetic workloads reproduce the paper's
// Fig. 3 aggregate compressibility: GMEAN 2.51 for HPC and 1.85 for DL
// (tolerance band, shape-level agreement).
func TestFig3Calibration(t *testing.T) {
	var hpc, dl []float64
	for _, b := range Table1() {
		r := fig3Ratio(t, b)
		t.Logf("%-14s %-4s ratio=%.2f", b.Name, b.Suite, r)
		if b.Suite == HPC {
			hpc = append(hpc, r)
		} else {
			dl = append(dl, r)
		}
	}
	gh, gd := stats.GMean(hpc), stats.GMean(dl)
	t.Logf("GMEAN_HPC=%.2f (paper 2.51)  GMEAN_DL=%.2f (paper 1.85)", gh, gd)
	if gh < 2.0 || gh > 3.1 {
		t.Errorf("HPC gmean %.2f outside tolerance of paper's 2.51", gh)
	}
	if gd < 1.5 || gd > 2.2 {
		t.Errorf("DL gmean %.2f outside tolerance of paper's 1.85", gd)
	}
	if gh <= gd {
		t.Errorf("HPC (%.2f) should compress better than DL (%.2f)", gh, gd)
	}
}

// TestSeismicAsymptote verifies 355.seismic's signature behaviour: it starts
// mostly zero (very high ratio) and asymptotes toward ~2x (§3.1).
func TestSeismicAsymptote(t *testing.T) {
	b, err := ByName("355.seismic")
	if err != nil {
		t.Fatal(err)
	}
	bpc := compress.NewBPC()
	first := analysis.CompressionRatio(GenerateSnapshot(b, 0, testScale), bpc, compress.OptimisticSizes)
	last := analysis.CompressionRatio(GenerateSnapshot(b, Snapshots-1, testScale), bpc, compress.OptimisticSizes)
	if first < 2*last {
		t.Errorf("seismic should start far more compressible: first=%.2f last=%.2f", first, last)
	}
	if last < 1.5 || last > 3.0 {
		t.Errorf("seismic final ratio %.2f should be near 2x", last)
	}
}

// TestIncompressibleBenchmarks: 354.cg and 370.bt are nearly incompressible
// (§3.4: compressed only 1.1x and 1.3x with per-allocation targets).
func TestIncompressibleBenchmarks(t *testing.T) {
	for name, hi := range map[string]float64{"354.cg": 1.45, "370.bt": 1.6} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if r := fig3Ratio(t, b); r > hi {
			t.Errorf("%s ratio %.2f should be <= %.2f (nearly incompressible)", name, r, hi)
		}
	}
}

// TestStaticRegionsStable: static regions must hold identical bytes across
// snapshots; dynamic ones must differ.
func TestStaticRegionsStable(t *testing.T) {
	b, err := ByName("ResNet50")
	if err != nil {
		t.Fatal(err)
	}
	s0 := GenerateSnapshot(b, 0, testScale)
	s1 := GenerateSnapshot(b, 1, testScale)
	w0, w1 := s0.Find("conv_weights"), s1.Find("conv_weights")
	if w0 == nil || w1 == nil {
		t.Fatal("missing conv_weights")
	}
	if string(w0.Data) != string(w1.Data) {
		t.Error("static region conv_weights changed between snapshots")
	}
	a0, a1 := s0.Find("activations"), s1.Find("activations")
	if string(a0.Data) == string(a1.Data) {
		t.Error("dynamic region activations identical between snapshots")
	}
}

// TestDeterminism: the same (benchmark, snapshot, scale) must synthesize
// identical bytes on every call.
func TestDeterminism(t *testing.T) {
	b, err := ByName("351.palm")
	if err != nil {
		t.Fatal(err)
	}
	s1 := GenerateSnapshot(b, 3, testScale)
	s2 := GenerateSnapshot(b, 3, testScale)
	for i := range s1.Allocations {
		if string(s1.Allocations[i].Data) != string(s2.Allocations[i].Data) {
			t.Fatalf("allocation %s not deterministic", s1.Allocations[i].Name)
		}
	}
}

// TestTable1Inventory checks the suite composition and footprints of Tab. 1.
func TestTable1Inventory(t *testing.T) {
	bs := Table1()
	if len(bs) != 16 {
		t.Fatalf("want 16 benchmarks, got %d", len(bs))
	}
	var nHPC, nDL int
	for _, b := range bs {
		if b.Footprint <= 0 {
			t.Errorf("%s: non-positive footprint", b.Name)
		}
		var fsum float64
		for _, r := range b.Regions {
			fsum += r.Frac
		}
		if fsum < 0.99 || fsum > 1.01 {
			t.Errorf("%s: region fractions sum to %.3f", b.Name, fsum)
		}
		if b.Suite == HPC {
			nHPC++
		} else {
			nDL++
		}
	}
	if nHPC != 10 || nDL != 6 {
		t.Errorf("want 10 HPC + 6 DL, got %d + %d", nHPC, nDL)
	}
	if _, err := ByName("no-such"); err == nil {
		t.Error("ByName should fail for unknown benchmark")
	}
}

// TestHPGMGStriped: FF_HPGMG must show the striped pattern — roughly half
// its struct region incompressible, half highly compressible, so its
// unconstrained ("best achievable") ratio far exceeds what a 30% Buddy
// Threshold can capture (§3.4).
func TestHPGMGStriped(t *testing.T) {
	b, err := ByName("FF_HPGMG")
	if err != nil {
		t.Fatal(err)
	}
	s := GenerateSnapshot(b, 5, testScale)
	a := s.Find("level_structs")
	if a == nil {
		t.Fatal("missing level_structs")
	}
	h := analysis.SectorHistogram(a, compress.NewBPC())
	n := a.Entries()
	incompressible := float64(h[4]) / float64(n)
	compressible := float64(h[0]+h[1]) / float64(n)
	if incompressible < 0.3 || incompressible > 0.7 {
		t.Errorf("striped region incompressible frac = %.2f, want ~0.5", incompressible)
	}
	if compressible < 0.3 || compressible > 0.7 {
		t.Errorf("striped region compressible frac = %.2f, want ~0.5", compressible)
	}
}
