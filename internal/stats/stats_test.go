package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanGMean(t *testing.T) {
	if Mean(nil) != 0 || GMean(nil) != 0 {
		t.Error("empty inputs should return 0")
	}
	if !almostEq(Mean([]float64{1, 2, 3}), 2, 1e-12) {
		t.Error("mean broken")
	}
	if !almostEq(GMean([]float64{1, 4}), 2, 1e-12) {
		t.Error("gmean broken")
	}
	// GMean <= Mean (AM-GM) for positive inputs.
	f := func(a, b, c uint16) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		return GMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almostEq(Variance(xs), 4, 1e-12) {
		t.Errorf("variance = %f, want 4", Variance(xs))
	}
	if !almostEq(StdDev(xs), 2, 1e-12) {
		t.Errorf("stddev = %f, want 2", StdDev(xs))
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if r, err := Pearson(xs, []float64{2, 4, 6, 8}); err != nil || !almostEq(r, 1, 1e-12) {
		t.Errorf("perfect correlation: r=%f err=%v", r, err)
	}
	if r, _ := Pearson(xs, []float64{8, 6, 4, 2}); !almostEq(r, -1, 1e-12) {
		t.Errorf("perfect anticorrelation: r=%f", r)
	}
	if _, err := Pearson(xs, xs[:2]); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Error("single sample should error")
	}
}

func TestLinReg(t *testing.T) {
	a, b, err := LinReg([]float64{0, 1, 2}, []float64{1, 3, 5})
	if err != nil || !almostEq(a, 1, 1e-12) || !almostEq(b, 2, 1e-12) {
		t.Errorf("fit y=1+2x: a=%f b=%f err=%v", a, b, err)
	}
	if _, _, err := LinReg([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("zero x-variance should error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	for p, want := range map[float64]float64{0: 1, 50: 3, 100: 5, 25: 2} {
		if got, err := Percentile(xs, p); err != nil || !almostEq(got, want, 1e-12) {
			t.Errorf("P%.0f = %f, want %f (err %v)", p, got, want, err)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("empty percentile should error")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0.5, 3, 7, 11} {
		h.Add(v)
	}
	if h.Total() != 5 {
		t.Errorf("total = %d", h.Total())
	}
	// Bucket width 2: -1 clamps to 0, 0.5 -> 0, 3 -> 1, 7 -> 3, 11 clamps to 4.
	want := []uint64{2, 1, 0, 1, 1}
	for i, c := range want {
		if h.Counts[i] != c {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], c)
		}
	}
	if !almostEq(h.Fraction(0), 0.4, 1e-12) {
		t.Errorf("fraction = %f", h.Fraction(0))
	}
	if !almostEq(h.CumulativeFraction(4), 1, 1e-12) {
		t.Errorf("cumulative = %f", h.CumulativeFraction(4))
	}
}

func TestRatio(t *testing.T) {
	if Ratio(4, 2) != 2 || Ratio(1, 0) != 0 {
		t.Error("Ratio broken")
	}
}

func TestLogQuantile(t *testing.T) {
	if got := LogQuantile(nil, 0.5); got != 0 {
		t.Errorf("empty = %f, want 0", got)
	}
	// All mass in bucket 0 (samples exactly 0).
	if got := LogQuantile([]uint64{7}, 0.99); got != 0 {
		t.Errorf("zero bucket = %f, want 0", got)
	}
	// One sample with bits.Len64(x)==3, i.e. x in [4, 8): every quantile
	// interpolates within that bucket's range.
	counts := []uint64{0, 0, 0, 1}
	for _, q := range []float64{0.01, 0.5, 1} {
		if got := LogQuantile(counts, q); got < 4 || got > 8 {
			t.Errorf("q=%.2f = %f, want within [4, 8]", q, got)
		}
	}
	// 10 samples in [4,8), 10 in [8,16): the median sits at the bucket
	// boundary and q=0.75 lands mid-way through the upper bucket.
	counts = []uint64{0, 0, 0, 10, 10}
	if got := LogQuantile(counts, 0.5); !almostEq(got, 8, 1e-9) {
		t.Errorf("median = %f, want 8", got)
	}
	if got := LogQuantile(counts, 0.75); !almostEq(got, 12, 1e-9) {
		t.Errorf("q75 = %f, want 12", got)
	}
	// Quantiles are monotone in q, and out-of-range q clamps.
	prev := 0.0
	for _, q := range []float64{-1, 0, 0.25, 0.5, 0.75, 1, 2} {
		got := LogQuantile(counts, q)
		if got < prev {
			t.Errorf("q=%.2f = %f not monotone (prev %f)", q, got, prev)
		}
		prev = got
	}
	// Trailing empty buckets: q=1 reports the top non-empty bucket's upper
	// edge, not a phantom tail.
	if got := LogQuantile([]uint64{0, 0, 3, 0, 0}, 1); !almostEq(got, 4, 1e-9) {
		t.Errorf("q1 with trailing zeros = %f, want 4", got)
	}
}
