// Package stats provides the small statistical helpers used throughout the
// Buddy Compression reproduction: geometric means for compression-ratio
// aggregation, Pearson correlation for the simulator-validation study
// (Fig. 10), histograms for the profiler, and linear regression for the
// speed-comparison fit lines.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations that require at least one sample.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs. It returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GMean returns the geometric mean of xs. All inputs must be positive;
// non-positive values make the result NaN, mirroring the mathematical
// definition. The paper reports GMEAN_HPC and GMEAN_DL compression ratios
// with this aggregation.
func GMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns an error when the slices differ in length or hold fewer than
// two samples. A zero-variance input yields NaN.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// LinReg fits y = a + b*x by least squares and returns (a, b).
func LinReg(xs, ys []float64) (a, b float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, errors.New("stats: length mismatch")
	}
	if len(xs) < 2 {
		return 0, 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return 0, 0, errors.New("stats: zero variance in x")
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b, nil
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0], nil
	}
	if p >= 100 {
		return cp[len(cp)-1], nil
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo], nil
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac, nil
}

// Histogram counts values into fixed-width buckets over [min, max). Values
// outside the range are clamped into the first or last bucket. It is used by
// the profiler to histogram per-entry compressed sizes per allocation.
type Histogram struct {
	Min, Max float64
	Counts   []uint64
	total    uint64
}

// NewHistogram creates a histogram with n buckets spanning [min, max).
func NewHistogram(min, max float64, n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	if max <= min {
		max = min + 1
	}
	return &Histogram{Min: min, Max: max, Counts: make([]uint64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	idx := int((x - h.Min) / (h.Max - h.Min) * float64(n))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() uint64 { return h.total }

// Fraction returns the share of observations in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// CumulativeFraction returns the share of observations in buckets [0, i].
func (h *Histogram) CumulativeFraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	var c uint64
	for j := 0; j <= i && j < len(h.Counts); j++ {
		c += h.Counts[j]
	}
	return float64(c) / float64(h.total)
}

// Ratio returns a/b, guarding against division by zero (returns 0).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// LogQuantile returns the q-quantile (0 <= q <= 1) of a sample summarized
// by power-of-two log buckets: counts[b] holds the number of samples x
// with bits.Len64(x) == b — bucket 0 is exactly x == 0, bucket b >= 1
// covers [2^(b-1), 2^b). The estimate interpolates linearly within the
// selected bucket's range, so adjacent quantiles of a smooth distribution
// do not all snap to bucket boundaries. Returns 0 for an empty histogram.
//
// This is the read side of the serving layer's fixed-bucket latency
// histograms: recording is a single atomic increment on the hot path, and
// percentile math happens here, on snapshots.
func LogQuantile(counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the (fractional) number of samples at or below the result.
	rank := q * float64(total)
	var cum float64
	for b, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank > next {
			cum = next
			continue
		}
		if b == 0 {
			return 0
		}
		lo := math.Exp2(float64(b - 1))
		hi := math.Exp2(float64(b))
		frac := (rank - cum) / float64(c)
		return lo + frac*(hi-lo)
	}
	// Fell off the end (rank == total with trailing zero buckets).
	for b := len(counts) - 1; b >= 0; b-- {
		if counts[b] != 0 {
			if b == 0 {
				return 0
			}
			return math.Exp2(float64(b))
		}
	}
	return 0
}
