// Package compress implements the hardware memory-compression algorithms the
// paper evaluates (§2.4): Bit-Plane Compression (BPC, the chosen algorithm),
// plus the baselines it was compared against — Base-Delta-Immediate (BDI),
// Frequent Pattern Compression (FPC), C-PACK and trivial zero compression.
//
// All compressors operate on one 128-byte memory-entry, the compression
// granularity Buddy Compression adopts (one GPU cache block). Compression is
// bit-exact: the codec produces the real encoded bit stream and decoding
// restores the original 128 bytes, so the rest of the system can store and
// round-trip genuine compressed bytes through the modeled memories.
//
// The API is Codec: a single-pass, allocation-free surface.
// AppendCompressed encodes an entry once, appending the framed stream to a
// caller-provided buffer and returning the exact payload bit count — the
// quantity the Buddy metadata needs — from that same encode. DecompressInto
// decodes straight into caller memory. (The allocate-per-call Compressor
// methods CompressedBits/Compress/Decompress that predate Codec are gone;
// size-only sweeps use Sizer, snapshot studies use internal/analysis.)
package compress

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// EntryBytes is the paper's compression granularity: a 128 B memory-entry,
// matching the GPU cache-block size (Tab. 2: 128 B lines).
const EntryBytes = 128

// SectorBytes is the GPU memory access granularity (GDDR/HBM2 32 B sectors,
// §3.2); Buddy Compression stripes entries across sectors of this size.
const SectorBytes = 32

// SectorsPerEntry is EntryBytes / SectorBytes = 4.
const SectorsPerEntry = EntryBytes / SectorBytes

// MaxStreamBytes bounds the framed stream any built-in codec appends for one
// entry. The worst case is FVC's fully-missing dictionary stream: 3 bits of
// count, 8 x 32 dictionary bits, 32 x 33 word bits plus the 1-bit framing =
// 1316 bits = 165 bytes; the bound leaves headroom for future codecs.
// Scratch buffers of this capacity make AppendCompressed allocation-free.
const MaxStreamBytes = 192

// ErrCorrupt is returned when an encoded stream is malformed or truncated.
var ErrCorrupt = errors.New("compress: corrupt stream")

// A Codec compresses and decompresses single 128 B memory-entries in one
// pass, without allocating.
//
// Implementations must be safe for concurrent use: the driver's bulk path
// fans a single codec out across many goroutines (one WriteAt can invoke
// AppendCompressed from GOMAXPROCS workers at once). Stateless codecs — all
// built-ins here — satisfy this trivially; keep any per-call state on the
// stack or in the caller-provided dst, never in receiver fields.
type Codec interface {
	// Name identifies the algorithm (e.g. "bpc").
	Name() string
	// AppendCompressed encodes entry once, appends the framed stream to dst
	// (which may be nil or a reused scratch buffer; the stream starts at a
	// byte boundary after dst's existing contents) and returns the extended
	// slice together with the exact payload size in bits. The bit count
	// excludes the software model's stream framing and is capped at
	// EntryBytes*8 — the value the 4-bit Buddy metadata is derived from.
	// entry must be EntryBytes long.
	AppendCompressed(dst, entry []byte) (stream []byte, bits int)
	// DecompressInto decodes a stream produced by AppendCompressed into
	// dst, which must be EntryBytes long. On error dst's contents are
	// unspecified.
	DecompressInto(dst, comp []byte) error
}

// scratchPool recycles encode scratch buffers for the one-shot helpers;
// hot paths hold their own buffers instead.
var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, MaxStreamBytes)
		return &b
	},
}

// oneShotBits returns the exact payload bit count of entry under c with
// one encode into pooled scratch. Prefer a Sizer in loops.
func oneShotBits(c Codec, entry []byte) int {
	bp := scratchPool.Get().(*[]byte)
	stream, bits := c.AppendCompressed((*bp)[:0], entry)
	*bp = stream[:0]
	scratchPool.Put(bp)
	return bits
}

// rawFallback rewinds w to the framing position at byte offset start and
// stores entry uncompressed behind a 1 framing bit — the shared tail of
// every codec's AppendCompressed when the encode reaches the raw size.
// (Each codec inlines the framing rather than passing its encoder as a
// function value so the BitWriter stays on the caller's stack: escape
// analysis cannot see through an indirect call, and the whole point of the
// single-pass API is a zero-allocation steady state.)
func rawFallback(w *BitWriter, start int, entry []byte) {
	w.Reset(w.Bytes()[:start])
	w.WriteBits(1, 1)
	w.WriteBytes(entry)
}

// decodeRawEntry reads dst's worth of raw bytes from r (the 1-framing-bit
// fallback payload shared by BPC, FPC, C-PACK, FVC and zero).
//
//buddy:hotpath
func decodeRawEntry(dst []byte, r *BitReader) error {
	r.ReadBytes(dst)
	if r.Overrun() {
		return ErrCorrupt
	}
	return nil
}

// A Sizer measures compressed entry sizes with exactly one encode per entry,
// reusing one scratch buffer across calls. It is the tool for profiling and
// heat-map sweeps that only need sizes; it is not safe for concurrent use —
// create one per goroutine.
type Sizer struct {
	c        Codec
	buf      []byte
	zeroBits int
}

// NewSizer returns a Sizer over codec c.
func NewSizer(c Codec) *Sizer {
	return &Sizer{c: c, buf: make([]byte, 0, MaxStreamBytes), zeroBits: ZeroEntryBits(c)}
}

// Bits returns the exact compressed payload size of entry in bits. All-zero
// entries take the one-probe fast path: sixteen word ORs instead of an
// encode (the dominant case for activation-like snapshots, per cDMA's
// 50-90% zero observation).
//
//buddy:hotpath
func (s *Sizer) Bits(entry []byte) int {
	if EntryAllZero(entry) {
		return s.zeroBits
	}
	return s.bitsEncoded(entry)
}

// bitsEncoded is Bits without the zero probe, for callers that already know
// the entry is non-zero.
//
//buddy:hotpath
func (s *Sizer) bitsEncoded(entry []byte) int {
	stream, bits := s.c.AppendCompressed(s.buf[:0], entry)
	s.buf = stream[:0]
	return bits
}

// ZeroBits returns the codec's all-zero-entry payload bit count without
// touching any data.
func (s *Sizer) ZeroBits() int { return s.zeroBits }

// Bytes returns the compressed size rounded up to whole bytes.
func (s *Sizer) Bytes(entry []byte) int { return (s.Bits(entry) + 7) / 8 }

// Sectors returns the 32 B sector count of entry's compressed form — the
// quantity the 4-bit Buddy metadata stores.
func (s *Sizer) Sectors(entry []byte) int { return SectorsForBits(s.Bits(entry)) }

// OptimisticSizes are the eight compressed memory-entry sizes assumed by the
// paper's optimistic capacity study (Fig. 3): 0, 8, 16, 32, 64, 80, 96 and
// 128 bytes.
var OptimisticSizes = []int{0, 8, 16, 32, 64, 80, 96, 128}

// SectorSizes are the sizes available to the Buddy design proper: whole 32 B
// sectors (§3.2, Fig. 4). An entry stored in s sectors occupies 32*s bytes.
var SectorSizes = []int{32, 64, 96, 128}

// RoundToClass rounds a compressed byte size up to the smallest class in
// classes that can hold it. classes must be sorted ascending. If size exceeds
// every class the largest class is returned (the entry is stored raw).
func RoundToClass(size int, classes []int) int {
	for _, c := range classes {
		if size <= c {
			return c
		}
	}
	return classes[len(classes)-1]
}

// SectorsForBits returns how many 32 B sectors a compressed payload of the
// given bit length occupies: the quantity the Buddy design stores in its
// 4-bit per-entry metadata. The result is in [0, 4]; 0 means the entry
// compresses into the zero-page budget (<= 8 B, §3.4 "Special Case For
// Mostly-Zero Allocations"). The zero-page class requires the payload plus
// the software model's 1-bit stream framing to fit 64 bits, so the boundary
// is 63 payload bits.
func SectorsForBits(bits int) int {
	if bits < ZeroPageBytes*8 {
		return 0
	}
	b := (bits + 7) / 8
	return (b + SectorBytes - 1) / SectorBytes
}

// SectorsNeeded returns the sector count of entry's compressed form under c.
// Prefer a Sizer (or AppendCompressed directly) in loops: this convenience
// re-encodes the entry each call.
func SectorsNeeded(c Codec, entry []byte) int {
	return SectorsForBits(oneShotBits(c, entry))
}

// ZeroPageBytes is the per-entry device budget of the 16x mostly-zero target
// ratio: 8 B kept out of each 128 B (§3.4).
const ZeroPageBytes = 8

// Ratio returns the compression ratio EntryBytes/size for a rounded size,
// treating 0 as the metadata-only class (counted as EntryBytes/1 to avoid
// infinities in aggregate statistics would distort; the paper's Fig. 3
// assumes a 0 B class, so we return the ratio against 1 byte there).
func Ratio(size int) float64 {
	if size <= 0 {
		return float64(EntryBytes)
	}
	return float64(EntryBytes) / float64(size)
}

// checkEntry panics if entry is not exactly EntryBytes long; compressors use
// it to enforce their contract early.
func checkEntry(entry []byte) {
	if len(entry) != EntryBytes {
		panic(fmt.Sprintf("compress: entry must be %d bytes, got %d", EntryBytes, len(entry)))
	}
}

// checkDst panics if a DecompressInto destination is not exactly EntryBytes
// long; a wrong-size destination is a programming error, not a stream error.
func checkDst(dst []byte) {
	if len(dst) != EntryBytes {
		panic(fmt.Sprintf("compress: dst must be %d bytes, got %d", EntryBytes, len(dst)))
	}
}

// Registry returns the full set of implemented codecs, used by the
// algorithm-comparison ablation bench (§2.4 "After comparing several
// algorithms ... we choose BPC": the comparison set spans BDI, FPC, FVC,
// C-PACK and BPC).
func Registry() []Codec {
	return []Codec{NewBPC(), NewBDI(), NewFPC(), NewFVC(), NewCPack(), Zero{}}
}

// ByName returns the registered codec with the given name — the lookup
// behind name-based selection in command-line flags.
func ByName(name string) (Codec, error) {
	names := make([]string, 0, 6)
	for _, c := range Registry() {
		if c.Name() == name {
			return c, nil
		}
		names = append(names, c.Name())
	}
	return nil, fmt.Errorf("compress: unknown codec %q (have %s)", name, strings.Join(names, ", "))
}
