// Package compress implements the hardware memory-compression algorithms the
// paper evaluates (§2.4): Bit-Plane Compression (BPC, the chosen algorithm),
// plus the baselines it was compared against — Base-Delta-Immediate (BDI),
// Frequent Pattern Compression (FPC), C-PACK, and trivial zero compression.
//
// All compressors operate on one 128-byte memory-entry, the compression
// granularity Buddy Compression adopts (one GPU cache block). Compression is
// bit-exact: Compress produces the real encoded bit stream and Decompress
// restores the original 128 bytes, so the rest of the system can store and
// round-trip genuine compressed bytes through the modeled memories.
package compress

import (
	"errors"
	"fmt"
)

// EntryBytes is the paper's compression granularity: a 128 B memory-entry,
// matching the GPU cache-block size (Tab. 2: 128 B lines).
const EntryBytes = 128

// SectorBytes is the GPU memory access granularity (GDDR/HBM2 32 B sectors,
// §3.2); Buddy Compression stripes entries across sectors of this size.
const SectorBytes = 32

// SectorsPerEntry is EntryBytes / SectorBytes = 4.
const SectorsPerEntry = EntryBytes / SectorBytes

// ErrCorrupt is returned by Decompress when the encoded stream is malformed.
var ErrCorrupt = errors.New("compress: corrupt stream")

// A Compressor compresses and decompresses single 128 B memory-entries.
type Compressor interface {
	// Name identifies the algorithm (e.g. "bpc").
	Name() string
	// CompressedBits returns the exact size of the encoded entry in bits.
	// entry must be EntryBytes long.
	CompressedBits(entry []byte) int
	// Compress returns the encoded representation of entry. The result is
	// zero-padded to a whole number of bytes.
	Compress(entry []byte) []byte
	// Decompress decodes a stream produced by Compress back into 128 bytes.
	Decompress(comp []byte) ([]byte, error)
}

// OptimisticSizes are the eight compressed memory-entry sizes assumed by the
// paper's optimistic capacity study (Fig. 3): 0, 8, 16, 32, 64, 80, 96 and
// 128 bytes.
var OptimisticSizes = []int{0, 8, 16, 32, 64, 80, 96, 128}

// SectorSizes are the sizes available to the Buddy design proper: whole 32 B
// sectors (§3.2, Fig. 4). An entry stored in s sectors occupies 32*s bytes.
var SectorSizes = []int{32, 64, 96, 128}

// RoundToClass rounds a compressed byte size up to the smallest class in
// classes that can hold it. classes must be sorted ascending. If size exceeds
// every class the largest class is returned (the entry is stored raw).
func RoundToClass(size int, classes []int) int {
	for _, c := range classes {
		if size <= c {
			return c
		}
	}
	return classes[len(classes)-1]
}

// CompressedBytes returns the compressor's encoded size rounded up to whole
// bytes.
func CompressedBytes(c Compressor, entry []byte) int {
	return (c.CompressedBits(entry) + 7) / 8
}

// SectorsNeeded returns how many 32 B sectors the compressed form of entry
// occupies: the quantity the Buddy design stores in its 4-bit per-entry
// metadata. The result is in [0, 4]; 0 means the entry compresses into the
// zero-page budget (<= 8 B, §3.4 "Special Case For Mostly-Zero Allocations").
// The zero-page class requires the payload plus the software model's 1-bit
// stream framing to fit 64 bits, so the boundary is 63 payload bits.
func SectorsNeeded(c Compressor, entry []byte) int {
	bits := c.CompressedBits(entry)
	if bits < ZeroPageBytes*8 {
		return 0
	}
	b := (bits + 7) / 8
	return (b + SectorBytes - 1) / SectorBytes
}

// ZeroPageBytes is the per-entry device budget of the 16x mostly-zero target
// ratio: 8 B kept out of each 128 B (§3.4).
const ZeroPageBytes = 8

// Ratio returns the compression ratio EntryBytes/size for a rounded size,
// treating 0 as the metadata-only class (counted as EntryBytes/1 to avoid
// infinities in aggregate statistics would distort; the paper's Fig. 3
// assumes a 0 B class, so we return the ratio against 1 byte there).
func Ratio(size int) float64 {
	if size <= 0 {
		return float64(EntryBytes)
	}
	return float64(EntryBytes) / float64(size)
}

// checkEntry panics if entry is not exactly EntryBytes long; compressors use
// it to enforce their contract early.
func checkEntry(entry []byte) {
	if len(entry) != EntryBytes {
		panic(fmt.Sprintf("compress: entry must be %d bytes, got %d", EntryBytes, len(entry)))
	}
}

// Registry returns the full set of implemented compressors, used by the
// algorithm-comparison ablation bench (§2.4 "After comparing several
// algorithms ... we choose BPC": the comparison set spans BDI, FPC, FVC,
// C-PACK and BPC).
func Registry() []Compressor {
	return []Compressor{NewBPC(), NewBDI(), NewFPC(), NewFVC(), NewCPack(), Zero{}}
}
