package compress

import (
	"encoding/binary"
	"math/bits"
)

// BPC implements Bit-Plane Compression (Kim, Sullivan, Choukse, Erez — ISCA
// 2016), the algorithm Buddy Compression selects for its high ratios on the
// homogeneously-typed data that dominates GPU memory (§2.4, §3.1).
//
// A 128 B memory-entry is treated as 32 little-endian 32-bit words. The
// first word is the base symbol; the 31 deltas between consecutive words
// (33-bit signed values) are transposed into 33 bit-planes of 31 bits each
// (DBP), adjacent planes are XORed (DBX), and each DBX plane is run/pattern
// encoded with the prefix-free code below:
//
//	pattern                         code                       bits
//	all-zero DBX, run of 2..33      01 + 5-bit (run-2)            7
//	all-zero DBX, run of 1          001                           3
//	all-ones DBX                    00000                         5
//	DBX != 0 but DBP == 0           00001                         5
//	two consecutive ones            00010 + 5-bit position       10
//	single one                      00011 + 5-bit position       10
//	uncompressed plane              1 + 31 raw bits              32
//
// The base symbol uses its own small code (zero / 4-, 8-, 16-bit
// sign-extended / raw). If the encoded stream would reach or exceed the raw
// 1024 bits, the entry is stored uncompressed; the compressed/raw flag is
// carried by the per-entry metadata in hardware, so the reported bit count
// is min(encoded, 1024) and the 1-bit stream framing is an implementation
// detail of this software model.
type BPC struct{}

// NewBPC returns the Bit-Plane Compression codec.
func NewBPC() BPC { return BPC{} }

// Name implements Codec.
func (BPC) Name() string { return "bpc" }

const (
	bpcWords   = EntryBytes / 4 // 32 words per entry
	bpcDeltas  = bpcWords - 1   // 31 deltas
	bpcPlanes  = 33             // 33-bit deltas -> 33 bit-planes
	bpcRawBits = EntryBytes * 8
	allOnes31  = (uint32(1) << bpcDeltas) - 1
)

// bpcPlanesOf computes the base word and the 33 delta-bit-planes of entry.
func bpcPlanesOf(entry []byte) (base uint32, dbp [bpcPlanes + 1]uint32) {
	var words [bpcWords]uint32
	for i := 0; i < bpcWords; i++ {
		words[i] = binary.LittleEndian.Uint32(entry[i*4:])
	}
	base = words[0]
	var deltas [bpcDeltas]uint64
	for i := 0; i < bpcDeltas; i++ {
		d := int64(words[i+1]) - int64(words[i])
		deltas[i] = uint64(d) & ((1 << bpcPlanes) - 1) // 33-bit two's complement
	}
	for b := 0; b < bpcPlanes; b++ {
		var plane uint32
		for i := 0; i < bpcDeltas; i++ {
			plane |= uint32((deltas[i]>>uint(b))&1) << uint(i)
		}
		dbp[b] = plane
	}
	// dbp[33] stays 0: the sentinel that makes DBX[32] == DBP[32].
	return base, dbp
}

func bpcWriteBase(w *BitWriter, base uint32) {
	v := int32(base)
	switch {
	case v == 0:
		w.WriteBits(0b000, 3)
	case v >= -8 && v < 8:
		w.WriteBits(0b001, 3)
		w.WriteBits(uint64(base)&0xF, 4)
	case v >= -128 && v < 128:
		w.WriteBits(0b010, 3)
		w.WriteBits(uint64(base)&0xFF, 8)
	case v >= -32768 && v < 32768:
		w.WriteBits(0b011, 3)
		w.WriteBits(uint64(base)&0xFFFF, 16)
	default:
		w.WriteBits(0b1, 1)
		w.WriteBits(uint64(base), 32)
	}
}

func bpcReadBase(r *BitReader) uint32 {
	if r.ReadBits(1) == 1 {
		return uint32(r.ReadBits(32))
	}
	switch r.ReadBits(2) {
	case 0b00:
		return 0
	case 0b01:
		return uint32(int64(r.ReadBits(4)) << 60 >> 60) // sign-extend 4
	case 0b10:
		return uint32(int32(int8(r.ReadBits(8))))
	default:
		return uint32(int32(int16(r.ReadBits(16))))
	}
}

// bpcEncodeTo writes the full (unframed) encoded stream for entry to w.
func bpcEncodeTo(w *BitWriter, entry []byte) {
	base, dbp := bpcPlanesOf(entry)
	bpcWriteBase(w, base)
	b := bpcPlanes - 1 // encode MSB plane first
	for b >= 0 {
		dbx := dbp[b] ^ dbp[b+1]
		if dbx == 0 {
			run := 1
			for b-run >= 0 && dbp[b-run]^dbp[b-run+1] == 0 && run < 33 {
				run++
			}
			if run == 1 {
				w.WriteBits(0b001, 3)
			} else {
				w.WriteBits(0b01, 2)
				w.WriteBits(uint64(run-2), 5)
			}
			b -= run
			continue
		}
		tz := bits.TrailingZeros32(dbx)
		switch {
		case dbx == allOnes31:
			w.WriteBits(0b00000, 5)
		case dbp[b] == 0:
			w.WriteBits(0b00001, 5)
		case dbx>>uint(tz) == 3:
			w.WriteBits(0b00010, 5)
			w.WriteBits(uint64(tz), 5)
		case dbx>>uint(tz) == 1:
			w.WriteBits(0b00011, 5)
			w.WriteBits(uint64(tz), 5)
		default:
			w.WriteBits(0b1, 1)
			w.WriteBits(uint64(dbx), bpcDeltas)
		}
		b--
	}
}

// AppendCompressed implements Codec: one encode produces both the framed
// stream (first bit 0 = BPC stream, 1 = raw 128 bytes) and the payload bit
// count, capped at the raw 1024 bits.
//
//buddy:hotpath
func (BPC) AppendCompressed(dst, entry []byte) ([]byte, int) {
	checkEntry(entry)
	start := len(dst)
	var w BitWriter
	w.Reset(dst)
	w.WriteBits(0, 1)
	bpcEncodeTo(&w, entry)
	if bits := w.Len() - start*8 - 1; bits < EntryBytes*8 {
		return w.Bytes(), bits
	}
	rawFallback(&w, start, entry)
	return w.Bytes(), EntryBytes * 8
}

// DecompressInto implements Codec.
//
//buddy:hotpath
func (BPC) DecompressInto(dst, comp []byte) error {
	checkDst(dst)
	r := NewBitReader(comp)
	if r.ReadBits(1) == 1 {
		return decodeRawEntry(dst, r)
	}
	base := bpcReadBase(r)
	var dbp [bpcPlanes + 1]uint32
	b := bpcPlanes - 1
	for b >= 0 {
		if r.ReadBits(1) == 1 { // uncompressed plane
			dbx := uint32(r.ReadBits(bpcDeltas))
			dbp[b] = dbx ^ dbp[b+1]
			b--
			continue
		}
		if r.ReadBits(1) == 1 { // 01: zero run 2..33
			run := int(r.ReadBits(5)) + 2
			for k := 0; k < run && b >= 0; k++ {
				dbp[b] = dbp[b+1]
				b--
			}
			continue
		}
		if r.ReadBits(1) == 1 { // 001: single zero plane
			dbp[b] = dbp[b+1]
			b--
			continue
		}
		switch r.ReadBits(2) {
		case 0b00: // all ones
			dbp[b] = allOnes31 ^ dbp[b+1]
		case 0b01: // DBP == 0
			dbp[b] = 0
		case 0b10: // two consecutive ones
			pos := uint(r.ReadBits(5))
			dbp[b] = (uint32(3) << pos & allOnes31) ^ dbp[b+1]
		default: // single one
			pos := uint(r.ReadBits(5))
			dbp[b] = (uint32(1) << pos & allOnes31) ^ dbp[b+1]
		}
		b--
	}
	if r.Overrun() {
		return ErrCorrupt
	}
	words := [bpcWords]uint32{0: base}
	for i := 0; i < bpcDeltas; i++ {
		var d uint64
		for pb := 0; pb < bpcPlanes; pb++ {
			d |= uint64((dbp[pb]>>uint(i))&1) << uint(pb)
		}
		sd := int64(d)
		if d&(1<<(bpcPlanes-1)) != 0 {
			sd -= 1 << bpcPlanes
		}
		words[i+1] = uint32(int64(words[i]) + sd)
	}
	for i, wv := range words {
		binary.LittleEndian.PutUint32(dst[i*4:], wv)
	}
	return nil
}
