package compress

import (
	"encoding/binary"
	"math/bits"
)

// BPC implements Bit-Plane Compression (Kim, Sullivan, Choukse, Erez — ISCA
// 2016), the algorithm Buddy Compression selects for its high ratios on the
// homogeneously-typed data that dominates GPU memory (§2.4, §3.1).
//
// A 128 B memory-entry is treated as 32 little-endian 32-bit words. The
// first word is the base symbol; the 31 deltas between consecutive words
// (33-bit signed values) are transposed into 33 bit-planes of 31 bits each
// (DBP), adjacent planes are XORed (DBX), and each DBX plane is run/pattern
// encoded with the prefix-free code below:
//
//	pattern                         code                       bits
//	all-zero DBX, run of 2..33      01 + 5-bit (run-2)            7
//	all-zero DBX, run of 1          001                           3
//	all-ones DBX                    00000                         5
//	DBX != 0 but DBP == 0           00001                         5
//	two consecutive ones            00010 + 5-bit position       10
//	single one                      00011 + 5-bit position       10
//	uncompressed plane              1 + 31 raw bits              32
//
// The base symbol uses its own small code (zero / 4-, 8-, 16-bit
// sign-extended / raw). If the encoded stream would reach or exceed the raw
// 1024 bits, the entry is stored uncompressed; the compressed/raw flag is
// carried by the per-entry metadata in hardware, so the reported bit count
// is min(encoded, 1024) and the 1-bit stream framing is an implementation
// detail of this software model.
//
// The kernel never materializes the 33x31 transpose. The load-bearing
// identity is that DBX plane b equals bit-plane b of the per-delta
// transition masks e = d ^ (d>>1): a delta contributes a 1 to DBX plane b
// exactly where its bits b and b+1 differ (and dbp[33] == 0 makes the top
// plane fall out of the same expression). Three 33-bit aggregates then
// classify most planes without touching individual deltas —
//
//	or of all e   bit b == 0  <=>  DBX plane b is all-zero (run codes)
//	and of all e  bit b == 1  <=>  DBX plane b is all-ones
//	or of all d   bit b == 0  <=>  DBP plane b is zero
//
// — and only planes needing the two-ones/single-one/raw discrimination
// gather actual plane bits, looping over just the non-zero deltas. Sparse
// entries (runs of equal words) drop out of the delta list up front, so the
// per-plane work is proportional to the entry's non-zero structure.
type BPC struct{}

// NewBPC returns the Bit-Plane Compression codec.
func NewBPC() BPC { return BPC{} }

// Name implements Codec.
func (BPC) Name() string { return "bpc" }

const (
	bpcWords   = EntryBytes / 4 // 32 words per entry
	bpcDeltas  = bpcWords - 1   // 31 deltas
	bpcPlanes  = 33             // 33-bit deltas -> 33 bit-planes
	bpcRawBits = EntryBytes * 8
	allOnes31  = (uint32(1) << bpcDeltas) - 1
	bpcMask33  = (uint64(1) << bpcPlanes) - 1
)

// bpcStreamWords sizes the stack register buffer the encoder emits into.
// The worst case stream is 1 frame bit + a 33-bit base code + 33 raw planes
// (1090 bits), under 18x64 — so the emission loop needs no overflow check at
// all, and the single raw-vs-compressed decision happens once at the end.
const bpcStreamWords = 18

// bpcPut appends the low n bits of v (MSB first) to the register buffer at
// bit cursor pos and returns the advanced cursor. The value is left-aligned
// once and both the current and the next word are OR-ed unconditionally —
// when the code does not spill, the second OR contributes zero (a shift by
// 64 yields 0) — so the put has no does-it-spill branch; the cursor's word
// alignment is data-dependent and the branch would mispredict about as often
// as not. The buffer has a spare word past the worst-case stream, so wi+1 is
// always in range. No length tracking, no byte appends: this is what lets
// the encoder skip the BitWriter entirely until the final bulk store.
//
//buddy:hotpath
func bpcPut(sb *[bpcStreamWords]uint64, pos int, v uint64, n int) int {
	lv := v << uint(64-n)
	off := uint(pos) & 63
	wi := pos >> 6
	sb[wi] |= lv >> off
	sb[wi+1] |= lv << (64 - off)
	return pos + n
}

// bpcPutBase emits the base-symbol code (zero / 4-, 8-, 16-bit
// sign-extended / raw), prefix and payload pre-merged into one put.
//
//buddy:hotpath
func bpcPutBase(sb *[bpcStreamWords]uint64, pos int, base uint32) int {
	v := int32(base)
	switch {
	case v == 0:
		return bpcPut(sb, pos, 0b000, 3)
	case v >= -8 && v < 8:
		return bpcPut(sb, pos, 0b001_0000|uint64(base)&0xF, 7)
	case v >= -128 && v < 128:
		return bpcPut(sb, pos, 0b010<<8|uint64(base)&0xFF, 11)
	case v >= -32768 && v < 32768:
		return bpcPut(sb, pos, 0b011<<16|uint64(base)&0xFFFF, 19)
	default:
		return bpcPut(sb, pos, 1<<32|uint64(base), 33)
	}
}

// bpcRaw emits the raw-fallback frame (flag bit 1 + the 128 entry bytes).
//
//buddy:hotpath
func bpcRaw(dst, entry []byte) ([]byte, int) {
	var w BitWriter
	w.Reset(dst)
	w.WriteBits(1, 1)
	w.WriteBytes(entry)
	return w.Bytes(), EntryBytes * 8
}

func bpcReadBase(r *BitReader) uint32 {
	if r.ReadBits(1) == 1 {
		return uint32(r.ReadBits(32))
	}
	switch r.ReadBits(2) {
	case 0b00:
		return 0
	case 0b01:
		return uint32(int64(r.ReadBits(4)) << 60 >> 60) // sign-extend 4
	case 0b10:
		return uint32(int32(int8(r.ReadBits(8))))
	default:
		return uint32(int32(int16(r.ReadBits(16))))
	}
}

// AppendCompressed implements Codec: one encode produces both the framed
// stream (first bit 0 = BPC stream, 1 = raw 128 bytes) and the payload bit
// count, capped at the raw 1024 bits. The register buffer absorbs even the
// worst-case encoding, so the emission loop runs checkless and the raw
// fallback decision happens exactly once, at the end.
//
//buddy:hotpath
func (BPC) AppendCompressed(dst, entry []byte) ([]byte, int) {
	checkEntry(entry)
	// The stream builds in a stack register buffer: each code lands with one
	// or two shift-ors at a bit cursor, and the finished stream stores to dst
	// in a single pass at the end. pos starts past the frame bit (0 = BPC
	// stream), already present as the zero MSB of sbuf[0].
	var sbuf [bpcStreamWords]uint64
	pos := 1

	// Sparsity pre-pass over the entry's sixteen 64-bit words: compute the
	// 33-bit deltas and their transition masks. rows holds each mask's low 32
	// bits two deltas per word (delta 2m in the low lane of rows[m] — the
	// packed layout transpose32 wants); p32 collects the mask bit-32 column,
	// which is the whole of plane 32. The body is branch-free on the delta
	// values: a zero delta contributes nothing to any accumulator (its mask is
	// zero, and `andE &= 0` agrees with the nnz < 31 correction below), the
	// idx slot it wrote is either overwritten or never read, and the non-zero
	// count advances by a flag bit instead of a branch — delta values are the
	// least predictable data in the entry, and a mispredict costs more than
	// the handful of ALU ops a zero delta's dead update takes.
	var rows [entryWordCount]uint64
	var idx [bpcDeltas]uint8
	var p32 uint32
	nnz := 0
	orE, andE, orD := uint64(0), bpcMask33, uint64(0)
	base := binary.LittleEndian.Uint32(entry)
	prev := int64(0)
	for k := 0; k < entryWordCount; k++ {
		w64 := binary.LittleEndian.Uint64(entry[k*8:])
		lo := int64(uint32(w64))
		hi := int64(w64 >> 32)
		if k > 0 {
			d := uint64(lo-prev) & bpcMask33
			e := d ^ (d >> 1)
			orD |= d
			orE |= e
			andE &= e
			i := 2*k - 1 // odd: high lane of rows[k-1]
			rows[k-1] |= e << 32
			p32 |= uint32(e>>32) << uint(i)
			idx[nnz] = uint8(i)
			nnz += int((d | -d) >> 63)
		}
		d := uint64(hi-lo) & bpcMask33
		e := d ^ (d >> 1)
		orD |= d
		orE |= e
		andE &= e
		i := 2 * k // even: low lane of rows[k]
		rows[k] |= e & 0xFFFFFFFF
		p32 |= uint32(e>>32) << uint(i)
		idx[nnz] = uint8(i)
		nnz += int((d | -d) >> 63)
		prev = hi
	}
	if nnz < bpcDeltas {
		andE = 0 // a zero delta has an all-zero mask, so no plane is all-ones
	}

	// Planes that the aggregates cannot classify (non-zero, not all-ones,
	// DBP non-zero) need their 31 bits materialized. When there are many of
	// them over many deltas, one butterfly transpose produces every plane at
	// a fixed cost; otherwise per-plane gathers over just the non-zero
	// deltas are cheaper.
	need := orE &^ andE & orD
	usePlanes := false
	if g := bits.OnesCount64(need); g*nnz >= 128 {
		transpose32(&rows)
		usePlanes = true
	}

	pos = bpcPutBase(&sbuf, pos, base)
	// Plane 32 is the p32 column collected by the pre-pass; classifying it
	// before the loop keeps the per-plane body free of the is-it-the-top-plane
	// test. The loop then emits one bpcPut per surviving plane: a zero-run hop
	// (single Len64 instead of a per-plane walk — sparse entries have long
	// runs) fuses its run code with the code of the plane that ends the run,
	// so a run+plane pair costs one call, and the code discriminations select
	// values rather than control flow (a data-dependent outcome is a couple of
	// conditional moves, not a pipeline flush).
	b := bpcPlanes - 1
	if orE>>uint(b)&1 == 1 {
		if need>>uint(b)&1 == 1 {
			tz := bits.TrailingZeros32(p32)
			v, n := uint64(1)<<bpcDeltas|uint64(p32), 32
			if p := p32 >> uint(tz); p|2 == 3 {
				v, n = (0b00010|uint64(3-p)>>1)<<5|uint64(tz), 10
			}
			pos = bpcPut(&sbuf, pos, v, n)
		} else {
			// all-ones DBX (00000) when every delta transitions, else DBP-zero
			// (00001): the codes differ in one bit, read out of andE directly.
			pos = bpcPut(&sbuf, pos, ^andE>>uint(b)&1, 5)
		}
		b--
	}
	if usePlanes {
		// Transposed path: every plane's 31 bits are one lane extraction, so
		// the need test no longer guards expensive work and both it and the
		// raw-vs-short discrimination reduce to value selects — the only
		// data-dependent control flow left per plane is the zero-run hop.
		for b >= 0 {
			var rv uint64 // pending run code, emitted fused with the next plane
			rn := 0
			if orE>>uint(b)&1 == 0 {
				hb := bits.Len64(orE&(uint64(1)<<uint(b)-1)) - 1
				rv, rn = 0b001, 3
				if run := b - hb; run != 1 {
					rv, rn = 0b01_00000|uint64(run-2), 7
				}
				b = hb
				if b < 0 {
					pos = bpcPut(&sbuf, pos, rv, rn)
					break
				}
			}
			// Both discriminations below are pure mask arithmetic — the plane
			// class is the least predictable quantity in the stream, and a
			// mispredicted branch costs more than the dozen ALU ops the masked
			// selects take.
			plane := uint32(rows[b>>1] >> (uint(b&1) * 32))
			tz := bits.TrailingZeros32(plane)
			pp := uint64(plane >> uint(tz))
			// mShort = all-ones iff the plane is a one/two-ones pattern
			// (pp == 1 or pp == 3, i.e. (pp|2)^3 == 0).
			q := (pp | 2) ^ 3
			mShort := (q|-q)>>63 - 1
			// mAgg = all-ones iff the aggregates classify the plane (need bit 0).
			mAgg := need>>uint(b)&1 - 1
			vShort := (0b00010|(3-pp)>>1)<<5 | uint64(tz)
			vRaw := uint64(1)<<bpcDeltas | uint64(plane)
			vAgg := ^andE >> uint(b) & 1
			v := (vRaw&^mShort|vShort&mShort)&^mAgg | vAgg&mAgg
			n := int(32 - 22&mShort&^mAgg - 27&mAgg)
			pos = bpcPut(&sbuf, pos, rv<<uint(n)|v, rn+n)
			b--
		}
	} else {
		for b >= 0 {
			var rv uint64 // pending run code, emitted fused with the next plane
			rn := 0
			if orE>>uint(b)&1 == 0 {
				hb := bits.Len64(orE&(uint64(1)<<uint(b)-1)) - 1
				rv, rn = 0b001, 3
				if run := b - hb; run != 1 {
					rv, rn = 0b01_00000|uint64(run-2), 7
				}
				b = hb
				if b < 0 {
					pos = bpcPut(&sbuf, pos, rv, rn)
					break
				}
			}
			// Planes that must materialize values gather over just the
			// non-zero deltas; the need test keeps the gather off the
			// aggregate-classified planes.
			var v uint64
			var n int
			if need>>uint(b)&1 == 1 {
				var plane uint32
				for k := 0; k < nnz; k++ {
					i := idx[k]
					plane |= uint32(rows[i>>1]>>(uint(i&1)*32+uint(b))&1) << i
				}
				tz := bits.TrailingZeros32(plane)
				v, n = uint64(1)<<bpcDeltas|uint64(plane), 32
				if p := plane >> uint(tz); p|2 == 3 {
					v, n = (0b00010|uint64(3-p)>>1)<<5|uint64(tz), 10
				}
			} else {
				v, n = ^andE>>uint(b)&1, 5
			}
			pos = bpcPut(&sbuf, pos, rv<<uint(n)|v, rn+n)
			b--
		}
	}
	if bits := pos - 1; bits < bpcRawBits {
		// One bulk store: the register words are already the big-endian
		// stream bytes, zero-padded past pos like the BitWriter would pad.
		// When dst has the full register-buffer width spare (every pooled
		// scratch does — cap is MaxStreamBytes), the words store straight into
		// it; the tmp bounce only runs for short caller buffers.
		nw := (pos + 63) >> 6
		nb := (pos + 7) >> 3
		if n := len(dst); cap(dst)-n >= bpcStreamWords*8 {
			buf := dst[n : n+bpcStreamWords*8]
			for j := 0; j < nw; j++ {
				binary.BigEndian.PutUint64(buf[j*8:], sbuf[j])
			}
			return dst[: n+nb : cap(dst)], bits
		}
		var tmp [bpcStreamWords * 8]byte
		for j := 0; j < nw; j++ {
			binary.BigEndian.PutUint64(tmp[j*8:], sbuf[j])
		}
		return append(dst, tmp[:nb]...), bits
	}
	return bpcRaw(dst, entry)
}

// bpcPeekWord is the decoder's out-of-line peek for when byte pos>>3 lands
// in the last 7 bytes of the stream (the caller's precondition): the 64-bit
// window at bit pos, left-aligned (bit pos as MSB), zero-filled past the end
// of buf. Streams of 8+ bytes use one backward-aligned load — the last 8
// bytes shifted up so byte pos>>3 becomes the MSB, with bytes past the end
// falling off as zeros (a shift of 64+ in Go is 0, which covers cursors
// already past the buffer). Only sub-8-byte streams walk bytes.
func bpcPeekWord(buf []byte, pos int) uint64 {
	i := pos >> 3
	if n := len(buf); n >= 8 {
		return binary.BigEndian.Uint64(buf[n-8:]) << uint(8*(i-n+8)+pos&7)
	}
	var w uint64
	for j, rem := 0, len(buf)-i; j < rem && j < 8; j++ {
		w |= uint64(buf[i+j]) << uint(56-8*j)
	}
	return w << uint(pos&7)
}

// The four 5-bit plane codes, as the value of the code's five leading bits.
// The raw (1...), run (01...) and single-zero (001) codes are discriminated
// by magnitude of the peeked word before these values come into play.
const (
	bpcKAllOnes = iota // 00000
	bpcKDBPZero        // 00001
	bpcKTwo            // 00010 + 5-bit position
	bpcKOne            // 00011 + 5-bit position
)

// DecompressInto implements Codec. Instead of rebuilding 33 DBP planes and
// gathering 31x33 bits back into words, the decoder collects the DBX planes
// as it parses, converts them to per-delta transition masks — one fixed-cost
// butterfly transpose when the planes are dense, a popcount-proportional
// scatter when they are sparse, mirroring the encoder's gather-vs-transpose
// split — then inverts the transition transform with a parallel-prefix XOR
// and prefix-sums the words.
//
//buddy:hotpath
func (BPC) DecompressInto(dst, comp []byte) error {
	checkDst(dst)
	n8 := len(comp) - 8
	// Frame bit and base value resolve from one peek of the stream head, the
	// same shape as the plane loop below: the longest prefix (frame 0 + base
	// flag 1 + 32 base bits) is 34 bits, well inside the window.
	var w0 uint64
	if n8 >= 0 {
		w0 = binary.BigEndian.Uint64(comp)
	} else {
		w0 = bpcPeekWord(comp, 0)
	}
	if w0>>63 == 1 {
		r := NewBitReader(comp)
		r.Skip(1)
		return decodeRawEntry(dst, r)
	}
	var base uint32
	var pos int // local bit cursor: the parse loop peeks and skips inline
	if w0<<1>>63 == 1 {
		base = uint32(w0 >> 30) // flag 1: raw 32-bit base at bits 2..33
		pos = 34
	} else {
		switch w0 >> 60 & 3 { // flag 0: 2-bit size class, sign-extended value
		case 0b00:
			base, pos = 0, 4
		case 0b01:
			base, pos = uint32(int64(w0<<4)>>60), 8
		case 0b10:
			base, pos = uint32(int64(w0<<4)>>56), 12
		default:
			base, pos = uint32(int64(w0<<4)>>48), 20
		}
	}
	var planes [bpcPlanes]uint32
	var nz uint64    // mask of planes with a non-zero DBX
	pop := 0         // total DBX bits, the sparse path's scatter cost
	acc := uint32(0) // DBP plane b+1 while processing plane b
	b := bpcPlanes - 1
	for b >= 0 {
		// One 32-bit peek covers the longest code (raw: 1 + 31 plane bits), so
		// class, run length, position payload and raw plane bits all resolve
		// from the peeked word with shifts, and the stream advances by cursor
		// adds alone. The peek itself is a single unaligned load inlined here —
		// the call-free body is what keeps the per-code cost flat — with the
		// padded assembly loop only inside the stream's last 7 bytes.
		var w uint64
		if i := pos >> 3; i <= n8 {
			w = binary.BigEndian.Uint64(comp[i:]) << uint(pos&7)
		} else {
			w = bpcPeekWord(comp, pos)
		}
		p := uint32(w >> 32)
		var dbx uint32
		switch {
		case p >= 1<<31: // 1 + raw plane
			dbx = p & allOnes31
			pos += 32
		case p >= 1<<30: // 01 + 5-bit (run-2): all-zero run of 2..33
			pos += 7
			b -= int(p>>25&31) + 2
			continue
		case p >= 1<<29: // 001: all-zero run of 1
			pos += 3
			b--
			continue
		default: // five-bit codes 0000x / 0001x
			switch pos5 := p >> 22 & 31; p >> 27 {
			case bpcKAllOnes:
				dbx = allOnes31
				pos += 5
			case bpcKDBPZero:
				dbx = acc // DBP[b] == 0, so DBX[b] == DBP[b+1]
				pos += 5
			case bpcKTwo:
				dbx = uint32(3) << pos5 & allOnes31
				pos += 10
			default: // bpcKOne
				dbx = uint32(1) << pos5 & allOnes31
				pos += 10
			}
		}
		acc ^= dbx
		planes[b] = dbx
		nz |= uint64(1) << uint(b)
		pop += bits.OnesCount32(dbx)
		b--
	}
	if pos > len(comp)*8 {
		return ErrCorrupt
	}

	// Rebuild the deltas from the collected DBX planes. Dense plane sets (most
	// varied real data) first invert DBX back to DBP with one running
	// suffix-XOR over the 32 low planes — 32 XORs replace the per-delta
	// parallel-prefix chain — then one 32x32 butterfly transpose of the DBP
	// planes yields each delta's low 32 bits directly (plane 32 is the 33-bit
	// sign, which vanishes mod 2^32 and needs no reconstruction at all).
	// Sparse sets scatter just the DBX bits per delta and invert with the
	// parallel-prefix XOR instead, which is cheaper below the same ~128-bit
	// break-even the encoder uses.
	wv := base
	binary.LittleEndian.PutUint32(dst, wv)
	if pop >= 48 {
		var rows [entryWordCount]uint64
		dbp := planes[bpcPlanes-1] // DBP[32] == DBX[32], since DBP[33] == 0
		for m := entryWordCount - 1; m >= 0; m-- {
			hi := dbp ^ planes[2*m+1]
			lo := hi ^ planes[2*m]
			rows[m] = uint64(lo) | uint64(hi)<<32
			dbp = lo
		}
		transpose32(&rows)
		for i := 0; i < bpcDeltas; i++ {
			wv += uint32(rows[i>>1] >> (uint(i&1) * 32))
			binary.LittleEndian.PutUint32(dst[(i+1)*4:], wv)
		}
		return nil
	}
	var trans [bpcDeltas]uint64
	for ; nz != 0; nz &= nz - 1 {
		b := bits.TrailingZeros64(nz)
		for m := planes[b]; m != 0; m &= m - 1 {
			trans[bits.TrailingZeros32(m)] |= 1 << uint(b)
		}
	}
	for i := 0; i < bpcDeltas; i++ {
		// Invert e = d ^ (d>>1): bit k of d is the XOR of e's bits >= k.
		d := trans[i]
		d ^= d >> 1
		d ^= d >> 2
		d ^= d >> 4
		d ^= d >> 8
		d ^= d >> 16
		d ^= d >> 32
		// The 33-bit sign extension vanishes mod 2^32.
		wv += uint32(d)
		binary.LittleEndian.PutUint32(dst[(i+1)*4:], wv)
	}
	return nil
}
