package compress

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzEntry pads or truncates fuzz input to exactly one 128 B entry so the
// engine explores the full structural space without tripping the length
// contract.
func fuzzEntry(data []byte) []byte {
	entry := make([]byte, EntryBytes)
	copy(entry, data)
	return entry
}

// FuzzRoundTrip drives every codec over arbitrary entries: the single-pass
// stream must decode bit-exactly, encode deterministically, report
// in-range metadata bits, and reject every truncated prefix with ErrCorrupt.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, EntryBytes))
	f.Add(bytes.Repeat([]byte{0x00, 0x01, 0x02, 0x03}, EntryBytes/4))
	f.Add([]byte{0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4, 5, 6, 7, 8})
	ramp := make([]byte, EntryBytes)
	for i := range ramp {
		ramp[i] = byte(i * 7)
	}
	f.Add(ramp)
	// Sparsity-structured seeds: the word-kernel fast paths (all-zero
	// short-circuit, zero-run delta skip, run-length plane codes) branch on
	// exactly these shapes.
	f.Add(make([]byte, EntryBytes)) // all-zero entry
	oneBit := make([]byte, EntryBytes)
	oneBit[77] = 0x10 // single set bit mid-entry
	f.Add(oneBit)
	sparse90 := make([]byte, EntryBytes)
	for _, i := range []int{12, 13, 40, 41, 88, 89} { // ~90% of halfwords zero
		sparse90[i] = byte(0x3C + i)
	}
	f.Add(sparse90)
	f.Fuzz(func(t *testing.T, data []byte) {
		entry := fuzzEntry(data)
		dst := make([]byte, EntryBytes)
		for _, c := range Registry() {
			stream, bits := c.AppendCompressed(nil, entry)
			if bits < 0 || bits > EntryBytes*8 {
				t.Fatalf("%s: bits %d out of range", c.Name(), bits)
			}
			if len(stream) > MaxStreamBytes {
				t.Fatalf("%s: stream %d B exceeds MaxStreamBytes", c.Name(), len(stream))
			}
			if err := c.DecompressInto(dst, stream); err != nil {
				t.Fatalf("%s: DecompressInto: %v", c.Name(), err)
			}
			if !bytes.Equal(dst, entry) {
				t.Fatalf("%s: round-trip mismatch", c.Name())
			}
			if _, again := c.AppendCompressed(nil, entry); again != bits {
				t.Fatalf("%s: nondeterministic bits %d != %d", c.Name(), again, bits)
			}
			for _, cut := range []int{0, len(stream) / 2, len(stream) - 1} {
				if cut < 0 || cut >= len(stream) {
					continue
				}
				if err := c.DecompressInto(dst, stream[:cut]); !errors.Is(err, ErrCorrupt) {
					t.Fatalf("%s: truncation to %d/%d bytes: got %v, want ErrCorrupt",
						c.Name(), cut, len(stream), err)
				}
			}
			// Restore dst for the next codec (truncated decodes scribble).
			if err := c.DecompressInto(dst, stream); err != nil {
				t.Fatalf("%s: re-decode: %v", c.Name(), err)
			}
		}
	})
}

// FuzzDecompressArbitrary feeds arbitrary bytes to every decoder: it must
// either decode into some entry or return ErrCorrupt — never panic, never
// read out of bounds.
func FuzzDecompressArbitrary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add([]byte{0x00, 0x00, 0x00})
	f.Add(bytes.Repeat([]byte{0x55}, 192))
	f.Add(make([]byte, 132))        // all-zero stream: zero frame bits + padding
	f.Add([]byte{0x00, 0x80})       // short stream with one set bit
	f.Add([]byte{0x40, 0x00, 0x01}) // sparse stream: run codes then a one
	f.Fuzz(func(t *testing.T, comp []byte) {
		dst := make([]byte, EntryBytes)
		for _, c := range Registry() {
			if err := c.DecompressInto(dst, comp); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s: unexpected error class: %v", c.Name(), err)
			}
		}
	})
}
