package compress

import "encoding/binary"

// FPC implements Frequent Pattern Compression (Alameldeen & Wood, 2004),
// another baseline from the paper's algorithm comparison (§2.4). Each 32-bit
// word is encoded with a 3-bit prefix selecting one of eight patterns:
//
//	prefix  pattern                                   payload bits
//	 000    run of 1..8 zero words                    3 (run length - 1)
//	 001    4-bit sign-extended                       4
//	 010    8-bit sign-extended                       8
//	 011    16-bit sign-extended                      16
//	 100    zero lower halfword (upper 16 stored)     16
//	 101    two halfwords, each an 8-bit SE value     16
//	 110    word of four repeated bytes               8
//	 111    uncompressed word                         32
type FPC struct{}

// NewFPC returns the Frequent Pattern Compression codec.
func NewFPC() FPC { return FPC{} }

// Name implements Codec.
func (FPC) Name() string { return "fpc" }

func fpcFits(v uint32, bits int) bool {
	sv := int32(v)
	lim := int32(1) << uint(bits-1)
	return sv >= -lim && sv < lim
}

func fpcHalfFits(h uint16) bool {
	sv := int16(h)
	return sv >= -128 && sv < 128
}

func fpcEncode(entry []byte, w *BitWriter) {
	i := 0
	for i < bpcWords {
		v := binary.LittleEndian.Uint32(entry[i*4:])
		if v == 0 {
			run := 1
			for i+run < bpcWords && run < 8 &&
				binary.LittleEndian.Uint32(entry[(i+run)*4:]) == 0 {
				run++
			}
			w.WriteBits(0b000, 3)
			w.WriteBits(uint64(run-1), 3)
			i += run
			continue
		}
		switch {
		case fpcFits(v, 4):
			w.WriteBits(0b001, 3)
			w.WriteBits(uint64(v)&0xF, 4)
		case fpcFits(v, 8):
			w.WriteBits(0b010, 3)
			w.WriteBits(uint64(v)&0xFF, 8)
		case fpcFits(v, 16):
			w.WriteBits(0b011, 3)
			w.WriteBits(uint64(v)&0xFFFF, 16)
		case v&0xFFFF == 0:
			w.WriteBits(0b100, 3)
			w.WriteBits(uint64(v>>16), 16)
		case fpcHalfFits(uint16(v)) && fpcHalfFits(uint16(v>>16)):
			w.WriteBits(0b101, 3)
			w.WriteBits(uint64(v)&0xFF, 8)
			w.WriteBits(uint64(v>>16)&0xFF, 8)
		case byte(v) == byte(v>>8) && byte(v) == byte(v>>16) && byte(v) == byte(v>>24):
			w.WriteBits(0b110, 3)
			w.WriteBits(uint64(v)&0xFF, 8)
		default:
			w.WriteBits(0b111, 3)
			w.WriteBits(uint64(v), 32)
		}
		i++
	}
}

// AppendCompressed implements Codec. A leading framing bit distinguishes
// the FPC stream (0) from a raw fallback (1); as with BPC the flag is
// hardware metadata and excluded from the reported bits.
//
//buddy:hotpath
func (FPC) AppendCompressed(dst, entry []byte) ([]byte, int) {
	checkEntry(entry)
	start := len(dst)
	var w BitWriter
	w.Reset(dst)
	w.WriteBits(0, 1)
	fpcEncode(entry, &w)
	if bits := w.Len() - start*8 - 1; bits < EntryBytes*8 {
		return w.Bytes(), bits
	}
	rawFallback(&w, start, entry)
	return w.Bytes(), EntryBytes * 8
}

// DecompressInto implements Codec.
//
//buddy:hotpath
func (FPC) DecompressInto(dst, comp []byte) error {
	checkDst(dst)
	r := NewBitReader(comp)
	if r.ReadBits(1) == 1 {
		return decodeRawEntry(dst, r)
	}
	clear(dst) // zero runs are skipped, not written
	i := 0
	for i < bpcWords {
		prefix := r.ReadBits(3)
		var v uint32
		switch prefix {
		case 0b000:
			run := int(r.ReadBits(3)) + 1
			i += run
			continue
		case 0b001:
			v = uint32(int64(r.ReadBits(4)) << 60 >> 60)
		case 0b010:
			v = uint32(int32(int8(r.ReadBits(8))))
		case 0b011:
			v = uint32(int32(int16(r.ReadBits(16))))
		case 0b100:
			v = uint32(r.ReadBits(16)) << 16
		case 0b101:
			lo := uint32(int32(int8(r.ReadBits(8)))) & 0xFFFF
			hi := uint32(int32(int8(r.ReadBits(8)))) & 0xFFFF
			v = hi<<16 | lo
		case 0b110:
			b := uint32(r.ReadBits(8))
			v = b | b<<8 | b<<16 | b<<24
		default:
			v = uint32(r.ReadBits(32))
		}
		if i >= bpcWords {
			return ErrCorrupt
		}
		binary.LittleEndian.PutUint32(dst[i*4:], v)
		i++
	}
	if r.Overrun() {
		return ErrCorrupt
	}
	return nil
}
