package compress

// FPC implements Frequent Pattern Compression (Alameldeen & Wood, 2004),
// another baseline from the paper's algorithm comparison (§2.4). Each 32-bit
// word is encoded with a 3-bit prefix selecting one of eight patterns:
//
//	prefix  pattern                                   payload bits
//	 000    run of 1..8 zero words                    3 (run length - 1)
//	 001    4-bit sign-extended                       4
//	 010    8-bit sign-extended                       8
//	 011    16-bit sign-extended                      16
//	 100    zero lower halfword (upper 16 stored)     16
//	 101    two halfwords, each an 8-bit SE value     16
//	 110    word of four repeated bytes               8
//	 111    uncompressed word                         32
//
// The kernel scans the word view: zero runs extend two 32-bit words per
// 64-bit compare, the sign-extension range tests are one add-and-compare
// each, and every prefix+payload pair lands in a 64-bit emission register
// flushed in bulk (codes are at most 35 bits, so at least one code always
// fits). The decoder accumulates words into the view and stores the entry
// in one pass.
type FPC struct{}

// NewFPC returns the Frequent Pattern Compression codec.
func NewFPC() FPC { return FPC{} }

// Name implements Codec.
func (FPC) Name() string { return "fpc" }

// fpcEncode writes the 32 word codes for the entry's word view.
//
//buddy:hotpath
func fpcEncode(wv *[entryWordCount]uint64, w *BitWriter) {
	pend, pendN := uint64(0), 0
	i := 0
	for i < bpcWords {
		v := u32(wv, i)
		var code uint64
		var n int
		if v == 0 {
			run := 1
			for i+run < bpcWords && run < 8 {
				j := i + run
				if j&1 == 0 && run+1 < 8 && wv[j>>1] == 0 {
					run += 2 // a zero 64-bit word is two zero words at once
					continue
				}
				if u32(wv, j) != 0 {
					break
				}
				run++
			}
			code = 0b000_000 | uint64(run-1)
			n = 6
			i += run
		} else {
			switch {
			case v+8 < 16:
				code = 0b001<<4 | uint64(v&0xF)
				n = 7
			case v+128 < 256:
				code = 0b010<<8 | uint64(v&0xFF)
				n = 11
			case v+32768 < 65536:
				code = 0b011<<16 | uint64(v&0xFFFF)
				n = 19
			case v&0xFFFF == 0:
				code = 0b100<<16 | uint64(v>>16)
				n = 19
			case uint16(v)+128 < 256 && uint16(v>>16)+128 < 256:
				code = 0b101<<16 | uint64(v&0xFF)<<8 | uint64(v>>16&0xFF)
				n = 19
			case v == uint32(v&0xFF)*0x01010101:
				code = 0b110<<8 | uint64(v&0xFF)
				n = 11
			default:
				code = 0b111<<32 | uint64(v)
				n = 35
			}
			i++
		}
		if pendN+n > 64 {
			w.WriteBits(pend, pendN)
			pend, pendN = 0, 0
		}
		pend = pend<<uint(n) | code
		pendN += n
	}
	if pendN > 0 {
		w.WriteBits(pend, pendN)
	}
}

// AppendCompressed implements Codec. A leading framing bit distinguishes
// the FPC stream (0) from a raw fallback (1); as with BPC the flag is
// hardware metadata and excluded from the reported bits.
//
//buddy:hotpath
func (FPC) AppendCompressed(dst, entry []byte) ([]byte, int) {
	checkEntry(entry)
	start := len(dst)
	var w BitWriter
	w.Reset(dst)
	w.WriteBits(0, 1)
	var wv [entryWordCount]uint64
	loadWords(entry, &wv)
	fpcEncode(&wv, &w)
	if bits := w.Len() - start*8 - 1; bits < EntryBytes*8 {
		return w.Bytes(), bits
	}
	rawFallback(&w, start, entry)
	return w.Bytes(), EntryBytes * 8
}

// DecompressInto implements Codec.
//
//buddy:hotpath
func (FPC) DecompressInto(dst, comp []byte) error {
	checkDst(dst)
	r := NewBitReader(comp)
	if r.ReadBits(1) == 1 {
		return decodeRawEntry(dst, r)
	}
	var wv [entryWordCount]uint64 // zero runs are skipped, not written
	i := 0
	for i < bpcWords {
		prefix := r.ReadBits(3)
		var v uint32
		switch prefix {
		case 0b000:
			run := int(r.ReadBits(3)) + 1
			i += run
			continue
		case 0b001:
			v = uint32(int64(r.ReadBits(4)) << 60 >> 60)
		case 0b010:
			v = uint32(int32(int8(r.ReadBits(8))))
		case 0b011:
			v = uint32(int32(int16(r.ReadBits(16))))
		case 0b100:
			v = uint32(r.ReadBits(16)) << 16
		case 0b101:
			lo := uint32(int32(int8(r.ReadBits(8)))) & 0xFFFF
			hi := uint32(int32(int8(r.ReadBits(8)))) & 0xFFFF
			v = hi<<16 | lo
		case 0b110:
			b := uint32(r.ReadBits(8))
			v = b | b<<8 | b<<16 | b<<24
		default:
			v = uint32(r.ReadBits(32))
		}
		if i >= bpcWords {
			return ErrCorrupt
		}
		wv[i>>1] |= uint64(v) << (uint(i&1) * 32)
		i++
	}
	if r.Overrun() {
		return ErrCorrupt
	}
	storeWords(dst, &wv)
	return nil
}
