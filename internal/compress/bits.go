package compress

import "encoding/binary"

// BitWriter accumulates a big-endian bit stream. Compressors use it to
// produce the exact encoded bit layout, so compressed sizes are bit-accurate
// rather than estimated.
//
// A BitWriter can append into caller-provided storage: Reset points it at an
// existing slice and subsequent writes extend that slice in place (growing
// it only when capacity runs out). This is what makes the single-pass
// AppendCompressed codec path allocation-free: the destination is a pooled
// scratch buffer whose capacity already covers MaxStreamBytes.
//
// Bits are written in whole-byte chunks rather than one at a time, so the
// cost per WriteBits call is O(n/8), not O(n).
type BitWriter struct {
	buf  []byte
	nbit int
}

// NewBitWriter returns a writer with capacity pre-allocated for n bits.
func NewBitWriter(n int) *BitWriter {
	return &BitWriter{buf: make([]byte, 0, (n+7)/8)}
}

// Reset points the writer at dst: subsequent writes append to dst starting
// at the next byte boundary. Passing a truncated prefix of the writer's own
// buffer rewinds it (the raw-fallback path of AppendCompressed).
func (w *BitWriter) Reset(dst []byte) {
	w.buf = dst
	w.nbit = len(dst) * 8
}

// WriteBits appends the low n bits of v, most-significant bit first.
//
//buddy:hotpath
func (w *BitWriter) WriteBits(v uint64, n int) {
	if n <= 0 {
		return
	}
	if n < 64 {
		v &= 1<<uint(n) - 1
	}
	if off := w.nbit & 7; off != 0 {
		// Fill the free low bits of the partial last byte first.
		space := 8 - off
		if n < space {
			w.buf[len(w.buf)-1] |= byte(v << uint(space-n))
			w.nbit += n
			return
		}
		w.buf[len(w.buf)-1] |= byte(v >> uint(n-space))
		w.nbit += space
		n -= space
	}
	if n >= 8 {
		// Whole bytes land in one append: left-align the remaining bits so
		// the top k bytes of the shifted word are the stream bytes in order.
		var tmp [8]byte
		k := n >> 3
		binary.BigEndian.PutUint64(tmp[:], v<<uint(64-n))
		w.buf = append(w.buf, tmp[:k]...)
		w.nbit += k * 8
		n &= 7
	}
	if n > 0 {
		w.buf = append(w.buf, byte(v<<uint(8-n)))
		w.nbit += n
	}
}

// WriteBytes appends all of p, 8 bits per byte. Byte-aligned writers take
// the plain append; unaligned writers (the raw-fallback path behind every
// codec's 1-bit framing flag) move 8-byte words per step instead of single
// bytes.
//
//buddy:hotpath
func (w *BitWriter) WriteBytes(p []byte) {
	if w.nbit&7 == 0 {
		w.buf = append(w.buf, p...)
		w.nbit += len(p) * 8
		return
	}
	for len(p) >= 8 {
		w.WriteBits(binary.BigEndian.Uint64(p), 64)
		p = p[8:]
	}
	for _, b := range p {
		w.WriteBits(uint64(b), 8)
	}
}

// Len returns the number of bits written so far.
func (w *BitWriter) Len() int { return w.nbit }

// Bytes returns the accumulated stream, zero-padded to a byte boundary.
func (w *BitWriter) Bytes() []byte { return w.buf }

// BitReader consumes a big-endian bit stream produced by BitWriter.
type BitReader struct {
	buf []byte
	pos int
}

// NewBitReader wraps buf for reading.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// Reset rewinds the reader onto buf.
func (r *BitReader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
}

// ReadBits reads n bits and returns them right-aligned. Reading past the end
// of the buffer yields zero bits, which callers treat as a framing error via
// Overrun. The read is word-based: one unaligned 8-byte load covers any
// n <= 57 regardless of bit offset (the decoder's plane probes and raw-plane
// reads all fit), with a ninth byte only for the 64-bit reads near a byte
// boundary and a padded assembly loop only inside the last 7 bytes of the
// stream.
//
//buddy:hotpath
func (r *BitReader) ReadBits(n int) uint64 {
	if n <= 0 {
		return 0
	}
	pos := r.pos
	r.pos = pos + n
	i := pos >> 3
	var w uint64
	if i+8 <= len(r.buf) {
		w = binary.BigEndian.Uint64(r.buf[i:])
	} else {
		for j, rem := 0, len(r.buf)-i; j < rem; j++ {
			w |= uint64(r.buf[i+j]) << uint(56-8*j)
		}
	}
	sh := uint(pos & 7)
	w <<= sh
	if n <= 64-int(sh) {
		return w >> (64 - uint(n))
	}
	// The tail of the value spills past the 8 loaded bytes (possible only for
	// n >= 58 off a byte boundary): fetch the missing high bits of the ninth
	// byte, zero past the end like the loop above.
	var b byte
	if i+8 < len(r.buf) {
		b = r.buf[i+8]
	}
	missing := uint(n) - (64 - sh)
	return w>>(64-uint(n)) | uint64(b)>>(8-missing)
}

// PeekBits returns the next n bits without consuming them, zero-filled past
// the end of the buffer like ReadBits. Decoders pair it with Skip to resolve
// variable-length prefix codes with one table probe.
//
//buddy:hotpath
func (r *BitReader) PeekBits(n int) uint64 {
	pos := r.pos
	v := r.ReadBits(n)
	r.pos = pos
	return v
}

// Skip consumes n bits without returning them.
//
//buddy:hotpath
func (r *BitReader) Skip(n int) { r.pos += n }

// ReadBytes fills dst with the next len(dst)*8 bits, the read-side mirror of
// WriteBytes. Byte-aligned readers take one copy (zero-filling past the end
// of the buffer, like ReadBits); unaligned readers stitch each output byte
// from two adjacent stream bytes instead of re-walking bit chunks.
//
//buddy:hotpath
func (r *BitReader) ReadBytes(dst []byte) {
	off := r.pos & 7
	byteIdx := r.pos >> 3
	r.pos += len(dst) * 8
	if off == 0 {
		n := copy(dst, r.buf[min(byteIdx, len(r.buf)):])
		for i := n; i < len(dst); i++ {
			dst[i] = 0
		}
		return
	}
	cur := uint64(0)
	if byteIdx < len(r.buf) {
		cur = uint64(r.buf[byteIdx])
	}
	for i := range dst {
		next := uint64(0)
		if byteIdx+1+i < len(r.buf) {
			next = uint64(r.buf[byteIdx+1+i])
		}
		dst[i] = byte(cur<<uint(off) | next>>uint(8-off))
		cur = next
	}
}

// Pos returns the number of bits consumed.
func (r *BitReader) Pos() int { return r.pos }

// Overrun reports whether more bits were read than the buffer holds.
func (r *BitReader) Overrun() bool { return r.pos > len(r.buf)*8 }
