package compress

// BitWriter accumulates a big-endian bit stream. Compressors use it to
// produce the exact encoded bit layout, so compressed sizes are bit-accurate
// rather than estimated.
type BitWriter struct {
	buf  []byte
	nbit int
}

// NewBitWriter returns a writer with capacity pre-allocated for n bits.
func NewBitWriter(n int) *BitWriter {
	return &BitWriter{buf: make([]byte, 0, (n+7)/8)}
}

// WriteBits appends the low n bits of v, most-significant bit first.
func (w *BitWriter) WriteBits(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		bit := byte(v>>uint(i)) & 1
		byteIdx := w.nbit >> 3
		if byteIdx == len(w.buf) {
			w.buf = append(w.buf, 0)
		}
		if bit != 0 {
			w.buf[byteIdx] |= 1 << uint(7-w.nbit&7)
		}
		w.nbit++
	}
}

// Len returns the number of bits written so far.
func (w *BitWriter) Len() int { return w.nbit }

// Bytes returns the accumulated stream, zero-padded to a byte boundary.
func (w *BitWriter) Bytes() []byte { return w.buf }

// BitReader consumes a big-endian bit stream produced by BitWriter.
type BitReader struct {
	buf []byte
	pos int
}

// NewBitReader wraps buf for reading.
func NewBitReader(buf []byte) *BitReader { return &BitReader{buf: buf} }

// ReadBits reads n bits and returns them right-aligned. Reading past the end
// of the buffer yields zero bits, which callers treat as a framing error via
// Overrun.
func (r *BitReader) ReadBits(n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v <<= 1
		byteIdx := r.pos >> 3
		if byteIdx < len(r.buf) {
			v |= uint64(r.buf[byteIdx]>>uint(7-r.pos&7)) & 1
		}
		r.pos++
	}
	return v
}

// Pos returns the number of bits consumed.
func (r *BitReader) Pos() int { return r.pos }

// Overrun reports whether more bits were read than the buffer holds.
func (r *BitReader) Overrun() bool { return r.pos > len(r.buf)*8 }
