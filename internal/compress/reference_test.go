package compress

import (
	"bytes"
	"encoding/binary"
	"math/bits"
	"testing"

	"buddy/internal/gen"
)

// This file preserves the pre-word-kernel encoders verbatim as test-only
// reference implementations. The word-level kernels in bpc.go/bdi.go/fpc.go/
// cpack.go/fvc.go/zero.go must stay byte-identical to these — same stream,
// same bit count — over every generator shape and the fuzz corpus, which is
// what keeps the golden figures (Fig 3 gmeans, Fig 7 finals) pinned through
// the performance rewrite. Do not "fix" or modernize these copies: their
// value is that they do not change.

// --- reference BPC (bit-by-bit plane transpose) ---

func refBPCPlanesOf(entry []byte) (base uint32, dbp [bpcPlanes + 1]uint32) {
	var words [bpcWords]uint32
	for i := 0; i < bpcWords; i++ {
		words[i] = binary.LittleEndian.Uint32(entry[i*4:])
	}
	base = words[0]
	var deltas [bpcDeltas]uint64
	for i := 0; i < bpcDeltas; i++ {
		d := int64(words[i+1]) - int64(words[i])
		deltas[i] = uint64(d) & ((1 << bpcPlanes) - 1) // 33-bit two's complement
	}
	for b := 0; b < bpcPlanes; b++ {
		var plane uint32
		for i := 0; i < bpcDeltas; i++ {
			plane |= uint32((deltas[i]>>uint(b))&1) << uint(i)
		}
		dbp[b] = plane
	}
	return base, dbp
}

func refBPCWriteBase(w *BitWriter, base uint32) {
	v := int32(base)
	switch {
	case v == 0:
		w.WriteBits(0b000, 3)
	case v >= -8 && v < 8:
		w.WriteBits(0b001, 3)
		w.WriteBits(uint64(base)&0xF, 4)
	case v >= -128 && v < 128:
		w.WriteBits(0b010, 3)
		w.WriteBits(uint64(base)&0xFF, 8)
	case v >= -32768 && v < 32768:
		w.WriteBits(0b011, 3)
		w.WriteBits(uint64(base)&0xFFFF, 16)
	default:
		w.WriteBits(0b1, 1)
		w.WriteBits(uint64(base), 32)
	}
}

func refBPCEncodeTo(w *BitWriter, entry []byte) {
	base, dbp := refBPCPlanesOf(entry)
	refBPCWriteBase(w, base)
	b := bpcPlanes - 1
	for b >= 0 {
		dbx := dbp[b] ^ dbp[b+1]
		if dbx == 0 {
			run := 1
			for b-run >= 0 && dbp[b-run]^dbp[b-run+1] == 0 && run < 33 {
				run++
			}
			if run == 1 {
				w.WriteBits(0b001, 3)
			} else {
				w.WriteBits(0b01, 2)
				w.WriteBits(uint64(run-2), 5)
			}
			b -= run
			continue
		}
		tz := bits.TrailingZeros32(dbx)
		switch {
		case dbx == allOnes31:
			w.WriteBits(0b00000, 5)
		case dbp[b] == 0:
			w.WriteBits(0b00001, 5)
		case dbx>>uint(tz) == 3:
			w.WriteBits(0b00010, 5)
			w.WriteBits(uint64(tz), 5)
		case dbx>>uint(tz) == 1:
			w.WriteBits(0b00011, 5)
			w.WriteBits(uint64(tz), 5)
		default:
			w.WriteBits(0b1, 1)
			w.WriteBits(uint64(dbx), bpcDeltas)
		}
		b--
	}
}

func refBPCAppend(dst, entry []byte) ([]byte, int) {
	start := len(dst)
	var w BitWriter
	w.Reset(dst)
	w.WriteBits(0, 1)
	refBPCEncodeTo(&w, entry)
	if bits := w.Len() - start*8 - 1; bits < EntryBytes*8 {
		return w.Bytes(), bits
	}
	rawFallback(&w, start, entry)
	return w.Bytes(), EntryBytes * 8
}

// --- reference BDI (byte-wise element loads, bit-at-a-time mask emission) ---

type refBDIScratch struct {
	base   uint64
	mask   [bdiMaxElems]bool
	deltas [bdiMaxElems]uint64
}

func refBDIElem(entry []byte, baseBytes, i int) uint64 {
	switch baseBytes {
	case 2:
		return uint64(binary.LittleEndian.Uint16(entry[i*2:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(entry[i*4:]))
	default:
		return binary.LittleEndian.Uint64(entry[i*8:])
	}
}

func refSignedFits(v uint64, width, deltaBits int) bool {
	sv := refSignExtend(v, width*8)
	lim := int64(1) << uint(deltaBits-1)
	return sv >= -lim && sv < lim
}

func refSignExtend(v uint64, bits int) int64 {
	shift := 64 - uint(bits)
	return int64(v<<shift) >> shift
}

func refBDITry(entry []byte, e bdiEncoding, st *refBDIScratch) bool {
	elems := EntryBytes / e.baseBytes
	haveBase := false
	st.base = 0
	for i := 0; i < elems; i++ {
		v := refBDIElem(entry, e.baseBytes, i)
		if refSignedFits(v, e.baseBytes, e.deltaBits) {
			st.mask[i] = true
			st.deltas[i] = v
			continue
		}
		st.mask[i] = false
		if !haveBase {
			st.base = v
			haveBase = true
		}
		d := v - st.base
		if !refSignedFits(d, e.baseBytes, e.deltaBits) {
			return false
		}
		st.deltas[i] = d
	}
	return true
}

func refAllZero(entry []byte) bool {
	for _, b := range entry {
		if b != 0 {
			return false
		}
	}
	return true
}

func refRepeated8(entry []byte) (uint64, bool) {
	v := binary.LittleEndian.Uint64(entry)
	for i := 8; i < EntryBytes; i += 8 {
		if binary.LittleEndian.Uint64(entry[i:]) != v {
			return 0, false
		}
	}
	return v, true
}

func refBDIAppend(dst, entry []byte) ([]byte, int) {
	start := len(dst)
	var w BitWriter
	w.Reset(dst)
	switch {
	case refAllZero(entry):
		w.WriteBits(0, 4)
	default:
		if v, ok := refRepeated8(entry); ok {
			w.WriteBits(1, 4)
			w.WriteBits(v, 64)
			break
		}
		var st refBDIScratch
		done := false
		for _, e := range bdiEncodings {
			if !refBDITry(entry, e, &st) {
				continue
			}
			elems := EntryBytes / e.baseBytes
			w.WriteBits(uint64(e.id), 4)
			w.WriteBits(st.base, e.baseBytes*8)
			for i := 0; i < elems; i++ {
				if st.mask[i] {
					w.WriteBits(1, 1)
				} else {
					w.WriteBits(0, 1)
				}
			}
			for i := 0; i < elems; i++ {
				w.WriteBits(st.deltas[i], e.deltaBits)
			}
			done = true
			break
		}
		if !done {
			w.WriteBits(15, 4)
			w.WriteBytes(entry)
		}
	}
	bits := w.Len() - start*8
	if bits >= EntryBytes*8 {
		bits = EntryBytes * 8
	}
	return w.Bytes(), bits
}

// --- reference FPC (per-word byte loads with zero-run lookahead) ---

func refFPCFits(v uint32, bits int) bool {
	sv := int32(v)
	lim := int32(1) << uint(bits-1)
	return sv >= -lim && sv < lim
}

func refFPCHalfFits(h uint16) bool {
	sv := int16(h)
	return sv >= -128 && sv < 128
}

func refFPCEncode(entry []byte, w *BitWriter) {
	i := 0
	for i < bpcWords {
		v := binary.LittleEndian.Uint32(entry[i*4:])
		if v == 0 {
			run := 1
			for i+run < bpcWords && run < 8 &&
				binary.LittleEndian.Uint32(entry[(i+run)*4:]) == 0 {
				run++
			}
			w.WriteBits(0b000, 3)
			w.WriteBits(uint64(run-1), 3)
			i += run
			continue
		}
		switch {
		case refFPCFits(v, 4):
			w.WriteBits(0b001, 3)
			w.WriteBits(uint64(v)&0xF, 4)
		case refFPCFits(v, 8):
			w.WriteBits(0b010, 3)
			w.WriteBits(uint64(v)&0xFF, 8)
		case refFPCFits(v, 16):
			w.WriteBits(0b011, 3)
			w.WriteBits(uint64(v)&0xFFFF, 16)
		case v&0xFFFF == 0:
			w.WriteBits(0b100, 3)
			w.WriteBits(uint64(v>>16), 16)
		case refFPCHalfFits(uint16(v)) && refFPCHalfFits(uint16(v>>16)):
			w.WriteBits(0b101, 3)
			w.WriteBits(uint64(v)&0xFF, 8)
			w.WriteBits(uint64(v>>16)&0xFF, 8)
		case byte(v) == byte(v>>8) && byte(v) == byte(v>>16) && byte(v) == byte(v>>24):
			w.WriteBits(0b110, 3)
			w.WriteBits(uint64(v)&0xFF, 8)
		default:
			w.WriteBits(0b111, 3)
			w.WriteBits(uint64(v), 32)
		}
		i++
	}
}

func refFPCAppend(dst, entry []byte) ([]byte, int) {
	start := len(dst)
	var w BitWriter
	w.Reset(dst)
	w.WriteBits(0, 1)
	refFPCEncode(entry, &w)
	if bits := w.Len() - start*8 - 1; bits < EntryBytes*8 {
		return w.Bytes(), bits
	}
	rawFallback(&w, start, entry)
	return w.Bytes(), EntryBytes * 8
}

// --- reference C-PACK (per-word byte loads, FIFO dictionary) ---

type refCPackDict struct {
	entries [cpackDictSize]uint32
	n       int
	next    int
}

func (d *refCPackDict) push(w uint32) {
	d.entries[d.next] = w
	d.next = (d.next + 1) % cpackDictSize
	if d.n < cpackDictSize {
		d.n++
	}
}

func (d *refCPackDict) lookup(w uint32) (idx, klass int) {
	klass = 0
	for i := 0; i < d.n; i++ {
		e := d.entries[i]
		switch {
		case e == w:
			return i, 4
		case klass < 3 && e&0xFFFFFF00 == w&0xFFFFFF00:
			idx, klass = i, 3
		case klass < 2 && e&0xFFFF0000 == w&0xFFFF0000:
			idx, klass = i, 2
		}
	}
	return idx, klass
}

func refCPackEncode(entry []byte, w *BitWriter) {
	var dict refCPackDict
	for i := 0; i < bpcWords; i++ {
		v := binary.LittleEndian.Uint32(entry[i*4:])
		if v == 0 {
			w.WriteBits(0b00, 2)
			continue
		}
		if v&0xFFFFFF00 == 0 {
			w.WriteBits(0b1101, 4)
			w.WriteBits(uint64(v)&0xFF, 8)
			continue
		}
		idx, klass := dict.lookup(v)
		switch klass {
		case 4:
			w.WriteBits(0b10, 2)
			w.WriteBits(uint64(idx), 4)
		case 3:
			w.WriteBits(0b1110, 4)
			w.WriteBits(uint64(idx), 4)
			w.WriteBits(uint64(v)&0xFF, 8)
			dict.push(v)
		case 2:
			w.WriteBits(0b1100, 4)
			w.WriteBits(uint64(idx), 4)
			w.WriteBits(uint64(v)&0xFFFF, 16)
			dict.push(v)
		default:
			w.WriteBits(0b01, 2)
			w.WriteBits(uint64(v), 32)
			dict.push(v)
		}
	}
}

func refCPackAppend(dst, entry []byte) ([]byte, int) {
	start := len(dst)
	var w BitWriter
	w.Reset(dst)
	w.WriteBits(0, 1)
	refCPackEncode(entry, &w)
	if bits := w.Len() - start*8 - 1; bits < EntryBytes*8 {
		return w.Bytes(), bits
	}
	rawFallback(&w, start, entry)
	return w.Bytes(), EntryBytes * 8
}

// --- reference FVC (first-seen values occurring at least twice) ---

func refFVCEncode(entry []byte, w *BitWriter) {
	var words [bpcWords]uint32
	for i := 0; i < bpcWords; i++ {
		words[i] = binary.LittleEndian.Uint32(entry[i*4:])
	}
	var dict [fvcDictMax]uint32
	nd := 0
	for i := 0; i < bpcWords && nd < fvcDictMax; i++ {
		v := words[i]
		dup := false
		for j := 0; j < nd; j++ {
			if dict[j] == v {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		count := 0
		for j := i; j < bpcWords; j++ {
			if words[j] == v {
				count++
			}
		}
		if count >= 2 {
			dict[nd] = v
			nd++
		}
	}
	w.WriteBits(uint64(nd), 3)
	for i := 0; i < nd; i++ {
		w.WriteBits(uint64(dict[i]), 32)
	}
	for i := 0; i < bpcWords; i++ {
		v := words[i]
		hit := false
		for j := 0; j < nd; j++ {
			if dict[j] == v {
				w.WriteBits(1, 1)
				w.WriteBits(uint64(j), 3)
				hit = true
				break
			}
		}
		if !hit {
			w.WriteBits(0, 1)
			w.WriteBits(uint64(v), 32)
		}
	}
}

func refFVCAppend(dst, entry []byte) ([]byte, int) {
	start := len(dst)
	var w BitWriter
	w.Reset(dst)
	w.WriteBits(0, 1)
	refFVCEncode(entry, &w)
	if bits := w.Len() - start*8 - 1; bits < EntryBytes*8 {
		return w.Bytes(), bits
	}
	rawFallback(&w, start, entry)
	return w.Bytes(), EntryBytes * 8
}

// --- reference zero codec ---

func refZeroAppend(dst, entry []byte) ([]byte, int) {
	var w BitWriter
	w.Reset(dst)
	if refAllZero(entry) {
		w.WriteBits(0, 1)
		return w.Bytes(), 0
	}
	w.WriteBits(1, 1)
	w.WriteBytes(entry)
	return w.Bytes(), EntryBytes * 8
}

// refAppend dispatches to the reference encoder matching codec c.
func refAppend(c Codec, dst, entry []byte) ([]byte, int) {
	switch c.(type) {
	case BPC:
		return refBPCAppend(dst, entry)
	case BDI:
		return refBDIAppend(dst, entry)
	case FPC:
		return refFPCAppend(dst, entry)
	case FVC:
		return refFVCAppend(dst, entry)
	case CPack:
		return refCPackAppend(dst, entry)
	case Zero:
		return refZeroAppend(dst, entry)
	}
	panic("no reference encoder for " + c.Name())
}

// checkAgainstReference fails the test if c's encode of entry differs from
// the reference encoder in stream bytes or bit count.
func checkAgainstReference(t *testing.T, c Codec, entry []byte, label string) {
	t.Helper()
	stream, bits := c.AppendCompressed(nil, entry)
	wantStream, wantBits := refAppend(c, nil, entry)
	if bits != wantBits {
		t.Fatalf("%s/%s: bits = %d, reference = %d", c.Name(), label, bits, wantBits)
	}
	if !bytes.Equal(stream, wantStream) {
		t.Fatalf("%s/%s: stream differs from reference\n got %x\nwant %x",
			c.Name(), label, stream, wantStream)
	}
}

// crossCheckGens is codecGens plus the sparse-activation shapes the word
// kernels fast-path: the reference equivalence must hold exactly where the
// sparsity pre-pass fires.
func crossCheckGens() []gen.Generator {
	return append(codecGens(),
		gen.SparseFP16{ZeroFrac: 0.5},
		gen.SparseFP16{ZeroFrac: 0.7},
		gen.SparseFP16{ZeroFrac: 0.9},
	)
}

// TestWordKernelsMatchReference is the rewrite's safety net: every codec's
// word-level kernel must emit byte-identical streams and bit counts to the
// preserved pre-rewrite encoder over every generator shape and a battery of
// adversarial structural entries (all-zero, every single-set-bit position,
// boundary patterns).
func TestWordKernelsMatchReference(t *testing.T) {
	for _, c := range allCodecs() {
		for gi, g := range crossCheckGens() {
			for seed := uint64(0); seed < 8; seed++ {
				entry := entryOf(t, g, seed*101+uint64(gi))
				checkAgainstReference(t, c, entry, g.Name())
			}
		}
		// All-zero and every single-set-bit entry: the structural extremes
		// of the zero short-circuit and the sparsity pre-pass.
		entry := make([]byte, EntryBytes)
		checkAgainstReference(t, c, entry, "all-zero")
		for bit := 0; bit < EntryBytes*8; bit++ {
			entry[bit>>3] = 1 << uint(bit&7)
			checkAgainstReference(t, c, entry, "single-bit")
			entry[bit>>3] = 0
		}
		// Patterns that sit on encoder decision boundaries.
		boundary := [][]byte{
			bytes.Repeat([]byte{0xFF}, EntryBytes),
			bytes.Repeat([]byte{0x7F, 0x00, 0x00, 0x00}, EntryBytes/4), // max 8-bit SE word
			bytes.Repeat([]byte{0x80, 0x00, 0x00, 0x00}, EntryBytes/4),
			bytes.Repeat([]byte{0x00, 0x80, 0xFF, 0xFF}, EntryBytes/4), // 16-bit SE negative
			bytes.Repeat([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08}, EntryBytes/8),
		}
		for _, e := range boundary {
			checkAgainstReference(t, c, e, "boundary")
		}
	}
}
