package compress

import (
	"testing"

	"buddy/internal/gen"
)

// Codec micro-benchmarks: the single-pass surface per algorithm, on a
// GPU-typical FP64 field (the same data shape as the §2.4 comparison).
// Steady state must report 0 B/op — the pooled-scratch contract the core
// data path relies on.

func benchEntry(b *testing.B) []byte {
	b.Helper()
	entry := make([]byte, EntryBytes)
	gen.Noisy64{NoiseBits: 8, HiStep: 1}.Fill(entry, gen.NewRNG(1, 1))
	return entry
}

// BenchmarkAppendCompressed measures one full encode (stream + exact bits)
// per entry with a reused scratch buffer.
func BenchmarkAppendCompressed(b *testing.B) {
	entry := benchEntry(b)
	for _, c := range Registry() {
		b.Run(c.Name(), func(b *testing.B) {
			scratch := make([]byte, 0, MaxStreamBytes)
			b.SetBytes(EntryBytes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				stream, _ := c.AppendCompressed(scratch[:0], entry)
				scratch = stream[:0]
			}
		})
	}
}

// BenchmarkDecompressInto measures one full decode into caller memory.
func BenchmarkDecompressInto(b *testing.B) {
	entry := benchEntry(b)
	dst := make([]byte, EntryBytes)
	for _, c := range Registry() {
		b.Run(c.Name(), func(b *testing.B) {
			stream, _ := c.AppendCompressed(nil, entry)
			b.SetBytes(EntryBytes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := c.DecompressInto(dst, stream); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
