package compress

import (
	"testing"

	"buddy/internal/gen"
)

// Codec micro-benchmarks over a matrix of entry shapes rather than a single
// data point: all-zero entries (the one-probe short-circuit), 90%/70%-sparse
// fp16 activations (the zero-run pre-pass the cDMA sparsity numbers
// motivate), dense random (worst case, raw fallback), a patterned ramp
// (best case for delta codecs) and the noisy FP64 field the original
// single-shape benchmark used. Steady state must report 0 B/op — the
// pooled-scratch contract the core data path relies on — and every run
// reports ns/entry, the quantity BENCH_baseline.json pins for `make
// bench-gate`.

type benchShape struct {
	name string
	g    gen.Generator
}

func benchShapes() []benchShape {
	return []benchShape{
		{"zeros", gen.Zeros{}},
		{"sparse90", gen.SparseFP16{ZeroFrac: 0.9}},
		{"sparse70", gen.SparseFP16{ZeroFrac: 0.7}},
		{"dense", gen.Random{}},
		{"pattern", gen.Ramp{Start: -100, Step: 3}},
		{"noisy64", gen.Noisy64{NoiseBits: 8, HiStep: 1}},
	}
}

func shapeEntry(b *testing.B, s benchShape) []byte {
	b.Helper()
	entry := make([]byte, EntryBytes)
	s.g.Fill(entry, gen.NewRNG(1, 1))
	return entry
}

func reportNsPerEntry(b *testing.B) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/entry")
}

// BenchmarkAppendCompressed measures one full encode (stream + exact bits)
// per entry with a reused scratch buffer, per codec per shape.
func BenchmarkAppendCompressed(b *testing.B) {
	for _, c := range Registry() {
		for _, s := range benchShapes() {
			b.Run(c.Name()+"/"+s.name, func(b *testing.B) {
				entry := shapeEntry(b, s)
				scratch := make([]byte, 0, MaxStreamBytes)
				b.SetBytes(EntryBytes)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					stream, _ := c.AppendCompressed(scratch[:0], entry)
					scratch = stream[:0]
				}
				reportNsPerEntry(b)
			})
		}
	}
}

// BenchmarkVariedStream measures the BPC codec over 16384 distinct
// 90%-sparse entries instead of one repeated entry: every iteration decodes
// a different code sequence, so the branch-predictor warmth that makes
// single-entry numbers flattering is gone. This is the shape the async
// serving path actually sees — it is the benchmark that motivated the
// word-level parse loop and the dense/sparse decode split — and the gate
// pins it alongside the single-entry matrix.
func BenchmarkVariedStream(b *testing.B) {
	const n = 16384
	data := make([]byte, n*EntryBytes)
	(gen.SparseFP16{ZeroFrac: 0.9}).Fill(data, gen.NewRNG(7, 1))
	streams := make([][]byte, n)
	c := NewBPC()
	for i := 0; i < n; i++ {
		s, _ := c.AppendCompressed(nil, data[i*EntryBytes:(i+1)*EntryBytes])
		streams[i] = s
	}
	b.Run("encode", func(b *testing.B) {
		scratch := make([]byte, 0, MaxStreamBytes)
		b.SetBytes(EntryBytes)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, _ := c.AppendCompressed(scratch[:0], data[(i%n)*EntryBytes:(i%n+1)*EntryBytes])
			scratch = s[:0]
		}
		reportNsPerEntry(b)
	})
	b.Run("decode", func(b *testing.B) {
		dst := make([]byte, EntryBytes)
		b.SetBytes(EntryBytes)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.DecompressInto(dst, streams[i%n]); err != nil {
				b.Fatal(err)
			}
		}
		reportNsPerEntry(b)
	})
}

// BenchmarkDecompressInto measures one full decode into caller memory, per
// codec per shape.
func BenchmarkDecompressInto(b *testing.B) {
	dst := make([]byte, EntryBytes)
	for _, c := range Registry() {
		for _, s := range benchShapes() {
			b.Run(c.Name()+"/"+s.name, func(b *testing.B) {
				entry := shapeEntry(b, s)
				stream, _ := c.AppendCompressed(nil, entry)
				b.SetBytes(EntryBytes)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.DecompressInto(dst, stream); err != nil {
						b.Fatal(err)
					}
				}
				reportNsPerEntry(b)
			})
		}
	}
}
