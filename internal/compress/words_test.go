package compress

import (
	"testing"

	"buddy/internal/gen"
)

// TestTranspose32 pins the orientation of the packed butterfly transpose
// against the naive definition: bit i of output row b == bit b of input row
// i, with row 2m in the low lane of word m and row 2m+1 in the high lane.
func TestTranspose32(t *testing.T) {
	var orig [32]uint32
	var a, keep [entryWordCount]uint64
	r := gen.NewRNG(99, 1)
	for i := range orig {
		orig[i] = uint32(r.Uint64())
		a[i>>1] |= uint64(orig[i]) << (uint(i&1) * 32)
	}
	keep = a
	transpose32(&a)
	for b := 0; b < 32; b++ {
		var want uint32
		for i := 0; i < 32; i++ {
			want |= orig[i] >> uint(b) & 1 << uint(i)
		}
		if got := uint32(a[b>>1] >> (uint(b&1) * 32)); got != want {
			t.Fatalf("plane %d: got %#x, want %#x", b, got, want)
		}
	}
	// Involution: transposing twice restores the input.
	transpose32(&a)
	if a != keep {
		t.Fatal("transpose32 is not an involution")
	}
}

// TestEntryAllZero covers the one-probe zero test on both classes.
func TestEntryAllZero(t *testing.T) {
	entry := make([]byte, EntryBytes)
	if !EntryAllZero(entry) {
		t.Fatal("all-zero entry reported non-zero")
	}
	for i := 0; i < EntryBytes; i++ {
		entry[i] = 1
		if EntryAllZero(entry) {
			t.Fatalf("byte %d set but entry reported zero", i)
		}
		entry[i] = 0
	}
}

// TestAppendZeroEntryMatchesCodecs: the precomputed zero-entry table must be
// frame-identical to a live encode for every registered codec.
func TestAppendZeroEntryMatchesCodecs(t *testing.T) {
	zero := make([]byte, EntryBytes)
	for _, c := range Registry() {
		wantStream, wantBits := c.AppendCompressed(nil, zero)
		gotStream, gotBits := AppendZeroEntry(nil, c)
		if gotBits != wantBits {
			t.Errorf("%s: AppendZeroEntry bits = %d, encode = %d", c.Name(), gotBits, wantBits)
		}
		if string(gotStream) != string(wantStream) {
			t.Errorf("%s: AppendZeroEntry stream differs from live encode", c.Name())
		}
		if zb := ZeroEntryBits(c); zb != wantBits {
			t.Errorf("%s: ZeroEntryBits = %d, encode = %d", c.Name(), zb, wantBits)
		}
		// The prefix-preserving append contract.
		prefixed, _ := AppendZeroEntry([]byte{0xAA}, c)
		if prefixed[0] != 0xAA || string(prefixed[1:]) != string(wantStream) {
			t.Errorf("%s: AppendZeroEntry clobbers existing dst bytes", c.Name())
		}
	}
}
