package compress

import (
	"bytes"
	"encoding/binary"
	"testing"
	"testing/quick"

	"buddy/internal/gen"
)

func entryOf(t *testing.T, g gen.Generator, seed uint64) []byte {
	t.Helper()
	e := make([]byte, EntryBytes)
	g.Fill(e, gen.NewRNG(seed, 1))
	return e
}

func allCodecs() []Codec { return Registry() }

// bitsOf, streamOf and decode are one-shot test helpers over the
// single-pass Codec surface (the legacy allocate-per-call methods are gone).
func bitsOf(c Codec, entry []byte) int {
	_, bits := c.AppendCompressed(nil, entry)
	return bits
}

func streamOf(c Codec, entry []byte) []byte {
	stream, _ := c.AppendCompressed(nil, entry)
	return stream
}

func decode(c Codec, comp []byte) ([]byte, error) {
	dst := make([]byte, EntryBytes)
	if err := c.DecompressInto(dst, comp); err != nil {
		return nil, err
	}
	return dst, nil
}

func TestRoundToClass(t *testing.T) {
	cases := []struct {
		size, want int
	}{
		{0, 0}, {1, 8}, {8, 8}, {9, 16}, {17, 32}, {33, 64},
		{65, 80}, {81, 96}, {97, 128}, {128, 128}, {200, 128},
	}
	for _, c := range cases {
		if got := RoundToClass(c.size, OptimisticSizes); got != c.want {
			t.Errorf("RoundToClass(%d) = %d, want %d", c.size, got, c.want)
		}
	}
	if got := RoundToClass(33, SectorSizes); got != 64 {
		t.Errorf("RoundToClass(33, sectors) = %d, want 64", got)
	}
	if got := RoundToClass(1, SectorSizes); got != 32 {
		t.Errorf("RoundToClass(1, sectors) = %d, want 32", got)
	}
}

func TestSectorsNeeded(t *testing.T) {
	zero := make([]byte, EntryBytes)
	bpc := NewBPC()
	if got := SectorsNeeded(bpc, zero); got != 0 {
		t.Errorf("all-zero entry should need 0 sectors (zero-page), got %d", got)
	}
	rnd := make([]byte, EntryBytes)
	gen.Random{}.Fill(rnd, gen.NewRNG(7, 1))
	if got := SectorsNeeded(bpc, rnd); got != 4 {
		t.Errorf("random entry should need 4 sectors, got %d", got)
	}
}

func TestRoundTripAllCompressorsStructured(t *testing.T) {
	gens := []gen.Generator{
		gen.Zeros{},
		gen.Ramp{Start: -100, Step: 3},
		gen.Ramp{Start: 1 << 30, Step: -7},
		gen.Noisy32{NoiseBits: 4, SmoothStep: 17},
		gen.Noisy32{NoiseBits: 12, SmoothStep: 1},
		gen.Noisy64{NoiseBits: 8, HiStep: 2},
		gen.Random{},
		gen.Sparse32{Density: 0.4, Sigma: 1},
		gen.Weights32{Sigma: 0.02},
		gen.Weights32{Sigma: 0.02, QuantBits: 12},
		gen.Stripe{A: gen.Zeros{}, B: gen.Random{}, PeriodEntries: 2, AEntries: 1},
	}
	for _, c := range allCodecs() {
		for gi, g := range gens {
			for seed := uint64(0); seed < 8; seed++ {
				entry := entryOf(t, g, seed*13+uint64(gi))
				comp := streamOf(c, entry)
				got, err := decode(c, comp)
				if err != nil {
					t.Fatalf("%s/%s seed %d: decompress error: %v", c.Name(), g.Name(), seed, err)
				}
				if !bytes.Equal(got, entry) {
					t.Fatalf("%s/%s seed %d: round-trip mismatch", c.Name(), g.Name(), seed)
				}
			}
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	for _, c := range allCodecs() {
		c := c
		f := func(raw [EntryBytes]byte) bool {
			entry := raw[:]
			got, err := decode(c, streamOf(c, entry))
			return err == nil && bytes.Equal(got, entry)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestCompressedBitsMatchesCompress(t *testing.T) {
	// CompressedBits must equal the emitted payload (excluding the 1-bit
	// framing flag, which is metadata in hardware), capped at 1024.
	gens := []gen.Generator{
		gen.Zeros{}, gen.Ramp{Step: 5}, gen.Noisy32{NoiseBits: 9},
		gen.Random{}, gen.Weights32{Sigma: 0.5},
	}
	for _, c := range allCodecs() {
		for _, g := range gens {
			entry := entryOf(t, g, 99)
			bits := bitsOf(c, entry)
			if bits < 0 || bits > EntryBytes*8 {
				t.Errorf("%s/%s: CompressedBits out of range: %d", c.Name(), g.Name(), bits)
			}
		}
	}
}

func TestCompressedBitsDeterministic(t *testing.T) {
	for _, c := range allCodecs() {
		entry := entryOf(t, gen.Noisy32{NoiseBits: 7, SmoothStep: 3}, 5)
		a := bitsOf(c, entry)
		b := bitsOf(c, entry)
		if a != b {
			t.Errorf("%s: nondeterministic size %d vs %d", c.Name(), a, b)
		}
	}
}

func TestBPCKnownPatterns(t *testing.T) {
	bpc := NewBPC()

	zero := make([]byte, EntryBytes)
	if got := bitsOf(bpc, zero); got > 16 {
		t.Errorf("all-zero entry should compress to a few bits, got %d", got)
	}

	// A constant int32 ramp: all deltas equal, so one DBX plane per set bit
	// of the delta at most; must compress far below one sector.
	ramp := make([]byte, EntryBytes)
	gen.Ramp{Start: 1000, Step: 4}.Fill(ramp, gen.NewRNG(1, 1))
	if got := bitsOf(bpc, ramp); got > 32*8 {
		t.Errorf("constant-stride ramp should fit in one sector, got %d bits", got)
	}

	// Random data must fall back to raw.
	rnd := make([]byte, EntryBytes)
	gen.Random{}.Fill(rnd, gen.NewRNG(2, 1))
	if got := bitsOf(bpc, rnd); got != EntryBytes*8 {
		t.Errorf("random entry should be raw (1024 bits), got %d", got)
	}
}

func TestBPCOrderingSensitivity(t *testing.T) {
	// BPC is a delta transform: a sorted sequence must compress much better
	// than the same values shuffled.
	sorted := make([]byte, EntryBytes)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(sorted[i*4:], uint32(i*1000))
	}
	shuffled := make([]byte, EntryBytes)
	perm := gen.NewRNG(3, 1).Perm(32)
	for i, p := range perm {
		binary.LittleEndian.PutUint32(shuffled[i*4:], uint32(p*1000))
	}
	bpc := NewBPC()
	if s, sh := bitsOf(bpc, sorted), bitsOf(bpc, shuffled); s >= sh {
		t.Errorf("sorted (%d bits) should compress better than shuffled (%d bits)", s, sh)
	}
}

func TestBPCHomogeneousBeatsHeterogeneous(t *testing.T) {
	// §3.1: BPC works well for homogeneous data; interleaving two types
	// hurts. Build a homogeneous float32 entry and a struct-like mix.
	homog := make([]byte, EntryBytes)
	gen.Weights32{Sigma: 0.02, QuantBits: 14}.Fill(homog, gen.NewRNG(11, 1))
	mixed := make([]byte, EntryBytes)
	r := gen.NewRNG(12, 1)
	for i := 0; i < 32; i++ {
		var w uint32
		if i%2 == 0 {
			w = uint32(i) // int field
		} else {
			w = r.Uint32() // hash/pointer field
		}
		binary.LittleEndian.PutUint32(mixed[i*4:], w)
	}
	bpc := NewBPC()
	if h, m := bitsOf(bpc, homog), bitsOf(bpc, mixed); h >= m {
		t.Errorf("homogeneous (%d bits) should beat heterogeneous (%d bits)", h, m)
	}
}

func TestBDIKnownPatterns(t *testing.T) {
	bdi := NewBDI()
	rep := make([]byte, EntryBytes)
	for i := 0; i < EntryBytes; i += 8 {
		binary.LittleEndian.PutUint64(rep[i:], 0xDEADBEEFCAFEF00D)
	}
	if got := bitsOf(bdi, rep); got != 68 {
		t.Errorf("repeated-8 entry: got %d bits, want 68", got)
	}

	// Small values near a large base: qualifies for base8-delta1 (26 B + id).
	near := make([]byte, EntryBytes)
	base := uint64(1) << 40
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint64(near[i*8:], base+uint64(i))
	}
	want := 4 + bdiPayloadBits(bdiEncodings[0])
	if got := bitsOf(bdi, near); got != want {
		t.Errorf("base8-delta1 entry: got %d bits, want %d", got, want)
	}
}

func TestBDIImmediateDualBase(t *testing.T) {
	// Mix of small immediates and values near one large base must still
	// compress (this is the "immediate" in BDI).
	bdi := NewBDI()
	e := make([]byte, EntryBytes)
	base := uint64(0x123456789A) // needs > 4 bytes
	for i := 0; i < 16; i++ {
		v := base + uint64(i)
		if i%3 == 0 {
			v = uint64(i) // small immediate
		}
		binary.LittleEndian.PutUint64(e[i*8:], v)
	}
	if got := bitsOf(bdi, e); got >= EntryBytes*8 {
		t.Errorf("dual-base entry should compress, got %d bits", got)
	}
}

func TestFPCKnownPatterns(t *testing.T) {
	fpc := NewFPC()
	zero := make([]byte, EntryBytes)
	// 32 zero words = 4 runs of 8 -> 4 * 6 bits.
	if got := bitsOf(fpc, zero); got != 24 {
		t.Errorf("zero entry: got %d bits, want 24", got)
	}
	small := make([]byte, EntryBytes)
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(small[i*4:], uint32(i%8))
	}
	if got := bitsOf(fpc, small); got >= 32*16 {
		t.Errorf("small-value entry should compress well, got %d bits", got)
	}
}

func TestCPackDictionary(t *testing.T) {
	cp := NewCPack()
	e := make([]byte, EntryBytes)
	// Repeating a handful of distinct words exercises full dictionary hits.
	vals := []uint32{0xAABBCCDD, 0x11223344, 0x99887766}
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(e[i*4:], vals[i%len(vals)])
	}
	bits := bitsOf(cp, e)
	// 3 raw (34 bits) + 29 full matches (6 bits) = 276.
	if bits != 3*34+29*6 {
		t.Errorf("dictionary entry: got %d bits, want %d", bits, 3*34+29*6)
	}
}

func TestFVCDictionary(t *testing.T) {
	fvc := NewFVC()
	e := make([]byte, EntryBytes)
	// One repeated value dominates: dictionary of 1, 32 hits.
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(e[i*4:], 0xCAFEBABE)
	}
	// 3 (count) + 32 (dict) + 32 x (1+3) = 163 bits.
	if got := bitsOf(fvc, e); got != 3+32+32*4 {
		t.Errorf("repeated-value entry: got %d bits, want %d", got, 3+32+32*4)
	}
	// All-distinct words: dictionary empty, every word a miss -> raw cap.
	for i := 0; i < 32; i++ {
		binary.LittleEndian.PutUint32(e[i*4:], uint32(i)*2654435761)
	}
	if got := bitsOf(fvc, e); got != EntryBytes*8 {
		t.Errorf("distinct-word entry: got %d bits, want raw", got)
	}
}

func TestZeroCompressor(t *testing.T) {
	z := Zero{}
	zero := make([]byte, EntryBytes)
	if got := bitsOf(z, zero); got != 0 {
		t.Errorf("zero entry: got %d bits, want 0", got)
	}
	nz := make([]byte, EntryBytes)
	nz[127] = 1
	if got := bitsOf(z, nz); got != EntryBytes*8 {
		t.Errorf("non-zero entry: got %d bits, want raw", got)
	}
}

func TestOptimisticSize(t *testing.T) {
	bpc := NewBPC()
	zero := make([]byte, EntryBytes)
	if got := OptimisticSize(bpc, zero); got != 0 {
		t.Errorf("zero entry optimistic size = %d, want 0", got)
	}
	rnd := make([]byte, EntryBytes)
	gen.Random{}.Fill(rnd, gen.NewRNG(4, 1))
	if got := OptimisticSize(bpc, rnd); got != 128 {
		t.Errorf("random entry optimistic size = %d, want 128", got)
	}
}

func TestCompressorRanking(t *testing.T) {
	// §2.4: BPC was chosen for its high ratios on GPU-typical data. Verify
	// BPC's aggregate compressed size over a suite of GPU-typical patterns
	// is the smallest among the implemented algorithms. (Individual entries
	// may favor a baseline; the paper's claim is aggregate.)
	suite := []gen.Generator{
		gen.Noisy64{NoiseBits: 6, HiStep: 1},
		gen.Noisy64{NoiseBits: 14, HiStep: 2},
		gen.Noisy32{NoiseBits: 10, SmoothStep: 3},
		gen.Sparse32{Density: 0.5, Sigma: 1},
		gen.Weights32{Sigma: 0.02, QuantBits: 10},
		gen.Ramp{Step: 12},
	}
	total := func(c Codec) int {
		sum := 0
		for gi, g := range suite {
			for seed := uint64(0); seed < 4; seed++ {
				sum += bitsOf(c, entryOf(t, g, seed*31+uint64(gi)))
			}
		}
		return sum
	}
	bpc := total(NewBPC())
	for _, c := range []Codec{NewBDI(), NewFPC(), NewFVC(), NewCPack()} {
		if other := total(c); bpc >= other {
			t.Errorf("BPC (%d bits total) should beat %s (%d bits total) on GPU-typical suite", bpc, c.Name(), other)
		}
	}
}

func BenchmarkBPCCompress(b *testing.B) {
	entry := make([]byte, EntryBytes)
	gen.Noisy64{NoiseBits: 8, HiStep: 1}.Fill(entry, gen.NewRNG(1, 1))
	bpc := NewBPC()
	b.SetBytes(EntryBytes)
	for i := 0; i < b.N; i++ {
		bitsOf(bpc, entry)
	}
}
