package compress

import "encoding/binary"

// FVC implements Frequent Value Compression (Yang, Zhang & Gupta, MICRO
// 2000), completing the paper's algorithm-comparison set (§2.4 cites it as
// [41]). A small direct-mapped dictionary of frequently seen 32-bit values
// is trained on the entry's first pass; each word is then encoded as a hit
// (1 + index bits) or a miss (1 + 32 raw bits). Hardware FVC trains its
// table online across accesses; compressing each entry self-contained keeps
// the codec stateless, which is what a memory-compression deployment needs
// (any entry must decompress in isolation).
//
// Layout: 3-bit count of dictionary entries (0..7), the dictionary values
// (32 bits each), then one flag bit per word followed by either a 3-bit
// index or the raw word.
type FVC struct{}

// NewFVC returns the Frequent Value Compression codec.
func NewFVC() FVC { return FVC{} }

// Name implements Compressor.
func (FVC) Name() string { return "fvc" }

const fvcDictMax = 8

// fvcDict builds the entry's frequent-value dictionary: the up-to-8 most
// frequent words that occur at least twice (a singleton saves nothing).
func fvcDict(entry []byte) []uint32 {
	var words [bpcWords]uint32
	counts := make(map[uint32]int, bpcWords)
	for i := 0; i < bpcWords; i++ {
		words[i] = binary.LittleEndian.Uint32(entry[i*4:])
		counts[words[i]]++
	}
	var dict []uint32
	// Deterministic selection: scan words in order, pick first-seen values
	// with count >= 2 (stable across runs; a hardware table would behave
	// similarly with first-touch allocation).
	seen := make(map[uint32]bool, fvcDictMax)
	for i := 0; i < bpcWords && len(dict) < fvcDictMax; i++ {
		w := words[i]
		if counts[w] >= 2 && !seen[w] {
			seen[w] = true
			dict = append(dict, w)
		}
	}
	return dict
}

func fvcEncode(entry []byte, w *BitWriter) {
	dict := fvcDict(entry)
	w.WriteBits(uint64(len(dict)), 3)
	for _, v := range dict {
		w.WriteBits(uint64(v), 32)
	}
	idx := make(map[uint32]int, len(dict))
	for i, v := range dict {
		idx[v] = i
	}
	for i := 0; i < bpcWords; i++ {
		v := binary.LittleEndian.Uint32(entry[i*4:])
		if j, ok := idx[v]; ok {
			w.WriteBits(1, 1)
			w.WriteBits(uint64(j), 3)
		} else {
			w.WriteBits(0, 1)
			w.WriteBits(uint64(v), 32)
		}
	}
}

// CompressedBits implements Compressor.
func (FVC) CompressedBits(entry []byte) int {
	checkEntry(entry)
	w := NewBitWriter(EntryBytes*8 + 64)
	fvcEncode(entry, w)
	if w.Len() >= EntryBytes*8 {
		return EntryBytes * 8
	}
	return w.Len()
}

// Compress implements Compressor; the leading framing bit (0 = FVC stream,
// 1 = raw) mirrors the other codecs.
func (FVC) Compress(entry []byte) []byte {
	checkEntry(entry)
	enc := NewBitWriter(EntryBytes*8 + 64)
	fvcEncode(entry, enc)
	out := NewBitWriter(1 + enc.Len())
	if enc.Len() >= EntryBytes*8 {
		out.WriteBits(1, 1)
		for _, b := range entry {
			out.WriteBits(uint64(b), 8)
		}
		return out.Bytes()
	}
	out.WriteBits(0, 1)
	src := NewBitReader(enc.Bytes())
	for i := 0; i < enc.Len(); i++ {
		out.WriteBits(src.ReadBits(1), 1)
	}
	return out.Bytes()
}

// Decompress implements Compressor.
func (FVC) Decompress(comp []byte) ([]byte, error) {
	r := NewBitReader(comp)
	out := make([]byte, EntryBytes)
	if r.ReadBits(1) == 1 {
		for i := range out {
			out[i] = byte(r.ReadBits(8))
		}
		if r.Overrun() {
			return nil, ErrCorrupt
		}
		return out, nil
	}
	n := int(r.ReadBits(3))
	dict := make([]uint32, n)
	for i := range dict {
		dict[i] = uint32(r.ReadBits(32))
	}
	for i := 0; i < bpcWords; i++ {
		var v uint32
		if r.ReadBits(1) == 1 {
			j := int(r.ReadBits(3))
			if j >= n {
				return nil, ErrCorrupt
			}
			v = dict[j]
		} else {
			v = uint32(r.ReadBits(32))
		}
		binary.LittleEndian.PutUint32(out[i*4:], v)
	}
	if r.Overrun() {
		return nil, ErrCorrupt
	}
	return out, nil
}
