package compress

// FVC implements Frequent Value Compression (Yang, Zhang & Gupta, MICRO
// 2000), completing the paper's algorithm-comparison set (§2.4 cites it as
// [41]). A small direct-mapped dictionary of frequently seen 32-bit values
// is trained on the entry's first pass; each word is then encoded as a hit
// (1 + index bits) or a miss (1 + 32 raw bits). Hardware FVC trains its
// table online across accesses; compressing each entry self-contained keeps
// the codec stateless, which is what a memory-compression deployment needs
// (any entry must decompress in isolation).
//
// Layout: 3-bit count of dictionary entries (0..7), the dictionary values
// (32 bits each), then one flag bit per word followed by either a 3-bit
// index or the raw word.
type FVC struct{}

// NewFVC returns the Frequent Value Compression codec.
func NewFVC() FVC { return FVC{} }

// Name implements Codec.
func (FVC) Name() string { return "fvc" }

// fvcDictMax is the dictionary capacity: 7, not 8, because the 3-bit count
// header must represent every possible size 0..nd. An 8-entry table trained
// on an entry with eight distinct repeated values would write its count as
// 0b000 and corrupt the stream (found by FuzzRoundTrip; the offending entry
// is pinned in testdata/fuzz).
const fvcDictMax = 7

// fvcEncode writes the unframed FVC stream for the entry's word view. The
// frequent-value dictionary is the up-to-8 first-seen values occurring at
// least twice (a singleton saves nothing) — deterministic, like a hardware
// table with first-touch allocation. With only 32 words per entry, linear
// scans beat hash maps and keep the encode allocation-free; the duplicate
// probe stops at the second occurrence, and hit/miss codes batch through a
// 64-bit emission register (a miss code is 33 bits).
//
//buddy:hotpath
func fvcEncode(wv *[entryWordCount]uint64, w *BitWriter) {
	var words [bpcWords]uint32
	for i := 0; i < entryWordCount; i++ {
		words[2*i] = uint32(wv[i])
		words[2*i+1] = uint32(wv[i] >> 32)
	}
	var dict [fvcDictMax]uint32
	nd := 0
	for i := 0; i < bpcWords && nd < fvcDictMax; i++ {
		v := words[i]
		dup := false
		for j := 0; j < nd; j++ {
			if dict[j] == v {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		count := 0
		for j := i; j < bpcWords && count < 2; j++ {
			if words[j] == v {
				count++
			}
		}
		if count >= 2 {
			dict[nd] = v
			nd++
		}
	}
	w.WriteBits(uint64(nd), 3)
	for i := 0; i < nd; i++ {
		w.WriteBits(uint64(dict[i]), 32)
	}
	pend, pendN := uint64(0), 0
	for i := 0; i < bpcWords; i++ {
		v := words[i]
		code := uint64(v) // miss: flag 0 then the raw word
		n := 33
		for j := 0; j < nd; j++ {
			if dict[j] == v {
				code = 0b1000 | uint64(j) // hit: flag 1 then the 3-bit index
				n = 4
				break
			}
		}
		if pendN+n > 64 {
			w.WriteBits(pend, pendN)
			pend, pendN = 0, 0
		}
		pend = pend<<uint(n) | code
		pendN += n
	}
	if pendN > 0 {
		w.WriteBits(pend, pendN)
	}
}

// AppendCompressed implements Codec; the leading framing bit (0 = FVC
// stream, 1 = raw) mirrors the other codecs.
//
//buddy:hotpath
func (FVC) AppendCompressed(dst, entry []byte) ([]byte, int) {
	checkEntry(entry)
	start := len(dst)
	var w BitWriter
	w.Reset(dst)
	w.WriteBits(0, 1)
	var wv [entryWordCount]uint64
	loadWords(entry, &wv)
	fvcEncode(&wv, &w)
	if bits := w.Len() - start*8 - 1; bits < EntryBytes*8 {
		return w.Bytes(), bits
	}
	rawFallback(&w, start, entry)
	return w.Bytes(), EntryBytes * 8
}

// DecompressInto implements Codec.
//
//buddy:hotpath
func (FVC) DecompressInto(dst, comp []byte) error {
	checkDst(dst)
	r := NewBitReader(comp)
	if r.ReadBits(1) == 1 {
		return decodeRawEntry(dst, r)
	}
	n := int(r.ReadBits(3))
	var dict [fvcDictMax]uint32
	for i := 0; i < n; i++ {
		dict[i] = uint32(r.ReadBits(32))
	}
	var wv [entryWordCount]uint64
	for i := 0; i < bpcWords; i++ {
		var v uint32
		if r.ReadBits(1) == 1 {
			j := int(r.ReadBits(3))
			if j >= n {
				return ErrCorrupt
			}
			v = dict[j]
		} else {
			v = uint32(r.ReadBits(32))
		}
		wv[i>>1] |= uint64(v) << (uint(i&1) * 32)
	}
	if r.Overrun() {
		return ErrCorrupt
	}
	storeWords(dst, &wv)
	return nil
}
