package compress

import "encoding/binary"

// BDI implements Base-Delta-Immediate compression (Pekhimenko et al., PACT
// 2012), one of the algorithms the paper compared before selecting BPC
// (§2.4). The 128 B entry is encoded as one arbitrary base plus narrow
// per-element deltas, with a second implicit base of zero ("immediate"): a
// per-element mask bit selects which base each delta is relative to.
//
// Encodings tried, smallest first (sizes include the 4-bit encoding ID):
//
//	id  base  delta  elems  payload bytes (base + mask + deltas)
//	 0  zeros             -> 0
//	 1  rep8              -> 8   (one repeated 64-bit value)
//	 2  8B    1B     16   -> 8 + 2 + 16 = 26
//	 3  4B    1B     32   -> 4 + 4 + 32 = 40
//	 4  8B    2B     16   -> 8 + 2 + 32 = 42
//	 5  4B    2B     32   -> 4 + 4 + 64 = 72
//	 6  2B    1B     64   -> 2 + 8 + 64 = 74
//	 7  8B    4B     16   -> 8 + 2 + 64 = 74
//	15  raw               -> 128
//
// The kernel works on the 64-bit word view: elements are sliced out of
// sixteen loaded words, the range test is one branchless add-and-mask per
// element, the mask bits accumulate into a single register emitted with one
// WriteBits, and deltas pack 64 bits at a time (every encoding's delta width
// divides 64 and no entry word straddles a pack boundary). An all-zero
// 64-bit word short-circuits all of its elements at once — they are
// immediates with delta zero — so sparse entries are classified in time
// proportional to their non-zero words.
type BDI struct{}

// NewBDI returns the Base-Delta-Immediate codec.
func NewBDI() BDI { return BDI{} }

// Name implements Codec.
func (BDI) Name() string { return "bdi" }

type bdiEncoding struct {
	id        uint8
	baseBytes int
	deltaBits int
}

// Ordered by ascending compressed size for 128 B entries.
var bdiEncodings = []bdiEncoding{
	{2, 8, 8},
	{3, 4, 8},
	{4, 8, 16},
	{5, 4, 16},
	{6, 2, 8},
	{7, 8, 32},
}

func bdiPayloadBits(e bdiEncoding) int {
	elems := EntryBytes / e.baseBytes
	return e.baseBytes*8 + elems + elems*e.deltaBits
}

// bdiMaxElems is the element count of the narrowest base (2 B): 64.
const bdiMaxElems = EntryBytes / 2

// bdiChunks is the largest packed-delta word count across encodings
// (64 elements x 8 delta bits, or 16 x 32 = 512 bits = 8 words).
const bdiChunks = 8

// bdiParams is one encoding's precomputed kernel geometry.
type bdiParams struct {
	id        uint8
	baseBits  int    // base width in bits
	deltaBits int    // delta width in bits
	elems     int    // elements per entry
	epw       int    // elements per 64-bit entry word
	elemShift uint   // element width in bits (log-free shift amount)
	elemMask  uint64 // low elemShift bits (all-ones for 64-bit elements)
	deltaMask uint64 // low deltaBits bits
	lim       uint64 // 1 << (deltaBits-1): signed range is [-lim, lim)
	perChunk  int    // deltas per packed 64-bit chunk
}

var bdiParamTable []bdiParams

// bdiParamByID maps encoding ID to its bdiParams, nil for invalid IDs.
var bdiParamByID [16]*bdiParams

func init() {
	bdiParamTable = make([]bdiParams, len(bdiEncodings))
	for i, e := range bdiEncodings {
		elemBits := e.baseBytes * 8
		mask := ^uint64(0)
		if elemBits < 64 {
			mask = 1<<uint(elemBits) - 1
		}
		bdiParamTable[i] = bdiParams{
			id:        e.id,
			baseBits:  elemBits,
			deltaBits: e.deltaBits,
			elems:     EntryBytes / e.baseBytes,
			epw:       8 / e.baseBytes,
			elemShift: uint(elemBits),
			elemMask:  mask,
			deltaMask: 1<<uint(e.deltaBits) - 1,
			lim:       1 << uint(e.deltaBits-1),
			perChunk:  64 / e.deltaBits,
		}
		bdiParamByID[e.id] = &bdiParamTable[i]
	}
}

func signExtend(v uint64, bits int) int64 {
	shift := 64 - uint(bits)
	return int64(v<<shift) >> shift
}

// bdiTryWords attempts encoding p over the word view. On success it returns
// true with the base value, the mask register (element 0 at the MSB end of
// the low p.elems bits), and the packed delta chunks (element 0 at the MSB
// of chunk 0) ready for bulk emission.
//
//buddy:hotpath
func bdiTryWords(w *[entryWordCount]uint64, p *bdiParams, base, maskOut *uint64, chunks *[bdiChunks]uint64) bool {
	var (
		b        uint64
		haveBase bool
		mask     uint64
		chunk    uint64
		fill     int
		ci       int
	)
	wordBits := uint(p.epw * p.deltaBits)
	for k := 0; k < entryWordCount; k++ {
		w64 := w[k]
		if w64 == 0 {
			// Every element of a zero word is an immediate with delta 0.
			mask = mask<<uint(p.epw) | (1<<uint(p.epw) - 1)
			chunk <<= wordBits
			fill += p.epw
			if fill == p.perChunk {
				chunks[ci] = chunk
				ci++
				chunk, fill = 0, 0
			}
			continue
		}
		// Elements are little-endian within the word: element 0 occupies the
		// low bits, so walk a shifting copy from the bottom up.
		rem := w64
		for e := 0; e < p.epw; e++ {
			v := rem & p.elemMask
			rem >>= p.elemShift % 64 // shift 64 is a no-op for 1-elem words
			var d uint64
			if (v+p.lim)&p.elemMask < p.lim<<1 {
				mask = mask<<1 | 1 // immediate: relative to zero base
				d = v
			} else {
				if !haveBase {
					b, haveBase = v, true
				}
				d = v - b
				if (d+p.lim)&p.elemMask >= p.lim<<1 {
					return false
				}
				mask <<= 1
			}
			chunk = chunk<<uint(p.deltaBits) | d&p.deltaMask
			fill++
			if fill == p.perChunk {
				chunks[ci] = chunk
				ci++
				chunk, fill = 0, 0
			}
		}
	}
	*base = b
	*maskOut = mask
	return true
}

// AppendCompressed implements Codec. BDI carries no separate framing bit —
// the 4-bit encoding ID is the frame — so the reported bits are the full
// stream for compressed encodings and the raw cap of EntryBytes*8 for the
// ID-15 fallback (the ID is hardware metadata there, as with the other
// codecs' framing flag).
//
//buddy:hotpath
func (BDI) AppendCompressed(dst, entry []byte) ([]byte, int) {
	checkEntry(entry)
	start := len(dst)
	var w BitWriter
	w.Reset(dst)

	var wv [entryWordCount]uint64
	loadWords(entry, &wv)

	rep := true
	or := wv[0]
	for i := 1; i < entryWordCount; i++ {
		or |= wv[i]
		if wv[i] != wv[0] {
			rep = false
		}
	}
	switch {
	case or == 0:
		w.WriteBits(0, 4)
	case rep:
		w.WriteBits(1, 4)
		w.WriteBits(wv[0], 64)
	default:
		done := false
		var base, mask uint64
		var chunks [bdiChunks]uint64
		for i := range bdiParamTable {
			p := &bdiParamTable[i]
			if !bdiTryWords(&wv, p, &base, &mask, &chunks) {
				continue
			}
			w.WriteBits(uint64(p.id), 4)
			w.WriteBits(base, p.baseBits)
			w.WriteBits(mask, p.elems)
			n := p.elems * p.deltaBits / 64
			for c := 0; c < n; c++ {
				w.WriteBits(chunks[c], 64)
			}
			done = true
			break
		}
		if !done {
			w.WriteBits(15, 4)
			w.WriteBytes(entry)
		}
	}
	bits := w.Len() - start*8
	if bits >= EntryBytes*8 {
		bits = EntryBytes * 8
	}
	return w.Bytes(), bits
}

// DecompressInto implements Codec. The reader mirrors the packed layout: one
// ReadBits for the mask, 64-bit chunk reads for the deltas, elements
// assembled into the word view and stored in one pass. The consumed bit
// count per encoding is identical to per-element reads, so truncation
// surfaces through Overrun exactly as before.
//
//buddy:hotpath
func (BDI) DecompressInto(dst, comp []byte) error {
	checkDst(dst)
	r := NewBitReader(comp)
	id := uint8(r.ReadBits(4))
	switch id {
	case 0:
		clear(dst)
	case 1:
		v := r.ReadBits(64)
		for i := 0; i < EntryBytes; i += 8 {
			binary.LittleEndian.PutUint64(dst[i:], v)
		}
	case 15:
		return decodeRawEntry(dst, r)
	default:
		p := bdiParamByID[id]
		if p == nil {
			return ErrCorrupt
		}
		base := r.ReadBits(p.baseBits)
		mask := r.ReadBits(p.elems)
		var wv [entryWordCount]uint64
		i := 0 // element index
		var w64 uint64
		n := p.elems * p.deltaBits / 64
		for c := 0; c < n; c++ {
			chunk := r.ReadBits(64)
			for j := p.perChunk - 1; j >= 0; j-- {
				d := uint64(signExtend(chunk>>uint(j*p.deltaBits), p.deltaBits))
				if mask>>uint(p.elems-1-i)&1 == 0 {
					d += base
				}
				// Element i lands in the low-to-high slot of its entry word.
				w64 |= (d & p.elemMask) << (uint(i%p.epw) * p.elemShift % 64)
				i++
				if i%p.epw == 0 {
					wv[i/p.epw-1] = w64
					w64 = 0
				}
			}
		}
		storeWords(dst, &wv)
	}
	if r.Overrun() {
		return ErrCorrupt
	}
	return nil
}
