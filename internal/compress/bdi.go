package compress

import "encoding/binary"

// BDI implements Base-Delta-Immediate compression (Pekhimenko et al., PACT
// 2012), one of the algorithms the paper compared before selecting BPC
// (§2.4). The 128 B entry is encoded as one arbitrary base plus narrow
// per-element deltas, with a second implicit base of zero ("immediate"): a
// per-element mask bit selects which base each delta is relative to.
//
// Encodings tried, smallest first (sizes include the 4-bit encoding ID):
//
//	id  base  delta  elems  payload bytes (base + mask + deltas)
//	 0  zeros             -> 0
//	 1  rep8              -> 8   (one repeated 64-bit value)
//	 2  8B    1B     16   -> 8 + 2 + 16 = 26
//	 3  4B    1B     32   -> 4 + 4 + 32 = 40
//	 4  8B    2B     16   -> 8 + 2 + 32 = 42
//	 5  4B    2B     32   -> 4 + 4 + 64 = 72
//	 6  2B    1B     64   -> 2 + 8 + 64 = 74
//	 7  8B    4B     16   -> 8 + 2 + 64 = 74
//	15  raw               -> 128
type BDI struct{}

// NewBDI returns the Base-Delta-Immediate codec.
func NewBDI() BDI { return BDI{} }

// Name implements Compressor.
func (BDI) Name() string { return "bdi" }

type bdiEncoding struct {
	id        uint8
	baseBytes int
	deltaBits int
}

// Ordered by ascending compressed size for 128 B entries.
var bdiEncodings = []bdiEncoding{
	{2, 8, 8},
	{3, 4, 8},
	{4, 8, 16},
	{5, 4, 16},
	{6, 2, 8},
	{7, 8, 32},
}

func bdiPayloadBits(e bdiEncoding) int {
	elems := EntryBytes / e.baseBytes
	return e.baseBytes*8 + elems + elems*e.deltaBits
}

func bdiElems(entry []byte, baseBytes int) []uint64 {
	n := EntryBytes / baseBytes
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		switch baseBytes {
		case 2:
			out[i] = uint64(binary.LittleEndian.Uint16(entry[i*2:]))
		case 4:
			out[i] = uint64(binary.LittleEndian.Uint32(entry[i*4:]))
		default:
			out[i] = binary.LittleEndian.Uint64(entry[i*8:])
		}
	}
	return out
}

func signedFits(v uint64, width, deltaBits int) bool {
	sv := signExtend(v, width*8)
	lim := int64(1) << uint(deltaBits-1)
	return sv >= -lim && sv < lim
}

func signExtend(v uint64, bits int) int64 {
	shift := 64 - uint(bits)
	return int64(v<<shift) >> shift
}

// bdiTry reports whether encoding e can represent entry and, if so, the base
// and per-element (useZeroBase, delta) assignments.
func bdiTry(entry []byte, e bdiEncoding) (base uint64, mask []bool, deltas []uint64, ok bool) {
	elems := bdiElems(entry, e.baseBytes)
	mask = make([]bool, len(elems))
	deltas = make([]uint64, len(elems))
	haveBase := false
	for i, v := range elems {
		if signedFits(v, e.baseBytes, e.deltaBits) {
			mask[i] = true // immediate: relative to zero base
			deltas[i] = v
			continue
		}
		if !haveBase {
			base = v
			haveBase = true
		}
		d := v - base
		if !signedFits(d, e.baseBytes, e.deltaBits) {
			return 0, nil, nil, false
		}
		deltas[i] = d
	}
	return base, mask, deltas, true
}

func bdiAllZero(entry []byte) bool {
	for _, b := range entry {
		if b != 0 {
			return false
		}
	}
	return true
}

func bdiRepeated8(entry []byte) (uint64, bool) {
	v := binary.LittleEndian.Uint64(entry)
	for i := 8; i < EntryBytes; i += 8 {
		if binary.LittleEndian.Uint64(entry[i:]) != v {
			return 0, false
		}
	}
	return v, true
}

// CompressedBits implements Compressor.
func (BDI) CompressedBits(entry []byte) int {
	checkEntry(entry)
	if bdiAllZero(entry) {
		return 4
	}
	if _, ok := bdiRepeated8(entry); ok {
		return 4 + 64
	}
	for _, e := range bdiEncodings {
		if _, _, _, ok := bdiTry(entry, e); ok {
			return 4 + bdiPayloadBits(e)
		}
	}
	return EntryBytes * 8
}

// Compress implements Compressor.
func (BDI) Compress(entry []byte) []byte {
	checkEntry(entry)
	w := NewBitWriter(EntryBytes*8 + 8)
	switch {
	case bdiAllZero(entry):
		w.WriteBits(0, 4)
	default:
		if v, ok := bdiRepeated8(entry); ok {
			w.WriteBits(1, 4)
			w.WriteBits(v, 64)
			break
		}
		done := false
		for _, e := range bdiEncodings {
			base, mask, deltas, ok := bdiTry(entry, e)
			if !ok {
				continue
			}
			w.WriteBits(uint64(e.id), 4)
			w.WriteBits(base, e.baseBytes*8)
			for _, m := range mask {
				if m {
					w.WriteBits(1, 1)
				} else {
					w.WriteBits(0, 1)
				}
			}
			for _, d := range deltas {
				w.WriteBits(d, e.deltaBits)
			}
			done = true
			break
		}
		if !done {
			w.WriteBits(15, 4)
			for _, b := range entry {
				w.WriteBits(uint64(b), 8)
			}
		}
	}
	return w.Bytes()
}

// Decompress implements Compressor.
func (BDI) Decompress(comp []byte) ([]byte, error) {
	r := NewBitReader(comp)
	out := make([]byte, EntryBytes)
	id := uint8(r.ReadBits(4))
	switch id {
	case 0:
		return out, nil
	case 1:
		v := r.ReadBits(64)
		for i := 0; i < EntryBytes; i += 8 {
			binary.LittleEndian.PutUint64(out[i:], v)
		}
	case 15:
		for i := range out {
			out[i] = byte(r.ReadBits(8))
		}
	default:
		var enc *bdiEncoding
		for i := range bdiEncodings {
			if bdiEncodings[i].id == id {
				enc = &bdiEncodings[i]
				break
			}
		}
		if enc == nil {
			return nil, ErrCorrupt
		}
		elems := EntryBytes / enc.baseBytes
		base := r.ReadBits(enc.baseBytes * 8)
		mask := make([]bool, elems)
		for i := range mask {
			mask[i] = r.ReadBits(1) == 1
		}
		for i := 0; i < elems; i++ {
			d := uint64(signExtend(r.ReadBits(enc.deltaBits), enc.deltaBits))
			v := d
			if !mask[i] {
				v = base + d
			}
			switch enc.baseBytes {
			case 2:
				binary.LittleEndian.PutUint16(out[i*2:], uint16(v))
			case 4:
				binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
			default:
				binary.LittleEndian.PutUint64(out[i*8:], v)
			}
		}
	}
	if r.Overrun() {
		return nil, ErrCorrupt
	}
	return out, nil
}
