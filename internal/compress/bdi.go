package compress

import "encoding/binary"

// BDI implements Base-Delta-Immediate compression (Pekhimenko et al., PACT
// 2012), one of the algorithms the paper compared before selecting BPC
// (§2.4). The 128 B entry is encoded as one arbitrary base plus narrow
// per-element deltas, with a second implicit base of zero ("immediate"): a
// per-element mask bit selects which base each delta is relative to.
//
// Encodings tried, smallest first (sizes include the 4-bit encoding ID):
//
//	id  base  delta  elems  payload bytes (base + mask + deltas)
//	 0  zeros             -> 0
//	 1  rep8              -> 8   (one repeated 64-bit value)
//	 2  8B    1B     16   -> 8 + 2 + 16 = 26
//	 3  4B    1B     32   -> 4 + 4 + 32 = 40
//	 4  8B    2B     16   -> 8 + 2 + 32 = 42
//	 5  4B    2B     32   -> 4 + 4 + 64 = 72
//	 6  2B    1B     64   -> 2 + 8 + 64 = 74
//	 7  8B    4B     16   -> 8 + 2 + 64 = 74
//	15  raw               -> 128
type BDI struct{}

// NewBDI returns the Base-Delta-Immediate codec.
func NewBDI() BDI { return BDI{} }

// Name implements Codec.
func (BDI) Name() string { return "bdi" }

type bdiEncoding struct {
	id        uint8
	baseBytes int
	deltaBits int
}

// Ordered by ascending compressed size for 128 B entries.
var bdiEncodings = []bdiEncoding{
	{2, 8, 8},
	{3, 4, 8},
	{4, 8, 16},
	{5, 4, 16},
	{6, 2, 8},
	{7, 8, 32},
}

func bdiPayloadBits(e bdiEncoding) int {
	elems := EntryBytes / e.baseBytes
	return e.baseBytes*8 + elems + elems*e.deltaBits
}

// bdiMaxElems is the element count of the narrowest base (2 B): 64.
const bdiMaxElems = EntryBytes / 2

// bdiScratch holds one encoding attempt's element assignments; fixed-size
// arrays keep the encode allocation-free.
type bdiScratch struct {
	base   uint64
	mask   [bdiMaxElems]bool
	deltas [bdiMaxElems]uint64
}

func bdiElem(entry []byte, baseBytes, i int) uint64 {
	switch baseBytes {
	case 2:
		return uint64(binary.LittleEndian.Uint16(entry[i*2:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(entry[i*4:]))
	default:
		return binary.LittleEndian.Uint64(entry[i*8:])
	}
}

func signedFits(v uint64, width, deltaBits int) bool {
	sv := signExtend(v, width*8)
	lim := int64(1) << uint(deltaBits-1)
	return sv >= -lim && sv < lim
}

func signExtend(v uint64, bits int) int64 {
	shift := 64 - uint(bits)
	return int64(v<<shift) >> shift
}

// bdiTry reports whether encoding e can represent entry, filling st with the
// base and per-element (useZeroBase, delta) assignments.
func bdiTry(entry []byte, e bdiEncoding, st *bdiScratch) bool {
	elems := EntryBytes / e.baseBytes
	haveBase := false
	st.base = 0
	for i := 0; i < elems; i++ {
		v := bdiElem(entry, e.baseBytes, i)
		if signedFits(v, e.baseBytes, e.deltaBits) {
			st.mask[i] = true // immediate: relative to zero base
			st.deltas[i] = v
			continue
		}
		st.mask[i] = false
		if !haveBase {
			st.base = v
			haveBase = true
		}
		d := v - st.base
		if !signedFits(d, e.baseBytes, e.deltaBits) {
			return false
		}
		st.deltas[i] = d
	}
	return true
}

func bdiAllZero(entry []byte) bool {
	for _, b := range entry {
		if b != 0 {
			return false
		}
	}
	return true
}

func bdiRepeated8(entry []byte) (uint64, bool) {
	v := binary.LittleEndian.Uint64(entry)
	for i := 8; i < EntryBytes; i += 8 {
		if binary.LittleEndian.Uint64(entry[i:]) != v {
			return 0, false
		}
	}
	return v, true
}

// AppendCompressed implements Codec. BDI carries no separate framing bit —
// the 4-bit encoding ID is the frame — so the reported bits are the full
// stream for compressed encodings and the raw cap of EntryBytes*8 for the
// ID-15 fallback (the ID is hardware metadata there, as with the other
// codecs' framing flag).
//
//buddy:hotpath
func (BDI) AppendCompressed(dst, entry []byte) ([]byte, int) {
	checkEntry(entry)
	start := len(dst)
	var w BitWriter
	w.Reset(dst)
	switch {
	case bdiAllZero(entry):
		w.WriteBits(0, 4)
	default:
		if v, ok := bdiRepeated8(entry); ok {
			w.WriteBits(1, 4)
			w.WriteBits(v, 64)
			break
		}
		var st bdiScratch
		done := false
		for _, e := range bdiEncodings {
			if !bdiTry(entry, e, &st) {
				continue
			}
			elems := EntryBytes / e.baseBytes
			w.WriteBits(uint64(e.id), 4)
			w.WriteBits(st.base, e.baseBytes*8)
			for i := 0; i < elems; i++ {
				if st.mask[i] {
					w.WriteBits(1, 1)
				} else {
					w.WriteBits(0, 1)
				}
			}
			for i := 0; i < elems; i++ {
				w.WriteBits(st.deltas[i], e.deltaBits)
			}
			done = true
			break
		}
		if !done {
			w.WriteBits(15, 4)
			w.WriteBytes(entry)
		}
	}
	bits := w.Len() - start*8
	if bits >= EntryBytes*8 {
		bits = EntryBytes * 8
	}
	return w.Bytes(), bits
}

// DecompressInto implements Codec.
//
//buddy:hotpath
func (BDI) DecompressInto(dst, comp []byte) error {
	checkDst(dst)
	r := NewBitReader(comp)
	id := uint8(r.ReadBits(4))
	switch id {
	case 0:
		clear(dst)
	case 1:
		v := r.ReadBits(64)
		for i := 0; i < EntryBytes; i += 8 {
			binary.LittleEndian.PutUint64(dst[i:], v)
		}
	case 15:
		return decodeRawEntry(dst, r)
	default:
		var enc *bdiEncoding
		for i := range bdiEncodings {
			if bdiEncodings[i].id == id {
				enc = &bdiEncodings[i]
				break
			}
		}
		if enc == nil {
			return ErrCorrupt
		}
		elems := EntryBytes / enc.baseBytes
		base := r.ReadBits(enc.baseBytes * 8)
		var mask [bdiMaxElems]bool
		for i := 0; i < elems; i++ {
			mask[i] = r.ReadBits(1) == 1
		}
		for i := 0; i < elems; i++ {
			d := uint64(signExtend(r.ReadBits(enc.deltaBits), enc.deltaBits))
			v := d
			if !mask[i] {
				v = base + d
			}
			switch enc.baseBytes {
			case 2:
				binary.LittleEndian.PutUint16(dst[i*2:], uint16(v))
			case 4:
				binary.LittleEndian.PutUint32(dst[i*4:], uint32(v))
			default:
				binary.LittleEndian.PutUint64(dst[i*8:], v)
			}
		}
	}
	if r.Overrun() {
		return ErrCorrupt
	}
	return nil
}
