package compress

import (
	"bytes"
	"errors"
	"testing"

	"buddy/internal/gen"
)

// codecGens spans the structural space: zeros, ramps, noisy numerics, raw
// random (the incompressible fallback), sparse and quantized weights.
func codecGens() []gen.Generator {
	return []gen.Generator{
		gen.Zeros{},
		gen.Ramp{Start: -100, Step: 3},
		gen.Noisy32{NoiseBits: 4, SmoothStep: 17},
		gen.Noisy64{NoiseBits: 8, HiStep: 2},
		gen.Random{},
		gen.Sparse32{Density: 0.4, Sigma: 1},
		gen.Weights32{Sigma: 0.02, QuantBits: 12},
	}
}

// TestAppendCompressedDeterministic pins the encode contract: repeated
// AppendCompressed passes over the same entry must produce identical
// streams and bit counts (the profiler and index builder depend on it).
func TestAppendCompressedDeterministic(t *testing.T) {
	for _, c := range allCodecs() {
		for gi, g := range codecGens() {
			for seed := uint64(0); seed < 4; seed++ {
				entry := entryOf(t, g, seed*17+uint64(gi))
				stream, bits := c.AppendCompressed(nil, entry)
				again, bits2 := c.AppendCompressed(nil, entry)
				if !bytes.Equal(stream, again) {
					t.Fatalf("%s/%s: nondeterministic stream", c.Name(), g.Name())
				}
				if bits != bits2 {
					t.Fatalf("%s/%s: nondeterministic bits %d vs %d",
						c.Name(), g.Name(), bits, bits2)
				}
			}
		}
	}
}

// TestAppendCompressedAppends verifies the append contract: existing dst
// bytes are preserved and the stream begins at the next byte boundary.
func TestAppendCompressedAppends(t *testing.T) {
	prefix := []byte{0xDE, 0xAD, 0xBE}
	for _, c := range allCodecs() {
		entry := entryOf(t, gen.Noisy32{NoiseBits: 6, SmoothStep: 5}, 3)
		solo, bits := c.AppendCompressed(nil, entry)
		dst := append([]byte(nil), prefix...)
		combined, bits2 := c.AppendCompressed(dst, entry)
		if bits != bits2 {
			t.Fatalf("%s: bits differ with prefix: %d vs %d", c.Name(), bits, bits2)
		}
		if !bytes.Equal(combined[:len(prefix)], prefix) {
			t.Fatalf("%s: prefix clobbered", c.Name())
		}
		if !bytes.Equal(combined[len(prefix):], solo) {
			t.Fatalf("%s: appended stream differs from standalone stream", c.Name())
		}
	}
}

// TestDecompressIntoRoundTrips pins the decode path over every generator
// shape.
func TestDecompressIntoRoundTrips(t *testing.T) {
	dst := make([]byte, EntryBytes)
	for _, c := range allCodecs() {
		for gi, g := range codecGens() {
			entry := entryOf(t, g, 7+uint64(gi))
			stream, _ := c.AppendCompressed(nil, entry)
			if err := c.DecompressInto(dst, stream); err != nil {
				t.Fatalf("%s/%s: DecompressInto: %v", c.Name(), g.Name(), err)
			}
			if !bytes.Equal(dst, entry) {
				t.Fatalf("%s/%s: DecompressInto round-trip mismatch", c.Name(), g.Name())
			}
		}
	}
}

// TestTruncatedStreamsReturnErrCorrupt: every proper byte-prefix of a valid
// stream must fail decoding — the decoder needs more bits than any shorter
// prefix holds, and every decoder checks for overrun.
func TestTruncatedStreamsReturnErrCorrupt(t *testing.T) {
	dst := make([]byte, EntryBytes)
	for _, c := range allCodecs() {
		for gi, g := range codecGens() {
			entry := entryOf(t, g, 11+uint64(gi))
			stream, _ := c.AppendCompressed(nil, entry)
			for cut := 0; cut < len(stream); cut++ {
				if err := c.DecompressInto(dst, stream[:cut]); !errors.Is(err, ErrCorrupt) {
					t.Fatalf("%s/%s: truncation to %d/%d bytes: got %v, want ErrCorrupt",
						c.Name(), g.Name(), cut, len(stream), err)
				}
			}
		}
	}
}

// TestCodecSteadyStateZeroAlloc proves the tentpole property: with a reused
// scratch buffer, compress and decompress allocate nothing for any codec on
// any data shape.
func TestCodecSteadyStateZeroAlloc(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	dst := make([]byte, EntryBytes)
	scratch := make([]byte, 0, MaxStreamBytes)
	for _, c := range allCodecs() {
		for gi, g := range codecGens() {
			entry := entryOf(t, g, 23+uint64(gi))
			if n := testing.AllocsPerRun(50, func() {
				stream, _ := c.AppendCompressed(scratch[:0], entry)
				scratch = stream[:0]
			}); n != 0 {
				t.Errorf("%s/%s: AppendCompressed allocates %.1f/op, want 0", c.Name(), g.Name(), n)
			}
			stream, _ := c.AppendCompressed(scratch[:0], entry)
			if n := testing.AllocsPerRun(50, func() {
				if err := c.DecompressInto(dst, stream); err != nil {
					t.Fatal(err)
				}
			}); n != 0 {
				t.Errorf("%s/%s: DecompressInto allocates %.1f/op, want 0", c.Name(), g.Name(), n)
			}
		}
	}
}

// TestSectorsForBits pins the metadata quantization, including the 63-bit
// zero-page boundary (payload + 1-bit framing must fit 64 bits).
func TestSectorsForBits(t *testing.T) {
	cases := []struct{ bits, want int }{
		{0, 0}, {1, 0}, {62, 0}, {63, 0}, {64, 1}, {256, 1},
		{257, 2}, {512, 2}, {513, 3}, {768, 3}, {769, 4}, {1024, 4},
	}
	for _, tc := range cases {
		if got := SectorsForBits(tc.bits); got != tc.want {
			t.Errorf("SectorsForBits(%d) = %d, want %d", tc.bits, got, tc.want)
		}
	}
}

// TestSizerMatchesSectorsNeeded: the reusable Sizer and the one-shot
// helpers must agree entry by entry.
func TestSizerMatchesSectorsNeeded(t *testing.T) {
	for _, c := range allCodecs() {
		sz := NewSizer(c)
		for gi, g := range codecGens() {
			entry := entryOf(t, g, 31+uint64(gi))
			if got, want := sz.Sectors(entry), SectorsNeeded(c, entry); got != want {
				t.Errorf("%s/%s: Sizer.Sectors = %d, SectorsNeeded = %d", c.Name(), g.Name(), got, want)
			}
			if got, want := sz.Bits(entry), bitsOf(c, entry); got != want {
				t.Errorf("%s/%s: Sizer.Bits = %d, one-shot bits = %d", c.Name(), g.Name(), got, want)
			}
		}
	}
}

// TestBitWriterChunked exercises the chunked writer/reader against straddled
// and aligned patterns of every width.
func TestBitWriterChunked(t *testing.T) {
	var w BitWriter
	w.Reset(nil)
	vals := []struct {
		v uint64
		n int
	}{
		{1, 1}, {0x2A, 7}, {0xFFFF, 16}, {0, 3}, {0x123456789ABCDEF0, 64},
		{5, 3}, {0xFF, 8}, {1, 1}, {0x7FFFFFFF, 31}, {0xCAFE, 33},
	}
	total := 0
	for _, tc := range vals {
		w.WriteBits(tc.v, tc.n)
		total += tc.n
	}
	if w.Len() != total {
		t.Fatalf("Len = %d, want %d", w.Len(), total)
	}
	r := NewBitReader(w.Bytes())
	for i, tc := range vals {
		want := tc.v
		if tc.n < 64 {
			want &= 1<<uint(tc.n) - 1
		}
		if got := r.ReadBits(tc.n); got != want {
			t.Fatalf("value %d: read %#x, want %#x", i, got, want)
		}
	}
	if r.Overrun() {
		t.Fatal("unexpected overrun")
	}
}

// TestBitWriterAppendsToPrefix pins Reset-onto-existing-buffer semantics.
func TestBitWriterAppendsToPrefix(t *testing.T) {
	prefix := []byte{1, 2, 3}
	var w BitWriter
	w.Reset(prefix)
	if w.Len() != 24 {
		t.Fatalf("Len after Reset = %d, want 24", w.Len())
	}
	w.WriteBits(0xAB, 8)
	out := w.Bytes()
	if !bytes.Equal(out, []byte{1, 2, 3, 0xAB}) {
		t.Fatalf("Bytes = %v", out)
	}
}
