package compress

// CPack implements C-PACK (Chen et al., IEEE TVLSI 2010), the
// dictionary-based baseline from the paper's algorithm comparison (§2.4).
// Words are matched against a 16-entry FIFO dictionary of recently seen
// words:
//
//	code    pattern                              bits
//	00      zero word (zzzz)                       2
//	01      no match, raw word (xxxx)             34
//	10      full dictionary match (mmmm)           6  (2 + 4-bit index)
//	1100    match on upper 2 bytes (mmxx)         24  (4 + 4 idx + 16 raw)
//	1101    three zero bytes + low byte (zzzx)    12  (4 + 8 raw)
//	1110    match on upper 3 bytes (mmmx)         16  (4 + 4 idx + 8 raw)
//
// Words that are not full matches or zeros are pushed into the dictionary;
// compressor and decompressor maintain identical dictionary state.
//
// The kernel walks the entry's word view: an all-zero 64-bit word emits both
// of its zzzz codes with one four-bit push and never touches the dictionary,
// and every code is assembled prefix+payload in a register and batched
// through a 64-bit emission accumulator (codes are at most 34 bits).
type CPack struct{}

// NewCPack returns the C-PACK codec.
func NewCPack() CPack { return CPack{} }

// Name implements Codec.
func (CPack) Name() string { return "cpack" }

const cpackDictSize = 16

type cpackDict struct {
	entries [cpackDictSize]uint32
	n       int
	next    int
}

//buddy:hotpath
func (d *cpackDict) push(w uint32) {
	d.entries[d.next] = w
	d.next = (d.next + 1) % cpackDictSize
	if d.n < cpackDictSize {
		d.n++
	}
}

// lookup returns the index of the best match and the match class:
// 4 = full word, 3 = upper 3 bytes, 2 = upper 2 bytes, 0 = none.
//
//buddy:hotpath
func (d *cpackDict) lookup(w uint32) (idx, klass int) {
	klass = 0
	for i := 0; i < d.n; i++ {
		e := d.entries[i]
		switch {
		case e == w:
			return i, 4
		case klass < 3 && e&0xFFFFFF00 == w&0xFFFFFF00:
			idx, klass = i, 3
		case klass < 2 && e&0xFFFF0000 == w&0xFFFF0000:
			idx, klass = i, 2
		}
	}
	return idx, klass
}

// cpackEncode writes the 32 word codes for the entry's word view.
//
//buddy:hotpath
func cpackEncode(wv *[entryWordCount]uint64, w *BitWriter) {
	var dict cpackDict
	pend, pendN := uint64(0), 0
	for i := 0; i < bpcWords; i++ {
		if i&1 == 0 && wv[i>>1] == 0 {
			// Two zero words: both zzzz codes in one push.
			if pendN+4 > 64 {
				w.WriteBits(pend, pendN)
				pend, pendN = 0, 0
			}
			pend <<= 4
			pendN += 4
			i++
			continue
		}
		v := u32(wv, i)
		var code uint64
		var n int
		if v == 0 {
			code, n = 0b00, 2
		} else if v&0xFFFFFF00 == 0 {
			code = 0b1101<<8 | uint64(v&0xFF)
			n = 12
		} else {
			idx, klass := dict.lookup(v)
			switch klass {
			case 4:
				code = 0b10<<4 | uint64(idx)
				n = 6
			case 3:
				code = 0b1110<<12 | uint64(idx)<<8 | uint64(v&0xFF)
				n = 16
				dict.push(v)
			case 2:
				code = 0b1100<<20 | uint64(idx)<<16 | uint64(v&0xFFFF)
				n = 24
				dict.push(v)
			default:
				code = 0b01<<32 | uint64(v)
				n = 34
				dict.push(v)
			}
		}
		if pendN+n > 64 {
			w.WriteBits(pend, pendN)
			pend, pendN = 0, 0
		}
		pend = pend<<uint(n) | code
		pendN += n
	}
	if pendN > 0 {
		w.WriteBits(pend, pendN)
	}
}

// AppendCompressed implements Codec; the leading framing bit (0 = C-PACK
// stream, 1 = raw) mirrors BPC/FPC.
//
//buddy:hotpath
func (CPack) AppendCompressed(dst, entry []byte) ([]byte, int) {
	checkEntry(entry)
	start := len(dst)
	var w BitWriter
	w.Reset(dst)
	w.WriteBits(0, 1)
	var wv [entryWordCount]uint64
	loadWords(entry, &wv)
	cpackEncode(&wv, &w)
	if bits := w.Len() - start*8 - 1; bits < EntryBytes*8 {
		return w.Bytes(), bits
	}
	rawFallback(&w, start, entry)
	return w.Bytes(), EntryBytes * 8
}

// DecompressInto implements Codec.
//
//buddy:hotpath
func (CPack) DecompressInto(dst, comp []byte) error {
	checkDst(dst)
	r := NewBitReader(comp)
	if r.ReadBits(1) == 1 {
		return decodeRawEntry(dst, r)
	}
	var wv [entryWordCount]uint64 // zero words are skipped, not written
	var dict cpackDict
	for i := 0; i < bpcWords; i++ {
		var v uint32
		if r.ReadBits(1) == 0 {
			if r.ReadBits(1) == 0 { // 00: zero
				continue
			}
			// 01: raw
			v = uint32(r.ReadBits(32))
			dict.push(v)
		} else if r.ReadBits(1) == 0 { // 10: full match
			idx := int(r.ReadBits(4))
			if idx >= dict.n {
				return ErrCorrupt
			}
			v = dict.entries[idx]
		} else {
			switch r.ReadBits(2) {
			case 0b00: // 1100 mmxx
				idx := int(r.ReadBits(4))
				if idx >= dict.n {
					return ErrCorrupt
				}
				v = dict.entries[idx]&0xFFFF0000 | uint32(r.ReadBits(16))
				dict.push(v)
			case 0b01: // 1101 zzzx
				v = uint32(r.ReadBits(8))
			case 0b10: // 1110 mmmx
				idx := int(r.ReadBits(4))
				if idx >= dict.n {
					return ErrCorrupt
				}
				v = dict.entries[idx]&0xFFFFFF00 | uint32(r.ReadBits(8))
				dict.push(v)
			default:
				return ErrCorrupt
			}
		}
		wv[i>>1] |= uint64(v) << (uint(i&1) * 32)
	}
	if r.Overrun() {
		return ErrCorrupt
	}
	storeWords(dst, &wv)
	return nil
}
