package compress

// Zero is the trivial compressor that recognizes only all-zero entries. It
// provides the floor of the algorithm-comparison ablation and doubles as the
// detector for the paper's mostly-zero allocation optimization (§3.4).
type Zero struct{}

// Name implements Compressor.
func (Zero) Name() string { return "zero" }

// AppendCompressed implements Codec: one framing bit (0 = zero entry, the
// payload is 0 bits — existence is encoded in metadata) or the framing bit
// plus the raw bytes.
func (Zero) AppendCompressed(dst, entry []byte) ([]byte, int) {
	checkEntry(entry)
	var w BitWriter
	w.Reset(dst)
	if bdiAllZero(entry) {
		w.WriteBits(0, 1)
		return w.Bytes(), 0
	}
	w.WriteBits(1, 1)
	w.WriteBytes(entry)
	return w.Bytes(), EntryBytes * 8
}

// DecompressInto implements Codec.
func (Zero) DecompressInto(dst, comp []byte) error {
	checkDst(dst)
	r := NewBitReader(comp)
	if r.ReadBits(1) == 0 {
		if r.Overrun() {
			return ErrCorrupt
		}
		clear(dst)
		return nil
	}
	return decodeRawEntry(dst, r)
}

// CompressedBits implements Compressor: 0 bits for an all-zero entry
// (existence is encoded in metadata), raw size otherwise.
//
// Deprecated: use AppendCompressed.
func (c Zero) CompressedBits(entry []byte) int { return legacyBits(c, entry) }

// Compress implements Compressor.
//
// Deprecated: use AppendCompressed.
func (c Zero) Compress(entry []byte) []byte { return legacyCompress(c, entry) }

// Decompress implements Compressor.
//
// Deprecated: use DecompressInto.
func (c Zero) Decompress(comp []byte) ([]byte, error) { return legacyDecompress(c, comp) }

// OptimisticSize returns the entry's compressed size rounded to the paper's
// optimistic eight-size study (Fig. 3): all-zero entries take the 0 B class
// (representable purely in metadata), others round up within
// OptimisticSizes.
func OptimisticSize(c Compressor, entry []byte) int {
	if bdiAllZero(entry) {
		return 0
	}
	return RoundToClass(CompressedBytes(c, entry), OptimisticSizes)
}
