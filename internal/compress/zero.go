package compress

// Zero is the trivial compressor that recognizes only all-zero entries. It
// provides the floor of the algorithm-comparison ablation and doubles as the
// detector for the paper's mostly-zero allocation optimization (§3.4).
type Zero struct{}

// Name implements Compressor.
func (Zero) Name() string { return "zero" }

// CompressedBits implements Compressor: 0 bits for an all-zero entry
// (existence is encoded in metadata), raw size otherwise.
func (Zero) CompressedBits(entry []byte) int {
	checkEntry(entry)
	if bdiAllZero(entry) {
		return 0
	}
	return EntryBytes * 8
}

// Compress implements Compressor: one framing bit (0 = zero entry) or the
// framing bit plus the raw bytes.
func (Zero) Compress(entry []byte) []byte {
	checkEntry(entry)
	w := NewBitWriter(1 + EntryBytes*8)
	if bdiAllZero(entry) {
		w.WriteBits(0, 1)
		return w.Bytes()
	}
	w.WriteBits(1, 1)
	for _, b := range entry {
		w.WriteBits(uint64(b), 8)
	}
	return w.Bytes()
}

// Decompress implements Compressor.
func (Zero) Decompress(comp []byte) ([]byte, error) {
	r := NewBitReader(comp)
	out := make([]byte, EntryBytes)
	if r.ReadBits(1) == 0 {
		return out, nil
	}
	for i := range out {
		out[i] = byte(r.ReadBits(8))
	}
	if r.Overrun() {
		return nil, ErrCorrupt
	}
	return out, nil
}

// OptimisticSize returns the entry's compressed size rounded to the paper's
// optimistic eight-size study (Fig. 3): all-zero entries take the 0 B class
// (representable purely in metadata), others round up within
// OptimisticSizes.
func OptimisticSize(c Compressor, entry []byte) int {
	if bdiAllZero(entry) {
		return 0
	}
	return RoundToClass(CompressedBytes(c, entry), OptimisticSizes)
}
