package compress

// Zero is the trivial compressor that recognizes only all-zero entries. It
// provides the floor of the algorithm-comparison ablation and doubles as the
// detector for the paper's mostly-zero allocation optimization (§3.4).
type Zero struct{}

// Name implements Codec.
func (Zero) Name() string { return "zero" }

// AppendCompressed implements Codec: one framing bit (0 = zero entry, the
// payload is 0 bits — existence is encoded in metadata) or the framing bit
// plus the raw bytes.
//
//buddy:hotpath
func (Zero) AppendCompressed(dst, entry []byte) ([]byte, int) {
	checkEntry(entry)
	var w BitWriter
	w.Reset(dst)
	if EntryAllZero(entry) {
		w.WriteBits(0, 1)
		return w.Bytes(), 0
	}
	w.WriteBits(1, 1)
	w.WriteBytes(entry)
	return w.Bytes(), EntryBytes * 8
}

// DecompressInto implements Codec.
//
//buddy:hotpath
func (Zero) DecompressInto(dst, comp []byte) error {
	checkDst(dst)
	r := NewBitReader(comp)
	if r.ReadBits(1) == 0 {
		if r.Overrun() {
			return ErrCorrupt
		}
		clear(dst)
		return nil
	}
	return decodeRawEntry(dst, r)
}

// OptimisticSize returns the entry's compressed size rounded to the paper's
// optimistic eight-size study (Fig. 3): all-zero entries take the 0 B class
// (representable purely in metadata), others round up within
// OptimisticSizes.
func OptimisticSize(c Codec, entry []byte) int {
	if EntryAllZero(entry) {
		return 0
	}
	return RoundToClass((oneShotBits(c, entry)+7)/8, OptimisticSizes)
}
