package compress

import "encoding/binary"

// The word view: every codec kernel operates on the 128 B entry as sixteen
// little-endian 64-bit words loaded once up front, instead of re-reading
// bytes (or single bits) from the entry as it scans. The view is unsafe-free
// — binary.LittleEndian compiles to single MOVs on little-endian targets —
// and the [16]uint64 scratch lives on the kernel's stack (fixed-size arrays
// never escape here, so a sync.Pool would only add overhead to the very
// paths this layer exists to strip).

// entryWordCount is EntryBytes / 8: the 64-bit word count of the view.
const entryWordCount = EntryBytes / 8

// loadWords fills w with entry's sixteen little-endian 64-bit words.
// entry must be EntryBytes long (the codec contract, checked by callers).
//
//buddy:hotpath
func loadWords(entry []byte, w *[entryWordCount]uint64) {
	_ = entry[EntryBytes-1]
	for i := 0; i < entryWordCount; i++ {
		w[i] = binary.LittleEndian.Uint64(entry[i*8:])
	}
}

// storeWords writes the sixteen words back as EntryBytes little-endian
// bytes, the inverse of loadWords.
//
//buddy:hotpath
func storeWords(dst []byte, w *[entryWordCount]uint64) {
	_ = dst[EntryBytes-1]
	for i := 0; i < entryWordCount; i++ {
		binary.LittleEndian.PutUint64(dst[i*8:], w[i])
	}
}

// u32 returns 32-bit word i (0..31) of the view: the even-indexed halves
// are the low 32 bits of each 64-bit word, odd-indexed the high.
//
//buddy:hotpath
func u32(w *[entryWordCount]uint64, i int) uint32 {
	v := w[i>>1]
	if i&1 != 0 {
		return uint32(v >> 32)
	}
	return uint32(v)
}

// EntryAllZero reports whether the 128 B entry is entirely zero with one
// probe: sixteen word loads ORed together. It is the test the data path
// runs ahead of codec dispatch (core.writeEntry, analysis.Build) so
// activation-like mostly-zero traffic never enters a codec at all.
// entry must be EntryBytes long.
//
//buddy:hotpath
func EntryAllZero(entry []byte) bool {
	_ = entry[EntryBytes-1]
	var or uint64
	for i := 0; i < entryWordCount; i++ {
		or |= binary.LittleEndian.Uint64(entry[i*8:])
	}
	return or == 0
}

// wordsAllZero is EntryAllZero over an already-loaded word view.
//
//buddy:hotpath
func wordsAllZero(w *[entryWordCount]uint64) bool {
	var or uint64
	for i := 0; i < entryWordCount; i++ {
		or |= w[i]
	}
	return or == 0
}

// transpose32 transposes a 32x32 bit matrix held two rows per 64-bit word —
// row 2m in the low lane of w[m], row 2m+1 in the high lane — in place:
// afterwards bit i of row b equals what bit b of row i was. The five
// butterfly rounds of masked swaps (Hacker's Delight 7-3) run on both
// 32-bit lanes per operation, so the whole transpose is ~48 word operations
// with constant masks and shifts instead of the 1024 single-bit moves of a
// naive transpose (or 80 single-lane swaps unpacked). Shifts of 16 or less
// never leak across lanes because the replicated masks are applied after
// the shift; the final row-pair round stays inside each word. BPC uses it
// to turn per-delta transition masks into bit-plane values when enough
// planes need materializing.
//
//buddy:hotpath
func transpose32(w *[entryWordCount]uint64) {
	// The first two rounds skip word pairs that are entirely zero: sparse
	// entries reach the transpose with most rows empty, and a dead pair costs
	// one OR-and-test instead of five ALU ops. Later rounds have already mixed
	// occupancy across the array, so their skip rate is not worth the test.
	for m := 0; m < 8; m++ { // rows 16 apart: words 8 apart
		a, b := w[m], w[m+8]
		if a|b == 0 {
			continue
		}
		t := (a>>16 ^ b) & 0x0000FFFF0000FFFF
		w[m] = a ^ t<<16
		w[m+8] = b ^ t
	}
	for g := 0; g < 16; g += 8 { // rows 8 apart: words 4 apart
		for m := g; m < g+4; m++ {
			a, b := w[m], w[m+4]
			if a|b == 0 {
				continue
			}
			t := (a>>8 ^ b) & 0x00FF00FF00FF00FF
			w[m] = a ^ t<<8
			w[m+4] = b ^ t
		}
	}
	for g := 0; g < 16; g += 4 { // rows 4 apart: words 2 apart
		for m := g; m < g+2; m++ {
			t := (w[m]>>4 ^ w[m+2]) & 0x0F0F0F0F0F0F0F0F
			w[m] ^= t << 4
			w[m+2] ^= t
		}
	}
	for m := 0; m < 16; m += 2 { // rows 2 apart: adjacent words
		t := (w[m]>>2 ^ w[m+1]) & 0x3333333333333333
		w[m] ^= t << 2
		w[m+1] ^= t
	}
	for m := 0; m < 16; m++ { // adjacent rows: the two lanes of one word
		v := w[m]
		t := (v>>1 ^ v>>32) & 0x55555555
		w[m] = v ^ (t<<1 | t<<32)
	}
}

// Every built-in codec encodes the all-zero entry to one fixed stream; the
// table below caches those streams (and their exact payload bit counts) so
// the zero short-circuit can emit the encoding without running the codec.
// The cache is filled at init by running each codec once, which keeps the
// short-circuit frame-compatible by construction: the bytes appended are
// the bytes AppendCompressed would have produced.

type zeroEncoding struct {
	stream [MaxStreamBytes]byte
	n      int
	bits   int
}

var zeroEncodings [6]zeroEncoding

// zeroEncIndex maps a built-in codec to its zeroEncodings slot, or -1 for
// codecs registered outside this package.
//
//buddy:hotpath
func zeroEncIndex(c Codec) int {
	switch c.(type) {
	case BPC:
		return 0
	case BDI:
		return 1
	case FPC:
		return 2
	case FVC:
		return 3
	case CPack:
		return 4
	case Zero:
		return 5
	default:
		return -1
	}
}

// initZeroEncodings fills the per-codec zero-entry stream table by encoding
// one all-zero entry with each built-in codec, straight into the table's
// fixed backing arrays.
//
//buddy:hotpath
func initZeroEncodings() {
	var zero [EntryBytes]byte
	for _, c := range Registry() {
		k := zeroEncIndex(c)
		if k < 0 {
			continue
		}
		z := &zeroEncodings[k]
		stream, bits := c.AppendCompressed(z.stream[:0], zero[:])
		z.n, z.bits = len(stream), bits
	}
}

func init() { initZeroEncodings() }

// AppendZeroEntry appends codec c's encoding of the all-zero entry to dst
// and returns the extended slice with the exact payload bit count — the
// same (stream, bits) AppendCompressed would produce, without entering the
// codec. Unknown codecs fall back to a real encode, so the short-circuit is
// safe ahead of any Codec.
//
//buddy:hotpath
func AppendZeroEntry(dst []byte, c Codec) ([]byte, int) {
	if k := zeroEncIndex(c); k >= 0 {
		z := &zeroEncodings[k]
		return append(dst, z.stream[:z.n]...), z.bits
	}
	var zero [EntryBytes]byte
	return c.AppendCompressed(dst, zero[:])
}

// ZeroEntryBits returns the exact payload bit count of codec c's all-zero
// entry encoding (the Sizer fast path without a Sizer).
func ZeroEntryBits(c Codec) int {
	if k := zeroEncIndex(c); k >= 0 {
		return zeroEncodings[k].bits
	}
	_, bits := c.AppendCompressed(nil, make([]byte, EntryBytes))
	return bits
}
