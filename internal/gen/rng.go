// Package gen synthesizes the byte-level memory contents of the paper's
// workloads. The original study takes memory dumps of real GPU applications
// (Tab. 1); those dumps are not available, so we generate data whose
// 128-byte-granularity structure reproduces the compressibility behaviour the
// paper reports (Fig. 3, Fig. 6): smooth floating-point fields for HPC grids,
// struct-of-arrays stripes for FF_HPGMG, sparse ReLU activations and noisy
// gradients for DL tensors, mostly-zero slabs, and incompressible pools.
//
// All generators are deterministic given a 64-bit seed (PCG-XSH-RR 64/32),
// so every figure in the reproduction is bit-for-bit repeatable.
package gen

import "math"

// RNG is a PCG-XSH-RR 64/32 pseudo-random generator. It is deliberately
// implemented from scratch (stdlib-only constraint) and is deterministic
// across platforms.
type RNG struct {
	state uint64
	inc   uint64
}

const pcgMult = 6364136223846793005

// NewRNG returns a generator seeded with seed on stream seq.
func NewRNG(seed, seq uint64) *RNG {
	r := &RNG{inc: seq<<1 | 1}
	r.state = r.inc + seed
	r.Uint32()
	return r
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMult + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn with non-positive n")
	}
	// Lemire-style rejection-free bound is overkill here; modulo bias is
	// negligible for the n (< 2^20) used by the generators.
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm fills a permutation of [0, n) deterministically.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator from r; the derived stream is a
// pure function of r's current state, so splitting is itself deterministic.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64(), r.Uint64()|1)
}
