package gen

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42, 7), NewRNG(42, 7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("RNG diverged at draw %d", i)
		}
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	a, b := NewRNG(42, 1), NewRNG(42, 3)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 5 {
		t.Errorf("streams should differ: %d collisions", same)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(1, 1)
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Intn(16)]++
	}
	for i, c := range buckets {
		if c < n/16*9/10 || c > n/16*11/10 {
			t.Errorf("bucket %d count %d deviates >10%% from uniform", i, c)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(2, 1)
	f := func(uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(3, 1)
	var sum, sumSq float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %.4f, want ~0", mean)
	}
	if variance < 0.95 || variance > 1.05 {
		t.Errorf("normal variance %.4f, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(4, 1)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p[:10])
		}
		seen[v] = true
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	gens := []Generator{
		Zeros{}, Ramp{Start: 5, Step: 3}, Noisy32{NoiseBits: 8},
		Noisy64{NoiseBits: 8, HiStep: 1}, Random{},
		Sparse32{Density: 0.4, Sigma: 1}, Weights32{Sigma: 0.1},
		SparseFP16{ZeroFrac: 0.7},
		Stripe{A: Zeros{}, B: Random{}, PeriodEntries: 4, AEntries: 2},
		Blend{A: Zeros{}, B: Random{}, PA: 0.5},
	}
	for _, g := range gens {
		a := make([]byte, 1024)
		b := make([]byte, 1024)
		g.Fill(a, NewRNG(9, 2))
		g.Fill(b, NewRNG(9, 2))
		if string(a) != string(b) {
			t.Errorf("%s: nondeterministic output", g.Name())
		}
	}
}

func TestZerosAndRandom(t *testing.T) {
	buf := make([]byte, 512)
	Random{}.Fill(buf, NewRNG(1, 1))
	Zeros{}.Fill(buf, NewRNG(1, 1))
	for _, v := range buf {
		if v != 0 {
			t.Fatal("Zeros left non-zero bytes")
		}
	}
	Random{}.Fill(buf, NewRNG(1, 1))
	nonzero := 0
	for _, v := range buf {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 400 {
		t.Errorf("Random output suspiciously sparse: %d non-zero of 512", nonzero)
	}
}

func TestSparseDensity(t *testing.T) {
	buf := make([]byte, 128*1000)
	Sparse32{Density: 0.3, Sigma: 1}.Fill(buf, NewRNG(6, 1))
	nonzeroWords := 0
	for i := 0; i+4 <= len(buf); i += 4 {
		if buf[i] != 0 || buf[i+1] != 0 || buf[i+2] != 0 || buf[i+3] != 0 {
			nonzeroWords++
		}
	}
	frac := float64(nonzeroWords) / float64(len(buf)/4)
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("density %.3f, want ~0.30", frac)
	}
}

func TestSparseFP16ZeroFraction(t *testing.T) {
	for _, zf := range []float64{0.5, 0.7, 0.9} {
		buf := make([]byte, 128*1000)
		SparseFP16{ZeroFrac: zf}.Fill(buf, NewRNG(11, 1))
		zeroHalves, finite := 0, true
		for i := 0; i+2 <= len(buf); i += 2 {
			h := uint16(buf[i]) | uint16(buf[i+1])<<8
			if h == 0 {
				zeroHalves++
			} else if h&0x7C00 == 0x7C00 {
				finite = false // inf/NaN exponent
			}
		}
		frac := float64(zeroHalves) / float64(len(buf)/2)
		if frac < zf-0.03 || frac > zf+0.03 {
			t.Errorf("ZeroFrac=%.1f: measured zero fraction %.3f", zf, frac)
		}
		if !finite {
			t.Errorf("ZeroFrac=%.1f: produced non-finite fp16 values", zf)
		}
	}
}

func TestStripePeriodicity(t *testing.T) {
	buf := make([]byte, 128*8)
	Stripe{A: Zeros{}, B: Random{}, PeriodEntries: 4, AEntries: 2}.Fill(buf, NewRNG(7, 1))
	isZero := func(e int) bool {
		for _, v := range buf[e*128 : (e+1)*128] {
			if v != 0 {
				return false
			}
		}
		return true
	}
	for e := 0; e < 8; e++ {
		wantZero := e%4 < 2
		if isZero(e) != wantZero {
			t.Errorf("entry %d: zero=%v, want %v", e, isZero(e), wantZero)
		}
	}
}

func TestWeightsQuantization(t *testing.T) {
	buf := make([]byte, 128*100)
	Weights32{Sigma: 0.1, QuantBits: 12}.Fill(buf, NewRNG(8, 1))
	for i := 0; i+4 <= len(buf); i += 4 {
		w := uint32(buf[i]) | uint32(buf[i+1])<<8 | uint32(buf[i+2])<<16 | uint32(buf[i+3])<<24
		if w&0xFFF != 0 {
			t.Fatalf("word %d has non-zero low quantized bits: %#x", i/4, w)
		}
	}
}
