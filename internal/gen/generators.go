package gen

import (
	"encoding/binary"
	"math"
)

// EntryBytes is the compression granularity of the paper: one 128 B
// memory-entry. Generators that reason about spatial structure (Stripe)
// operate at this granularity.
const EntryBytes = 128

// A Generator fills byte slices with a particular class of synthetic data.
// Fill must be deterministic given the RNG state and must accept any dst
// length that is a multiple of 4 bytes.
type Generator interface {
	// Name identifies the generator class in reports and heat-map legends.
	Name() string
	// Fill writes len(dst) bytes of synthetic data.
	Fill(dst []byte, r *RNG)
}

// Zeros produces all-zero data: the "mostly-zero allocations" of §3.4 that
// the final design captures with the aggressive 16x target ratio.
type Zeros struct{}

// Name implements Generator.
func (Zeros) Name() string { return "zeros" }

// Fill implements Generator.
func (Zeros) Fill(dst []byte, _ *RNG) {
	for i := range dst {
		dst[i] = 0
	}
}

// Ramp produces an int32 arithmetic sequence with a fixed stride. Deltas are
// constant, so delta-bit-plane transforms (BPC) compress it almost to
// nothing; it models index arrays and regular integer grids.
type Ramp struct {
	Start int32
	Step  int32
}

// Name implements Generator.
func (Ramp) Name() string { return "ramp" }

// Fill implements Generator.
func (g Ramp) Fill(dst []byte, r *RNG) {
	v := g.Start
	if v == 0 && g.Step == 0 {
		// A degenerate ramp is just zeros; keep it meaningful by default.
		v, _ = int32(r.Uint32()), 0
	}
	step := g.Step
	if step == 0 {
		step = 1
	}
	for i := 0; i+4 <= len(dst); i += 4 {
		binary.LittleEndian.PutUint32(dst[i:], uint32(v))
		v += step
	}
}

// Noisy32 produces 32-bit words that follow a slowly varying base sequence
// with NoiseBits of per-word randomness. It is the workhorse generator: the
// number of noise bits directly controls how many delta bit-planes are
// non-trivial, and therefore the BPC compressed size. NoiseBits=0 is nearly
// as compressible as a ramp; NoiseBits>=28 is effectively random.
type Noisy32 struct {
	NoiseBits uint // 0..32
	// SmoothStep is the per-word increment of the underlying base sequence.
	SmoothStep int32
}

// Name implements Generator.
func (Noisy32) Name() string { return "noisy32" }

// Fill implements Generator.
func (g Noisy32) Fill(dst []byte, r *RNG) {
	base := r.Uint32()
	nb := g.NoiseBits
	if nb > 32 {
		nb = 32
	}
	var mask uint32
	if nb == 32 {
		mask = ^uint32(0)
	} else {
		mask = (uint32(1) << nb) - 1
	}
	for i := 0; i+4 <= len(dst); i += 4 {
		w := base + (r.Uint32() & mask)
		binary.LittleEndian.PutUint32(dst[i:], w)
		base += uint32(g.SmoothStep)
	}
}

// Noisy64 produces 64-bit doubles whose high words follow a smooth field and
// whose mantissa low bits carry NoiseBits of randomness: the typical
// structure of an HPC FP64 stencil grid (neighbouring values share sign,
// exponent and leading mantissa bits).
type Noisy64 struct {
	NoiseBits uint // randomness in the low 32-bit word, 0..32
	HiStep    int32
}

// Name implements Generator.
func (Noisy64) Name() string { return "noisy64" }

// Fill implements Generator.
func (g Noisy64) Fill(dst []byte, r *RNG) {
	hi := r.Uint32()
	nb := g.NoiseBits
	if nb > 32 {
		nb = 32
	}
	var mask uint32
	if nb == 32 {
		mask = ^uint32(0)
	} else {
		mask = (uint32(1) << nb) - 1
	}
	for i := 0; i+8 <= len(dst); i += 8 {
		lo := r.Uint32() & mask
		binary.LittleEndian.PutUint32(dst[i:], lo)
		binary.LittleEndian.PutUint32(dst[i+4:], hi)
		hi += uint32(g.HiStep)
	}
	// Trailing 4-byte remainder (dst not a multiple of 8): fill with hi.
	if rem := len(dst) % 8; rem >= 4 {
		binary.LittleEndian.PutUint32(dst[len(dst)-rem:], hi)
	}
}

// Random produces incompressible data (uniform random bytes); it models
// hashed/encrypted/pointer-rich pools such as 354.cg's sparse matrices.
type Random struct{}

// Name implements Generator.
func (Random) Name() string { return "random" }

// Fill implements Generator.
func (Random) Fill(dst []byte, r *RNG) {
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		binary.LittleEndian.PutUint32(dst[i:], r.Uint32())
	}
	for ; i < len(dst); i++ {
		dst[i] = byte(r.Uint32())
	}
}

// Sparse32 produces ReLU-style activation tensors: a fraction Density of
// float32 values are non-zero draws from N(0, Sigma^2); the rest are zero.
// DL activation maps after ReLU commonly have 40-70% zeros.
type Sparse32 struct {
	Density float64 // fraction of non-zero elements, 0..1
	Sigma   float64
}

// Name implements Generator.
func (Sparse32) Name() string { return "sparse32" }

// Fill implements Generator.
func (g Sparse32) Fill(dst []byte, r *RNG) {
	sigma := g.Sigma
	if sigma == 0 {
		sigma = 1
	}
	for i := 0; i+4 <= len(dst); i += 4 {
		var w uint32
		if r.Float64() < g.Density {
			w = math.Float32bits(float32(r.NormFloat64() * sigma))
		}
		binary.LittleEndian.PutUint32(dst[i:], w)
	}
}

// SparseFP16 produces half-precision activation tensors with a configurable
// zero fraction: the cDMA observation (Rhu et al.) that DL activation
// traffic is 50-90% zeros after ReLU, stored as fp16 in modern frameworks.
// Non-zero elements are |N(0, Sigma^2)| draws encoded as IEEE 754 binary16
// bit patterns, so sign and exponent bits cluster the way real activation
// maps do while the zero fraction directly controls entry sparsity.
type SparseFP16 struct {
	// ZeroFrac is the fraction of zero elements, 0..1 (typ. 0.5/0.7/0.9).
	ZeroFrac float64
	// Sigma scales the non-zero magnitudes (default 1).
	Sigma float64
}

// Name implements Generator.
func (SparseFP16) Name() string { return "sparsefp16" }

// Fill implements Generator.
func (g SparseFP16) Fill(dst []byte, r *RNG) {
	sigma := g.Sigma
	if sigma == 0 {
		sigma = 1
	}
	for i := 0; i+2 <= len(dst); i += 2 {
		var h uint16
		if r.Float64() >= g.ZeroFrac {
			h = float16bits(float32(math.Abs(r.NormFloat64()) * sigma))
		}
		binary.LittleEndian.PutUint16(dst[i:], h)
	}
	if len(dst)%2 == 1 {
		dst[len(dst)-1] = 0
	}
}

// float16bits converts a float32 to the IEEE 754 binary16 bit pattern with
// round-to-nearest-even, flushing values below the subnormal range to zero
// and clamping overflow to infinity.
func float16bits(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xFF) - 127 + 15
	mant := b & 0x7FFFFF
	switch {
	case exp >= 0x1F:
		return sign | 0x7C00 // overflow -> inf
	case exp <= 0:
		if exp < -10 {
			return sign // underflow -> zero
		}
		// Subnormal: shift in the implicit leading bit.
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		return sign | uint16((mant+half)>>shift)
	default:
		// Round mantissa 23 -> 10 bits to nearest even.
		rounded := (mant + 0xFFF + (mant>>13)&1) >> 13
		return sign | uint16(int32(rounded)+exp<<10)
	}
}

// Weights32 produces dense float32 tensors of N(0, Sigma^2) values: DL
// weights and gradients. Sign and low mantissa bits are random but the
// exponent byte clusters tightly around log2(Sigma), which is what makes
// such tensors ~1.3-1.7x compressible under BPC.
type Weights32 struct {
	Sigma float64
	// QuantBits optionally zeroes the low QuantBits mantissa bits,
	// modelling frameworks that store reduced-precision master copies.
	QuantBits uint
}

// Name implements Generator.
func (Weights32) Name() string { return "weights32" }

// Fill implements Generator.
func (g Weights32) Fill(dst []byte, r *RNG) {
	sigma := g.Sigma
	if sigma == 0 {
		sigma = 0.05
	}
	var mask uint32 = ^uint32(0)
	if g.QuantBits > 0 && g.QuantBits < 23 {
		mask = ^((uint32(1) << g.QuantBits) - 1)
	}
	for i := 0; i+4 <= len(dst); i += 4 {
		w := math.Float32bits(float32(r.NormFloat64()*sigma)) & mask
		binary.LittleEndian.PutUint32(dst[i:], w)
	}
}

// Stripe interleaves two generators at memory-entry granularity with a fixed
// period: A fills the first AEntries of every PeriodEntries entries, B fills
// the rest. FF_HPGMG's arrays of heterogeneous structs produce exactly this
// kind of striped compressibility pattern (Fig. 6).
type Stripe struct {
	A, B          Generator
	PeriodEntries int
	AEntries      int
}

// Name implements Generator.
func (g Stripe) Name() string { return "stripe(" + g.A.Name() + "," + g.B.Name() + ")" }

// Fill implements Generator.
func (g Stripe) Fill(dst []byte, r *RNG) {
	period := g.PeriodEntries
	if period <= 0 {
		period = 2
	}
	aCount := g.AEntries
	if aCount <= 0 || aCount >= period {
		aCount = period / 2
	}
	for off, e := 0, 0; off < len(dst); off, e = off+EntryBytes, e+1 {
		end := off + EntryBytes
		if end > len(dst) {
			end = len(dst)
		}
		if e%period < aCount {
			g.A.Fill(dst[off:end], r)
		} else {
			g.B.Fill(dst[off:end], r)
		}
	}
}

// Blend fills each memory-entry from generator A with probability PA and
// from B otherwise, producing the spatially mixed ("salt-and-pepper")
// compressibility the paper observes in DL workloads (Fig. 6, AlexNet /
// ResNet50).
type Blend struct {
	A, B Generator
	PA   float64
}

// Name implements Generator.
func (g Blend) Name() string { return "blend(" + g.A.Name() + "," + g.B.Name() + ")" }

// Fill implements Generator.
func (g Blend) Fill(dst []byte, r *RNG) {
	for off := 0; off < len(dst); off += EntryBytes {
		end := off + EntryBytes
		if end > len(dst) {
			end = len(dst)
		}
		if r.Float64() < g.PA {
			g.A.Fill(dst[off:end], r)
		} else {
			g.B.Fill(dst[off:end], r)
		}
	}
}
