// Package trace produces the synthetic per-warp memory access traces that
// drive the performance simulator. The paper collects dependency-driven
// traces of 1-9 billion warp instructions from real benchmark executions
// (§4.1); we have no GPU, so each benchmark is characterized by a Spec whose
// parameters (memory intensity, coalescing, locality, streaming vs.
// irregular access, native host traffic) reproduce the first-order behaviour
// that determines the paper's Fig. 11 results.
package trace

import "buddy/internal/gen"

// Spec characterizes a benchmark's memory access behaviour.
type Spec struct {
	// Name of the benchmark this spec belongs to.
	Name string
	// MemRatio is the fraction of warp instructions that access memory.
	// Memory-bound GPU kernels sit around 0.2-0.4.
	MemRatio float64
	// SectorsPerAccess is the average number of 32 B sectors touched by one
	// coalesced warp access (4 = fully coalesced streaming, 1 = scattered
	// single-sector access, the pattern that makes bandwidth compression
	// hurt 354.cg and 360.ilbdc, §4.2).
	SectorsPerAccess int
	// Streaming selects sequential address generation; otherwise addresses
	// are drawn from a power-law reuse distribution over the working set.
	Streaming bool
	// WorkingSetFrac is the fraction of the footprint actively accessed.
	WorkingSetFrac float64
	// WriteFrac is the fraction of memory accesses that are stores.
	WriteFrac float64
	// HostFrac is the fraction of accesses that natively go to host memory
	// (FF_HPGMG performs synchronous host copies, §4.2).
	HostFrac float64
	// ComputeIntensity is the mean compute cycles between memory
	// instructions of one warp (models ILP/arith density).
	ComputeIntensity float64
	// Locality is the probability that an access re-touches a recently
	// used cache line (drives L1/L2 hit rates).
	Locality float64
	// PageRun is the probability that an irregular access stays within
	// the previously touched 8 KB page (sparse kernels process rows and
	// blocks). Page runs are what give the metadata cache its locality —
	// one 32 B metadata line covers one page — so benchmarks with low
	// PageRun (351.palm, 355.seismic) are Fig. 5b's outliers.
	PageRun float64
	// Occupancy is the fraction of the SM's warp slots the kernel can
	// fill (register/shared-memory limits). Low-occupancy kernels
	// (351.palm, 355.seismic, FF_Lulesh) hide less latency, which is what
	// exposes metadata-miss and decompression latency in Fig. 11.
	// Zero means full occupancy.
	Occupancy float64
}

// Access is one warp-level memory access.
type Access struct {
	// Addr is the entry-aligned byte address within the footprint.
	Addr uint64
	// SectorMask marks which of the four 32 B sectors are touched.
	SectorMask uint8
	// Store marks writes.
	Store bool
	// ComputeCycles is the compute delay the issuing warp incurs before
	// this access.
	ComputeCycles uint16
}

// Stream deterministically produces the access sequence of one warp.
type Stream struct {
	spec      Spec
	rng       *gen.RNG
	footprint uint64
	cursor    uint64
	curPage   uint64
	hasPage   bool
	recent    [16]uint64
	recentN   int
}

// NewStream creates a per-warp access stream. footprint is the benchmark's
// (scaled) footprint in bytes; warp gives each warp a distinct but
// deterministic address phase and RNG stream.
func NewStream(spec Spec, footprint uint64, seed uint64, warp int) *Stream {
	if footprint < 128 {
		footprint = 128
	}
	s := &Stream{
		spec:      spec,
		rng:       gen.NewRNG(seed, uint64(warp)*2+1),
		footprint: footprint &^ 127,
	}
	// Streaming warps are phased in CTA-sized clusters: warps of one
	// cluster stream adjacent 128 B lines (coalesced thread blocks tile
	// contiguous data), while clusters scatter multiplicatively across the
	// footprint. This matches how real grids map onto SMs and is what
	// gives the 32 B-line metadata cache its 63/64 streaming hit rate.
	entries := s.footprint / 128
	cluster := uint64(warp / ctaCluster)
	within := uint64(warp % ctaCluster)
	s.cursor = ((cluster*2654435761 + within) % entries) * 128
	return s
}

// ctaCluster is the number of warps that stream one contiguous tile.
const ctaCluster = 64

// pageBytes is the page granularity of irregular access clustering.
const pageBytes = 8192

func (s *Stream) workingSet() uint64 {
	ws := uint64(float64(s.footprint) * s.spec.WorkingSetFrac)
	if ws < 4096 {
		ws = 4096
	}
	if ws > s.footprint {
		ws = s.footprint
	}
	return ws &^ 127
}

// Next returns the warp's next access.
func (s *Stream) Next() Access {
	var a Access
	// Compute gap: geometric-ish around ComputeIntensity.
	ci := s.spec.ComputeIntensity
	if ci <= 0 {
		ci = 4
	}
	a.ComputeCycles = uint16(1 + s.rng.Intn(int(2*ci)))

	if s.spec.Locality > 0 && s.recentN > 0 && s.rng.Float64() < s.spec.Locality {
		a.Addr = s.recent[s.rng.Intn(s.recentN)]
	} else if s.spec.Streaming {
		a.Addr = s.cursor
		// The whole CTA cluster advances one 8 KB wavefront per step, each
		// warp owning a distinct 128 B line within it.
		s.cursor = (s.cursor + ctaCluster*128) % s.workingSet()
	} else {
		// Irregular access: a power-law over 8 KB pages (the square
		// transform produces a heavy head of hot pages, scattered across
		// all allocations by spread) with a random entry within the page.
		// Page-level clustering is what real sparse kernels retain and is
		// what gives the metadata cache its locality (one 32 B metadata
		// line covers one 8 KB page).
		ws := s.workingSet()
		pages := ws / pageBytes
		if pages == 0 {
			pages = 1
		}
		pageIdx := s.curPage
		if !s.hasPage || s.rng.Float64() >= s.spec.PageRun {
			u := s.rng.Float64()
			pageIdx = uint64(u*u*float64(pages)) * 2654435761 % pages
			s.curPage, s.hasPage = pageIdx, true
		}
		a.Addr = pageIdx*pageBytes + uint64(s.rng.Intn(int(pageBytes/128)))*128
	}
	s.remember(a.Addr)

	switch n := s.sectorsThisAccess(); n {
	case 4:
		a.SectorMask = 0xF
	case 3:
		a.SectorMask = 0x7
	case 2:
		a.SectorMask = 0x3
	default:
		a.SectorMask = 1 << uint(s.rng.Intn(4))
	}
	a.Store = s.rng.Float64() < s.spec.WriteFrac
	return a
}

func (s *Stream) sectorsThisAccess() int {
	n := s.spec.SectorsPerAccess
	if n <= 0 {
		n = 4
	}
	if n > 4 {
		n = 4
	}
	return n
}

func (s *Stream) remember(addr uint64) {
	if s.recentN < len(s.recent) {
		s.recent[s.recentN] = addr
		s.recentN++
		return
	}
	s.recent[s.rng.Intn(len(s.recent))] = addr
}

// IsHostAccess reports whether the next-generated access should target host
// memory natively (used for FF_HPGMG's synchronous host copies). Callers
// draw it per access to keep Stream's Next signature simple.
func (s *Stream) IsHostAccess() bool {
	return s.spec.HostFrac > 0 && s.rng.Float64() < s.spec.HostFrac
}

// SectorCount returns the number of sectors set in mask.
func SectorCount(mask uint8) int {
	n := 0
	for m := mask; m != 0; m >>= 1 {
		n += int(m & 1)
	}
	return n
}
