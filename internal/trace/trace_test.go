package trace_test

import (
	"testing"

	"buddy/internal/trace"
	"buddy/internal/workloads"
)

func spec(name string, t *testing.T) trace.Spec {
	t.Helper()
	b, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b.Trace
}

func TestDeterminism(t *testing.T) {
	s1 := trace.NewStream(spec("351.palm", t), 1<<24, 7, 3)
	s2 := trace.NewStream(spec("351.palm", t), 1<<24, 7, 3)
	for i := 0; i < 1000; i++ {
		if s1.Next() != s2.Next() {
			t.Fatalf("stream diverged at access %d", i)
		}
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	for _, name := range []string{"351.palm", "356.sp", "354.cg", "AlexNet"} {
		const fp = 1 << 22
		s := trace.NewStream(spec(name, t), fp, 3, 11)
		for i := 0; i < 5000; i++ {
			a := s.Next()
			if a.Addr >= fp {
				t.Fatalf("%s: address %d beyond footprint", name, a.Addr)
			}
			if a.Addr%128 != 0 {
				t.Fatalf("%s: address %d not entry-aligned", name, a.Addr)
			}
			if a.SectorMask == 0 {
				t.Fatalf("%s: empty sector mask", name)
			}
		}
	}
}

func TestStreamingCoversFootprint(t *testing.T) {
	// Many streaming warps must jointly touch addresses across the whole
	// footprint, not just a prefix (the coverage bug class).
	sp := spec("356.sp", t)
	const fp = 1 << 24
	seenHigh := false
	for w := 0; w < 256 && !seenHigh; w++ {
		s := trace.NewStream(sp, fp, 9, w)
		for i := 0; i < 50; i++ {
			if s.Next().Addr > fp*3/4 {
				seenHigh = true
				break
			}
		}
	}
	if !seenHigh {
		t.Error("no warp reached the top quarter of the footprint")
	}
}

func TestSectorMaskMatchesSpec(t *testing.T) {
	// Single-sector spec (354.cg) must produce single-sector masks;
	// streaming specs produce full lines.
	s := trace.NewStream(spec("354.cg", t), 1<<22, 5, 0)
	for i := 0; i < 200; i++ {
		if n := trace.SectorCount(s.Next().SectorMask); n != 1 {
			t.Fatalf("cg access touched %d sectors, want 1", n)
		}
	}
	s = trace.NewStream(spec("356.sp", t), 1<<22, 5, 0)
	for i := 0; i < 200; i++ {
		if n := trace.SectorCount(s.Next().SectorMask); n != 4 {
			t.Fatalf("sp access touched %d sectors, want 4", n)
		}
	}
}

func TestWriteFraction(t *testing.T) {
	sp := spec("356.sp", t)
	s := trace.NewStream(sp, 1<<22, 5, 0)
	stores := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.Next().Store {
			stores++
		}
	}
	frac := float64(stores) / n
	if frac < sp.WriteFrac-0.05 || frac > sp.WriteFrac+0.05 {
		t.Errorf("store fraction %.3f, want ~%.2f", frac, sp.WriteFrac)
	}
}

func TestHostAccessFraction(t *testing.T) {
	sp := spec("FF_HPGMG", t)
	s := trace.NewStream(sp, 1<<22, 5, 0)
	hosts := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if s.IsHostAccess() {
			hosts++
		}
		s.Next()
	}
	frac := float64(hosts) / n
	if frac < sp.HostFrac-0.03 || frac > sp.HostFrac+0.03 {
		t.Errorf("host fraction %.3f, want ~%.2f", frac, sp.HostFrac)
	}
	// Non-host benchmarks never report host accesses.
	s2 := trace.NewStream(spec("356.sp", t), 1<<22, 5, 0)
	for i := 0; i < 1000; i++ {
		if s2.IsHostAccess() {
			t.Fatal("356.sp has no native host traffic")
		}
	}
}

func TestPageRunClustering(t *testing.T) {
	// cg's high PageRun keeps consecutive irregular accesses in one 8 KB
	// page far more often than palm's low PageRun.
	runFrac := func(name string) float64 {
		s := trace.NewStream(spec(name, t), 1<<26, 5, 0)
		same, prev := 0, uint64(0)
		const n = 20000
		for i := 0; i < n; i++ {
			page := s.Next().Addr / 8192
			if i > 0 && page == prev {
				same++
			}
			prev = page
		}
		return float64(same) / n
	}
	cg, palm := runFrac("354.cg"), runFrac("351.palm")
	if cg <= palm+0.2 {
		t.Errorf("cg page-run fraction (%.2f) should far exceed palm's (%.2f)", cg, palm)
	}
}

func TestSectorCount(t *testing.T) {
	cases := map[uint8]int{0: 0, 1: 1, 0x3: 2, 0x7: 3, 0xF: 4, 0xA: 2}
	for mask, want := range cases {
		if got := trace.SectorCount(mask); got != want {
			t.Errorf("trace.SectorCount(%#x) = %d, want %d", mask, got, want)
		}
	}
}
