package gpusim

import (
	"time"

	"buddy/internal/cache"
	"buddy/internal/core"
	"buddy/internal/dram"
	"buddy/internal/nvlink"
	"buddy/internal/trace"
)

// warpState tracks one in-order warp's progress through its trace.
type warpState struct {
	id      int
	sm      int
	stream  *trace.Stream
	readyAt float64
	opsLeft int
}

// warpQueue is a 4-ary min-heap of warps keyed by readiness time, stored as
// parallel contiguous arrays. It replaces container/heap, whose interface
// indirection dominated the fast mode's profile; the event loop executes
// hundreds of millions of pops on full-size runs.
type warpQueue struct {
	keys  []float64
	items []*warpState
}

func (q *warpQueue) push(key float64, w *warpState) {
	q.keys = append(q.keys, key)
	q.items = append(q.items, w)
	q.siftUp(len(q.keys) - 1)
}

func (q *warpQueue) len() int { return len(q.keys) }

func (q *warpQueue) top() *warpState { return q.items[0] }

// updateTop rewrites the minimum's key and restores heap order.
func (q *warpQueue) updateTop(key float64) {
	q.keys[0] = key
	q.siftDown(0)
}

// popTop removes the minimum.
func (q *warpQueue) popTop() {
	n := len(q.keys) - 1
	q.keys[0], q.items[0] = q.keys[n], q.items[n]
	q.keys, q.items = q.keys[:n], q.items[:n]
	if n > 0 {
		q.siftDown(0)
	}
}

func (q *warpQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if q.keys[parent] <= q.keys[i] {
			return
		}
		q.keys[parent], q.keys[i] = q.keys[i], q.keys[parent]
		q.items[parent], q.items[i] = q.items[i], q.items[parent]
		i = parent
	}
}

func (q *warpQueue) siftDown(i int) {
	n := len(q.keys)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.keys[c] < q.keys[min] {
				min = c
			}
		}
		if q.keys[i] <= q.keys[min] {
			return
		}
		q.keys[i], q.keys[min] = q.keys[min], q.keys[i]
		q.items[i], q.items[min] = q.items[min], q.items[i]
		i = min
	}
}

// machine bundles the shared memory system.
type machine struct {
	cfg    Config
	mode   Mode
	dm     *DataModel
	l1     []*cache.Cache // per SM
	l2     []*cache.Cache // per slice
	meta   []*cache.Cache // per slice (Buddy mode)
	mem    *dram.HBM2
	link   *nvlink.Link
	smBusy []float64 // per-SM issue-slot occupancy (1 instruction/cycle)
	result Result
}

func newMachine(cfg Config, mode Mode, dm *DataModel) *machine {
	m := &machine{cfg: cfg, mode: mode, dm: dm}
	m.l1 = make([]*cache.Cache, cfg.SMs)
	for i := range m.l1 {
		m.l1[i] = cache.New(cfg.L1Bytes, cfg.L1Ways, 128)
	}
	m.l2 = make([]*cache.Cache, cfg.L2Slices)
	perSlice := cfg.L2Bytes / cfg.L2Slices
	for i := range m.l2 {
		m.l2[i] = cache.New(perSlice, cfg.L2Ways, 128)
	}
	if mode == ModeBuddy {
		m.meta = make([]*cache.Cache, cfg.L2Slices)
		for i := range m.meta {
			m.meta[i] = cache.New(cfg.MetaCacheBytesPerSlice, cfg.MetaCacheWays, core.MetadataLineBytes)
		}
	}
	m.mem = dram.New(cfg.DRAM)
	m.link = nvlink.New(cfg.Link)
	m.smBusy = make([]float64, cfg.SMs)
	return m
}

// issue reserves the SM's issue slots for one memory operation and its
// accompanying compute instructions (1/MemRatio instructions at one per
// cycle), returning the time the memory access actually issues. This is the
// machine's compute-throughput constraint; without it every workload
// saturates DRAM bandwidth.
func (m *machine) issue(sm int, ready, instrPerOp float64) float64 {
	start := ready
	if m.smBusy[sm] > start {
		start = m.smBusy[sm]
	}
	m.smBusy[sm] = start + instrPerOp
	return start + instrPerOp
}

func (m *machine) l2Slice(addr uint64) int {
	return int((addr >> 7) % uint64(len(m.l2)))
}

// l2SliceAccess looks up a line in its slice. The slice-local address drops
// the slice-selection bits so slice caches index all their sets (slice id
// and set index would otherwise alias on the same low line bits).
func (m *machine) l2SliceAccess(line uint64) bool {
	slice := m.l2Slice(line)
	local := (line >> 7) / uint64(len(m.l2)) << 7
	return m.l2[slice].Access(local)
}

// metaAccess models the metadata-cache lookup for the entry at addr; it
// returns the completion time of the metadata fetch (issue time on a hit).
// Metadata lines are interleaved across slices by their own line address —
// the same hashing as regular physical interleaving (§3.2) — so one line's
// 64 entries always consult the same slice.
func (m *machine) metaAccess(now float64, addr uint64) float64 {
	metaAddr := addr >> 7 * core.MetadataBitsPerEntry / 8
	metaLine := metaAddr / core.MetadataLineBytes
	slice := int(metaLine % uint64(len(m.meta)))
	local := metaLine / uint64(len(m.meta)) * core.MetadataLineBytes
	if m.meta[slice].Access(local) {
		m.result.MetaHits++
		return now
	}
	m.result.MetaMisses++
	m.result.DRAMBytes += core.MetadataLineBytes
	return m.mem.Request(now, metaAddr, core.MetadataLineBytes)
}

// load returns the completion time of a warp load issued at time now.
func (m *machine) load(now float64, sm int, a trace.Access, host bool) float64 {
	reqBytes := trace.SectorCount(a.SectorMask) * 32
	if host {
		// Native host-memory access (FF_HPGMG): over the link in every
		// mode, including the ideal baseline.
		m.result.LinkReadBytes += uint64(reqBytes)
		return m.link.Request(now, nvlink.Read, reqBytes)
	}
	line := a.Addr &^ 127
	if m.l1[sm].Access(line) {
		m.result.L1Hits++
		return now + m.cfg.L1LatencyCycles
	}
	afterL2 := now + m.cfg.L2LatencyCycles
	if m.l2SliceAccess(line) {
		m.result.L2Hits++
		return afterL2
	}

	switch m.mode {
	case ModeIdeal:
		m.result.DRAMBytes += uint64(reqBytes)
		return m.mem.Request(afterL2, line, reqBytes)

	case ModeBWOnly:
		sectors, _ := m.dm.Lookup(line)
		if sectors >= 4 {
			// Incompressible entries stay raw: sector-granular fetch,
			// no decompression.
			m.result.DRAMBytes += uint64(reqBytes)
			return m.mem.Request(afterL2, line, reqBytes)
		}
		// Compressed entries transfer whole (minimum one sector) and fill
		// the full 128 B line: over-fetch for fine-grained accesses,
		// fewer packets for streaming ones (§4.2).
		stored := sectors
		if stored == 0 {
			stored = 1
		}
		bytes := stored * 32
		m.result.DRAMBytes += uint64(bytes)
		return m.mem.Request(afterL2, line, bytes) + m.cfg.DecompressLatencyCycles

	default: // ModeBuddy
		sectors, target := m.dm.Lookup(line)
		metaDone := m.metaAccess(afterL2, line)
		if sectors >= 4 {
			// Uncompressed entry: sector-granular fetch, no decompression;
			// requested sectors beyond the device budget live in the
			// entry's fixed buddy slot.
			req := trace.SectorCount(a.SectorMask)
			devSec := req
			if devSec > target.DeviceSectors() {
				devSec = target.DeviceSectors()
			}
			overSec := req - devSec
			done := afterL2
			if devSec > 0 {
				m.result.DRAMBytes += uint64(devSec * 32)
				done = m.mem.Request(afterL2, line, devSec*32)
			}
			if done < metaDone {
				done = metaDone
			}
			if overSec > 0 {
				m.result.BuddyAccesses++
				m.result.LinkReadBytes += uint64(overSec * 32)
				if bd := m.link.Request(metaDone, nvlink.Read, overSec*32); bd > done {
					done = bd
				}
			}
			return done
		}
		// Compressed entry: transferred whole (full-line L2 fill), with
		// overflow sectors from the buddy slot. Metadata resolves in
		// parallel with device data (§3.4); the buddy access issues only
		// once metadata is known.
		over := target.OverflowSectors(sectors)
		devBytes := (sectors - over) * 32
		if target == core.Target16x {
			devBytes = 8
		} else if sectors == 0 {
			devBytes = 32 // minimum one-sector device access
		}
		var done float64
		if devBytes > 0 {
			m.result.DRAMBytes += uint64(devBytes)
			done = m.mem.Request(afterL2, line, devBytes)
		} else {
			done = afterL2
		}
		if done < metaDone {
			done = metaDone
		}
		if over > 0 {
			m.result.BuddyAccesses++
			m.result.LinkReadBytes += uint64(over * 32)
			if bd := m.link.Request(metaDone, nvlink.Read, over*32); bd > done {
				done = bd
			}
		}
		return done + m.cfg.DecompressLatencyCycles
	}
}

// store models a write: caches are updated for recency, and write-back
// bandwidth is drained asynchronously; the warp only pays a store-buffer
// latency.
func (m *machine) store(now float64, sm int, a trace.Access, host bool) float64 {
	reqBytes := trace.SectorCount(a.SectorMask) * 32
	if host {
		m.result.LinkWriteBytes += uint64(reqBytes)
		m.link.Drain(now, nvlink.Write, reqBytes)
		return now + m.cfg.StoreLatencyCycles
	}
	line := a.Addr &^ 127
	m.l1[sm].Access(line)
	m.l2SliceAccess(line)

	switch m.mode {
	case ModeIdeal:
		m.result.DRAMBytes += uint64(reqBytes)
		m.mem.Drain(now, line, reqBytes)
	case ModeBWOnly:
		sectors, _ := m.dm.Lookup(line)
		bytes := storedBytes(sectors)
		m.result.DRAMBytes += uint64(bytes)
		m.mem.Drain(now, line, bytes)
	default:
		sectors, target := m.dm.Lookup(line)
		m.metaAccess(now, line) // metadata is read-modify-written on size change
		var over int
		var devBytes int
		if sectors >= 4 {
			req := trace.SectorCount(a.SectorMask)
			devSec := req
			if devSec > target.DeviceSectors() {
				devSec = target.DeviceSectors()
			}
			over = req - devSec
			devBytes = devSec * 32
		} else {
			over = target.OverflowSectors(sectors)
			devBytes = (sectors - over) * 32
			if target == core.Target16x {
				devBytes = 8
			} else if sectors == 0 {
				devBytes = 32
			}
		}
		m.result.DRAMBytes += uint64(devBytes)
		m.mem.Drain(now, line, devBytes)
		if over > 0 {
			m.result.BuddyAccesses++
			m.result.LinkWriteBytes += uint64(over * 32)
			m.link.Drain(now, nvlink.Write, over*32)
		}
	}
	return now + m.cfg.StoreLatencyCycles
}

func storedBytes(sectors int) int {
	if sectors == 0 {
		return 32
	}
	return sectors * 32
}

// activeWarps applies the kernel's occupancy to the machine's warp slots.
func activeWarps(spec trace.Spec, cfg Config) int {
	n := cfg.WarpsPerSM
	if spec.Occupancy > 0 && spec.Occupancy < 1 {
		n = int(float64(n) * spec.Occupancy)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Run executes the fast event-driven simulation of spec under the given
// memory mode and returns timing and traffic statistics.
func Run(spec trace.Spec, dm *DataModel, mode Mode, cfg Config) Result {
	start := time.Now()
	m := newMachine(cfg, mode, dm)
	warpsPerSM := activeWarps(spec, cfg)
	var q warpQueue
	footprint := dm.footprint
	for sm := 0; sm < cfg.SMs; sm++ {
		for w := 0; w < warpsPerSM; w++ {
			id := sm*warpsPerSM + w
			q.push(0, &warpState{
				id:      id,
				sm:      sm,
				stream:  trace.NewStream(spec, footprint, 1234, id),
				opsLeft: cfg.OpsPerWarp,
			})
		}
	}

	instrPerOp := 1.0
	if spec.MemRatio > 0 {
		instrPerOp = 1 / spec.MemRatio
	}
	var lastCycle float64
	for q.len() > 0 {
		w := q.top()
		host := w.stream.IsHostAccess()
		a := w.stream.Next()
		// The warp is ready after its dependent compute latency; the SM's
		// single issue port then serializes this op's instructions.
		depReady := w.readyAt + float64(a.ComputeCycles)
		issue := m.issue(w.sm, depReady, instrPerOp)
		var done float64
		if a.Store {
			done = m.store(issue, w.sm, a, host)
		} else {
			done = m.load(issue, w.sm, a, host)
		}
		m.result.MemAccesses++
		m.result.Instructions += uint64(instrPerOp)
		if done > lastCycle {
			lastCycle = done
		}
		w.opsLeft--
		if w.opsLeft == 0 {
			q.popTop()
		} else {
			w.readyAt = done
			q.updateTop(done)
		}
	}
	m.result.Cycles = lastCycle
	m.result.WallClockSeconds = time.Since(start).Seconds()
	return m.result
}
