// Package gpusim is the dependency-driven GPU performance simulator of the
// paper's §4.1 (Tab. 2), rebuilt as a queueing/bandwidth timing model: SMs
// issue per-warp traces (compute gaps + coalesced memory accesses) through
// private L1s, a sectored shared L2, HBM2 channel queues and an NVLink
// model. Three memory modes reproduce Fig. 11's comparison: an ideal
// uncompressed large-memory GPU, bandwidth-only compression between L2 and
// DRAM, and full Buddy Compression (bandwidth compression + metadata cache
// + buddy-memory overflow accesses).
//
// A slower cycle-stepped "detailed" mode stands in for GPGPU-Sim and a
// first-order analytical model stands in for silicon in the Fig. 10
// correlation study.
package gpusim

import (
	"buddy/internal/dram"
	"buddy/internal/nvlink"
)

// Mode selects the memory-system configuration under test (Fig. 11).
type Mode int

// Modes of operation.
const (
	// ModeIdeal is the uncompressed large-capacity baseline GPU.
	ModeIdeal Mode = iota
	// ModeBWOnly compresses transfers between L2 and DRAM for bandwidth
	// only: no capacity benefit, no metadata, no buddy accesses (§4.1).
	ModeBWOnly
	// ModeBuddy is full Buddy Compression.
	ModeBuddy
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeIdeal:
		return "ideal"
	case ModeBWOnly:
		return "bw-only"
	default:
		return "buddy"
	}
}

// Config mirrors Tab. 2's performance simulation parameters.
type Config struct {
	// SMs is the number of streaming multiprocessors (P100-class: 56).
	SMs int
	// WarpsPerSM is the resident warp count driving latency hiding
	// (Tab. 2: max 64 32-thread warps per SM).
	WarpsPerSM int
	// OpsPerWarp is the number of memory operations simulated per warp.
	OpsPerWarp int

	// L1Bytes/L1Ways: private L1 per SM (24 KB, 128 B lines).
	L1Bytes, L1Ways int
	// L1LatencyCycles is the L1 hit latency.
	L1LatencyCycles float64

	// L2Bytes/L2Slices/L2Ways: shared sectored L2 (4 MB, 32 slices,
	// 128 B lines, 16 ways).
	L2Bytes, L2Slices, L2Ways int
	// L2LatencyCycles is the L2 hit latency.
	L2LatencyCycles float64

	// DRAM is the HBM2 model (32 channels, 900 GB/s).
	DRAM dram.Config
	// Link is the buddy interconnect (NVLink2: 150 GB/s full-duplex).
	Link nvlink.Config

	// DecompressLatencyCycles is the (de)compression latency added to
	// compressed fills: 11 DRAM cycles at 875 MHz ≈ 16 core cycles at
	// 1.3 GHz (§4.1, following the BPC paper).
	DecompressLatencyCycles float64

	// MetaCacheBytesPerSlice/MetaCacheWays: metadata cache per L2 slice
	// (Tab. 2: 4 KB, 4-way, 128 B lines in the table; we keep the §3.2
	// 32 B metadata line that covers 64 entries).
	MetaCacheBytesPerSlice, MetaCacheWays int

	// StoreLatencyCycles is the warp-visible latency of a store (store
	// buffer); write bandwidth is drained asynchronously.
	StoreLatencyCycles float64
}

// DefaultConfig returns Tab. 2.
func DefaultConfig() Config {
	return Config{
		SMs:                     56,
		WarpsPerSM:              64,
		OpsPerWarp:              160,
		L1Bytes:                 24 << 10,
		L1Ways:                  8,
		L1LatencyCycles:         30,
		L2Bytes:                 4 << 20,
		L2Slices:                32,
		L2Ways:                  16,
		L2LatencyCycles:         190,
		DRAM:                    dram.DefaultConfig(),
		Link:                    nvlink.DefaultConfig(),
		DecompressLatencyCycles: 16,
		MetaCacheBytesPerSlice:  4 << 10,
		MetaCacheWays:           4,
		StoreLatencyCycles:      20,
	}
}

// WithLinkBandwidth returns a copy of c with the buddy link set to gbps
// per direction (the Fig. 11 sweep parameter).
func (c Config) WithLinkBandwidth(gbps float64) Config {
	c.Link.BandwidthGBs = gbps
	return c
}

// Result summarizes one simulation.
type Result struct {
	// Cycles is the modeled execution time in core cycles.
	Cycles float64
	// Instructions approximates total warp instructions (memory ops
	// scaled by the trace's memory ratio), for IPC-style reporting.
	Instructions uint64
	// MemAccesses counts warp memory operations.
	MemAccesses uint64
	// L1Hits/L2Hits count cache hits.
	L1Hits, L2Hits uint64
	// DRAMBytes is total device-memory traffic.
	DRAMBytes uint64
	// LinkReadBytes/LinkWriteBytes is buddy interconnect traffic.
	LinkReadBytes, LinkWriteBytes uint64
	// MetaHits/MetaMisses count metadata cache lookups (Buddy mode).
	MetaHits, MetaMisses uint64
	// BuddyAccesses counts accesses that needed buddy-memory sectors.
	BuddyAccesses uint64
	// WallClockSeconds is the host time the simulation took (Fig. 10
	// speed study).
	WallClockSeconds float64
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / r.Cycles
}
