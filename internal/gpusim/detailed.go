package gpusim

import (
	"time"

	"buddy/internal/trace"
)

// RunDetailed executes the cycle-stepped "detailed" simulation: every core
// cycle, each SM scans its resident warps in greedy-then-oldest order and
// issues at most one instruction. It produces the same first-order timing
// as Run but pays a per-cycle scheduling loop, standing in for the
// GPGPU-Sim-class simulator of Fig. 10's speed comparison (the paper's
// proprietary simulator is two orders of magnitude faster than GPGPU-Sim;
// our fast mode holds the same relationship to this mode).
func RunDetailed(spec trace.Spec, dm *DataModel, mode Mode, cfg Config) Result {
	start := time.Now()
	m := newMachine(cfg, mode, dm)

	type dwarp struct {
		stream  *trace.Stream
		readyAt float64
		// pending compute cycles before the next access may issue
		compute float64
		next    *trace.Access
		host    bool
		opsLeft int
		lastUse float64
	}
	warpsPerSM := activeWarps(spec, cfg)
	sms := make([][]*dwarp, cfg.SMs)
	live := 0
	for sm := 0; sm < cfg.SMs; sm++ {
		sms[sm] = make([]*dwarp, warpsPerSM)
		for w := 0; w < warpsPerSM; w++ {
			id := sm*warpsPerSM + w
			sms[sm][w] = &dwarp{
				stream:  trace.NewStream(spec, dm.footprint, 1234, id),
				opsLeft: cfg.OpsPerWarp,
			}
			live++
		}
	}
	instrPerOp := 1.0
	if spec.MemRatio > 0 {
		instrPerOp = 1 / spec.MemRatio
	}

	var cycle float64
	var lastDone float64
	for live > 0 {
		for sm := 0; sm < cfg.SMs; sm++ {
			// Greedy-then-oldest: issue from the first ready warp; the
			// slice order is the age order and we do not rotate, so the
			// most recently issuing warp keeps priority until it stalls.
			var pick *dwarp
			for _, w := range sms[sm] {
				if w.opsLeft == 0 || w.readyAt > cycle {
					continue
				}
				if pick == nil || w.lastUse > pick.lastUse {
					pick = w
				}
			}
			if pick == nil {
				continue
			}
			if pick.next == nil {
				host := pick.stream.IsHostAccess()
				a := pick.stream.Next()
				pick.next = &a
				pick.host = host
				pick.compute = float64(a.ComputeCycles)
			}
			if pick.compute > 0 {
				pick.compute--
				pick.lastUse = cycle
				continue
			}
			a := *pick.next
			// Per-thread coalescing: expand the 32 lanes' addresses and
			// re-derive the transaction's sector mask, the work a
			// GPGPU-Sim-class simulator performs for every access (and the
			// reason the detailed mode is orders of magnitude slower).
			a.SectorMask = coalesce(a, m, sm)
			var done float64
			if a.Store {
				done = m.store(cycle, sm, a, pick.host)
			} else {
				done = m.load(cycle, sm, a, pick.host)
			}
			m.result.MemAccesses++
			m.result.Instructions += uint64(instrPerOp)
			if done > lastDone {
				lastDone = done
			}
			pick.next = nil
			pick.readyAt = done
			pick.lastUse = cycle
			pick.opsLeft--
			if pick.opsLeft == 0 {
				live--
			}
		}
		cycle++
		// Fast-forward across globally idle stretches (all warps stalled):
		// this keeps the detailed mode faithful but bounded.
		if cycle > 100_000_000 {
			break
		}
	}
	if lastDone > cycle {
		cycle = lastDone
	}
	m.result.Cycles = cycle
	m.result.WallClockSeconds = time.Since(start).Seconds()
	return m.result
}

// coalesce models the warp's memory coalescing unit at thread granularity:
// each of the 32 lanes computes an address; lanes touching the same 32 B
// sector merge. The per-lane layout follows the access's own mask so the
// merged transaction matches the trace's intent, but the simulator pays the
// full per-thread cost (address generation plus an L1 tag probe per lane).
func coalesce(a trace.Access, m *machine, sm int) uint8 {
	sectors := trace.SectorCount(a.SectorMask)
	var mask uint8
	for lane := 0; lane < 32; lane++ {
		var laneAddr uint64
		if sectors >= 4 {
			laneAddr = a.Addr + uint64(lane*4) // fully coalesced 4 B loads
		} else {
			// Narrow access: lanes cluster into the requested sectors.
			laneAddr = a.Addr + uint64(lane%(8*sectors)*4)
		}
		mask |= 1 << uint(laneAddr%128/32)
		line := laneAddr &^ 127
		m.l1[sm].Probe(line)
		m.l2[m.l2Slice(line)].Probe((line >> 7) / uint64(len(m.l2)) << 7)
	}
	// Keep the original mask's population (the trace is authoritative for
	// how many sectors the access needs).
	if trace.SectorCount(mask) != sectors {
		return a.SectorMask
	}
	return mask
}

// Analytic computes the first-order roofline estimate that stands in for
// silicon in the Fig. 10 correlation study: execution time is the maximum
// of the compute-issue floor, the DRAM bandwidth floor, and the
// latency-exposure floor of a latency-hiding machine.
func Analytic(spec trace.Spec, dm *DataModel, cfg Config) float64 {
	ops := float64(cfg.SMs * activeWarps(spec, cfg) * cfg.OpsPerWarp)
	instr := ops
	if spec.MemRatio > 0 {
		instr = ops / spec.MemRatio
	}
	// Compute floor: SMs issue one instruction per cycle.
	compute := instr / float64(cfg.SMs)

	// Memory floor: expected bytes per access over aggregate bandwidth.
	sectors := float64(spec.SectorsPerAccess)
	if sectors <= 0 {
		sectors = 4
	}
	missRate := 1 - spec.Locality*0.8
	bytes := ops * missRate * sectors * 32
	bw := cfg.DRAM.BandwidthGBs / cfg.DRAM.CoreClockGHz
	mem := bytes / bw

	// Latency floor: per-warp serial time with average observed latency.
	perOp := spec.ComputeIntensity + missRate*cfg.DRAM.LatencyCycles +
		(1-missRate)*cfg.L2LatencyCycles
	lat := float64(cfg.OpsPerWarp) * perOp

	est := compute
	if mem > est {
		est = mem
	}
	if lat > est {
		est = lat
	}
	return est
}
