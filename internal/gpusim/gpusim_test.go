package gpusim

import (
	"testing"

	"buddy/internal/core"
	"buddy/internal/workloads"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.OpsPerWarp = 16
	return cfg
}

func benchmarkByName(t *testing.T, name string) workloads.Benchmark {
	t.Helper()
	b, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRunDeterministic(t *testing.T) {
	b := benchmarkByName(t, "356.sp")
	dm := UncompressedModel(uint64(b.Footprint / 64))
	r1 := Run(b.Trace, dm, ModeIdeal, testConfig())
	r2 := Run(b.Trace, dm, ModeIdeal, testConfig())
	if r1.Cycles != r2.Cycles || r1.DRAMBytes != r2.DRAMBytes {
		t.Error("simulation must be deterministic")
	}
}

func TestModesDifferInTraffic(t *testing.T) {
	b := benchmarkByName(t, "VGG16")
	fp := uint64(b.Footprint / 64)
	dm := BuildDataModel(b, fp, 16384, core.FinalDesign())
	cfg := testConfig()

	ideal := Run(b.Trace, UncompressedModel(fp), ModeIdeal, cfg)
	bw := Run(b.Trace, dm, ModeBWOnly, cfg)
	bud := Run(b.Trace, dm, ModeBuddy, cfg)

	// Bandwidth compression must reduce device traffic on a compressible
	// streaming workload.
	if bw.DRAMBytes >= ideal.DRAMBytes {
		t.Errorf("bw-only DRAM bytes %d should be below ideal's %d", bw.DRAMBytes, ideal.DRAMBytes)
	}
	// Only buddy mode touches the link and the metadata cache.
	if bw.LinkReadBytes != 0 || bw.MetaMisses != 0 {
		t.Error("bw-only mode must not use buddy memory or metadata")
	}
	if bud.BuddyAccesses == 0 || bud.LinkReadBytes == 0 {
		t.Error("buddy mode on VGG16 should overflow some entries")
	}
	if bud.MetaHits+bud.MetaMisses == 0 {
		t.Error("buddy mode must consult the metadata cache")
	}
}

func TestHostTrafficOnlyForHPGMG(t *testing.T) {
	cfg := testConfig()
	hp := benchmarkByName(t, "FF_HPGMG")
	sp := benchmarkByName(t, "356.sp")
	rHP := Run(hp.Trace, UncompressedModel(uint64(hp.Footprint/64)), ModeIdeal, cfg)
	rSP := Run(sp.Trace, UncompressedModel(uint64(sp.Footprint/64)), ModeIdeal, cfg)
	if rHP.LinkReadBytes == 0 {
		t.Error("FF_HPGMG performs native host reads even in the ideal mode")
	}
	if rSP.LinkReadBytes != 0 {
		t.Error("356.sp has no host traffic")
	}
}

func TestLowerLinkBandwidthNeverHelps(t *testing.T) {
	b := benchmarkByName(t, "FF_HPGMG")
	fp := uint64(b.Footprint / 64)
	dm := BuildDataModel(b, fp, 16384, core.FinalDesign())
	cfg := testConfig()
	slow := Run(b.Trace, dm, ModeBuddy, cfg.WithLinkBandwidth(25))
	fast := Run(b.Trace, dm, ModeBuddy, cfg.WithLinkBandwidth(150))
	if slow.Cycles < fast.Cycles {
		t.Errorf("25 GB/s (%.0f cycles) should not beat 150 GB/s (%.0f)", slow.Cycles, fast.Cycles)
	}
}

func TestDataModelConsistency(t *testing.T) {
	b := benchmarkByName(t, "AlexNet")
	dm := BuildDataModel(b, uint64(b.Footprint/64), 16384, core.FinalDesign())
	// Lookup is a pure function of the address.
	for addr := uint64(0); addr < 1<<20; addr += 4096 {
		s1, t1 := dm.Lookup(addr)
		s2, t2 := dm.Lookup(addr)
		if s1 != s2 || t1 != t2 {
			t.Fatal("Lookup must be deterministic per address")
		}
		if s1 < 0 || s1 > 4 {
			t.Fatalf("sector count %d out of range", s1)
		}
	}
	if m := dm.MeanStoredSectors(); m < 1 || m > 4 {
		t.Errorf("mean stored sectors %.2f outside [1,4]", m)
	}
	// The uncompressed model is all raw.
	u := UncompressedModel(1 << 20)
	if s, target := u.Lookup(12345); s != 4 || target != core.Target1x {
		t.Errorf("uncompressed model returned %d sectors at %s", s, target)
	}
}

func TestOccupancyReducesWork(t *testing.T) {
	b := benchmarkByName(t, "356.sp")
	low := b.Trace
	low.Occupancy = 0.25
	cfg := testConfig()
	full := Run(b.Trace, UncompressedModel(uint64(b.Footprint/64)), ModeIdeal, cfg)
	quarter := Run(low, UncompressedModel(uint64(b.Footprint/64)), ModeIdeal, cfg)
	if quarter.MemAccesses >= full.MemAccesses {
		t.Error("quarter occupancy should simulate fewer warps")
	}
}

func TestDetailedAgreesWithFast(t *testing.T) {
	b := benchmarkByName(t, "356.sp")
	dm := UncompressedModel(uint64(b.Footprint / 64))
	cfg := testConfig()
	cfg.OpsPerWarp = 8
	fast := Run(b.Trace, dm, ModeIdeal, cfg)
	det := RunDetailed(b.Trace, dm, ModeIdeal, cfg)
	ratio := fast.Cycles / det.Cycles
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("fast/detailed cycles = %.2f, want within [0.4, 2.5]", ratio)
	}
	if fast.MemAccesses != det.MemAccesses {
		t.Errorf("both modes must execute the same trace: %d vs %d accesses",
			fast.MemAccesses, det.MemAccesses)
	}
}

func TestWarpQueueOrdering(t *testing.T) {
	var q warpQueue
	for _, k := range []float64{5, 1, 4, 2, 8, 3, 7, 6} {
		q.push(k, &warpState{id: int(k)})
	}
	prev := -1.0
	for q.len() > 0 {
		w := q.top()
		if float64(w.id) < prev {
			t.Fatalf("heap order violated: %d after %.0f", w.id, prev)
		}
		prev = float64(w.id)
		q.popTop()
	}
}

func TestAnalyticPositive(t *testing.T) {
	b := benchmarkByName(t, "354.cg")
	est := Analytic(b.Trace, UncompressedModel(1<<24), testConfig())
	if est <= 0 {
		t.Errorf("analytic estimate %.1f should be positive", est)
	}
}
