package gpusim

import (
	"buddy/internal/compress"
	"buddy/internal/core"
	"buddy/internal/workloads"
)

// DataModel gives the simulator a statistical view of a benchmark's
// compressed memory image: for any line address it answers "how many
// sectors does this 128 B entry compress to, and what is its allocation's
// target ratio?". It is built from the same profiling pass and synthesized
// snapshots as the compression studies, so the timing results and the
// Fig. 7 statistics are mutually consistent without carrying gigabytes of
// synthesized bytes through the timing loop.
type DataModel struct {
	regions   []dmRegion
	footprint uint64
}

type dmRegion struct {
	start, end uint64
	target     core.TargetRatio
	cdf        [5]float64 // cumulative distribution of sector counts 0..4
}

// BuildDataModel profiles benchmark b (at the given synthesis scale) and
// lays its allocations across footprint bytes of simulated address space in
// region order. Callers that already hold a profiling result — e.g. the
// Fig. 11 sweep, whose snapshot indexes are shared with the compression
// figures — use DataModelFromProfile instead.
func BuildDataModel(b workloads.Benchmark, footprint uint64, scale int, opt core.ProfileOptions) *DataModel {
	snaps := workloads.GenerateRun(b, scale)
	return DataModelFromProfile(b, footprint, core.Profile(snaps, compress.NewBPC(), opt))
}

// DataModelFromProfile lays benchmark b's allocations across footprint
// bytes of simulated address space using an existing profiling result's
// targets and sector histograms.
func DataModelFromProfile(b workloads.Benchmark, footprint uint64, prof *core.ProfileResult) *DataModel {
	targets := prof.Targets()

	hist := map[string][5]int{}
	for _, p := range prof.Allocations {
		hist[p.Name] = p.Hist
	}

	dm := &DataModel{footprint: footprint &^ 127}
	var cursor uint64
	for _, r := range b.Regions {
		size := uint64(float64(dm.footprint)*r.Frac) &^ 127
		h := hist[r.Name]
		var total float64
		for _, n := range h {
			total += float64(n)
		}
		reg := dmRegion{start: cursor, end: cursor + size, target: targets[r.Name]}
		var c float64
		for s := 0; s < 5; s++ {
			if total > 0 {
				c += float64(h[s]) / total
			} else if s == 4 {
				c = 1
			}
			reg.cdf[s] = c
		}
		dm.regions = append(dm.regions, reg)
		cursor += size
	}
	if len(dm.regions) > 0 {
		dm.regions[len(dm.regions)-1].end = dm.footprint
	}
	return dm
}

// UncompressedModel returns a model where every entry is raw (the ideal
// baseline's view).
func UncompressedModel(footprint uint64) *DataModel {
	dm := &DataModel{footprint: footprint &^ 127}
	dm.regions = []dmRegion{{
		start: 0, end: dm.footprint, target: core.Target1x,
		cdf: [5]float64{0, 0, 0, 0, 1},
	}}
	return dm
}

// splitmix64 hashes an entry index into a reproducible uniform sample, so a
// given address always reports the same compressed size within a run.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Lookup returns the compressed sector count (0..4) and target ratio of the
// entry containing addr.
func (m *DataModel) Lookup(addr uint64) (sectors int, target core.TargetRatio) {
	if m.footprint == 0 {
		return 4, core.Target1x
	}
	addr %= m.footprint
	// Few regions per benchmark: linear scan is cache-friendly and fast.
	reg := &m.regions[len(m.regions)-1]
	for i := range m.regions {
		if addr < m.regions[i].end {
			reg = &m.regions[i]
			break
		}
	}
	u := float64(splitmix64(addr>>7)>>11) / (1 << 53)
	for s := 0; s < 5; s++ {
		if u < reg.cdf[s] {
			return s, reg.target
		}
	}
	return 4, reg.target
}

// MeanStoredSectors reports the footprint-weighted mean compressed sector
// count (0-sector entries count as one stored sector), a sanity statistic
// used in tests.
func (m *DataModel) MeanStoredSectors() float64 {
	var sum, weight float64
	for _, r := range m.regions {
		var mean, prev float64
		for s := 0; s < 5; s++ {
			p := r.cdf[s] - prev
			prev = r.cdf[s]
			stored := float64(s)
			if s == 0 {
				stored = 1
			}
			mean += p * stored
		}
		w := float64(r.end - r.start)
		sum += mean * w
		weight += w
	}
	if weight == 0 {
		return 4
	}
	return sum / weight
}
