package core

import (
	"fmt"
	"runtime"
	"sync"
)

// Batch entry primitives: WriteEntries and ReadEntries move whole spans of
// 128 B entries through the compression pipeline, fanning the codec work
// across a bounded worker pool. Compression and decompression run outside
// the entry shard locks (each entry operation only locks for its table
// update), so workers contend only on the striped mutexes and the batch
// scales with GOMAXPROCS. ReadAt, WriteAt and Memcpy route their aligned
// spans through these primitives, which is what makes the byte-addressed
// bulk surface — and everything above it, experiment sweeps included —
// parallel for free.

// bulkGrainEntries is the smallest span a worker is given: 64 entries
// (8 KB). Spans below two grains run inline — goroutine handoff costs more
// than compressing a handful of entries.
const bulkGrainEntries = 64

// parallelSpan partitions [0, n) into contiguous chunks and runs fn on each
// from a bounded pool of at most GOMAXPROCS goroutines, returning the first
// error. Small spans run inline on the caller's goroutine.
func parallelSpan(n int, fn func(lo, hi int) error) error {
	workers := min(runtime.GOMAXPROCS(0), n/bulkGrainEntries)
	if workers <= 1 {
		return fn(0, n)
	}
	chunk := (n + workers - 1) / workers
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	record := func(err error) {
		if err != nil {
			errMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			errMu.Unlock()
		}
	}
	for lo := chunk; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		wg.Add(1)
		go func() {
			defer wg.Done()
			record(fn(lo, hi))
		}()
	}
	// The first chunk runs inline: the caller works instead of idling in Wait.
	record(fn(0, min(chunk, n)))
	wg.Wait()
	return firstErr
}

func (a *Allocation) checkEntryRange(start, n int) error {
	if start < 0 || n < 0 || start+n > a.EntryCount {
		return fmt.Errorf("core: entry range [%d,%d) out of range [0,%d)",
			start, start+n, a.EntryCount)
	}
	return nil
}

// WriteEntries compresses and stores len(data)/128 consecutive entries
// beginning at entry index start; len(data) must be a multiple of 128.
// Entries are written in parallel across a bounded worker pool, each worker
// reusing one pooled scratch buffer for its whole span. Each entry write is
// individually atomic (the usual torn-write contract at 128 B granularity);
// on error a prefix-and-suffix subset of the span may have been written.
func (a *Allocation) WriteEntries(start int, data []byte) error {
	if len(data)%EntryBytes != 0 {
		return fmt.Errorf("core: batch write length %d not a multiple of %d", len(data), EntryBytes)
	}
	n := len(data) / EntryBytes
	if n == 0 {
		return nil
	}
	if err := a.checkEntryRange(start, n); err != nil {
		return err
	}
	//buddy:hotpath
	return parallelSpan(n, func(lo, hi int) error {
		scratch := streamScratchPool.Get().(*[]byte)
		defer streamScratchPool.Put(scratch)
		for i := lo; i < hi; i++ {
			if err := a.writeEntry(start+i, data[i*EntryBytes:(i+1)*EntryBytes], scratch); err != nil {
				return err
			}
		}
		return nil
	})
}

// ReadEntries fetches and decompresses len(dst)/128 consecutive entries
// beginning at entry index start, decoding each entry straight into its slot
// of dst with no staging copies; len(dst) must be a multiple of 128. Entries
// are read in parallel across a bounded worker pool.
func (a *Allocation) ReadEntries(start int, dst []byte) error {
	if len(dst)%EntryBytes != 0 {
		return fmt.Errorf("core: batch read length %d not a multiple of %d", len(dst), EntryBytes)
	}
	n := len(dst) / EntryBytes
	if n == 0 {
		return nil
	}
	if err := a.checkEntryRange(start, n); err != nil {
		return err
	}
	//buddy:hotpath
	return parallelSpan(n, func(lo, hi int) error {
		scratch := streamScratchPool.Get().(*[]byte)
		defer streamScratchPool.Put(scratch)
		for i := lo; i < hi; i++ {
			if err := a.readEntry(start+i, dst[i*EntryBytes:(i+1)*EntryBytes], scratch); err != nil {
				return err
			}
		}
		return nil
	})
}
