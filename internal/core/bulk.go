package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"buddy/internal/compress"
)

// Batch entry primitives: WriteEntries and ReadEntries move whole spans of
// 128 B entries through the compression pipeline, fanning the codec work
// across the device's persistent span-worker pool. Compression and
// decompression run outside the entry shard locks (each entry operation
// only locks for its table update), so workers contend only on the striped
// mutexes and the batch scales with the pool's width. ReadAt, WriteAt and
// Memcpy route their aligned spans through these primitives, which is what
// makes the byte-addressed bulk surface — and everything above it,
// experiment sweeps included — parallel for free.
//
// Inside a span, the kernels amortize the device-table read lock and the
// traffic-counter updates over sub-batches of spanBatchEntries entries:
// the accounting totals are byte-identical to per-entry execution, only
// the number of lock acquisitions and atomic operations changes. The
// buddy tier stays per entry — the carve-out models per-access link
// occupancy, which batching would distort.

// bulkGrainEntries is the smallest span a worker is given: 64 entries
// (8 KB). Spans below two grains run inline — goroutine handoff costs more
// than compressing a handful of entries.
const bulkGrainEntries = 64

// spanBatchEntries bounds how many entries one dev.mu read-lock
// acquisition (and one traffic flush) covers inside a span kernel, so a
// large span cannot starve writers of the allocation table for its whole
// duration.
const spanBatchEntries = 256

// spanRunner is one batch operation the span pool can partition: runSpan
// processes entries [lo, hi) of the operation's range. Implementations are
// structs rather than closures so dispatching a span allocates nothing.
type spanRunner interface {
	runSpan(lo, hi int) error
}

// spanJob tracks one in-flight partitioned operation: the runner, a
// completion counter, and the first error any chunk produced.
type spanJob struct {
	r   spanRunner
	wg  sync.WaitGroup
	err atomic.Pointer[error]
}

func (j *spanJob) run(lo, hi int) {
	if err := j.r.runSpan(lo, hi); err != nil {
		j.err.CompareAndSwap(nil, &err)
	}
	j.wg.Done()
}

// spanChunk is one contiguous piece of a job, queued to the pool's workers.
type spanChunk struct {
	job    *spanJob
	lo, hi int
}

var spanJobPool = sync.Pool{New: func() any { return new(spanJob) }}

// spanPool is the device's persistent span-worker pool: width-1 goroutines
// (the caller is the width'th worker) draining a bounded chunk queue. It
// replaces per-call goroutine spawns — a batch dispatch in steady state
// allocates nothing and never creates a goroutine. A width of 1 (GOMAXPROCS
// 1 at device construction) spawns no workers at all; every span runs
// inline on its caller.
type spanPool struct {
	width  int            // total workers including the caller; chunk divisor
	chunks chan spanChunk // nil when width <= 1
	closed atomic.Bool
	active sync.WaitGroup // in-flight run() calls, gates close
	wg     sync.WaitGroup // background workers
}

func newSpanPool(width int) *spanPool {
	sp := &spanPool{width: width}
	if width > 1 {
		sp.chunks = make(chan spanChunk, 4*width)
		for i := 0; i < width-1; i++ {
			sp.wg.Add(1)
			go sp.worker()
		}
	}
	return sp
}

func (sp *spanPool) worker() {
	defer sp.wg.Done()
	for c := range sp.chunks {
		c.job.run(c.lo, c.hi)
	}
}

// run partitions [0, n) into contiguous chunks across the pool's workers
// and returns the first error. Small spans — and every span once the pool
// is closed — run inline on the caller's goroutine. Workers never block on
// the chunk queue: when it is full the caller executes the chunk itself, so
// concurrent batch operations degrade to inline work instead of queueing
// behind each other.
func (sp *spanPool) run(n int, r spanRunner) error {
	width := min(sp.width, n/bulkGrainEntries)
	if width <= 1 || sp.chunks == nil {
		return r.runSpan(0, n)
	}
	// active.Add happens before the closed check; close stores the flag
	// before waiting on active — either this run sees closed and stays
	// inline, or close waits for its chunks to finish before closing the
	// channel. Same protocol as the pool's submit/Close.
	sp.active.Add(1)
	if sp.closed.Load() {
		sp.active.Done()
		return r.runSpan(0, n)
	}
	j := spanJobPool.Get().(*spanJob)
	j.r = r
	j.err.Store(nil)
	chunk := (n + width - 1) / width
	for lo := chunk; lo < n; lo += chunk {
		hi := min(lo+chunk, n)
		j.wg.Add(1)
		select {
		case sp.chunks <- spanChunk{job: j, lo: lo, hi: hi}:
		default:
			j.run(lo, hi)
		}
	}
	// The first chunk runs inline: the caller works instead of idling.
	j.wg.Add(1)
	j.run(0, chunk)
	j.wg.Wait()
	sp.active.Done()
	var err error
	if p := j.err.Load(); p != nil {
		err = *p
	}
	j.r = nil
	spanJobPool.Put(j)
	return err
}

// close retires the background workers. In-flight runs finish first; later
// runs execute inline, so the owning device stays fully usable. Idempotent.
func (sp *spanPool) close() {
	if sp.chunks == nil || !sp.closed.CompareAndSwap(false, true) {
		return
	}
	sp.active.Wait()
	close(sp.chunks)
	sp.wg.Wait()
}

// entrySpan is the spanRunner behind WriteEntries/ReadEntries: a span of
// contiguous entries of one allocation, backed by one flat buffer.
type entrySpan struct {
	a     *Allocation
	start int
	data  []byte
	read  bool
}

var entrySpanPool = sync.Pool{New: func() any { return new(entrySpan) }}

//buddy:hotpath
func (s *entrySpan) runSpan(lo, hi int) error {
	// Two scratch buffers, so the kernels can stage both entries of a
	// metadata pair and take their shared shard lock once.
	scratch := streamScratchPool.Get().(*[]byte)
	scratch2 := streamScratchPool.Get().(*[]byte)
	var err error
	if s.read {
		err = s.a.readEntrySpan(s.start, lo, hi, s.data, scratch, scratch2)
	} else {
		err = s.a.writeEntrySpan(s.start, lo, hi, s.data, scratch, scratch2)
	}
	streamScratchPool.Put(scratch)
	streamScratchPool.Put(scratch2)
	return err
}

func (a *Allocation) checkEntryRange(start, n int) error {
	if start < 0 || n < 0 || start+n > a.EntryCount {
		return fmt.Errorf("core: entry range [%d,%d) out of range [0,%d)",
			start, start+n, a.EntryCount)
	}
	return nil
}

// runEntrySpan dispatches an entry span through the device's span pool with
// a pooled runner, so the steady-state batch path allocates nothing.
func (a *Allocation) runEntrySpan(start int, data []byte, read bool, n int) error {
	s := entrySpanPool.Get().(*entrySpan)
	s.a, s.start, s.data, s.read = a, start, data, read
	err := a.dev.span.run(n, s)
	s.a, s.data = nil, nil
	entrySpanPool.Put(s)
	return err
}

// WriteEntries compresses and stores len(data)/128 consecutive entries
// beginning at entry index start; len(data) must be a multiple of 128.
// Entries are written in parallel across the device's span-worker pool,
// each worker reusing one pooled scratch buffer for its whole span. Each
// entry write is individually atomic (the usual torn-write contract at
// 128 B granularity); on error a prefix-and-suffix subset of the span may
// have been written.
func (a *Allocation) WriteEntries(start int, data []byte) error {
	if len(data)%EntryBytes != 0 {
		return fmt.Errorf("core: batch write length %d not a multiple of %d", len(data), EntryBytes)
	}
	n := len(data) / EntryBytes
	if n == 0 {
		return nil
	}
	if err := a.checkEntryRange(start, n); err != nil {
		return err
	}
	return a.runEntrySpan(start, data, false, n)
}

// ReadEntries fetches and decompresses len(dst)/128 consecutive entries
// beginning at entry index start, decoding each entry straight into its slot
// of dst with no staging copies; len(dst) must be a multiple of 128. Entries
// are read in parallel across the device's span-worker pool.
func (a *Allocation) ReadEntries(start int, dst []byte) error {
	if len(dst)%EntryBytes != 0 {
		return fmt.Errorf("core: batch read length %d not a multiple of %d", len(dst), EntryBytes)
	}
	n := len(dst) / EntryBytes
	if n == 0 {
		return nil
	}
	if err := a.checkEntryRange(start, n); err != nil {
		return err
	}
	return a.runEntrySpan(start, dst, true, n)
}

// writeEntrySpan is the batch counterpart of writeEntry: it writes entries
// [lo, hi) of a span whose first entry is index start and whose data is the
// span-relative flat buffer. The device-table read lock is taken once per
// sub-batch (never across one, so Malloc/Free/migration commits interleave)
// and the device-tier traffic counters are flushed once per sub-batch; the
// per-entry totals are identical to writeEntry's. Buddy-tier accounting
// stays per entry: the carve-out models per-access link occupancy.
//
// Entries sharing a metadata byte share a shard (shardBase is even), so the
// kernel encodes both halves of a pair into separate scratch buffers first
// and then takes the pair's shard lock once for both table updates. Each
// entry's stream+metadata update remains atomic under the shard lock, so the
// torn-write contract is unchanged.
//
//buddy:hotpath
func (a *Allocation) writeEntrySpan(start, lo, hi int, data []byte, scratch, scratch2 *[]byte) error {
	d := a.dev
	bufs := [2]*[]byte{scratch, scratch2}
	for b := lo; b < hi; {
		e := min(b+spanBatchEntries, hi)
		d.mu.RLock()
		if a.freed {
			d.mu.RUnlock()
			return a.errFreed()
		}
		if d.failed.Load() {
			d.mu.RUnlock()
			return d.errFailed()
		}
		var devBytes uint64
		for i := b; i < e; {
			n := 1
			if i+1 < e && (a.shardBase+start+i)&1 == 0 {
				n = 2
			}
			var streams [2][]byte
			var secs [2]int
			for k := 0; k < n; k++ {
				src := data[(i+k)*EntryBytes : (i+k+1)*EntryBytes]
				// All-zero entries short-circuit the codec, exactly as in
				// writeEntry: activation-like sparse traffic is dominated by
				// this path.
				var stream []byte
				var bits int
				if compress.EntryAllZero(src) {
					stream, bits = compress.AppendZeroEntry((*bufs[k])[:0], d.cfg.Codec)
				} else {
					stream, bits = d.cfg.Codec.AppendCompressed((*bufs[k])[:0], src)
				}
				*bufs[k] = stream[:0]
				streams[k] = stream
				secs[k] = compress.SectorsForBits(bits)
			}
			var homes [2]int
			var targets [2]TargetRatio
			sh := a.shard(start + i)
			sh.Lock()
			for k := 0; k < n; k++ {
				g, t := a.entryHome(start + i + k)
				homes[k], targets[k] = g, t
				d.streams[g] = append(d.streams[g][:0], streams[k]...)
				d.meta.Set(g, secs[k])
				a.sectorCount[start+i+k] = secs[k]
			}
			sh.Unlock()
			for k := 0; k < n; k++ {
				g := homes[k]
				d.accessMetadata(g)
				dev, buddy := splitBytes(targets[k], secs[k])
				devBytes += uint64(dev)
				if buddy > 0 {
					d.traffic.buddyWriteBytes.Add(uint64(buddy))
					d.traffic.buddyAccesses.Add(1)
					d.overflow.Store(g, buddy)
				}
			}
			i += n
		}
		d.mu.RUnlock()
		d.traffic.writes.Add(uint64(e - b))
		d.traffic.deviceWriteBytes.Add(devBytes)
		d.slab.StoreSpan(e-b, devBytes)
		b = e
	}
	return nil
}

// readEntrySpan is the batch counterpart of readEntry, with the same
// sub-batched lock and accounting amortization as writeEntrySpan. Each
// stored stream is snapshotted into a scratch under its shard lock (writers
// reuse stream buffers in place) and decoded outside it, straight into the
// span buffer. Like the write kernel, both entries of a metadata pair are
// snapshotted under one acquisition of their shared shard lock.
//
//buddy:hotpath
func (a *Allocation) readEntrySpan(start, lo, hi int, dst []byte, scratch, scratch2 *[]byte) error {
	d := a.dev
	bufs := [2]*[]byte{scratch, scratch2}
	for b := lo; b < hi; {
		e := min(b+spanBatchEntries, hi)
		d.mu.RLock()
		if a.freed {
			d.mu.RUnlock()
			return a.errFreed()
		}
		if d.failed.Load() {
			d.mu.RUnlock()
			return d.errFailed()
		}
		var devBytes uint64
		for i := b; i < e; {
			n := 1
			if i+1 < e && (a.shardBase+start+i)&1 == 0 {
				n = 2
			}
			var homes [2]int
			var targets [2]TargetRatio
			var secs [2]int
			var written [2]bool
			sh := a.shard(start + i)
			sh.Lock()
			for k := 0; k < n; k++ {
				g, t := a.entryHome(start + i + k)
				homes[k], targets[k] = g, t
				secs[k] = d.meta.Get(g)
				written[k] = d.streams[g] != nil
				*bufs[k] = append((*bufs[k])[:0], d.streams[g]...)
			}
			sh.Unlock()
			for k := 0; k < n; k++ {
				g := homes[k]
				d.accessMetadata(g)
				dev, buddy := splitBytes(targets[k], secs[k])
				devBytes += uint64(dev)
				if buddy > 0 {
					d.traffic.buddyReadBytes.Add(uint64(buddy))
					d.traffic.buddyAccesses.Add(1)
					d.overflow.Load(g, buddy)
				}
				out := dst[(i+k)*EntryBytes : (i+k+1)*EntryBytes]
				if !written[k] {
					// Never-written entries read as zero, like fresh
					// cudaMalloc pages.
					clear(out)
				} else if err := d.cfg.Codec.DecompressInto(out, *bufs[k]); err != nil {
					d.mu.RUnlock()
					// The failed entry's read was already accounted, like
					// readEntry's counters-before-decode ordering.
					d.traffic.reads.Add(uint64(i + k + 1 - b))
					d.traffic.deviceReadBytes.Add(devBytes)
					d.slab.LoadSpan(i+k+1-b, devBytes)
					return fmt.Errorf("core: entry %d of %s: %w", start+i+k, a.Name, err)
				}
			}
			i += n
		}
		d.mu.RUnlock()
		d.traffic.reads.Add(uint64(e - b))
		d.traffic.deviceReadBytes.Add(devBytes)
		d.slab.LoadSpan(e-b, devBytes)
		b = e
	}
	return nil
}
