package core

import (
	"testing"

	"buddy/internal/compress"
	"buddy/internal/gen"
	"buddy/internal/memory"
)

// driftSnapshot builds a snapshot whose "drifting" allocation changes
// compressibility with phase (0: all zero, 1: half-compressible). A large
// incompressible ballast allocation keeps the aggregate ratio under the 4x
// carve-out cap so the profiler's per-allocation choices stay visible.
func driftSnapshot(phase int) *memory.Snapshot {
	s := &memory.Snapshot{Index: phase}
	ballast := memory.NewAllocation("ballast", 3072*128)
	gen.Random{}.Fill(ballast.Data, gen.NewRNG(77, 5))
	a := memory.NewAllocation("drifting", 1024*128)
	var g gen.Generator
	if phase == 0 {
		g = gen.Zeros{}
	} else {
		g = gen.Noisy64{NoiseBits: 8, HiStep: 1}
	}
	g.Fill(a.Data, gen.NewRNG(uint64(phase), 3))
	s.Allocations = append(s.Allocations, ballast, a)
	return s
}

func TestPlanReprofileDetectsDrift(t *testing.T) {
	bpc := compress.NewBPC()
	// Initially profiled while the data was all zero: 16x.
	initial := Profile([]*memory.Snapshot{driftSnapshot(0)}, bpc, FinalDesign())
	if initial.Targets()["drifting"] != Target16x {
		t.Fatalf("initial target = %s, want 16x", initial.Targets()["drifting"])
	}
	// At the next checkpoint the data has densified to ~2x material.
	plan := PlanReprofile(initial.Targets(), []*memory.Snapshot{driftSnapshot(1)}, bpc, FinalDesign())
	if len(plan.Decisions) != 1 {
		t.Fatalf("want one decision, got %d", len(plan.Decisions))
	}
	d := plan.Decisions[0]
	if d.Old != Target16x || d.New != Target2x {
		t.Errorf("decision %s -> %s, want 16x -> 2x", d.Old, d.New)
	}
	if d.MigrationBytes <= 0 {
		t.Error("target change must report a migration cost")
	}
	// Keeping the stale 16x target on dense data would overflow the whole
	// allocation (a quarter of the program's entries).
	if d.OldOverflowFrac < 0.95 {
		t.Errorf("stale per-allocation overflow = %.2f, want ~1.0", d.OldOverflowFrac)
	}
	if d.NewOverflowFrac > 0.05 {
		t.Errorf("updated per-allocation overflow = %.2f, want ~0", d.NewOverflowFrac)
	}
	if plan.BuddyFracBefore < 0.2 || plan.BuddyFracBefore > 0.3 {
		t.Errorf("program-wide stale overflow = %.2f, want ~0.25", plan.BuddyFracBefore)
	}
	if plan.BuddyFracAfter > 0.02 {
		t.Errorf("program-wide updated overflow = %.2f, want ~0", plan.BuddyFracAfter)
	}
	// A long-running application amortizes the migration easily; a short
	// horizon does not (§3.4: "unless the applications are very long
	// running and the overheads are amortized").
	if !plan.Worthwhile(1 << 30) {
		t.Error("long horizon should justify the update")
	}
	if plan.Worthwhile(10) {
		t.Error("ten accesses cannot amortize a full migration")
	}
}

func TestPlanReprofileStableDataNoChanges(t *testing.T) {
	bpc := compress.NewBPC()
	snaps := []*memory.Snapshot{driftSnapshot(1)}
	initial := Profile(snaps, bpc, FinalDesign())
	plan := PlanReprofile(initial.Targets(), snaps, bpc, FinalDesign())
	if len(plan.Decisions) != 0 {
		t.Errorf("stable data should need no changes, got %d", len(plan.Decisions))
	}
	if plan.TotalMigrationBytes != 0 {
		t.Errorf("no changes should cost nothing, got %d", plan.TotalMigrationBytes)
	}
	if plan.RatioBefore != plan.RatioAfter {
		t.Errorf("ratio should be unchanged: %.2f vs %.2f", plan.RatioBefore, plan.RatioAfter)
	}
}

func TestPlanReprofileUnknownAllocationsDefault1x(t *testing.T) {
	bpc := compress.NewBPC()
	plan := PlanReprofile(nil, []*memory.Snapshot{driftSnapshot(0)}, bpc, FinalDesign())
	if len(plan.Decisions) != 1 || plan.Decisions[0].Old != Target1x {
		t.Fatalf("unknown allocation should default to 1x, got %+v", plan.Decisions)
	}
	if plan.RatioAfter <= plan.RatioBefore {
		t.Error("profiling zero data should raise the ratio above 1x")
	}
}
