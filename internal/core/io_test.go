package core

import (
	"bytes"
	"io"
	"testing"

	"buddy/internal/gen"
)

func fillPattern(p []byte, seed byte) {
	for i := range p {
		p[i] = byte(i)*7 + seed
	}
}

func TestReadWriteAtUnalignedRoundTrip(t *testing.T) {
	d := newTestDevice(1 << 20)
	a, err := d.Malloc("io", 8<<10, Target2x)
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance case: a 1000-byte write at an unaligned offset must
	// round-trip bit-exactly through BPC, without touching neighbours.
	neighbours := make([]byte, a.Size())
	fillPattern(neighbours, 3)
	if _, err := a.WriteAt(neighbours, 0); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1000)
	gen.Random{}.Fill(payload[:128], gen.NewRNG(7, 1))
	fillPattern(payload[128:], 201)
	const off = 333 // straddles entries 2..10, both edges unaligned
	if n, err := a.WriteAt(payload, off); err != nil || n != len(payload) {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}

	got := make([]byte, 1000)
	if n, err := a.ReadAt(got, off); err != nil || n != len(got) {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("unaligned 1000-byte round-trip mismatch")
	}

	// Bytes around the window are preserved by the read-modify-write.
	whole := make([]byte, a.Size())
	if _, err := a.ReadAt(whole, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole[:off], neighbours[:off]) {
		t.Error("bytes before the write window were disturbed")
	}
	if !bytes.Equal(whole[off+1000:], neighbours[off+1000:]) {
		t.Error("bytes after the write window were disturbed")
	}
}

func TestReadWriteAtEntryBoundaries(t *testing.T) {
	d := newTestDevice(1 << 20)
	a, _ := d.Malloc("edge", 4<<10, Target1x)
	cases := []struct {
		off int64
		n   int
	}{
		{0, EntryBytes},              // exactly one aligned entry
		{EntryBytes, 2 * EntryBytes}, // two aligned entries
		{EntryBytes - 1, 2},          // byte straddling a boundary
		{EntryBytes / 2, EntryBytes}, // one entry's worth, split across two
		{a.Size() - 5, 5},            // tail of the allocation
		{0, int(a.Size())},           // the whole allocation
	}
	for _, c := range cases {
		p := make([]byte, c.n)
		fillPattern(p, byte(c.off))
		if n, err := a.WriteAt(p, c.off); err != nil || n != c.n {
			t.Fatalf("WriteAt(%d, off=%d) = %d, %v", c.n, c.off, n, err)
		}
		got := make([]byte, c.n)
		if n, err := a.ReadAt(got, c.off); err != nil || n != c.n {
			t.Fatalf("ReadAt(%d, off=%d) = %d, %v", c.n, c.off, n, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("round-trip mismatch at off=%d n=%d", c.off, c.n)
		}
	}
}

func TestReadAtPastEndReturnsEOF(t *testing.T) {
	d := newTestDevice(1 << 20)
	a, _ := d.Malloc("eof", 300, Target1x) // 300 B: padded to 3 entries
	if a.Size() != 300 {
		t.Fatalf("Size = %d, want the requested 300", a.Size())
	}
	p := make([]byte, 64)
	n, err := a.ReadAt(p, 280)
	if n != 20 || err != io.EOF {
		t.Errorf("ReadAt past end = %d, %v; want 20, io.EOF", n, err)
	}
	if n, err = a.ReadAt(p, 300); n != 0 || err != io.EOF {
		t.Errorf("ReadAt at end = %d, %v; want 0, io.EOF", n, err)
	}
	if _, err = a.ReadAt(p, -1); err == nil {
		t.Error("negative offset must error")
	}
	if n, err = a.WriteAt(p, 280); n != 20 || err != io.ErrShortWrite {
		t.Errorf("WriteAt past end = %d, %v; want 20, ErrShortWrite", n, err)
	}
}

func TestWriteAtPreservesPaddingSemantics(t *testing.T) {
	// A partial write into the final, padded entry must round-trip and the
	// in-range tail must stay addressable.
	d := newTestDevice(1 << 20)
	a, _ := d.Malloc("pad", 200, Target2x)
	p := []byte{1, 2, 3, 4, 5}
	if n, err := a.WriteAt(p, 190); err != nil || n != 5 {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	got := make([]byte, 5)
	if _, err := a.ReadAt(got, 190); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Errorf("padded-entry round trip = %v, want %v", got, p)
	}
}

func TestMemcpy(t *testing.T) {
	d := newTestDevice(1 << 20)
	src, _ := d.Malloc("src", 4<<10, Target2x)
	dst, _ := d.Malloc("dst", 4<<10, Target4x)
	data := make([]byte, src.Size())
	gen.Noisy64{NoiseBits: 8, HiStep: 1}.Fill(data[:EntryBytes], gen.NewRNG(5, 1))
	fillPattern(data[EntryBytes:], 9)
	if _, err := src.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	n, err := Memcpy(dst, src, src.Size())
	if err != nil || n != src.Size() {
		t.Fatalf("Memcpy = %d, %v", n, err)
	}
	got := make([]byte, dst.Size())
	if _, err := dst.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("Memcpy content mismatch")
	}

	// Cross-device copies work too: each side uses its own pipeline.
	d2 := newTestDevice(1 << 20)
	far, _ := d2.Malloc("far", 4<<10, Target1x)
	if _, err := Memcpy(far, src, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := far.ReadAt(got[:1000], 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:1000], data[:1000]) {
		t.Fatal("cross-device Memcpy mismatch")
	}

	if _, err := Memcpy(dst, src, src.Size()+1); err == nil {
		t.Error("oversized Memcpy must fail")
	}
	if _, err := Memcpy(dst, src, -1); err == nil {
		t.Error("negative Memcpy must fail")
	}
}
