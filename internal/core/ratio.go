// Package core implements Buddy Compression itself (§3): fixed-sector-count
// compressed allocations split between device memory and an NVLink-attached
// buddy carve-out, per-entry 4-bit metadata with a sliced metadata cache,
// GBBR-offset buddy addressing, and the profiling pass that chooses
// per-allocation target compression ratios under a Buddy Threshold with the
// mostly-zero (16x) special case.
package core

import "fmt"

// TargetRatio is an allocation's annotated target compression ratio (§3.2):
// how many 32 B sectors of each 128 B memory-entry live in device memory.
// The allowed ratios keep sector interleaving simple: 1x, 1.33x, 2x and 4x
// (4, 3, 2, 1 device sectors), plus the 16x mostly-zero mode that keeps only
// 8 B per entry (§3.4).
type TargetRatio uint8

// Target ratios in increasing aggressiveness.
const (
	Target1x TargetRatio = iota
	Target4by3x
	Target2x
	Target4x
	Target16x
)

// AllRatios lists the target ratios from least to most aggressive.
var AllRatios = []TargetRatio{Target1x, Target4by3x, Target2x, Target4x, Target16x}

// DeviceSectors returns how many 32 B sectors per entry stay in device
// memory (0 for the 16x zero-page mode, which keeps 8 B).
func (t TargetRatio) DeviceSectors() int {
	switch t {
	case Target1x:
		return 4
	case Target4by3x:
		return 3
	case Target2x:
		return 2
	case Target4x:
		return 1
	default:
		return 0
	}
}

// DeviceBytes returns the per-entry device memory reservation.
func (t TargetRatio) DeviceBytes() int {
	if t == Target16x {
		return 8
	}
	return t.DeviceSectors() * 32
}

// BuddySlotBytes returns the per-entry buddy carve-out reservation: the
// sectors that spill when an entry does not compress to target. The 16x mode
// must be able to source a whole uncompressed entry from buddy.
func (t TargetRatio) BuddySlotBytes() int {
	if t == Target16x {
		return 128
	}
	return 128 - t.DeviceBytes()
}

// Value returns the nominal compression ratio.
func (t TargetRatio) Value() float64 {
	switch t {
	case Target1x:
		return 1
	case Target4by3x:
		return 4.0 / 3.0
	case Target2x:
		return 2
	case Target4x:
		return 4
	default:
		return 16
	}
}

// Fits reports whether an entry compressed to the given sector count
// (0..4, 0 = zero-page class) sources entirely from device memory.
func (t TargetRatio) Fits(sectors int) bool {
	if t == Target16x {
		return sectors == 0
	}
	return sectors <= t.DeviceSectors()
}

// OverflowSectors returns how many sectors of an entry with the given
// compressed sector count must be sourced from buddy memory.
func (t TargetRatio) OverflowSectors(sectors int) int {
	if t.Fits(sectors) {
		return 0
	}
	if t == Target16x {
		// The 8 B device word cannot hold a sector; the whole compressed
		// entry comes from the buddy slot.
		return sectors
	}
	return sectors - t.DeviceSectors()
}

// String implements fmt.Stringer.
func (t TargetRatio) String() string {
	switch t {
	case Target1x:
		return "1x"
	case Target4by3x:
		return "1.33x"
	case Target2x:
		return "2x"
	case Target4x:
		return "4x"
	case Target16x:
		return "16x"
	default:
		return fmt.Sprintf("TargetRatio(%d)", uint8(t))
	}
}

// RatioForSectors returns the most aggressive non-zero-page ratio that fully
// fits entries of the given compressed sector count.
func RatioForSectors(sectors int) TargetRatio {
	switch {
	case sectors <= 1:
		return Target4x
	case sectors == 2:
		return Target2x
	case sectors == 3:
		return Target4by3x
	default:
		return Target1x
	}
}
