package core

import (
	"fmt"
	"io"
	"sync"
)

// Byte-addressed bulk I/O over the entry-granular compression pipeline.
// Allocation satisfies io.ReaderAt and io.WriterAt, so callers address
// plain byte offsets — as software does under the paper's transparent
// memory system — and never see the 128 B entry granularity. Unaligned
// edges are handled with read-modify-write of the bounding entries; the
// aligned interior of every request is routed through the parallel
// WriteEntries/ReadEntries batch primitives.
//
// Each entry operation is individually atomic with respect to concurrent
// device use; a multi-entry ReadAt/WriteAt is not a single atomic unit, and
// concurrent writers to byte ranges sharing one entry may interleave at
// entry granularity (standard torn-write semantics).

var (
	_ io.ReaderAt = (*Allocation)(nil)
	_ io.WriterAt = (*Allocation)(nil)
)

// alignedSpan returns the length of the whole-entry prefix of a request for
// want bytes at entry-aligned offset off: full in-range entries only, 0 if
// off is unaligned or past size.
func (a *Allocation) alignedSpan(off int64, want int) int {
	if off%EntryBytes != 0 || off >= a.size {
		return 0
	}
	full := min(want, int(a.size-off))
	return full - full%EntryBytes
}

// partialSpan returns the byte range of off's bounding entry covered by a
// request for want bytes, clamped to size: the read-modify-write window at
// unaligned edges and in the final padding entry.
func (a *Allocation) partialSpan(off int64, want int) (entryIdx, within, avail int) {
	entryIdx = int(off / EntryBytes)
	within = int(off % EntryBytes)
	avail = EntryBytes - within
	if rem := a.size - off; int64(avail) > rem {
		avail = int(rem)
	}
	if avail > want {
		avail = want
	}
	return entryIdx, within, avail
}

// entryScratchPool recycles the one-entry staging buffer the partial-edge
// read-modify-write paths use. A plain local array would escape through the
// codec interface call and put one heap allocation on every ReadAt/WriteAt —
// including fully aligned calls that never touch an edge.
var entryScratchPool = sync.Pool{New: func() any { return new([EntryBytes]byte) }}

// readPartial decodes the bounding entry of an unaligned edge into pooled
// scratch and copies the window starting at within into dst.
func (a *Allocation) readPartial(e, within int, dst []byte) error {
	buf := entryScratchPool.Get().(*[EntryBytes]byte)
	err := a.ReadEntry(e, buf[:])
	if err == nil {
		copy(dst, buf[within:])
	}
	entryScratchPool.Put(buf)
	return err
}

// writePartial read-modifies-writes the entry only partially covered by src
// at offset within, preserving the neighbouring bytes.
func (a *Allocation) writePartial(e, within int, src []byte) error {
	buf := entryScratchPool.Get().(*[EntryBytes]byte)
	err := a.ReadEntry(e, buf[:])
	if err == nil {
		copy(buf[within:within+len(src)], src)
		err = a.WriteEntry(e, buf[:])
	}
	entryScratchPool.Put(buf)
	return err
}

// ReadAt implements io.ReaderAt: it reads len(p) bytes starting at byte
// offset off, decompressing the covering entries — the aligned interior in
// parallel, straight into p. It returns io.EOF when the read reaches past
// Size().
func (a *Allocation) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("core: negative offset %d", off)
	}
	n := 0
	for n < len(p) && off < a.size {
		if full := a.alignedSpan(off, len(p)-n); full > 0 {
			// Aligned interior: whole entries decode directly into p.
			if err := a.ReadEntries(int(off/EntryBytes), p[n:n+full]); err != nil {
				return n, err
			}
			n += full
			off += int64(full)
			continue
		}
		// Partial entry at an edge: decode and take the covered piece.
		e, within, avail := a.partialSpan(off, len(p)-n)
		if err := a.readPartial(e, within, p[n:n+avail]); err != nil {
			return n, err
		}
		n += avail
		off += int64(avail)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt: it writes len(p) bytes starting at byte
// offset off through the compression pipeline, compressing the aligned
// interior in parallel. Entries only partially covered by the write (the
// unaligned head and tail, or any write within an allocation's final
// padding entry) are read-modified-written so neighbouring bytes are
// preserved. Writes past Size() stop short and return io.ErrShortWrite.
func (a *Allocation) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("core: negative offset %d", off)
	}
	n := 0
	for n < len(p) && off < a.size {
		if full := a.alignedSpan(off, len(p)-n); full > 0 {
			// Aligned interior: fully covered entries need no read-back.
			if err := a.WriteEntries(int(off/EntryBytes), p[n:n+full]); err != nil {
				return n, err
			}
			n += full
			off += int64(full)
			continue
		}
		// Partially covered entry at an edge: read-modify-write it.
		e, within, avail := a.partialSpan(off, len(p)-n)
		if err := a.writePartial(e, within, p[n:n+avail]); err != nil {
			return n, err
		}
		n += avail
		off += int64(avail)
	}
	if n < len(p) {
		return n, io.ErrShortWrite
	}
	return n, nil
}

// memcpyChunkEntries sizes the Memcpy staging buffer: 512 entries (64 KB)
// per chunk, large enough for the batch primitives underneath to fan out
// across several bulk grains.
const memcpyChunkEntries = 512

// memcpyBufPool recycles Memcpy staging buffers, companion to the codec
// scratch pool: the bulk copy path allocates nothing in steady state.
var memcpyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, memcpyChunkEntries*EntryBytes)
		return &b
	},
}

// Memcpy copies n bytes from the start of src to the start of dst through
// both compression pipelines — the transparent-memory equivalent of
// cudaMemcpy(dst, src, n). The allocations may live on different devices.
// It returns the bytes copied; copying past either allocation's Size fails
// after the in-range prefix. Staging draws on a pooled buffer and each
// chunk's read and write fan out in parallel underneath.
func Memcpy(dst, src *Allocation, n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("core: negative memcpy length %d", n)
	}
	if n > src.Size() || n > dst.Size() {
		return 0, fmt.Errorf("core: memcpy length %d exceeds src %d or dst %d",
			n, src.Size(), dst.Size())
	}
	bp := memcpyBufPool.Get().(*[]byte)
	defer memcpyBufPool.Put(bp)
	buf := *bp
	var copied int64
	for copied < n {
		chunk := int64(len(buf))
		if rem := n - copied; chunk > rem {
			chunk = rem
		}
		if _, err := src.ReadAt(buf[:chunk], copied); err != nil {
			return copied, err
		}
		w, err := dst.WriteAt(buf[:chunk], copied)
		copied += int64(w)
		if err != nil {
			return copied, err
		}
	}
	return copied, nil
}
