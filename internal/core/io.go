package core

import (
	"fmt"
	"io"
)

// Byte-addressed bulk I/O over the entry-granular compression pipeline.
// Allocation satisfies io.ReaderAt and io.WriterAt, so callers address
// plain byte offsets — as software does under the paper's transparent
// memory system — and never see the 128 B entry granularity. Unaligned
// edges are handled with read-modify-write of the bounding entries.
//
// Each entry operation is individually atomic with respect to concurrent
// device use; a multi-entry ReadAt/WriteAt is not a single atomic unit, and
// concurrent writers to byte ranges sharing one entry may interleave at
// entry granularity (standard torn-write semantics).

var (
	_ io.ReaderAt = (*Allocation)(nil)
	_ io.WriterAt = (*Allocation)(nil)
)

// ReadAt implements io.ReaderAt: it reads len(p) bytes starting at byte
// offset off, decompressing the covering entries. It returns io.EOF when
// the read reaches past Size().
func (a *Allocation) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("core: negative offset %d", off)
	}
	var entry [EntryBytes]byte
	n := 0
	for n < len(p) && off < a.size {
		e := int(off / EntryBytes)
		within := int(off % EntryBytes)
		if err := a.ReadEntry(e, entry[:]); err != nil {
			return n, err
		}
		avail := EntryBytes - within
		if rem := a.size - off; int64(avail) > rem {
			avail = int(rem)
		}
		c := copy(p[n:], entry[within:within+avail])
		n += c
		off += int64(c)
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements io.WriterAt: it writes len(p) bytes starting at byte
// offset off through the compression pipeline. Entries only partially
// covered by the write (the unaligned head and tail, or any write within an
// allocation's final padding entry) are read-modified-written so
// neighbouring bytes are preserved. Writes past Size() stop short and
// return io.ErrShortWrite.
func (a *Allocation) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("core: negative offset %d", off)
	}
	var entry [EntryBytes]byte
	n := 0
	for n < len(p) && off < a.size {
		e := int(off / EntryBytes)
		within := int(off % EntryBytes)
		avail := EntryBytes - within
		if rem := a.size - off; int64(avail) > rem {
			avail = int(rem)
		}
		if avail > len(p)-n {
			avail = len(p) - n
		}
		if within == 0 && avail == EntryBytes {
			// Fast path: a fully covered entry needs no read-back.
			if err := a.WriteEntry(e, p[n:n+EntryBytes]); err != nil {
				return n, err
			}
		} else {
			if err := a.ReadEntry(e, entry[:]); err != nil {
				return n, err
			}
			copy(entry[within:], p[n:n+avail])
			if err := a.WriteEntry(e, entry[:]); err != nil {
				return n, err
			}
		}
		n += avail
		off += int64(avail)
	}
	if n < len(p) {
		return n, io.ErrShortWrite
	}
	return n, nil
}

// Memcpy copies n bytes from the start of src to the start of dst through
// both compression pipelines — the transparent-memory equivalent of
// cudaMemcpy(dst, src, n). The allocations may live on different devices.
// It returns the bytes copied; copying past either allocation's Size fails
// after the in-range prefix.
func Memcpy(dst, src *Allocation, n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("core: negative memcpy length %d", n)
	}
	if n > src.Size() || n > dst.Size() {
		return 0, fmt.Errorf("core: memcpy length %d exceeds src %d or dst %d",
			n, src.Size(), dst.Size())
	}
	buf := make([]byte, 64*EntryBytes)
	var copied int64
	for copied < n {
		chunk := int64(len(buf))
		if rem := n - copied; chunk > rem {
			chunk = rem
		}
		if _, err := src.ReadAt(buf[:chunk], copied); err != nil {
			return copied, err
		}
		w, err := dst.WriteAt(buf[:chunk], copied)
		copied += int64(w)
		if err != nil {
			return copied, err
		}
	}
	return copied, nil
}
