package core

import (
	"buddy/internal/analysis"
	"buddy/internal/compress"
	"buddy/internal/memory"
)

// The paper keeps a single static target ratio per allocation because
// changing a target mid-run requires reallocating and moving pages (§3.4).
// It notes the extension this file implements: "the target ratios can be
// periodically updated for long running applications, e.g., for DL
// training, the target ratio update can be combined with checkpointing."
//
// PlanReprofile is that checkpoint-time pass: given the targets currently
// in force and fresh profiling snapshots, it reports which allocations
// should change, what the whole-program compression and buddy-access
// numbers become, and how many bytes each change migrates — the inputs a
// framework needs to decide whether the update pays for itself.

// ReprofileDecision describes one allocation's proposed target change.
type ReprofileDecision struct {
	// Name of the allocation.
	Name string
	// Old and New are the current and proposed target ratios.
	Old, New TargetRatio
	// MigrationBytes is the data that must move to apply the change: the
	// allocation's compressed contents are re-laid-out into new device and
	// buddy slots (both directions of the interconnect are involved when
	// the device reservation shrinks).
	MigrationBytes int64
	// OldOverflowFrac and NewOverflowFrac are the expected buddy-access
	// fractions before and after.
	OldOverflowFrac, NewOverflowFrac float64
}

// ReprofilePlan is the outcome of a checkpoint-time re-profiling pass.
type ReprofilePlan struct {
	// Decisions holds one entry per allocation whose target changes.
	Decisions []ReprofileDecision
	// Result is the fresh profiling result the plan is based on.
	Result *ProfileResult
	// TotalMigrationBytes sums the migration cost.
	TotalMigrationBytes int64
	// RatioBefore and RatioAfter are the whole-program device compression
	// ratios under the old and new targets.
	RatioBefore, RatioAfter float64
	// BuddyFracBefore and BuddyFracAfter are the expected buddy-access
	// fractions under the old and new targets, measured on the new data.
	BuddyFracBefore, BuddyFracAfter float64
}

// Worthwhile reports whether applying the plan is justified under a simple
// amortization rule: the migration cost (bytes moved) must be repaid by the
// buddy-access reduction within horizonAccesses memory accesses, each saved
// overflow avoiding one 32 B interconnect transfer.
func (p *ReprofilePlan) Worthwhile(horizonAccesses int64) bool {
	saved := (p.BuddyFracBefore - p.BuddyFracAfter) * float64(horizonAccesses) * 32
	return saved > float64(p.TotalMigrationBytes)
}

// PlanReprofile computes a checkpoint-time target update. current maps
// allocation names to the targets in force (missing names default to 1x);
// snaps are fresh profiling dumps of the current data. The fresh dumps are
// indexed once (see internal/analysis); callers that already hold indexes
// use PlanReprofileIndexes.
func PlanReprofile(current map[string]TargetRatio, snaps []*memory.Snapshot,
	c compress.Codec, opt ProfileOptions) *ReprofilePlan {
	return PlanReprofileIndexes(current, analysis.BuildRun(snaps, c), opt)
}

// PlanReprofileIndexes is PlanReprofile over pre-built snapshot indexes.
func PlanReprofileIndexes(current map[string]TargetRatio, idx []*analysis.Index,
	opt ProfileOptions) *ReprofilePlan {
	res := ProfileIndexes(idx, opt)
	plan := &ReprofilePlan{Result: res}

	var entriesTotal float64
	var devBefore, devAfter, orig float64
	var overBefore, overAfter float64
	for _, p := range res.Allocations {
		old, ok := current[p.Name]
		if !ok {
			old = Target1x
		}
		entries := float64(p.Entries)
		entriesTotal += entries
		orig += entries * 128
		devBefore += entries * float64(old.DeviceBytes())
		devAfter += entries * float64(p.Target.DeviceBytes())
		oldOver := overflowFrac(p, old)
		newOver := overflowFrac(p, p.Target)
		overBefore += oldOver * entries
		overAfter += newOver * entries

		if p.Target == old {
			continue
		}
		// Migration: every entry's stored sectors are rewritten into the
		// new layout; stored size comes from the profiled histogram, in the
		// same storedBytes unit the live migration counts, so this estimate
		// and MigrationStats.MigratedBytes compare 1:1.
		var stored float64
		var obs float64
		for s, n := range p.Hist {
			stored += float64(storedBytes(s)) * float64(n)
			obs += float64(n)
		}
		perEntry := 128.0
		if obs > 0 {
			perEntry = stored / obs
		}
		plan.Decisions = append(plan.Decisions, ReprofileDecision{
			Name:            p.Name,
			Old:             old,
			New:             p.Target,
			MigrationBytes:  int64(perEntry * entries),
			OldOverflowFrac: oldOver,
			NewOverflowFrac: newOver,
		})
		plan.TotalMigrationBytes += int64(perEntry * entries)
	}
	if devBefore > 0 {
		plan.RatioBefore = orig / devBefore
	}
	if devAfter > 0 {
		plan.RatioAfter = orig / devAfter
	}
	if entriesTotal > 0 {
		plan.BuddyFracBefore = overBefore / entriesTotal
		plan.BuddyFracAfter = overAfter / entriesTotal
	}
	return plan
}
