package core

import (
	"fmt"
	"math/bits"
	"sync"

	"buddy/internal/cache"
)

// MetadataBitsPerEntry is the per-128 B-entry translation metadata: enough
// to record the compressed sector count (§3.2, "4 bits of metadata per cache
// block ... amounting to a 0.4% overhead in storage").
const MetadataBitsPerEntry = 4

// MetadataLineBytes is the metadata cache line size; one 32 B line covers
// the metadata of 64 consecutive memory-entries, so a miss prefetches the
// metadata of 63 neighbours (§3.2).
const MetadataLineBytes = 32

// EntriesPerMetadataLine is 32 B * 8 / 4 bits = 64.
const EntriesPerMetadataLine = MetadataLineBytes * 8 / MetadataBitsPerEntry

// MetadataStore holds the dedicated device-memory region with 4 bits per
// memory-entry, packed two entries per byte.
type MetadataStore struct {
	packed []uint8
}

// NewMetadataStore sizes a store for n memory-entries.
func NewMetadataStore(n int) *MetadataStore {
	return &MetadataStore{packed: make([]uint8, (n+1)/2)}
}

// Set records the compressed sector count (0..4) for entry i. Values above
// 15 cannot occur; the store panics on out-of-range input as that is a
// programming error.
func (m *MetadataStore) Set(i, sectors int) {
	if sectors < 0 || sectors > 15 {
		panic(fmt.Sprintf("core: metadata value %d out of 4-bit range", sectors))
	}
	idx := i / 2
	if i%2 == 0 {
		m.packed[idx] = m.packed[idx]&0xF0 | uint8(sectors)
	} else {
		m.packed[idx] = m.packed[idx]&0x0F | uint8(sectors)<<4
	}
}

// Get returns the compressed sector count for entry i.
func (m *MetadataStore) Get(i int) int {
	idx := i / 2
	if i%2 == 0 {
		return int(m.packed[idx] & 0x0F)
	}
	return int(m.packed[idx] >> 4)
}

// Bytes returns the size of the metadata region in bytes.
func (m *MetadataStore) Bytes() int { return len(m.packed) }

// OverheadFraction returns metadata bytes over data bytes: 4 bits per 128 B
// entry = 1/256 ≈ 0.4% (§3.2).
func (m *MetadataStore) OverheadFraction() float64 {
	dataBytes := float64(len(m.packed) * 2 * 128)
	if dataBytes == 0 {
		return 0
	}
	return float64(len(m.packed)) / dataBytes
}

// MetadataCache models the sliced, set-associative metadata cache (Fig. 5:
// 4-way, 64 KB total split into 8 slices, one per DRAM channel; Tab. 2 uses
// 4 KB per slice). Metadata lines are interleaved across slices with the
// same hashing as regular physical addresses. It is safe for concurrent
// use: each slice has its own lock, mirroring the per-DRAM-channel
// independence of the hardware.
type MetadataCache struct {
	slices []*cache.Cache
	locks  []sync.Mutex
	// mask/shift replace the slice-select mod/div when the slice count is a
	// power of two (the hardware configuration: one slice per DRAM channel).
	// mask == 0 means "not a power of two"; Access then falls back to the
	// general divide. Both paths compute the same slice id and local address.
	mask  uint64
	shift uint
}

// NewMetadataCache builds a cache of totalBytes split across nSlices
// set-associative slices.
func NewMetadataCache(totalBytes, nSlices, ways int) *MetadataCache {
	if nSlices <= 0 {
		nSlices = 1
	}
	per := totalBytes / nSlices
	mc := &MetadataCache{
		slices: make([]*cache.Cache, nSlices),
		locks:  make([]sync.Mutex, nSlices),
	}
	if nSlices&(nSlices-1) == 0 {
		mc.mask = uint64(nSlices - 1)
		mc.shift = uint(bits.TrailingZeros(uint(nSlices)))
	}
	for i := range mc.slices {
		mc.slices[i] = cache.New(per, ways, MetadataLineBytes)
	}
	return mc
}

// Access looks up the metadata line for memory-entry index entry, returning
// whether it hit. A miss models one extra 32 B device-memory read. The slice
// is selected by the line address (the DRAM-channel hash of §3.2); the
// slice-local lookup drops the selection bits so slice id and set index do
// not alias.
func (mc *MetadataCache) Access(entry int) bool {
	byteAddr := uint64(entry) * MetadataBitsPerEntry / 8
	line := byteAddr / MetadataLineBytes
	var i, local uint64
	if mc.mask != 0 {
		i = line & mc.mask
		local = (line >> mc.shift) * MetadataLineBytes
	} else {
		i = line % uint64(len(mc.slices))
		local = line / uint64(len(mc.slices)) * MetadataLineBytes
	}
	mc.locks[i].Lock()
	hit := mc.slices[i].Access(local)
	mc.locks[i].Unlock()
	return hit
}

// HitRate aggregates hits across slices.
func (mc *MetadataCache) HitRate() float64 {
	var h, m uint64
	for i, s := range mc.slices {
		mc.locks[i].Lock()
		h += s.Hits()
		m += s.Misses()
		mc.locks[i].Unlock()
	}
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Reset clears all slices.
func (mc *MetadataCache) Reset() {
	for i, s := range mc.slices {
		mc.locks[i].Lock()
		s.Reset()
		mc.locks[i].Unlock()
	}
}

// PageTableOverheadBits is the per-PTE extension Buddy Compression needs:
// compressed flag, target ratio, and the buddy-page offset from the GBBR
// (§3.2: "a total overhead of 24 bits per page-table entry").
const PageTableOverheadBits = 24

// PTE models the extended page-table entry fields (§3.2). It exists to make
// the translation path explicit and testable; the simulator does not model
// TLB timing (the paper's design adds no extra TLB lookups).
type PTE struct {
	// Compressed marks pages under Buddy Compression.
	Compressed bool
	// Target is the page's target compression ratio.
	Target TargetRatio
	// BuddyPageOffset is the page's offset from the Global Buddy
	// Base-address Register in buddy-page units.
	BuddyPageOffset uint32
}

// Pack encodes the PTE extension into its 24-bit representation.
func (p PTE) Pack() uint32 {
	v := uint32(p.BuddyPageOffset) & 0xFFFFF // 20 bits of offset
	v |= uint32(p.Target) << 20              // 3 bits of ratio
	if p.Compressed {
		v |= 1 << 23
	}
	return v
}

// UnpackPTE decodes a 24-bit PTE extension.
func UnpackPTE(v uint32) PTE {
	return PTE{
		Compressed:      v&(1<<23) != 0,
		Target:          TargetRatio(v >> 20 & 0x7),
		BuddyPageOffset: v & 0xFFFFF,
	}
}
