package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"buddy/internal/compress"
)

// TestFailBlocksDataPath pins the failure model: after Fail, every
// data-path operation — entry I/O, batch spans, byte-addressed I/O and
// Malloc — fails with an error wrapping ErrDeviceFailed, and nothing is
// accounted for the refused operations.
func TestFailBlocksDataPath(t *testing.T) {
	d := NewDevice(Config{DeviceBytes: 1 << 20})
	a, err := d.Malloc("x", 64*EntryBytes, Target2x)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4*EntryBytes)
	fillPattern(data, 7)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if d.Failed() {
		t.Fatal("fresh device reports failed")
	}
	d.Fail()
	if !d.Failed() {
		t.Fatal("Fail did not mark the device")
	}
	before := d.Traffic()
	entry := make([]byte, EntryBytes)
	checks := []struct {
		name string
		err  error
	}{
		{"WriteEntry", a.WriteEntry(0, entry)},
		{"ReadEntry", a.ReadEntry(0, entry)},
		{"WriteEntries", a.WriteEntries(0, data)},
		{"ReadEntries", a.ReadEntries(0, data)},
	}
	for _, c := range checks {
		if !errors.Is(c.err, ErrDeviceFailed) {
			t.Errorf("%s on failed device: %v, want ErrDeviceFailed", c.name, c.err)
		}
	}
	if _, err := a.WriteAt(data, 0); !errors.Is(err, ErrDeviceFailed) {
		t.Errorf("WriteAt on failed device: %v", err)
	}
	if _, err := a.ReadAt(data, 0); !errors.Is(err, ErrDeviceFailed) {
		t.Errorf("ReadAt on failed device: %v", err)
	}
	if _, err := d.Malloc("y", EntryBytes, Target1x); !errors.Is(err, ErrDeviceFailed) {
		t.Errorf("Malloc on failed device: %v", err)
	}
	if after := d.Traffic(); after != before {
		t.Errorf("refused operations were accounted: before %+v after %+v", before, after)
	}
}

// TestRecoverRebuildsFromBuddy pins the recovery model: Recover streams
// every written entry's stored bytes back over the buddy link, re-stores
// the device-resident sectors, reopens the data path, and loses nothing.
func TestRecoverRebuildsFromBuddy(t *testing.T) {
	d := NewDevice(Config{DeviceBytes: 1 << 20})
	const entries = 32
	a, err := d.Malloc("x", entries*EntryBytes, Target2x)
	if err != nil {
		t.Fatal(err)
	}
	// Leave a tail of never-written entries: they need no rebuild.
	const written = 20
	want := make([]byte, written*EntryBytes)
	fillPattern(want, 3)
	if _, err := a.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	d.Fail()
	d.ResetTraffic()
	n, rebuilt, err := d.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != written {
		t.Errorf("rebuilt %d entries, want %d", n, written)
	}
	if rebuilt <= 0 {
		t.Errorf("rebuilt bytes = %d, want > 0", rebuilt)
	}
	tr := d.Traffic()
	if tr.BuddyReadBytes != uint64(rebuilt) {
		t.Errorf("buddy link read %d bytes, want the rebuilt footprint %d", tr.BuddyReadBytes, rebuilt)
	}
	if tr.DeviceWriteBytes == 0 {
		t.Error("rebuild re-stored nothing device-side")
	}
	if d.Failed() {
		t.Fatal("device still failed after Recover")
	}
	got := make([]byte, len(want))
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data lost across fail/recover")
	}
	// Recovering a healthy device is a programming error.
	if _, _, err := d.Recover(); err == nil {
		t.Fatal("Recover on a healthy device succeeded")
	}
}

// TestExportImportStreamHandoff pins the no-decode migration primitive:
// entries exported from one device import verbatim into a codec-matched
// allocation on another, data survives, never-written entries are skipped,
// and both devices account identical MigrationBytes.
func TestExportImportStreamHandoff(t *testing.T) {
	src := NewDevice(Config{DeviceBytes: 1 << 20})
	dst := NewDevice(Config{DeviceBytes: 1 << 20})
	if !src.SameCodecAs(dst) {
		t.Fatal("identically configured devices disagree on codec")
	}
	const entries = 16
	sa, err := src.Malloc("m", entries*EntryBytes, Target2x)
	if err != nil {
		t.Fatal(err)
	}
	da, err := dst.Malloc("m", entries*EntryBytes, Target2x)
	if err != nil {
		t.Fatal(err)
	}
	const written = 10
	want := make([]byte, written*EntryBytes)
	fillPattern(want, 9)
	if _, err := sa.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	src.ResetTraffic()
	dst.ResetTraffic()
	buf := make([]byte, 0, MaxStreamBytes)
	moved := 0
	for i := 0; i < entries; i++ {
		stream, sectors, ok, err := sa.ExportEntry(i, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if i < written {
				t.Fatalf("entry %d written but exported as empty", i)
			}
			continue
		}
		if err := da.ImportEntry(i, stream, sectors); err != nil {
			t.Fatal(err)
		}
		moved++
	}
	if moved != written {
		t.Fatalf("moved %d entries, want %d", moved, written)
	}
	st, dt := src.Traffic(), dst.Traffic()
	if st.MigrationBytes == 0 || st.MigrationBytes != dt.MigrationBytes {
		t.Errorf("MigrationBytes src=%d dst=%d, want equal and nonzero",
			st.MigrationBytes, dt.MigrationBytes)
	}
	// Export reads; import writes. Entry-level access counters stay
	// untouched — migration is not an access.
	if st.Reads != 0 || st.Writes != 0 || dt.Reads != 0 || dt.Writes != 0 {
		t.Errorf("migration bumped access counters: src %+v dst %+v", st, dt)
	}
	got := make([]byte, len(want))
	if _, err := da.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stream handoff corrupted data")
	}
}

// TestImportEntryValidation covers the import guards: sector range, empty
// streams, index range, freed allocations and failed devices.
func TestImportEntryValidation(t *testing.T) {
	d := NewDevice(Config{DeviceBytes: 1 << 20})
	a, err := d.Malloc("v", 4*EntryBytes, Target2x)
	if err != nil {
		t.Fatal(err)
	}
	stream := []byte{1, 2, 3}
	if err := a.ImportEntry(0, stream, compress.SectorsPerEntry+1); err == nil ||
		!strings.Contains(err.Error(), "sector count") {
		t.Errorf("oversized sector count: %v", err)
	}
	if err := a.ImportEntry(0, nil, 1); err == nil {
		t.Error("empty stream import succeeded")
	}
	if err := a.ImportEntry(99, stream, 1); err == nil {
		t.Error("out-of-range import succeeded")
	}
	if _, _, _, err := a.ExportEntry(-1, nil); err == nil {
		t.Error("out-of-range export succeeded")
	}
	d.Fail()
	if err := a.ImportEntry(0, stream, 1); !errors.Is(err, ErrDeviceFailed) {
		t.Errorf("import into failed device: %v", err)
	}
	// Export still works on a failed device: it reads the carve-out
	// mirror's surviving copy.
	if _, _, _, err := a.ExportEntry(0, nil); err != nil {
		t.Errorf("export off failed device: %v", err)
	}
	if _, _, err := d.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.ImportEntry(0, stream, 1); !errors.Is(err, ErrFreed) {
		t.Errorf("import into freed allocation: %v", err)
	}
	if _, _, _, err := a.ExportEntry(0, nil); !errors.Is(err, ErrFreed) {
		t.Errorf("export of freed allocation: %v", err)
	}
}
