package core

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"buddy/internal/gen"
)

// withWideGOMAXPROCS forces a multi-worker span pool on single-CPU test
// machines: devices built inside f see GOMAXPROCS(4) and therefore spawn
// background span workers.
func withWideGOMAXPROCS(t *testing.T, f func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	f()
}

// TestSpanPoolParallelRoundTrip drives the persistent span-worker pool with
// real background workers: spans large enough to be partitioned across the
// pool must round-trip exactly, concurrently from several goroutines.
func TestSpanPoolParallelRoundTrip(t *testing.T) {
	withWideGOMAXPROCS(t, func() {
		d := NewDevice(Config{DeviceBytes: 64 << 20})
		if d.span.chunks == nil {
			t.Fatal("span pool spawned no workers at GOMAXPROCS 4")
		}
		const span = 8*bulkGrainEntries + 5
		const writers = 4
		a, err := d.Malloc("wide", int64(writers*span*EntryBytes), Target2x)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				data := make([]byte, span*EntryBytes)
				gen.SparseFP16{ZeroFrac: 0.5}.Fill(data, gen.NewRNG(uint64(w+1), 3))
				for iter := 0; iter < 3; iter++ {
					if err := a.WriteEntries(w*span, data); err != nil {
						t.Error(err)
						return
					}
					got := make([]byte, len(data))
					if err := a.ReadEntries(w*span, got); err != nil {
						t.Error(err)
						return
					}
					if !bytes.Equal(got, data) {
						t.Errorf("writer %d iter %d: span corrupted", w, iter)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDeviceCloseRetiresSpanWorkers pins the shutdown ordering: Close stops
// the background workers (in-flight spans finish first), later batch I/O
// still works — it just runs inline — and Close is idempotent.
func TestDeviceCloseRetiresSpanWorkers(t *testing.T) {
	withWideGOMAXPROCS(t, func() {
		d := NewDevice(Config{DeviceBytes: 16 << 20})
		a, err := d.Malloc("close", int64(4*bulkGrainEntries*EntryBytes), Target1x)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 4*bulkGrainEntries*EntryBytes)
		gen.Ramp{Start: 1, Step: 5}.Fill(data, gen.NewRNG(8, 1))
		if err := a.WriteEntries(0, data); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err) // idempotent
		}
		// The device stays fully usable after Close; spans run inline.
		got := make([]byte, len(data))
		if err := a.ReadEntries(0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("post-Close read-back mismatch")
		}
		if err := a.WriteEntries(0, data[:bulkGrainEntries*EntryBytes]); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSpanPoolErrorPropagation corrupts one stored stream inside a large
// span and checks the first error a partitioned batch read produces comes
// back through the pool's atomic first-error slot.
func TestSpanPoolErrorPropagation(t *testing.T) {
	withWideGOMAXPROCS(t, func() {
		d := NewDevice(Config{DeviceBytes: 64 << 20})
		const span = 6 * bulkGrainEntries
		a, err := d.Malloc("err", int64(span*EntryBytes), Target1x)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, span*EntryBytes)
		gen.Random{}.Fill(data, gen.NewRNG(5, 2))
		if err := a.WriteEntries(0, data); err != nil {
			t.Fatal(err)
		}
		// Truncate one stored stream mid-span.
		g := a.reg.firstEntry + 3*bulkGrainEntries
		d.mu.Lock()
		d.streams[g] = d.streams[g][:len(d.streams[g])/2]
		d.mu.Unlock()
		got := make([]byte, len(data))
		if err := a.ReadEntries(0, got); err == nil {
			t.Fatal("want decode error from partitioned batch read")
		}
	})
}
