package core

import (
	"testing"

	"buddy/internal/compress"
	"buddy/internal/gen"
	"buddy/internal/memory"
)

// buildSnapshot synthesizes a snapshot from (name, entries, generator)
// triples with a fixed seed.
func buildSnapshot(t *testing.T, idx int, parts []struct {
	name    string
	entries int
	g       gen.Generator
}) *memory.Snapshot {
	t.Helper()
	s := &memory.Snapshot{Index: idx}
	for i, p := range parts {
		a := memory.NewAllocation(p.name, p.entries*128)
		p.g.Fill(a.Data, gen.NewRNG(uint64(idx*31+i), 3))
		s.Allocations = append(s.Allocations, a)
	}
	return s
}

func TestProfilePerAllocationTargets(t *testing.T) {
	parts := []struct {
		name    string
		entries int
		g       gen.Generator
	}{
		{"zeros", 512, gen.Zeros{}},
		{"compressible", 512, gen.Noisy32{NoiseBits: 4, SmoothStep: 3}}, // 1 sector
		{"half", 512, gen.Noisy64{NoiseBits: 8, HiStep: 1}},             // 2 sectors
		{"random", 512, gen.Random{}},                                   // 4 sectors
	}
	snaps := []*memory.Snapshot{buildSnapshot(t, 0, parts), buildSnapshot(t, 1, parts)}
	res := Profile(snaps, compress.NewBPC(), FinalDesign())
	targets := res.Targets()
	if targets["zeros"] != Target16x {
		t.Errorf("zeros target = %s, want 16x", targets["zeros"])
	}
	if targets["compressible"] != Target4x {
		t.Errorf("compressible target = %s, want 4x", targets["compressible"])
	}
	if targets["half"] != Target2x {
		t.Errorf("half target = %s, want 2x", targets["half"])
	}
	if targets["random"] != Target1x {
		t.Errorf("random target = %s, want 1x", targets["random"])
	}
	if res.BuddyAccessFraction > 0.01 {
		t.Errorf("clean class assignment should have ~0 overflow, got %.3f", res.BuddyAccessFraction)
	}
}

func TestProfileNaiveSingleTarget(t *testing.T) {
	parts := []struct {
		name    string
		entries int
		g       gen.Generator
	}{
		{"a", 512, gen.Noisy64{NoiseBits: 8, HiStep: 1}}, // 2 sectors
		{"b", 512, gen.Random{}},                         // 4 sectors
	}
	snaps := []*memory.Snapshot{buildSnapshot(t, 0, parts)}
	res := Profile(snaps, compress.NewBPC(), Naive())
	targets := res.Targets()
	if targets["a"] != targets["b"] {
		t.Errorf("naive mode must choose one program-wide target, got %s vs %s", targets["a"], targets["b"])
	}
	// Program-average compressed size is (64+128)/2 = 96 B -> ratio 1.33:
	// naive rounds the overall compressibility down to an allowed target,
	// and the 4-sector half of the program overflows under it.
	if targets["a"] != Target4by3x {
		t.Errorf("naive target = %s, want 1.33x", targets["a"])
	}
	if res.BuddyAccessFraction < 0.4 {
		t.Errorf("naive average-based target should overflow ~50%%, got %.2f", res.BuddyAccessFraction)
	}
}

func TestProfileThresholdControlsAggressiveness(t *testing.T) {
	// 60% of entries compress to 1 sector, 40% are random: threshold below
	// 0.4 forbids 4x; threshold 0.45 allows it.
	mix := gen.Blend{A: gen.Noisy32{NoiseBits: 4, SmoothStep: 1}, B: gen.Random{}, PA: 0.6}
	parts := []struct {
		name    string
		entries int
		g       gen.Generator
	}{{"mix", 4096, mix}}
	snaps := []*memory.Snapshot{buildSnapshot(t, 0, parts)}

	lo := FinalDesign()
	lo.Threshold = 0.10
	resLo := Profile(snaps, compress.NewBPC(), lo)
	hi := FinalDesign()
	hi.Threshold = 0.45
	resHi := Profile(snaps, compress.NewBPC(), hi)
	if resLo.CompressionRatio >= resHi.CompressionRatio {
		t.Errorf("higher threshold should compress more: %.2f vs %.2f",
			resLo.CompressionRatio, resHi.CompressionRatio)
	}
	if resLo.BuddyAccessFraction > resHi.BuddyAccessFraction {
		t.Errorf("higher threshold should not reduce buddy accesses: %.3f vs %.3f",
			resLo.BuddyAccessFraction, resHi.BuddyAccessFraction)
	}
	if resHi.BuddyAccessFraction > 0.45 {
		t.Errorf("overflow %.3f exceeds the 45%% threshold", resHi.BuddyAccessFraction)
	}
}

func TestProfileZeroPageRequiresPersistence(t *testing.T) {
	// An allocation that is zero in snapshot 0 but dense in snapshot 1 must
	// NOT get the 16x target (§3.4: "remain so for the entirety of the run").
	s0 := buildSnapshot(t, 0, []struct {
		name    string
		entries int
		g       gen.Generator
	}{{"flaky", 512, gen.Zeros{}}})
	s1 := buildSnapshot(t, 1, []struct {
		name    string
		entries int
		g       gen.Generator
	}{{"flaky", 512, gen.Noisy64{NoiseBits: 8, HiStep: 1}}})
	res := Profile([]*memory.Snapshot{s0, s1}, compress.NewBPC(), FinalDesign())
	if res.Targets()["flaky"] == Target16x {
		t.Error("transiently-zero allocation must not be marked 16x")
	}
}

func TestProfileCarveoutCap(t *testing.T) {
	// All-zero program: unconstrained targets would be 16x everywhere,
	// blowing past the 4x carve-out limit; the profiler must demote.
	parts := []struct {
		name    string
		entries int
		g       gen.Generator
	}{
		{"z1", 1024, gen.Zeros{}},
		{"z2", 1024, gen.Zeros{}},
		{"z3", 1024, gen.Zeros{}},
	}
	snaps := []*memory.Snapshot{buildSnapshot(t, 0, parts)}
	res := Profile(snaps, compress.NewBPC(), FinalDesign())
	if res.CompressionRatio > 4.0+1e-9 {
		t.Errorf("aggregate ratio %.2f exceeds the 4x carve-out cap", res.CompressionRatio)
	}
}

func TestProfileDefaultsApplied(t *testing.T) {
	snaps := []*memory.Snapshot{buildSnapshot(t, 0, []struct {
		name    string
		entries int
		g       gen.Generator
	}{{"x", 256, gen.Zeros{}}})}
	res := Profile(snaps, compress.NewBPC(), ProfileOptions{PerAllocation: true, ZeroPage: true})
	if res.CompressionRatio <= 0 {
		t.Error("zero-value options should be defaulted, not break the pass")
	}
}

func TestMeasureSnapshotFixedTargets(t *testing.T) {
	parts := []struct {
		name    string
		entries int
		g       gen.Generator
	}{{"w", 1024, gen.Blend{A: gen.Zeros{}, B: gen.Random{}, PA: 0.5}}}
	s := buildSnapshot(t, 0, parts)
	ratio, buddy := MeasureSnapshot(s, compress.NewBPC(), map[string]TargetRatio{"w": Target2x})
	if ratio < 1.99 || ratio > 2.01 {
		t.Errorf("fixed 2x target should report 2x device ratio, got %.2f", ratio)
	}
	if buddy < 0.4 || buddy > 0.6 {
		t.Errorf("half-random data under 2x should overflow ~50%%, got %.2f", buddy)
	}
	// Unknown allocations default to 1x.
	ratio2, buddy2 := MeasureSnapshot(s, compress.NewBPC(), nil)
	if ratio2 != 1 || buddy2 != 0 {
		t.Errorf("default 1x should give ratio 1 and no overflow, got %.2f/%.2f", ratio2, buddy2)
	}
}

func TestBestAchievableCapped(t *testing.T) {
	parts := []struct {
		name    string
		entries int
		g       gen.Generator
	}{{"z", 2048, gen.Zeros{}}}
	snaps := []*memory.Snapshot{buildSnapshot(t, 0, parts)}
	res := Profile(snaps, compress.NewBPC(), FinalDesign())
	if res.BestAchievable > 4.0+1e-9 {
		t.Errorf("best achievable %.2f must respect the carve-out cap", res.BestAchievable)
	}
}

func TestProfileSkipsEmptyInstances(t *testing.T) {
	// Regression: an allocation that is present but empty in one profiling
	// snapshot carries no evidence about the data and must not drag
	// MinZeroFrac to 0 and veto the 16x zero-page target (the pre-index
	// code skipped empty instances via a NaN comparison).
	zeros := memory.NewAllocation("z", 512*128)
	ballast := memory.NewAllocation("r", 2048*128) // keeps the aggregate under the 4x cap
	gen.Random{}.Fill(ballast.Data, gen.NewRNG(9, 3))
	full := &memory.Snapshot{Index: 1, Allocations: []*memory.Allocation{zeros, ballast}}
	empty := &memory.Snapshot{Index: 0, Allocations: []*memory.Allocation{{Name: "z"}, ballast}}
	for _, order := range [][]*memory.Snapshot{{empty, full}, {full, empty}} {
		res := Profile(order, compress.NewBPC(), FinalDesign())
		if got := res.Targets()["z"]; got != Target16x {
			t.Errorf("mostly-zero allocation with one empty dump: target %s, want 16x", got)
		}
		// Entries must come from the non-empty instance regardless of
		// snapshot order, so the allocation keeps its weight in the
		// aggregate ratio.
		zp := res.Allocations[0]
		if zp.Name != "z" {
			zp = res.Allocations[1]
		}
		if zp.Entries != 512 {
			t.Errorf("entries = %d, want 512", zp.Entries)
		}
		want := float64((512+2048)*128) / float64(512*8+2048*128)
		if res.CompressionRatio < want-0.01 || res.CompressionRatio > want+0.01 {
			t.Errorf("ratio = %.3f, want %.3f regardless of snapshot order", res.CompressionRatio, want)
		}
	}
}
