package core

import (
	"bytes"
	"sync"
	"testing"

	"buddy/internal/gen"
)

func newBulkDevice(t testing.TB, deviceBytes int64) *Device {
	t.Helper()
	return NewDevice(Config{DeviceBytes: deviceBytes})
}

// TestWriteEntriesReadEntriesRoundTrip pushes a multi-grain span through the
// batch primitives and reads it back both in one batch and entry by entry.
func TestWriteEntriesReadEntriesRoundTrip(t *testing.T) {
	d := newBulkDevice(t, 64<<20)
	const entries = 3*bulkGrainEntries + 17 // force parallel span + remainder
	a, err := d.Malloc("bulk", entries*EntryBytes, Target2x)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, entries*EntryBytes)
	gen.Noisy32{NoiseBits: 9, SmoothStep: 3}.Fill(data, gen.NewRNG(21, 1))
	if err := a.WriteEntries(0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := a.ReadEntries(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("batch round-trip mismatch")
	}
	single := make([]byte, EntryBytes)
	for i := 0; i < entries; i += 37 {
		if err := a.ReadEntry(i, single); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(single, data[i*EntryBytes:(i+1)*EntryBytes]) {
			t.Fatalf("entry %d differs from batch write", i)
		}
	}
}

// TestBatchOffsetAndErrors covers interior spans and the argument contract.
func TestBatchOffsetAndErrors(t *testing.T) {
	d := newBulkDevice(t, 16<<20)
	a, err := d.Malloc("bulk", 256*EntryBytes, Target1x)
	if err != nil {
		t.Fatal(err)
	}
	span := make([]byte, 40*EntryBytes)
	gen.Ramp{Start: 5, Step: 9}.Fill(span, gen.NewRNG(4, 1))
	if err := a.WriteEntries(100, span); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(span))
	if err := a.ReadEntries(100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, span) {
		t.Fatal("interior span mismatch")
	}
	// Entries outside the span stay zero (never written).
	if err := a.ReadEntries(0, got[:EntryBytes]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:EntryBytes], make([]byte, EntryBytes)) {
		t.Fatal("untouched entry not zero")
	}

	if err := a.WriteEntries(0, make([]byte, EntryBytes+1)); err == nil {
		t.Fatal("want error for non-multiple length")
	}
	if err := a.WriteEntries(250, make([]byte, 10*EntryBytes)); err == nil {
		t.Fatal("want error for range past EntryCount")
	}
	if err := a.ReadEntries(-1, make([]byte, EntryBytes)); err == nil {
		t.Fatal("want error for negative start")
	}
	if err := a.WriteEntries(0, nil); err != nil {
		t.Fatalf("empty batch should be a no-op, got %v", err)
	}
}

// TestBulkParallelConsistency hammers the parallel bulk path from many
// goroutines — batch writers on disjoint spans, byte-addressed writers on a
// shared span, and readers throughout — and verifies every disjoint span
// afterwards. Run with -race this is the data-race proof for the fan-out.
func TestBulkParallelConsistency(t *testing.T) {
	d := newBulkDevice(t, 64<<20)
	const (
		writers = 4
		span    = 2*bulkGrainEntries + 11
	)
	a, err := d.Malloc("race", int64(writers*span*EntryBytes), Target2x)
	if err != nil {
		t.Fatal(err)
	}
	patterns := make([][]byte, writers)
	for w := range patterns {
		patterns[w] = make([]byte, span*EntryBytes)
		gen.Noisy64{NoiseBits: 10, HiStep: 1}.Fill(patterns[w], gen.NewRNG(uint64(w+1), 7))
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				if err := a.WriteEntries(w*span, patterns[w]); err != nil {
					t.Error(err)
					return
				}
				got := make([]byte, span*EntryBytes)
				if err := a.ReadEntries(w*span, got); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, patterns[w]) {
					t.Errorf("writer %d iter %d: span corrupted", w, iter)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 1000)
			off := int64(w*span*EntryBytes) + 13
			for iter := 0; iter < 5; iter++ {
				if _, err := a.ReadAt(buf, off); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < writers; w++ {
		got := make([]byte, span*EntryBytes)
		if err := a.ReadEntries(w*span, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, patterns[w]) {
			t.Fatalf("final state of span %d corrupted", w)
		}
	}
}

// TestEntryPathSteadyStateZeroAlloc proves the acceptance criterion: after
// first touch, WriteEntry and ReadEntry allocate nothing — the codec runs in
// pooled scratch and the stream table reuses per-entry buffers.
func TestEntryPathSteadyStateZeroAlloc(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	d := newBulkDevice(t, 16<<20)
	a, err := d.Malloc("steady", 64*EntryBytes, Target2x)
	if err != nil {
		t.Fatal(err)
	}
	entry := make([]byte, EntryBytes)
	gen.Noisy64{NoiseBits: 8, HiStep: 1}.Fill(entry, gen.NewRNG(2, 1))
	dst := make([]byte, EntryBytes)
	// First touch allocates the retained stream buffers; not measured.
	if err := a.WriteEntry(0, entry); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := a.WriteEntry(0, entry); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("steady-state WriteEntry allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := a.ReadEntry(0, dst); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("steady-state ReadEntry allocates %.1f/op, want 0", n)
	}
	if !bytes.Equal(dst, entry) {
		t.Fatal("round-trip mismatch")
	}
}

// TestReadEntryDecodeErrorPropagates corrupts a stored stream in place and
// checks the decode error surfaces through ReadEntry without an
// intermediate copy path swallowing it.
func TestReadEntryDecodeErrorPropagates(t *testing.T) {
	d := newBulkDevice(t, 16<<20)
	a, err := d.Malloc("corrupt", 4*EntryBytes, Target1x)
	if err != nil {
		t.Fatal(err)
	}
	entry := make([]byte, EntryBytes)
	gen.Random{}.Fill(entry, gen.NewRNG(9, 1))
	if err := a.WriteEntry(1, entry); err != nil {
		t.Fatal(err)
	}
	// Reach into the side table and truncate the stored stream.
	g := a.reg.firstEntry + 1
	d.mu.Lock()
	d.streams[g] = d.streams[g][:len(d.streams[g])/2]
	d.mu.Unlock()
	dst := make([]byte, EntryBytes)
	if err := a.ReadEntry(1, dst); err == nil {
		t.Fatal("want decode error for truncated stored stream")
	}
}
