package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"buddy/internal/compress"
	"buddy/internal/nvlink"
)

// EntryBytes is the compression granularity: one 128 B memory-entry.
const EntryBytes = compress.EntryBytes

// MaxStreamBytes is the largest framed compressed stream one entry can
// produce — the scratch capacity entry-stream consumers (ExportEntry
// callers) size their buffers to.
const MaxStreamBytes = compress.MaxStreamBytes

// Config parameterizes a Buddy Compression device.
type Config struct {
	// Codec is the memory compression algorithm (default BPC, §2.4). It
	// must be safe for concurrent use: the bulk data path fans it out
	// across a worker pool.
	Codec compress.Codec
	// DeviceBytes is the GPU device memory capacity available for
	// compressed allocations.
	DeviceBytes int64
	// CarveoutFactor sizes the buddy carve-out relative to device memory;
	// 3x supports a 4x maximum target ratio (§3.2).
	CarveoutFactor int
	// Overflow is the storage tier for sectors that spill past the target
	// ratio. Nil selects the paper's design: an NVLink buddy carve-out of
	// DeviceBytes*CarveoutFactor.
	Overflow Backend
	// Link configures the interconnect of the default carve-out tier; the
	// zero value is NVLink2 (150 GB/s full-duplex). Ignored when Overflow
	// is set.
	Link nvlink.Config
	// MetadataCacheBytes is the total metadata cache capacity (§3.5:
	// 4 KB per DRAM-channel slice).
	MetadataCacheBytes int
	// MetadataCacheSlices is the number of slices (§3.2: 8).
	MetadataCacheSlices int
	// MetadataCacheWays is the associativity (§3.2: 4).
	MetadataCacheWays int
	// ReprofileHorizon is the access horizon the device uses when judging
	// whether a checkpoint-time ReprofilePlan pays for itself (§3.4
	// extension): the migration cost must be repaid by the buddy-access
	// reduction within this many memory accesses.
	ReprofileHorizon int64
}

// DefaultConfig returns the paper's final design parameters (§3.5) with a
// 12 GB device (Titan Xp class, as in the DL case study).
func DefaultConfig() Config {
	return Config{
		Codec:               compress.NewBPC(),
		DeviceBytes:         12 << 30,
		CarveoutFactor:      3,
		Link:                nvlink.DefaultConfig(),
		MetadataCacheBytes:  64 << 10,
		MetadataCacheSlices: 8,
		MetadataCacheWays:   4,
		ReprofileHorizon:    1 << 30,
	}
}

// Traffic holds a snapshot of a Device's byte-level traffic counters.
type Traffic struct {
	// DeviceReadBytes and DeviceWriteBytes count device-memory data traffic.
	DeviceReadBytes  uint64
	DeviceWriteBytes uint64
	// BuddyReadBytes and BuddyWriteBytes count interconnect traffic to the
	// overflow tier.
	BuddyReadBytes  uint64
	BuddyWriteBytes uint64
	// MetadataFillBytes counts device reads caused by metadata cache misses.
	MetadataFillBytes uint64
	// MigrationBytes counts stored compressed bytes re-packed between
	// layouts by ApplyReprofile/Retarget (the §3.4 migration cost; the
	// device- and buddy-side transfers of each move are also folded into
	// the byte counters above).
	MigrationBytes uint64
	// Reads and Writes count entry-level operations; BuddyAccesses counts
	// operations that touched the overflow tier (the numerator of Fig. 7/9).
	Reads         uint64
	Writes        uint64
	BuddyAccesses uint64
}

// BuddyAccessFraction returns the fraction of entry accesses that touched
// the overflow tier.
func (t Traffic) BuddyAccessFraction() float64 {
	total := t.Reads + t.Writes
	if total == 0 {
		return 0
	}
	return float64(t.BuddyAccesses) / float64(total)
}

// trafficCounters is the device's live (atomic) form of Traffic.
type trafficCounters struct {
	deviceReadBytes, deviceWriteBytes atomic.Uint64
	buddyReadBytes, buddyWriteBytes   atomic.Uint64
	metadataFillBytes                 atomic.Uint64
	migrationBytes                    atomic.Uint64
	reads, writes, buddyAccesses      atomic.Uint64
}

func (t *trafficCounters) snapshot() Traffic {
	return Traffic{
		DeviceReadBytes:   t.deviceReadBytes.Load(),
		DeviceWriteBytes:  t.deviceWriteBytes.Load(),
		BuddyReadBytes:    t.buddyReadBytes.Load(),
		BuddyWriteBytes:   t.buddyWriteBytes.Load(),
		MetadataFillBytes: t.metadataFillBytes.Load(),
		MigrationBytes:    t.migrationBytes.Load(),
		Reads:             t.reads.Load(),
		Writes:            t.writes.Load(),
		BuddyAccesses:     t.buddyAccesses.Load(),
	}
}

func (t *trafficCounters) reset() {
	t.deviceReadBytes.Store(0)
	t.deviceWriteBytes.Store(0)
	t.buddyReadBytes.Store(0)
	t.buddyWriteBytes.Store(0)
	t.metadataFillBytes.Store(0)
	t.migrationBytes.Store(0)
	t.reads.Store(0)
	t.writes.Store(0)
	t.buddyAccesses.Store(0)
}

// entryShards is the number of mutexes striping the entry space. Entries
// hash to shards by metadata byte (two entries per byte), so the
// read-modify-write on a shared metadata byte is always serialized.
const entryShards = 64

// Device is a Buddy Compression GPU memory: compressed allocations split
// between a primary device-slab tier and an overflow tier (the NVLink buddy
// carve-out in the paper's design) addressed from a global base register
// (GBBR). Compressed streams are bit-exact; placement and traffic are
// modeled at the paper's sector granularity. The software keeps the
// per-entry compressed streams in a side table because the model's 1-bit
// stream framing would otherwise straddle slot boundaries that hardware
// metadata absorbs.
//
// A Device is safe for concurrent use: the allocation table is guarded by a
// reader-writer lock, per-entry state by sharded mutexes, and traffic by
// atomic counters. Individual entry operations are atomic; a multi-entry
// ReadAt/WriteAt is not one atomic unit against concurrent writers to the
// same range. Control-plane operations (Free, Retarget, ApplyReprofile)
// serialize on migMu; lock order is migMu -> mu -> entry shards.
type Device struct {
	cfg      Config
	primary  Backend
	overflow Backend
	slab     *SlabBackend // primary, concretely typed for span accounting
	mcache   *MetadataCache
	span     *spanPool // persistent span-worker pool, sized at NewDevice

	migMu sync.Mutex // serializes Free/Retarget/ApplyReprofile

	mu         sync.RWMutex // guards the allocation table below
	allocs     []*Allocation
	deviceOff  int64 // next free device-slab offset
	buddyOff   int64 // next free overflow offset
	totalEntry int
	streams    [][]byte // side table of compressed streams, by global entry
	meta       *MetadataStore
	holes      []region // retired regions available for reuse

	shards      [entryShards]sync.Mutex
	gbbr        uint64 // global buddy base address (modeled)
	traffic     trafficCounters
	metaEnabled atomic.Bool
	failed      atomic.Bool // device tier killed by Fail, not yet Recovered
}

// ErrOutOfMemory is returned when an allocation does not fit a tier's
// capacity.
var ErrOutOfMemory = errors.New("core: out of memory")

// NewDevice constructs a device from cfg, applying DefaultConfig values for
// zero fields.
func NewDevice(cfg Config) *Device {
	def := DefaultConfig()
	if cfg.Codec == nil {
		cfg.Codec = def.Codec
	}
	if cfg.DeviceBytes == 0 {
		cfg.DeviceBytes = def.DeviceBytes
	}
	if cfg.CarveoutFactor == 0 {
		cfg.CarveoutFactor = def.CarveoutFactor
	}
	if cfg.Link == (nvlink.Config{}) {
		// Untouched link config selects the paper's NVLink2 point, 700-cycle
		// latency included. A partially specified config is passed through:
		// nvlink.New defaults the rate fields individually and honors an
		// explicit zero latency (a meaningful model point).
		cfg.Link = def.Link
	}
	if cfg.MetadataCacheBytes == 0 {
		cfg.MetadataCacheBytes = def.MetadataCacheBytes
	}
	if cfg.MetadataCacheSlices == 0 {
		cfg.MetadataCacheSlices = def.MetadataCacheSlices
	}
	if cfg.MetadataCacheWays == 0 {
		cfg.MetadataCacheWays = def.MetadataCacheWays
	}
	if cfg.ReprofileHorizon == 0 {
		cfg.ReprofileHorizon = def.ReprofileHorizon
	}
	overflow := cfg.Overflow
	if overflow == nil {
		overflow = NewCarveoutBackend(cfg.DeviceBytes*int64(cfg.CarveoutFactor), cfg.Link)
	}
	slab := NewSlabBackend(cfg.DeviceBytes)
	d := &Device{
		cfg:      cfg,
		primary:  slab,
		slab:     slab,
		overflow: overflow,
		span:     newSpanPool(runtime.GOMAXPROCS(0)),
		meta:     NewMetadataStore(0),
		mcache:   NewMetadataCache(cfg.MetadataCacheBytes, cfg.MetadataCacheSlices, cfg.MetadataCacheWays),
		gbbr:     0x4000_0000_0000, // arbitrary carve-out base
	}
	d.metaEnabled.Store(true)
	if d.span.chunks != nil {
		// Backstop for devices discarded without Close: retire the span
		// workers when the device is collected, so a test or sweep that
		// churns devices does not accumulate parked goroutines.
		runtime.AddCleanup(d, func(sp *spanPool) { sp.close() }, d.span)
	}
	return d
}

// Close retires the device's persistent span-worker pool. The device and
// its allocations stay fully usable — batch spans simply run inline on
// their callers afterwards. Closing twice is a no-op; devices discarded
// without Close are cleaned up when garbage-collected.
func (d *Device) Close() error {
	d.span.close()
	return nil
}

// Allocation is one compressed cudaMalloc region on a device. It lives
// until Free/Close retires it; a live migration (Retarget, ApplyReprofile)
// may move it to a new layout while I/O continues.
type Allocation struct {
	dev *Device
	// Name identifies the allocation.
	Name string
	// EntryCount is the number of 128 B memory-entries.
	EntryCount int

	size      int64 // requested byte size (EntryCount*128 minus padding)
	shardBase int   // immutable, even: keys the entry shard locks forever

	// Current committed layout. Read under dev.mu (any mode); written only
	// under dev.mu held exclusively (Malloc, migration commit).
	target TargetRatio
	reg    region // entry slots + device/buddy placement of the layout
	freed  bool   // set by Free; all later I/O fails with ErrFreed
	mig    *migration

	sectorCount []int // last committed compressed sector count per entry
}

// Size returns the allocation's requested byte size.
func (a *Allocation) Size() int64 { return a.size }

// Target returns the allocation's current target compression ratio. It can
// change over the allocation's lifetime through Retarget/ApplyReprofile.
func (a *Allocation) Target() TargetRatio {
	a.dev.mu.RLock()
	defer a.dev.mu.RUnlock()
	return a.target
}

// Freed reports whether the allocation has been released with Free/Close.
func (a *Allocation) Freed() bool {
	a.dev.mu.RLock()
	defer a.dev.mu.RUnlock()
	return a.freed
}

// Tiers returns the device's primary (device-slab) and overflow storage
// tiers for per-tier inspection.
func (d *Device) Tiers() (primary, overflow Backend) { return d.primary, d.overflow }

// Codec returns the device's memory compression codec.
func (d *Device) Codec() compress.Codec { return d.cfg.Codec }

// SameCodecAs reports whether two devices store interchangeable framed
// streams. Codecs are registry identities, so name equality is the framing
// contract; interface equality is deliberately not used (codec values need
// not be comparable).
func (d *Device) SameCodecAs(o *Device) bool {
	return d.cfg.Codec.Name() == o.cfg.Codec.Name()
}

// Carveout returns the overflow tier's capacity in bytes; negative means
// unbounded (e.g. the host unified-memory fallback).
func (d *Device) Carveout() int64 {
	return d.overflow.Capacity()
}

// DeviceUsed returns the device bytes reserved by live allocations.
func (d *Device) DeviceUsed() int64 { return d.primary.Used() }

// BuddyUsed returns the overflow bytes reserved by live allocations.
func (d *Device) BuddyUsed() int64 { return d.overflow.Used() }

// Traffic returns a snapshot of the accumulated traffic counters.
func (d *Device) Traffic() Traffic { return d.traffic.snapshot() }

// ResetTraffic clears traffic counters, per-tier counters and the metadata
// cache.
func (d *Device) ResetTraffic() {
	d.traffic.reset()
	d.mcache.Reset()
	d.primary.ResetTraffic()
	d.overflow.ResetTraffic()
}

// MetadataCacheHitRate exposes the metadata cache hit rate (Fig. 5b).
func (d *Device) MetadataCacheHitRate() float64 { return d.mcache.HitRate() }

// CompressionRatio returns the capacity compression the device currently
// achieves: original bytes of live allocations over their device
// reservation. This is the quantity Fig. 7 and Fig. 9 report.
func (d *Device) CompressionRatio() float64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var orig, dev int64
	for _, a := range d.allocs {
		orig += int64(a.EntryCount) * EntryBytes
		dev += int64(a.EntryCount) * int64(a.target.DeviceBytes())
	}
	if dev == 0 {
		return 1
	}
	return float64(orig) / float64(dev)
}

// Malloc reserves a compressed allocation of size bytes with the given
// target ratio. The device reservation is size/target; the remainder of
// each entry is reserved in the overflow tier (§3.2). Regions retired by
// Free are reused when a fitting hole exists, so a steady alloc/free cycle
// does not grow the entry table.
func (d *Device) Malloc(name string, size int64, target TargetRatio) (*Allocation, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: invalid allocation size %d", size)
	}
	if d.failed.Load() {
		return nil, d.errFailed()
	}
	entries := int((size + EntryBytes - 1) / EntryBytes)
	devBytes := int64(entries) * int64(target.DeviceBytes())
	buddyBytes := int64(entries) * int64(target.BuddySlotBytes())
	if err := d.primary.Reserve(devBytes); err != nil {
		return nil, err
	}
	if err := d.overflow.Reserve(buddyBytes); err != nil {
		d.primary.Release(devBytes)
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	r := d.grabRegion(regionSlots(entries), devBytes, buddyBytes)
	a := &Allocation{
		dev:         d,
		Name:        name,
		EntryCount:  entries,
		size:        size,
		shardBase:   r.firstEntry,
		target:      target,
		reg:         r,
		sectorCount: make([]int, entries),
	}
	d.allocs = append(d.allocs, a)
	return a, nil
}

func growMetadata(old *MetadataStore, n int) *MetadataStore {
	m := NewMetadataStore(n)
	copy(m.packed, old.packed)
	return m
}

// DeviceAddress returns the device byte address of entry i's first sector.
// Fixed for a given layout: compressibility changes never move data (§3.3);
// only an explicit Retarget/ApplyReprofile migration relocates the region.
func (a *Allocation) DeviceAddress(i int) uint64 {
	a.dev.mu.RLock()
	defer a.dev.mu.RUnlock()
	return uint64(a.reg.deviceOff) + uint64(i)*uint64(a.target.DeviceBytes())
}

// BuddyAddress returns the buddy-memory address (GBBR + offset) of entry
// i's overflow slot. Fixed for a given layout, like DeviceAddress.
func (a *Allocation) BuddyAddress(i int) uint64 {
	a.dev.mu.RLock()
	defer a.dev.mu.RUnlock()
	return a.dev.gbbr + uint64(a.reg.buddyOff) + uint64(i)*uint64(a.target.BuddySlotBytes())
}

// PTEFor returns the extended page-table entry for the allocation's pages.
func (a *Allocation) PTEFor() PTE {
	a.dev.mu.RLock()
	defer a.dev.mu.RUnlock()
	return PTE{Compressed: true, Target: a.target, BuddyPageOffset: uint32(a.reg.buddyOff >> 16)}
}

func (a *Allocation) checkIndex(i int) error {
	if i < 0 || i >= a.EntryCount {
		return fmt.Errorf("core: entry index %d out of range [0,%d)", i, a.EntryCount)
	}
	return nil
}

// shard returns the mutex striping entry i of the allocation. The key is
// derived from the immutable shardBase — not the current layout — so the
// same entry keeps the same lock across live migrations, which is what lets
// migration hand an entry from the old layout to the new one atomically.
// Regions start at even global indexes and span an even number of slots
// (regionSlots), so the two entries sharing a metadata byte always live in
// one allocation and, because shardBase is even, always hash to the same
// shard: the byte's read-modify-write stays serialized.
func (a *Allocation) shard(i int) *sync.Mutex {
	return &a.dev.shards[(a.shardBase+i)/2%entryShards]
}

// entryHome resolves which layout currently owns entry i: during a live
// migration, entries the migrator has already moved live in the new layout
// while the rest remain in the old one. The caller must hold dev.mu (any
// mode) and the entry's shard lock; the result is stable until both are
// released.
func (a *Allocation) entryHome(i int) (global int, t TargetRatio) {
	if m := a.mig; m != nil && m.moved[i] {
		return m.reg.firstEntry + i, m.target
	}
	return a.reg.firstEntry + i, a.target
}

func (a *Allocation) errFreed() error {
	return fmt.Errorf("core: allocation %s: %w", a.Name, ErrFreed)
}

// streamScratchPool recycles codec scratch buffers across entry operations.
// Each buffer holds one framed compressed stream; MaxStreamBytes capacity
// means the steady-state compress/decompress path never allocates.
var streamScratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, compress.MaxStreamBytes)
		return &b
	},
}

// WriteEntry compresses and stores a 128 B entry. Sectors beyond the target
// budget are written to the entry's fixed overflow slot; no other entry is
// disturbed regardless of compressibility changes.
//
//buddy:hotpath
func (a *Allocation) WriteEntry(i int, data []byte) error {
	scratch := streamScratchPool.Get().(*[]byte)
	err := a.writeEntry(i, data, scratch)
	streamScratchPool.Put(scratch)
	return err
}

// writeEntry is WriteEntry with a caller-held scratch buffer, so batch
// writers pay the pool round-trip once per span rather than per entry. The
// entry is encoded exactly once — the framed stream and the sector count
// both come out of the same AppendCompressed pass — and the encode runs
// outside every lock; the shard lock covers only the table update.
//
//buddy:hotpath
func (a *Allocation) writeEntry(i int, data []byte, scratch *[]byte) error {
	if err := a.checkIndex(i); err != nil {
		return err
	}
	if len(data) != EntryBytes {
		return fmt.Errorf("core: entry must be %d bytes, got %d", EntryBytes, len(data))
	}
	d := a.dev
	// All-zero entries short-circuit the codec: one 16-word probe replaces
	// the full encode, and the precomputed per-codec zero stream is
	// frame-identical to what AppendCompressed would produce. Activation-like
	// sparse traffic is dominated by this path.
	var stream []byte
	var bits int
	if compress.EntryAllZero(data) {
		stream, bits = compress.AppendZeroEntry((*scratch)[:0], d.cfg.Codec)
	} else {
		stream, bits = d.cfg.Codec.AppendCompressed((*scratch)[:0], data)
	}
	*scratch = stream[:0]
	sectors := compress.SectorsForBits(bits)

	d.mu.RLock()
	if a.freed {
		d.mu.RUnlock()
		return a.errFreed()
	}
	if d.failed.Load() {
		d.mu.RUnlock()
		return d.errFailed()
	}
	sh := a.shard(i)
	sh.Lock()
	// The entry's home (old or new layout, during a live migration) is
	// resolved under the shard lock, so the write lands in whichever layout
	// owns the entry at commit time. Copy into the entry's retained buffer
	// (reused across rewrites) rather than retaining the scratch: readers
	// snapshot under the same lock, so in-place reuse is safe and the
	// steady state allocates nothing.
	g, t := a.entryHome(i)
	d.streams[g] = append(d.streams[g][:0], stream...)
	d.meta.Set(g, sectors)
	a.sectorCount[i] = sectors
	sh.Unlock()
	d.accessMetadata(g)
	d.mu.RUnlock()

	d.traffic.writes.Add(1)
	dev, buddy := splitBytes(t, sectors)
	d.traffic.deviceWriteBytes.Add(uint64(dev))
	d.primary.Store(g, dev)
	if buddy > 0 {
		d.traffic.buddyWriteBytes.Add(uint64(buddy))
		d.traffic.buddyAccesses.Add(1)
		d.overflow.Store(g, buddy)
	}
	return nil
}

// ReadEntry fetches and decompresses entry i into dst (128 bytes).
//
//buddy:hotpath
func (a *Allocation) ReadEntry(i int, dst []byte) error {
	scratch := streamScratchPool.Get().(*[]byte)
	err := a.readEntry(i, dst, scratch)
	streamScratchPool.Put(scratch)
	return err
}

// readEntry is ReadEntry with a caller-held scratch buffer. The stored
// stream is snapshotted into the scratch under the shard lock (writers reuse
// stream buffers in place, so the reference itself must not leave the
// critical section) and decoded outside it, straight into dst.
//
//buddy:hotpath
func (a *Allocation) readEntry(i int, dst []byte, scratch *[]byte) error {
	if err := a.checkIndex(i); err != nil {
		return err
	}
	if len(dst) != EntryBytes {
		return fmt.Errorf("core: dst must be %d bytes, got %d", EntryBytes, len(dst))
	}
	d := a.dev

	d.mu.RLock()
	if a.freed {
		d.mu.RUnlock()
		return a.errFreed()
	}
	if d.failed.Load() {
		d.mu.RUnlock()
		return d.errFailed()
	}
	sh := a.shard(i)
	sh.Lock()
	g, t := a.entryHome(i)
	sectors := d.meta.Get(g)
	written := d.streams[g] != nil
	*scratch = append((*scratch)[:0], d.streams[g]...)
	sh.Unlock()
	d.accessMetadata(g)
	d.mu.RUnlock()

	d.traffic.reads.Add(1)
	dev, buddy := splitBytes(t, sectors)
	d.traffic.deviceReadBytes.Add(uint64(dev))
	d.primary.Load(g, dev)
	if buddy > 0 {
		d.traffic.buddyReadBytes.Add(uint64(buddy))
		d.traffic.buddyAccesses.Add(1)
		d.overflow.Load(g, buddy)
	}

	if !written {
		// Never-written entries read as zero, like fresh cudaMalloc pages.
		clear(dst)
		return nil
	}
	if err := d.cfg.Codec.DecompressInto(dst, *scratch); err != nil {
		return fmt.Errorf("core: entry %d of %s: %w", i, a.Name, err)
	}
	return nil
}

// splitBytes returns the device and overflow byte traffic for one access to
// an entry of the given compressed sector count under target t.
func splitBytes(t TargetRatio, sectors int) (dev, buddy int) {
	if t == Target16x {
		if sectors == 0 {
			return 8, 0
		}
		return 8, sectors * 32 // metadata word read + whole entry from buddy
	}
	if sectors == 0 {
		return 32, 0 // minimum one-sector device access
	}
	devSectors := sectors
	if devSectors > t.DeviceSectors() {
		devSectors = t.DeviceSectors()
	}
	return devSectors * 32, t.OverflowSectors(sectors) * 32
}

// accessMetadata models the metadata-cache lookup on every memory access; a
// miss costs one 32 B device read (§3.2), counted separately so the
// simulator can weigh it.
func (d *Device) accessMetadata(globalEntry int) {
	if !d.metaEnabled.Load() {
		return
	}
	if !d.mcache.Access(globalEntry) {
		d.traffic.metadataFillBytes.Add(MetadataLineBytes)
		d.traffic.deviceReadBytes.Add(MetadataLineBytes)
		d.primary.Load(globalEntry, MetadataLineBytes)
	}
}

// SetMetadataCacheEnabled toggles metadata-cache modeling (used by the
// Fig. 5b sweep to re-run with different cache sizes).
func (d *Device) SetMetadataCacheEnabled(on bool) { d.metaEnabled.Store(on) }

// AllocationCount returns the number of live allocations — the cheap form
// of len(Allocations()) for occupancy views that do not need the list.
func (d *Device) AllocationCount() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.allocs)
}

// Allocations returns a copy of the live allocation list in allocation
// order; mutating the returned slice does not affect the device.
func (d *Device) Allocations() []*Allocation {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]*Allocation, len(d.allocs))
	copy(out, d.allocs)
	return out
}

// SectorCount returns entry i's last committed compressed sector count. It
// panics on an out-of-range index — a programming error, unlike the error
// returns of the I/O methods.
func (a *Allocation) SectorCount(i int) int {
	if err := a.checkIndex(i); err != nil {
		panic(err)
	}
	sh := a.shard(i)
	sh.Lock()
	defer sh.Unlock()
	return a.sectorCount[i]
}
