package core

import (
	"errors"
	"fmt"

	"buddy/internal/compress"
)

// Config parameterizes a Buddy Compression device.
type Config struct {
	// Compressor is the memory compression algorithm (default BPC, §2.4).
	Compressor compress.Compressor
	// DeviceBytes is the GPU device memory capacity available for
	// compressed allocations.
	DeviceBytes int64
	// CarveoutFactor sizes the buddy carve-out relative to device memory;
	// 3x supports a 4x maximum target ratio (§3.2).
	CarveoutFactor int
	// MetadataCacheBytes is the total metadata cache capacity (§3.5:
	// 4 KB per DRAM-channel slice).
	MetadataCacheBytes int
	// MetadataCacheSlices is the number of slices (§3.2: 8).
	MetadataCacheSlices int
	// MetadataCacheWays is the associativity (§3.2: 4).
	MetadataCacheWays int
}

// DefaultConfig returns the paper's final design parameters (§3.5) with a
// 12 GB device (Titan Xp class, as in the DL case study).
func DefaultConfig() Config {
	return Config{
		Compressor:          compress.NewBPC(),
		DeviceBytes:         12 << 30,
		CarveoutFactor:      3,
		MetadataCacheBytes:  64 << 10,
		MetadataCacheSlices: 8,
		MetadataCacheWays:   4,
	}
}

// Traffic accumulates byte-level traffic statistics for the device.
type Traffic struct {
	// DeviceReadBytes and DeviceWriteBytes count device-memory data traffic.
	DeviceReadBytes  uint64
	DeviceWriteBytes uint64
	// BuddyReadBytes and BuddyWriteBytes count interconnect traffic to the
	// buddy carve-out.
	BuddyReadBytes  uint64
	BuddyWriteBytes uint64
	// MetadataFillBytes counts device reads caused by metadata cache misses.
	MetadataFillBytes uint64
	// Reads and Writes count entry-level operations; BuddyAccesses counts
	// operations that touched buddy memory (the numerator of Fig. 7/9).
	Reads         uint64
	Writes        uint64
	BuddyAccesses uint64
}

// BuddyAccessFraction returns the fraction of entry accesses that touched
// buddy memory.
func (t Traffic) BuddyAccessFraction() float64 {
	total := t.Reads + t.Writes
	if total == 0 {
		return 0
	}
	return float64(t.BuddyAccesses) / float64(total)
}

// Device is a Buddy Compression GPU memory: compressed allocations split
// between a device slab and a buddy carve-out addressed from a global base
// register (GBBR). Compressed streams are bit-exact; placement and traffic
// are modeled at the paper's sector granularity. The software keeps the
// per-entry compressed streams in a side table because the model's 1-bit
// stream framing would otherwise straddle slot boundaries that hardware
// metadata absorbs.
type Device struct {
	cfg    Config
	meta   *MetadataStore
	mcache *MetadataCache

	allocs      []*Allocation
	deviceUsed  int64
	buddyUsed   int64
	totalEntry  int
	streams     [][]byte // side table of compressed streams, by global entry
	gbbr        uint64   // global buddy base address (modeled)
	traffic     Traffic
	metaEnabled bool
}

// ErrOutOfMemory is returned when an allocation does not fit device memory
// or its buddy slots exceed the carve-out.
var ErrOutOfMemory = errors.New("core: out of memory")

// NewDevice constructs a device from cfg, applying DefaultConfig values for
// zero fields.
func NewDevice(cfg Config) *Device {
	def := DefaultConfig()
	if cfg.Compressor == nil {
		cfg.Compressor = def.Compressor
	}
	if cfg.DeviceBytes == 0 {
		cfg.DeviceBytes = def.DeviceBytes
	}
	if cfg.CarveoutFactor == 0 {
		cfg.CarveoutFactor = def.CarveoutFactor
	}
	if cfg.MetadataCacheBytes == 0 {
		cfg.MetadataCacheBytes = def.MetadataCacheBytes
	}
	if cfg.MetadataCacheSlices == 0 {
		cfg.MetadataCacheSlices = def.MetadataCacheSlices
	}
	if cfg.MetadataCacheWays == 0 {
		cfg.MetadataCacheWays = def.MetadataCacheWays
	}
	return &Device{
		cfg:         cfg,
		meta:        NewMetadataStore(0),
		mcache:      NewMetadataCache(cfg.MetadataCacheBytes, cfg.MetadataCacheSlices, cfg.MetadataCacheWays),
		gbbr:        0x4000_0000_0000, // arbitrary carve-out base
		metaEnabled: true,
	}
}

// Allocation is one compressed cudaMalloc region on a device.
type Allocation struct {
	dev *Device
	// Name identifies the allocation.
	Name string
	// Target is the annotated target compression ratio.
	Target TargetRatio
	// EntryCount is the number of 128 B memory-entries.
	EntryCount int

	firstEntry  int    // global entry index of entry 0
	deviceOff   int64  // offset of the compressed region in device memory
	buddyOff    uint64 // offset of the buddy slots from the GBBR
	sectorCount []int  // last committed compressed sector count per entry
}

// Carveout returns the buddy carve-out capacity in bytes.
func (d *Device) Carveout() int64 {
	return d.cfg.DeviceBytes * int64(d.cfg.CarveoutFactor)
}

// DeviceUsed returns the device bytes reserved by live allocations.
func (d *Device) DeviceUsed() int64 { return d.deviceUsed }

// BuddyUsed returns the carve-out bytes reserved by live allocations.
func (d *Device) BuddyUsed() int64 { return d.buddyUsed }

// Traffic returns a copy of the accumulated traffic counters.
func (d *Device) Traffic() Traffic { return d.traffic }

// ResetTraffic clears traffic counters and the metadata cache.
func (d *Device) ResetTraffic() {
	d.traffic = Traffic{}
	d.mcache.Reset()
}

// MetadataCacheHitRate exposes the metadata cache hit rate (Fig. 5b).
func (d *Device) MetadataCacheHitRate() float64 { return d.mcache.HitRate() }

// CompressionRatio returns the capacity compression the device currently
// achieves: original bytes of live allocations over their device
// reservation. This is the quantity Fig. 7 and Fig. 9 report.
func (d *Device) CompressionRatio() float64 {
	var orig, dev int64
	for _, a := range d.allocs {
		orig += int64(a.EntryCount) * 128
		dev += int64(a.EntryCount) * int64(a.Target.DeviceBytes())
	}
	if dev == 0 {
		return 1
	}
	return float64(orig) / float64(dev)
}

// Malloc reserves a compressed allocation of size bytes with the given
// target ratio. The device reservation is size/target; the remainder of
// each entry is reserved in the buddy carve-out (§3.2).
func (d *Device) Malloc(name string, size int64, target TargetRatio) (*Allocation, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: invalid allocation size %d", size)
	}
	entries := int((size + 127) / 128)
	devBytes := int64(entries) * int64(target.DeviceBytes())
	buddyBytes := int64(entries) * int64(target.BuddySlotBytes())
	if d.deviceUsed+devBytes > d.cfg.DeviceBytes {
		return nil, fmt.Errorf("%w: device (%d + %d > %d)", ErrOutOfMemory, d.deviceUsed, devBytes, d.cfg.DeviceBytes)
	}
	if d.buddyUsed+buddyBytes > d.Carveout() {
		return nil, fmt.Errorf("%w: buddy carve-out (%d + %d > %d)", ErrOutOfMemory, d.buddyUsed, buddyBytes, d.Carveout())
	}
	a := &Allocation{
		dev:         d,
		Name:        name,
		Target:      target,
		EntryCount:  entries,
		firstEntry:  d.totalEntry,
		deviceOff:   d.deviceUsed,
		buddyOff:    uint64(d.buddyUsed),
		sectorCount: make([]int, entries),
	}
	d.deviceUsed += devBytes
	d.buddyUsed += buddyBytes
	d.totalEntry += entries
	d.streams = append(d.streams, make([][]byte, entries)...)
	d.meta = growMetadata(d.meta, d.totalEntry)
	d.allocs = append(d.allocs, a)
	return a, nil
}

func growMetadata(old *MetadataStore, n int) *MetadataStore {
	m := NewMetadataStore(n)
	copy(m.packed, old.packed)
	return m
}

// DeviceAddress returns the device byte address of entry i's first sector.
// Fixed at allocation time: compressibility changes never move data (§3.3).
func (a *Allocation) DeviceAddress(i int) uint64 {
	return uint64(a.deviceOff) + uint64(i)*uint64(a.Target.DeviceBytes())
}

// BuddyAddress returns the buddy-memory address (GBBR + offset) of entry
// i's overflow slot. Fixed at allocation time.
func (a *Allocation) BuddyAddress(i int) uint64 {
	return a.dev.gbbr + a.buddyOff + uint64(i)*uint64(a.Target.BuddySlotBytes())
}

// PTEFor returns the extended page-table entry for the allocation's pages.
func (a *Allocation) PTEFor() PTE {
	return PTE{Compressed: true, Target: a.Target, BuddyPageOffset: uint32(a.buddyOff >> 16)}
}

func (a *Allocation) checkIndex(i int) error {
	if i < 0 || i >= a.EntryCount {
		return fmt.Errorf("core: entry index %d out of range [0,%d)", i, a.EntryCount)
	}
	return nil
}

// WriteEntry compresses and stores a 128 B entry. Sectors beyond the target
// budget are written to the entry's fixed buddy slot; no other entry is
// disturbed regardless of compressibility changes.
func (a *Allocation) WriteEntry(i int, data []byte) error {
	if err := a.checkIndex(i); err != nil {
		return err
	}
	if len(data) != 128 {
		return fmt.Errorf("core: entry must be 128 bytes, got %d", len(data))
	}
	d := a.dev
	c := d.cfg.Compressor
	sectors := compress.SectorsNeeded(c, data)
	g := a.firstEntry + i
	d.streams[g] = c.Compress(data)
	a.sectorCount[i] = sectors

	d.accessMetadata(g)
	d.meta.Set(g, sectors)

	d.traffic.Writes++
	dev, buddy := a.splitBytes(sectors)
	d.traffic.DeviceWriteBytes += uint64(dev)
	d.traffic.BuddyWriteBytes += uint64(buddy)
	if buddy > 0 {
		d.traffic.BuddyAccesses++
	}
	return nil
}

// ReadEntry fetches and decompresses entry i into dst (128 bytes).
func (a *Allocation) ReadEntry(i int, dst []byte) error {
	if err := a.checkIndex(i); err != nil {
		return err
	}
	if len(dst) != 128 {
		return fmt.Errorf("core: dst must be 128 bytes, got %d", len(dst))
	}
	d := a.dev
	g := a.firstEntry + i
	d.accessMetadata(g)
	sectors := d.meta.Get(g)

	d.traffic.Reads++
	dev, buddy := a.splitBytes(sectors)
	d.traffic.DeviceReadBytes += uint64(dev)
	d.traffic.BuddyReadBytes += uint64(buddy)
	if buddy > 0 {
		d.traffic.BuddyAccesses++
	}

	stream := d.streams[g]
	if stream == nil {
		// Never-written entries read as zero, like fresh cudaMalloc pages.
		for j := range dst {
			dst[j] = 0
		}
		return nil
	}
	out, err := d.cfg.Compressor.Decompress(stream)
	if err != nil {
		return fmt.Errorf("core: entry %d of %s: %w", i, a.Name, err)
	}
	copy(dst, out)
	return nil
}

// splitBytes returns the device and buddy byte traffic for one access to an
// entry of the given compressed sector count under the allocation's target.
func (a *Allocation) splitBytes(sectors int) (dev, buddy int) {
	t := a.Target
	if t == Target16x {
		if sectors == 0 {
			return 8, 0
		}
		return 8, sectors * 32 // metadata word read + whole entry from buddy
	}
	if sectors == 0 {
		return 32, 0 // minimum one-sector device access
	}
	devSectors := sectors
	if devSectors > t.DeviceSectors() {
		devSectors = t.DeviceSectors()
	}
	return devSectors * 32, t.OverflowSectors(sectors) * 32
}

// accessMetadata models the metadata-cache lookup on every memory access; a
// miss costs one 32 B device read (§3.2), counted separately so the
// simulator can weigh it.
func (d *Device) accessMetadata(globalEntry int) {
	if !d.metaEnabled {
		return
	}
	if !d.mcache.Access(globalEntry) {
		d.traffic.MetadataFillBytes += MetadataLineBytes
		d.traffic.DeviceReadBytes += MetadataLineBytes
	}
}

// SetMetadataCacheEnabled toggles metadata-cache modeling (used by the
// Fig. 5b sweep to re-run with different cache sizes).
func (d *Device) SetMetadataCacheEnabled(on bool) { d.metaEnabled = on }

// Allocations returns the live allocations in allocation order.
func (d *Device) Allocations() []*Allocation { return d.allocs }

// SectorCount returns entry i's last committed compressed sector count.
func (a *Allocation) SectorCount(i int) int { return a.sectorCount[i] }
