package core

import (
	"sort"

	"buddy/internal/analysis"
	"buddy/internal/compress"
	"buddy/internal/memory"
)

// ProfileOptions configure the target-ratio selection pass (§3.4).
type ProfileOptions struct {
	// Threshold is the Buddy Threshold: the maximum fraction of an
	// allocation's entries allowed to overflow to buddy memory (§3.4;
	// final design default 30%).
	Threshold float64
	// PerAllocation selects per-allocation targets; false reproduces the
	// naive whole-program conservative target (Fig. 7 "Naive").
	PerAllocation bool
	// ZeroPage enables the aggressive 16x mostly-zero target (§3.4).
	ZeroPage bool
	// ZeroPageMinFrac is the minimum fraction of zero-page-class entries,
	// in every snapshot, for 16x eligibility ("allocations that are mostly
	// zero, and remain so for the entirety of the run").
	ZeroPageMinFrac float64
	// MaxAggregate caps the whole-device compression ratio, limited by the
	// buddy carve-out (§3.4: "still under 4x").
	MaxAggregate float64
}

// FinalDesign returns the paper's final configuration: per-allocation
// targets, 30% Buddy Threshold, zero-page optimization, 4x carve-out cap
// (§3.5).
func FinalDesign() ProfileOptions {
	return ProfileOptions{
		Threshold:       0.30,
		PerAllocation:   true,
		ZeroPage:        true,
		ZeroPageMinFrac: 0.90,
		MaxAggregate:    4.0,
	}
}

// Naive returns the naive whole-program conservative configuration of
// Fig. 7's first bar.
func Naive() ProfileOptions {
	o := FinalDesign()
	o.PerAllocation = false
	o.ZeroPage = false
	return o
}

// PerAllocationOnly returns per-allocation targets without the zero-page
// optimization (Fig. 7's middle bar).
func PerAllocationOnly() ProfileOptions {
	o := FinalDesign()
	o.ZeroPage = false
	return o
}

// AllocationProfile aggregates one allocation's compressibility over the
// profiling snapshots.
type AllocationProfile struct {
	// Name of the allocation.
	Name string
	// Entries is the allocation's entry count.
	Entries int
	// Hist[s] counts entry observations (entries x snapshots) that
	// compressed to s sectors; index 0 is the zero-page class.
	Hist [5]int
	// MinZeroFrac is the minimum, across snapshots, of the fraction of
	// zero-page-class entries — the 16x eligibility statistic.
	MinZeroFrac float64
	// Target is the chosen target ratio.
	Target TargetRatio
	// OverflowFrac is the expected fraction of entries that overflow to
	// buddy memory under Target (the static buddy-access estimate, §3.4).
	OverflowFrac float64
}

// ProfileResult is the outcome of the profiling pass.
type ProfileResult struct {
	// Allocations holds per-allocation profiles in allocation order.
	Allocations []*AllocationProfile
	// CompressionRatio is the whole-program device-reservation ratio under
	// the chosen targets (Fig. 7/9 line).
	CompressionRatio float64
	// BuddyAccessFraction is the entry-weighted expected fraction of
	// accesses served partly from buddy memory (Fig. 7/9 bars).
	BuddyAccessFraction float64
	// BestAchievable is the unconstrained sector-granular compression the
	// data admits (with 8 B zero-page entries), capped by the carve-out:
	// Fig. 9's black marker.
	BestAchievable float64
}

// Targets returns the name -> ratio map for annotating allocations.
func (r *ProfileResult) Targets() map[string]TargetRatio {
	m := make(map[string]TargetRatio, len(r.Allocations))
	for _, a := range r.Allocations {
		m[a.Name] = a.Target
	}
	return m
}

// Profile runs the paper's profiling pass over a run's snapshots: it
// indexes each snapshot once (one parallel encode pass per snapshot, via
// internal/analysis), histograms per-entry compressed sector counts per
// allocation, picks the most aggressive target whose overflow stays within
// the Buddy Threshold, applies the zero-page special case, and demotes
// targets until the aggregate ratio respects the carve-out cap (§3.4, §3.5).
func Profile(snaps []*memory.Snapshot, c compress.Codec, opt ProfileOptions) *ProfileResult {
	return ProfileIndexes(analysis.BuildRun(snaps, c), opt)
}

// ProfileIndexes is Profile over pre-built snapshot indexes — the entry
// point for sweeps that reuse one index per snapshot x codec across many
// profiling configurations (Fig. 7's three design points, Fig. 9's
// threshold sweep) without re-encoding anything.
func ProfileIndexes(idx []*analysis.Index, opt ProfileOptions) *ProfileResult {
	if opt.Threshold <= 0 {
		opt.Threshold = 0.30
	}
	if opt.MaxAggregate <= 0 {
		opt.MaxAggregate = 4.0
	}
	if opt.ZeroPageMinFrac <= 0 {
		opt.ZeroPageMinFrac = 0.90
	}
	profiles := collectProfiles(idx)
	if opt.PerAllocation {
		for _, p := range profiles {
			p.Target = chooseTarget(p, opt)
		}
	} else {
		// Naive (Fig. 7 first bar): a single, conservative whole-program
		// target derived from the program's overall compressibility — the
		// largest allowed ratio not exceeding the worst-snapshot average
		// sector-granular compression. Averages hide variance, so this
		// choice both compresses less than per-allocation targets and
		// overflows far more entries to buddy memory.
		t := naiveTarget(idx)
		for _, p := range profiles {
			p.Target = t
		}
	}
	enforceCarveoutCap(profiles, opt.MaxAggregate)
	for _, p := range profiles {
		p.OverflowFrac = overflowFrac(p, p.Target)
	}
	return summarize(profiles, idx)
}

func collectProfiles(idx []*analysis.Index) []*AllocationProfile {
	index := make(map[string]*AllocationProfile)
	var order []*AllocationProfile
	for _, x := range idx {
		for _, a := range x.Allocs {
			p := index[a.Name]
			if p == nil {
				p = &AllocationProfile{Name: a.Name, MinZeroFrac: 1}
				index[a.Name] = p
				order = append(order, p)
			}
			// Entries is the allocation's full size: take the largest
			// instance so a snapshot where it is empty (or still growing)
			// doesn't zero its weight in the aggregate ratios.
			if n := a.Entries(); n > p.Entries {
				p.Entries = n
			}
			h := a.SectorHistogram()
			for s := range h {
				p.Hist[s] += h[s]
			}
			// An empty instance carries no evidence about the data; it must
			// not drag MinZeroFrac to 0 and veto the 16x zero-page target.
			if a.Entries() > 0 {
				if zf := a.ZeroPageFrac(); zf < p.MinZeroFrac {
					p.MinZeroFrac = zf
				}
			}
		}
	}
	return order
}

// overflowFrac is the fraction of profiled entries that would overflow to
// buddy memory under target t.
func overflowFrac(p *AllocationProfile, t TargetRatio) float64 {
	var total, over int
	for s, n := range p.Hist {
		total += n
		if !t.Fits(s) {
			over += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(over) / float64(total)
}

// chooseTarget picks the most aggressive ratio whose overflow stays within
// the Buddy Threshold; 16x additionally requires the allocation to be
// mostly-zero in every snapshot.
func chooseTarget(p *AllocationProfile, opt ProfileOptions) TargetRatio {
	if opt.ZeroPage && p.MinZeroFrac >= opt.ZeroPageMinFrac &&
		overflowFrac(p, Target16x) <= opt.Threshold {
		return Target16x
	}
	for _, t := range []TargetRatio{Target4x, Target2x, Target4by3x} {
		if overflowFrac(p, t) <= opt.Threshold {
			return t
		}
	}
	return Target1x
}

// naiveTarget computes the whole-program conservative ratio: the minimum
// over snapshots of the sector-quantized compression ratio (entries below
// one sector still cost a sector without the zero-page mode), rounded down
// to an allowed target.
func naiveTarget(idx []*analysis.Index) TargetRatio {
	prog := 4.0
	for _, x := range idx {
		var orig, comp float64
		for s, n := range x.SectorHistogram() {
			sec := s
			if sec == 0 {
				sec = 1
			}
			orig += 128 * float64(n)
			comp += float64(sec*32) * float64(n)
		}
		if comp > 0 && orig/comp < prog {
			prog = orig / comp
		}
	}
	target := Target1x
	for _, t := range []TargetRatio{Target4by3x, Target2x, Target4x} {
		if t.Value() <= prog {
			target = t
		}
	}
	return target
}

// enforceCarveoutCap demotes the most aggressive targets until the aggregate
// device compression ratio is within maxAgg (§3.4: the profiler keeps the
// overall ratio under 4x, limited by the carve-out region).
func enforceCarveoutCap(profiles []*AllocationProfile, maxAgg float64) {
	for {
		var orig, dev float64
		for _, p := range profiles {
			orig += float64(p.Entries) * 128
			dev += float64(p.Entries) * float64(p.Target.DeviceBytes())
		}
		if dev == 0 || orig/dev <= maxAgg {
			return
		}
		// Demote the largest-footprint allocation at the highest ratio.
		cand := make([]*AllocationProfile, 0, len(profiles))
		for _, p := range profiles {
			if p.Target != Target1x {
				cand = append(cand, p)
			}
		}
		if len(cand) == 0 {
			return
		}
		sort.Slice(cand, func(i, j int) bool {
			if cand[i].Target != cand[j].Target {
				return cand[i].Target > cand[j].Target
			}
			return cand[i].Entries > cand[j].Entries
		})
		cand[0].Target--
	}
}

func summarize(profiles []*AllocationProfile, idx []*analysis.Index) *ProfileResult {
	res := &ProfileResult{Allocations: profiles}
	var orig, dev, overflowWeighted, entriesTotal float64
	for _, p := range profiles {
		orig += float64(p.Entries) * 128
		dev += float64(p.Entries) * float64(p.Target.DeviceBytes())
		overflowWeighted += overflowFrac(p, p.Target) * float64(p.Entries)
		entriesTotal += float64(p.Entries)
	}
	if dev > 0 {
		res.CompressionRatio = orig / dev
	}
	if entriesTotal > 0 {
		res.BuddyAccessFraction = overflowWeighted / entriesTotal
	}
	res.BestAchievable = bestAchievable(idx)
	return res
}

// bestAchievable computes the sector-granular compression the data itself
// admits (zero-page entries at 8 B), averaged over snapshots and capped at
// the 4x carve-out limit — the "best achievable compression ratio assuming
// no constraints are placed on the buddy-memory accesses" of Fig. 9.
func bestAchievable(idx []*analysis.Index) float64 {
	if len(idx) == 0 {
		return 1
	}
	var orig, comp float64
	for _, x := range idx {
		for s, n := range x.SectorHistogram() {
			orig += 128 * float64(n)
			if s == 0 {
				comp += 8 * float64(n)
			} else {
				comp += float64(s*32) * float64(n)
			}
		}
	}
	if comp == 0 {
		return 4
	}
	r := orig / comp
	if r > 4 {
		r = 4
	}
	return r
}

// MeasureSnapshot reports, for a snapshot under given targets, the achieved
// device ratio and the entry-weighted overflow fraction — used for the
// over-time studies (Fig. 8) where targets stay fixed while data changes.
func MeasureSnapshot(s *memory.Snapshot, c compress.Codec, targets map[string]TargetRatio) (ratio, buddyFrac float64) {
	return MeasureIndex(analysis.Build(s, c), targets)
}

// MeasureIndex is MeasureSnapshot over a pre-built snapshot index.
func MeasureIndex(x *analysis.Index, targets map[string]TargetRatio) (ratio, buddyFrac float64) {
	var orig, dev, over, entries float64
	for _, a := range x.Allocs {
		t, ok := targets[a.Name]
		if !ok {
			t = Target1x
		}
		for s, n := range a.SectorHistogram() {
			if !t.Fits(s) {
				over += float64(n)
			}
		}
		n := float64(a.Entries())
		entries += n
		orig += n * 128
		dev += n * float64(t.DeviceBytes())
	}
	if dev > 0 {
		ratio = orig / dev
	}
	if entries > 0 {
		buddyFrac = over / entries
	}
	return ratio, buddyFrac
}
