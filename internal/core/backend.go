package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"buddy/internal/nvlink"
	"buddy/internal/um"
)

// Backend is one storage tier for compressed sectors. A Device composes two
// tiers: a primary tier holding each entry's in-budget sectors and an
// overflow tier holding the sectors that spill past the target ratio. The
// paper's design is device slab + NVLink buddy carve-out; the interface
// exists so other tiers (host unified memory, peer GPUs, disaggregated
// appliances) slot in without touching the device.
//
// Implementations must be safe for concurrent use: the Device calls Store
// and Load from many goroutines.
type Backend interface {
	// Name identifies the tier in stats and errors.
	Name() string
	// Capacity returns the tier's byte capacity; negative means unbounded.
	Capacity() int64
	// Used returns the bytes currently reserved by live allocations.
	Used() int64
	// Reserve claims n bytes at allocation time, failing with an error
	// wrapping ErrOutOfMemory when the tier is full.
	Reserve(n int64) error
	// Release returns previously reserved bytes. Releasing more than is
	// currently reserved is a lifecycle accounting bug and panics.
	Release(n int64)
	// Store accounts a write of n bytes belonging to global entry index
	// entry.
	Store(entry int, n int)
	// Load accounts a read of n bytes belonging to global entry index
	// entry.
	Load(entry int, n int)
	// Traffic returns a snapshot of the tier's access counters.
	Traffic() BackendTraffic
	// ResetTraffic clears the access counters (reservations are kept).
	ResetTraffic()
}

// BackendTraffic is a snapshot of one tier's access counters.
type BackendTraffic struct {
	// Loads and Stores count entry-level operations that touched the tier.
	Loads, Stores uint64
	// ReadBytes and WrittenBytes count data volume per direction.
	ReadBytes, WrittenBytes uint64
	// Faults and MigratedBytes count demand-paging activity; zero for tiers
	// without a pager (device slab, buddy carve-out).
	Faults, MigratedBytes uint64
}

// capacityMeter implements the Reserve/Release/Used accounting shared by
// every backend. A negative capacity means unbounded.
type capacityMeter struct {
	name     string
	capacity int64

	mu   sync.Mutex
	used int64
}

func (m *capacityMeter) Name() string    { return m.name }
func (m *capacityMeter) Capacity() int64 { return m.capacity }

func (m *capacityMeter) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

func (m *capacityMeter) Reserve(n int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.capacity >= 0 && m.used+n > m.capacity {
		return fmt.Errorf("%w: %s (%d + %d > %d)", ErrOutOfMemory, m.name, m.used, n, m.capacity)
	}
	m.used += n
	return nil
}

func (m *capacityMeter) Release(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n < 0 || n > m.used {
		// A double free or mismatched Reserve/Release pair; clamping would
		// silently corrupt the Used() accounting every lifecycle test pins.
		panic(fmt.Sprintf("core: %s: Release(%d) with %d bytes reserved", m.name, n, m.used))
	}
	m.used -= n
}

// trafficMeter implements the lock-free access counters shared by every
// backend.
type trafficMeter struct {
	loads, stores           atomic.Uint64
	readBytes, writtenBytes atomic.Uint64
}

func (t *trafficMeter) Store(_ int, n int) {
	t.stores.Add(1)
	t.writtenBytes.Add(uint64(n))
}

func (t *trafficMeter) Load(_ int, n int) {
	t.loads.Add(1)
	t.readBytes.Add(uint64(n))
}

func (t *trafficMeter) Traffic() BackendTraffic {
	return BackendTraffic{
		Loads:        t.loads.Load(),
		Stores:       t.stores.Load(),
		ReadBytes:    t.readBytes.Load(),
		WrittenBytes: t.writtenBytes.Load(),
	}
}

func (t *trafficMeter) ResetTraffic() {
	t.loads.Store(0)
	t.stores.Store(0)
	t.readBytes.Store(0)
	t.writtenBytes.Store(0)
}

// SlabBackend is the primary tier: the GPU's own device-memory slab, where
// each entry's in-budget sectors live at fixed addresses.
type SlabBackend struct {
	capacityMeter
	trafficMeter
}

// NewSlabBackend builds a device-memory tier of the given capacity.
func NewSlabBackend(capacity int64) *SlabBackend {
	return &SlabBackend{capacityMeter: capacityMeter{name: "device-slab", capacity: capacity}}
}

// StoreSpan folds k entry writes totaling n bytes into the meter with one
// pair of atomic adds — the batch span kernels' amortized accounting. The
// totals are identical to k individual Store calls.
func (b *SlabBackend) StoreSpan(k int, n uint64) {
	b.stores.Add(uint64(k))
	b.writtenBytes.Add(n)
}

// LoadSpan folds k entry reads totaling n bytes into the meter, like
// StoreSpan.
func (b *SlabBackend) LoadSpan(k int, n uint64) {
	b.loads.Add(uint64(k))
	b.readBytes.Add(n)
}

// CarveoutBackend is the paper's overflow tier: a carve-out of buddy memory
// reached over the NVLink interconnect (§2.3). Transfers are pushed through
// an nvlink.Link so link occupancy per direction is modeled alongside the
// byte counters.
type CarveoutBackend struct {
	capacityMeter
	trafficMeter

	mu   sync.Mutex
	link *nvlink.Link
}

// NewCarveoutBackend builds a buddy carve-out tier of the given capacity
// over a link with the given configuration.
func NewCarveoutBackend(capacity int64, link nvlink.Config) *CarveoutBackend {
	return &CarveoutBackend{
		capacityMeter: capacityMeter{name: "buddy-carveout", capacity: capacity},
		link:          nvlink.New(link),
	}
}

// Store accounts an overflow write: bytes drain to buddy memory on the
// write direction of the link.
func (b *CarveoutBackend) Store(entry int, n int) {
	b.trafficMeter.Store(entry, n)
	b.mu.Lock()
	b.link.Drain(0, nvlink.Write, n)
	b.mu.Unlock()
}

// Load accounts an overflow read on the read direction of the link.
func (b *CarveoutBackend) Load(entry int, n int) {
	b.trafficMeter.Load(entry, n)
	b.mu.Lock()
	b.link.Request(0, nvlink.Read, n)
	b.mu.Unlock()
}

// LinkOccupancy returns the modeled busy core-cycles per link direction:
// how long the interconnect has been transferring in each direction since
// the last reset. Idle gaps between transfers are not occupancy.
func (b *CarveoutBackend) LinkOccupancy() (readCycles, writeCycles float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.link.BusyCycles(nvlink.Read), b.link.BusyCycles(nvlink.Write)
}

// ResetTraffic clears counters and the link queues.
func (b *CarveoutBackend) ResetTraffic() {
	b.trafficMeter.ResetTraffic()
	b.mu.Lock()
	b.link.Reset()
	b.mu.Unlock()
}

// HostBackend is the fallback overflow tier when no buddy memory is
// attached: overflow sectors live in host unified memory behind a demand
// pager (§4.3's software baseline, repurposed as a tier). Capacity is
// unbounded — host memory is large — but every cold page costs a modeled
// fault migration, which the tier's Traffic exposes.
type HostBackend struct {
	capacityMeter
	trafficMeter
	pager *um.Pager
}

// NewHostBackend builds a host unified-memory tier. pageBytes is the
// migration granularity (0 = the um default) and residentBytes bounds the
// pages kept hot on the device side of the link.
func NewHostBackend(pageBytes int, residentBytes int64) *HostBackend {
	return &HostBackend{
		capacityMeter: capacityMeter{name: "host-um", capacity: -1},
		pager:         um.NewPager(pageBytes, residentBytes),
	}
}

// Store accounts an overflow write, touching the pager.
func (b *HostBackend) Store(entry int, n int) {
	b.trafficMeter.Store(entry, n)
	b.pager.Touch(uint64(entry) * uint64(EntryBytes))
}

// Load accounts an overflow read, touching the pager.
func (b *HostBackend) Load(entry int, n int) {
	b.trafficMeter.Load(entry, n)
	b.pager.Touch(uint64(entry) * uint64(EntryBytes))
}

// Traffic includes the pager's fault statistics.
func (b *HostBackend) Traffic() BackendTraffic {
	tr := b.trafficMeter.Traffic()
	tr.Faults, tr.MigratedBytes = b.pager.Stats()
	return tr
}

// ResetTraffic clears counters and pager residency.
func (b *HostBackend) ResetTraffic() {
	b.trafficMeter.ResetTraffic()
	b.pager.Reset()
}
