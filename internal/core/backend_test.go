package core

import (
	"errors"
	"sync"
	"testing"

	"buddy/internal/nvlink"
)

// conformance is the shared Backend contract: every tier must account
// capacity and traffic the same way, and survive concurrent Store/Load.
func conformance(t *testing.T, name string, mk func(capacity int64) Backend) {
	t.Run(name+"/identity", func(t *testing.T) {
		b := mk(1 << 20)
		if b.Name() == "" {
			t.Error("backend must have a name")
		}
		if c := b.Capacity(); c >= 0 && c != 1<<20 {
			t.Errorf("bounded backend capacity = %d, want %d", c, 1<<20)
		}
	})

	t.Run(name+"/capacity", func(t *testing.T) {
		b := mk(1 << 10)
		if b.Used() != 0 {
			t.Fatalf("fresh backend used = %d", b.Used())
		}
		if err := b.Reserve(512); err != nil {
			t.Fatalf("reserve within capacity: %v", err)
		}
		if b.Used() != 512 {
			t.Errorf("used = %d, want 512", b.Used())
		}
		if b.Capacity() >= 0 {
			if err := b.Reserve(1 << 10); !errors.Is(err, ErrOutOfMemory) {
				t.Errorf("over-reserve error = %v, want ErrOutOfMemory", err)
			}
			if b.Used() != 512 {
				t.Errorf("failed reserve must not change used, got %d", b.Used())
			}
		} else if err := b.Reserve(1 << 40); err != nil {
			t.Errorf("unbounded backend refused reservation: %v", err)
		}
		b.Release(512)
		if u := b.Used(); u != 0 && b.Capacity() >= 0 {
			t.Errorf("after release used = %d, want 0", u)
		}
	})

	t.Run(name+"/traffic", func(t *testing.T) {
		b := mk(1 << 20)
		b.Store(0, 96)
		b.Store(1, 32)
		b.Load(0, 64)
		tr := b.Traffic()
		if tr.Stores != 2 || tr.WrittenBytes != 128 {
			t.Errorf("stores=%d written=%d, want 2/128", tr.Stores, tr.WrittenBytes)
		}
		if tr.Loads != 1 || tr.ReadBytes != 64 {
			t.Errorf("loads=%d read=%d, want 1/64", tr.Loads, tr.ReadBytes)
		}
		b.ResetTraffic()
		tr = b.Traffic()
		if tr.Stores != 0 || tr.Loads != 0 || tr.ReadBytes != 0 || tr.WrittenBytes != 0 {
			t.Errorf("reset left counters: %+v", tr)
		}
	})

	t.Run(name+"/lifecycle", func(t *testing.T) {
		b := mk(1 << 10)
		// Used returns to zero after releasing every live reservation, in
		// any release order.
		for _, n := range []int64{128, 256, 64} {
			if err := b.Reserve(n); err != nil {
				t.Fatal(err)
			}
		}
		b.Release(256)
		b.Release(64)
		b.Release(128)
		if u := b.Used(); u != 0 {
			t.Fatalf("used = %d after free-all, want 0", u)
		}
		// Release after a free returns real capacity: a bounded tier must
		// accept a full-capacity reservation again.
		if b.Capacity() >= 0 {
			if err := b.Reserve(b.Capacity()); err != nil {
				t.Fatalf("full re-reserve after free-all failed: %v", err)
			}
			b.Release(b.Capacity())
		}
		// Over-release is a lifecycle accounting bug: it must panic
		// deterministically and leave Used untouched.
		func() {
			defer func() {
				if recover() == nil {
					t.Error("over-release must panic")
				}
			}()
			b.Release(1)
		}()
		if u := b.Used(); u != 0 {
			t.Errorf("failed over-release changed used to %d", u)
		}
	})

	t.Run(name+"/concurrent", func(t *testing.T) {
		b := mk(1 << 30)
		const workers, ops = 8, 500
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < ops; i++ {
					b.Store(w*ops+i, 32)
					b.Load(w*ops+i, 32)
					if err := b.Reserve(16); err == nil {
						b.Release(16)
					}
				}
			}(w)
		}
		wg.Wait()
		tr := b.Traffic()
		if tr.Stores != workers*ops || tr.Loads != workers*ops {
			t.Errorf("stores=%d loads=%d, want %d each", tr.Stores, tr.Loads, workers*ops)
		}
		if tr.WrittenBytes != workers*ops*32 || tr.ReadBytes != workers*ops*32 {
			t.Errorf("bytes lost under concurrency: %+v", tr)
		}
	})
}

func TestBackendConformance(t *testing.T) {
	conformance(t, "slab", func(c int64) Backend { return NewSlabBackend(c) })
	conformance(t, "carveout", func(c int64) Backend {
		return NewCarveoutBackend(c, nvlink.DefaultConfig())
	})
	conformance(t, "host-um", func(c int64) Backend {
		// The host tier is unbounded by design; capacity bounds only the
		// resident pool.
		return NewHostBackend(4<<10, c)
	})
}

func TestCarveoutBackendModelsLink(t *testing.T) {
	b := NewCarveoutBackend(1<<20, nvlink.DefaultConfig())
	b.Store(0, 1<<16)
	b.Load(1, 1<<16)
	r, w := b.LinkOccupancy()
	if r <= 0 || w <= 0 {
		t.Errorf("link occupancy read=%f write=%f, want both positive", r, w)
	}
	b.ResetTraffic()
	if r, w = b.LinkOccupancy(); r != 0 || w != 0 {
		t.Errorf("reset left link occupancy read=%f write=%f", r, w)
	}
}

func TestHostBackendCountsFaults(t *testing.T) {
	// One resident page: ping-pong between two pages faults every touch
	// after the first.
	b := NewHostBackend(4<<10, 4<<10)
	pageEntries := (4 << 10) / EntryBytes
	for i := 0; i < 10; i++ {
		b.Store(0, 32)
		b.Store(pageEntries, 32) // next page
	}
	tr := b.Traffic()
	if tr.Faults < 10 {
		t.Errorf("ping-pong across a one-page pool faulted %d times, want >= 10", tr.Faults)
	}
	if tr.MigratedBytes != tr.Faults*(4<<10) {
		t.Errorf("migrated %d bytes for %d faults at 4 KiB pages", tr.MigratedBytes, tr.Faults)
	}
}
