package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"buddy/internal/gen"
)

// TestConcurrentDeviceStress drives a device from many goroutines at once —
// parallel Mallocs, entry reads/writes, byte-addressed I/O and stats reads —
// and then verifies every allocation's contents. Run under -race this is
// the concurrency proof for the driver redesign.
func TestConcurrentDeviceStress(t *testing.T) {
	d := newTestDevice(64 << 20)
	const workers = 8
	const entriesPer = 256

	var wg sync.WaitGroup
	allocs := make([]*Allocation, workers)
	want := make([][]byte, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a, err := d.Malloc(fmt.Sprintf("w%d", w), entriesPer*EntryBytes, Target2x)
			if err != nil {
				t.Error(err)
				return
			}
			allocs[w] = a
			data := make([]byte, a.Size())
			r := gen.NewRNG(uint64(w), 1)
			gens := []gen.Generator{
				gen.Zeros{}, gen.Ramp{Step: 3},
				gen.Noisy64{NoiseBits: 8, HiStep: 1}, gen.Random{},
			}
			for e := 0; e < entriesPer; e++ {
				gens[e%len(gens)].Fill(data[e*EntryBytes:(e+1)*EntryBytes], r)
			}
			want[w] = data

			// Interleave entry-granular and byte-granular traffic with
			// concurrent readers and stats polls.
			for e := 0; e < entriesPer; e++ {
				if err := a.WriteEntry(e, data[e*EntryBytes:(e+1)*EntryBytes]); err != nil {
					t.Error(err)
					return
				}
			}
			got := make([]byte, EntryBytes)
			for e := 0; e < entriesPer; e += 3 {
				if err := a.ReadEntry(e, got); err != nil {
					t.Error(err)
					return
				}
			}
			// Unaligned rewrites of this worker's own region.
			for off := int64(13); off+1000 < a.Size(); off += 2048 {
				if _, err := a.WriteAt(data[off:off+1000], off); err != nil {
					t.Error(err)
					return
				}
			}
			buf := make([]byte, 777)
			if _, err := a.ReadAt(buf, 55); err != nil {
				t.Error(err)
				return
			}
			_ = d.Traffic()
			_ = d.CompressionRatio()
			_ = d.Allocations()
			_ = d.MetadataCacheHitRate()
		}(w)
	}
	wg.Wait()

	// Quiescent verification: every worker's region holds its own data.
	for w, a := range allocs {
		if a == nil {
			t.Fatalf("worker %d allocation missing", w)
		}
		got := make([]byte, a.Size())
		if _, err := a.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[w]) {
			t.Errorf("worker %d: contents corrupted by concurrent traffic", w)
		}
	}

	// Traffic counters must account every operation exactly once.
	tr := d.Traffic()
	if tr.Writes == 0 || tr.Reads == 0 {
		t.Error("traffic counters lost operations")
	}
	primary, overflow := d.Tiers()
	pt, ot := primary.Traffic(), overflow.Traffic()
	if pt.WrittenBytes != tr.DeviceWriteBytes {
		t.Errorf("primary tier wrote %d, device counter says %d", pt.WrittenBytes, tr.DeviceWriteBytes)
	}
	if ot.WrittenBytes != tr.BuddyWriteBytes {
		t.Errorf("overflow tier wrote %d, device counter says %d", ot.WrittenBytes, tr.BuddyWriteBytes)
	}
}

// TestConcurrentSharedEntryWriters hammers one entry from many writers: the
// committed state must be one of the candidate values, never a torn mix.
func TestConcurrentSharedEntryWriters(t *testing.T) {
	d := newTestDevice(1 << 20)
	a, err := d.Malloc("shared", 4<<10, Target2x)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	patterns := make([][]byte, writers)
	for w := range patterns {
		patterns[w] = make([]byte, EntryBytes)
		fillPattern(patterns[w], byte(w*31))
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got := make([]byte, EntryBytes)
			for i := 0; i < 200; i++ {
				if err := a.WriteEntry(7, patterns[w]); err != nil {
					t.Error(err)
					return
				}
				if err := a.ReadEntry(7, got); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	got := make([]byte, EntryBytes)
	if err := a.ReadEntry(7, got); err != nil {
		t.Fatal(err)
	}
	for _, p := range patterns {
		if bytes.Equal(got, p) {
			return
		}
	}
	t.Error("final entry state matches no writer: torn write")
}
