package core

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Device-tier failure and rebuild-from-buddy recovery — the core half of the
// pool's self-healing machinery. The failure model kills the *device* tier:
// Fail marks the primary slab dead, and every data-path operation (entry
// reads and writes, batch spans, Malloc) fails with ErrDeviceFailed until
// Recover rebuilds it. The buddy carve-out and the interconnect survive —
// they are separate memory on the far side of the link — so Recover
// re-streams every live entry's compressed bytes from the carve-out copy
// back into the device slab: one buddy-tier read of the stored stream plus
// one device-tier write of the in-budget sectors per entry.
//
// Modeling note: the paper's design writes an entry's overflow sectors to
// the carve-out on every store, and this model additionally treats the
// carve-out as holding a recoverable copy of the in-budget sectors (a
// write-through mirror), so a device-tier failure loses no data — the cost
// of recovery is the link traffic of streaming the whole compressed
// footprint back. That is what the rebuild accounts: the full stored bytes
// cross the link, the device-resident sectors are re-stored.

// ErrDeviceFailed is returned (wrapped) by every operation on a device
// whose primary tier has been killed with Fail and not yet rebuilt with
// Recover.
var ErrDeviceFailed = errors.New("core: device failed")

func (d *Device) errFailed() error {
	return fmt.Errorf("core: device tier down, Recover to rebuild: %w", ErrDeviceFailed)
}

// Fail kills the device's primary tier: every subsequent Malloc, entry
// operation and batch span fails with an error wrapping ErrDeviceFailed
// until Recover is called. In-flight operations that already passed the
// check complete normally (their entries were stored before the failure).
// Allocations, reservations and the carve-out tier stay intact — only the
// data path is down.
func (d *Device) Fail() { d.failed.Store(true) }

// Failed reports whether the device tier is currently down.
func (d *Device) Failed() bool { return d.failed.Load() }

// rebuildSpan is the spanRunner that re-streams one allocation's entries
// from the buddy carve-out copy into the rebuilt device tier.
type rebuildSpan struct {
	d       *Device
	a       *Allocation
	entries atomic.Int64
	bytes   atomic.Int64
}

func (s *rebuildSpan) runSpan(lo, hi int) error {
	d, a := s.d, s.a
	var n, moved int64
	d.mu.RLock()
	if a.freed {
		d.mu.RUnlock()
		return nil // freed mid-recovery: nothing left to rebuild
	}
	for i := lo; i < hi; i++ {
		sh := a.shard(i)
		sh.Lock()
		g, t := a.entryHome(i)
		sectors := d.meta.Get(g)
		written := d.streams[g] != nil
		sh.Unlock()
		if !written {
			continue
		}
		// The whole stored stream crosses the link from the carve-out copy;
		// the in-budget sectors are re-stored device-side.
		stored := storedBytes(sectors)
		dev, _ := splitBytes(t, sectors)
		d.traffic.buddyReadBytes.Add(uint64(stored))
		d.overflow.Load(g, stored)
		d.traffic.deviceWriteBytes.Add(uint64(dev))
		d.primary.Store(g, dev)
		n++
		moved += int64(stored)
	}
	d.mu.RUnlock()
	s.entries.Add(n)
	s.bytes.Add(moved)
	return nil
}

// Recover rebuilds a failed device tier from the buddy carve-out: every
// written entry of every live allocation is streamed back over the link
// (buddy-tier read of the stored bytes) and re-stored in the device slab
// (device-tier write of the in-budget sectors), in parallel on the span
// pool. It returns the entries rebuilt and the compressed bytes that
// crossed the link, then reopens the data path. Recovering a device that
// has not failed is an error.
func (d *Device) Recover() (entries int, rebuilt int64, err error) {
	// Serializing on migMu keeps Free/Retarget/ApplyReprofile out of the
	// rebuild window; the data path is still down (failed clears last), so
	// no entry changes underneath the spans.
	d.migMu.Lock()
	defer d.migMu.Unlock()
	if !d.failed.Load() {
		return 0, 0, fmt.Errorf("core: Recover on a device that has not failed")
	}
	for _, a := range d.Allocations() {
		s := &rebuildSpan{d: d, a: a}
		_ = d.span.run(a.EntryCount, s) // rebuildSpan has no error path
		entries += int(s.entries.Load())
		rebuilt += s.bytes.Load()
	}
	d.failed.Store(false)
	return entries, rebuilt, nil
}
