package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"buddy/internal/compress"
	"buddy/internal/gen"
	"buddy/internal/memory"
)

func fillEntries(entries int, gens []gen.Generator, seed uint64) []byte {
	data := make([]byte, entries*EntryBytes)
	r := gen.NewRNG(seed, 1)
	for e := 0; e < entries; e++ {
		gens[e%len(gens)].Fill(data[e*EntryBytes:(e+1)*EntryBytes], r)
	}
	return data
}

func TestFreeReturnsReservationsOnEveryTier(t *testing.T) {
	overflows := map[string]func() Backend{
		"carveout": func() Backend { return nil }, // default NVLink carve-out
		"host-um":  func() Backend { return NewHostBackend(0, 1<<20) },
	}
	for name, mk := range overflows {
		t.Run(name, func(t *testing.T) {
			d := NewDevice(Config{DeviceBytes: 1 << 20, Overflow: mk()})
			var allocs []*Allocation
			for i, target := range AllRatios {
				a, err := d.Malloc(fmt.Sprintf("a%d", i), 31<<10, target)
				if err != nil {
					t.Fatal(err)
				}
				allocs = append(allocs, a)
			}
			if d.DeviceUsed() == 0 || d.BuddyUsed() == 0 {
				t.Fatal("allocations should reserve bytes on both tiers")
			}
			for _, a := range allocs {
				if err := d.Free(a); err != nil {
					t.Fatal(err)
				}
			}
			if du, bu := d.DeviceUsed(), d.BuddyUsed(); du != 0 || bu != 0 {
				t.Errorf("after free-all: device=%d buddy=%d, want 0/0", du, bu)
			}
			if n := len(d.Allocations()); n != 0 {
				t.Errorf("free-all left %d allocations listed", n)
			}
		})
	}
}

func TestFreedAllocationErrorsTyped(t *testing.T) {
	d := newTestDevice(1 << 20)
	a, err := d.Malloc("gone", 8<<10, Target2x)
	if err != nil {
		t.Fatal(err)
	}
	other, err := d.Malloc("other", 8<<10, Target2x)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil { // io.Closer path
		t.Fatal(err)
	}
	if a.Freed() != true {
		t.Error("Freed() should report true after Close")
	}
	buf := make([]byte, EntryBytes)
	if err := a.WriteEntry(0, buf); !errors.Is(err, ErrFreed) {
		t.Errorf("WriteEntry after free = %v, want ErrFreed", err)
	}
	if err := a.ReadEntry(0, buf); !errors.Is(err, ErrFreed) {
		t.Errorf("ReadEntry after free = %v, want ErrFreed", err)
	}
	if _, err := a.WriteAt(buf, 0); !errors.Is(err, ErrFreed) {
		t.Errorf("WriteAt after free = %v, want ErrFreed", err)
	}
	if _, err := a.ReadAt(buf, 0); !errors.Is(err, ErrFreed) {
		t.Errorf("ReadAt after free = %v, want ErrFreed", err)
	}
	if _, err := Memcpy(other, a, 128); !errors.Is(err, ErrFreed) {
		t.Errorf("Memcpy from freed source = %v, want ErrFreed", err)
	}
	if err := d.Free(a); !errors.Is(err, ErrFreed) {
		t.Errorf("double Free = %v, want ErrFreed", err)
	}
	// The survivor is untouched.
	if err := other.WriteEntry(0, buf); err != nil {
		t.Errorf("free must not disturb other allocations: %v", err)
	}
	// Free rejects foreign allocations.
	d2 := newTestDevice(1 << 20)
	if err := d2.Free(other); err == nil {
		t.Error("Free on the wrong device should error")
	}
}

func TestFreeMakesEntryTableReusable(t *testing.T) {
	d := newTestDevice(1 << 20)
	grown := -1
	// A steady malloc/free cycle of one shape must not grow the global
	// entry table: the retired region is a hole the next Malloc reuses.
	for i := 0; i < 16; i++ {
		a, err := d.Malloc("cycle", 64<<10, Target2x)
		if err != nil {
			t.Fatal(err)
		}
		data := fillEntries(a.EntryCount, []gen.Generator{gen.Ramp{Step: 3}}, uint64(i))
		if _, err := a.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if _, err := a.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("cycle %d: round-trip mismatch on a reused region", i)
		}
		if err := d.Free(a); err != nil {
			t.Fatal(err)
		}
		d.mu.RLock()
		total := d.totalEntry
		d.mu.RUnlock()
		if grown == -1 {
			grown = total
		} else if total != grown {
			t.Fatalf("cycle %d: entry table grew %d -> %d despite free", i, grown, total)
		}
	}
	// Reused slots must read as zero for the new tenant, not leak the old
	// tenant's contents.
	a, err := d.Malloc("fresh", 64<<10, Target2x)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, EntryBytes)
	if err := a.ReadEntry(3, got); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("reused region leaked the previous tenant's data")
		}
	}
}

func TestRetargetPreservesContentsAndAccounting(t *testing.T) {
	d := newTestDevice(4 << 20)
	// Odd entry count (801) with an unaligned tail: pad slot in play.
	a, err := d.Malloc("live", 801*EntryBytes-37, Target2x)
	if err != nil {
		t.Fatal(err)
	}
	if a.EntryCount%2 == 0 {
		t.Fatalf("test wants an odd entry count, got %d", a.EntryCount)
	}
	gens := []gen.Generator{
		gen.Zeros{}, gen.Ramp{Step: 3}, gen.Noisy64{NoiseBits: 8, HiStep: 1}, gen.Random{},
	}
	data := fillEntries(a.EntryCount, gens, 11)[:a.Size()]
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	for _, target := range []TargetRatio{Target4x, Target16x, Target1x, Target4by3x, Target2x} {
		moved, err := d.Retarget(a, target)
		if err != nil {
			t.Fatalf("retarget to %s: %v", target, err)
		}
		if moved <= 0 {
			t.Errorf("retarget to %s moved %d bytes, want > 0", target, moved)
		}
		if got := a.Target(); got != target {
			t.Fatalf("target after retarget = %s, want %s", got, target)
		}
		got := make([]byte, len(data))
		if _, err := a.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("contents corrupted by retarget to %s", target)
		}
		// Reservations must equal a fresh Malloc at the new target.
		wantDev := int64(a.EntryCount) * int64(target.DeviceBytes())
		wantBud := int64(a.EntryCount) * int64(target.BuddySlotBytes())
		if du, bu := d.DeviceUsed(), d.BuddyUsed(); du != wantDev || bu != wantBud {
			t.Errorf("after retarget to %s: device=%d buddy=%d, want %d/%d",
				target, du, bu, wantDev, wantBud)
		}
	}
	// Retarget to the current target is a no-op.
	if moved, err := d.Retarget(a, Target2x); err != nil || moved != 0 {
		t.Errorf("no-op retarget = (%d, %v), want (0, nil)", moved, err)
	}
	if err := d.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Retarget(a, Target4x); !errors.Is(err, ErrFreed) {
		t.Errorf("retarget after free = %v, want ErrFreed", err)
	}
	if du, bu := d.DeviceUsed(), d.BuddyUsed(); du != 0 || bu != 0 {
		t.Errorf("after final free: device=%d buddy=%d, want 0/0", du, bu)
	}
}

func TestRetargetOutOfMemoryLeavesAllocationUntouched(t *testing.T) {
	// Device sized so the 2x layout fits but holding both the 2x and the 1x
	// layout at once does not: Retarget must fail cleanly.
	d := newTestDevice(96 << 10)
	a, err := d.Malloc("tight", 128<<10, Target2x) // 64 KiB device reservation
	if err != nil {
		t.Fatal(err)
	}
	data := fillEntries(a.EntryCount, []gen.Generator{gen.Ramp{Step: 5}}, 3)
	if _, err := a.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Retarget(a, Target1x); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("retarget into a full device = %v, want ErrOutOfMemory", err)
	}
	if got := a.Target(); got != Target2x {
		t.Errorf("failed retarget changed the target to %s", got)
	}
	if du := d.DeviceUsed(); du != 64<<10 {
		t.Errorf("failed retarget leaked device reservation: used %d, want %d", du, 64<<10)
	}
	got := make([]byte, len(data))
	if _, err := a.ReadAt(got, 0); err != nil || !bytes.Equal(got, data) {
		t.Error("failed retarget disturbed contents")
	}
}

func TestApplyReprofileFromPlan(t *testing.T) {
	const entries = 512
	bpc := compress.NewBPC()
	// The incompressible ballast keeps the aggregate ratio under the 4x
	// carve-out cap so the zero-page region can actually take 16x.
	ballast := fillEntries(entries, []gen.Generator{gen.Random{}}, 9)
	mkSnap := func(g gen.Generator, seed uint64) *memory.Snapshot {
		return &memory.Snapshot{Allocations: []*memory.Allocation{
			{Name: "w", Data: fillEntries(entries, []gen.Generator{g}, seed)},
			{Name: "ballast", Data: ballast},
		}}
	}
	early := mkSnap(gen.Zeros{}, 1)                         // mostly-zero: profiles to 16x
	late := mkSnap(gen.Noisy64{NoiseBits: 8, HiStep: 1}, 2) // 2-sector data: profiles to 2x

	initial := Profile([]*memory.Snapshot{early}, bpc, FinalDesign())
	targets := initial.Targets()
	if targets["w"] != Target16x || targets["ballast"] != Target1x {
		t.Fatalf("early profile chose %s/%s, want 16x/1x", targets["w"], targets["ballast"])
	}

	d := newTestDevice(1 << 20)
	a, err := d.Malloc("w", entries*EntryBytes, targets["w"])
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Malloc("ballast", entries*EntryBytes, targets["ballast"])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.WriteAt(early.Allocations[0].Data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.WriteAt(ballast, 0); err != nil {
		t.Fatal(err)
	}
	// The workload drifts: the same region now holds the late data, and the
	// stale 16x target overflows every entry.
	if _, err := a.WriteAt(late.Allocations[0].Data, 0); err != nil {
		t.Fatal(err)
	}

	plan := PlanReprofile(targets, []*memory.Snapshot{late}, bpc, FinalDesign())
	if len(plan.Decisions) != 1 || plan.Decisions[0].New != Target2x {
		t.Fatalf("plan = %+v, want one 16x->2x decision", plan.Decisions)
	}
	if plan.BuddyFracAfter >= plan.BuddyFracBefore {
		t.Fatalf("plan predicts no buddy-access win: %.3f -> %.3f",
			plan.BuddyFracBefore, plan.BuddyFracAfter)
	}
	if !d.ReprofileWorthwhile(plan) {
		t.Fatal("plan should amortize within the default horizon")
	}
	if tiny := NewDevice(Config{DeviceBytes: 1 << 20, ReprofileHorizon: 1}); tiny.ReprofileWorthwhile(plan) {
		t.Error("a 1-access horizon can never repay a migration")
	}

	before := d.Traffic()
	st, err := d.ApplyReprofile(plan)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 1 || st.Skipped != 0 {
		t.Fatalf("stats = %+v, want 1 applied", st)
	}
	if got := a.Target(); got != Target2x {
		t.Fatalf("target after ApplyReprofile = %s, want 2x", got)
	}
	// Actual migration cost matches the plan's estimate (both count stored
	// bytes: 8 per zero-class entry, 32 per sector otherwise).
	if diff := st.MigratedBytes - plan.TotalMigrationBytes; diff < -1 || diff > 1 {
		t.Errorf("migrated %d bytes, plan estimated %d", st.MigratedBytes, plan.TotalMigrationBytes)
	}
	if got := d.Traffic().MigrationBytes - before.MigrationBytes; int64(got) != st.MigratedBytes {
		t.Errorf("Traffic.MigrationBytes moved %d, stats say %d", got, st.MigratedBytes)
	}
	// Accounting equals fresh Mallocs at the new targets (w at 2x, the
	// untouched ballast at 1x).
	wantDev := int64(entries)*64 + int64(entries)*128
	wantBud := int64(entries) * 64
	if du, bu := d.DeviceUsed(), d.BuddyUsed(); du != wantDev || bu != wantBud {
		t.Errorf("after reprofile: device=%d buddy=%d, want %d/%d", du, bu, wantDev, wantBud)
	}
	got := make([]byte, entries*EntryBytes)
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, late.Allocations[0].Data) {
		t.Error("contents corrupted by ApplyReprofile")
	}
	// A stale plan (targets no longer match) degrades to skips.
	st2, err := d.ApplyReprofile(plan)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Applied != 0 || st2.Skipped != 1 {
		t.Errorf("stale plan stats = %+v, want 1 skipped", st2)
	}
	// The new placement actually reduces buddy traffic on this data.
	d.ResetTraffic()
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if f := d.Traffic().BuddyAccessFraction(); f != 0 {
		t.Errorf("2-sector data at 2x should never touch buddy, frac=%.3f", f)
	}
}

// TestMigrationRaceStress hammers byte-addressed reads, writes and Memcpy
// on an allocation while Retarget migrates it back and forth between
// layouts. Run under -race this is the concurrency proof for live
// migration; after quiesce, contents must match the final writes
// byte-for-byte and every tier's Reserve/Release accounting must be exact.
func TestMigrationRaceStress(t *testing.T) {
	d := newTestDevice(8 << 20)
	const entries = 1024
	a, err := d.Malloc("hot", entries*EntryBytes, Target2x)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := d.Malloc("scratch", entries*EntryBytes, Target1x)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	const iters = 24
	perWriter := entries / writers
	phases := []gen.Generator{
		gen.Zeros{}, gen.Noisy64{NoiseBits: 8, HiStep: 1}, gen.Random{}, gen.Ramp{Step: 7},
	}
	// Each writer owns a disjoint entry range and cycles the data's
	// compressibility; the final iteration's bytes are the expected state.
	final := make([]byte, entries*EntryBytes)
	var writerWG, bgWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			lo := int64(w*perWriter) * EntryBytes
			span := perWriter * EntryBytes
			for i := 0; i < iters; i++ {
				data := fillEntries(perWriter, []gen.Generator{phases[(w+i)%len(phases)]}, uint64(w*1000+i))
				if i == iters-1 {
					copy(final[lo:], data)
				}
				if _, err := a.WriteAt(data[:span], lo); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Readers and Memcpy traffic across the whole allocation.
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		bgWG.Add(1)
		go func(r int) {
			defer bgWG.Done()
			buf := make([]byte, 3000)
			for off := int64(r * 511); ; off = (off + 4093) % (entries*EntryBytes - 3000) {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := a.ReadAt(buf, off); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	bgWG.Add(1)
	go func() {
		defer bgWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := Memcpy(scratch, a, entries*EntryBytes); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// The migration loop runs concurrently with all of the above.
	for _, target := range []TargetRatio{Target4x, Target1x, Target16x, Target4by3x, Target2x} {
		if _, err := d.Retarget(a, target); err != nil {
			t.Error(err)
		}
	}
	// Let the writers finish, then quiesce the readers and the copier.
	writerWG.Wait()
	close(stop)
	bgWG.Wait()

	if got := a.Target(); got != Target2x {
		t.Fatalf("final target = %s, want 2x", got)
	}
	got := make([]byte, entries*EntryBytes)
	if _, err := a.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < entries; e++ {
		if !bytes.Equal(got[e*EntryBytes:(e+1)*EntryBytes], final[e*EntryBytes:(e+1)*EntryBytes]) {
			t.Fatalf("entry %d corrupted by concurrent migration", e)
		}
	}
	// Exact accounting: reservations equal fresh Mallocs of the two live
	// allocations, and free-all returns both tiers to zero.
	wantDev := int64(entries)*int64(Target2x.DeviceBytes()) + int64(entries)*int64(Target1x.DeviceBytes())
	wantBud := int64(entries)*int64(Target2x.BuddySlotBytes()) + int64(entries)*int64(Target1x.BuddySlotBytes())
	if du, bu := d.DeviceUsed(), d.BuddyUsed(); du != wantDev || bu != wantBud {
		t.Errorf("post-stress reservations device=%d buddy=%d, want %d/%d", du, bu, wantDev, wantBud)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := scratch.Close(); err != nil {
		t.Fatal(err)
	}
	if du, bu := d.DeviceUsed(), d.BuddyUsed(); du != 0 || bu != 0 {
		t.Errorf("leaked or double-released bytes: device=%d buddy=%d", du, bu)
	}
}

// TestSplitBytesProperty checks the placement split for every target ratio
// across sector counts well past the architectural 0..4 range: the split
// always decomposes the entry's access bytes exactly, never exceeds the
// per-entry device budget, agrees with OverflowSectors, and is monotonic in
// the sector count.
func TestSplitBytesProperty(t *testing.T) {
	for _, target := range AllRatios {
		prevDev, prevBud := -1, -1
		for s := 0; s <= 32; s++ {
			dev, bud := splitBytes(target, s)
			if dev < 0 || bud < 0 {
				t.Fatalf("%s/%d: negative split %d/%d", target, s, dev, bud)
			}
			// Total decomposition: the 16x mode reads its 8 B metadata word
			// plus the whole compressed entry from buddy; every other mode
			// moves whole sectors with a one-sector device minimum.
			want := max(s, 1) * 32
			if target == Target16x {
				want = 8 + s*32
			}
			if dev+bud != want {
				t.Errorf("%s/%d: dev+buddy = %d, want %d", target, s, dev+bud, want)
			}
			if dev > target.DeviceBytes() {
				t.Errorf("%s/%d: device bytes %d exceed per-entry budget %d",
					target, s, dev, target.DeviceBytes())
			}
			if bud != target.OverflowSectors(s)*32 {
				t.Errorf("%s/%d: buddy bytes %d disagree with OverflowSectors %d",
					target, s, bud, target.OverflowSectors(s)*32)
			}
			if dev < prevDev || bud < prevBud {
				t.Errorf("%s/%d: split not monotonic (%d/%d after %d/%d)",
					target, s, dev, bud, prevDev, prevBud)
			}
			prevDev, prevBud = dev, bud
		}
	}
}
