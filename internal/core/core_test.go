package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"buddy/internal/compress"
	"buddy/internal/gen"
)

func TestTargetRatioTable(t *testing.T) {
	cases := []struct {
		r       TargetRatio
		sectors int
		devB    int
		buddyB  int
		value   float64
	}{
		{Target1x, 4, 128, 0, 1},
		{Target4by3x, 3, 96, 32, 4.0 / 3.0},
		{Target2x, 2, 64, 64, 2},
		{Target4x, 1, 32, 96, 4},
		{Target16x, 0, 8, 128, 16},
	}
	for _, c := range cases {
		if c.r.DeviceSectors() != c.sectors {
			t.Errorf("%s: DeviceSectors=%d want %d", c.r, c.r.DeviceSectors(), c.sectors)
		}
		if c.r.DeviceBytes() != c.devB {
			t.Errorf("%s: DeviceBytes=%d want %d", c.r, c.r.DeviceBytes(), c.devB)
		}
		if c.r.BuddySlotBytes() != c.buddyB {
			t.Errorf("%s: BuddySlotBytes=%d want %d", c.r, c.r.BuddySlotBytes(), c.buddyB)
		}
		if c.r.Value() != c.value {
			t.Errorf("%s: Value=%f want %f", c.r, c.r.Value(), c.value)
		}
	}
}

func TestTargetRatioOverflow(t *testing.T) {
	if Target2x.OverflowSectors(2) != 0 || Target2x.OverflowSectors(3) != 1 ||
		Target2x.OverflowSectors(4) != 2 {
		t.Error("2x overflow sector math wrong")
	}
	if Target16x.OverflowSectors(0) != 0 || Target16x.OverflowSectors(3) != 3 {
		t.Error("16x overflow sector math wrong")
	}
	if !Target1x.Fits(4) {
		t.Error("1x must fit any entry")
	}
}

func TestMetadataStorePacking(t *testing.T) {
	m := NewMetadataStore(100)
	for i := 0; i < 100; i++ {
		m.Set(i, i%5)
	}
	for i := 0; i < 100; i++ {
		if got := m.Get(i); got != i%5 {
			t.Fatalf("entry %d: got %d want %d", i, got, i%5)
		}
	}
	if m.Bytes() != 50 {
		t.Errorf("100 entries should pack into 50 bytes, got %d", m.Bytes())
	}
	// §3.2: 0.4% storage overhead.
	if f := m.OverheadFraction(); f < 0.0035 || f > 0.0045 {
		t.Errorf("metadata overhead %.4f, want ~0.0039", f)
	}
}

func TestPTERoundTrip(t *testing.T) {
	f := func(comp bool, target uint8, off uint32) bool {
		p := PTE{Compressed: comp, Target: TargetRatio(target % 5), BuddyPageOffset: off & 0xFFFFF}
		return UnpackPTE(p.Pack()) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMetadataCachePrefetchNeighbours(t *testing.T) {
	mc := NewMetadataCache(64<<10, 8, 4)
	if mc.Access(0) {
		t.Fatal("cold metadata access should miss")
	}
	// The same 32 B line covers 64 entries: all neighbours must hit.
	for e := 1; e < EntriesPerMetadataLine; e++ {
		if !mc.Access(e) {
			t.Fatalf("entry %d should share the line with entry 0", e)
		}
	}
	if mc.Access(EntriesPerMetadataLine) {
		t.Fatal("entry 64 is a new line and should miss")
	}
}

func newTestDevice(devBytes int64) *Device {
	return NewDevice(Config{DeviceBytes: devBytes})
}

func TestMallocAccounting(t *testing.T) {
	d := newTestDevice(1 << 20)
	a, err := d.Malloc("x", 512<<10, Target2x)
	if err != nil {
		t.Fatal(err)
	}
	if a.EntryCount != 4096 {
		t.Fatalf("entries=%d want 4096", a.EntryCount)
	}
	if d.DeviceUsed() != 256<<10 {
		t.Fatalf("device used %d, want 256 KiB", d.DeviceUsed())
	}
	if d.BuddyUsed() != 256<<10 {
		t.Fatalf("buddy used %d, want 256 KiB", d.BuddyUsed())
	}
	// A 2x-compressed 2 MiB allocation uses 1 MiB device: the device now has
	// 768 KiB free, so this must fail.
	if _, err := d.Malloc("big", 2<<20, Target2x); err == nil {
		t.Fatal("expected out-of-memory")
	}
	// Capacity win: at 4x, 3 MiB more fits (768 KiB device).
	if _, err := d.Malloc("big4x", 3<<20, Target4x); err != nil {
		t.Fatalf("4x allocation should fit: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := newTestDevice(4 << 20)
	a, err := d.Malloc("data", 64<<10, Target2x)
	if err != nil {
		t.Fatal(err)
	}
	gens := []gen.Generator{
		gen.Zeros{}, gen.Ramp{Step: 3}, gen.Noisy64{NoiseBits: 8, HiStep: 1},
		gen.Random{}, gen.Weights32{Sigma: 0.1, QuantBits: 12},
	}
	r := gen.NewRNG(1, 1)
	entry := make([]byte, 128)
	got := make([]byte, 128)
	for i := 0; i < a.EntryCount; i++ {
		gens[i%len(gens)].Fill(entry, r)
		if err := a.WriteEntry(i, entry); err != nil {
			t.Fatal(err)
		}
		if err := a.ReadEntry(i, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(entry, got) {
			t.Fatalf("entry %d round-trip mismatch", i)
		}
	}
}

func TestUnwrittenEntriesReadZero(t *testing.T) {
	d := newTestDevice(1 << 20)
	a, _ := d.Malloc("fresh", 8<<10, Target4x)
	got := make([]byte, 128)
	if err := a.ReadEntry(5, got); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten entry should read as zero")
		}
	}
}

// TestAddressesStableUnderCompressibilityChange is the paper's headline
// design property (§3.3): as an entry's data changes compressibility, its
// device and buddy addresses never move and no other entry is touched.
func TestAddressesStableUnderCompressibilityChange(t *testing.T) {
	d := newTestDevice(1 << 20)
	a, _ := d.Malloc("churn", 64<<10, Target2x)
	devBefore := make([]uint64, a.EntryCount)
	budBefore := make([]uint64, a.EntryCount)
	for i := 0; i < a.EntryCount; i++ {
		devBefore[i] = a.DeviceAddress(i)
		budBefore[i] = a.BuddyAddress(i)
	}
	entry := make([]byte, 128)
	phases := []gen.Generator{
		gen.Zeros{},                          // 0 sectors
		gen.Noisy64{NoiseBits: 8, HiStep: 1}, // 2 sectors: fits 2x
		gen.Random{},                         // 4 sectors: overflows
		gen.Ramp{Step: 5},                    // back to tiny
	}
	r := gen.NewRNG(9, 1)
	for _, g := range phases {
		for i := 0; i < a.EntryCount; i += 7 {
			g.Fill(entry, r)
			if err := a.WriteEntry(i, entry); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < a.EntryCount; i++ {
			if a.DeviceAddress(i) != devBefore[i] || a.BuddyAddress(i) != budBefore[i] {
				t.Fatalf("entry %d moved after compressibility change", i)
			}
		}
	}
}

func TestTrafficSplit(t *testing.T) {
	d := newTestDevice(1 << 20)
	a, _ := d.Malloc("traffic", 8<<10, Target2x)
	entry := make([]byte, 128)

	// Compressible entry: no buddy traffic.
	gen.Ramp{Step: 2}.Fill(entry, gen.NewRNG(1, 1))
	if err := a.WriteEntry(0, entry); err != nil {
		t.Fatal(err)
	}
	tr := d.Traffic()
	if tr.BuddyWriteBytes != 0 {
		t.Errorf("compressible write produced buddy traffic: %d", tr.BuddyWriteBytes)
	}

	// Incompressible entry under 2x: 2 sectors device + 2 sectors buddy.
	gen.Random{}.Fill(entry, gen.NewRNG(2, 1))
	if err := a.WriteEntry(1, entry); err != nil {
		t.Fatal(err)
	}
	tr2 := d.Traffic()
	if got := tr2.BuddyWriteBytes - tr.BuddyWriteBytes; got != 64 {
		t.Errorf("incompressible write buddy bytes = %d, want 64", got)
	}
	if tr2.BuddyAccesses != 1 {
		t.Errorf("buddy accesses = %d, want 1", tr2.BuddyAccesses)
	}

	got := make([]byte, 128)
	if err := a.ReadEntry(1, got); err != nil {
		t.Fatal(err)
	}
	tr3 := d.Traffic()
	if rb := tr3.BuddyReadBytes; rb != 64 {
		t.Errorf("buddy read bytes = %d, want 64", rb)
	}
	if f := tr3.BuddyAccessFraction(); f <= 0 || f >= 1 {
		t.Errorf("buddy access fraction = %f, want within (0,1)", f)
	}
}

func TestZeroPageTraffic(t *testing.T) {
	d := newTestDevice(1 << 20)
	a, _ := d.Malloc("zp", 8<<10, Target16x)
	entry := make([]byte, 128)
	if err := a.WriteEntry(0, entry); err != nil { // all zero
		t.Fatal(err)
	}
	tr := d.Traffic()
	if tr.DeviceWriteBytes != 8 || tr.BuddyWriteBytes != 0 {
		t.Errorf("zero entry at 16x: dev=%d buddy=%d, want 8/0", tr.DeviceWriteBytes, tr.BuddyWriteBytes)
	}
	// Non-zero data overflows entirely to buddy.
	gen.Random{}.Fill(entry, gen.NewRNG(3, 1))
	if err := a.WriteEntry(1, entry); err != nil {
		t.Fatal(err)
	}
	tr2 := d.Traffic()
	if tr2.BuddyWriteBytes != 128 {
		t.Errorf("incompressible at 16x buddy bytes = %d, want 128", tr2.BuddyWriteBytes)
	}
	got := make([]byte, 128)
	if err := a.ReadEntry(1, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, entry) {
		t.Error("16x overflow entry must still round-trip")
	}
}

func TestMetadataCacheMissTraffic(t *testing.T) {
	d := newTestDevice(8 << 20)
	a, _ := d.Malloc("meta", 4<<20, Target1x)
	entry := make([]byte, 128)
	// Touch entries one metadata line apart: every access misses.
	n := 0
	for i := 0; i+EntriesPerMetadataLine < a.EntryCount; i += EntriesPerMetadataLine * 16 {
		if err := a.WriteEntry(i, entry); err != nil {
			t.Fatal(err)
		}
		n++
	}
	tr := d.Traffic()
	if tr.MetadataFillBytes != uint64(n*MetadataLineBytes) {
		t.Errorf("metadata fills = %d bytes, want %d", tr.MetadataFillBytes, n*MetadataLineBytes)
	}
	if d.MetadataCacheHitRate() != 0 {
		t.Errorf("strided metadata accesses should all miss, hit rate %.2f", d.MetadataCacheHitRate())
	}
}

func TestCompressionRatioAccounting(t *testing.T) {
	d := newTestDevice(1 << 20)
	if _, err := d.Malloc("a", 128<<10, Target2x); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Malloc("b", 128<<10, Target4x); err != nil {
		t.Fatal(err)
	}
	// a: 128K/2 = 64K device; b: 128K/4 = 32K device; ratio = 256/96.
	want := 256.0 / 96.0
	if got := d.CompressionRatio(); got < want-0.01 || got > want+0.01 {
		t.Errorf("compression ratio %.3f, want %.3f", got, want)
	}
}

func TestQuickDeviceRoundTrip(t *testing.T) {
	d := newTestDevice(4 << 20)
	a, _ := d.Malloc("q", 64<<10, Target2x)
	idx := 0
	f := func(raw [128]byte) bool {
		i := idx % a.EntryCount
		idx++
		if err := a.WriteEntry(i, raw[:]); err != nil {
			return false
		}
		got := make([]byte, 128)
		if err := a.ReadEntry(i, got); err != nil {
			return false
		}
		return bytes.Equal(got, raw[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeviceWithAllCompressors(t *testing.T) {
	for _, c := range compress.Registry() {
		d := NewDevice(Config{DeviceBytes: 1 << 20, Codec: c})
		a, err := d.Malloc("x", 16<<10, Target2x)
		if err != nil {
			t.Fatal(err)
		}
		entry := make([]byte, 128)
		got := make([]byte, 128)
		r := gen.NewRNG(4, 2)
		for i := 0; i < 32; i++ {
			gen.Noisy32{NoiseBits: uint(i % 24), SmoothStep: 3}.Fill(entry, r)
			if err := a.WriteEntry(i, entry); err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
			if err := a.ReadEntry(i, got); err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
			if !bytes.Equal(entry, got) {
				t.Fatalf("%s: round-trip mismatch", c.Name())
			}
		}
	}
}
