package core

import (
	"errors"
	"fmt"
	"slices"
	"sync/atomic"
)

// Allocation lifecycle and live target-ratio migration (the §3.4 extension:
// "the target ratios can be periodically updated for long running
// applications"). Free retires an allocation — reservations return to their
// tiers, the entry-table region becomes a reusable hole, and every later
// I/O fails with ErrFreed. Retarget re-lays-out a live allocation under a
// new target ratio while reader/writer traffic continues, and
// ApplyReprofile drives Retarget from a checkpoint-time ReprofilePlan.
//
// Concurrency scheme: control-plane operations serialize on dev.migMu
// (lock order migMu -> mu -> entry shards). A migration installs a
// per-allocation epoch — the mig pointer with its moved[] bitmap — under
// dev.mu held exclusively, then streams entries to the new layout on the
// same GOMAXPROCS-bounded span pool as the batch data path. Each entry
// moves under its shard lock, the same lock every reader and writer takes,
// and the shard key comes from the immutable shardBase rather than the
// layout, so an in-flight WriteAt simply lands in whichever layout owns the
// entry when it commits. The final layout swap happens under dev.mu held
// exclusively, after which the old region's reservations are released and
// its slots become a hole.

// ErrFreed is returned (wrapped) by every I/O operation on an allocation
// that has been released with Free or Close.
var ErrFreed = errors.New("core: allocation freed")

// region is a contiguous reservation in the three allocation spaces: entry
// slots in the global entry table, bytes in the device slab, and bytes in
// the buddy carve-out. Regions always start at an even slot index and span
// an even slot count so no metadata byte straddles two regions.
type region struct {
	firstEntry int // even
	slots      int // even; >= the allocation's EntryCount
	deviceOff  int64
	devBytes   int64
	buddyOff   int64
	buddyBytes int64
}

// regionSlots rounds an entry count up to the even slot count its region
// occupies (see region).
func regionSlots(entries int) int { return entries + entries%2 }

// migration is the live-migration epoch of one allocation: the destination
// layout plus the per-entry handoff bitmap. moved[i] is guarded by entry
// i's shard lock; the struct itself is installed and cleared under dev.mu
// held exclusively.
type migration struct {
	target TargetRatio
	reg    region
	moved  []bool
	bytes  atomic.Int64 // stored bytes re-packed so far
}

// migrateSpan is the spanRunner that streams one allocation's entries to
// its migration's new layout across the device's span-worker pool.
type migrateSpan struct {
	d   *Device
	a   *Allocation
	mig *migration
}

func (s *migrateSpan) runSpan(lo, hi int) error {
	var moved int64
	for i := lo; i < hi; i++ {
		moved += s.d.migrateEntry(s.a, s.mig, i)
	}
	s.mig.bytes.Add(moved)
	return nil
}

// grabRegion hands out a region of the given shape, reusing the first
// retired hole that fits in all three spaces and growing the entry table
// only when none does. Caller must hold d.mu exclusively.
func (d *Device) grabRegion(slots int, devBytes, buddyBytes int64) region {
	for i, h := range d.holes {
		if h.slots >= slots && h.devBytes >= devBytes && h.buddyBytes >= buddyBytes {
			r := region{h.firstEntry, slots, h.deviceOff, devBytes, h.buddyOff, buddyBytes}
			rem := region{
				firstEntry: h.firstEntry + slots,
				slots:      h.slots - slots,
				deviceOff:  h.deviceOff + devBytes,
				devBytes:   h.devBytes - devBytes,
				buddyOff:   h.buddyOff + buddyBytes,
				buddyBytes: h.buddyBytes - buddyBytes,
			}
			if rem.slots >= 2 {
				d.holes[i] = rem
			} else {
				// A slot-less remainder can never host an allocation; drop
				// it (address space is modeled, capacity is metered by the
				// backends, so nothing real leaks).
				d.holes = slices.Delete(d.holes, i, i+1)
			}
			return r
		}
	}
	r := region{d.totalEntry, slots, d.deviceOff, devBytes, d.buddyOff, buddyBytes}
	d.totalEntry += slots
	d.deviceOff += devBytes
	d.buddyOff += buddyBytes
	d.streams = append(d.streams, make([][]byte, slots)...)
	d.meta = growMetadata(d.meta, d.totalEntry)
	return r
}

// freeRegion returns a region to the hole list, coalescing with an adjacent
// hole when the two are contiguous in all three spaces. Caller must hold
// d.mu exclusively.
func (d *Device) freeRegion(r region) {
	for i := range d.holes {
		h := &d.holes[i]
		if h.firstEntry+h.slots == r.firstEntry &&
			h.deviceOff+h.devBytes == r.deviceOff &&
			h.buddyOff+h.buddyBytes == r.buddyOff {
			h.slots += r.slots
			h.devBytes += r.devBytes
			h.buddyBytes += r.buddyBytes
			return
		}
		if r.firstEntry+r.slots == h.firstEntry &&
			r.deviceOff+r.devBytes == h.deviceOff &&
			r.buddyOff+r.buddyBytes == h.buddyOff {
			h.firstEntry = r.firstEntry
			h.deviceOff = r.deviceOff
			h.buddyOff = r.buddyOff
			h.slots += r.slots
			h.devBytes += r.devBytes
			h.buddyBytes += r.buddyBytes
			return
		}
	}
	d.holes = append(d.holes, r)
}

// Free releases an allocation: its device and buddy reservations return to
// their tiers, its metadata is retired, its entry-table region becomes
// reusable by later Mallocs, and every subsequent I/O on the allocation
// fails with an error wrapping ErrFreed. Freeing twice is an error. An
// in-flight ReadAt/WriteAt may complete its current entries; entries it
// attempts after Free fail like any other I/O.
func (d *Device) Free(a *Allocation) error {
	if a == nil || a.dev != d {
		return fmt.Errorf("core: Free of an allocation not owned by this device")
	}
	// Serializing against Retarget/ApplyReprofile guarantees no migration
	// is in flight on a while it is dismantled.
	d.migMu.Lock()
	defer d.migMu.Unlock()

	d.mu.Lock()
	if a.freed {
		d.mu.Unlock()
		return a.errFreed()
	}
	a.freed = true
	for g := a.reg.firstEntry; g < a.reg.firstEntry+a.EntryCount; g++ {
		d.streams[g] = nil
		d.meta.Set(g, 0)
	}
	if i := slices.Index(d.allocs, a); i >= 0 {
		d.allocs = slices.Delete(d.allocs, i, i+1)
	}
	r := a.reg
	d.freeRegion(r)
	d.mu.Unlock()

	d.primary.Release(r.devBytes)
	d.overflow.Release(r.buddyBytes)
	return nil
}

// Close releases the allocation via Device.Free; Allocation satisfies
// io.Closer so regions can sit behind defer and resource-managing helpers.
func (a *Allocation) Close() error { return a.dev.Free(a) }

// storedBytes is the stored footprint of an entry compressed to the given
// sector count: the 8 B zero-page word for class 0, whole sectors
// otherwise. This is the unit both ReprofileDecision.MigrationBytes and
// Traffic.MigrationBytes count, so planned and actual cost compare 1:1.
func storedBytes(sectors int) int {
	if sectors == 0 {
		return 8
	}
	return sectors * 32
}

// errStaleDecision marks a reprofile decision whose allocation changed
// target between planning and application; ApplyReprofile maps it to a
// skip.
var errStaleDecision = errors.New("core: stale reprofile decision")

// Retarget migrates a live allocation to a new target compression ratio
// (§3.4: "requires re-allocating the memory for that page and moving data").
// The new layout's reservations are taken up front (failing with
// ErrOutOfMemory leaves the allocation untouched); entries then stream to
// their new placement on the same GOMAXPROCS-bounded span pool as the batch
// data path, concurrently with reader/writer traffic; finally the layout is
// swapped and the old region's reservations return to their tiers. It
// returns the stored bytes re-packed (the migration cost a ReprofilePlan
// estimates).
func (d *Device) Retarget(a *Allocation, target TargetRatio) (int64, error) {
	return d.retarget(a, target, nil)
}

// retarget is Retarget with an optional expected current target: when
// expectOld is non-nil and the allocation's target no longer matches (a
// concurrent Free/Retarget won the race since the caller looked), it fails
// with errStaleDecision instead of migrating. The check runs under migMu,
// where no control-plane operation can interleave.
func (d *Device) retarget(a *Allocation, target TargetRatio, expectOld *TargetRatio) (int64, error) {
	if a == nil || a.dev != d {
		return 0, fmt.Errorf("core: Retarget of an allocation not owned by this device")
	}
	d.migMu.Lock()
	defer d.migMu.Unlock()

	d.mu.RLock()
	freed, old := a.freed, a.target
	d.mu.RUnlock()
	if freed {
		return 0, a.errFreed()
	}
	if expectOld != nil && old != *expectOld {
		return 0, fmt.Errorf("core: %s is at %s, plan expected %s: %w",
			a.Name, old, *expectOld, errStaleDecision)
	}
	if old == target {
		return 0, nil
	}

	entries := a.EntryCount
	devBytes := int64(entries) * int64(target.DeviceBytes())
	buddyBytes := int64(entries) * int64(target.BuddySlotBytes())
	// Both layouts are reserved while the migration runs; the old bytes
	// return only after the swap, so a failure can always roll forward.
	if err := d.primary.Reserve(devBytes); err != nil {
		return 0, err
	}
	if err := d.overflow.Reserve(buddyBytes); err != nil {
		d.primary.Release(devBytes)
		return 0, err
	}

	mig := &migration{target: target, moved: make([]bool, entries)}
	d.mu.Lock()
	mig.reg = d.grabRegion(regionSlots(entries), devBytes, buddyBytes)
	a.mig = mig
	d.mu.Unlock()

	// Stream every entry to the new layout. The span workers cannot fail
	// here (migrateEntry has no error path), and entries written
	// concurrently after their move land in the new layout directly.
	_ = d.span.run(entries, &migrateSpan{d: d, a: a, mig: mig})

	// Commit: swap the layout and retire the old region.
	d.mu.Lock()
	oldReg := a.reg
	a.target = target
	a.reg = mig.reg
	a.mig = nil
	moved := mig.bytes.Load()
	d.freeRegion(oldReg)
	d.mu.Unlock()

	d.primary.Release(oldReg.devBytes)
	d.overflow.Release(oldReg.buddyBytes)
	return moved, nil
}

// migrateEntry hands one entry from the old layout to the new one and
// returns the stored bytes it moved. The handoff happens under the entry's
// shard lock — the same lock readers and writers take — so it is atomic
// with respect to concurrent I/O; the traffic modeling (read the old
// placement, write the new one) happens after the lock drops, like the
// regular data path.
func (d *Device) migrateEntry(a *Allocation, mig *migration, i int) int64 {
	d.mu.RLock()
	sh := a.shard(i)
	sh.Lock()
	gOld := a.reg.firstEntry + i
	gNew := mig.reg.firstEntry + i
	var devR, budR, devW, budW, stored int
	if !mig.moved[i] {
		if stream := d.streams[gOld]; stream != nil {
			sectors := d.meta.Get(gOld)
			d.streams[gNew] = stream
			d.streams[gOld] = nil
			d.meta.Set(gNew, sectors)
			d.meta.Set(gOld, 0)
			devR, budR = splitBytes(a.target, sectors)
			devW, budW = splitBytes(mig.target, sectors)
			stored = storedBytes(sectors)
		}
		// Never-written entries have nothing to move; flipping the epoch
		// bit is enough to hand them to the new layout.
		mig.moved[i] = true
	}
	sh.Unlock()
	if stored > 0 {
		d.traffic.migrationBytes.Add(uint64(stored))
		d.traffic.deviceReadBytes.Add(uint64(devR))
		d.traffic.deviceWriteBytes.Add(uint64(devW))
		d.primary.Load(gOld, devR)
		d.primary.Store(gNew, devW)
		if budR > 0 {
			d.traffic.buddyReadBytes.Add(uint64(budR))
			d.overflow.Load(gOld, budR)
		}
		if budW > 0 {
			d.traffic.buddyWriteBytes.Add(uint64(budW))
			d.overflow.Store(gNew, budW)
		}
	}
	d.mu.RUnlock()
	return int64(stored)
}

// MigrationStats reports what ApplyReprofile actually did.
type MigrationStats struct {
	// Applied counts decisions executed; Skipped counts decisions whose
	// allocation was gone or whose current target no longer matched the
	// plan's Old (e.g. freed or retargeted since the plan was computed).
	Applied, Skipped int
	// MigratedBytes is the stored compressed bytes re-packed between
	// layouts — the actual counterpart of ReprofilePlan.TotalMigrationBytes.
	MigratedBytes int64
}

// ApplyReprofile executes a checkpoint-time ReprofilePlan on the live
// device: each decision's allocation is migrated from its Old target to its
// New one with Retarget, concurrently with reader/writer traffic.
// Decisions that no longer match the device (allocation freed, or its
// target already changed) are skipped, so a stale plan degrades to a
// partial application rather than corrupting accounting. On error the
// already-applied decisions remain in force.
func (d *Device) ApplyReprofile(plan *ReprofilePlan) (MigrationStats, error) {
	var st MigrationStats
	if plan == nil {
		return st, nil
	}
	for _, dec := range plan.Decisions {
		a := d.allocByName(dec.Name)
		if a == nil {
			st.Skipped++
			continue
		}
		// The stale check happens inside retarget, under migMu: a Free or
		// Retarget racing in after the lookup turns into a skip, never a
		// misdirected migration.
		moved, err := d.retarget(a, dec.New, &dec.Old)
		if errors.Is(err, ErrFreed) || errors.Is(err, errStaleDecision) {
			st.Skipped++
			continue
		}
		if err != nil {
			return st, fmt.Errorf("core: reprofile %s %s->%s: %w", dec.Name, dec.Old, dec.New, err)
		}
		st.Applied++
		st.MigratedBytes += moved
	}
	return st, nil
}

// allocByName returns the first live allocation with the given name, nil if
// none.
func (d *Device) allocByName(name string) *Allocation {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, a := range d.allocs {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Targets returns the name -> target map of the live allocations — the
// ground-truth "current" input for the next PlanReprofile. Read it from the
// device after ApplyReprofile rather than mirroring decisions by hand: a
// skipped decision never applied, so a hand-maintained map would drift.
func (d *Device) Targets() map[string]TargetRatio {
	d.mu.RLock()
	defer d.mu.RUnlock()
	m := make(map[string]TargetRatio, len(d.allocs))
	for _, a := range d.allocs {
		m[a.Name] = a.target
	}
	return m
}

// ReprofileHorizon returns the access horizon the device amortizes
// migrations over (the WithReprofileHorizon option).
func (d *Device) ReprofileHorizon() int64 { return d.cfg.ReprofileHorizon }

// ReprofileWorthwhile reports whether applying the plan pays for itself
// within the device's configured horizon — the go/no-go a long-running
// serving loop asks at every checkpoint before calling ApplyReprofile.
func (d *Device) ReprofileWorthwhile(plan *ReprofilePlan) bool {
	return plan != nil && plan.Worthwhile(d.cfg.ReprofileHorizon)
}
