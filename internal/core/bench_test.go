package core

import (
	"testing"

	"buddy/internal/gen"
)

// Data-path benchmarks for the acceptance criteria of the single-pass
// refactor: BenchmarkWriteEntry must show the double-encode gone (≥2x
// entries/s over the pre-refactor baseline) at 0 B/op steady state, and the
// bulk benchmarks ride the parallel batch primitives — run with
// `-cpu 1,2,4,...` to see the GOMAXPROCS scaling of WriteAt/ReadAt/Memcpy.

const benchBulkBytes = 8 << 20

func benchAlloc(b *testing.B, size int64) *Allocation {
	b.Helper()
	d := NewDevice(Config{DeviceBytes: 16 * size})
	a, err := d.Malloc("bench", size, Target2x)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

func benchData(n int) []byte {
	data := make([]byte, n)
	gen.Noisy64{NoiseBits: 8, HiStep: 1}.Fill(data, gen.NewRNG(2, 1))
	return data
}

// benchEntryShapes is the shape matrix of the entry-path benchmarks,
// mirroring internal/compress: the all-zero short-circuit, sparse fp16
// activations, dense random (raw fallback), a delta-friendly pattern and
// the noisy FP64 field the original single-shape benchmark used.
func benchEntryShapes() []struct {
	name string
	g    gen.Generator
} {
	return []struct {
		name string
		g    gen.Generator
	}{
		{"zeros", gen.Zeros{}},
		{"sparse90", gen.SparseFP16{ZeroFrac: 0.9}},
		{"sparse70", gen.SparseFP16{ZeroFrac: 0.7}},
		{"dense", gen.Random{}},
		{"pattern", gen.Ramp{Start: -100, Step: 3}},
		{"noisy64", gen.Noisy64{NoiseBits: 8, HiStep: 1}},
	}
}

func reportNsPerEntry(b *testing.B) {
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/entry")
}

// benchEntrySize keeps the per-shape warmup (first touch of every entry's
// retained stream buffer) cheap while still cycling through thousands of
// distinct entries.
const benchEntrySize = 1 << 20

// BenchmarkWriteEntry measures the steady-state compressed write path per
// entry shape: one encode per entry, pooled scratch, no allocations. The
// per-shape ns/entry is what BENCH_baseline.json pins.
func BenchmarkWriteEntry(b *testing.B) {
	for _, s := range benchEntryShapes() {
		b.Run(s.name, func(b *testing.B) {
			a := benchAlloc(b, benchEntrySize)
			entry := make([]byte, EntryBytes)
			s.g.Fill(entry, gen.NewRNG(2, 1))
			// First touch allocates each entry's retained stream buffer;
			// steady state starts once every entry has been written.
			for i := 0; i < a.EntryCount; i++ {
				if err := a.WriteEntry(i, entry); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(EntryBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.WriteEntry(i%a.EntryCount, entry); err != nil {
					b.Fatal(err)
				}
			}
			reportNsPerEntry(b)
		})
	}
}

// BenchmarkReadEntry measures the steady-state decompressed read path per
// entry shape.
func BenchmarkReadEntry(b *testing.B) {
	for _, s := range benchEntryShapes() {
		b.Run(s.name, func(b *testing.B) {
			a := benchAlloc(b, benchEntrySize)
			entry := make([]byte, EntryBytes)
			s.g.Fill(entry, gen.NewRNG(2, 1))
			for i := 0; i < a.EntryCount; i++ {
				if err := a.WriteEntry(i, entry); err != nil {
					b.Fatal(err)
				}
			}
			dst := make([]byte, EntryBytes)
			b.SetBytes(EntryBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := a.ReadEntry(i%a.EntryCount, dst); err != nil {
					b.Fatal(err)
				}
			}
			reportNsPerEntry(b)
		})
	}
}

// BenchmarkWriteAtBulk pushes an 8 MB aligned span through WriteAt: the
// aligned interior fans out across the worker pool.
func BenchmarkWriteAtBulk(b *testing.B) {
	a := benchAlloc(b, benchBulkBytes)
	data := benchData(benchBulkBytes)
	b.SetBytes(benchBulkBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.WriteAt(data, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadAtBulk reads the same span back, decoding straight into the
// caller's buffer in parallel.
func BenchmarkReadAtBulk(b *testing.B) {
	a := benchAlloc(b, benchBulkBytes)
	data := benchData(benchBulkBytes)
	if _, err := a.WriteAt(data, 0); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(benchBulkBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.ReadAt(data, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemcpyBulk copies 8 MB allocation-to-allocation through both
// compression pipelines with pooled staging.
func BenchmarkMemcpyBulk(b *testing.B) {
	d := NewDevice(Config{DeviceBytes: 256 << 20})
	src, err := d.Malloc("src", benchBulkBytes, Target2x)
	if err != nil {
		b.Fatal(err)
	}
	dst, err := d.Malloc("dst", benchBulkBytes, Target2x)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := src.WriteAt(benchData(benchBulkBytes), 0); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(benchBulkBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Memcpy(dst, src, benchBulkBytes); err != nil {
			b.Fatal(err)
		}
	}
}
