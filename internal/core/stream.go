package core

import (
	"fmt"

	"buddy/internal/compress"
)

// Entry-stream export and import: the no-decode handoff behind the pool's
// cross-shard live migration. Entries live as framed compressed streams, so
// moving an allocation between devices never needs a decode round-trip when
// both sides speak the same codec — ExportEntry snapshots the source's
// framed bytes and sector class, ImportEntry installs them on the
// destination verbatim. Both sides account the move as migration traffic
// (Traffic.MigrationBytes counts the stored bytes once per device, so a
// clean cross-device move reads equal on source and destination) plus the
// per-tier transfer of the entry's current placement, mirroring the
// within-device migrateEntry.

// ExportEntry appends entry i's committed framed compressed stream to dst
// and returns the extended slice with the entry's sector count, without
// decoding. written is false for a never-written entry (nothing appended;
// such entries read as zero and need no transfer). The source accounts the
// export as a migration read: MigrationBytes grows by the stored bytes and
// the entry's device/buddy placement is read. Export works on a failed
// device — the streams are the carve-out mirror's surviving copy, which is
// exactly what maintenance reads off a dead tier.
func (a *Allocation) ExportEntry(i int, dst []byte) (stream []byte, sectors int, written bool, err error) {
	if err := a.checkIndex(i); err != nil {
		return dst, 0, false, err
	}
	d := a.dev
	d.mu.RLock()
	if a.freed {
		d.mu.RUnlock()
		return dst, 0, false, a.errFreed()
	}
	sh := a.shard(i)
	sh.Lock()
	// The home layout is resolved under the shard lock, so an export racing
	// a within-device migration snapshots whichever layout owns the entry.
	g, t := a.entryHome(i)
	sectors = d.meta.Get(g)
	written = d.streams[g] != nil
	dst = append(dst, d.streams[g]...)
	sh.Unlock()
	if written {
		stored := storedBytes(sectors)
		devR, budR := splitBytes(t, sectors)
		d.traffic.migrationBytes.Add(uint64(stored))
		d.traffic.deviceReadBytes.Add(uint64(devR))
		d.primary.Load(g, devR)
		if budR > 0 {
			d.traffic.buddyReadBytes.Add(uint64(budR))
			d.overflow.Load(g, budR)
		}
	}
	d.mu.RUnlock()
	if !written {
		return dst, 0, false, nil
	}
	return dst, sectors, true, nil
}

// ImportEntry installs a framed compressed stream as entry i's contents
// without decoding it. The stream and sector count must come from an
// ExportEntry on an allocation whose device uses the same codec — codec
// compatibility is the caller's contract; a mismatched stream surfaces as a
// decode error on the next read. The destination accounts the import as a
// migration write: MigrationBytes grows by the stored bytes and the entry's
// device/buddy placement is written.
func (a *Allocation) ImportEntry(i int, stream []byte, sectors int) error {
	if err := a.checkIndex(i); err != nil {
		return err
	}
	if sectors < 0 || sectors > compress.SectorsPerEntry {
		return fmt.Errorf("core: import sector count %d out of range [0,%d]",
			sectors, compress.SectorsPerEntry)
	}
	if len(stream) == 0 {
		return fmt.Errorf("core: import of an empty stream (never-written entries need no import)")
	}
	d := a.dev
	d.mu.RLock()
	if a.freed {
		d.mu.RUnlock()
		return a.errFreed()
	}
	if d.failed.Load() {
		d.mu.RUnlock()
		return d.errFailed()
	}
	sh := a.shard(i)
	sh.Lock()
	g, t := a.entryHome(i)
	d.streams[g] = append(d.streams[g][:0], stream...)
	d.meta.Set(g, sectors)
	a.sectorCount[i] = sectors
	sh.Unlock()
	stored := storedBytes(sectors)
	devW, budW := splitBytes(t, sectors)
	d.traffic.migrationBytes.Add(uint64(stored))
	d.traffic.deviceWriteBytes.Add(uint64(devW))
	d.primary.Store(g, devW)
	if budW > 0 {
		d.traffic.buddyWriteBytes.Add(uint64(budW))
		d.overflow.Store(g, budW)
	}
	d.mu.RUnlock()
	return nil
}
