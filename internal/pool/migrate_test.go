package pool

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"buddy/internal/compress"
	"buddy/internal/core"
)

// countingCodec wraps a Codec with encode/decode call counters — the
// instrument behind the zero-decode migration assertion. It reports the
// inner codec's Name, so two devices wrapping the same algorithm are
// codec-matched in the SameCodecAs sense.
type countingCodec struct {
	inner   compress.Codec
	encodes atomic.Int64
	decodes atomic.Int64
}

func (c *countingCodec) Name() string { return c.inner.Name() }

func (c *countingCodec) AppendCompressed(dst, entry []byte) ([]byte, int) {
	c.encodes.Add(1)
	return c.inner.AppendCompressed(dst, entry)
}

func (c *countingCodec) DecompressInto(dst, comp []byte) error {
	c.decodes.Add(1)
	return c.inner.DecompressInto(dst, comp)
}

// newCodecPool builds a pool whose shards run the given codecs (one device
// per codec, 64 KiB slab each).
func newCodecPool(t *testing.T, codecs ...compress.Codec) *Pool {
	t.Helper()
	devices := make([]*core.Device, len(codecs))
	for i, c := range codecs {
		devices[i] = core.NewDevice(core.Config{DeviceBytes: 64 << 10, Codec: c})
	}
	p, err := New(devices, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

// TestMigrateHandleMovesData pins the basic contract: after MigrateHandle
// the handle routes to the new shard, the data is intact, the source
// allocation is released, and both devices account identical
// MigrationBytes.
func TestMigrateHandleMovesData(t *testing.T) {
	p := newTestPool(t, 3, Explicit(0))
	want := make([]byte, 8<<10)
	pattern(want, 5)
	h, err := p.Malloc("m", int64(len(want)), core.Target2x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	for _, d := range p.devices {
		d.ResetTraffic()
	}
	if err := p.MigrateHandle(h, 2); err != nil {
		t.Fatal(err)
	}
	if got := h.Shard(); got != 2 {
		t.Fatalf("handle routes to shard %d after migration, want 2", got)
	}
	if h.Migrating() {
		t.Fatal("handle still reports migrating after cutover")
	}
	got := make([]byte, len(want))
	if _, err := h.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data corrupted across migration")
	}
	if used := p.devices[0].DeviceUsed(); used != 0 {
		t.Errorf("source shard still holds %d device bytes", used)
	}
	st := p.devices[0].Traffic()
	dt := p.devices[2].Traffic()
	if st.MigrationBytes == 0 || st.MigrationBytes != dt.MigrationBytes {
		t.Errorf("MigrationBytes src=%d dst=%d, want equal and nonzero",
			st.MigrationBytes, dt.MigrationBytes)
	}
	// Migrating to the shard the handle is already on is a no-op.
	if err := p.MigrateHandle(h, 2); err != nil {
		t.Fatalf("same-shard migration: %v", err)
	}
	// New I/O after the move still works through the same handle — the
	// stale-route regression (handles must re-resolve their shard, not
	// cache it at Malloc time).
	pattern(want, 6)
	if _, err := h.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("post-migration write through handle corrupted")
	}
}

// TestMigrateZeroDecode asserts the tentpole's no-decode guarantee: when
// source and destination run the same codec, MigrateHandle streams framed
// entries shard-to-shard without a single decode (or re-encode) round-trip.
func TestMigrateZeroDecode(t *testing.T) {
	cc := &countingCodec{inner: compress.NewBPC()}
	p := newCodecPool(t, cc, cc)
	// Nonzero data: all-zero entries shortcut the codec entirely and would
	// vacuously pass.
	want := make([]byte, 16<<10)
	pattern(want, 11)
	h, err := p.Malloc("z", int64(len(want)), core.Target2x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	enc, dec := cc.encodes.Load(), cc.decodes.Load()
	if enc == 0 {
		t.Fatal("writes did not reach the codec; the counter proves nothing")
	}
	if err := p.MigrateHandle(h, 1); err != nil {
		t.Fatal(err)
	}
	if d := cc.decodes.Load() - dec; d != 0 {
		t.Errorf("codec-matched migration decoded %d entries, want 0", d)
	}
	if d := cc.encodes.Load() - enc; d != 0 {
		t.Errorf("codec-matched migration re-encoded %d entries, want 0", d)
	}
	got := make([]byte, len(want))
	if _, err := h.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data corrupted across stream migration")
	}
}

// TestMigrateCodecMismatch pins the fallback: when the shards disagree on
// codec, migration decodes on the source and re-encodes on the destination,
// and the data still survives.
func TestMigrateCodecMismatch(t *testing.T) {
	bdi, err := compress.ByName("bdi")
	if err != nil {
		t.Fatal(err)
	}
	src := &countingCodec{inner: compress.NewBPC()}
	dst := &countingCodec{inner: bdi}
	p := newCodecPool(t, src, dst)
	want := make([]byte, 4<<10)
	pattern(want, 13)
	h, err := p.Malloc("x", int64(len(want)), core.Target2x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	dec, enc := src.decodes.Load(), dst.encodes.Load()
	if err := p.MigrateHandle(h, 1); err != nil {
		t.Fatal(err)
	}
	if src.decodes.Load() == dec {
		t.Error("mismatched-codec migration never decoded on the source")
	}
	if dst.encodes.Load() == enc {
		t.Error("mismatched-codec migration never encoded on the destination")
	}
	got := make([]byte, len(want))
	if _, err := h.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data corrupted across transcode migration")
	}
}

// TestMigrateOOMRollback pins the reservation contract: when the
// destination cannot hold the allocation, MigrateHandle fails with
// ErrOutOfMemory, the handle stays routed to its source, the data is
// untouched and the destination keeps nothing.
func TestMigrateOOMRollback(t *testing.T) {
	devices := []*core.Device{
		core.NewDevice(core.Config{DeviceBytes: 64 << 10}),
		core.NewDevice(core.Config{DeviceBytes: 4 << 10}),
	}
	p, err := New(devices, Config{Placement: Explicit(0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	want := make([]byte, 32<<10)
	pattern(want, 17)
	h, err := p.Malloc("big", int64(len(want)), core.Target1x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	err = p.MigrateHandle(h, 1)
	if !errors.Is(err, core.ErrOutOfMemory) {
		t.Fatalf("migration into a full shard: %v, want ErrOutOfMemory", err)
	}
	if got := h.Shard(); got != 0 {
		t.Fatalf("failed migration moved the route to shard %d", got)
	}
	if h.Migrating() {
		t.Fatal("failed migration left the handle mid-move")
	}
	if used := devices[1].DeviceUsed(); used != 0 {
		t.Errorf("failed migration leaked %d device bytes on the destination", used)
	}
	got := make([]byte, len(want))
	if _, err := h.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("failed migration corrupted the source data")
	}
}

// TestMigrateRejects covers the argument guards: foreign handles, bad
// shard indexes, draining and failed destinations.
func TestMigrateRejects(t *testing.T) {
	p := newTestPool(t, 2, Explicit(0))
	other := newTestPool(t, 1, nil)
	h, err := p.Malloc("a", 1<<10, core.Target1x)
	if err != nil {
		t.Fatal(err)
	}
	foreign, err := other.Malloc("b", 1<<10, core.Target1x)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MigrateHandle(foreign, 0); err == nil ||
		!strings.Contains(err.Error(), "another pool") {
		t.Errorf("foreign handle: %v", err)
	}
	if err := p.MigrateHandle(h, 7); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if err := p.Drain(1); err != nil {
		t.Fatal(err)
	}
	if err := p.MigrateHandle(h, 1); !errors.Is(err, ErrShardDraining) {
		t.Errorf("draining destination: %v, want ErrShardDraining", err)
	}
	if err := p.Reopen(1); err != nil {
		t.Fatal(err)
	}
}

// TestMigrateUnderConcurrentIO is the stale-shard-routing regression under
// load: goroutines hammer disjoint regions of one handle — sync byte I/O at
// unaligned offsets plus async submissions — while the allocation live-
// migrates back and forth between shards. Every read must observe that
// region's latest write; run with -race this also proves the watermark
// handoff publishes safely.
func TestMigrateUnderConcurrentIO(t *testing.T) {
	p, err := New([]*core.Device{
		core.NewDevice(core.Config{DeviceBytes: 64 << 10}),
		core.NewDevice(core.Config{DeviceBytes: 64 << 10}),
	}, Config{Placement: Explicit(0), QueueDepth: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	const (
		regions    = 4
		regionSize = 4 << 10
		rounds     = 40
	)
	h, err := p.Malloc("hot", regions*regionSize, core.Target2x)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, regions+1)
	for r := 0; r < regions; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			base := int64(r * regionSize)
			buf := make([]byte, regionSize/2)
			got := make([]byte, regionSize/2)
			for i := 0; i < rounds; i++ {
				// Odd offset inside the region: the I/O spans entry
				// boundaries unaligned, crossing the migration watermark
				// at arbitrary points.
				off := base + int64(i%64)
				pattern(buf, byte(r*rounds+i))
				if r%2 == 0 {
					if _, err := h.WriteAt(buf, off); err != nil {
						errc <- fmt.Errorf("region %d write: %w", r, err)
						return
					}
				} else {
					if _, err := p.SubmitWrite(h, buf, off).Wait(); err != nil {
						errc <- fmt.Errorf("region %d submit: %w", r, err)
						return
					}
				}
				if _, err := h.ReadAt(got, off); err != nil {
					errc <- fmt.Errorf("region %d read: %w", r, err)
					return
				}
				if !bytes.Equal(got, buf) {
					errc <- fmt.Errorf("region %d round %d: torn read during migration", r, i)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := p.MigrateHandle(h, (h.Shard()+1)%2); err != nil {
				errc <- fmt.Errorf("migration %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
