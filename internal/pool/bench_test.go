package pool

import (
	"fmt"
	"testing"
	"time"

	"buddy/internal/core"
	"buddy/internal/gen"
)

// Serving-layer benchmarks. BenchmarkPoolServe measures host-side serving
// throughput through the async submission queues in two traffic shapes —
// bulk (64 KiB submissions, the shape the parallel batch path always
// handled) and chunked (4 KiB submissions, the "many small bursty
// transfers" shape of ML serving traffic, which only reaches the batch
// primitives through worker-side coalescing). BenchmarkSubmitWrite pins
// the submit→complete control-path cost per entry at zero allocations.
// The per-shape ns/entry (and SubmitWrite's allocs/op) are what
// BENCH_baseline.json pins via `make bench-gate`.

// benchServe drives 8 concurrent clients, each streaming a 256 KiB
// working set (write + read-back) into a 4-shard pool in chunkBytes
// submissions. rebalEvery > 0 additionally runs the rebalancer watcher on
// that interval throughout — the "watched" leg pins that an aggressively
// ticking watcher costs the serve path nothing measurable. tenants, when
// non-nil, configures the pool's tenant set and spreads the clients
// round-robin across the named tenants — the "tenants" leg pins that
// classed, weighted-fair dequeue costs roughly what the single-ring path
// does.
func benchServe(b *testing.B, chunkBytes int, rebalEvery time.Duration, tenants map[string]TenantConfig) {
	const (
		clients    = 8
		perClient  = 256 << 10
		shardBytes = 4 << 20
	)
	chunks := perClient / chunkBytes
	devices := make([]*core.Device, 4)
	for i := range devices {
		devices[i] = core.NewDevice(core.Config{DeviceBytes: shardBytes})
	}
	p, err := New(devices, Config{RebalanceInterval: rebalEvery, Tenants: tenants})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	var doors []*Tenant
	for _, name := range p.TenantNames() {
		if name == DefaultTenant && tenants != nil {
			continue
		}
		door, err := p.Tenant(name)
		if err != nil {
			b.Fatal(err)
		}
		doors = append(doors, door)
	}

	// Per-client working sets: 90%-sparse fp16 activations, the cDMA-style
	// ML serving traffic the paper (and the chunked shape) targets.
	data := make([][]byte, clients)
	handles := make([]*Handle, clients)
	r := gen.NewRNG(7, 1)
	for c := range data {
		data[c] = make([]byte, perClient)
		(gen.SparseFP16{ZeroFrac: 0.9}).Fill(data[c], r)
		h, err := doors[c%len(doors)].Malloc(fmt.Sprintf("c%d", c), int64(len(data[c])), core.Target2x)
		if err != nil {
			b.Fatal(err)
		}
		handles[c] = h
	}
	read := make([][]byte, clients)
	futs := make([][]*Future, clients)
	for c := range read {
		read[c] = make([]byte, len(data[c]))
		futs[c] = make([]*Future, 0, chunks)
	}
	b.SetBytes(int64(clients * perClient * 2)) // written + read back
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan error, clients)
		for c := 0; c < clients; c++ {
			go func(c int) {
				fs := futs[c][:0]
				for k := 0; k < chunks; k++ {
					fs = append(fs, p.SubmitWrite(handles[c], data[c][k*chunkBytes:(k+1)*chunkBytes], int64(k*chunkBytes)))
				}
				for _, f := range fs {
					if _, err := f.Wait(); err != nil {
						done <- err
						return
					}
				}
				fs = fs[:0]
				for k := 0; k < chunks; k++ {
					fs = append(fs, p.SubmitRead(handles[c], read[c][k*chunkBytes:(k+1)*chunkBytes], int64(k*chunkBytes)))
				}
				for _, f := range fs {
					if _, err := f.Wait(); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}(c)
		}
		for c := 0; c < clients; c++ {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	entries := int64(clients * perClient * 2 / core.EntryBytes)
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(entries), "ns/entry")
}

func BenchmarkPoolServe(b *testing.B) {
	b.Run("bulk", func(b *testing.B) { benchServe(b, 64<<10, 0, nil) })
	b.Run("chunked", func(b *testing.B) { benchServe(b, 4<<10, 0, nil) })
	// Same bulk traffic with the rebalancer watcher ticking every 100 µs —
	// far hotter than any deployment would run it. The baseline pins this
	// leg at the bulk leg's ns/entry, so a watcher that starts costing the
	// serve path real time fails the gate.
	b.Run("watched", func(b *testing.B) { benchServe(b, 64<<10, 100*time.Microsecond, nil) })
	// Same bulk traffic spread across four tenants in two priority classes
	// with unequal weights — every dequeue walks the classed, weighted-fair
	// path instead of the single-ring fast case. Pinned near the bulk leg:
	// multi-tenant scheduling must not tax the serve path.
	b.Run("tenants", func(b *testing.B) {
		benchServe(b, 64<<10, 0, map[string]TenantConfig{
			"batch-a": {Weight: 3},
			"batch-b": {Weight: 1},
			"lat-a":   {Priority: 2},
			"lat-b":   {Priority: 1},
		})
	})
}

// BenchmarkQoSDequeue pins the scheduler's control-path cost in
// isolation: one enqueue plus its dequeue per task, cycled across four
// tenants in two priority classes so every window exercises class
// selection and deficit round-robin. No worker or device behind it — this
// is the pure scheduling overhead added to every submitted operation, and
// it must stay allocation-free (the gate pins allocs/op at zero).
func BenchmarkQoSDequeue(b *testing.B) {
	tens, _ := buildTenants(map[string]TenantConfig{
		"batch":   {Weight: 3},
		"bulk":    {Weight: 1},
		"latency": {Priority: 2},
	})
	s := newSched(tens, 64)
	buf := make([]byte, 4<<10)
	tasks := make([]*task, len(tens))
	for i := range tasks {
		tasks[i] = &task{buf: buf}
	}
	var run [maxRunTasks]*task
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k, t := range tasks {
			if err := s.enqueue(t, tens[k]); err != nil {
				b.Fatal(err)
			}
		}
		for q := len(tasks); q > 0; {
			q -= s.dequeue(&run)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(tasks)), "ns/entry")
}

// BenchmarkRebalanceScan pins the watcher's per-tick cost: one pressure
// scan over a 4-shard fleet with live load. The gate pins allocs/op at
// zero — the scan runs forever inside serving processes and must stay
// allocation-free.
func BenchmarkRebalanceScan(b *testing.B) {
	devices := make([]*core.Device, 4)
	for i := range devices {
		devices[i] = core.NewDevice(core.Config{DeviceBytes: 4 << 20})
	}
	// A long interval arms the rebalancer without ticking mid-measurement.
	p, err := New(devices, Config{RebalanceInterval: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	data := make([]byte, 256<<10)
	(gen.SparseFP16{ZeroFrac: 0.9}).Fill(data, gen.NewRNG(7, 1))
	h, err := p.Malloc("load", int64(len(data)), core.Target2x)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := h.WriteAt(data, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.rebalanceScan()
	}
}

// BenchmarkSubmitWrite measures one client's submit→complete round trip
// for a 4 KiB chunk: queue handoff, worker execution and future wake-up.
// Steady state must not allocate — tasks and futures are pooled.
func BenchmarkSubmitWrite(b *testing.B) {
	devices := []*core.Device{core.NewDevice(core.Config{DeviceBytes: 4 << 20})}
	p, err := New(devices, Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	const chunk = 4 << 10
	data := make([]byte, chunk)
	(gen.SparseFP16{ZeroFrac: 0.9}).Fill(data, gen.NewRNG(7, 1))
	h, err := p.Malloc("bench", 256<<10, core.Target2x)
	if err != nil {
		b.Fatal(err)
	}
	// First touch allocates each entry's retained stream buffer.
	for off := int64(0); off < h.Size(); off += chunk {
		if _, err := p.SubmitWrite(h, data, off).Wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(chunk)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SubmitWrite(h, data, int64(i)%(h.Size()-chunk)).Wait(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/(chunk/core.EntryBytes), "ns/entry")
}
