package pool

import (
	"fmt"
	"testing"

	"buddy/internal/core"
	"buddy/internal/gen"
)

// BenchmarkPoolServe measures host-side serving throughput through the
// async submission queues: 8 concurrent clients, each streaming a 256 KiB
// working set (write + read-back) into a 4-shard pool. b.SetBytes reports
// MB/s of payload moved; this is the codec-bound wall throughput of this
// machine, the serving-layer counterpart of the bulk-I/O benchmarks in
// internal/core.
func BenchmarkPoolServe(b *testing.B) {
	const (
		clients    = 8
		chunk      = 64 << 10
		perClient  = 4 // chunks per client per iteration
		shardBytes = 4 << 20
	)
	devices := make([]*core.Device, 4)
	for i := range devices {
		devices[i] = core.NewDevice(core.Config{DeviceBytes: shardBytes})
	}
	p, err := New(devices, Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()

	// Per-client working sets: fp64-like data that compresses to ~2x, the
	// realistic middle of the codec's range.
	data := make([][]byte, clients)
	handles := make([]*Handle, clients)
	r := gen.NewRNG(7, 1)
	for c := range data {
		data[c] = make([]byte, perClient*chunk)
		(gen.Noisy64{NoiseBits: 8, HiStep: 1}).Fill(data[c], r)
		h, err := p.Malloc(fmt.Sprintf("c%d", c), int64(len(data[c])), core.Target2x)
		if err != nil {
			b.Fatal(err)
		}
		handles[c] = h
	}
	read := make([][]byte, clients)
	for c := range read {
		read[c] = make([]byte, len(data[c]))
	}
	b.SetBytes(int64(clients * perClient * chunk * 2)) // written + read back
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan error, clients)
		for c := 0; c < clients; c++ {
			go func(c int) {
				var futs []*Future
				for k := 0; k < perClient; k++ {
					futs = append(futs, p.SubmitWrite(handles[c], data[c][k*chunk:(k+1)*chunk], int64(k*chunk)))
				}
				for _, f := range futs {
					if _, err := f.Wait(); err != nil {
						done <- err
						return
					}
				}
				if _, err := p.SubmitRead(handles[c], read[c], 0).Wait(); err != nil {
					done <- err
					return
				}
				done <- nil
			}(c)
		}
		for c := 0; c < clients; c++ {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
	}
}
