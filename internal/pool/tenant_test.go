package pool

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"buddy/internal/core"
)

// Tenant-layer tests: admission-control quota lifecycle, weighted-fair
// share convergence at the scheduler, the anti-starvation escape valve
// under a high-priority flood, and failure-injection during tenant
// traffic (typed errors, quota books intact).

func newTenantPool(t *testing.T, shards int, tenants map[string]TenantConfig) *Pool {
	t.Helper()
	devices := make([]*core.Device, shards)
	for i := range devices {
		devices[i] = core.NewDevice(core.Config{DeviceBytes: 4 << 20})
	}
	p, err := New(devices, Config{Tenants: tenants})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

// TestTenantQuotaLifecycle walks admission control through a full
// lifecycle: fill a tenant to its cap, get the typed ErrQuotaExceeded
// (with the rejection counted), free an allocation, and watch the quota
// come back — down to zero stored bytes once everything is closed.
func TestTenantQuotaLifecycle(t *testing.T) {
	const allocBytes = 64 * core.EntryBytes
	unit := quotaFor(allocBytes, core.Target2x)
	p := newTenantPool(t, 1, map[string]TenantConfig{
		"capped": {CapacityBytes: 2 * unit},
	})
	door, err := p.Tenant("capped")
	if err != nil {
		t.Fatal(err)
	}
	h1, err := door.Malloc("a1", allocBytes, core.Target2x)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := door.Malloc("a2", allocBytes, core.Target2x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := door.Malloc("a3", allocBytes, core.Target2x); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("Malloc over quota: %v, want ErrQuotaExceeded", err)
	}
	st := door.Stats()
	if st.StoredBytes != 2*unit {
		t.Errorf("StoredBytes = %d, want %d", st.StoredBytes, 2*unit)
	}
	if st.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", st.Rejected)
	}
	// The refused Malloc must not have leaked a partial charge.
	if err := h1.Close(); err != nil {
		t.Fatal(err)
	}
	h3, err := door.Malloc("a3", allocBytes, core.Target2x)
	if err != nil {
		t.Fatalf("Malloc after freeing quota: %v", err)
	}
	// Close is idempotent on the books: double-Close must not release the
	// charge twice.
	if err := h2.Close(); err != nil {
		t.Fatal(err)
	}
	_ = h2.Close()
	if err := h3.Close(); err != nil {
		t.Fatal(err)
	}
	if got := door.Stats().StoredBytes; got != 0 {
		t.Errorf("StoredBytes after closing all = %d, want 0", got)
	}
	// The default tenant's books are untouched by tenant traffic.
	if got := p.Stats().Tenants[0].StoredBytes; got != 0 {
		t.Errorf("default tenant StoredBytes = %d, want 0", got)
	}
}

// TestSchedWeightedShares drives the scheduler directly — no workers, no
// devices — and checks deficit round-robin's contract: over a serving
// prefix where every tenant stays backlogged, served bytes converge to
// the configured weights within ±10%.
func TestSchedWeightedShares(t *testing.T) {
	tens, _ := buildTenants(map[string]TenantConfig{
		"w1": {Weight: 1},
		"w2": {Weight: 2},
		"w3": {Weight: 3},
	})
	const (
		depth    = 256
		perTen   = 240
		taskSize = 4 << 10
		prefix   = 300 // tasks served while every ring stays non-empty
	)
	s := newSched(tens, depth)
	buf := make([]byte, taskSize)
	// Tenant indexes 1..3 are w1..w3 (default at 0 stays idle); tag each
	// task with its tenant via off.
	for k := 0; k < perTen; k++ {
		for idx := 1; idx < len(tens); idx++ {
			if err := s.enqueue(&task{buf: buf, off: int64(idx)}, tens[idx]); err != nil {
				t.Fatal(err)
			}
		}
	}
	var run [maxRunTasks]*task
	served := make([]int64, len(tens))
	total := 0
	for total < prefix {
		n := s.dequeue(&run)
		if n == 0 {
			t.Fatal("dequeue returned 0 with work queued")
		}
		for i := 0; i < n; i++ {
			served[run[i].off] += int64(len(run[i].buf))
		}
		total += n
	}
	var sum int64
	for _, b := range served {
		sum += b
	}
	weights := []int64{0, 1, 2, 3}
	for idx := 1; idx < len(tens); idx++ {
		want := float64(weights[idx]) / 6
		got := float64(served[idx]) / float64(sum)
		if got < want*0.9 || got > want*1.1 {
			t.Errorf("tenant %s share = %.3f, want %.3f +-10%%", tens[idx].name, got, want)
		}
	}
}

// TestTenantStarvationEscapeValve floods a 1-worker shard with
// high-priority traffic and requires a low-priority tenant to keep making
// progress anyway — the escape valve's anti-starvation guarantee, run
// end-to-end under -race.
func TestTenantStarvationEscapeValve(t *testing.T) {
	p := newTenantPool(t, 1, map[string]TenantConfig{
		"hi": {Priority: 3},
	})
	hiDoor, err := p.Tenant("hi")
	if err != nil {
		t.Fatal(err)
	}
	hi, err := hiDoor.Malloc("flood", 256*core.EntryBytes, core.Target2x)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := p.Malloc("trickle", 64*core.EntryBytes, core.Target2x)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, core.EntryBytes)
	pattern(buf, 9)
	// Flood: two producers keep the high-priority ring non-empty with
	// windowed outstanding writes until told to stop.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := make([]byte, core.EntryBytes)
			pattern(b, byte(w+1))
			const window = 16
			futs := make([]*Future, 0, window)
			for !stop.Load() {
				for k := 0; k < window; k++ {
					futs = append(futs, p.SubmitWrite(hi, b, int64(k)*core.EntryBytes))
				}
				for _, f := range futs {
					if _, err := f.Wait(); err != nil {
						t.Error(err)
						return
					}
				}
				futs = futs[:0]
			}
		}(w)
	}
	// Wait until the flood is actually flowing before starting the
	// trickle, so the low-priority ops genuinely compete with it.
	for deadline := time.Now().Add(10 * time.Second); ; {
		if hiDoor.Stats().Submitted >= 64 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flood never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Trickle: 50 sequential low-priority round trips must complete while
	// the flood runs. Without the escape valve this starves forever.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 50; i++ {
			if _, err := p.SubmitWrite(lo, buf, 0).Wait(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Error(err)
		}
	case <-time.After(30 * time.Second):
		t.Error("low-priority tenant starved: no progress in 30s under high-priority flood")
	}
	stop.Store(true)
	wg.Wait()
	if t.Failed() {
		return
	}
	if st := hiDoor.Stats(); st.Submitted == 0 {
		t.Error("flood submitted nothing; starvation test proved nothing")
	}
}

// TestKillDuringTenantTraffic kills a shard mid-serve under tenant
// traffic: every in-flight future completes with success or a typed
// ErrDeviceFailed, the tenant's quota books stay intact through the
// failure, and Close still returns the charge afterwards.
func TestKillDuringTenantTraffic(t *testing.T) {
	fi := NewFailureInjector()
	devices := []*core.Device{core.NewDevice(core.Config{DeviceBytes: 256 << 10})}
	p, err := New(devices, Config{Injector: fi, QueueDepth: 16, Workers: 2, Tenants: map[string]TenantConfig{
		"victim": {Priority: 1, CapacityBytes: 1 << 20},
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	door, err := p.Tenant("victim")
	if err != nil {
		t.Fatal(err)
	}
	const allocBytes = 512 * core.EntryBytes
	h, err := door.Malloc("serve", allocBytes, core.Target2x)
	if err != nil {
		t.Fatal(err)
	}
	charged := door.Stats().StoredBytes
	if want := quotaFor(allocBytes, core.Target2x); charged != want {
		t.Fatalf("StoredBytes = %d, want %d", charged, want)
	}
	const (
		chunk   = 4 * core.EntryBytes
		nWrites = allocBytes / chunk
	)
	bufs := make([][]byte, nWrites)
	futs := make([]*Future, nWrites)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range futs {
			bufs[i] = make([]byte, chunk)
			pattern(bufs[i], byte(i+1))
			futs[i] = p.SubmitWrite(h, bufs[i], int64(i)*chunk)
		}
	}()
	if err := fi.Kill(0); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, f := range futs {
		if _, err := f.Wait(); err != nil && !errors.Is(err, core.ErrDeviceFailed) {
			t.Fatalf("write %d failed with untyped error: %v", i, err)
		}
	}
	// Serving failures never touch admission state: the allocation still
	// holds its reservation, so its quota charge must be unchanged.
	if got := door.Stats().StoredBytes; got != charged {
		t.Errorf("StoredBytes after kill = %d, want %d", got, charged)
	}
	if _, err := p.Recover(0); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if got := door.Stats().StoredBytes; got != 0 {
		t.Errorf("StoredBytes after Close = %d, want 0", got)
	}
}

// TestTenantLatencyStats smoke-checks the modeled latency plumbing: after
// served traffic a tenant's distribution is populated (count matches
// completions, percentiles ordered and non-zero) and the fleet view
// aggregates it.
func TestTenantLatencyStats(t *testing.T) {
	p := newTenantPool(t, 2, map[string]TenantConfig{"svc": {Weight: 2}})
	door, err := p.Tenant("svc")
	if err != nil {
		t.Fatal(err)
	}
	h, err := door.Malloc("lat", 64*core.EntryBytes, core.Target2x)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*core.EntryBytes)
	pattern(buf, 5)
	const ops = 32
	for i := 0; i < ops; i++ {
		if _, err := p.SubmitWrite(h, buf, int64(i%16)*core.EntryBytes).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	st := door.Stats()
	if st.Latency.Count != ops {
		t.Errorf("Latency.Count = %d, want %d", st.Latency.Count, ops)
	}
	if st.Latency.P50 <= 0 || st.Latency.P50 > st.Latency.P95 || st.Latency.P95 > st.Latency.P99 {
		t.Errorf("percentiles not ordered: p50=%.1f p95=%.1f p99=%.1f",
			st.Latency.P50, st.Latency.P95, st.Latency.P99)
	}
	if st.ServedBytes != ops*uint64(len(buf)) {
		t.Errorf("ServedBytes = %d, want %d", st.ServedBytes, ops*len(buf))
	}
	fleet := p.Stats()
	if fleet.Latency.Count < ops {
		t.Errorf("fleet Latency.Count = %d, want >= %d", fleet.Latency.Count, ops)
	}
	names := p.TenantNames()
	if len(names) != 2 || names[0] != DefaultTenant || names[1] != "svc" {
		t.Errorf("TenantNames = %v, want [%s svc]", names, DefaultTenant)
	}
	if _, err := p.Tenant("nope"); err == nil {
		t.Error("Tenant(nope) succeeded, want error")
	}
	if got := h.Owner(); got != "svc" {
		t.Errorf("Owner = %q, want svc", got)
	}
}
