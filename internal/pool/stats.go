package pool

import (
	"errors"
	"fmt"
	"sync"

	"buddy/internal/core"
)

// ShardStats is one device's slice of the pool's aggregate view.
type ShardStats struct {
	// Shard is the shard index.
	Shard int
	// Allocs counts live allocations on the shard.
	Allocs int
	// DeviceUsed/DeviceCapacity and BuddyUsed/BuddyCapacity are the two
	// tiers' occupancy (negative capacity means unbounded).
	DeviceUsed, DeviceCapacity int64
	BuddyUsed, BuddyCapacity   int64
	// Traffic is the device's byte-level traffic snapshot.
	Traffic core.Traffic
	// MetadataCacheHitRate is the device's metadata cache hit rate.
	MetadataCacheHitRate float64
	// LinkReadBusyCycles and LinkWriteBusyCycles are the overflow
	// interconnect's accumulated busy cycles per direction (zero when the
	// overflow tier is not a buddy carve-out). Busy cycles count time
	// actually spent transferring — idle gaps between requests excluded —
	// so they divide by a horizon to give true utilization.
	LinkReadBusyCycles, LinkWriteBusyCycles float64
	// Draining and Failed are the shard's lifecycle flags (see Drain and
	// the failure injector); both false on a healthy shard.
	Draining bool
	Failed   bool
}

// AsyncStats is the async serving path's telemetry: how much of the
// submitted traffic the shard workers managed to batch.
type AsyncStats struct {
	// Submitted counts tasks accepted onto the submission queues.
	Submitted uint64
	// CoalescedTasks counts submitted tasks that executed inside a
	// coalesced run (a batch of 2+ adjacent tasks dispatched as one entry
	// span); CoalescedRuns counts the runs themselves.
	CoalescedTasks uint64
	CoalescedRuns  uint64
}

// CoalescedFrac returns the fraction of submitted tasks that executed
// inside a coalesced run.
func (a AsyncStats) CoalescedFrac() float64 {
	if a.Submitted == 0 {
		return 0
	}
	return float64(a.CoalescedTasks) / float64(a.Submitted)
}

// Stats is the pool-wide aggregate of the per-shard telemetry.
type Stats struct {
	// Shards holds one entry per shard, in shard order.
	Shards []ShardStats
	// Traffic is the element-wise sum of every shard's traffic counters.
	Traffic core.Traffic
	// Allocs, DeviceUsed, DeviceCapacity and BuddyUsed are fleet totals.
	Allocs         int
	DeviceUsed     int64
	DeviceCapacity int64
	BuddyUsed      int64
	// MetadataCacheHitRate is the access-weighted mean of the shards' hit
	// rates (weighted by each shard's entry accesses, so idle shards do
	// not dilute the fleet number).
	MetadataCacheHitRate float64
	// Async is the submission-queue coalescing telemetry.
	Async AsyncStats
	// Tenants holds per-tenant serving telemetry — quota occupancy,
	// admission rejections, queue depth and the modeled latency
	// distribution — default tenant first, the rest in sorted name order.
	Tenants []TenantStats
	// Latency is the fleet-wide modeled completion-latency distribution
	// (every tenant's histogram summed), in device+link cycles.
	Latency LatencyDist
}

func addTraffic(a, b core.Traffic) core.Traffic {
	return core.Traffic{
		DeviceReadBytes:   a.DeviceReadBytes + b.DeviceReadBytes,
		DeviceWriteBytes:  a.DeviceWriteBytes + b.DeviceWriteBytes,
		BuddyReadBytes:    a.BuddyReadBytes + b.BuddyReadBytes,
		BuddyWriteBytes:   a.BuddyWriteBytes + b.BuddyWriteBytes,
		MetadataFillBytes: a.MetadataFillBytes + b.MetadataFillBytes,
		MigrationBytes:    a.MigrationBytes + b.MigrationBytes,
		Reads:             a.Reads + b.Reads,
		Writes:            a.Writes + b.Writes,
		BuddyAccesses:     a.BuddyAccesses + b.BuddyAccesses,
	}
}

// Stats aggregates every shard's traffic, capacity and metadata-cache
// telemetry into one fleet view.
func (p *Pool) Stats() Stats {
	st := Stats{Shards: make([]ShardStats, len(p.devices))}
	var weightedHits, weight float64
	for i, d := range p.devices {
		primary, overflow := d.Tiers()
		s := ShardStats{
			Shard:                i,
			Allocs:               d.AllocationCount(),
			DeviceUsed:           d.DeviceUsed(),
			DeviceCapacity:       primary.Capacity(),
			BuddyUsed:            d.BuddyUsed(),
			BuddyCapacity:        overflow.Capacity(),
			Traffic:              d.Traffic(),
			MetadataCacheHitRate: d.MetadataCacheHitRate(),
		}
		if c, ok := overflow.(*core.CarveoutBackend); ok {
			s.LinkReadBusyCycles, s.LinkWriteBusyCycles = c.LinkOccupancy()
		}
		switch p.state[i].Load() {
		case shardDraining:
			s.Draining = true
		case shardFailed:
			s.Failed = true
		}
		st.Shards[i] = s
		st.Traffic = addTraffic(st.Traffic, s.Traffic)
		st.Allocs += s.Allocs
		st.DeviceUsed += s.DeviceUsed
		st.DeviceCapacity += s.DeviceCapacity
		st.BuddyUsed += s.BuddyUsed
		accesses := float64(s.Traffic.Reads + s.Traffic.Writes)
		weightedHits += s.MetadataCacheHitRate * accesses
		weight += accesses
	}
	if weight > 0 {
		st.MetadataCacheHitRate = weightedHits / weight
	}
	st.Async = AsyncStats{
		Submitted:      p.async.submitted.Load(),
		CoalescedTasks: p.async.coalescedTasks.Load(),
		CoalescedRuns:  p.async.coalescedRuns.Load(),
	}
	st.Tenants = make([]TenantStats, len(p.tenants))
	var fleet [latBuckets]uint64
	for i, t := range p.tenants {
		st.Tenants[i] = t.stats()
		t.lat.snapshotInto(&fleet)
	}
	st.Latency = distFrom(&fleet)
	return st
}

// ResetTraffic clears every shard's traffic counters and metadata caches.
func (p *Pool) ResetTraffic() {
	for _, d := range p.devices {
		d.ResetTraffic()
	}
}

// CompressionRatio returns the fleet-wide capacity compression: original
// bytes of live allocations over their device reservations, across all
// shards.
func (p *Pool) CompressionRatio() float64 {
	var orig, dev float64
	for _, d := range p.devices {
		for _, a := range d.Allocations() {
			orig += float64(a.EntryCount) * core.EntryBytes
			dev += float64(a.EntryCount) * float64(a.Target().DeviceBytes())
		}
	}
	if dev == 0 {
		return 1
	}
	return orig / dev
}

// Targets returns the fleet-wide name -> target map of live allocations —
// the "current" input for the next PlanReprofile. Names are unique per
// shard but the pool does not enforce global uniqueness; a duplicate name
// resolves to the highest shard's allocation, mirroring ApplyReprofile's
// routing.
func (p *Pool) Targets() map[string]core.TargetRatio {
	m := make(map[string]core.TargetRatio)
	for _, d := range p.devices {
		for name, t := range d.Targets() {
			m[name] = t
		}
	}
	return m
}

// ApplyReprofile executes a checkpoint-time plan across the fleet: each
// decision is routed to the shard owning the named allocation and the
// per-shard sub-plans run in parallel, one goroutine per involved shard
// (each shard serializes its own migrations internally). Decisions naming
// no live allocation are skipped, like stale decisions on a single device.
func (p *Pool) ApplyReprofile(plan *core.ReprofilePlan) (core.MigrationStats, error) {
	var st core.MigrationStats
	if plan == nil || len(plan.Decisions) == 0 {
		return st, nil
	}
	// Route decisions to their owning shards.
	sub := make([]*core.ReprofilePlan, len(p.devices))
	owners := make([]map[string]bool, len(p.devices))
	for i, d := range p.devices {
		owners[i] = make(map[string]bool)
		for name := range d.Targets() {
			owners[i][name] = true
		}
	}
	for _, dec := range plan.Decisions {
		placed := false
		// Highest shard wins for duplicate names, mirroring how Targets()
		// resolves them — the plan's Old target came from that shard, so
		// the stale check below must run against the same allocation.
		for i := len(p.devices) - 1; i >= 0; i-- {
			if owners[i][dec.Name] {
				if sub[i] == nil {
					sub[i] = &core.ReprofilePlan{}
				}
				sub[i].Decisions = append(sub[i].Decisions, dec)
				placed = true
				break
			}
		}
		if !placed {
			st.Skipped++
		}
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	for i, pl := range sub {
		if pl == nil {
			continue
		}
		wg.Add(1)
		go func(shard int, pl *core.ReprofilePlan) {
			defer wg.Done()
			got, err := p.devices[shard].ApplyReprofile(pl)
			mu.Lock()
			defer mu.Unlock()
			st.Applied += got.Applied
			st.Skipped += got.Skipped
			st.MigratedBytes += got.MigratedBytes
			if err != nil {
				errs = append(errs, fmt.Errorf("pool: shard %d: %w", shard, err))
			}
		}(i, pl)
	}
	wg.Wait()
	// Reprofiling changes what allocations reserve on the device, and
	// tenant quotas are accounted in exactly those stored bytes — re-derive
	// every handle's charge so the books match the new targets.
	p.requota()
	return st, errors.Join(errs...)
}

// requota re-derives every live handle's stored-bytes charge from its
// current target and reconciles the owning tenant's counter by the delta.
// Cross-shard migration never changes a reservation, so only reprofiles
// need this.
func (p *Pool) requota() {
	p.routeMu.Lock()
	hs := make([]*Handle, 0, len(p.handles))
	for _, h := range p.handles {
		hs = append(hs, h)
	}
	p.routeMu.Unlock()
	for _, h := range hs {
		// ctl excludes a racing Handle.Close: once Close has run (the
		// handle is forgotten), re-charging it would leak quota forever.
		h.ctl.Lock()
		p.routeMu.Lock()
		_, live := p.handles[h.id]
		p.routeMu.Unlock()
		if live {
			q := quotaFor(h.size, h.Target())
			if d := q - h.quota.Swap(q); d != 0 {
				h.tn.stored.Add(d)
			}
		}
		h.ctl.Unlock()
	}
}
