package pool

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"buddy/internal/core"
)

// TestDrainEvacuatesShard pins the drain contract: every resident moves to
// another shard, handles keep working, the drained shard refuses new
// placements until Reopen, and Stats reports the lifecycle flag.
func TestDrainEvacuatesShard(t *testing.T) {
	p := newTestPool(t, 3, Explicit(0))
	bufs := make([][]byte, 4)
	handles := make([]*Handle, 4)
	for i := range handles {
		bufs[i] = make([]byte, 4<<10)
		pattern(bufs[i], byte(i))
		h, err := p.Malloc(fmt.Sprintf("a%d", i), int64(len(bufs[i])), core.Target2x)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.WriteAt(bufs[i], 0); err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	if err := p.Drain(0); err != nil {
		t.Fatal(err)
	}
	if used := p.devices[0].DeviceUsed(); used != 0 {
		t.Errorf("drained shard still holds %d device bytes", used)
	}
	got := make([]byte, 4<<10)
	for i, h := range handles {
		if h.Shard() == 0 {
			t.Errorf("handle %d still routed to the drained shard", i)
		}
		if _, err := h.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, bufs[i]) {
			t.Errorf("handle %d corrupted by evacuation", i)
		}
	}
	if !p.Stats().Shards[0].Draining {
		t.Error("Stats does not report the shard draining")
	}
	// Explicit placement on the draining shard must go elsewhere.
	h, err := p.Malloc("post", 1<<10, core.Target1x)
	if err != nil {
		t.Fatal(err)
	}
	if h.Shard() == 0 {
		t.Error("draining shard accepted a placement")
	}
	if err := p.Reopen(0); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Shards[0].Draining {
		t.Error("shard still draining after Reopen")
	}
	h2, err := p.Malloc("reopened", 1<<10, core.Target1x)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Shard() != 0 {
		t.Errorf("reopened shard refused an explicit placement (got shard %d)", h2.Shard())
	}
}

// TestDrainStateMachine covers the lifecycle edges: double-drain, draining
// a failed shard, reopening a failed shard, double-kill, and drain after
// Close.
func TestDrainStateMachine(t *testing.T) {
	fi := NewFailureInjector()
	devices := []*core.Device{
		core.NewDevice(core.Config{DeviceBytes: 64 << 10}),
		core.NewDevice(core.Config{DeviceBytes: 64 << 10}),
	}
	p, err := New(devices, Config{Injector: fi})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(0); !errors.Is(err, ErrShardDraining) {
		t.Errorf("double drain: %v, want ErrShardDraining", err)
	}
	// A reopened healthy shard drains again cleanly.
	if err := p.Reopen(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Reopen(0); err != nil {
		t.Errorf("reopening a healthy shard: %v, want no-op", err)
	}
	if err := fi.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := fi.Kill(1); !errors.Is(err, ErrShardFailed) {
		t.Errorf("double kill: %v, want ErrShardFailed", err)
	}
	if err := p.Drain(1); !errors.Is(err, ErrShardFailed) {
		t.Errorf("draining a failed shard: %v, want ErrShardFailed", err)
	}
	if err := p.Reopen(1); !errors.Is(err, ErrShardFailed) {
		t.Errorf("reopening a failed shard: %v, want ErrShardFailed", err)
	}
	if _, err := p.Recover(0); err == nil {
		t.Error("recovering a healthy shard succeeded")
	}
	if _, err := p.Recover(1); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(0); !errors.Is(err, ErrClosed) {
		t.Errorf("drain after Close: %v, want ErrClosed", err)
	}
}

// TestKillMidCoalescedSpan is the satellite -race stress: a shard dies
// while its workers are streaming coalesced spans. Every in-flight future
// must complete — success or an error wrapping core.ErrDeviceFailed, never
// a deadlock — and after Recover the pool serves again with zero lost
// bytes: every write that reported success is still readable.
func TestKillMidCoalescedSpan(t *testing.T) {
	fi := NewFailureInjector()
	devices := []*core.Device{
		core.NewDevice(core.Config{DeviceBytes: 256 << 10}),
	}
	p, err := New(devices, Config{Injector: fi, QueueDepth: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	const (
		entries = 512
		chunk   = 4 * core.EntryBytes
		nWrites = entries * core.EntryBytes / chunk
	)
	h, err := p.Malloc("serve", entries*core.EntryBytes, core.Target2x)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline: every region holds a known value before the failure round.
	base := make([]byte, entries*core.EntryBytes)
	pattern(base, 1)
	if _, err := h.WriteAt(base, 0); err != nil {
		t.Fatal(err)
	}
	// Failure round: adjacent same-handle writes (coalescing bait) racing a
	// mid-serve kill.
	bufs := make([][]byte, nWrites)
	futs := make([]*Future, nWrites)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := range futs {
			bufs[i] = make([]byte, chunk)
			pattern(bufs[i], byte(i+2))
			futs[i] = p.SubmitWrite(h, bufs[i], int64(i*chunk))
		}
	}()
	if err := fi.Kill(0); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// Futures are single-consume (recycled through a sync.Pool): record
	// each verdict at its one Wait.
	werrs := make([]error, nWrites)
	okWrites := 0
	for i, f := range futs {
		_, err := f.Wait()
		werrs[i] = err
		switch {
		case err == nil:
			okWrites++
		case errors.Is(err, core.ErrDeviceFailed):
		default:
			t.Fatalf("write %d failed with untyped error: %v", i, err)
		}
	}
	if _, err := p.Recover(0); err != nil {
		t.Fatal(err)
	}
	// Zero lost bytes: acknowledged writes read back as written, refused
	// writes left the baseline intact.
	got := make([]byte, chunk)
	for i := range futs {
		if _, err := h.ReadAt(got, int64(i*chunk)); err != nil {
			t.Fatal(err)
		}
		werr := werrs[i]
		if werr == nil && !bytes.Equal(got, bufs[i]) {
			t.Fatalf("acknowledged write %d lost after recovery", i)
		}
		if werr != nil && !bytes.Equal(got, bufs[i]) && !bytes.Equal(got, base[i*chunk:(i+1)*chunk]) {
			t.Fatalf("refused write %d left region %d torn", i, i)
		}
	}
	t.Logf("kill landed after %d/%d acknowledged writes", okWrites, nWrites)
}

// TestDrainDuringBackpressure drains a shard while its submission queue is
// saturated: the queue keeps draining, evacuation proceeds behind it, and
// every future completes.
func TestDrainDuringBackpressure(t *testing.T) {
	devices := []*core.Device{
		core.NewDevice(core.Config{DeviceBytes: 64 << 10}),
		core.NewDevice(core.Config{DeviceBytes: 64 << 10}),
	}
	p, err := New(devices, Config{Placement: Explicit(0), QueueDepth: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	h, err := p.Malloc("busy", 32<<10, core.Target2x)
	if err != nil {
		t.Fatal(err)
	}
	const nWrites = 64
	futs := make(chan *Future, nWrites)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 1<<10)
		pattern(buf, 9)
		for i := 0; i < nWrites; i++ {
			// Blocks whenever the depth-2 queue is full — the drain below
			// runs against sustained backpressure.
			futs <- p.SubmitWrite(h, buf, int64(i%32)<<10)
		}
		close(futs)
	}()
	if err := p.Drain(0); err != nil {
		t.Fatal(err)
	}
	if h.Shard() != 1 {
		t.Errorf("handle on shard %d after drain, want 1", h.Shard())
	}
	wg.Wait()
	for f := range futs {
		if _, err := f.Wait(); err != nil {
			t.Errorf("future failed across drain: %v", err)
		}
	}
}

// TestAutoRecoverSupervisor pins the supervisor path: with AutoRecover on,
// a killed shard comes back without anyone calling Recover, and the
// OnRecover hook observes the rebuild.
func TestAutoRecoverSupervisor(t *testing.T) {
	fi := NewFailureInjector()
	devices := []*core.Device{
		core.NewDevice(core.Config{DeviceBytes: 64 << 10}),
		core.NewDevice(core.Config{DeviceBytes: 64 << 10}),
	}
	recovered := make(chan RecoveryStats, 2)
	p, err := New(devices, Config{
		Placement:   Explicit(0),
		Injector:    fi,
		AutoRecover: true,
		OnRecover:   func(rs RecoveryStats) { recovered <- rs },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	h, err := p.Malloc("x", 8<<10, core.Target2x)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 8<<10)
	pattern(want, 21)
	if _, err := h.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	if err := fi.Kill(0); err != nil {
		t.Fatal(err)
	}
	select {
	case rs := <-recovered:
		if rs.Shard != 0 || rs.Entries == 0 || rs.RebuiltBytes == 0 {
			t.Errorf("implausible recovery stats: %+v", rs)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("supervisor never recovered the shard")
	}
	if p.Stats().Shards[0].Failed {
		t.Error("shard still failed after auto-recovery")
	}
	got := make([]byte, len(want))
	if _, err := h.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data lost across auto-recovery")
	}
}
