package pool

import "fmt"

// Async batched serving: many clients issue I/O against the pool without
// serializing on any one device's shard locks. Each shard owns a bounded
// submission queue drained by its own workers; Submit routes an operation
// to the owning shard's queue and returns a Future immediately. Operations
// run through the allocation's byte-addressed bulk path, so entry-aligned
// spans batch through the device's parallel WriteEntries/ReadEntries
// primitives underneath.

// opKind selects an async operation.
type opKind uint8

const (
	opRead opKind = iota
	opWrite
)

// Future is the pending result of a submitted operation.
type Future struct {
	done chan struct{}
	n    int
	err  error
}

func newFuture() *Future { return &Future{done: make(chan struct{})} }

// Done returns a channel closed when the operation has completed.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks until the operation completes and returns its byte count and
// error — the same values the synchronous ReadAt/WriteAt would return.
func (f *Future) Wait() (int, error) {
	<-f.done
	return f.n, f.err
}

func (f *Future) complete(n int, err error) {
	f.n, f.err = n, err
	close(f.done)
}

// task is one queued operation.
type task struct {
	kind opKind
	h    *Handle
	buf  []byte
	off  int64
	fut  *Future
}

func (p *Pool) worker(q chan *task) {
	defer p.wg.Done()
	for t := range q {
		switch t.kind {
		case opWrite:
			n, err := t.h.a.WriteAt(t.buf, t.off)
			t.fut.complete(n, err)
		case opRead:
			n, err := t.h.a.ReadAt(t.buf, t.off)
			t.fut.complete(n, err)
		}
	}
}

// submit enqueues a task on the handle's shard, blocking while that
// shard's queue is full. A closed pool fails the future immediately.
func (p *Pool) submit(t *task) *Future {
	// The read lock is held across the send so Close cannot close the
	// queue between the closed check and the enqueue; workers drain
	// without taking the lock, so a blocked send always makes progress.
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		t.fut.complete(0, fmt.Errorf("pool: submit on shard %d: %w", t.h.shard, ErrClosed))
		return t.fut
	}
	p.queues[t.h.shard] <- t
	return t.fut
}

// SubmitWrite asynchronously writes data at byte offset off of the
// handle's allocation. The caller must not mutate data until the future
// completes. Backpressure: SubmitWrite blocks while the owning shard's
// queue is at its configured depth.
func (p *Pool) SubmitWrite(h *Handle, data []byte, off int64) *Future {
	return p.submit(&task{kind: opWrite, h: h, buf: data, off: off, fut: newFuture()})
}

// SubmitRead asynchronously reads into dst from byte offset off of the
// handle's allocation. The caller must not touch dst until the future
// completes.
func (p *Pool) SubmitRead(h *Handle, dst []byte, off int64) *Future {
	return p.submit(&task{kind: opRead, h: h, buf: dst, off: off, fut: newFuture()})
}
