package pool

import (
	"fmt"
	"sync"
	"sync/atomic"

	"buddy/internal/core"
)

// Async batched serving: many clients issue I/O against the pool without
// serializing on any one device's shard locks. Each shard owns a
// tenant-aware scheduler (sched.go) drained by its own workers; Submit
// routes an operation to the owning shard and returns a Future
// immediately.
//
// The fast path is allocation-free and batch-shaped: tasks and futures are
// recycled through sync.Pools, completion is a WaitGroup-style semaphore
// (the Done channel materializes lazily, only for select-users), and each
// dequeued window — drawn from a single tenant's ring, in FIFO order — is
// executed as maximal coalescible runs of adjacent tasks (same allocation,
// same kind, contiguous entry-aligned offsets) dispatched through the
// device's batch WriteEntries/ReadEntries primitives. A client streaming
// small chunks therefore still reaches the batch data path: the queue, not
// the submission size, sets the dispatch granularity — and coalescing
// never crosses a tenant boundary, because a window never does.

// opKind selects an async operation.
type opKind uint8

const (
	opRead opKind = iota
	opWrite
)

// Future is the pending result of a submitted operation.
//
// Lifecycle: a Future is checked out of an internal pool by SubmitWrite/
// SubmitRead and recycled when Wait returns. Wait must therefore be called
// exactly once, and no method may be called after it returns — a retained
// pointer may already belong to a later submission. Code that selects on
// Done must still call Wait afterwards to read the result and release the
// future.
type Future struct {
	n   int
	err error

	wg sync.WaitGroup // 1 while pending; Done()ed by complete

	mu        sync.Mutex // guards ch and completed
	ch        chan struct{}
	completed bool

	// waited turns a second Wait into a panic instead of silent
	// corruption of a recycled future (best effort: it cannot catch a
	// second Wait that races a re-checkout).
	waited atomic.Bool
}

// depooled disables task/future recycling. Only the benchgate
// demonstration test flips it, to prove the allocs/op gate catches a
// de-pooled fast path. Atomic because workers read it while a test goroutine
// restores it.
var depooled atomic.Bool

var futurePool = sync.Pool{New: func() any { return new(Future) }}

func getFuture() *Future {
	var f *Future
	if depooled.Load() {
		f = new(Future)
	} else {
		f = futurePool.Get().(*Future)
	}
	f.n, f.err = 0, nil
	f.completed = false
	f.ch = nil
	f.waited.Store(false)
	f.wg.Add(1)
	return f
}

// Done returns a channel closed when the operation has completed, for
// callers multiplexing with select. Wait must still be called to observe
// the result; Done must not be called after Wait has returned.
func (f *Future) Done() <-chan struct{} {
	f.mu.Lock()
	if f.ch == nil {
		f.ch = make(chan struct{})
		if f.completed {
			close(f.ch)
		}
	}
	ch := f.ch
	f.mu.Unlock()
	return ch
}

// Wait blocks until the operation completes and returns its byte count and
// error — the same values the synchronous ReadAt/WriteAt would return.
// Wait consumes the future: it must be called exactly once, and the future
// must not be touched afterwards (it is recycled for later submissions).
func (f *Future) Wait() (int, error) {
	f.wg.Wait()
	if f.waited.Swap(true) {
		panic("pool: Future.Wait called twice; the future was already consumed")
	}
	n, err := f.n, f.err
	if !depooled.Load() {
		futurePool.Put(f)
	}
	return n, err
}

func (f *Future) complete(n int, err error) {
	f.n, f.err = n, err
	f.mu.Lock()
	f.completed = true
	ch := f.ch
	f.mu.Unlock()
	if ch != nil {
		close(ch)
	}
	f.wg.Done()
}

// task is one queued operation. stamp is the submitting shard's modeled
// clock reading at enqueue time; completion latency is the clock distance
// from stamp to the run's completion (sched.advance).
type task struct {
	kind  opKind
	h     *Handle
	buf   []byte
	off   int64
	fut   *Future
	stamp uint64
}

var taskPool = sync.Pool{New: func() any { return new(task) }}

func getTask() *task {
	if depooled.Load() {
		return new(task)
	}
	return taskPool.Get().(*task)
}

func putTask(t *task) {
	if depooled.Load() {
		return
	}
	t.h = nil
	t.buf = nil
	t.fut = nil
	taskPool.Put(t)
}

// Coalescing limits: a run stops growing at maxRunTasks constituent tasks
// or maxRunBytes of payload (the staging buffer's size; 1024 entries).
const (
	maxRunTasks = 32
	maxRunBytes = 128 << 10
)

// coalesceBufPool recycles the staging buffer a coalesced run is executed
// through.
var coalesceBufPool = sync.Pool{New: func() any {
	b := make([]byte, maxRunBytes)
	return &b
}}

// spanEligible reports whether a task can participate in a coalesced entry
// span: entry-aligned offset and length, and a span that stays within the
// allocation's full entries (a partial tail entry needs WriteAt's
// read-modify-write, which a batch span bypasses).
//
//buddy:hotpath
func spanEligible(t *task) bool {
	if t.off < 0 || len(t.buf) == 0 {
		return false
	}
	if t.off%core.EntryBytes != 0 || len(t.buf)%core.EntryBytes != 0 {
		return false
	}
	size := t.h.size // immutable, so eligibility needs no route lock
	return t.off+int64(len(t.buf)) <= size-size%core.EntryBytes
}

// coalescible reports whether next extends the run ending in prev: same
// operation, same handle, span-eligible, and byte-contiguous. Handles are
// canonical (the pool returns one *Handle per allocation), so pointer
// equality is allocation equality — and unlike comparing the routed
// allocations, it stays stable mid-migration.
//
//buddy:hotpath
func coalescible(prev, next *task) bool {
	if next.kind != prev.kind || next.h != prev.h {
		return false
	}
	if next.off != prev.off+int64(len(prev.buf)) {
		return false
	}
	return spanEligible(next)
}

// worker drains one shard's scheduler. Each dequeue hands it a window of
// tasks from a single tenant's ring (the scheduler's priority/DRR choice),
// and the window is executed as maximal coalescible runs, in that ring's
// FIFO order — per-tenant ordering is preserved exactly; coalescing never
// reorders and never crosses tenants.
//
//buddy:hotpath
func (p *Pool) worker(shard int) {
	defer p.wg.Done()
	s := p.scheds[shard]
	var run [maxRunTasks]*task
	for {
		n := s.dequeue(&run)
		if n == 0 {
			return
		}
		for i := 0; i < n; {
			j := i + 1
			if spanEligible(run[i]) {
				bytes := len(run[i].buf)
				for j < n && bytes+len(run[j].buf) <= maxRunBytes && coalescible(run[j-1], run[j]) {
					bytes += len(run[j].buf)
					j++
				}
			}
			p.execRun(s, run[i:j])
			i = j
		}
	}
}

// execRun executes one run of tasks. A single task goes straight through
// the byte-addressed path; a coalesced run stages its payload in one pooled
// buffer and moves it through the device's batch entry primitives, then
// completes every constituent future with its own byte count. If the batch
// fails, the run is replayed task by task so each future reports exactly
// the n/err uncoalesced execution would have produced. On success the
// shard's modeled clock advances by the run's service cycles and every
// constituent task's latency is observed on its tenant.
//
//buddy:hotpath
func (p *Pool) execRun(s *sched, ts []*task) {
	if len(ts) == 1 {
		p.execOne(s, ts[0])
		return
	}
	p.async.coalescedRuns.Add(1)
	p.async.coalescedTasks.Add(uint64(len(ts)))
	h := ts[0].h
	start := int(ts[0].off / core.EntryBytes)
	total := 0
	for _, t := range ts {
		total += len(t.buf)
	}
	buf := coalesceBufPool.Get().(*[]byte)
	span := (*buf)[:total]
	var err error
	// The route lock is read-held across the whole span, so a concurrent
	// migration's watermark is frozen and the split executed here is
	// consistent for every entry of the run.
	if ts[0].kind == opWrite {
		off := 0
		for _, t := range ts {
			off += copy(span[off:], t.buf)
		}
		h.mu.RLock()
		err = h.writeEntriesLocked(start, span)
		h.mu.RUnlock()
	} else {
		h.mu.RLock()
		err = h.readEntriesLocked(start, span)
		h.mu.RUnlock()
	}
	if err != nil {
		// Batch failed (e.g. the allocation was freed mid-run): replay
		// individually for exact per-task results.
		coalesceBufPool.Put(buf)
		for _, t := range ts {
			p.execOne(s, t)
		}
		return
	}
	end := s.advance(h, total)
	tn := h.tn
	off := 0
	for _, t := range ts {
		if t.kind == opRead {
			copy(t.buf, span[off:off+len(t.buf)])
		}
		off += len(t.buf)
		tn.observe(end-t.stamp, len(t.buf))
		t.fut.complete(len(t.buf), nil)
		putTask(t)
	}
	coalesceBufPool.Put(buf)
}

// execOne executes a single task through the allocation's byte-addressed
// path and completes its future. Successful completions advance the
// shard's modeled clock and observe the task's latency on its tenant;
// failures complete without touching the latency books.
//
//buddy:hotpath
func (p *Pool) execOne(s *sched, t *task) {
	var n int
	var err error
	if t.kind == opWrite {
		n, err = t.h.WriteAt(t.buf, t.off)
	} else {
		n, err = t.h.ReadAt(t.buf, t.off)
	}
	if err == nil {
		end := s.advance(t.h, n)
		t.h.tn.observe(end-t.stamp, n)
	}
	t.fut.complete(n, err)
	putTask(t)
}

// submit enqueues a task on the handle's shard, blocking while the
// tenant's ring there is full. A closed pool fails the future immediately;
// Close while a submit is parked on a full ring fails it cleanly too.
func (p *Pool) submit(t *task) *Future {
	fut := t.fut
	// The owning shard is re-resolved per submission through the handle's
	// route — a migrated handle enqueues on its new shard. A task that was
	// queued just before a cutover still executes correctly: execution
	// routes through the handle again, not through the queue it sat on.
	shard := t.h.Shard()
	// subWG.Add happens before the closed check; Close stores the flag
	// before shutting the schedulers down and waiting on subWG — either
	// this submit observes closed, or its enqueue lands before shutdown
	// (and drains) or returns ErrClosed from the scheduler itself.
	p.subWG.Add(1)
	if p.closed.Load() {
		p.subWG.Done()
		fut.complete(0, fmt.Errorf("pool: submit on shard %d: %w", shard, ErrClosed))
		putTask(t)
		return fut
	}
	s := p.scheds[shard]
	tn := t.h.tn
	t.stamp = s.clock.Load()
	if err := s.enqueue(t, tn); err != nil {
		fut.complete(0, fmt.Errorf("pool: submit on shard %d: %w", shard, err))
		putTask(t)
	} else {
		p.async.submitted.Add(1)
		tn.submitted.Add(1)
	}
	p.subWG.Done()
	return fut
}

// SubmitWrite asynchronously writes data at byte offset off of the
// handle's allocation. The caller must not mutate data until the future
// completes. Backpressure: SubmitWrite blocks while the owning shard's
// queue is at its configured depth. The steady-state submit→complete path
// allocates nothing.
func (p *Pool) SubmitWrite(h *Handle, data []byte, off int64) *Future {
	t := getTask()
	t.kind, t.h, t.buf, t.off = opWrite, h, data, off
	t.fut = getFuture()
	return p.submit(t)
}

// SubmitRead asynchronously reads into dst from byte offset off of the
// handle's allocation. The caller must not touch dst until the future
// completes.
func (p *Pool) SubmitRead(h *Handle, dst []byte, off int64) *Future {
	t := getTask()
	t.kind, t.h, t.buf, t.off = opRead, h, dst, off
	t.fut = getFuture()
	return p.submit(t)
}
