package pool

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"buddy/internal/core"
	"buddy/internal/stats"
)

// Tenant-aware serving: every allocation and every submitted operation
// belongs to a tenant. Tenants carry a capacity quota (admission control
// at Malloc, accounted in stored compressed bytes so reprofiling keeps the
// books honest), a priority class and a weight (the scheduler's inputs —
// see sched.go), and their own serving telemetry: a modeled-latency
// histogram, queue depth, served bytes and admission rejections.
//
// A pool always has at least the default tenant; untenanted traffic
// (plain Pool.Malloc) is accounted there. WithTenants/Config.Tenants adds
// named tenants; Pool.Tenant(name) hands out their Malloc front doors.

// DefaultTenant is the name of the tenant that owns untenanted traffic
// (plain Pool.Malloc). It always exists; configuring it in Config.Tenants
// sets its quota, weight and priority like any other tenant's.
const DefaultTenant = "default"

// ErrQuotaExceeded is returned (wrapped) by Malloc when an allocation
// would push a tenant's stored compressed bytes over its configured
// capacity.
var ErrQuotaExceeded = errors.New("pool: tenant quota exceeded")

// TenantConfig declares one tenant's serving contract.
type TenantConfig struct {
	// CapacityBytes caps the tenant's stored compressed bytes — the sum of
	// its allocations' device reservations (entries x target device bytes),
	// the same unit the device slab is carved in. Malloc fails with
	// ErrQuotaExceeded when the cap would be exceeded; 0 means unlimited.
	CapacityBytes int64
	// Weight is the tenant's deficit-round-robin share within its priority
	// class (long-run served bytes are proportional to weight when the
	// tenant keeps its queues busy). Values < 1 mean 1.
	Weight int
	// Priority is the tenant's scheduling class, 0 (batch) to 3 (most
	// latency-sensitive); out-of-range values are clamped. Higher classes
	// are served strictly first, modulo the anti-starvation escape valve.
	Priority int
}

// latBuckets sizes the fixed log2 latency histogram: bucket b counts
// completions whose modeled latency x (in device+link cycles) has
// bits.Len64(x) == b, so the range covers every uint64.
const latBuckets = 64

// latHist is an alloc-free log2 latency histogram; recording is one
// atomic increment.
type latHist struct {
	buckets [latBuckets]atomic.Uint64
}

//buddy:hotpath
func (h *latHist) record(cycles uint64) {
	b := bits.Len64(cycles)
	if b >= latBuckets {
		b = latBuckets - 1
	}
	h.buckets[b].Add(1)
}

// snapshotInto adds the histogram's current counts into counts.
func (h *latHist) snapshotInto(counts *[latBuckets]uint64) {
	for i := range h.buckets {
		counts[i] += h.buckets[i].Load()
	}
}

// LatencyDist summarizes a modeled completion-latency distribution in
// device+link cycles, derived from the fixed-bucket log histogram.
type LatencyDist struct {
	// Count is the number of completed operations observed.
	Count uint64
	// P50, P95 and P99 are interpolated percentiles in modeled cycles.
	P50, P95, P99 float64
}

// distFrom computes the percentile summary of one histogram snapshot.
func distFrom(counts *[latBuckets]uint64) LatencyDist {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return LatencyDist{}
	}
	return LatencyDist{
		Count: total,
		P50:   stats.LogQuantile(counts[:], 0.50),
		P95:   stats.LogQuantile(counts[:], 0.95),
		P99:   stats.LogQuantile(counts[:], 0.99),
	}
}

// tenant is one tenant's runtime state.
type tenant struct {
	name     string
	idx      int   // index into Pool.tenants and every sched's rings
	cls      int   // clamped priority class
	weight   int64 // clamped DRR weight
	capacity int64 // 0 = unlimited

	// admitMu makes the quota check-and-charge atomic against concurrent
	// Mallocs; releases and reprofile adjustments go straight to the
	// atomic counter.
	admitMu sync.Mutex
	stored  atomic.Int64 // charged compressed device bytes

	rejected    atomic.Uint64 // Mallocs refused by admission control
	queued      atomic.Int64  // tasks currently on submission queues
	submitted   atomic.Uint64 // tasks accepted onto submission queues
	servedBytes atomic.Uint64 // payload bytes of completed operations
	lat         latHist
}

// admit charges need stored bytes against the tenant's quota, or rejects
// with ErrQuotaExceeded when the cap would be exceeded.
//
//buddy:hotpath
func (t *tenant) admit(name string, need int64) error {
	t.admitMu.Lock()
	if t.capacity > 0 && t.stored.Load()+need > t.capacity {
		held := t.stored.Load()
		t.admitMu.Unlock()
		t.rejected.Add(1)
		return fmt.Errorf("pool: tenant %q: Malloc %q needs %d stored bytes, %d of %d in use: %w",
			t.name, name, need, held, t.capacity, ErrQuotaExceeded)
	}
	t.stored.Add(need)
	t.admitMu.Unlock()
	return nil
}

// release returns stored bytes to the tenant's quota.
func (t *tenant) release(n int64) {
	if n != 0 {
		t.stored.Add(-n)
	}
}

// observe records one completed operation: its modeled latency and its
// payload bytes.
//
//buddy:hotpath
func (t *tenant) observe(cycles uint64, n int) {
	t.lat.record(cycles)
	t.servedBytes.Add(uint64(n))
}

// TenantStats is one tenant's slice of the pool's serving telemetry.
type TenantStats struct {
	// Name is the tenant's name; Priority and Weight echo its (clamped)
	// scheduling configuration.
	Name     string
	Priority int
	Weight   int
	// CapacityBytes is the admission quota (0 = unlimited) and StoredBytes
	// the compressed device bytes currently charged against it.
	CapacityBytes int64
	StoredBytes   int64
	// Rejected counts Mallocs refused by admission control.
	Rejected uint64
	// Submitted counts tasks accepted onto the submission queues and
	// QueueDepth the tasks queued at snapshot time.
	Submitted  uint64
	QueueDepth int64
	// ServedBytes is the payload of completed operations.
	ServedBytes uint64
	// Latency is the modeled completion-latency distribution in
	// device+link cycles (queueing included: an operation is stamped with
	// its shard's virtual clock at submit and observed at completion).
	Latency LatencyDist
}

// stats snapshots the tenant's telemetry.
func (t *tenant) stats() TenantStats {
	var counts [latBuckets]uint64
	t.lat.snapshotInto(&counts)
	return TenantStats{
		Name:          t.name,
		Priority:      t.cls,
		Weight:        int(t.weight),
		CapacityBytes: t.capacity,
		StoredBytes:   t.stored.Load(),
		Rejected:      t.rejected.Load(),
		Submitted:     t.submitted.Load(),
		QueueDepth:    t.queued.Load(),
		ServedBytes:   t.servedBytes.Load(),
		Latency:       distFrom(&counts),
	}
}

// newTenant builds one tenant with its configuration clamped.
func newTenant(name string, idx int, cfg TenantConfig) *tenant {
	cls := cfg.Priority
	if cls < 0 {
		cls = 0
	}
	if cls >= numClasses {
		cls = numClasses - 1
	}
	w := int64(cfg.Weight)
	if w < 1 {
		w = 1
	}
	capacity := cfg.CapacityBytes
	if capacity < 0 {
		capacity = 0
	}
	return &tenant{name: name, idx: idx, cls: cls, weight: w, capacity: capacity}
}

// buildTenants materializes a pool's tenant set from its configuration:
// the default tenant first (configured by a DefaultTenant entry, if any),
// then the named tenants in sorted order so indexes — and Stats order —
// are deterministic regardless of map iteration.
func buildTenants(cfgs map[string]TenantConfig) ([]*tenant, map[string]*tenant) {
	names := make([]string, 0, len(cfgs))
	for name := range cfgs {
		if name != DefaultTenant {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	tens := make([]*tenant, 0, len(names)+1)
	tens = append(tens, newTenant(DefaultTenant, 0, cfgs[DefaultTenant]))
	for _, name := range names {
		tens = append(tens, newTenant(name, len(tens), cfgs[name]))
	}
	byName := make(map[string]*tenant, len(tens))
	for _, t := range tens {
		byName[t.name] = t
	}
	return tens, byName
}

// quotaFor is the stored-bytes charge of an allocation: its entry count
// times the per-entry device reservation of its target ratio — exactly
// what the allocation holds on the device slab, so quotas track
// compression and survive reprofiling and cross-shard migration (a move
// changes the shard, not the reservation).
func quotaFor(size int64, t core.TargetRatio) int64 {
	entries := (size + core.EntryBytes - 1) / core.EntryBytes
	return entries * int64(t.DeviceBytes())
}

// Tenant is a named tenant's front door: Malloc places allocations
// charged against the tenant's quota, and Stats reads its serving
// telemetry. Obtain one with Pool.Tenant.
type Tenant struct {
	p *Pool
	t *tenant
}

// Tenant returns the named tenant's front door. The name must have been
// configured in Config.Tenants (or be DefaultTenant, which always
// exists).
func (p *Pool) Tenant(name string) (*Tenant, error) {
	t, ok := p.tenantByName[name]
	if !ok {
		return nil, fmt.Errorf("pool: unknown tenant %q", name)
	}
	return &Tenant{p: p, t: t}, nil
}

// TenantNames returns the pool's tenant names, default tenant first, the
// rest in sorted order — the same order Stats reports them.
func (p *Pool) TenantNames() []string {
	out := make([]string, len(p.tenants))
	for i, t := range p.tenants {
		out[i] = t.name
	}
	return out
}

// Name returns the tenant's name.
func (tn *Tenant) Name() string { return tn.t.name }

// Malloc places an allocation owned by the tenant: admission control
// charges the allocation's stored compressed bytes against the tenant's
// quota (failing with ErrQuotaExceeded when it does not fit) before
// placement; Handle.Close returns the charge. I/O submitted on the
// returned handle is scheduled in the tenant's priority class and
// weighted share.
func (tn *Tenant) Malloc(name string, size int64, target core.TargetRatio) (*Handle, error) {
	return tn.p.mallocTenant(tn.t, name, size, target)
}

// Stats snapshots the tenant's serving telemetry.
func (tn *Tenant) Stats() TenantStats { return tn.t.stats() }
