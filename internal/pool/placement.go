package pool

import (
	"fmt"
	"sync/atomic"
)

// ShardLoad is the per-shard occupancy view a Placement policy decides
// from; the pool snapshots it under its allocation lock, so successive
// Mallocs on an otherwise idle pool see deterministic loads.
type ShardLoad struct {
	// Shard is the shard index.
	Shard int
	// DeviceUsed and DeviceCapacity are the shard's device-slab occupancy.
	DeviceUsed, DeviceCapacity int64
	// BuddyUsed is the shard's overflow-tier occupancy.
	BuddyUsed int64
	// Allocs counts the shard's live allocations.
	Allocs int
	// Draining and Failed mark shards that accept no new placements (a
	// drain in progress, or a killed device tier awaiting recovery). The
	// pool skips them regardless of the policy's pick; policies should
	// still avoid them so the pick lands on a usable shard directly.
	Draining bool
	Failed   bool
}

// available reports whether the shard accepts new placements.
func (l ShardLoad) available() bool { return !l.Draining && !l.Failed }

// Placement chooses the shard an allocation is first offered to. The pool
// then spills through the remaining shards in index order when the chosen
// shard is out of memory, so a policy only ranks the preferred start.
//
// Implementations must be safe for concurrent use; picks on a pool with
// in-flight traffic are inherently racy against each other (two concurrent
// Mallocs may pick the same least-used shard), but the pool serializes the
// load snapshot and the reservation, so placement on a quiet pool is
// deterministic.
type Placement interface {
	// Name identifies the policy in stats and errors.
	Name() string
	// Pick returns the preferred shard for an allocation of size bytes
	// given the current loads (always non-empty, indexed by shard).
	Pick(loads []ShardLoad, size int64) int
}

// leastUsed places on the shard with the fewest device bytes in use,
// breaking ties toward the lowest shard index — the default policy.
type leastUsed struct{}

// LeastUsed returns the default placement policy: least-used device with a
// deterministic lowest-index tie-break.
func LeastUsed() Placement { return leastUsed{} }

func (leastUsed) Name() string { return "least-used" }

func (leastUsed) Pick(loads []ShardLoad, _ int64) int {
	best := -1
	for i, l := range loads {
		if !l.available() {
			continue
		}
		if best < 0 || l.DeviceUsed < loads[best].DeviceUsed {
			best = i
		}
	}
	if best < 0 {
		return 0 // nothing available; the pool rejects the Malloc anyway
	}
	return best
}

// roundRobin rotates the start shard across successive Mallocs.
type roundRobin struct {
	next atomic.Uint64
}

// RoundRobin returns a placement policy that rotates allocations across
// shards in submission order, regardless of occupancy.
func RoundRobin() Placement { return &roundRobin{} }

func (*roundRobin) Name() string { return "round-robin" }

func (r *roundRobin) Pick(loads []ShardLoad, _ int64) int {
	start := int((r.next.Add(1) - 1) % uint64(len(loads)))
	// Rotate past unavailable shards so the pick lands on a usable one;
	// with every shard down, fall through to the raw rotation (the pool
	// rejects the Malloc either way).
	for k := 0; k < len(loads); k++ {
		i := (start + k) % len(loads)
		if loads[i].available() {
			return i
		}
	}
	return start
}

// explicit pins the start shard.
type explicit struct {
	shard int
}

// Explicit returns a placement policy that always offers allocations to
// the given shard first (out-of-range indexes clamp into the pool); the
// pool's usual spill-over still applies when that shard is full.
func Explicit(shard int) Placement { return explicit{shard: shard} }

func (e explicit) Name() string { return fmt.Sprintf("explicit-%d", e.shard) }

func (e explicit) Pick(loads []ShardLoad, _ int64) int {
	if e.shard < 0 {
		return 0
	}
	if e.shard >= len(loads) {
		return len(loads) - 1
	}
	return e.shard
}
