package pool

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"buddy/internal/core"
)

// newTestPool builds a pool of n small devices (64 KiB slab, 3x carve-out
// each) with the given placement.
func newTestPool(t *testing.T, n int, place Placement) *Pool {
	t.Helper()
	devices := make([]*core.Device, n)
	for i := range devices {
		devices[i] = core.NewDevice(core.Config{DeviceBytes: 64 << 10})
	}
	p, err := New(devices, Config{Placement: place})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

// pattern fills b with a deterministic byte sequence seeded by tag.
func pattern(b []byte, tag byte) {
	for i := range b {
		b[i] = byte(i)*3 + tag
	}
}

func TestLeastUsedPlacementDeterminism(t *testing.T) {
	// Two identical pools see the same Malloc sequence; least-used with a
	// lowest-index tie-break must produce identical shard assignments.
	sizes := []int64{8 << 10, 4 << 10, 16 << 10, 4 << 10, 8 << 10, 2 << 10, 32 << 10, 1 << 10}
	var first []int
	for run := 0; run < 2; run++ {
		p := newTestPool(t, 4, nil) // nil selects the LeastUsed default
		var got []int
		for i, sz := range sizes {
			h, err := p.Malloc(fmt.Sprintf("a%d", i), sz, core.Target1x)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, h.Shard())
		}
		if run == 0 {
			first = got
			// The empty pool ties every shard: the first alloc must land on
			// shard 0, and the next ones on the least-used shard.
			if got[0] != 0 || got[1] != 1 {
				t.Fatalf("least-used start: got %v", got[:2])
			}
			continue
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("placement not deterministic: run0 %v, run1 %v", first, got)
			}
		}
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	p := newTestPool(t, 3, RoundRobin())
	for i := 0; i < 6; i++ {
		h, err := p.Malloc(fmt.Sprintf("a%d", i), 1<<10, core.Target1x)
		if err != nil {
			t.Fatal(err)
		}
		if h.Shard() != i%3 {
			t.Fatalf("alloc %d on shard %d, want %d", i, h.Shard(), i%3)
		}
	}
}

func TestExplicitPlacementAndSpill(t *testing.T) {
	p := newTestPool(t, 2, Explicit(1))
	// Shard 1 holds 64 KiB at 1x; the third 24 KiB allocation must spill to
	// shard 0 (wrapping past the end), not fail.
	shards := []int{1, 1, 0}
	for i, want := range shards {
		h, err := p.Malloc(fmt.Sprintf("a%d", i), 24<<10, core.Target1x)
		if err != nil {
			t.Fatal(err)
		}
		if h.Shard() != want {
			t.Fatalf("alloc %d on shard %d, want %d", i, h.Shard(), want)
		}
	}
	// Both shards full: the pool-wide failure must wrap core.ErrOutOfMemory.
	if _, err := p.Malloc("toobig", 60<<10, core.Target1x); !errors.Is(err, core.ErrOutOfMemory) {
		t.Fatalf("exhausted pool returned %v, want ErrOutOfMemory", err)
	}
}

func TestHandleRoutesIO(t *testing.T) {
	p := newTestPool(t, 4, RoundRobin())
	const n = 4 << 10
	want := make([][]byte, 6)
	hs := make([]*Handle, 6)
	for i := range hs {
		h, err := p.Malloc(fmt.Sprintf("a%d", i), n, core.Target2x)
		if err != nil {
			t.Fatal(err)
		}
		hs[i] = h
		want[i] = make([]byte, n)
		pattern(want[i], byte(i))
		if _, err := h.WriteAt(want[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	for i, h := range hs {
		got := make([]byte, n)
		if _, err := h.ReadAt(got, 0); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("alloc %d read-back mismatch (shard %d)", i, h.Shard())
		}
	}
	// Cross-shard Memcpy through both pipelines.
	dst, err := p.Malloc("copy", n, core.Target1x)
	if err != nil {
		t.Fatal(err)
	}
	if dst.Shard() == hs[1].Shard() {
		t.Fatal("test wants a cross-shard pair")
	}
	if _, err := Memcpy(dst, hs[1], n); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, n)
	if _, err := dst.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want[1]) {
		t.Fatal("cross-shard Memcpy mismatch")
	}
	// Close frees on the owning device.
	usedBefore := p.Device(hs[0].Shard()).DeviceUsed()
	if err := hs[0].Close(); err != nil {
		t.Fatal(err)
	}
	if used := p.Device(hs[0].Shard()).DeviceUsed(); used >= usedBefore {
		t.Fatalf("Close did not release device bytes: %d -> %d", usedBefore, used)
	}
	if _, err := hs[0].ReadAt(got, 0); !errors.Is(err, core.ErrFreed) {
		t.Fatalf("read after Close = %v, want ErrFreed", err)
	}
}

func TestAsyncSubmit(t *testing.T) {
	// One worker per shard: a shard's queue then drains FIFO, which the
	// last-write-wins check below relies on (with several workers,
	// same-offset submissions may execute out of order, like any
	// concurrent writers).
	devices := []*core.Device{
		core.NewDevice(core.Config{DeviceBytes: 64 << 10}),
		core.NewDevice(core.Config{DeviceBytes: 64 << 10}),
	}
	p, err := New(devices, Config{Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8 << 10
	h, err := p.Malloc("async", n, core.Target2x)
	if err != nil {
		t.Fatal(err)
	}
	// 64 in-flight futures against depth-2 queues: backpressure must block
	// submitters, never drop or deadlock.
	const ops = 64
	futs := make([]*Future, 0, ops)
	bufs := make([][]byte, ops)
	for i := 0; i < ops; i++ {
		bufs[i] = make([]byte, 512)
		pattern(bufs[i], byte(i))
		futs = append(futs, p.SubmitWrite(h, bufs[i], int64(i)*512%n))
	}
	for i, f := range futs {
		if wn, err := f.Wait(); err != nil || wn != 512 {
			t.Fatalf("write %d: n=%d err=%v", i, wn, err)
		}
	}
	// The last write to each offset wins; read one offset back async.
	got := make([]byte, 512)
	if _, err := p.SubmitRead(h, got, 0).Wait(); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 512)
	pattern(want, byte(ops-16)) // offset 0 last written by i=ops-16
	if !bytes.Equal(got, want) {
		t.Fatal("async read-back mismatch")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SubmitRead(h, got, 0).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close = %v, want ErrClosed", err)
	}
	if _, err := p.Malloc("late", 1<<10, core.Target1x); !errors.Is(err, ErrClosed) {
		t.Fatalf("Malloc after Close = %v, want ErrClosed", err)
	}
	if err := p.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close = %v, want ErrClosed", err)
	}
}

// TestOneShardConformance pins the pool's routing overhead at zero
// semantics: a 1-shard pool must be byte-identical to a bare Device — same
// read-back bytes, same traffic counters, same tier occupancy, same
// compression ratio.
func TestOneShardConformance(t *testing.T) {
	newDev := func() *core.Device {
		return core.NewDevice(core.Config{DeviceBytes: 64 << 10})
	}
	bare := newDev()
	p, err := New([]*core.Device{newDev()}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	data := make([]byte, 12<<10)
	pattern(data, 7)

	// Drive both through the same script of mixed aligned/unaligned ops.
	type rw interface {
		ReadAt([]byte, int64) (int, error)
		WriteAt([]byte, int64) (int, error)
	}
	script := func(mk func(name string, size int64, tr core.TargetRatio) (rw, error)) ([]byte, error) {
		a, err := mk("conf", int64(len(data)), core.Target2x)
		if err != nil {
			return nil, err
		}
		if _, err := a.WriteAt(data, 0); err != nil {
			return nil, err
		}
		if _, err := a.WriteAt(data[:1000], 100); err != nil { // unaligned RMW
			return nil, err
		}
		out := make([]byte, len(data))
		if _, err := a.ReadAt(out, 0); err != nil {
			return nil, err
		}
		if _, err := a.ReadAt(out[:333], 77); err != nil {
			return nil, err
		}
		return out, nil
	}
	gotBare, err := script(func(n string, s int64, tr core.TargetRatio) (rw, error) {
		return bare.Malloc(n, s, tr)
	})
	if err != nil {
		t.Fatal(err)
	}
	gotPool, err := script(func(n string, s int64, tr core.TargetRatio) (rw, error) {
		return p.Malloc(n, s, tr)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBare, gotPool) {
		t.Fatal("1-shard pool read-back differs from bare device")
	}
	if bt, pt := bare.Traffic(), p.Stats().Traffic; bt != pt {
		t.Fatalf("traffic differs:\nbare %+v\npool %+v", bt, pt)
	}
	if bare.DeviceUsed() != p.Stats().DeviceUsed || bare.BuddyUsed() != p.Stats().BuddyUsed {
		t.Fatal("tier occupancy differs")
	}
	if br, pr := bare.CompressionRatio(), p.CompressionRatio(); br != pr {
		t.Fatalf("compression ratio differs: %v vs %v", br, pr)
	}
	if hr := p.Stats().MetadataCacheHitRate; hr != bare.MetadataCacheHitRate() {
		t.Fatalf("metadata hit rate differs: %v vs %v", hr, bare.MetadataCacheHitRate())
	}
}

func TestStatsAggregation(t *testing.T) {
	p := newTestPool(t, 3, RoundRobin())
	data := make([]byte, 4<<10)
	pattern(data, 1)
	for i := 0; i < 3; i++ {
		h, err := p.Malloc(fmt.Sprintf("a%d", i), int64(len(data)), core.Target1x)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if len(st.Shards) != 3 {
		t.Fatalf("Shards = %d", len(st.Shards))
	}
	var wantTraffic core.Traffic
	var wantUsed int64
	for i, s := range st.Shards {
		if s.Shard != i {
			t.Fatalf("shard %d labeled %d", i, s.Shard)
		}
		if s.Allocs != 1 {
			t.Fatalf("shard %d: Allocs=%d, want 1", i, s.Allocs)
		}
		wantTraffic = addTraffic(wantTraffic, p.Device(i).Traffic())
		wantUsed += p.Device(i).DeviceUsed()
	}
	if st.Traffic != wantTraffic {
		t.Fatal("aggregate traffic is not the element-wise sum")
	}
	if st.DeviceUsed != wantUsed || st.Allocs != 3 {
		t.Fatalf("aggregate: used=%d allocs=%d", st.DeviceUsed, st.Allocs)
	}
	if st.DeviceCapacity != 3*(64<<10) {
		t.Fatalf("aggregate capacity = %d", st.DeviceCapacity)
	}
	p.ResetTraffic()
	if rt := p.Stats().Traffic; rt != (core.Traffic{}) {
		t.Fatalf("ResetTraffic left %+v", rt)
	}
}

func TestApplyReprofileFanout(t *testing.T) {
	p := newTestPool(t, 2, RoundRobin())
	data := make([]byte, 4<<10)
	// Highly compressible data so any target is achievable.
	h0, err := p.Malloc("w0", int64(len(data)), core.Target1x)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := p.Malloc("w1", int64(len(data)), core.Target1x)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []*Handle{h0, h1} {
		if _, err := h.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
	}
	plan := &core.ReprofilePlan{Decisions: []core.ReprofileDecision{
		{Name: "w0", Old: core.Target1x, New: core.Target2x},
		{Name: "w1", Old: core.Target1x, New: core.Target4x},
		{Name: "ghost", Old: core.Target1x, New: core.Target2x}, // owned nowhere
	}}
	st, err := p.ApplyReprofile(plan)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 2 || st.Skipped != 1 {
		t.Fatalf("stats = %+v, want 2 applied / 1 skipped", st)
	}
	if h0.Target() != core.Target2x || h1.Target() != core.Target4x {
		t.Fatalf("targets after fan-out: %s / %s", h0.Target(), h1.Target())
	}
	if tg := p.Targets(); tg["w0"] != core.Target2x || tg["w1"] != core.Target4x {
		t.Fatalf("pool Targets() = %v", tg)
	}
	// Data survives the migrations.
	got := make([]byte, len(data))
	if _, err := h0.ReadAt(got, 0); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("w0 after migration: err=%v match=%v", err, bytes.Equal(got, data))
	}
}

// TestApplyReprofileDuplicateName pins the duplicate-name contract: both
// Targets() and ApplyReprofile resolve a name living on several shards to
// the highest-indexed shard's allocation, so a plan computed from
// Targets() is checked against the same allocation it described.
func TestApplyReprofileDuplicateName(t *testing.T) {
	p := newTestPool(t, 2, RoundRobin())
	data := make([]byte, 4<<10)
	h0, err := p.Malloc("dup", int64(len(data)), core.Target1x) // shard 0
	if err != nil {
		t.Fatal(err)
	}
	h1, err := p.Malloc("dup", int64(len(data)), core.Target2x) // shard 1
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []*Handle{h0, h1} {
		if _, err := h.WriteAt(data, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Targets()["dup"]; got != core.Target2x {
		t.Fatalf("Targets() resolved dup to %s, want the highest shard's %s", got, core.Target2x)
	}
	st, err := p.ApplyReprofile(&core.ReprofilePlan{Decisions: []core.ReprofileDecision{
		{Name: "dup", Old: core.Target2x, New: core.Target4x},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 1 || st.Skipped != 0 {
		t.Fatalf("stats = %+v, want the highest shard's allocation applied", st)
	}
	if h0.Target() != core.Target1x || h1.Target() != core.Target4x {
		t.Fatalf("targets after: shard0 %s shard1 %s, want 1x / 4x", h0.Target(), h1.Target())
	}
}

// TestConcurrentServeStress is the -race proof for the serving layer:
// concurrent clients mix synchronous and asynchronous I/O and lifecycle
// churn across shards, through a fill deep enough to trigger spill-over.
func TestConcurrentServeStress(t *testing.T) {
	p := newTestPool(t, 4, nil)
	const clients = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			buf := make([]byte, 20<<10)
			pattern(buf, byte(c))
			got := make([]byte, len(buf))
			for r := 0; r < rounds; r++ {
				// 8 clients x 20 KiB on 4 x 64 KiB shards: more than half
				// the fleet per round, so least-used placement must spill.
				h, err := p.Malloc(fmt.Sprintf("c%dr%d", c, r), int64(len(buf)), core.Target1x)
				if err != nil {
					errs <- err
					return
				}
				half := int64(len(buf) / 2)
				if _, err := h.WriteAt(buf[:half], 0); err != nil { // sync
					errs <- err
					return
				}
				fw := p.SubmitWrite(h, buf[half:], half) // async
				if _, err := fw.Wait(); err != nil {
					errs <- err
					return
				}
				fr := p.SubmitRead(h, got, 0)
				if _, err := fr.Wait(); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, buf) {
					errs <- fmt.Errorf("client %d round %d: read-back mismatch", c, r)
					return
				}
				_ = p.Stats() // concurrent telemetry reads
				if err := h.Close(); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Allocs != 0 {
		t.Fatalf("leaked allocations: %d", st.Allocs)
	}
}
