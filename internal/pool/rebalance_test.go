package pool

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"buddy/internal/core"
	"buddy/internal/race"
)

// TestRebalanceScanZeroAlloc pins the watcher's steady-state cost: the
// pressure scan that runs on every rebalancer tick inside serving processes
// must not allocate.
func TestRebalanceScanZeroAlloc(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	if race.Enabled {
		t.Skip("race instrumentation allocates")
	}
	devices := make([]*core.Device, 4)
	for i := range devices {
		devices[i] = core.NewDevice(core.Config{DeviceBytes: 64 << 10})
	}
	// A long interval arms the rebalancer state without letting the
	// supervisor tick during the measurement.
	p, err := New(devices, Config{RebalanceInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	if _, err := p.Malloc("load", 16<<10, core.Target2x); err != nil {
		t.Fatal(err)
	}
	if a := testing.AllocsPerRun(200, func() {
		p.rebalanceScan()
	}); a != 0 {
		t.Errorf("rebalanceScan allocates %.1f/op, want 0", a)
	}
}

// TestRebalancerMovesHotAllocation drives the watcher end to end: all load
// lands on shard 0, the skew crosses the threshold, and the supervisor
// live-migrates an allocation to the idle shard without anyone asking.
func TestRebalancerMovesHotAllocation(t *testing.T) {
	devices := []*core.Device{
		core.NewDevice(core.Config{DeviceBytes: 64 << 10}),
		core.NewDevice(core.Config{DeviceBytes: 64 << 10}),
	}
	p, err := New(devices, Config{
		Placement:         Explicit(0),
		RebalanceInterval: 2 * time.Millisecond,
		RebalanceSkew:     0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	want := make([]byte, 32<<10)
	pattern(want, 7)
	h, err := p.Malloc("hot", int64(len(want)), core.Target1x)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for h.Shard() == 0 {
		select {
		case <-deadline:
			t.Fatal("rebalancer never moved the hot allocation")
		case <-time.After(time.Millisecond):
		}
	}
	got := make([]byte, len(want))
	if _, err := h.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("rebalancer migration corrupted data")
	}
}

// TestSupervisorSurvivesPanic pins the restart idiom: a panicking user
// OnRecover callback must not kill the maintenance goroutine — the next
// failure still auto-recovers.
func TestSupervisorSurvivesPanic(t *testing.T) {
	fi := NewFailureInjector()
	devices := []*core.Device{
		core.NewDevice(core.Config{DeviceBytes: 64 << 10}),
		core.NewDevice(core.Config{DeviceBytes: 64 << 10}),
	}
	var calls atomic.Int64
	second := make(chan RecoveryStats, 1)
	p, err := New(devices, Config{
		Injector:    fi,
		AutoRecover: true,
		OnRecover: func(rs RecoveryStats) {
			if calls.Add(1) == 1 {
				panic("instrumentation bug")
			}
			second <- rs
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	if err := fi.Kill(0); err != nil {
		t.Fatal(err)
	}
	// The first recovery completes before its callback panics; wait until
	// the shard is healthy again, then fail the other one.
	deadline := time.After(5 * time.Second)
	for p.Stats().Shards[0].Failed {
		select {
		case <-deadline:
			t.Fatal("first auto-recovery never completed")
		case <-time.After(time.Millisecond):
		}
	}
	if err := fi.Kill(1); err != nil {
		t.Fatal(err)
	}
	select {
	case rs := <-second:
		if rs.Shard != 1 {
			t.Errorf("second recovery reported shard %d, want 1", rs.Shard)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("supervisor died with the panicking callback")
	}
}
