package pool

import (
	"testing"

	"buddy/internal/benchgate"
	"buddy/internal/core"
	"buddy/internal/race"
)

// TestGateCatchesDepooledFuture demonstrates the allocs/op bench-gate end to
// end, mirroring benchgate's TestGateCatchesSlowedCodec: measure the real
// submit→complete path, pin it at its true allocation count (zero), then
// deliberately disable the task/future pools and require the comparator to
// fail. This is the in-tree proof that `make bench-gate` rejects a de-pooled
// fast path — the exact regression that would silently reintroduce per-op
// garbage on the serving path.
func TestGateCatchesDepooledFuture(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	if race.Enabled {
		t.Skip("race instrumentation allocates")
	}
	p := newAsyncPool(t, 1, 1, 8)
	h, err := p.Malloc("gate", 64*core.EntryBytes, core.Target2x)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, core.EntryBytes)
	pattern(buf, 5)
	submit := func() {
		if _, err := p.SubmitWrite(h, buf, 0).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 32; i++ {
		submit() // warm the pools and the retained stream buffers
	}

	healthy := testing.AllocsPerRun(100, submit)
	base := benchgate.Baseline{
		Tolerance:   1.3,
		AllocsPerOp: map[string]float64{"SubmitWrite": healthy},
	}
	if healthy != 0 {
		t.Fatalf("healthy submit path allocates %.1f/op, want 0", healthy)
	}
	if vs := benchgate.Compare(base, benchgate.Results{
		AllocsPerOp: map[string]float64{"SubmitWrite": healthy},
	}); len(vs) != 0 {
		t.Fatalf("healthy path failed its own gate: %v", vs)
	}

	// De-pool the fast path: every submit now allocates a fresh task and
	// future, the regression the 0 pin exists to catch.
	depooled.Store(true)
	defer depooled.Store(false)
	depooledAllocs := testing.AllocsPerRun(100, submit)
	if depooledAllocs == 0 {
		t.Fatal("de-pooled path reports 0 allocs/op; the hook is broken")
	}
	vs := benchgate.Compare(base, benchgate.Results{
		AllocsPerOp: map[string]float64{"SubmitWrite": depooledAllocs},
	})
	if len(vs) != 1 {
		t.Fatalf("de-pooled path (%.1f allocs/op vs pinned %.1f) passed the gate",
			depooledAllocs, healthy)
	}
	t.Logf("gate caught the de-pooled path: %s", vs[0])
}
