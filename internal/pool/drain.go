package pool

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"buddy/internal/core"
)

// Shard lifecycle: every shard is healthy, draining, or failed.
//
//	healthy  --Drain-->  draining  --Reopen-->  healthy
//	healthy/draining  --Kill-->  failed  --Recover-->  healthy
//
// Draining and failed shards accept no new placements (Malloc skips them,
// MigrateHandle refuses them as destinations). A draining shard keeps
// serving its residents until Drain's evacuation moves them off; a failed
// shard fails every data-path operation with core.ErrDeviceFailed until
// Recover rebuilds its device tier from the buddy carve-out.
const (
	shardHealthy int32 = iota
	shardDraining
	shardFailed
)

// ErrShardDraining is returned (wrapped) when an operation targets a shard
// that is draining: a second Drain, a placement-refusing Malloc, or a
// migration into it.
var ErrShardDraining = errors.New("pool: shard draining")

// ErrShardFailed is returned (wrapped) when an operation targets a shard
// whose device tier has been killed and not yet recovered.
var ErrShardFailed = errors.New("pool: shard failed")

func (p *Pool) checkShard(op string, shard int) error {
	if shard < 0 || shard >= len(p.devices) {
		return fmt.Errorf("pool: %s on shard %d of %d", op, shard, len(p.devices))
	}
	return nil
}

// Drain evacuates every allocation off the shard for maintenance: the
// shard immediately stops accepting placements, then each resident
// allocation is live-migrated to the healthy shard with the most free
// device bytes (falling through the rest in headroom order). Handles keep
// working throughout — their routes follow the moves. The shard stays in
// the draining state after Drain returns, even on error, until Reopen;
// draining an already-draining shard fails with ErrShardDraining, a failed
// shard with ErrShardFailed, and a closed pool with ErrClosed (Close
// retires the maintenance plane along with the queues).
func (p *Pool) Drain(shard int) error {
	if err := p.checkShard("Drain", shard); err != nil {
		return err
	}
	if p.closed.Load() {
		return fmt.Errorf("pool: Drain shard %d: %w", shard, ErrClosed)
	}
	if !p.state[shard].CompareAndSwap(shardHealthy, shardDraining) {
		if p.state[shard].Load() == shardFailed {
			return fmt.Errorf("pool: Drain shard %d: %w", shard, ErrShardFailed)
		}
		return fmt.Errorf("pool: Drain shard %d: %w", shard, ErrShardDraining)
	}
	// Evacuate until a sweep finds the shard empty: a migration that was
	// already past its destination reservation when the drain began can
	// still land here, so one pass is not proof of emptiness.
	for {
		hs := p.handlesOn(shard)
		if len(hs) == 0 {
			return nil
		}
		moved := 0
		var errs []error
		for _, h := range hs {
			switch err := p.evacuate(h, shard); {
			case err == nil:
				moved++
			case len(errs) < 8:
				errs = append(errs, err)
			}
		}
		if moved == 0 {
			return fmt.Errorf("pool: Drain shard %d: %d allocations not evacuated: %w",
				shard, len(hs), errors.Join(errs...))
		}
	}
}

// Reopen returns a drained shard to service. Reopening a healthy shard is
// a no-op; a failed shard must go through Recover instead.
func (p *Pool) Reopen(shard int) error {
	if err := p.checkShard("Reopen", shard); err != nil {
		return err
	}
	if p.state[shard].Load() == shardFailed {
		return fmt.Errorf("pool: Reopen shard %d: %w", shard, ErrShardFailed)
	}
	p.state[shard].CompareAndSwap(shardDraining, shardHealthy)
	return nil
}

// evacuate moves one handle off the given shard, trying healthy
// destinations in descending free-device-bytes order and skipping full
// ones. A handle that already moved (racing evacuation) counts as done.
func (p *Pool) evacuate(h *Handle, from int) error {
	if h.Shard() != from {
		return nil
	}
	type cand struct {
		shard int
		free  int64
	}
	cands := make([]cand, 0, len(p.devices))
	for i, d := range p.devices {
		if i == from || p.state[i].Load() != shardHealthy {
			continue
		}
		primary, _ := d.Tiers()
		cands = append(cands, cand{i, primary.Capacity() - d.DeviceUsed()})
	}
	if len(cands) == 0 {
		return fmt.Errorf("pool: evacuate %q off shard %d: no healthy destination", h.name, from)
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].free > cands[b].free })
	var errs []error
	for _, c := range cands {
		err := p.MigrateHandle(h, c.shard)
		if err == nil {
			return nil
		}
		errs = append(errs, err)
		if !errors.Is(err, core.ErrOutOfMemory) {
			break
		}
	}
	return errors.Join(errs...)
}

// FailureInjector kills shards of the pool it is attached to — the fault
// hook behind the heal experiment and the failure tests. Construct it with
// NewFailureInjector, hand it to the pool via Config.Injector (or
// buddy.WithFailureInjector), then Kill shards mid-serve.
type FailureInjector struct {
	mu sync.Mutex
	p  *Pool
}

// NewFailureInjector returns an unattached injector; the pool it is passed
// to attaches itself at construction.
func NewFailureInjector() *FailureInjector { return &FailureInjector{} }

func (fi *FailureInjector) attach(p *Pool) {
	fi.mu.Lock()
	fi.p = p
	fi.mu.Unlock()
}

// Kill marks the shard's device tier failed, mid-serve: in-flight
// operations that already passed the device's failure check complete, and
// every subsequent data-path operation on the shard fails with an error
// wrapping core.ErrDeviceFailed until recovery. Killing an already-failed
// shard fails with ErrShardFailed. If the pool runs with AutoRecover, the
// supervisor rebuilds the shard in the background.
func (fi *FailureInjector) Kill(shard int) error {
	fi.mu.Lock()
	p := fi.p
	fi.mu.Unlock()
	if p == nil {
		return errors.New("pool: failure injector not attached to a pool")
	}
	return p.failShard(shard)
}

func (p *Pool) failShard(shard int) error {
	if err := p.checkShard("Kill", shard); err != nil {
		return err
	}
	for {
		st := p.state[shard].Load()
		if st == shardFailed {
			return fmt.Errorf("pool: Kill shard %d: %w", shard, ErrShardFailed)
		}
		if p.state[shard].CompareAndSwap(st, shardFailed) {
			break
		}
	}
	p.devices[shard].Fail()
	p.notifyFailure(shard)
	return nil
}

// notifyFailure wakes the supervisor, if one is running. The channel holds
// one slot per shard and a shard cannot fail twice without recovering, so
// the send never drops.
func (p *Pool) notifyFailure(shard int) {
	if p.failures == nil {
		return
	}
	select {
	case p.failures <- shard:
	default:
	}
}

// RecoveryStats reports one shard recovery.
type RecoveryStats struct {
	// Shard is the recovered shard.
	Shard int
	// Entries is the number of live entries rebuilt into the device tier.
	Entries int
	// RebuiltBytes is the compressed footprint streamed back over the
	// buddy link during the rebuild.
	RebuiltBytes int64
	// Elapsed is the wall-clock duration of the rebuild.
	Elapsed time.Duration
}

// Recover rebuilds a failed shard's device tier from the buddy carve-out
// (see core.Device.Recover for the traffic model) and returns it to
// service. Recovering a shard that has not failed is an error.
func (p *Pool) Recover(shard int) (RecoveryStats, error) {
	if err := p.checkShard("Recover", shard); err != nil {
		return RecoveryStats{}, err
	}
	if p.state[shard].Load() != shardFailed {
		return RecoveryStats{}, fmt.Errorf("pool: Recover shard %d: shard has not failed", shard)
	}
	start := time.Now()
	entries, rebuilt, err := p.devices[shard].Recover()
	if err != nil {
		return RecoveryStats{}, fmt.Errorf("pool: Recover shard %d: %w", shard, err)
	}
	p.state[shard].Store(shardHealthy)
	return RecoveryStats{
		Shard:        shard,
		Entries:      entries,
		RebuiltBytes: rebuilt,
		Elapsed:      time.Since(start),
	}, nil
}
