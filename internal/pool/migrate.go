package pool

import (
	"errors"
	"fmt"

	"buddy/internal/core"
)

// Cross-shard live migration: MigrateHandle moves a whole allocation's
// framed compressed entries from one shard's device to another while the
// pool keeps serving it. Because entries live as framed streams, a
// codec-matched move is a pure stream handoff over the modeled interconnect
// — ExportEntry/ImportEntry, zero decode round-trips — and both devices
// account the move in Traffic.MigrationBytes (equal on source and
// destination for a clean move). Devices with different codecs fall back to
// a decode/re-encode copy per entry.
//
// Concurrency: the destination layout is reserved up front (clean
// ErrOutOfMemory rollback before anything moves), then a migration epoch is
// installed in the handle's route. The mover advances an entry watermark
// only while holding the handle's route lock exclusively; every concurrent
// ReadAt/WriteAt/Submit holds it shared and splits at the watermark, so
// each entry is served by exactly one device at any instant and no update
// is ever lost. An error mid-move (destination killed, say) migrates the
// moved prefix back and leaves the handle where it started.

// migrateChunkEntries is the mover's lock window: entries transferred per
// exclusive acquisition of the handle's route lock. Small enough that
// concurrent I/O only ever waits for a bounded chunk, large enough to
// amortize the lock churn.
const migrateChunkEntries = 64

// MigrateHandle live-migrates h's allocation to dstShard. It blocks until
// the move commits (or rolls back) and is safe to call while other
// goroutines read and write the handle; migrating to the handle's current
// shard is a no-op. Draining and failed destinations are refused; a full
// destination fails with core.ErrOutOfMemory before anything moves.
// Migrating *off* a failed shard works — the framed streams survive in the
// carve-out mirror — which is what drain-style evacuation of a dead tier
// relies on.
func (h *Handle) migrateTo(dstShard int) error {
	p := h.pool
	h.ctl.Lock()
	defer h.ctl.Unlock()

	h.mu.RLock()
	src := h.rt.a
	srcShard := h.rt.shard
	h.mu.RUnlock()
	if srcShard == dstShard {
		return nil
	}
	switch p.state[dstShard].Load() {
	case shardDraining:
		return fmt.Errorf("pool: migrate %q to shard %d: %w", h.name, dstShard, ErrShardDraining)
	case shardFailed:
		return fmt.Errorf("pool: migrate %q to shard %d: %w", h.name, dstShard, ErrShardFailed)
	}

	srcDev, dstDev := p.devices[srcShard], p.devices[dstShard]
	// Reserve the destination layout up front: an out-of-memory destination
	// fails here, before any entry moves, so rollback is a plain Free.
	dst, err := dstDev.Malloc(h.name, h.size, src.Target())
	if err != nil {
		return fmt.Errorf("pool: migrate %q shard %d->%d: reserve destination: %w",
			h.name, srcShard, dstShard, err)
	}

	// Install the migration epoch; from here every I/O splits at the
	// watermark.
	h.mu.Lock()
	h.rt.mig = &handleMigration{dstShard: dstShard, dst: dst}
	h.mu.Unlock()

	sameCodec := srcDev.SameCodecAs(dstDev)
	if err := h.migrateEntries(src, dst, sameCodec); err != nil {
		rbErr := h.rollbackMigration(src, dst, sameCodec)
		if closeErr := dst.Close(); closeErr != nil && rbErr == nil {
			rbErr = closeErr
		}
		return errors.Join(err, rbErr)
	}

	// Cutover: the handle now routes everything to the destination, and the
	// source layout is released. Concurrent I/O between the last chunk and
	// this commit already went to the destination — the watermark covered
	// every entry.
	h.mu.Lock()
	h.rt = handleRoute{shard: dstShard, a: dst}
	h.mu.Unlock()
	return src.Close()
}

// MigrateHandle live-migrates h's allocation to dstShard; see Handle's
// migrateTo for the full contract. Handles from another pool are refused.
func (p *Pool) MigrateHandle(h *Handle, dstShard int) error {
	if h == nil || h.pool != p {
		return errors.New("pool: MigrateHandle on a handle from another pool")
	}
	if dstShard < 0 || dstShard >= len(p.devices) {
		return fmt.Errorf("pool: MigrateHandle to shard %d of %d", dstShard, len(p.devices))
	}
	return h.migrateTo(dstShard)
}

// moveEntry transfers entry i between allocations: a framed-stream handoff
// when the codecs match (no decode), decode/re-encode when they differ.
// streamBuf must have MaxStreamBytes capacity; entryBuf is one entry.
func moveEntry(from, to *core.Allocation, i int, sameCodec bool, streamBuf, entryBuf []byte) error {
	if sameCodec {
		stream, sectors, written, err := from.ExportEntry(i, streamBuf[:0])
		if err != nil {
			return err
		}
		if !written {
			return nil // never-written entries read as zero on both sides
		}
		return to.ImportEntry(i, stream, sectors)
	}
	if err := from.ReadEntry(i, entryBuf); err != nil {
		return err
	}
	return to.WriteEntry(i, entryBuf)
}

// migrateEntries runs the mover: chunks of migrateChunkEntries moved under
// the route lock held exclusively, watermark advanced per entry.
func (h *Handle) migrateEntries(src, dst *core.Allocation, sameCodec bool) error {
	n := src.EntryCount
	streamBuf := make([]byte, 0, core.MaxStreamBytes)
	entryBuf := make([]byte, core.EntryBytes)
	for base := 0; base < n; base += migrateChunkEntries {
		end := min(base+migrateChunkEntries, n)
		h.mu.Lock()
		m := h.rt.mig
		for i := base; i < end; i++ {
			if err := moveEntry(src, dst, i, sameCodec, streamBuf, entryBuf); err != nil {
				h.mu.Unlock()
				return fmt.Errorf("pool: migrate %q entry %d: %w", h.name, i, err)
			}
			m.moved = i + 1
		}
		h.mu.Unlock()
	}
	return nil
}

// rollbackMigration undoes a partial move: entries [0, moved) are copied
// back from the destination — which holds their freshest contents, since
// post-watermark writes landed there — and the epoch is cleared, restoring
// the pre-migration route. Best effort: an entry that cannot be copied back
// (e.g. a mismatched-codec rollback off a killed destination) is reported
// and the source keeps its pre-move copy of that entry.
func (h *Handle) rollbackMigration(src, dst *core.Allocation, sameCodec bool) error {
	streamBuf := make([]byte, 0, core.MaxStreamBytes)
	entryBuf := make([]byte, core.EntryBytes)
	var errs []error
	for {
		h.mu.Lock()
		m := h.rt.mig
		if m.moved == 0 {
			h.rt.mig = nil
			h.mu.Unlock()
			return errors.Join(errs...)
		}
		base := max(0, m.moved-migrateChunkEntries)
		for i := m.moved - 1; i >= base; i-- {
			if err := moveEntry(dst, src, i, sameCodec, streamBuf, entryBuf); err != nil && len(errs) < 8 {
				errs = append(errs, fmt.Errorf("pool: rollback %q entry %d: %w", h.name, i, err))
			}
			m.moved = i
		}
		h.mu.Unlock()
	}
}
