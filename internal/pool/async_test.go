package pool

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"buddy/internal/core"
	"buddy/internal/race"
)

// newAsyncPool builds a pool with explicit worker/queue settings for the
// async-path tests.
func newAsyncPool(t *testing.T, shards, workers, depth int) *Pool {
	t.Helper()
	devices := make([]*core.Device, shards)
	for i := range devices {
		devices[i] = core.NewDevice(core.Config{DeviceBytes: 4 << 20})
	}
	p, err := New(devices, Config{Workers: workers, QueueDepth: depth})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	return p
}

// TestSubmitSteadyStateZeroAlloc proves the tentpole acceptance criterion:
// after warm-up, the submit→complete round trip allocates nothing on the
// caller side — tasks and futures come from pools, completion is
// channel-free, and the worker stages coalesced runs in pooled buffers.
// AllocsPerRun counts allocations process-wide, so worker-side allocations
// would fail this test too. The tenant leg submits through a configured
// non-default tenant in a higher priority class, so the classed
// weighted-fair dequeue, admission plumbing and latency recording are all
// on the measured path.
func TestSubmitSteadyStateZeroAlloc(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	if race.Enabled {
		t.Skip("race instrumentation allocates")
	}
	t.Run("default", func(t *testing.T) {
		p := newAsyncPool(t, 1, 1, 8)
		h, err := p.Malloc("steady", 64*core.EntryBytes, core.Target2x)
		if err != nil {
			t.Fatal(err)
		}
		checkSteadyZeroAlloc(t, p, h)
	})
	t.Run("tenant", func(t *testing.T) {
		devices := []*core.Device{core.NewDevice(core.Config{DeviceBytes: 4 << 20})}
		p, err := New(devices, Config{Workers: 1, QueueDepth: 8, Tenants: map[string]TenantConfig{
			"latency": {Priority: 2, Weight: 2, CapacityBytes: 1 << 20},
		}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = p.Close() })
		door, err := p.Tenant("latency")
		if err != nil {
			t.Fatal(err)
		}
		h, err := door.Malloc("steady", 64*core.EntryBytes, core.Target2x)
		if err != nil {
			t.Fatal(err)
		}
		checkSteadyZeroAlloc(t, p, h)
	})
}

func checkSteadyZeroAlloc(t *testing.T, p *Pool, h *Handle) {
	t.Helper()
	buf := make([]byte, core.EntryBytes)
	pattern(buf, 3)
	// Warm up: first touches allocate retained stream buffers and pool
	// entries.
	for i := 0; i < 32; i++ {
		if _, err := p.SubmitWrite(h, buf, int64(i%4)*core.EntryBytes).Wait(); err != nil {
			t.Fatal(err)
		}
		if _, err := p.SubmitRead(h, buf, int64(i%4)*core.EntryBytes).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if a := testing.AllocsPerRun(200, func() {
		if _, err := p.SubmitWrite(h, buf, 0).Wait(); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("steady-state SubmitWrite+Wait allocates %.1f/op, want 0", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		if _, err := p.SubmitRead(h, buf, 0).Wait(); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("steady-state SubmitRead+Wait allocates %.1f/op, want 0", a)
	}
}

// TestCoalescingStress is the -race proof for the coalescing worker: many
// clients interleave contiguous entry-aligned streams (coalescible) with
// unaligned single writes (not coalescible) against shared shard queues, and
// every byte must read back exactly. Workers:1 keeps each shard FIFO so
// last-write-wins holds per offset.
func TestCoalescingStress(t *testing.T) {
	p := newAsyncPool(t, 2, 1, defaultQueueDepth)
	const clients = 8
	const chunk = 2 * core.EntryBytes
	const chunks = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h, err := p.Malloc(fmt.Sprintf("c%d", c), chunk*chunks+core.EntryBytes, core.Target2x)
			if err != nil {
				errs <- err
				return
			}
			want := make([]byte, chunk*chunks)
			pattern(want, byte(c))
			// Open-loop contiguous stream: adjacent chunks pile up on the
			// queue and the worker coalesces them.
			futs := make([]*Future, 0, chunks)
			for i := 0; i < chunks; i++ {
				futs = append(futs, p.SubmitWrite(h, want[i*chunk:(i+1)*chunk], int64(i*chunk)))
			}
			// Interleave a non-coalescible unaligned write near the tail.
			tailOff := int64(chunk * chunks)
			tail := []byte{0xAB, 0xCD, 0xEF}
			ft := p.SubmitWrite(h, tail, tailOff+5)
			for i, f := range futs {
				if n, err := f.Wait(); err != nil || n != chunk {
					errs <- fmt.Errorf("client %d chunk %d: n=%d err=%w", c, i, n, err)
					return
				}
			}
			if n, err := ft.Wait(); err != nil || n != len(tail) {
				errs <- fmt.Errorf("client %d tail: n=%d err=%w", c, n, err)
				return
			}
			// Read back through the async path in coalescible chunks too.
			got := make([]byte, len(want))
			rfuts := make([]*Future, 0, chunks)
			for i := 0; i < chunks; i++ {
				rfuts = append(rfuts, p.SubmitRead(h, got[i*chunk:(i+1)*chunk], int64(i*chunk)))
			}
			for i, f := range rfuts {
				if n, err := f.Wait(); err != nil || n != chunk {
					errs <- fmt.Errorf("client %d read %d: n=%d err=%w", c, i, n, err)
					return
				}
			}
			if !bytes.Equal(got, want) {
				errs <- fmt.Errorf("client %d: read-back mismatch", c)
				return
			}
			gtail := make([]byte, len(tail))
			if _, err := p.SubmitRead(h, gtail, tailOff+5).Wait(); err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(gtail, tail) {
				errs <- fmt.Errorf("client %d: unaligned tail mismatch", c)
				return
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The open-loop streams must actually have exercised the coalescer.
	if st := p.Stats().Async; st.CoalescedRuns == 0 || st.CoalescedTasks < 2*st.CoalescedRuns {
		t.Fatalf("coalescer never engaged: %+v", st)
	}
}

// TestCoalescedCompletionParity pins the per-task results of a coalesced run
// to exactly what uncoalesced execution produces: each future reports its own
// submission's byte count, and a failing run (allocation freed mid-flight)
// replays task by task so each future carries the error WriteAt would have
// returned.
func TestCoalescedCompletionParity(t *testing.T) {
	p := newAsyncPool(t, 1, 1, defaultQueueDepth)
	const chunks = 8
	sizes := []int{
		core.EntryBytes, 2 * core.EntryBytes, core.EntryBytes, 3 * core.EntryBytes,
		core.EntryBytes, core.EntryBytes, 2 * core.EntryBytes, core.EntryBytes,
	}
	total := 0
	for _, s := range sizes {
		total += s
	}
	h, err := p.Malloc("parity", int64(total), core.Target2x)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, total)
	pattern(data, 9)

	// Uncoalesced reference: synchronous WriteAt per chunk.
	wantN := make([]int, chunks)
	off := 0
	for i, s := range sizes {
		n, err := h.WriteAt(data[off:off+s], int64(off))
		if err != nil {
			t.Fatal(err)
		}
		wantN[i] = n
		off += s
	}

	// Coalesced run: same chunks submitted open-loop; each future must
	// report its own chunk's byte count, not the run total.
	futs := make([]*Future, 0, chunks)
	off = 0
	for _, s := range sizes {
		futs = append(futs, p.SubmitWrite(h, data[off:off+s], int64(off)))
		off += s
	}
	for i, f := range futs {
		if n, err := f.Wait(); err != nil || n != wantN[i] {
			t.Fatalf("task %d: coalesced n=%d err=%v, uncoalesced n=%d err=nil", i, n, err, wantN[i])
		}
	}
	if st := p.Stats().Async; st.CoalescedTasks == 0 {
		t.Fatalf("run never coalesced: %+v", st)
	}

	// Failure parity: free the allocation, then submit a coalescible run.
	// The batch fails, the worker replays each task individually, and every
	// future reports the exact ErrFreed WriteAt would return.
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	futs = futs[:0]
	off = 0
	for _, s := range sizes {
		futs = append(futs, p.SubmitWrite(h, data[off:off+s], int64(off)))
		off += s
	}
	for i, f := range futs {
		if n, err := f.Wait(); n != 0 || !errors.Is(err, core.ErrFreed) {
			t.Fatalf("freed task %d: n=%d err=%v, want 0/ErrFreed", i, n, err)
		}
	}
}

// TestCloseDuringBackpressure is the regression test for the old
// RWMutex-across-send deadlock: submitters blocked on a full queue while
// Close runs must fail their futures with ErrClosed (or complete normally if
// they won the race), queued operations must still execute, and nothing may
// deadlock. The worker is gated so the queue genuinely fills.
func TestCloseDuringBackpressure(t *testing.T) {
	devices := []*core.Device{core.NewDevice(core.Config{DeviceBytes: 4 << 20})}
	p, err := New(devices, Config{Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	h, err := p.Malloc("bp", 64*core.EntryBytes, core.Target1x)
	if err != nil {
		t.Fatal(err)
	}
	// 16 submitters against a depth-2 queue: well past the queue depth, so
	// some goroutines are blocked inside the channel send when Close fires.
	const submitters = 16
	var wg sync.WaitGroup
	results := make(chan error, submitters)
	buf := make([]byte, core.EntryBytes)
	pattern(buf, 1)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := p.SubmitWrite(h, buf, int64(i%8)*core.EntryBytes).Wait()
			results <- err
		}(i)
	}
	// Close concurrently with the submitters; every Wait above must return.
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(results)
	for err := range results {
		if err != nil && !errors.Is(err, ErrClosed) {
			t.Fatalf("submitter failed with %v, want nil or ErrClosed", err)
		}
	}
	// The pool is fully drained: a late submit fails immediately.
	if _, err := p.SubmitWrite(h, buf, 0).Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close = %v, want ErrClosed", err)
	}
}

// TestFutureDoneSelect covers the lazy Done channel: select-users see the
// channel close on completion, whether Done is called before or after the
// operation finishes, and Wait still returns the result afterwards.
func TestFutureDoneSelect(t *testing.T) {
	p := newAsyncPool(t, 1, 1, 4)
	h, err := p.Malloc("done", 8*core.EntryBytes, core.Target1x)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, core.EntryBytes)
	f := p.SubmitWrite(h, buf, 0)
	<-f.Done() // Done before/during completion: must close
	if n, err := f.Wait(); err != nil || n != len(buf) {
		t.Fatalf("Wait after Done: n=%d err=%v", n, err)
	}
	// Done called after completion (future already completed, channel
	// materializes closed).
	f = p.SubmitWrite(h, buf, 0)
	for {
		select {
		case <-f.Done():
			if n, err := f.Wait(); err != nil || n != len(buf) {
				t.Fatalf("late Done: n=%d err=%v", n, err)
			}
			return
		default:
		}
	}
}

// TestFutureDoubleWaitPanics pins the recycled-future guard: a second Wait on
// a consumed future must panic rather than silently corrupt a recycled one.
func TestFutureDoubleWaitPanics(t *testing.T) {
	// Keep the future out of the recycling pool so the second Wait hits the
	// guard deterministically instead of racing a re-checkout.
	depooled.Store(true)
	defer depooled.Store(false)
	p := newAsyncPool(t, 1, 1, 4)
	h, err := p.Malloc("dw", 8*core.EntryBytes, core.Target1x)
	if err != nil {
		t.Fatal(err)
	}
	f := p.SubmitWrite(h, make([]byte, core.EntryBytes), 0)
	if _, err := f.Wait(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("second Wait did not panic")
		}
	}()
	_, _ = f.Wait()
}
