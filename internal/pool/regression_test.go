package pool

import (
	"errors"
	"strings"
	"testing"

	"buddy/internal/core"
)

// retainingPlacement keeps every loads slice it is ever shown — the
// adversarial policy behind the scratch-aliasing regression. A pool that
// hands its internal scratch to Pick would see these retained snapshots
// mutate under later Mallocs.
type retainingPlacement struct {
	seen [][]ShardLoad
}

func (r *retainingPlacement) Name() string { return "retaining" }

func (r *retainingPlacement) Pick(loads []ShardLoad, size int64) int {
	r.seen = append(r.seen, loads)
	return 0
}

// TestPlacementLoadsNotAliased is the loads()-aliasing regression: the
// slice passed to Placement.Pick must be the policy's to keep. Before the
// fix the pool reused one scratch slice across calls, so a policy that
// retained it (for history-aware placement) watched its past observations
// silently rewrite themselves.
func TestPlacementLoadsNotAliased(t *testing.T) {
	place := &retainingPlacement{}
	p := newTestPool(t, 2, place)
	if _, err := p.Malloc("a", 8<<10, core.Target1x); err != nil {
		t.Fatal(err)
	}
	first := append([]ShardLoad(nil), place.seen[0]...)
	// Grow shard 0 so a reused scratch would be overwritten with the new
	// occupancy on the next call.
	if _, err := p.Malloc("b", 16<<10, core.Target1x); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Malloc("c", 1<<10, core.Target1x); err != nil {
		t.Fatal(err)
	}
	for i, l := range place.seen[0] {
		if l != first[i] {
			t.Fatalf("retained loads snapshot mutated: shard %d was %+v, now %+v",
				i, first[i], l)
		}
	}
}

// TestMallocSpillErrorListsHeadroom is the error-context satellite: when an
// allocation fits no shard, the error must name every shard's free device
// bytes — not just the first OOM — and still satisfy errors.Is
// ErrOutOfMemory.
func TestMallocSpillErrorListsHeadroom(t *testing.T) {
	p := newTestPool(t, 2, nil)
	// Occupy shard 1 so the two shards report different headroom.
	if _, err := p.Malloc("pad", 16<<10, core.Target1x); err != nil {
		t.Fatal(err)
	}
	_, err := p.Malloc("huge", 1<<20, core.Target1x)
	if err == nil {
		t.Fatal("oversized Malloc succeeded")
	}
	if !errors.Is(err, core.ErrOutOfMemory) {
		t.Fatalf("spill error is not ErrOutOfMemory: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "free device bytes per shard") {
		t.Errorf("spill error lacks the headroom listing: %q", msg)
	}
	for _, want := range []string{"0:", "1:"} {
		if !strings.Contains(msg, want) {
			t.Errorf("spill error does not mention shard %q headroom: %q", want, msg)
		}
	}
	// Every shard's own failure reason must survive the wrap.
	if !strings.Contains(msg, "shard 0:") || !strings.Contains(msg, "shard 1:") {
		t.Errorf("spill error dropped a shard's cause: %q", msg)
	}
}
