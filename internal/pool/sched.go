package pool

import (
	"sync"
	"sync/atomic"

	"buddy/internal/core"
	"buddy/internal/dram"
	"buddy/internal/nvlink"
)

// Per-shard tenant-aware scheduler, replacing the FIFO submission
// channel: each shard keeps one fixed-capacity task ring per tenant and
// dequeues with strict priority across classes (an escape valve prevents
// starvation) and deficit round-robin across the tenants within a class
// (long-run served bytes proportional to configured weights). A dequeue
// hands the worker a window drawn from a single tenant's ring, so the
// worker's run-coalescing never merges tasks across tenants — and within
// one tenant it behaves exactly like the old FIFO window.
//
// The scheduler also owns the shard's modeled virtual clock: each
// completed run advances it by the run's service cycles (device and link
// portions split by the allocation's target ratio), and a task's modeled
// latency is the clock distance from submit to completion — queueing
// included. Everything on the enqueue/dequeue path is allocation-free:
// rings are preallocated, the DRR state is plain integers, and blocking
// (full ring, empty shard) parks on sync.Cond.

const (
	// numClasses is the number of strict priority classes; TenantConfig
	// priorities clamp into [0, numClasses).
	numClasses = 4

	// escapeEvery is the anti-starvation valve: after this many
	// consecutive dequeues served from a higher class while lower-class
	// work was waiting, one dequeue is granted to a starved lower class
	// (rotating among them), bounding any tenant's wait to
	// escapeEvery runs.
	escapeEvery = 16

	// drrQuantum is the byte credit a weight-1 tenant's ring earns per
	// scheduler visit; a tenant's per-visit credit is drrQuantum x weight.
	// Large enough that a weight-1 tenant still dispatches a coalescible
	// multi-task window per turn.
	drrQuantum = 32 << 10

	// taskCostFloor is added to every task's byte cost so zero- and
	// tiny-payload tasks still drain deficit (count-fairness floor of one
	// entry per task).
	taskCostFloor = core.EntryBytes
)

// Modeled cycle costs per payload byte, from the paper's Tab. 2 memory
// system and NVLink2 link: the device portion of an entry moves at HBM2
// bandwidth, the overflow portion at link bandwidth, both against the
// core clock.
var (
	devCyclesPerByte = func() float64 {
		c := dram.DefaultConfig()
		return c.CoreClockGHz / c.BandwidthGBs
	}()
	linkCyclesPerByte = func() float64 {
		c := nvlink.DefaultConfig()
		return c.CoreClockGHz / c.BandwidthGBs
	}()
)

// taskRing is one tenant's fixed-capacity FIFO on one shard.
type taskRing struct {
	buf     []*task
	head, n int
	deficit int64 // DRR byte credit
}

//buddy:hotpath
func (r *taskRing) push(t *task) {
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = t
	r.n++
}

//buddy:hotpath
func (r *taskRing) peek() *task { return r.buf[r.head] }

//buddy:hotpath
func (r *taskRing) pop() *task {
	t := r.buf[r.head]
	r.buf[r.head] = nil
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return t
}

// sched is one shard's scheduler.
type sched struct {
	mu    sync.Mutex
	more  sync.Cond // workers wait here for queued work
	space sync.Cond // submitters wait here for ring space
	shut  bool

	tens    []*tenant // pool's tenants, by index
	rings   []taskRing
	total   int                 // queued tasks across all rings
	count   [numClasses]int     // queued tasks per class
	classes [numClasses][]int   // tenant indexes per class
	cursor  [numClasses]int     // DRR rotation point per class
	hiRuns  int                 // consecutive higher-class dequeues over waiting lower-class work
	valve   int                 // rotates escape-valve grants among starved classes

	// clock is the shard's modeled virtual time in device+link cycles;
	// see advance.
	clock atomic.Uint64
}

func newSched(tens []*tenant, depth int) *sched {
	s := &sched{tens: tens, rings: make([]taskRing, len(tens))}
	s.more.L = &s.mu
	s.space.L = &s.mu
	for i := range s.rings {
		s.rings[i].buf = make([]*task, depth)
	}
	for i, t := range tens {
		s.classes[t.cls] = append(s.classes[t.cls], i)
	}
	return s
}

// shutdown wakes every parked submitter (their enqueues fail with
// ErrClosed) and lets workers drain the remaining backlog and exit.
func (s *sched) shutdown() {
	s.mu.Lock()
	s.shut = true
	s.space.Broadcast()
	s.more.Broadcast()
	s.mu.Unlock()
}

// enqueue appends a task to its tenant's ring, blocking while the ring is
// at capacity. Per-tenant backpressure is the point: one tenant's backlog
// fills its own ring and parks its own submitters without taking queue
// space from anyone else.
//
//buddy:hotpath
func (s *sched) enqueue(t *task, tn *tenant) error {
	s.mu.Lock()
	r := &s.rings[tn.idx]
	for r.n == len(r.buf) && !s.shut {
		s.space.Wait()
	}
	if s.shut {
		s.mu.Unlock()
		return ErrClosed
	}
	r.push(t)
	s.total++
	s.count[tn.cls]++
	s.more.Signal()
	s.mu.Unlock()
	tn.queued.Add(1)
	return nil
}

// dequeue fills run with the next window of tasks — all from one tenant,
// in that tenant's FIFO order — and returns how many, blocking while the
// shard is idle. Returns 0 only when the scheduler has shut down and the
// backlog is drained.
//
//buddy:hotpath
func (s *sched) dequeue(run *[maxRunTasks]*task) int {
	s.mu.Lock()
	for s.total == 0 {
		if s.shut {
			s.mu.Unlock()
			return 0
		}
		s.more.Wait()
	}
	// Strict priority: serve the highest non-empty class — unless
	// lower-class work has now waited escapeEvery consecutive
	// higher-class dequeues, in which case one starved class (rotating
	// among them) gets this turn.
	hi := numClasses - 1
	for s.count[hi] == 0 {
		hi--
	}
	c := hi
	var below [numClasses]int
	nb := 0
	for k := hi - 1; k >= 0; k-- {
		if s.count[k] > 0 {
			below[nb] = k
			nb++
		}
	}
	if nb > 0 {
		s.hiRuns++
		if s.hiRuns >= escapeEvery {
			s.hiRuns = 0
			c = below[s.valve%nb]
			s.valve++
		}
	} else {
		s.hiRuns = 0
	}
	n := s.drr(c, run)
	s.space.Broadcast()
	s.mu.Unlock()
	return n
}

// drr serves one window from class c (which must have queued work) by
// deficit round-robin: scan the class's tenants from the rotation cursor,
// topping each non-empty ring's byte credit up by quantum x weight per
// visit, and serve the first ring whose credit covers its head task.
// Repeated scans make every deficit grow, so a non-empty class always
// serves. A ring holding the shard's only queued work bypasses the
// deficit entirely — with no competitor, throttling a lone tenant to its
// quantum would only shrink the coalescing window.
//
//buddy:hotpath
func (s *sched) drr(c int, run *[maxRunTasks]*task) int {
	ten := s.classes[c]
	for {
		for k := 0; k < len(ten); k++ {
			pos := s.cursor[c] + k
			if pos >= len(ten) {
				pos -= len(ten)
			}
			i := ten[pos]
			r := &s.rings[i]
			if r.n == 0 {
				continue
			}
			tn := s.tens[i]
			r.deficit += drrQuantum * tn.weight
			lone := r.n == s.total
			if !lone && r.deficit < taskCost(r.peek()) {
				continue
			}
			n, bytes := 0, 0
			for r.n > 0 && n < maxRunTasks {
				t := r.peek()
				if n > 0 && bytes+len(t.buf) > maxRunBytes {
					break
				}
				cost := taskCost(t)
				if !lone && r.deficit < cost {
					break
				}
				r.pop()
				r.deficit -= cost
				run[n] = t
				n++
				bytes += len(t.buf)
			}
			if r.n == 0 || (lone && r.deficit < 0) {
				// An emptied ring does not hoard credit, and the lone-queue
				// bypass does not bank debt against a competitor that shows
				// up later.
				r.deficit = 0
			}
			s.total -= n
			s.count[c] -= n
			s.cursor[c] = pos + 1
			if s.cursor[c] >= len(ten) {
				s.cursor[c] = 0
			}
			tn.queued.Add(int64(-n))
			return n
		}
	}
}

// taskCost is a task's DRR byte cost: payload plus a one-entry floor.
//
//buddy:hotpath
func taskCost(t *task) int64 { return int64(len(t.buf)) + taskCostFloor }

// advance moves the shard's modeled clock by the service cycles of n
// payload bytes moved through handle h — the device-resident fraction of
// each entry at HBM2 bandwidth plus the overflow fraction at link
// bandwidth, per the allocation's target ratio — and returns the new
// clock reading. Completion latency is the distance from the submitting
// clock stamp to this reading, so queueing behind other tenants' runs is
// part of the modeled latency.
//
//buddy:hotpath
func (s *sched) advance(h *Handle, n int) uint64 {
	devFrac := float64(h.Alloc().Target().DeviceBytes()) / float64(core.EntryBytes)
	cycles := float64(n) * (devFrac*devCyclesPerByte + (1-devFrac)*linkCyclesPerByte)
	c := uint64(cycles)
	if c == 0 {
		c = 1
	}
	return s.clock.Add(c)
}
