package pool

import (
	"time"

	"buddy/internal/core"
)

// The maintenance supervisor: one goroutine per pool (started only when
// Config enables AutoRecover or rebalancing) that reacts to shard-failure
// notifications and, on a ticker, watches per-shard pressure skew and
// live-migrates allocations off saturated shards. The goroutine runs under
// a restart supervisor: a panic anywhere in a maintenance action — a user
// OnRecover callback included — is recovered and the loop re-enters, so
// one bad tick can never silently kill the pool's self-healing.

// defaultRebalanceSkew is the pressure gap between the hottest and coldest
// shard that triggers a migration. Pressure is device occupancy fraction
// (0..1) plus the shard's share of the fleet's recent link-busy growth
// (0..1), so 0.5 means "half a device of imbalance, or a strongly lopsided
// link, or some of both".
const defaultRebalanceSkew = 0.5

// rebalanceEWMA smooths each shard's busy share across scans: a single
// scan window is short enough that whichever shard happened to serve the
// last burst claims the whole fleet's busy growth, so the instantaneous
// share is meaningless on a balanced fleet. Smoothed over ~1/alpha windows
// it converges to 1/N under uniform load and to ~1 only for a shard whose
// link is persistently dominant.
const rebalanceEWMA = 0.2

// rebalanceStreak is how many consecutive scans must elect the same
// hottest shard before the watcher migrates anything off it — hysteresis
// against one-window noise (migrating a live allocation is far too
// expensive to do on a fluke).
const rebalanceStreak = 3

// rebalancer holds the watcher's preallocated scan state. The scan itself
// (rebalanceScan) is allocation-free — it runs forever on a ticker inside
// serving processes, pinned by BenchmarkRebalanceScan.
type rebalancer struct {
	skew      float64
	score     []float64 // per-shard pressure scratch
	busy      []float64 // last link busy-cycle snapshot, per shard
	share     []float64 // EWMA-smoothed busy share, per shard
	candidate int       // hottest shard of the current streak (-1 = none)
	streak    int       // consecutive scans electing candidate
}

func newRebalancer(shards int, skew float64) *rebalancer {
	return &rebalancer{
		skew:      skew,
		score:     make([]float64, shards),
		busy:      make([]float64, shards),
		share:     make([]float64, shards),
		candidate: -1,
	}
}

// maintain is the supervisor loop; it exits only when the pool closes.
func (p *Pool) maintain() {
	defer p.maintWG.Done()
	for !p.superviseOnce() {
		// A maintenance action panicked; superviseOnce recovered it and we
		// restart the loop with fresh ticker state (supervisor idiom).
	}
}

// superviseOnce runs the supervisor until the pool closes (returns true)
// or a maintenance action panics (recovered; returns false so maintain
// restarts it).
func (p *Pool) superviseOnce() (done bool) {
	defer func() {
		if r := recover(); r != nil {
			done = false
		}
	}()
	var tickC <-chan time.Time
	if p.rebalEvery > 0 {
		tick := time.NewTicker(p.rebalEvery)
		defer tick.Stop()
		tickC = tick.C
	}
	for {
		select {
		case <-p.stop:
			return true
		case shard := <-p.failures:
			if p.autoRecover {
				rs, err := p.Recover(shard)
				if err == nil && p.onRecover != nil {
					p.onRecover(rs)
				}
			}
		case <-tickC:
			p.rebalanceOnce()
		}
	}
}

// rebalanceScan recomputes per-shard pressure and returns the (src, dst)
// pair of a migration worth making, if the skew between the hottest and
// coldest healthy shard exceeds the threshold. Pressure is device
// occupancy fraction plus the shard's normalized share of link busy-cycle
// growth since the previous scan — a shard can be hot by footprint or by
// interconnect saturation. Allocation-free by construction: it reads the
// capacity meters and link occupancy directly rather than building a
// Stats snapshot.
//
//buddy:hotpath
func (p *Pool) rebalanceScan() (src, dst int, ok bool) {
	rb := p.rebal
	var sumDelta float64
	for i, d := range p.devices {
		var busy float64
		if c, isCarveout := carveoutOf(d); isCarveout {
			r, w := c.LinkOccupancy()
			busy = r + w
		}
		delta := busy - rb.busy[i]
		rb.busy[i] = busy
		rb.score[i] = delta
		sumDelta += delta
	}
	for i, d := range p.devices {
		// Share of the fleet's busy growth this window (not max-normalized:
		// under uniform load every shard sits near 1/N), smoothed across
		// windows so one bursty interval cannot elect a hot shard. An idle
		// window decays every share toward zero.
		var inst float64
		if sumDelta > 0 {
			inst = rb.score[i] / sumDelta
		}
		rb.share[i] += rebalanceEWMA * (inst - rb.share[i])
		primary, _ := d.Tiers()
		var s float64
		if capacity := primary.Capacity(); capacity > 0 {
			s = float64(d.DeviceUsed()) / float64(capacity)
		}
		rb.score[i] = s + rb.share[i]
	}
	src, dst = -1, -1
	for i := range p.devices {
		if p.state[i].Load() != shardHealthy {
			continue
		}
		if src < 0 || rb.score[i] > rb.score[src] {
			src = i
		}
		if dst < 0 || rb.score[i] < rb.score[dst] {
			dst = i
		}
	}
	if src < 0 || src == dst || rb.score[src]-rb.score[dst] < rb.skew {
		return 0, 0, false
	}
	return src, dst, true
}

// carveoutOf returns the device's overflow tier as a carve-out, when it is
// one.
//
//buddy:hotpath
func carveoutOf(d *core.Device) (*core.CarveoutBackend, bool) {
	_, overflow := d.Tiers()
	c, ok := overflow.(*core.CarveoutBackend)
	return c, ok
}

// rebalanceOnce runs one watcher tick: scan, and once the same hottest
// shard has been elected rebalanceStreak scans in a row, live-migrate its
// largest allocation to the coldest shard. Failures (racing drain,
// destination filled up since the scan) are left for the next tick rather
// than retried — the watcher converges, it does not thrash.
func (p *Pool) rebalanceOnce() {
	rb := p.rebal
	src, dst, ok := p.rebalanceScan()
	if !ok {
		rb.candidate, rb.streak = -1, 0
		return
	}
	if src != rb.candidate {
		rb.candidate, rb.streak = src, 1
		return
	}
	rb.streak++
	if rb.streak < rebalanceStreak {
		return
	}
	// Migrate, then demand a fresh streak before the next move.
	rb.candidate, rb.streak = -1, 0
	var pick *Handle
	for _, h := range p.handlesOn(src) {
		if pick == nil || h.size > pick.size {
			pick = h
		}
	}
	if pick == nil {
		return
	}
	_ = p.MigrateHandle(pick, dst)
}
