// Package pool implements the fleet-serving layer over the single-device
// driver: a shard router that places allocations across N independent
// core.Devices, spills to the next shard when one runs out of memory,
// serves many concurrent clients through per-shard bounded submission
// queues, and aggregates per-device telemetry into one view. One Device is
// one GPU with one buddy-memory link; the pool is the front door a serving
// system puts in front of the fleet.
package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"buddy/internal/core"
)

// defaultQueueDepth is the default per-shard submission queue depth. It is
// deliberately machine-independent: the queue backlog is the coalescing
// window — a worker can only merge adjacent small submissions into one
// batch span if the queue lets them accumulate — so tying the depth to
// GOMAXPROCS would turn a small machine into an uncoalescible one.
const defaultQueueDepth = 64

// Config parameterizes a Pool.
type Config struct {
	// Placement chooses the shard each allocation is first offered to
	// (default LeastUsed).
	Placement Placement
	// QueueDepth bounds each shard's async submission queue; Submit blocks
	// when the owning shard's queue is full (backpressure instead of
	// unbounded buffering). The backlog doubles as the worker's coalescing
	// window. Default: defaultQueueDepth (64).
	QueueDepth int
	// Workers is the number of worker goroutines draining each shard's
	// queue. Default: GOMAXPROCS spread across the shards, at least one
	// per shard. Each worker's bulk operations additionally fan out
	// across the device's own span-worker pool.
	Workers int
}

// ErrClosed is returned (wrapped) by operations on a closed pool.
var ErrClosed = errors.New("pool: closed")

// Pool is a shard router over N independent devices. It is safe for
// concurrent use by multiple goroutines.
type Pool struct {
	devices []*core.Device
	place   Placement

	allocMu     sync.Mutex  // serializes placement snapshot + reservation
	loadScratch []ShardLoad // placement snapshot buffer; guarded by allocMu

	// Close protocol: closed flips first, then stop wakes submitters
	// blocked on full queues, then subWG drains in-flight submits, and
	// only then do the queues close — no lock is ever held across a send.
	closed atomic.Bool
	stop   chan struct{}
	subWG  sync.WaitGroup // in-flight submit calls
	queues []chan *task
	wg     sync.WaitGroup // shard workers

	async asyncCounters
}

// asyncCounters is the async serving path's telemetry.
type asyncCounters struct {
	submitted      atomic.Uint64
	coalescedTasks atomic.Uint64
	coalescedRuns  atomic.Uint64
}

// New builds a pool over the given devices. The devices must be freshly
// constructed or otherwise dedicated to the pool: the pool routes by its
// own handle table and aggregates the devices' telemetry wholesale.
func New(devices []*core.Device, cfg Config) (*Pool, error) {
	if len(devices) == 0 {
		return nil, errors.New("pool: need at least one device")
	}
	for i, d := range devices {
		if d == nil {
			return nil, fmt.Errorf("pool: device %d is nil", i)
		}
	}
	if cfg.Placement == nil {
		cfg.Placement = LeastUsed()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = (runtime.GOMAXPROCS(0) + len(devices) - 1) / len(devices)
	}
	p := &Pool{
		devices:     devices,
		place:       cfg.Placement,
		loadScratch: make([]ShardLoad, len(devices)),
		stop:        make(chan struct{}),
		queues:      make([]chan *task, len(devices)),
	}
	for i := range p.queues {
		q := make(chan *task, cfg.QueueDepth)
		p.queues[i] = q
		for w := 0; w < workers; w++ {
			p.wg.Add(1)
			go p.worker(q)
		}
	}
	return p, nil
}

// Shards returns the number of devices behind the pool.
func (p *Pool) Shards() int { return len(p.devices) }

// Device returns shard i's device for per-shard inspection.
func (p *Pool) Device(i int) *core.Device { return p.devices[i] }

// Placement returns the pool's placement policy.
func (p *Pool) Placement() Placement { return p.place }

// loads snapshots per-shard occupancy for a placement decision into the
// pool's scratch slice — Malloc is on serving paths, so the snapshot must
// not allocate per call. Caller must hold allocMu, which both makes the
// snapshot and the subsequent reservation one atomic placement step and
// guards the scratch (placement policies only read the slice during Pick).
func (p *Pool) loads() []ShardLoad {
	out := p.loadScratch
	for i, d := range p.devices {
		primary, _ := d.Tiers()
		out[i] = ShardLoad{
			Shard:          i,
			DeviceUsed:     d.DeviceUsed(),
			DeviceCapacity: primary.Capacity(),
			BuddyUsed:      d.BuddyUsed(),
			Allocs:         d.AllocationCount(),
		}
	}
	return out
}

// Malloc places a compressed allocation on a shard chosen by the pool's
// placement policy, transparently spilling to the next shard (in index
// order, wrapping) when the chosen one is out of memory. The returned
// handle routes all later I/O to the owning device. When every shard is
// full the error wraps core.ErrOutOfMemory.
func (p *Pool) Malloc(name string, size int64, target core.TargetRatio) (*Handle, error) {
	if p.closed.Load() {
		return nil, fmt.Errorf("pool: Malloc %q: %w", name, ErrClosed)
	}
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	start := p.place.Pick(p.loads(), size)
	if start < 0 || start >= len(p.devices) {
		return nil, fmt.Errorf("pool: placement %s picked shard %d of %d",
			p.place.Name(), start, len(p.devices))
	}
	var oom error
	for k := 0; k < len(p.devices); k++ {
		i := (start + k) % len(p.devices)
		a, err := p.devices[i].Malloc(name, size, target)
		if err == nil {
			return &Handle{pool: p, shard: i, a: a}, nil
		}
		if !errors.Is(err, core.ErrOutOfMemory) {
			return nil, err
		}
		if oom == nil {
			oom = err
		}
	}
	return nil, fmt.Errorf("pool: %q (%d bytes) fits no shard (placement %s, %d shards): %w",
		name, size, p.place.Name(), len(p.devices), oom)
}

// Handles returns a handle for every live allocation across all shards, in
// shard order then allocation order.
func (p *Pool) Handles() []*Handle {
	var out []*Handle
	for i, d := range p.devices {
		for _, a := range d.Allocations() {
			out = append(out, &Handle{pool: p, shard: i, a: a})
		}
	}
	return out
}

// Close shuts the async serving layer down: it waits for every queued
// operation to drain, then stops the workers. Submits blocked on a full
// queue at close time fail their futures with ErrClosed instead of
// deadlocking; already-queued operations complete normally. Allocations
// and the devices themselves stay usable through their handles; Close only
// retires the submission queues. Closing twice is an error.
func (p *Pool) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	close(p.stop)  // wake submitters blocked on full queues
	p.subWG.Wait() // no submit is mid-enqueue past this point
	for _, q := range p.queues {
		close(q)
	}
	p.wg.Wait()
	return nil
}

// Handle is a placed allocation: it routes byte-addressed I/O and
// lifecycle calls to the shard that owns the allocation. It satisfies
// io.ReaderAt, io.WriterAt and io.Closer like the underlying Allocation.
type Handle struct {
	pool  *Pool
	shard int
	a     *core.Allocation
}

// Shard returns the index of the device holding the allocation.
func (h *Handle) Shard() int { return h.shard }

// Alloc returns the underlying device allocation for entry-granular tools.
func (h *Handle) Alloc() *core.Allocation { return h.a }

// Name returns the allocation's name.
func (h *Handle) Name() string { return h.a.Name }

// Size returns the allocation's requested byte size.
func (h *Handle) Size() int64 { return h.a.Size() }

// Target returns the allocation's current target compression ratio.
func (h *Handle) Target() core.TargetRatio { return h.a.Target() }

// ReadAt reads from the owning device; see core.Allocation.ReadAt.
func (h *Handle) ReadAt(p []byte, off int64) (int, error) { return h.a.ReadAt(p, off) }

// WriteAt writes through the owning device; see core.Allocation.WriteAt.
func (h *Handle) WriteAt(p []byte, off int64) (int, error) { return h.a.WriteAt(p, off) }

// Close frees the allocation on its owning device.
func (h *Handle) Close() error { return h.a.Close() }

// Memcpy copies n bytes from the start of src to the start of dst through
// both compression pipelines; the handles may live on different shards
// (the pool equivalent of a peer-to-peer cudaMemcpy).
func Memcpy(dst, src *Handle, n int64) (int64, error) {
	return core.Memcpy(dst.a, src.a, n)
}
