// Package pool implements the fleet-serving layer over the single-device
// driver: a shard router that places allocations across N independent
// core.Devices, spills to the next shard when one runs out of memory,
// serves many concurrent clients through per-shard bounded submission
// queues, and aggregates per-device telemetry into one view. One Device is
// one GPU with one buddy-memory link; the pool is the front door a serving
// system puts in front of the fleet.
//
// Placement is not final: MigrateHandle moves an allocation's framed
// compressed entries to another shard while traffic continues, Drain
// evacuates a shard for maintenance, and a failed shard's entries are
// rebuilt from the buddy carve-out (see migrate.go, drain.go and
// rebalance.go for the self-healing layer).
package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"buddy/internal/core"
)

// defaultQueueDepth is the default per-shard submission queue depth. It is
// deliberately machine-independent: the queue backlog is the coalescing
// window — a worker can only merge adjacent small submissions into one
// batch span if the queue lets them accumulate — so tying the depth to
// GOMAXPROCS would turn a small machine into an uncoalescible one.
const defaultQueueDepth = 64

// Config parameterizes a Pool.
type Config struct {
	// Placement chooses the shard each allocation is first offered to
	// (default LeastUsed).
	Placement Placement
	// QueueDepth bounds each shard's async submission queue; Submit blocks
	// when the owning shard's queue is full (backpressure instead of
	// unbounded buffering). The backlog doubles as the worker's coalescing
	// window. Default: defaultQueueDepth (64).
	QueueDepth int
	// Workers is the number of worker goroutines draining each shard's
	// queue. Default: GOMAXPROCS spread across the shards, at least one
	// per shard. Each worker's bulk operations additionally fan out
	// across the device's own span-worker pool.
	Workers int
	// Injector, when non-nil, is attached to the pool: its Kill(shard)
	// marks that shard's device tier failed mid-serve (the fault-injection
	// hook the heal experiment drives).
	Injector *FailureInjector
	// AutoRecover starts the pool's supervisor goroutine; when a shard is
	// killed it rebuilds the device tier from the buddy carve-out without
	// operator intervention.
	AutoRecover bool
	// OnRecover, when non-nil, is invoked from the supervisor after each
	// automatic recovery completes (instrumentation hook; it must not block
	// for long — recovery of other shards queues behind it).
	OnRecover func(RecoveryStats)
	// RebalanceInterval enables the rebalancer watcher: every interval the
	// supervisor scans per-shard pressure (device occupancy + link busy
	// cycles) and live-migrates an allocation off the most saturated shard
	// when the skew exceeds RebalanceSkew. Zero disables rebalancing.
	RebalanceInterval time.Duration
	// RebalanceSkew is the normalized pressure gap (0..2 scale: occupancy
	// fraction plus normalized link-busy delta) between the hottest and
	// coldest shard that triggers a migration. Default 0.5.
	RebalanceSkew float64
	// Tenants declares the pool's named tenants: capacity quota, scheduling
	// weight and priority class per name (see TenantConfig). The default
	// tenant always exists and owns untenanted traffic; an entry named
	// DefaultTenant configures it. Each tenant gets its own QueueDepth-deep
	// ring on every shard, so one tenant's backlog never consumes another's
	// queue space.
	Tenants map[string]TenantConfig
}

// ErrClosed is returned (wrapped) by operations on a closed pool.
var ErrClosed = errors.New("pool: closed")

// Pool is a shard router over N independent devices. It is safe for
// concurrent use by multiple goroutines.
type Pool struct {
	devices []*core.Device
	place   Placement

	allocMu sync.Mutex // serializes placement snapshot + reservation

	// Routing registry: every live Handle the pool has issued, by id. The
	// handles themselves carry the authoritative shard route (Handle.rt);
	// the registry exists so maintenance (drain, rebalance) can find what
	// lives where. Lock order: routeMu before any Handle.mu.
	routeMu sync.Mutex
	handles map[uint64]*Handle
	nextID  atomic.Uint64

	// state holds each shard's lifecycle state (shardHealthy/Draining/
	// Failed); see drain.go for the state machine.
	state []atomic.Int32

	// Tenancy: tenants[0] is the default tenant; the rest follow in sorted
	// name order. Every shard's scheduler indexes its rings by tenant.idx.
	tenants      []*tenant
	tenantByName map[string]*tenant

	// Close protocol: closed flips first, then stop retires the maintenance
	// supervisor and each shard's scheduler shuts down (waking submitters
	// parked on full rings, which fail with ErrClosed), then subWG drains
	// in-flight submits while the workers finish the queued backlog and
	// exit.
	closed atomic.Bool
	stop   chan struct{}
	subWG  sync.WaitGroup // in-flight submit calls
	scheds []*sched
	wg     sync.WaitGroup // shard workers

	async asyncCounters

	// Maintenance supervisor (rebalance.go): a single goroutine reacting
	// to failure notifications and the rebalance ticker.
	autoRecover bool
	onRecover   func(RecoveryStats)
	rebalEvery  time.Duration
	rebal       *rebalancer
	failures    chan int
	maintWG     sync.WaitGroup
}

// asyncCounters is the async serving path's telemetry.
type asyncCounters struct {
	submitted      atomic.Uint64
	coalescedTasks atomic.Uint64
	coalescedRuns  atomic.Uint64
}

// New builds a pool over the given devices. The devices must be freshly
// constructed or otherwise dedicated to the pool: the pool routes by its
// own handle table and aggregates the devices' telemetry wholesale.
func New(devices []*core.Device, cfg Config) (*Pool, error) {
	if len(devices) == 0 {
		return nil, errors.New("pool: need at least one device")
	}
	for i, d := range devices {
		if d == nil {
			return nil, fmt.Errorf("pool: device %d is nil", i)
		}
	}
	if cfg.Placement == nil {
		cfg.Placement = LeastUsed()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.RebalanceSkew <= 0 {
		cfg.RebalanceSkew = defaultRebalanceSkew
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = (runtime.GOMAXPROCS(0) + len(devices) - 1) / len(devices)
	}
	p := &Pool{
		devices:     devices,
		place:       cfg.Placement,
		handles:     make(map[uint64]*Handle),
		state:       make([]atomic.Int32, len(devices)),
		stop:        make(chan struct{}),
		scheds:      make([]*sched, len(devices)),
		autoRecover: cfg.AutoRecover,
		onRecover:   cfg.OnRecover,
		rebalEvery:  cfg.RebalanceInterval,
	}
	p.tenants, p.tenantByName = buildTenants(cfg.Tenants)
	for i := range p.scheds {
		p.scheds[i] = newSched(p.tenants, cfg.QueueDepth)
		for w := 0; w < workers; w++ {
			p.wg.Add(1)
			go p.worker(i)
		}
	}
	if cfg.Injector != nil {
		cfg.Injector.attach(p)
	}
	if cfg.AutoRecover || cfg.RebalanceInterval > 0 {
		p.failures = make(chan int, len(devices))
		p.rebal = newRebalancer(len(devices), cfg.RebalanceSkew)
		p.maintWG.Add(1)
		go p.maintain()
	}
	return p, nil
}

// Shards returns the number of devices behind the pool.
func (p *Pool) Shards() int { return len(p.devices) }

// Device returns shard i's device for per-shard inspection.
func (p *Pool) Device(i int) *core.Device { return p.devices[i] }

// Placement returns the pool's placement policy.
func (p *Pool) Placement() Placement { return p.place }

// loads snapshots per-shard occupancy for a placement decision. The slice
// is freshly allocated per call: Placement.Pick is user-supplied code that
// may legitimately retain what it is handed (a policy tracking load history,
// say), so the pool never exposes a reused scratch buffer — an earlier
// revision aliased one here and a retaining policy saw it silently mutate
// under later Mallocs. Caller must hold allocMu, which makes the snapshot
// and the subsequent reservation one atomic placement step.
func (p *Pool) loads() []ShardLoad {
	out := make([]ShardLoad, len(p.devices))
	for i, d := range p.devices {
		primary, _ := d.Tiers()
		st := p.state[i].Load()
		out[i] = ShardLoad{
			Shard:          i,
			DeviceUsed:     d.DeviceUsed(),
			DeviceCapacity: primary.Capacity(),
			BuddyUsed:      d.BuddyUsed(),
			Allocs:         d.AllocationCount(),
			Draining:       st == shardDraining,
			Failed:         st == shardFailed,
		}
	}
	return out
}

// headroom renders the per-shard free device bytes of a load snapshot for
// the capacity-exhaustion error.
func headroom(loads []ShardLoad) string {
	var b strings.Builder
	for i, l := range loads {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch {
		case l.Failed:
			fmt.Fprintf(&b, "%d:failed", l.Shard)
		case l.Draining:
			fmt.Fprintf(&b, "%d:draining", l.Shard)
		default:
			fmt.Fprintf(&b, "%d:%d", l.Shard, l.DeviceCapacity-l.DeviceUsed)
		}
	}
	return b.String()
}

// Malloc places a compressed allocation on a shard chosen by the pool's
// placement policy, transparently spilling to the next shard (in index
// order, wrapping) when the chosen one is out of memory. Draining and
// failed shards accept no placements. The returned handle routes all later
// I/O to whichever device currently owns the allocation. When every
// available shard is full the error wraps each shard's core.ErrOutOfMemory
// and lists the per-shard free device bytes of the placement snapshot.
// The allocation is owned by — and charged against — the default tenant;
// see Pool.Tenant for named-tenant placement.
func (p *Pool) Malloc(name string, size int64, target core.TargetRatio) (*Handle, error) {
	return p.mallocTenant(p.tenants[0], name, size, target)
}

// mallocTenant is Malloc with an owning tenant: admission control charges
// the allocation's stored compressed bytes against the tenant's quota
// before placement, and refunds the charge when no shard fits.
func (p *Pool) mallocTenant(tn *tenant, name string, size int64, target core.TargetRatio) (*Handle, error) {
	if p.closed.Load() {
		return nil, fmt.Errorf("pool: Malloc %q: %w", name, ErrClosed)
	}
	need := quotaFor(size, target)
	if err := tn.admit(name, need); err != nil {
		return nil, err
	}
	h, err := p.place1(tn, need, name, size, target)
	if err != nil {
		tn.release(need)
		return nil, err
	}
	return h, nil
}

// place1 runs one placement attempt (with spill-over) for an admitted
// allocation. Caller owns the tenant charge and refunds it on error.
func (p *Pool) place1(tn *tenant, need int64, name string, size int64, target core.TargetRatio) (*Handle, error) {
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	loads := p.loads()
	start := p.place.Pick(loads, size)
	if start < 0 || start >= len(p.devices) {
		return nil, fmt.Errorf("pool: placement %s picked shard %d of %d",
			p.place.Name(), start, len(p.devices))
	}
	available := 0
	var errs []error
	for k := 0; k < len(p.devices); k++ {
		i := (start + k) % len(p.devices)
		if p.state[i].Load() != shardHealthy {
			continue
		}
		available++
		a, err := p.devices[i].Malloc(name, size, target)
		if err == nil {
			return p.adopt(i, a, tn, need), nil
		}
		if !errors.Is(err, core.ErrOutOfMemory) {
			return nil, err
		}
		errs = append(errs, fmt.Errorf("shard %d: %w", i, err))
	}
	if available == 0 {
		return nil, fmt.Errorf("pool: %q (%d bytes): no shard accepts placements (%s)",
			name, size, headroom(loads))
	}
	return nil, fmt.Errorf("pool: %q (%d bytes) fits no shard (placement %s; free device bytes per shard: %s): %w",
		name, size, p.place.Name(), headroom(loads), errors.Join(errs...))
}

// adopt wraps a placed allocation in a registered canonical handle owned
// by the given tenant, carrying the quota bytes charged for it.
func (p *Pool) adopt(shard int, a *core.Allocation, tn *tenant, quota int64) *Handle {
	h := &Handle{pool: p, id: p.nextID.Add(1), name: a.Name, size: a.Size(), tn: tn}
	h.quota.Store(quota)
	h.rt = handleRoute{shard: shard, a: a}
	p.routeMu.Lock()
	p.handles[h.id] = h
	p.routeMu.Unlock()
	return h
}

// forget removes a closed handle from the routing registry.
func (p *Pool) forget(h *Handle) {
	p.routeMu.Lock()
	delete(p.handles, h.id)
	p.routeMu.Unlock()
}

// Handles returns the pool's live handles, ordered by current shard then by
// allocation age. Handles are canonical: the pool returns the same *Handle
// it issued at Malloc, so routing state (including an in-flight migration)
// is shared with the original.
func (p *Pool) Handles() []*Handle {
	p.routeMu.Lock()
	out := make([]*Handle, 0, len(p.handles))
	for _, h := range p.handles {
		out = append(out, h)
	}
	p.routeMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Shard(), out[j].Shard()
		if si != sj {
			return si < sj
		}
		return out[i].id < out[j].id
	})
	return out
}

// handlesOn returns the live handles currently routed to the given shard,
// oldest first.
func (p *Pool) handlesOn(shard int) []*Handle {
	p.routeMu.Lock()
	var out []*Handle
	for _, h := range p.handles {
		if h.Shard() == shard {
			out = append(out, h)
		}
	}
	p.routeMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Close shuts the async serving layer down: it waits for every queued
// operation to drain, then stops the workers and the maintenance
// supervisor. Submits blocked on a full queue at close time fail their
// futures with ErrClosed instead of deadlocking; already-queued operations
// complete normally. Allocations and the devices themselves stay usable
// through their handles; Close only retires the submission queues and the
// supervisor. Closing twice is an error.
func (p *Pool) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return ErrClosed
	}
	close(p.stop) // retire the maintenance supervisor
	// Shutting a scheduler down wakes submitters parked on full rings
	// (their enqueues fail with ErrClosed) and lets the workers finish the
	// queued backlog and exit; a submit that raced past the closed check
	// either lands before the shutdown (and is drained) or is refused by
	// the scheduler itself.
	for _, s := range p.scheds {
		s.shutdown()
	}
	p.subWG.Wait() // no submit is mid-enqueue past this point
	p.wg.Wait()
	p.maintWG.Wait()
	return nil
}

// handleRoute is a handle's authoritative routing state: which shard and
// device allocation own its bytes, plus the in-flight migration epoch (nil
// in steady state). Guarded by Handle.mu.
type handleRoute struct {
	shard int
	a     *core.Allocation
	mig   *handleMigration
}

// handleMigration is the epoch installed for the duration of one
// cross-shard move: entries [0, moved) already live on dst, the rest still
// live on the source allocation. The watermark only advances while the
// mover holds Handle.mu exclusively, so readers under RLock see a frozen
// split.
type handleMigration struct {
	dstShard int
	dst      *core.Allocation
	moved    int // entries transferred so far (watermark)
}

// Handle is a placed allocation: it routes byte-addressed I/O and
// lifecycle calls to whichever shard currently owns the allocation — the
// route is re-resolved on every operation, so a live migration retargets
// in-flight handles instead of stranding them on the old device. It
// satisfies io.ReaderAt, io.WriterAt and io.Closer like the underlying
// Allocation.
type Handle struct {
	pool *Pool
	id   uint64 // stable identity; orders two-handle lock acquisition
	name string
	size int64

	// tn is the owning tenant; quota is the stored compressed bytes
	// charged against it — Swap'd to zero exactly once on Close, and
	// re-derived by requota when a reprofile changes the target.
	tn    *tenant
	quota atomic.Int64

	// ctl serializes control-plane operations on the handle (MigrateHandle,
	// Close, requota); mu guards the route and is read-held across every
	// I/O so the mover's watermark can only advance between operations.
	// Lock order: ctl before mu, and ctl before pool.routeMu (Close holds
	// ctl across forget; nothing acquires ctl under routeMu).
	ctl sync.Mutex
	mu  sync.RWMutex
	rt  handleRoute
}

// Shard returns the index of the device currently holding the allocation.
// During a live migration this is the source shard until cutover.
func (h *Handle) Shard() int {
	h.mu.RLock()
	s := h.rt.shard
	h.mu.RUnlock()
	return s
}

// Migrating reports whether a cross-shard move is in flight on the handle.
func (h *Handle) Migrating() bool {
	h.mu.RLock()
	m := h.rt.mig != nil
	h.mu.RUnlock()
	return m
}

// Alloc returns the underlying device allocation for entry-granular tools.
// During a live migration this is the source allocation; entry-granular
// callers that must not race a mover should serialize with their own
// control plane.
func (h *Handle) Alloc() *core.Allocation {
	h.mu.RLock()
	a := h.rt.a
	h.mu.RUnlock()
	return a
}

// Name returns the allocation's name.
func (h *Handle) Name() string { return h.name }

// Size returns the allocation's requested byte size.
func (h *Handle) Size() int64 { return h.size }

// Target returns the allocation's current target compression ratio.
func (h *Handle) Target() core.TargetRatio { return h.Alloc().Target() }

// ioLocked routes one byte-addressed operation through the current route,
// splitting it at the migration watermark when a move is in flight: bytes
// of entries already moved go to the destination allocation, the rest to
// the source. The watermark is entry-aligned, so the split never tears a
// partial-entry read-modify-write across devices. Caller holds h.mu (read).
//
//buddy:hotpath
func (h *Handle) ioLocked(p []byte, off int64, write bool) (int, error) {
	rt := &h.rt
	m := rt.mig
	if m == nil {
		if write {
			return rt.a.WriteAt(p, off)
		}
		return rt.a.ReadAt(p, off)
	}
	boundary := int64(m.moved) * core.EntryBytes
	n := 0
	if off < boundary {
		c := len(p)
		if int64(c) > boundary-off {
			c = int(boundary - off)
		}
		var w int
		var err error
		if write {
			w, err = m.dst.WriteAt(p[:c], off)
		} else {
			w, err = m.dst.ReadAt(p[:c], off)
		}
		n += w
		if err != nil || w < c {
			return n, err
		}
	}
	if n < len(p) {
		var w int
		var err error
		if write {
			w, err = rt.a.WriteAt(p[n:], off+int64(n))
		} else {
			w, err = rt.a.ReadAt(p[n:], off+int64(n))
		}
		n += w
		return n, err
	}
	return n, nil
}

// writeEntriesLocked is the batch counterpart of ioLocked for coalesced
// entry spans: whole entries starting at index start, split at the
// migration watermark. Caller holds h.mu (read).
//
//buddy:hotpath
func (h *Handle) writeEntriesLocked(start int, data []byte) error {
	rt := &h.rt
	m := rt.mig
	if m == nil {
		return rt.a.WriteEntries(start, data)
	}
	n := len(data) / core.EntryBytes
	low := m.moved - start
	switch {
	case low <= 0:
		return rt.a.WriteEntries(start, data)
	case low >= n:
		return m.dst.WriteEntries(start, data)
	}
	if err := m.dst.WriteEntries(start, data[:low*core.EntryBytes]); err != nil {
		return err
	}
	return rt.a.WriteEntries(start+low, data[low*core.EntryBytes:])
}

// readEntriesLocked mirrors writeEntriesLocked for reads.
//
//buddy:hotpath
func (h *Handle) readEntriesLocked(start int, dst []byte) error {
	rt := &h.rt
	m := rt.mig
	if m == nil {
		return rt.a.ReadEntries(start, dst)
	}
	n := len(dst) / core.EntryBytes
	low := m.moved - start
	switch {
	case low <= 0:
		return rt.a.ReadEntries(start, dst)
	case low >= n:
		return m.dst.ReadEntries(start, dst)
	}
	if err := m.dst.ReadEntries(start, dst[:low*core.EntryBytes]); err != nil {
		return err
	}
	return rt.a.ReadEntries(start+low, dst[low*core.EntryBytes:])
}

// ReadAt reads through whichever device currently owns each entry; see
// core.Allocation.ReadAt for the byte-addressing contract.
//
//buddy:hotpath
func (h *Handle) ReadAt(p []byte, off int64) (int, error) {
	h.mu.RLock()
	n, err := h.ioLocked(p, off, false)
	h.mu.RUnlock()
	return n, err
}

// WriteAt writes through whichever device currently owns each entry; see
// core.Allocation.WriteAt.
//
//buddy:hotpath
func (h *Handle) WriteAt(p []byte, off int64) (int, error) {
	h.mu.RLock()
	n, err := h.ioLocked(p, off, true)
	h.mu.RUnlock()
	return n, err
}

// Close frees the allocation on its owning device, returns its stored
// bytes to the owning tenant's quota, and retires the handle from the
// pool's routing registry. An in-flight migration completes (or rolls
// back) before the free — ctl serializes the two.
func (h *Handle) Close() error {
	h.ctl.Lock()
	defer h.ctl.Unlock()
	h.mu.RLock()
	a := h.rt.a
	h.mu.RUnlock()
	err := a.Close()
	h.pool.forget(h)
	// Swap, not Load+Store: the quota is released exactly once even if a
	// racing requota re-derived it a moment ago.
	h.tn.release(h.quota.Swap(0))
	return err
}

// Owner returns the handle's owning tenant name.
func (h *Handle) Owner() string { return h.tn.name }

// Memcpy copies n bytes from the start of src to the start of dst through
// both compression pipelines; the handles may live on different shards
// (the pool equivalent of a peer-to-peer cudaMemcpy). The copy is
// migration-aware: a handle mid-move is read and written through the
// watermark split.
func Memcpy(dst, src *Handle, n int64) (int64, error) {
	if dst == src {
		dst.mu.RLock()
		defer dst.mu.RUnlock()
		if dst.rt.mig == nil {
			return core.Memcpy(dst.rt.a, dst.rt.a, n)
		}
		return memcpyLocked(dst, src, n)
	}
	// Two handles: take both route locks in id order so concurrent Memcpys
	// in opposite directions cannot deadlock.
	first, second := dst, src
	if src.id < dst.id {
		first, second = src, dst
	}
	first.mu.RLock()
	defer first.mu.RUnlock()
	second.mu.RLock()
	defer second.mu.RUnlock()
	if dst.rt.mig == nil && src.rt.mig == nil {
		return core.Memcpy(dst.rt.a, src.rt.a, n)
	}
	return memcpyLocked(dst, src, n)
}

// memcpyLocked is the migration-aware staging copy; the caller holds both
// handles' route locks (read).
func memcpyLocked(dst, src *Handle, n int64) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("pool: negative memcpy length %d", n)
	}
	if n > src.size || n > dst.size {
		return 0, fmt.Errorf("pool: memcpy length %d exceeds src %d or dst %d",
			n, src.size, dst.size)
	}
	buf := make([]byte, 64<<10) // migration-window path; off the hot path
	var copied int64
	for copied < n {
		chunk := int64(len(buf))
		if rem := n - copied; chunk > rem {
			chunk = rem
		}
		if _, err := src.ioLocked(buf[:chunk], copied, false); err != nil {
			return copied, err
		}
		w, err := dst.ioLocked(buf[:chunk], copied, true)
		copied += int64(w)
		if err != nil {
			return copied, err
		}
	}
	return copied, nil
}
