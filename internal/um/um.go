// Package um models Unified Memory oversubscription, the paper's software
// baseline (§4.3, Fig. 12). The paper measures real Power9+V100 hardware;
// we simulate the first-order mechanics instead: demand paging with an LRU
// page pool in device memory, driver-handled fault batches with a fixed
// service cost, page migration over the interconnect, and the alternative
// "pinned" mode where every access crosses the link (the dotted lines of
// Fig. 12). The headline behaviours the model must reproduce: runtime grows
// super-linearly with forced oversubscription (up to ~64x at 40%), and the
// migration heuristics often do worse than simply pinning all data in host
// memory for irregular workloads.
package um

import (
	"buddy/internal/trace"
)

// Config holds the UM system parameters.
type Config struct {
	// PageBytes is the migration granularity (UM migrates at 64 KB-2 MB
	// chunks; 64 KB is the common small-page size on Pascal/Volta).
	PageBytes int
	// FaultBatchCycles is the driver cost of servicing a fault batch:
	// fault delivery, host interrupt, page-table update. Driver-based
	// handling is "remote and non-distributed" (§3.3) and very expensive.
	FaultBatchCycles float64
	// LinkGBs is the interconnect bandwidth (the paper's Fig. 12 testbed:
	// 3 NVLink2 bricks = 75 GB/s full-duplex).
	LinkGBs float64
	// CoreClockGHz converts to cycles.
	CoreClockGHz float64
	// DeviceFracBase is the fraction of the working set resident before
	// forcing oversubscription (1.0 = everything fits).
	DeviceFracBase float64
	// Accesses is the number of simulated warp accesses.
	Accesses int
	// Warps is the number of concurrent access streams.
	Warps int
}

// DefaultConfig mirrors the Fig. 12 testbed.
func DefaultConfig() Config {
	return Config{
		PageBytes:        64 << 10,
		FaultBatchCycles: 40000, // ~30 us at 1.3 GHz
		LinkGBs:          75,
		CoreClockGHz:     1.3,
		DeviceFracBase:   1.0,
		Accesses:         300000,
		Warps:            64,
	}
}

// Result reports one oversubscription point.
type Result struct {
	// Oversubscription is the forced fraction of the footprint that does
	// not fit device memory.
	Oversubscription float64
	// RelativeRuntime is runtime normalized to the fully resident run.
	RelativeRuntime float64
	// Faults is the number of page-fault migrations.
	Faults uint64
	// MigratedBytes is the total migration traffic.
	MigratedBytes uint64
}

// simple CLOCK-style approximation of LRU: good enough for fault counting
// and far faster than a linked list at these sizes.
type clockPool struct {
	cap      int
	resident map[uint64]bool
	order    []uint64
	hand     int
}

func newClockPool(capacity int) *clockPool {
	if capacity < 1 {
		capacity = 1
	}
	return &clockPool{cap: capacity, resident: make(map[uint64]bool, capacity)}
}

// touch returns true if page was resident; otherwise it evicts (FIFO/CLOCK)
// and inserts the page, returning false.
func (p *clockPool) touch(page uint64) bool {
	if p.resident[page] {
		return true
	}
	if len(p.order) >= p.cap {
		victim := p.order[p.hand]
		delete(p.resident, victim)
		p.order[p.hand] = page
		p.hand = (p.hand + 1) % p.cap
	} else {
		p.order = append(p.order, page)
	}
	p.resident[page] = true
	return false
}

// baselineCycles is the modeled runtime of the fully resident run: device
// bandwidth is not the bottleneck in this comparison, so the baseline is
// simply proportional to the access count with a nominal per-access cost.
const baselineCostPerAccess = 4.0

// RunOversubscription simulates spec under forced oversubscription
// (0.0-0.5) and returns the relative runtime (Fig. 12 solid lines).
func RunOversubscription(spec trace.Spec, footprint uint64, oversub float64, cfg Config) Result {
	if cfg.PageBytes == 0 {
		cfg = DefaultConfig()
	}
	pages := int(footprint / uint64(cfg.PageBytes))
	if pages < 4 {
		pages = 4
	}
	residentCap := int(float64(pages) * (1 - oversub) * cfg.DeviceFracBase)
	if residentCap < 1 {
		residentCap = 1
	}
	pool := newClockPool(residentCap)
	streams := make([]*trace.Stream, cfg.Warps)
	for w := range streams {
		streams[w] = trace.NewStream(spec, footprint, 99, w)
	}

	linkBytesPerCycle := cfg.LinkGBs * 1e9 / (cfg.CoreClockGHz * 1e9)
	migCycles := float64(cfg.PageBytes) / linkBytesPerCycle

	res := Result{Oversubscription: oversub}
	var cycles float64
	for i := 0; i < cfg.Accesses; i++ {
		a := streams[i%cfg.Warps].Next()
		page := a.Addr / uint64(cfg.PageBytes)
		cycles += baselineCostPerAccess
		if oversub <= 0 {
			pool.touch(page)
			continue
		}
		if !pool.touch(page) {
			// Page fault: driver service plus migration of the page in
			// (and, when the pool is full, write-back of the victim,
			// which the full-duplex link overlaps with the fill).
			res.Faults++
			res.MigratedBytes += uint64(cfg.PageBytes)
			cycles += cfg.FaultBatchCycles + migCycles
		}
	}
	base := float64(cfg.Accesses) * baselineCostPerAccess
	res.RelativeRuntime = cycles / base
	return res
}

// RunPinned models the compiler flag that pins all allocations in host
// memory (Fig. 12 dotted lines): no faults, but every access crosses the
// link and pays remote latency; throughput is limited by link bandwidth.
func RunPinned(spec trace.Spec, footprint uint64, cfg Config) Result {
	if cfg.PageBytes == 0 {
		cfg = DefaultConfig()
	}
	linkBytesPerCycle := cfg.LinkGBs * 1e9 / (cfg.CoreClockGHz * 1e9)
	streams := make([]*trace.Stream, cfg.Warps)
	for w := range streams {
		streams[w] = trace.NewStream(spec, footprint, 99, w)
	}
	var busy float64 // link occupancy
	var cycles float64
	for i := 0; i < cfg.Accesses; i++ {
		a := streams[i%cfg.Warps].Next()
		bytes := float64(trace.SectorCount(a.SectorMask) * 32)
		busy += bytes / linkBytesPerCycle
		cycles += baselineCostPerAccess
	}
	if busy > cycles {
		cycles = busy
	}
	// Remote latency exposure: a slowdown floor versus local memory that
	// latency hiding cannot fully absorb at UM's concurrency.
	const remotePenalty = 2.5
	base := float64(cfg.Accesses) * baselineCostPerAccess
	rel := cycles * remotePenalty / base
	return Result{RelativeRuntime: rel}
}

// Sweep runs Fig. 12's x-axis for one benchmark: forced oversubscription
// levels with the UM migrating mode, plus the pinned-host mode.
func Sweep(spec trace.Spec, footprint uint64, points []float64, cfg Config) (um []Result, pinned Result) {
	if len(points) == 0 {
		points = []float64{0, 0.05, 0.10, 0.20, 0.30, 0.40}
	}
	for _, o := range points {
		um = append(um, RunOversubscription(spec, footprint, o, cfg))
	}
	pinned = RunPinned(spec, footprint, cfg)
	return um, pinned
}
