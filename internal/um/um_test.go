package um

import (
	"testing"

	"buddy/internal/workloads"
)

func specOf(t *testing.T, name string) (s workloads.Benchmark) {
	t.Helper()
	b, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNoOversubscriptionIsBaseline(t *testing.T) {
	b := specOf(t, "356.sp")
	r := RunOversubscription(b.Trace, uint64(b.Footprint/64), 0, DefaultConfig())
	if r.RelativeRuntime != 1 {
		t.Errorf("fully resident run = %.3fx, want 1x", r.RelativeRuntime)
	}
	if r.Faults != 0 {
		t.Errorf("fully resident run faulted %d times", r.Faults)
	}
}

func TestOversubscriptionMonotone(t *testing.T) {
	b := specOf(t, "360.ilbdc")
	cfg := DefaultConfig()
	cfg.Accesses = 100000
	last := 0.0
	for _, o := range []float64{0, 0.1, 0.2, 0.4} {
		r := RunOversubscription(b.Trace, uint64(b.Footprint/64), o, cfg)
		if r.RelativeRuntime < last {
			t.Errorf("runtime decreased at oversubscription %.1f", o)
		}
		last = r.RelativeRuntime
	}
	if last < 5 {
		t.Errorf("irregular workload at 40%% oversubscription should be painful, got %.1fx", last)
	}
}

func TestIrregularWorseThanStreaming(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Accesses = 100000
	ilbdc := specOf(t, "360.ilbdc")
	sp := specOf(t, "356.sp")
	ri := RunOversubscription(ilbdc.Trace, uint64(ilbdc.Footprint/64), 0.3, cfg)
	rs := RunOversubscription(sp.Trace, uint64(sp.Footprint/64), 0.3, cfg)
	if ri.RelativeRuntime <= rs.RelativeRuntime {
		t.Errorf("irregular ilbdc (%.1fx) should fault more than streaming sp (%.1fx)",
			ri.RelativeRuntime, rs.RelativeRuntime)
	}
}

func TestPinnedMode(t *testing.T) {
	b := specOf(t, "356.sp")
	r := RunPinned(b.Trace, uint64(b.Footprint/64), DefaultConfig())
	if r.RelativeRuntime <= 1 {
		t.Errorf("pinned host memory must cost more than local, got %.2fx", r.RelativeRuntime)
	}
	if r.RelativeRuntime > 30 {
		t.Errorf("pinned mode should be bounded (no faults), got %.2fx", r.RelativeRuntime)
	}
}

func TestSweepShape(t *testing.T) {
	b := specOf(t, "351.palm")
	cfg := DefaultConfig()
	cfg.Accesses = 50000
	points, pinned := Sweep(b.Trace, uint64(b.Footprint/64), nil, cfg)
	if len(points) != 6 {
		t.Fatalf("default sweep has 6 points, got %d", len(points))
	}
	if pinned.RelativeRuntime <= 1 {
		t.Error("pinned result missing")
	}
}

func TestClockPool(t *testing.T) {
	p := newClockPool(2)
	if p.touch(1) {
		t.Error("cold touch should miss")
	}
	if !p.touch(1) {
		t.Error("warm touch should hit")
	}
	p.touch(2)
	p.touch(3) // evicts FIFO victim (1)
	if p.touch(1) {
		t.Error("evicted page should miss")
	}
}
