package um

import "sync"

// Pager is an incremental demand-paging model over the same CLOCK pool the
// Fig. 12 sweeps use: a bounded set of resident pages, with misses counted
// as driver-serviced fault migrations. Unlike RunOversubscription, which
// replays a whole trace, Pager is driven one access at a time so it can sit
// underneath a live storage tier (the host unified-memory fallback backend).
// It is safe for concurrent use.
type Pager struct {
	mu        sync.Mutex
	pageBytes int
	pool      *clockPool
	faults    uint64
	migrated  uint64
}

// NewPager builds a pager with the given migration granularity and resident
// pool capacity in bytes. pageBytes defaults to DefaultConfig().PageBytes;
// residentBytes below one page is rounded up to a single-page pool.
func NewPager(pageBytes int, residentBytes int64) *Pager {
	if pageBytes <= 0 {
		pageBytes = DefaultConfig().PageBytes
	}
	capacity := int(residentBytes / int64(pageBytes))
	return &Pager{pageBytes: pageBytes, pool: newClockPool(capacity)}
}

// PageBytes returns the migration granularity.
func (p *Pager) PageBytes() int { return p.pageBytes }

// Touch records an access to addr and reports whether its page was already
// resident. A miss evicts (CLOCK) and migrates the page in, accounting one
// fault and PageBytes of migration traffic.
func (p *Pager) Touch(addr uint64) bool {
	page := addr / uint64(p.pageBytes)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pool.touch(page) {
		return true
	}
	p.faults++
	p.migrated += uint64(p.pageBytes)
	return false
}

// Stats returns the fault count and migrated bytes so far.
func (p *Pager) Stats() (faults, migratedBytes uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faults, p.migrated
}

// Reset clears residency and counters.
func (p *Pager) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pool = newClockPool(p.pool.cap)
	p.faults, p.migrated = 0, 0
}
