//go:build race

// Package race reports whether the Go race detector is enabled, so heavy
// single-threaded fidelity sweeps can skip themselves under -race (they add
// wall-clock but no concurrency coverage).
package race

// Enabled is true when the binary was built with -race.
const Enabled = true
