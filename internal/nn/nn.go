// Package nn is a small from-scratch neural-network trainer used to
// reproduce Fig. 13d's convergence study. The paper trains ResNet50 on
// CIFAR100 for 100 epochs at different mini-batch sizes and shows that very
// small batches (16, 32) converge to lower validation accuracy with more
// jitter — largely a batch-normalization effect — while 64+ reach maximum
// accuracy. Training ResNet50 is outside a CPU-only reproduction's budget,
// so we train an MLP with batch normalization on a synthetic CIFAR-like
// classification task: the mechanism under test (gradient and BN-statistic
// noise growing as batch size shrinks) is the same.
package nn

import (
	"math"

	"buddy/internal/gen"
)

// Dataset is a labelled classification set.
type Dataset struct {
	// X holds len(Y) rows of Dim features.
	X [][]float32
	// Y holds class labels.
	Y []int
	// Dim and Classes describe the shapes.
	Dim, Classes int
}

// SyntheticTask generates a CIFAR-like task: classes are Gaussian clusters
// with heavy overlap plus label noise, so accuracy saturates below 100% and
// optimization quality matters. taskSeed fixes the class centers (shared by
// train and validation splits); sampleSeed draws the samples.
func SyntheticTask(samples, dim, classes int, taskSeed, sampleSeed uint64) *Dataset {
	return SyntheticTaskNoise(samples, dim, classes, taskSeed, sampleSeed, 1.6)
}

// SyntheticTaskNoise is SyntheticTask with an explicit within-class noise
// level, used to tune task difficulty.
func SyntheticTaskNoise(samples, dim, classes int, taskSeed, sampleSeed uint64, noise float32) *Dataset {
	cr := gen.NewRNG(taskSeed, 11)
	centers := make([][]float32, classes)
	for c := range centers {
		centers[c] = make([]float32, dim)
		for d := range centers[c] {
			centers[c][d] = float32(cr.NormFloat64()) * 1.0
		}
	}
	r := gen.NewRNG(sampleSeed, 13)
	ds := &Dataset{Dim: dim, Classes: classes}
	for i := 0; i < samples; i++ {
		c := r.Intn(classes)
		x := make([]float32, dim)
		for d := range x {
			x[d] = centers[c][d] + float32(r.NormFloat64())*noise
		}
		label := c
		if r.Float64() < 0.05 { // label noise
			label = r.Intn(classes)
		}
		ds.X = append(ds.X, x)
		ds.Y = append(ds.Y, label)
	}
	return ds
}

// MLP is a two-layer perceptron with batch normalization after the hidden
// layer: input -> dense -> batchnorm -> ReLU -> dense -> softmax.
type MLP struct {
	in, hidden, classes int

	w1, w2 []float32 // weights
	b1, b2 []float32 // biases
	gamma  []float32 // BN scale
	beta   []float32 // BN shift
	// Running statistics for inference-mode BN.
	runMean, runVar []float32

	rng *gen.RNG
}

// NewMLP initializes the model with He-style random weights.
func NewMLP(in, hidden, classes int, seed uint64) *MLP {
	m := &MLP{
		in: in, hidden: hidden, classes: classes,
		w1: make([]float32, in*hidden), b1: make([]float32, hidden),
		w2: make([]float32, hidden*classes), b2: make([]float32, classes),
		gamma: make([]float32, hidden), beta: make([]float32, hidden),
		runMean: make([]float32, hidden), runVar: make([]float32, hidden),
		rng: gen.NewRNG(seed, 21),
	}
	s1 := float32(math.Sqrt(2.0 / float64(in)))
	for i := range m.w1 {
		m.w1[i] = float32(m.rng.NormFloat64()) * s1
	}
	s2 := float32(math.Sqrt(2.0 / float64(hidden)))
	for i := range m.w2 {
		m.w2[i] = float32(m.rng.NormFloat64()) * s2
	}
	for i := range m.gamma {
		m.gamma[i] = 1
		m.runVar[i] = 1
	}
	return m
}

const bnEps = 1e-5
const bnMomentum = 0.9

// TrainEpoch runs one epoch of mini-batch SGD with the given batch size and
// learning rate, returning mean training loss. Batch normalization uses the
// batch's own statistics — the noise source that hurts small batches.
func (m *MLP) TrainEpoch(ds *Dataset, batch int, lr float32) float64 {
	n := len(ds.X)
	perm := m.rng.Perm(n)
	var totalLoss float64
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		idx := perm[start:end]
		totalLoss += m.trainBatch(ds, idx, lr) * float64(len(idx))
	}
	return totalLoss / float64(n)
}

func (m *MLP) trainBatch(ds *Dataset, idx []int, lr float32) float64 {
	b := len(idx)
	h := m.hidden
	// Forward: dense1.
	z1 := make([]float32, b*h)
	for i, s := range idx {
		x := ds.X[s]
		for j := 0; j < h; j++ {
			sum := m.b1[j]
			wrow := m.w1[j*m.in : (j+1)*m.in]
			for d, xv := range x {
				sum += wrow[d] * xv
			}
			z1[i*h+j] = sum
		}
	}
	// Batch norm (batch statistics).
	mean := make([]float32, h)
	varr := make([]float32, h)
	for j := 0; j < h; j++ {
		var mu float32
		for i := 0; i < b; i++ {
			mu += z1[i*h+j]
		}
		mu /= float32(b)
		var v float32
		for i := 0; i < b; i++ {
			d := z1[i*h+j] - mu
			v += d * d
		}
		v /= float32(b)
		mean[j], varr[j] = mu, v
		m.runMean[j] = bnMomentum*m.runMean[j] + (1-bnMomentum)*mu
		m.runVar[j] = bnMomentum*m.runVar[j] + (1-bnMomentum)*v
	}
	xhat := make([]float32, b*h)
	a1 := make([]float32, b*h) // post-ReLU
	relu := make([]bool, b*h)
	for j := 0; j < h; j++ {
		inv := float32(1 / math.Sqrt(float64(varr[j])+bnEps))
		for i := 0; i < b; i++ {
			xh := (z1[i*h+j] - mean[j]) * inv
			xhat[i*h+j] = xh
			y := m.gamma[j]*xh + m.beta[j]
			if y > 0 {
				a1[i*h+j] = y
				relu[i*h+j] = true
			}
		}
	}
	// Forward: dense2 + softmax loss.
	c := m.classes
	probs := make([]float32, b*c)
	var loss float64
	for i := 0; i < b; i++ {
		row := probs[i*c : (i+1)*c]
		maxv := float32(math.Inf(-1))
		for k := 0; k < c; k++ {
			sum := m.b2[k]
			wrow := m.w2[k*h : (k+1)*h]
			for j := 0; j < h; j++ {
				sum += wrow[j] * a1[i*h+j]
			}
			row[k] = sum
			if sum > maxv {
				maxv = sum
			}
		}
		var z float32
		for k := 0; k < c; k++ {
			row[k] = float32(math.Exp(float64(row[k] - maxv)))
			z += row[k]
		}
		for k := 0; k < c; k++ {
			row[k] /= z
		}
		loss += -math.Log(float64(row[ds.Y[idx[i]]] + 1e-12))
	}
	// Backward.
	dz2 := make([]float32, b*c)
	for i := 0; i < b; i++ {
		for k := 0; k < c; k++ {
			d := probs[i*c+k]
			if k == ds.Y[idx[i]] {
				d -= 1
			}
			dz2[i*c+k] = d / float32(b)
		}
	}
	da1 := make([]float32, b*h)
	for k := 0; k < c; k++ {
		wrow := m.w2[k*h : (k+1)*h]
		var db float32
		for i := 0; i < b; i++ {
			g := dz2[i*c+k]
			db += g
			for j := 0; j < h; j++ {
				da1[i*h+j] += wrow[j] * g
			}
		}
		for j := 0; j < h; j++ {
			var dw float32
			for i := 0; i < b; i++ {
				dw += dz2[i*c+k] * a1[i*h+j]
			}
			wrow[j] -= lr * dw
		}
		m.b2[k] -= lr * db
	}
	// Through ReLU and batch norm.
	dxhat := make([]float32, b*h)
	for j := 0; j < h; j++ {
		var dgamma, dbeta float32
		for i := 0; i < b; i++ {
			g := da1[i*h+j]
			if !relu[i*h+j] {
				g = 0
			}
			dgamma += g * xhat[i*h+j]
			dbeta += g
			dxhat[i*h+j] = g * m.gamma[j]
		}
		inv := float32(1 / math.Sqrt(float64(varr[j])+bnEps))
		var sumDx, sumDxX float32
		for i := 0; i < b; i++ {
			sumDx += dxhat[i*h+j]
			sumDxX += dxhat[i*h+j] * xhat[i*h+j]
		}
		for i := 0; i < b; i++ {
			dz := inv / float32(b) * (float32(b)*dxhat[i*h+j] - sumDx - xhat[i*h+j]*sumDxX)
			// dense1 gradient applied per (i, j) with the input row.
			x := ds.X[idx[i]]
			wrow := m.w1[j*m.in : (j+1)*m.in]
			for d, xv := range x {
				wrow[d] -= lr * dz * xv
			}
			m.b1[j] -= lr * dz
		}
		m.gamma[j] -= lr * dgamma
		m.beta[j] -= lr * dbeta
	}
	return loss / float64(b)
}

// Accuracy evaluates classification accuracy with inference-mode BN
// (running statistics).
func (m *MLP) Accuracy(ds *Dataset) float64 {
	correct := 0
	h := m.hidden
	for i, x := range ds.X {
		a1 := make([]float32, h)
		for j := 0; j < h; j++ {
			sum := m.b1[j]
			wrow := m.w1[j*m.in : (j+1)*m.in]
			for d, xv := range x {
				sum += wrow[d] * xv
			}
			inv := float32(1 / math.Sqrt(float64(m.runVar[j])+bnEps))
			y := m.gamma[j]*(sum-m.runMean[j])*inv + m.beta[j]
			if y > 0 {
				a1[j] = y
			}
		}
		best, bestv := 0, float32(math.Inf(-1))
		for k := 0; k < m.classes; k++ {
			sum := m.b2[k]
			wrow := m.w2[k*h : (k+1)*h]
			for j := 0; j < h; j++ {
				sum += wrow[j] * a1[j]
			}
			if sum > bestv {
				best, bestv = k, sum
			}
		}
		if best == ds.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.X))
}

// ConvergenceCurve trains a fresh model for epochs at the given batch size
// and returns per-epoch validation accuracy — one line of Fig. 13d. The
// learning-rate protocol is tuned for the batch-64 reference and scales up
// (capped at 2x) for larger batches, the common practice; small mini-batches
// then sit at a higher gradient/BN-statistics noise floor, which is the
// paper's observed under-convergence mechanism.
func ConvergenceCurve(train, val *Dataset, batch, epochs int, seed uint64) []float64 {
	m := NewMLP(train.Dim, 48, train.Classes, seed)
	baseLR := float32(0.09)
	lr := baseLR
	if batch > 64 {
		lr = baseLR * float32(batch) / 64
		if lr > 2*baseLR {
			lr = 2 * baseLR
		}
	}
	var acc []float64
	for e := 0; e < epochs; e++ {
		if e == epochs*3/4 { // step decay
			lr /= 5
		}
		m.TrainEpoch(train, batch, lr)
		acc = append(acc, m.Accuracy(val))
	}
	return acc
}
