package nn

import "testing"

func TestTrainingLearns(t *testing.T) {
	train := SyntheticTask(2000, 16, 4, 1, 10)
	val := SyntheticTask(500, 16, 4, 1, 20)
	m := NewMLP(16, 32, 4, 3)
	before := m.Accuracy(val)
	for e := 0; e < 15; e++ {
		m.TrainEpoch(train, 64, 0.05)
	}
	after := m.Accuracy(val)
	if after < 0.6 {
		t.Errorf("accuracy %.3f after training, want > 0.6", after)
	}
	if after <= before {
		t.Errorf("training did not improve accuracy: %.3f -> %.3f", before, after)
	}
}

func TestLossDecreases(t *testing.T) {
	train := SyntheticTask(1000, 16, 4, 2, 11)
	m := NewMLP(16, 24, 4, 5)
	first := m.TrainEpoch(train, 32, 0.05)
	var last float64
	for e := 0; e < 10; e++ {
		last = m.TrainEpoch(train, 32, 0.05)
	}
	if last >= first {
		t.Errorf("loss did not decrease: %.3f -> %.3f", first, last)
	}
}

func TestDeterministicTraining(t *testing.T) {
	train := SyntheticTask(500, 8, 3, 3, 12)
	a, b := NewMLP(8, 16, 3, 7), NewMLP(8, 16, 3, 7)
	for e := 0; e < 3; e++ {
		la := a.TrainEpoch(train, 16, 0.05)
		lb := b.TrainEpoch(train, 16, 0.05)
		if la != lb {
			t.Fatalf("epoch %d loss diverged: %f vs %f", e, la, lb)
		}
	}
}

func TestSharedCentersAcrossSplits(t *testing.T) {
	// Same taskSeed, different sampleSeed: a model trained on one split
	// must transfer to the other (the Fig. 13d prerequisite).
	train := SyntheticTask(1500, 16, 4, 9, 1)
	val := SyntheticTask(400, 16, 4, 9, 2)
	m := NewMLP(16, 32, 4, 3)
	for e := 0; e < 12; e++ {
		m.TrainEpoch(train, 64, 0.05)
	}
	if acc := m.Accuracy(val); acc < 0.55 {
		t.Errorf("cross-split accuracy %.3f: centers not shared?", acc)
	}
}

func TestConvergenceCurveShape(t *testing.T) {
	train := SyntheticTask(1000, 16, 4, 4, 13)
	val := SyntheticTask(300, 16, 4, 4, 14)
	curve := ConvergenceCurve(train, val, 64, 8, 21)
	if len(curve) != 8 {
		t.Fatalf("want 8 epochs, got %d", len(curve))
	}
	if curve[len(curve)-1] <= curve[0] {
		t.Errorf("accuracy should improve over training: %.3f -> %.3f",
			curve[0], curve[len(curve)-1])
	}
}

func TestBatchSizeOneWorks(t *testing.T) {
	// Degenerate batch norm (variance 0) must not NaN the model.
	train := SyntheticTask(64, 8, 2, 5, 15)
	m := NewMLP(8, 8, 2, 9)
	loss := m.TrainEpoch(train, 1, 0.01)
	if loss != loss { // NaN check
		t.Fatal("batch size 1 produced NaN loss")
	}
}
