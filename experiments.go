package buddy

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"buddy/internal/exp"
	"buddy/internal/gpusim"
)

// ExperimentScale controls workload synthesis size for the experiment
// runners (footprint divisor; statistics are per-entry and scale-free).
type ExperimentScale struct {
	// Workload is the footprint divisor for data synthesis (default 1024).
	Workload int
	// Sim scales the performance simulator's trace length (1.0 = the full
	// Tab. 2 run length).
	Sim float64
	// Shards is the pool width for the sharded-serving experiment
	// (0 = the default 4); the cmds' -shards flag lands here.
	Shards int
	// Tenants is the batch tenant population for the qos experiment
	// (0 = the default exp.QoSBatchTenants); the cmds' -tenants flag
	// lands here.
	Tenants int
	// QoSSLOCycles is the qos experiment's latency-tenant p99 bound in
	// modeled cycles (0 = the default exp.QoSDefaultSLOCycles); the cmds'
	// -qos flag lands here.
	QoSSLOCycles float64
}

// DefaultScale runs at the repository's reference fidelity.
func DefaultScale() ExperimentScale { return ExperimentScale{Workload: 1024, Sim: 1.0} }

// QuickScale runs every experiment in seconds, for CI-style smoke runs.
func QuickScale() ExperimentScale { return ExperimentScale{Workload: 16384, Sim: 0.2} }

// The paper's tables and figures self-register so cmd/buddysim,
// cmd/buddyprof and the tests discover them through the registry instead of
// a hard-coded switch. Registration order follows the paper.
func init() {
	for _, e := range []Experiment{
		{Name: "tab1", Description: "benchmark table: suites, footprints, regions", Run: func(w io.Writer, _ ExperimentScale) error { return runTab1(w) }},
		{Name: "tab2", Description: "performance-simulator configuration", Run: func(w io.Writer, sc ExperimentScale) error {
			_, err := fmt.Fprint(w, exp.Tab2(exp.ScaledSimConfig(sc.Sim)))
			return err
		}},
		{Name: "fig3", Description: "per-snapshot BPC compression ratios per benchmark", Run: runFig3},
		{Name: "sparse", Description: "per-codec compression ratio on sparse fp16 activations (cDMA's 50-90% zero class)", Run: runSparse},
		{Name: "fig5b", Description: "metadata cache hit rate vs cache size", Run: func(w io.Writer, _ ExperimentScale) error { return runFig5b(w) }},
		{Name: "fig6", Description: "spatial compressibility heat-maps", Run: runFig6},
		{Name: "fig7", Description: "compression and buddy traffic: naive vs per-allocation vs final", Run: runFig7},
		{Name: "fig8", Description: "buddy-access fraction over time under fixed targets", Run: runFig8},
		{Name: "fig9", Description: "Buddy Threshold sweep per benchmark", Run: runFig9},
		{Name: "fig10", Description: "simulator correlation against reference cycles", Run: runFig10},
		{Name: "fig11", Description: "performance vs interconnect bandwidth sweep", Run: runFig11},
		{Name: "fig12", Description: "Unified Memory oversubscription baseline", Run: func(w io.Writer, _ ExperimentScale) error { return runFig12(w) }},
		{Name: "fig13a", Description: "DL training footprint vs batch size", Run: func(w io.Writer, _ ExperimentScale) error { return runFig13a(w) }},
		{Name: "fig13b", Description: "DL training speedup vs batch size", Run: func(w io.Writer, _ ExperimentScale) error { return runFig13b(w) }},
		{Name: "fig13c", Description: "feasible batch and speedup with Buddy Compression", Run: func(w io.Writer, _ ExperimentScale) error { return runFig13c(w) }},
		{Name: "fig13d", Description: "training accuracy across batch sizes", Run: func(w io.Writer, _ ExperimentScale) error { return runFig13d(w) }},
		{Name: "reprofile", Description: "live target-ratio migration on a drifting workload (§3.4 extension)", Run: runReprofile},
		{Name: "serve", Description: "sharded multi-device serving: aggregate throughput, 1 vs N shards", Run: runServe},
		{Name: "heal", Description: "self-healing fleet: kill a shard mid-serve, rebuild from buddy memory, measure the dip", Run: runHeal},
		{Name: "qos", Description: "tenant-aware serving: latency SLO under batch saturation, weighted batch shares, admission control", Run: runQoS},
	} {
		RegisterExperiment(e)
	}
}

func runTab1(w io.Writer) error {
	rows := [][]string{}
	for _, r := range exp.Table1() {
		rows = append(rows, []string{r.Name, r.Suite.String(),
			fmt.Sprintf("%.2f GB", float64(r.Footprint)/(1<<30)),
			fmt.Sprintf("%d", r.Regions)})
	}
	_, err := fmt.Fprint(w, exp.FormatTable([]string{"Benchmark", "Suite", "Footprint", "Regions"}, rows))
	return err
}

func runFig3(w io.Writer, sc ExperimentScale) error {
	res := exp.Fig3(sc.Workload)
	rows := [][]string{}
	for _, r := range res.Rows {
		series := make([]string, len(r.Ratios))
		for i, v := range r.Ratios {
			series[i] = fmt.Sprintf("%.2f", v)
		}
		rows = append(rows, []string{r.Name, r.Suite.String(),
			fmt.Sprintf("%.2f", r.Mean), strings.Join(series, " ")})
	}
	fmt.Fprint(w, exp.FormatTable([]string{"Benchmark", "Suite", "Mean", "Snapshots 0..9"}, rows))
	_, err := fmt.Fprintf(w, "GMEAN_HPC %.2f (paper 2.51)   GMEAN_DL %.2f (paper 1.85)\n",
		res.GMeanHPC, res.GMeanDL)
	return err
}

func runSparse(w io.Writer, sc ExperimentScale) error {
	res := exp.SparseSweep(sc.Workload, nil)
	header := []string{"Codec"}
	for _, zf := range res.ZeroFracs {
		header = append(header, fmt.Sprintf("%d%% zero", int(zf*100)))
	}
	rows := [][]string{}
	for _, r := range res.Rows {
		cells := []string{r.Codec}
		for _, ratio := range r.Ratios {
			cells = append(cells, fmt.Sprintf("%.2f", ratio))
		}
		rows = append(rows, cells)
	}
	_, err := fmt.Fprint(w, exp.FormatTable(header, rows))
	return err
}

func runFig5b(w io.Writer) error {
	rows := exp.Fig5b(nil)
	table := [][]string{}
	for _, r := range rows {
		cells := []string{r.Name}
		for _, hr := range r.HitRates {
			cells = append(cells, fmt.Sprintf("%.3f", hr))
		}
		table = append(table, cells)
	}
	header := []string{"Benchmark"}
	for _, kb := range rows[0].SizesKB {
		header = append(header, fmt.Sprintf("%dKB", kb))
	}
	_, err := fmt.Fprint(w, exp.FormatTable(header, table))
	return err
}

func runFig6(w io.Writer, sc ExperimentScale) error {
	for _, m := range exp.Fig6(sc.Workload) {
		if _, err := fmt.Fprintln(w, m.ASCII(24)); err != nil {
			return err
		}
	}
	return nil
}

func runFig7(w io.Writer, sc ExperimentScale) error {
	res := exp.Fig7(sc.Workload)
	rows := [][]string{}
	for _, r := range res.Rows {
		rows = append(rows, []string{r.Name, r.Suite.String(),
			fmt.Sprintf("%.2fx/%4.1f%%", r.Naive.Ratio, r.Naive.BuddyFrac*100),
			fmt.Sprintf("%.2fx/%4.1f%%", r.PerAlloc.Ratio, r.PerAlloc.BuddyFrac*100),
			fmt.Sprintf("%.2fx/%4.1f%%", r.Final.Ratio, r.Final.BuddyFrac*100)})
	}
	fmt.Fprint(w, exp.FormatTable(
		[]string{"Benchmark", "Suite", "Naive", "Per-Allocation", "Final (zero-page)"}, rows))
	_, err := fmt.Fprintf(w,
		"GMEAN  naive HPC %.2fx/%.1f%% DL %.2fx/%.1f%% | final HPC %.2fx/%.2f%% DL %.2fx/%.1f%% (paper: 1.57/8 1.18/32 | 1.9/0.08 1.5/4)\n",
		res.NaiveHPC.Ratio, res.NaiveHPC.BuddyFrac*100, res.NaiveDL.Ratio, res.NaiveDL.BuddyFrac*100,
		res.FinalHPC.Ratio, res.FinalHPC.BuddyFrac*100, res.FinalDL.Ratio, res.FinalDL.BuddyFrac*100)
	return err
}

func runFig8(w io.Writer, sc ExperimentScale) error {
	for _, r := range exp.Fig8(sc.Workload) {
		fmt.Fprintf(w, "%s (ratio %.2fx):", r.Name, r.Points[0].Ratio)
		for _, p := range r.Points {
			fmt.Fprintf(w, " %.3f", p.BuddyFrac)
		}
		fmt.Fprintln(w, "   (buddy-access fraction per snapshot)")
	}
	return nil
}

func runFig9(w io.Writer, sc ExperimentScale) error {
	rows := exp.Fig9(sc.Workload, nil)
	table := [][]string{}
	for _, r := range rows {
		cells := []string{r.Name}
		for _, p := range r.Points {
			cells = append(cells, fmt.Sprintf("%.2fx/%4.1f%%", p.Ratio, p.BuddyFrac*100))
		}
		cells = append(cells, fmt.Sprintf("%.2fx", r.Best))
		table = append(table, cells)
	}
	header := []string{"Benchmark"}
	for _, th := range rows[0].Thresholds {
		header = append(header, fmt.Sprintf("BT=%.0f%%", th*100))
	}
	header = append(header, "Best")
	_, err := fmt.Fprint(w, exp.FormatTable(header, table))
	return err
}

func runFig10(w io.Writer, sc ExperimentScale) error {
	res := exp.Fig10(sc.Workload, exp.ScaledSimConfig(sc.Sim))
	fmt.Fprintf(w, "correlation(log cycles, sim vs reference) = %.3f (paper 0.989 vs silicon)\n",
		res.CorrelationLog)
	fmt.Fprintf(w, "fast mode %.3fs vs detailed mode %.3fs: %.1fx faster (cycle agreement %.2f)\n",
		res.FastWallSeconds, res.DetailedWallSeconds, res.SpeedupVsDetailed, res.DetailedAgreement)
	points := res.Points
	sort.Slice(points, func(i, j int) bool { return points[i].SimCycles < points[j].SimCycles })
	for _, p := range points[:min(6, len(points))] {
		fmt.Fprintf(w, "  %-14s ops=%-5d sim=%.3e ref=%.3e\n", p.Name, p.OpsPerWarp, p.SimCycles, p.RefCycles)
	}
	return nil
}

func runFig11(w io.Writer, sc ExperimentScale) error {
	res := exp.Fig11(sc.Workload, exp.ScaledSimConfig(sc.Sim), nil)
	table := [][]string{}
	for _, r := range res.Rows {
		cells := []string{r.Name, r.Suite.String(), fmt.Sprintf("%.3f", r.BWOnly)}
		for _, b := range r.Buddy {
			cells = append(cells, fmt.Sprintf("%.3f", b))
		}
		cells = append(cells, fmt.Sprintf("%.1f%%", r.BuddyAccessShare*100))
		table = append(table, cells)
	}
	header := []string{"Benchmark", "Suite", "BW-only"}
	for _, l := range res.Links {
		header = append(header, fmt.Sprintf("Buddy@%.0f", l))
	}
	header = append(header, "BuddyShare")
	fmt.Fprint(w, exp.FormatTable(header, table))
	_, err := fmt.Fprintf(w, "GMEAN bw-only %.3f (paper 1.055) | buddy@150 HPC %.3f DL %.3f (paper 0.99 / 0.978)\n",
		res.GMeanBWOnly, res.GMeanHPC150, res.GMeanDL150)
	return err
}

func runFig12(w io.Writer) error {
	for _, r := range exp.Fig12() {
		fmt.Fprintf(w, "%-10s pinned=%.1fx  um:", r.Name, r.Pinned)
		for _, p := range r.Points {
			fmt.Fprintf(w, " %.0f%%=%.1fx", p.Oversubscription*100, p.RelativeRuntime)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runFig13a(w io.Writer) error {
	for _, r := range exp.Fig13a() {
		fmt.Fprintf(w, "%-14s", r.Name)
		for _, p := range r.Points {
			fmt.Fprintf(w, " b%d=%.1fGB", p.Batch, float64(p.Footprint)/(1<<30))
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runFig13b(w io.Writer) error {
	for _, r := range exp.Fig13b() {
		fmt.Fprintf(w, "%-14s", r.Name)
		for _, p := range r.Points {
			fmt.Fprintf(w, " b%d=%.2fx", p.Batch, p.Speedup)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runFig13c(w io.Writer) error {
	res := exp.Fig13c()
	rows := [][]string{}
	for _, r := range res.Rows {
		rows = append(rows, []string{r.Name, fmt.Sprintf("%d", r.BaseBatch),
			fmt.Sprintf("%d", r.CompressedBatch), fmt.Sprintf("%.2fx", r.Speedup)})
	}
	fmt.Fprint(w, exp.FormatTable([]string{"Network", "Batch@12GB", "Batch w/ Buddy", "Speedup"}, rows))
	_, err := fmt.Fprintf(w, "mean speedup %.2fx (paper ~1.14x; VGG16/BigLSTM highest)\n", res.Mean)
	return err
}

func runFig13d(w io.Writer) error {
	for _, r := range exp.Fig13d(exp.DefaultFig13dConfig()) {
		fmt.Fprintf(w, "batch %3d: final accuracy %.3f (jitter %.4f)\n", r.Batch, r.Final, r.Jitter)
	}
	return nil
}

func runReprofile(w io.Writer, sc ExperimentScale) error {
	res, err := exp.Reprofile(sc.Workload)
	if err != nil {
		return err
	}
	rows := [][]string{}
	var migrated int64
	var applied int
	for _, s := range res.Steps {
		action := "-"
		if s.Applied {
			action = fmt.Sprintf("migrate %d KiB", s.MigratedBytes>>10)
			migrated += s.MigratedBytes
			applied++
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.Snapshot),
			fmt.Sprintf("%5.1f%%", s.StaleBuddyFrac*100),
			action,
			fmt.Sprintf("%5.1f%%", s.BuddyFracAfter*100),
			fmt.Sprintf("%.2fx", s.Ratio),
		})
	}
	fmt.Fprint(w, exp.FormatTable(
		[]string{"Snapshot", "Buddy(stale)", "Checkpoint action", "Buddy(after)", "Ratio"}, rows))
	_, err = fmt.Fprintf(w, "%s: %d checkpoints reprofiled, %d KiB migrated (horizon %d accesses)\n",
		res.Benchmark, applied, migrated>>10, res.Horizon)
	return err
}

func runServe(w io.Writer, sc ExperimentScale) error {
	res, err := exp.Serve(sc.Workload, sc.Shards)
	if err != nil {
		return err
	}
	rows := [][]string{}
	for _, p := range res.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Shards),
			fmt.Sprintf("%.2f", p.ThroughputGBs),
			fmt.Sprintf("%.3e", p.ServiceCycles),
			fmt.Sprintf("%.3f", p.MetadataHitRate),
			fmt.Sprintf("%.2fs", p.WallSeconds),
		})
	}
	fmt.Fprint(w, exp.FormatTable(
		[]string{"Shards", "Modeled GB/s", "Service cycles", "Meta hit", "Wall"}, rows))
	fmt.Fprintf(w,
		"%d clients (%d DL + %d HPC working sets), %.1f MiB served per configuration\n"+
			"aggregate serving throughput %d shards vs 1: %.2fx (equal total capacity)\n",
		res.Clients, len(res.Benchmarks)/2, len(res.Benchmarks)/2,
		float64(res.PayloadBytes)/(1<<20),
		res.Points[len(res.Points)-1].Shards, res.Speedup)
	if c := res.Chunked; c != nil {
		_, err = fmt.Fprintf(w,
			"chunked clients (%d B submits, %d shards): %.2f GB/s wall, %.0f%% of %d tasks coalesced\n",
			c.ChunkBytes, c.Shards, c.WallGBs, 100*c.CoalescedFrac, c.Submitted)
	}
	return err
}

func runHeal(w io.Writer, sc ExperimentScale) error {
	res, err := exp.Heal(sc.Workload, sc.Shards)
	if err != nil {
		return err
	}
	rows := [][]string{
		{"A: baseline", fmt.Sprintf("%.2f", res.BaselineGBs), "-"},
		{fmt.Sprintf("B: shard %d killed", res.KilledShard), fmt.Sprintf("%.2f", res.FailureGBs),
			fmt.Sprintf("%d retried ops", res.Retried)},
		{"C: recovered", fmt.Sprintf("%.2f", res.RecoveredGBs),
			fmt.Sprintf("%.0f%% of baseline", res.RecoveryRatio*100)},
	}
	fmt.Fprint(w, exp.FormatTable([]string{"Round", "Modeled GB/s", "Notes"}, rows))
	fmt.Fprintf(w,
		"%d clients on %d shards; rebuild: %d entries, %d KiB over the buddy link in %s; lost bytes: %d\n",
		res.Clients, res.Shards, res.RebuiltEntries, res.RebuiltBytes>>10, res.RecoveryWall, res.LostBytes)
	_, err = fmt.Fprintf(w,
		"quiesced migration: %d decodes, %d encodes (codec-matched => 0/0); migration bytes src=%d dst=%d\n",
		res.MigrateDecodes, res.MigrateEncodes, res.MigrationBytesSrc, res.MigrationBytesDst)
	return err
}

func runQoS(w io.Writer, sc ExperimentScale) error {
	res, err := exp.QoS(sc.Workload, sc.Shards, sc.Tenants, sc.QoSSLOCycles)
	if err != nil {
		return err
	}
	rows := [][]string{}
	for _, ts := range res.Tenants {
		rows = append(rows, []string{
			ts.Name,
			fmt.Sprintf("%d", ts.Priority),
			fmt.Sprintf("%d", ts.Weight),
			fmt.Sprintf("%.1f", float64(ts.ServedBytes)/(1<<20)),
			fmt.Sprintf("%.0f", ts.Latency.P50),
			fmt.Sprintf("%.0f", ts.Latency.P99),
			fmt.Sprintf("%d", ts.Submitted),
			fmt.Sprintf("%d", ts.Rejected),
		})
	}
	fmt.Fprint(w, exp.FormatTable(
		[]string{"Tenant", "Prio", "Weight", "Served MiB", "p50 cyc", "p99 cyc", "Submitted", "Rejected"}, rows))
	verdict := func(ok bool) string {
		if ok {
			return "met"
		}
		return "MISSED"
	}
	fmt.Fprintf(w,
		"latency tenant p99 vs SLO %.0f cycles: %s | %d closed-loop bursts under %d batch tenants\n",
		res.SLOCycles, verdict(res.SLOMet), res.Bursts, res.BatchTenants)
	fmt.Fprintf(w,
		"heavy batch share %.3f vs entitled %.3f (weights %d:1, steady window %d MiB): %s\n",
		res.HeavyShare, res.EntitledShare, exp.QoSHeavyWeight, res.BatchBytes>>20, verdict(res.ShareMet))
	_, err = fmt.Fprintf(w,
		"admission control: over-quota Malloc rejected typed=%v; %d shards, wall %.2fs\n",
		res.QuotaRejected, res.Shards, res.WallSeconds)
	return err
}

// SimConfig exposes the Tab. 2 performance-simulator configuration for
// advanced users of the timing model.
type SimConfig = gpusim.Config

// DefaultSimConfig returns Tab. 2.
func DefaultSimConfig() SimConfig { return gpusim.DefaultConfig() }
