package buddy

import (
	"testing"

	"buddy/internal/analysis"
	"buddy/internal/compress"
	"buddy/internal/core"
	"buddy/internal/gpusim"
	"buddy/internal/memory"
	"buddy/internal/nvlink"
	"buddy/internal/stats"
	"buddy/internal/workloads"
)

// Ablations for the design choices DESIGN.md calls out: the compression
// algorithm (§2.4), the metadata cache size (Fig. 5), the decompression
// latency assumption (§4.1), and the Buddy Threshold (Fig. 9, covered by
// BenchmarkFig9). Each reports its metric so `go test -bench Ablation`
// prints the ablation table.

// BenchmarkAblationAlgorithm recomputes the Fig. 3 capacity study with each
// implemented algorithm, validating the paper's choice of BPC: its gmean
// ratio should lead on both suites.
func BenchmarkAblationAlgorithm(b *testing.B) {
	for _, c := range compress.Registry() {
		b.Run(c.Name(), func(b *testing.B) {
			var hpc, dl []float64
			for i := 0; i < b.N; i++ {
				hpc, dl = hpc[:0], dl[:0]
				for _, bench := range workloads.Table1() {
					s := workloads.GenerateSnapshot(bench, 5, 16384)
					r := analysis.CompressionRatio(s, c, compress.OptimisticSizes)
					if bench.Suite == workloads.HPC {
						hpc = append(hpc, r)
					} else {
						dl = append(dl, r)
					}
				}
			}
			b.ReportMetric(stats.GMean(hpc), "gmeanHPC")
			b.ReportMetric(stats.GMean(dl), "gmeanDL")
		})
	}
}

// BenchmarkAblationMetadataCache sweeps the per-slice metadata cache size
// on the metadata-heavy 351.palm under full Buddy mode.
func BenchmarkAblationMetadataCache(b *testing.B) {
	bench, err := workloads.ByName("351.palm")
	if err != nil {
		b.Fatal(err)
	}
	fp := uint64(bench.Footprint / 16)
	dm := gpusim.BuildDataModel(bench, fp, 16384, core.FinalDesign())
	for _, kb := range []int{1, 4, 16} {
		b.Run(byteSize(kb), func(b *testing.B) {
			cfg := gpusim.DefaultConfig()
			cfg.OpsPerWarp = 32
			cfg.MetaCacheBytesPerSlice = kb << 10
			var r gpusim.Result
			for i := 0; i < b.N; i++ {
				r = gpusim.Run(bench.Trace, dm, gpusim.ModeBuddy, cfg)
			}
			b.ReportMetric(r.Cycles, "cycles")
			b.ReportMetric(float64(r.MetaMisses)/float64(r.MetaHits+r.MetaMisses), "metaMissRate")
		})
	}
}

// BenchmarkAblationDecompressionLatency sweeps the (de)compression latency
// on latency-sensitive FF_Lulesh under bandwidth-only compression,
// quantifying the +11-DRAM-cycle assumption's impact (§4.2).
func BenchmarkAblationDecompressionLatency(b *testing.B) {
	bench, err := workloads.ByName("FF_Lulesh")
	if err != nil {
		b.Fatal(err)
	}
	fp := uint64(bench.Footprint / 16)
	dm := gpusim.BuildDataModel(bench, fp, 16384, core.FinalDesign())
	for _, lat := range []float64{0, 16, 48} {
		b.Run(cyc(lat), func(b *testing.B) {
			cfg := gpusim.DefaultConfig()
			cfg.OpsPerWarp = 32
			cfg.DecompressLatencyCycles = lat
			var r gpusim.Result
			for i := 0; i < b.N; i++ {
				r = gpusim.Run(bench.Trace, dm, gpusim.ModeBWOnly, cfg)
			}
			b.ReportMetric(r.Cycles, "cycles")
		})
	}
}

// BenchmarkAblationBuddyThresholdExtremes contrasts the final design's 30%
// threshold with the extremes on the threshold-sensitive FF_HPGMG (§3.4:
// it needs >80% to capture its striped compressibility).
func BenchmarkAblationBuddyThresholdExtremes(b *testing.B) {
	bench, err := workloads.ByName("FF_HPGMG")
	if err != nil {
		b.Fatal(err)
	}
	snaps := workloads.GenerateRun(bench, 16384)
	for _, th := range []float64{0.10, 0.30, 0.85} {
		b.Run(pct(th), func(b *testing.B) {
			opt := core.FinalDesign()
			opt.Threshold = th
			var res *core.ProfileResult
			for i := 0; i < b.N; i++ {
				res = core.Profile(snaps, compress.NewBPC(), opt)
			}
			b.ReportMetric(res.CompressionRatio, "ratio")
			b.ReportMetric(res.BuddyAccessFraction*100, "buddy%")
		})
	}
}

// BenchmarkAblationReprofile measures the checkpoint-time re-profiling
// extension (§3.4) on the drifting 355.seismic: the plan's migration cost
// versus the buddy-access reduction it buys.
func BenchmarkAblationReprofile(b *testing.B) {
	bench, err := workloads.ByName("355.seismic")
	if err != nil {
		b.Fatal(err)
	}
	early := []*memory.Snapshot{workloads.GenerateSnapshot(bench, 0, 16384)}
	late := []*memory.Snapshot{workloads.GenerateSnapshot(bench, 9, 16384)}
	bpc := compress.NewBPC()
	initial := core.Profile(early, bpc, core.FinalDesign())
	var plan *core.ReprofilePlan
	for i := 0; i < b.N; i++ {
		plan = core.PlanReprofile(initial.Targets(), late, bpc, core.FinalDesign())
	}
	b.ReportMetric(plan.BuddyFracBefore*100, "staleBuddy%")
	b.ReportMetric(plan.BuddyFracAfter*100, "freshBuddy%")
	b.ReportMetric(float64(plan.TotalMigrationBytes), "migrationB")
}

func byteSize(kb int) string {
	switch kb {
	case 1:
		return "1KB-per-slice"
	case 4:
		return "4KB-per-slice"
	default:
		return "16KB-per-slice"
	}
}

func cyc(lat float64) string {
	switch lat {
	case 0:
		return "0cycles"
	case 16:
		return "16cycles"
	default:
		return "48cycles"
	}
}

func pct(th float64) string {
	switch th {
	case 0.10:
		return "10pct"
	case 0.30:
		return "30pct"
	default:
		return "85pct"
	}
}

// BenchmarkAblationBuddyStorage compares the Fig. 2 buddy-storage
// alternatives (host CPU memory, peer-GPU memory, a disaggregated
// appliance) on the buddy-access-heavy SqueezeNet: they differ only in
// access latency at equal link bandwidth (§2.3).
func BenchmarkAblationBuddyStorage(b *testing.B) {
	bench, err := workloads.ByName("SqueezeNet")
	if err != nil {
		b.Fatal(err)
	}
	fp := uint64(bench.Footprint / 16)
	dm := gpusim.BuildDataModel(bench, fp, 16384, core.FinalDesign())
	for _, kind := range nvlink.StorageKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			cfg := gpusim.DefaultConfig()
			cfg.OpsPerWarp = 32
			cfg.Link = nvlink.StorageConfig(kind, cfg.Link.BandwidthGBs)
			var r gpusim.Result
			for i := 0; i < b.N; i++ {
				r = gpusim.Run(bench.Trace, dm, gpusim.ModeBuddy, cfg)
			}
			b.ReportMetric(r.Cycles, "cycles")
		})
	}
}
