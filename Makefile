# Developer entry points; CI runs the same targets.

GO ?= go

.PHONY: all build vet lint lint-fix test race bench bench-json bench-gate bench-baseline fuzz cover examples

all: lint build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint = vet plus buddylint, the type-aware invariant suite in
# internal/lint (nolegacy, lockorder, hotpathalloc, sentinelerr,
# mustclose). It replaced the old grep rules for the retired Compressor
# surface; see DESIGN.md "Invariants as analyzers". A finding can be
# suppressed one site at a time with a justified directive on or directly
# above the flagged line:
#
#     //nolint:buddy/<analyzer> -- reason the violation is safe here
#
# buddylint itself rejects reason-less or stale directives, so there is
# no blanket escape hatch; `make lint-fix` prints the recipe.
lint: vet
	$(GO) run ./cmd/buddylint ./...
	@echo 'lint: ok'

# buddylint has no automatic fixer: findings are fixed in code, or
# suppressed one site at a time. This target documents the recipe.
lint-fix:
	@echo 'buddylint has no auto-fixer. Fix the code, or suppress a single site:'
	@echo ''
	@echo '    //nolint:buddy/<analyzer> -- reason the violation is safe here'
	@echo ''
	@echo 'The directive covers its own line and the line below it. The reason is'
	@echo 'required: the driver reports reason-less or stale directives as findings,'
	@echo 'so every suppression in the tree carries its justification.'

test:
	$(GO) test ./...

# Smoke-run every example binary at reduced scale (the sources are already
# sized for seconds; serve additionally takes explicit small flags), plus
# the heal experiment at smoke fidelity — the failure-recovery path stays
# exercised end to end, not merely unit-tested. CI runs this so the
# examples stay executable, not merely compilable.
examples:
	@set -e; for d in examples/*/ ; do \
	  name=$$(basename $$d); \
	  args=""; \
	  case $$name in serve) args="-shards 2 -clients 4 -kb 64";; esac; \
	  echo "examples: run $$name $$args"; \
	  $(GO) run ./examples/$$name $$args >/dev/null; \
	done
	@echo "examples: run buddysim -exp heal -quick"
	@$(GO) run ./cmd/buddysim -exp heal -quick >/dev/null
	@echo 'examples: ok'

race:
	$(GO) test -race ./...

# Coverage: a whole-repo profile (cover.out, the CI artifact) plus a gate on
# internal/core — the driver's data path, lifecycle and migration machinery
# must not lose test coverage. The floor is the post-lifecycle-PR baseline
# (90.3% measured) minus a small margin for concurrency-dependent branches;
# raise it when coverage rises, never lower it to make a PR pass.
COVER_CORE_MIN = 89.0
cover:
	$(GO) test -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | tail -1
	$(GO) test -coverprofile=cover_core.out ./internal/core/ > /dev/null
	@total=$$($(GO) tool cover -func=cover_core.out | awk '/^total:/ { gsub("%",""); print $$3 }'); \
	  echo "internal/core coverage: $$total% (floor $(COVER_CORE_MIN)%)"; \
	  awk -v t=$$total -v m=$(COVER_CORE_MIN) 'BEGIN { exit (t+0 < m+0) ? 1 : 0 }' \
	    || { echo "cover: internal/core coverage $$total% fell below the $(COVER_CORE_MIN)% floor"; exit 1; }

# Data-path, analysis-pipeline and serving-layer benchmarks (incl.
# BenchmarkPoolServe), human-readable. Pass CPU=1,4 to see the GOMAXPROCS
# scaling of the parallel bulk and index-build paths.
CPU ?=
bench:
	$(GO) test -run '^$$' -bench . -benchmem $(if $(CPU),-cpu $(CPU)) \
		./internal/compress/ ./internal/core/ ./internal/analysis/ ./internal/exp/ ./internal/pool/

# Same benchmarks as one-shot JSON, the artifact CI uploads per PR: codec
# and bulk-I/O data path plus the analysis pipeline (BenchmarkAnalysisIndex,
# BenchmarkFig3Sweep). The root-package figure benches stay excluded as too
# heavy for PR CI.
bench-json:
	$(GO) test -json -run '^$$' -bench . -benchmem -benchtime=1x -count=1 \
		./internal/compress/ ./internal/core/ ./internal/analysis/ ./internal/exp/ ./internal/pool/ > BENCH_pr.json

# The bench-gate pins per-codec and data-path ns/entry — and, for benchmarks
# that report them, allocs/op (the async submit path pins at 0, so a
# de-pooled task or future fails the gate) — so a lost fast path fails
# loudly instead of landing silently. BENCH_baseline.json holds the pinned
# numbers (written by bench-baseline); bench-gate re-runs the same
# benchmarks (min of -count 4 per benchmark) and fails when any pinned
# benchmark runs slower than baseline x tolerance. Baselines are
# machine-relative: after a deliberate perf trade-off, or on a new machine
# class, re-pin with bench-baseline in a commit that says why. BENCH_TOL
# overrides the tolerance for one run (CI uses a wider one to absorb shared
# runner heterogeneity; a lost kernel fast path is a 2-15x cliff either way).
BENCH_GATE_PKGS = ./internal/compress/ ./internal/core/ ./internal/pool/
BENCH_GATE_RX = 'BenchmarkAppendCompressed|BenchmarkDecompressInto|BenchmarkVariedStream|BenchmarkWriteEntry|BenchmarkReadEntry|BenchmarkPoolServe|BenchmarkSubmitWrite|BenchmarkRebalanceScan|BenchmarkQoSDequeue'
BENCH_TOL ?=
bench-gate:
	$(GO) test -run '^$$' -bench $(BENCH_GATE_RX) -benchtime 100ms -count 4 $(BENCH_GATE_PKGS) \
		| $(GO) run ./cmd/benchgate -baseline BENCH_baseline.json $(if $(BENCH_TOL),-tolerance $(BENCH_TOL))

bench-baseline:
	$(GO) test -run '^$$' -bench $(BENCH_GATE_RX) -benchtime 100ms -count 4 $(BENCH_GATE_PKGS) \
		| $(GO) run ./cmd/benchgate -baseline BENCH_baseline.json -write \
		  -note "make bench-baseline: min of 4 x 100ms per benchmark"

# Short fuzz pass over all six codecs.
fuzz:
	$(GO) test -fuzz FuzzRoundTrip -fuzztime 30s ./internal/compress/
	$(GO) test -fuzz FuzzDecompressArbitrary -fuzztime 15s ./internal/compress/
