# Developer entry points; CI runs the same targets.

GO ?= go

.PHONY: all build vet lint test race bench bench-json fuzz

all: lint build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint = vet plus a grep gate: the legacy Compressor surface (the
# allocate-per-call CompressedBits/Compress/Decompress methods and the
# Compressor interface) was deleted in favor of the single-pass Codec, and
# WithCompressor survives only as a deprecated alias in options.go. Fail
# the build if any of it grows back.
lint: vet
	@if grep -rnE --include='*.go' 'func \([^)]*\) (CompressedBits|Compress|Decompress)\(' ./internal/compress ; then \
		echo 'lint: deleted legacy Compressor methods reappeared (use Codec: AppendCompressed/DecompressInto)'; exit 1; fi
	@if grep -rn --include='*.go' 'compress\.Compressor' . ; then \
		echo 'lint: the retired compress.Compressor interface reappeared (use compress.Codec)'; exit 1; fi
	@if grep -rn --include='*.go' --exclude='*_test.go' 'WithCompressor' . | grep -v '^\./options.go:' | grep . ; then \
		echo 'lint: WithCompressor used outside its deprecated alias (use WithCodec; tests may cover the alias)'; exit 1; fi
	@echo 'lint: ok'

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Data-path and analysis-pipeline benchmarks, human-readable. Pass CPU=1,4
# to see the GOMAXPROCS scaling of the parallel bulk and index-build paths.
CPU ?=
bench:
	$(GO) test -run '^$$' -bench . -benchmem $(if $(CPU),-cpu $(CPU)) \
		./internal/compress/ ./internal/core/ ./internal/analysis/ ./internal/exp/

# Same benchmarks as one-shot JSON, the artifact CI uploads per PR: codec
# and bulk-I/O data path plus the analysis pipeline (BenchmarkAnalysisIndex,
# BenchmarkFig3Sweep). The root-package figure benches stay excluded as too
# heavy for PR CI.
bench-json:
	$(GO) test -json -run '^$$' -bench . -benchmem -benchtime=1x -count=1 \
		./internal/compress/ ./internal/core/ ./internal/analysis/ ./internal/exp/ > BENCH_pr.json

# Short fuzz pass over all six codecs.
fuzz:
	$(GO) test -fuzz FuzzRoundTrip -fuzztime 30s ./internal/compress/
	$(GO) test -fuzz FuzzDecompressArbitrary -fuzztime 15s ./internal/compress/
