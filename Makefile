# Developer entry points; CI runs the same targets.

GO ?= go

.PHONY: all build vet test race bench bench-json fuzz

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Codec and bulk-I/O data-path benchmarks, human-readable. Pass CPU=1,4 to
# see the GOMAXPROCS scaling of the parallel bulk path.
CPU ?=
bench:
	$(GO) test -run '^$$' -bench . -benchmem $(if $(CPU),-cpu $(CPU)) \
		./internal/compress/ ./internal/core/

# Same codec/bulk-I/O benchmarks as one-shot JSON, the artifact CI uploads
# per PR (root-package figure benches are excluded as too heavy for PR CI).
bench-json:
	$(GO) test -json -run '^$$' -bench . -benchmem -benchtime=1x -count=1 \
		./internal/compress/ ./internal/core/ > BENCH_pr.json

# Short fuzz pass over all six codecs.
fuzz:
	$(GO) test -fuzz FuzzRoundTrip -fuzztime 30s ./internal/compress/
	$(GO) test -fuzz FuzzDecompressArbitrary -fuzztime 15s ./internal/compress/
