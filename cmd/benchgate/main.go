// benchgate compares `go test -bench` output on stdin against the pinned
// ns/entry and allocs/op baseline, failing when a pinned benchmark regressed
// past tolerance or disappeared. With -write it re-pins the baseline instead.
//
//	go test -run '^$' -bench . -count 3 ./internal/compress/ ./internal/core/ ./internal/pool/ | benchgate -baseline BENCH_baseline.json
//	go test -run '^$' -bench . -count 3 ./internal/compress/ ./internal/core/ ./internal/pool/ | benchgate -baseline BENCH_baseline.json -write
package main

import (
	"flag"
	"fmt"
	"os"

	"buddy/internal/benchgate"
)

func main() {
	var (
		path  = flag.String("baseline", "BENCH_baseline.json", "baseline file to compare against (or write)")
		write = flag.Bool("write", false, "re-pin the baseline from this run instead of gating")
		tol   = flag.Float64("tolerance", 0, "override the baseline's tolerance (0 = use the file's)")
		note  = flag.String("note", "", "note stored with -write (how/where the baseline was measured)")
	)
	flag.Parse()

	got, err := benchgate.ParseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(got.NsPerEntry) == 0 && len(got.AllocsPerOp) == 0 {
		fatal(fmt.Errorf("no ns/entry or allocs/op benchmark results on stdin — run with `go test -bench`"))
	}

	if *write {
		t := *tol
		if t <= 0 {
			t = benchgate.DefaultTolerance
		}
		b := benchgate.Baseline{
			Note:        *note,
			Tolerance:   t,
			NsPerEntry:  got.NsPerEntry,
			AllocsPerOp: got.AllocsPerOp,
		}
		if err := benchgate.WriteBaseline(*path, b); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: pinned %d metrics to %s (tolerance %.2fx)\n", b.Pins(), *path, t)
		return
	}

	base, err := benchgate.ReadBaseline(*path)
	if err != nil {
		fatal(err)
	}
	if *tol > 0 {
		base.Tolerance = *tol
	}
	violations := benchgate.Compare(base, got)
	if len(violations) == 0 {
		fmt.Printf("benchgate: %d pinned metrics within tolerance\n", base.Pins())
		return
	}
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL %s\n", v)
	}
	fmt.Fprintf(os.Stderr, "benchgate: %d of %d pinned metrics regressed (re-pin deliberate trade-offs with `make bench-baseline`)\n",
		len(violations), base.Pins())
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
