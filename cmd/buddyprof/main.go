// Command buddyprof runs the paper's profiling pass (§3.4) on one Tab. 1
// workload and prints the per-allocation target compression ratios a user
// (or DL framework) would use to annotate cudaMalloc calls.
//
// Usage:
//
//	buddyprof -bench VGG16
//	buddyprof -bench 351.palm -threshold 0.4 -no-zeropage
package main

import (
	"flag"
	"fmt"
	"os"

	"buddy"
)

func main() {
	bench := flag.String("bench", "", "Tab. 1 benchmark name (e.g. 351.palm, VGG16)")
	threshold := flag.Float64("threshold", 0.30, "Buddy Threshold (max overflow fraction)")
	noZeroPage := flag.Bool("no-zeropage", false, "disable the 16x mostly-zero optimization")
	scale := flag.Int("scale", 1024, "footprint divisor for synthesis")
	codec := flag.String("codec", "bpc", "compression algorithm (bpc, bdi, fpc, fvc, cpack, zero)")
	fig := flag.String("fig", "", "render a whole-suite profiling experiment from the registry (fig7, fig8, fig9, serve, qos) instead of one benchmark")
	shards := flag.Int("shards", 0, "pool width when -fig serve or qos runs a sharded fleet (0 = default 4)")
	tenants := flag.Int("tenants", 0, "batch tenant population when -fig qos runs (0 = default 2)")
	qosSLO := flag.Float64("qos", 0, "latency p99 SLO in modeled cycles when -fig qos runs (0 = default 4000)")
	flag.Parse()

	c, err := buddy.CodecByName(*codec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "buddyprof:", err)
		os.Exit(2)
	}

	if *fig != "" {
		if *codec != "bpc" {
			// The registry experiments are fixed to the paper's BPC; a
			// silently ignored -codec would mislabel the numbers.
			fmt.Fprintln(os.Stderr, "buddyprof: -codec applies to single-benchmark profiling, not -fig experiments (which use the paper's BPC)")
			os.Exit(2)
		}
		sc := buddy.QuickScale()
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scale" {
				sc.Workload = *scale
			}
		})
		if *shards > 0 {
			sc.Shards = *shards
		}
		if *tenants > 0 {
			sc.Tenants = *tenants
		}
		if *qosSLO > 0 {
			sc.QoSSLOCycles = *qosSLO
		}
		if err := buddy.RunExperiment(os.Stdout, *fig, sc); err != nil {
			fmt.Fprintln(os.Stderr, "buddyprof:", err)
			os.Exit(1)
		}
		return
	}
	if *bench == "" {
		fmt.Fprintln(os.Stderr, "buddyprof: -bench is required; available workloads:")
		for _, b := range buddy.Workloads() {
			fmt.Fprintf(os.Stderr, "  %s\n", b.Name)
		}
		fmt.Fprintln(os.Stderr, "or -fig for the registry's whole-suite profiling experiments:")
		for _, e := range buddy.ExperimentRegistry() {
			switch e.Name {
			case "fig7", "fig8", "fig9", "serve", "qos":
				fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.Name, e.Description)
			}
		}
		os.Exit(2)
	}
	b, err := buddy.WorkloadByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "buddyprof:", err)
		os.Exit(1)
	}
	snaps := buddy.GenerateRun(b, *scale)
	opt := buddy.FinalDesign()
	opt.Threshold = *threshold
	opt.ZeroPage = !*noZeroPage
	res := buddy.Profile(snaps, c, opt)

	fmt.Printf("%s: profiling over %d snapshots (Buddy Threshold %.0f%%)\n",
		b.Name, len(snaps), *threshold*100)
	for _, p := range res.Allocations {
		fmt.Printf("  %-18s target %-6s overflow %5.1f%%  sector histogram %v\n",
			p.Name, p.Target, p.OverflowFrac*100, p.Hist)
	}
	fmt.Printf("compression %.2fx, expected buddy-access fraction %.2f%%, best achievable %.2fx\n",
		res.CompressionRatio, res.BuddyAccessFraction*100, res.BestAchievable)
}
