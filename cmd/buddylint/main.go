// Buddylint is the repo's invariant gate: a multichecker running the
// internal/lint analyzer suite — nolegacy, lockorder, hotpathalloc,
// sentinelerr, mustclose — over the module. It replaces the Makefile's
// grep-based legacy-surface gate with type-aware checks; `make lint` runs
// it after go vet.
//
// Usage:
//
//	buddylint [-list] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status is 0 when the tree is clean, 1 when findings are reported, 2
// when loading or analysis itself fails (for example, on a tree that does
// not type-check).
//
// Findings can be suppressed, one site at a time, with a justified
// directive on or directly above the flagged line:
//
//	//nolint:buddy/<analyzer> -- reason the violation is safe here
//
// A directive without a reason — or one matching no diagnostic — is
// itself a finding.
package main

import (
	"flag"
	"fmt"
	"os"

	"buddy/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: buddylint [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	flag.Parse()
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "buddylint:", err)
		os.Exit(2)
	}
	n, err := lint.Run(dir, patterns, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "buddylint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "buddylint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

func firstLine(doc string) string {
	for i := 0; i < len(doc); i++ {
		if doc[i] == '\n' {
			return doc[:i]
		}
	}
	return doc
}
