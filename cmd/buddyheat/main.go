// Command buddyheat renders the Fig. 6 spatial compressibility heat-maps:
// one row per 8 KB page, one column per 128 B memory-entry, intensity =
// compressed sector count under BPC.
//
// Usage:
//
//	buddyheat -bench FF_HPGMG               # ASCII to stdout
//	buddyheat -bench VGG16 -pgm > vgg.pgm   # grayscale image
//	buddyheat -bench 356.sp -codec bdi      # a baseline algorithm
package main

import (
	"flag"
	"fmt"
	"os"

	"buddy"
	"buddy/internal/heatmap"
	"buddy/internal/workloads"
)

func main() {
	bench := flag.String("bench", "", "Tab. 1 benchmark name")
	snapshot := flag.Int("snapshot", 5, "which of the ten memory dumps to plot")
	pgm := flag.Bool("pgm", false, "emit a plain PGM image instead of ASCII")
	rows := flag.Int("rows", 48, "ASCII rows after downsampling (0 = all)")
	scale := flag.Int("scale", 4096, "footprint divisor for synthesis")
	codec := flag.String("codec", "bpc", "compression algorithm (bpc, bdi, fpc, fvc, cpack, zero)")
	flag.Parse()

	c, err := buddy.CodecByName(*codec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "buddyheat:", err)
		os.Exit(2)
	}

	if *bench == "" {
		fmt.Fprintln(os.Stderr, "buddyheat: -bench is required; available workloads:")
		for _, b := range buddy.Workloads() {
			fmt.Fprintf(os.Stderr, "  %s\n", b.Name)
		}
		os.Exit(2)
	}
	b, err := buddy.WorkloadByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "buddyheat:", err)
		os.Exit(1)
	}
	s := workloads.GenerateSnapshot(b, *snapshot, *scale)
	m := heatmap.Build(b.Name, s, c)
	if *pgm {
		fmt.Print(m.PGM())
		return
	}
	fmt.Print(m.ASCII(*rows))
	fmt.Printf("homogeneity index: %.3f\n", m.HomogeneityIndex())
}
