// Command buddysim regenerates the tables and figures of the Buddy
// Compression paper (ISCA 2020) from the reproduction library. Experiments
// are discovered through the buddy experiment registry.
//
// Usage:
//
//	buddysim -exp fig7            # one experiment at reference fidelity
//	buddysim -exp all -quick      # every experiment, smoke fidelity
//	buddysim -list                # list registered experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"buddy"
)

func main() {
	expName := flag.String("exp", "", "experiment id (see -list; or 'all')")
	quick := flag.Bool("quick", false, "run at smoke fidelity (seconds instead of minutes)")
	list := flag.Bool("list", false, "list registered experiments")
	scale := flag.Int("scale", 0, "override workload footprint divisor")
	shards := flag.Int("shards", 0, "pool width for the serve experiment (0 = default 4)")
	tenants := flag.Int("tenants", 0, "batch tenant population for the qos experiment (0 = default 2)")
	qosSLO := flag.Float64("qos", 0, "qos experiment latency p99 SLO in modeled cycles (0 = default 4000)")
	flag.Parse()

	if *list || *expName == "" {
		fmt.Println("registered experiments:")
		for _, e := range buddy.ExperimentRegistry() {
			fmt.Printf("  %-8s %s\n", e.Name, e.Description)
		}
		if *expName == "" && !*list {
			os.Exit(2)
		}
		return
	}
	sc := buddy.DefaultScale()
	if *quick {
		sc = buddy.QuickScale()
	}
	if *scale > 0 {
		sc.Workload = *scale
	}
	if *shards > 0 {
		sc.Shards = *shards
	}
	if *tenants > 0 {
		sc.Tenants = *tenants
	}
	if *qosSLO > 0 {
		sc.QoSSLOCycles = *qosSLO
	}
	if err := buddy.RunExperiment(os.Stdout, *expName, sc); err != nil {
		fmt.Fprintln(os.Stderr, "buddysim:", err)
		os.Exit(1)
	}
}
