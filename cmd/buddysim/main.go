// Command buddysim regenerates the tables and figures of the Buddy
// Compression paper (ISCA 2020) from the reproduction library.
//
// Usage:
//
//	buddysim -exp fig7            # one experiment at reference fidelity
//	buddysim -exp all -quick      # every experiment, smoke fidelity
//	buddysim -list                # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"buddy"
)

func main() {
	expName := flag.String("exp", "", "experiment id (tab1, tab2, fig3..fig13d, all)")
	quick := flag.Bool("quick", false, "run at smoke fidelity (seconds instead of minutes)")
	list := flag.Bool("list", false, "list experiment ids")
	scale := flag.Int("scale", 0, "override workload footprint divisor")
	flag.Parse()

	if *list || *expName == "" {
		fmt.Println("experiments:", strings.Join(buddy.Experiments(), " "))
		if *expName == "" && !*list {
			os.Exit(2)
		}
		return
	}
	sc := buddy.DefaultScale()
	if *quick {
		sc = buddy.QuickScale()
	}
	if *scale > 0 {
		sc.Workload = *scale
	}
	if err := buddy.RunExperiment(os.Stdout, *expName, sc); err != nil {
		fmt.Fprintln(os.Stderr, "buddysim:", err)
		os.Exit(1)
	}
}
