package buddy

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Experiment is one regenerable table or figure of the paper's evaluation,
// registered by name so tools can discover and run it without hard-coded
// switches.
type Experiment struct {
	// Name is the registry key (e.g. "fig7"); matching is case-insensitive.
	Name string
	// Description says what the experiment regenerates.
	Description string
	// Run writes the experiment's paper-style rows/series to w.
	Run func(w io.Writer, sc ExperimentScale) error
}

var expRegistry = struct {
	sync.RWMutex
	order  []Experiment
	byName map[string]int
}{byName: make(map[string]int)}

// RegisterExperiment adds an experiment to the registry. The package's own
// experiments self-register at init; external tools may register more. It
// panics on an empty name, a nil Run, or a duplicate registration —
// registry corruption is a programming error.
func RegisterExperiment(e Experiment) {
	key := strings.ToLower(e.Name)
	if key == "" || e.Run == nil {
		panic("buddy: experiment needs a name and a run function")
	}
	expRegistry.Lock()
	defer expRegistry.Unlock()
	if _, dup := expRegistry.byName[key]; dup {
		panic(fmt.Sprintf("buddy: experiment %q registered twice", e.Name))
	}
	expRegistry.byName[key] = len(expRegistry.order)
	expRegistry.order = append(expRegistry.order, e)
}

// ExperimentRegistry returns the registered experiments in registration
// order (the package's own follow the paper's figure order).
func ExperimentRegistry() []Experiment {
	expRegistry.RLock()
	defer expRegistry.RUnlock()
	out := make([]Experiment, len(expRegistry.order))
	copy(out, expRegistry.order)
	return out
}

// LookupExperiment finds a registered experiment by (case-insensitive)
// name.
func LookupExperiment(name string) (Experiment, bool) {
	expRegistry.RLock()
	defer expRegistry.RUnlock()
	i, ok := expRegistry.byName[strings.ToLower(name)]
	if !ok {
		return Experiment{}, false
	}
	return expRegistry.order[i], true
}

// Experiments lists the registered experiment names.
func Experiments() []string {
	reg := ExperimentRegistry()
	names := make([]string, len(reg))
	for i, e := range reg {
		names[i] = e.Name
	}
	return names
}

// RunExperiment regenerates one registered table or figure ("all" runs
// every one in order) and writes the paper-style rows/series to w.
func RunExperiment(w io.Writer, name string, sc ExperimentScale) error {
	if sc.Workload == 0 {
		sc = DefaultScale()
	}
	if strings.EqualFold(name, "all") {
		for _, e := range ExperimentRegistry() {
			fmt.Fprintf(w, "==== %s ====\n", e.Name)
			if err := e.Run(w, sc); err != nil {
				return fmt.Errorf("%s: %w", e.Name, err)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
	e, ok := LookupExperiment(name)
	if !ok {
		return fmt.Errorf("buddy: unknown experiment %q (have %s)",
			name, strings.Join(Experiments(), ", "))
	}
	return e.Run(w, sc)
}
